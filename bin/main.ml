(* masc-bgmp: command-line driver for the paper's experiments.

   One subcommand per evaluation artifact (see DESIGN.md §3):
     fig2             MASC address-space utilization and G-RIB size
     fig4             tree path-length overheads vs SPT
     ablate-placement first-sub-prefix vs random claim placement (A2)
     ablate-threshold occupancy-threshold sweep (A3)
     ablate-root      root-domain placement sensitivity (A4)
     ablate-claim     claim-collide vs query-response robustness (A1)
     beacon           dbeacon-style active measurement: NxN delivery matrix
     trace            inspect a JSONL trace: timelines, latencies, causal chains
     report           summarize profile/telemetry/metrics artifacts of a run
     demo             end-to-end run on the Figure-1 topology

   Every experiment accepts --check-invariants: live invariant
   evaluation with violations on stderr and a non-zero exit, leaving
   stdout byte-identical. *)

let print_series ppf series = List.iter (Stats.pp_series ppf) series

(* ---------------- observability flags -------------------------------- *)

(* Every subcommand runs under [with_obs]: the shared --metrics /
   --profile / --sample handling lives in this one record, one cmdliner
   term and one exit path, so each experiment only wires the sinks it
   feeds.  The registry is reset up front so back-to-back invocations in
   one process would start clean; at exit the metrics snapshot goes to
   stderr (dest = "-") or to a JSON file, the profile tree goes to its
   JSONL file, and the telemetry sink is flushed.  Stdout stays
   byte-identical with everything on: the figure outputs are diffed in
   tests. *)

type obs = {
  obs_metrics : string option;  (* --metrics[=FILE]; "-" = stderr table *)
  obs_profile : string option;  (* --profile[=FILE]: Prof tree as JSONL *)
  obs_sample : float option;  (* --sample EVERY: telemetry cadence, sim seconds *)
  obs_record : string option;  (* --record[=FILE]: flight-recorder JSONL *)
  obs_fingerprint : bool;  (* --fingerprint: run fingerprint on stderr *)
}

let timeseries_file = "timeseries.jsonl"

(* [f] receives [Some (sink, every)] when --sample was given; the
   experiment decides how to drive the sink (engine sampler, figure
   cadence, per-point). *)
let with_obs obs f =
  Metrics.reset Metrics.default;
  Span.reset ();
  if obs.obs_profile <> None then Prof.enable ();
  if obs.obs_record <> None || obs.obs_fingerprint then
    Recorder.enable ?sink:obs.obs_record ();
  let sampling =
    Option.map
      (fun every -> (Timeseries.create ~sink:(Timeseries.Jsonl timeseries_file) (), every))
      obs.obs_sample
  in
  let t0 = Sys.time () in
  let finish () =
    (match obs.obs_metrics with
    | None -> ()
    | Some target ->
        Metrics.set (Metrics.gauge "harness.wall_seconds") (Sys.time () -. t0);
        let snap = Metrics.snapshot Metrics.default in
        if target = "-" then Format.eprintf "%a@?" Metrics.pp snap
        else begin
          let oc = open_out target in
          output_string oc (Metrics.to_json snap);
          output_char oc '\n';
          close_out oc
        end);
    (match obs.obs_profile with
    | None -> ()
    | Some file ->
        Prof.write_jsonl file;
        Prof.disable ());
    if obs.obs_record <> None || obs.obs_fingerprint then begin
      if obs.obs_fingerprint then
        Format.eprintf "%a@?" Recorder.pp_fingerprint (Recorder.fingerprint ());
      Recorder.disable ()
    end;
    Option.iter (fun (ts, _) -> Timeseries.close ts) sampling
  in
  Fun.protect ~finally:finish (fun () -> f sampling)

(* ---------------- invariant reporting -------------------------------- *)

(* All --check-invariants output goes to stderr: the figure output on
   stdout must stay byte-identical with checks on. *)
let fail_on_violations what n =
  if n > 0 then begin
    Format.eprintf "%s: %d invariant violation(s) detected@." what n;
    exit 1
  end
  else Format.eprintf "%s: invariants clean@." what

let report_inet_violations what inet =
  let vs = Internet.invariant_violations inet in
  List.iter (fun v -> Format.eprintf "%a@." Invariant.pp_violation v) vs;
  fail_on_violations what (List.length vs)

(* ---------------- fig2 ---------------------------------------------- *)

let fig2_series (r : Allocation_sim.result) =
  let pick f = Array.map (fun (s : Allocation_sim.sample) -> (s.Allocation_sim.day, f s)) r.Allocation_sim.samples in
  [
    { Stats.label = "utilization"; points = pick (fun s -> s.Allocation_sim.utilization) };
    { Stats.label = "grib-avg"; points = pick (fun s -> s.Allocation_sim.grib_avg) };
    {
      Stats.label = "grib-max";
      points = pick (fun s -> float_of_int s.Allocation_sim.grib_max);
    };
  ]

let fig2_summary r =
  let steady = Allocation_sim.steady_state r ~from_day:400.0 in
  let avg f = Stats.mean_of (Array.of_list (List.map f steady)) in
  Format.printf "--- Figure 2 summary (steady state, day >= 400) ---@.";
  Format.printf "samples                : %d@." (List.length steady);
  Format.printf "utilization            : %.3f   (paper: ~0.50)@."
    (avg (fun (s : Allocation_sim.sample) -> s.Allocation_sim.utilization));
  Format.printf "G-RIB avg              : %.1f   (paper: ~175)@."
    (avg (fun (s : Allocation_sim.sample) -> s.Allocation_sim.grib_avg));
  Format.printf "G-RIB max              : %.1f   (paper: <=180)@."
    (avg (fun (s : Allocation_sim.sample) -> float_of_int s.Allocation_sim.grib_max));
  Format.printf "outstanding blocks     : %.0f   (paper: 37500)@."
    (avg (fun (s : Allocation_sim.sample) -> float_of_int s.Allocation_sim.outstanding_blocks));
  Format.printf "failed block requests  : %d@." r.Allocation_sim.failed_requests;
  Format.printf "claims made            : %d@." r.Allocation_sim.claims_made

let run_fig2 check summary_only days hetero seed sampling =
  let p =
    {
      Allocation_sim.default_params with
      Allocation_sim.horizon = Time.days (float_of_int days);
      hetero_spread = hetero;
      check_invariants = check;
      seed;
      telemetry = Option.map fst sampling;
    }
  in
  Format.printf "# MASC claim simulation: 50 top-level domains, 50 (+/- %d) children each, %d days@."
    hetero days;
  let r = Allocation_sim.run p in
  if not summary_only then print_series Format.std_formatter (fig2_series r);
  fig2_summary r;
  if check then fail_on_violations "fig2" r.Allocation_sim.invariant_violations

(* ---------------- fig4 ---------------------------------------------- *)

let fig4_summary (r : Tree_experiment.result) =
  Format.printf "--- Figure 4 summary ---@.";
  Format.printf "%8s %10s %10s %10s %10s %10s %10s@." "size" "uni-avg" "uni-max" "bi-avg"
    "bi-max" "hy-avg" "hy-max";
  List.iter
    (fun (pt : Tree_experiment.point) ->
      Format.printf "%8d %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f@."
        pt.Tree_experiment.group_size pt.Tree_experiment.uni_avg pt.Tree_experiment.uni_max
        pt.Tree_experiment.bi_avg pt.Tree_experiment.bi_max pt.Tree_experiment.hy_avg
        pt.Tree_experiment.hy_max)
    r.Tree_experiment.points;
  Format.printf
    "worst-case ratios: unidirectional %.1f, bidirectional %.1f, hybrid %.1f@."
    r.Tree_experiment.worst_uni r.Tree_experiment.worst_bi r.Tree_experiment.worst_hy;
  Format.printf
    "(paper, in-text: unidirectional avg ~2x / max up to 6x; bidirectional avg <1.3x / max \
     4.5x; hybrid avg <1.2x / max 4x)@."

let run_fig4 check summary_only nodes trials topology seed sampling =
  let topology = if topology = "transit-stub" then `Transit_stub else `Power_law in
  let p =
    {
      Tree_experiment.default_params with
      Tree_experiment.nodes;
      trials;
      topology;
      check_invariants = check;
      seed;
      telemetry = Option.map fst sampling;
    }
  in
  Format.printf "# Tree quality: %d-node %s topology, %d trials per group size@." nodes
    (match topology with `Power_law -> "power-law" | `Transit_stub -> "transit-stub")
    trials;
  let r = Tree_experiment.run p in
  if not summary_only then print_series Format.std_formatter (Tree_experiment.series_of_result r);
  fig4_summary r;
  if check then fail_on_violations "fig4" r.Tree_experiment.invariant_violations

(* ---------------- fig4-modern ---------------------------------------- *)

let run_fig4_modern check summary_only domains groups roots events link_every trials scratch seed
    jobs sampling =
  let mode = if scratch then Modern_experiment.Scratch else Modern_experiment.Incremental in
  let p =
    {
      Modern_experiment.default_params with
      Modern_experiment.domains;
      groups;
      roots;
      events;
      link_every;
      trials;
      seed;
      mode;
      jobs;
      check_invariants = check;
      telemetry = Option.map fst sampling;
    }
  in
  Format.printf
    "# fig4-modern: state vs members at scale (%d-domain target, %d groups x %d trials, %s \
     route maintenance)@."
    domains groups trials
    (match mode with
    | Modern_experiment.Incremental -> "incremental"
    | Modern_experiment.Scratch -> "from-scratch");
  let r = Modern_experiment.run p in
  Format.printf "topology: %d domains, %d links@." r.Modern_experiment.r_domains
    r.Modern_experiment.r_links;
  if not summary_only then
    List.iter
      (fun ck ->
        Format.printf "fig4-modern %d %.1f %.1f %.1f@." ck.Modern_experiment.ck_events
          ck.Modern_experiment.ck_members ck.Modern_experiment.ck_entries
          ck.Modern_experiment.ck_grib)
      r.Modern_experiment.checkpoints;
  Modern_experiment.pp_summary Format.std_formatter r;
  if check then fail_on_violations "fig4-modern" r.Modern_experiment.invariant_violations

(* ---------------- ablations ------------------------------------------ *)

let run_ablate_placement check days seed =
  Format.printf "# A2: claim placement rule (first-sub-prefix vs random), %d days@." days;
  let param placement =
    {
      Allocation_sim.default_params with
      Allocation_sim.horizon = Time.days (float_of_int days);
      placement;
      check_invariants = check;
      seed;
    }
  in
  (* The two runs are independent full simulations: fan them out. *)
  let results = Allocation_sim.run_many [ param `First; param `Random ] in
  let bad =
    List.fold_left (fun acc r -> acc + r.Allocation_sim.invariant_violations) 0 results
  in
  let steady r = Allocation_sim.steady_state r ~from_day:(float_of_int days /. 2.0) in
  let describe tag r =
    let s = steady r in
    let avg f = Stats.mean_of (Array.of_list (List.map f s)) in
    Format.printf "%-18s util=%.3f grib-avg=%.1f grib-max=%.1f claims=%d@." tag
      (avg (fun (x : Allocation_sim.sample) -> x.Allocation_sim.utilization))
      (avg (fun (x : Allocation_sim.sample) -> x.Allocation_sim.grib_avg))
      (avg (fun (x : Allocation_sim.sample) -> float_of_int x.Allocation_sim.grib_max))
      r.Allocation_sim.claims_made
  in
  List.iter2 describe [ "first-sub-prefix"; "random-placement" ] results;
  if check then fail_on_violations "ablate-placement" bad

let run_ablate_threshold check days seed =
  Format.printf "# A3: occupancy-threshold sweep (utilization vs aggregation), %d days@." days;
  let thresholds = [ 0.5; 0.75; 0.9 ] in
  let results =
    (* One independent simulation per threshold: fan them out. *)
    Allocation_sim.run_many
      (List.map
         (fun threshold ->
           {
             Allocation_sim.default_params with
             Allocation_sim.horizon = Time.days (float_of_int days);
             policy = { Claim_policy.default_params with Claim_policy.threshold };
             check_invariants = check;
             seed;
           })
         thresholds)
  in
  let bad =
    List.fold_left (fun acc r -> acc + r.Allocation_sim.invariant_violations) 0 results
  in
  List.iter2
    (fun threshold r ->
      let s = Allocation_sim.steady_state r ~from_day:(float_of_int days /. 2.0) in
      let avg f = Stats.mean_of (Array.of_list (List.map f s)) in
      Format.printf "threshold=%.2f  util=%.3f  grib-avg=%.1f  grib-max=%.1f@." threshold
        (avg (fun (x : Allocation_sim.sample) -> x.Allocation_sim.utilization))
        (avg (fun (x : Allocation_sim.sample) -> x.Allocation_sim.grib_avg))
        (avg (fun (x : Allocation_sim.sample) -> float_of_int x.Allocation_sim.grib_max)))
    thresholds results;
  if check then fail_on_violations "ablate-threshold" bad

let run_ablate_root check nodes trials seed =
  Format.printf "# A4: root-domain placement (group size 100, %d-node power-law)@." nodes;
  let bad = ref 0 in
  List.iter
    (fun (tag, placement) ->
      let r =
        Tree_experiment.run
          {
            Tree_experiment.default_params with
            Tree_experiment.nodes;
            group_sizes = [ 100 ];
            trials;
            root_placement = placement;
            check_invariants = check;
            seed;
          }
      in
      bad := !bad + r.Tree_experiment.invariant_violations;
      match r.Tree_experiment.points with
      | [ pt ] ->
          Format.printf "%-16s bi-avg=%.2f bi-max=%.2f hy-avg=%.2f uni-avg=%.2f@." tag
            pt.Tree_experiment.bi_avg pt.Tree_experiment.bi_max pt.Tree_experiment.hy_avg
            pt.Tree_experiment.uni_avg
      | _ -> ())
    [
      ("at-initiator", Tree_experiment.Root_at_initiator);
      ("at-source", Tree_experiment.Root_at_source);
      ("random", Tree_experiment.Root_random);
    ];
  if check then fail_on_violations "ablate-root" !bad

let run_ablate_kampai check days seed =
  Format.printf
    "# A5: contiguous CIDR claims vs Kampai non-contiguous masks (100 domains, %d days)@." days;
  let r =
    Kampai.Sim.run
      {
        Kampai.Sim.default_params with
        Kampai.Sim.horizon = Time.days (float_of_int days);
        seed;
      }
  in
  let show tag (s : Kampai.Sim.side) =
    Format.printf "%-12s util=%.3f table-entries=%.1f failures=%d renumberings=%d@." tag
      s.Kampai.Sim.utilization s.Kampai.Sim.table_entries s.Kampai.Sim.failures
      s.Kampai.Sim.renumberings
  in
  show "contiguous" r.Kampai.Sim.contiguous;
  show "kampai" r.Kampai.Sim.kampai;
  if check then Format.eprintf "ablate-kampai: no live invariants apply@.";
  Format.printf
    "(the paper, §4.3.3/§7: non-contiguous masks \"would provide even better address space      utilization\" at the cost of operational complexity)@."

(* A1: decentralised claim-collide keeps allocating during a partition
   among siblings (collisions are detected and repaired after the heal),
   whereas a query-response allocator with a single root of the
   hierarchy simply fails every request from the partitioned side. *)
let run_ablate_claim check seed =
  Format.printf "# A1: claim-collide vs query-response under a 2-day partition@.";
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let config =
    {
      Masc_node.default_config with
      Masc_node.claim_wait = Time.hours 4.0;
      claim_lifetime = Time.days 20.0;
      renew_margin = Time.days 1.0;
    }
  in
  (* Two top-level domains; both keep allocating while partitioned. *)
  let net =
    Masc_network.create ~engine ~rng ~config ~parent_of:(fun _ -> None) ~ids:[ 0; 1 ] ()
  in
  Masc_network.start net;
  Masc_network.partition net 0 1;
  Masc_node.request_space (Masc_network.node net 0) ~need:1024;
  Masc_node.request_space (Masc_network.node net 1) ~need:1024;
  Engine.run ~until:(Time.days 1.0) engine;
  let acquired id = List.length (Masc_node.acquired_ranges (Masc_network.node net id)) in
  Format.printf "claim-collide: during partition, domain 0 acquired %d range(s), domain 1 %d@."
    (acquired 0) (acquired 1);
  List.iter
    (fun id ->
      let node = Masc_network.node net id in
      List.iter
        (fun (c : Masc_node.own_claim) ->
          Masc_node.note_assigned node c.Masc_node.claim_prefix 16)
        (Masc_node.acquired_ranges node))
    [ 0; 1 ];
  Masc_network.heal net 0 1;
  Engine.run ~until:(Time.days 30.0) engine;
  Format.printf
    "claim-collide: after heal, %d collision(s) repaired; final allocations disjoint: %b@."
    (Masc_network.total_collisions net)
    (let all =
       List.concat_map
         (fun id ->
           List.map
             (fun (c : Masc_node.own_claim) -> c.Masc_node.claim_prefix)
             (Masc_node.acquired_ranges (Masc_network.node net id)))
         [ 0; 1 ]
     in
     not
       (List.exists
          (fun a -> List.exists (fun b -> (not (Prefix.equal a b)) && Prefix.overlaps a b) all)
          all));
  (* Query-response strawman: one root server; requests from the
     partitioned side are lost. *)
  let served = ref 0 and failed = ref 0 in
  let partitioned id = id = 1 in
  List.iter
    (fun id -> if partitioned id then incr failed else incr served)
    [ 0; 1 ];
  Format.printf
    "query-response: same scenario, single allocation root reachable only by domain 0:@.";
  Format.printf
    "query-response: %d request(s) served, %d blocked for the entire partition (no allocation \
     possible)@."
    !served !failed;
  if check then begin
    (* The §4 repair guarantee: after the heal settles, no two domains
       hold overlapping acquired ranges. *)
    let all =
      List.concat_map
        (fun id ->
          List.map
            (fun (c : Masc_node.own_claim) -> (id, c.Masc_node.claim_prefix))
            (Masc_node.acquired_ranges (Masc_network.node net id)))
        [ 0; 1 ]
    in
    let overlaps =
      List.concat_map
        (fun (a, pa) ->
          List.filter_map
            (fun (b, pb) ->
              if a < b && Prefix.overlaps pa pb then Some (a, b, pa, pb) else None)
            all)
        all
    in
    List.iter
      (fun (a, b, pa, pb) ->
        Format.eprintf "overlap survived the heal: domain %d %s vs domain %d %s@." a
          (Prefix.to_string pa) b (Prefix.to_string pb))
      overlaps;
    fail_on_violations "ablate-claim" (List.length overlaps)
  end

let run_baselines check nodes trials seed =
  Format.printf "# Related-work baselines (§6) vs BGMP hybrid trees, %d-node power-law@." nodes;
  Format.printf "## HPIM (hash-placed RP hierarchy, 3 levels)@.";
  List.iter
    (fun (pt : Baselines.comparison_point) ->
      Format.printf "size=%4d  hpim avg=%.2f max=%.2f  |  bgmp-hybrid avg=%.2f max=%.2f@."
        pt.Baselines.cmp_group_size pt.Baselines.hpim_avg pt.Baselines.hpim_max
        pt.Baselines.bgmp_hybrid_avg pt.Baselines.bgmp_hybrid_max)
    (Baselines.compare_hpim ~nodes ~trials ~seed ());
  Format.printf
    "(paper: \"as HPIM uses hash functions to choose the next RP at each level, the trees can      be very bad in the worst case\")@.";
  Format.printf "@.## HDVMRP (inter-region flood and prune)@.";
  let topo = Gen.power_law ~rng:(Rng.create seed) ~n:nodes ~m:2 in
  List.iter
    (fun members ->
      let c = Baselines.hdvmrp_costs topo ~senders:5 ~groups:100 ~members in
      Format.printf
        "members=%4d: flood deliveries=%d, prunes=%d, per-router (S,G) state=%d (BGMP state          grows only with the tree)@."
        members c.Baselines.flood_deliveries c.Baselines.prune_messages
        c.Baselines.per_router_state)
    [ 10; 100; 500 ];
  if check then Format.eprintf "baselines: no live invariants apply@."

(* ---------------- dot -------------------------------------------------- *)

(* Render the Figure-3 scenario as Graphviz: topology + the shared tree
   for the walkthrough group.  Pipe through `dot -Tsvg`. *)
let run_dot check loss () =
  let w = Scenario.figure3 ~loss () in
  let topo = w.Scenario.walkthrough_topo in
  let tree_domains = Bgmp_fabric.tree_domains w.Scenario.fabric ~group:w.Scenario.walkthrough_group in
  (* Tree edges: for each on-tree router with an external peer parent or
     child, the corresponding inter-domain link. *)
  let edges = ref [] in
  List.iter
    (fun (d : Domain.t) ->
      List.iter
        (fun r ->
          match Bgmp_router.star_entry r w.Scenario.walkthrough_group with
          | None -> ()
          | Some e ->
              let note = function
                | Bgmp_router.Peer rid ->
                    let other =
                      List.find_map
                        (fun (dd : Domain.t) ->
                          List.find_map
                            (fun rr ->
                              if Bgmp_router.id rr = rid then Some dd.Domain.id else None)
                            (Bgmp_fabric.routers_of w.Scenario.fabric dd.Domain.id))
                        (Topo.domains topo)
                    in
                    (match other with
                    | Some o -> edges := (d.Domain.id, o) :: !edges
                    | None -> ())
                | Bgmp_router.Migp_target | Bgmp_router.Internal_router _ -> ()
              in
              (match e.Bgmp_router.parent with Some t -> note t | None -> ());
              List.iter note e.Bgmp_router.children)
        (Bgmp_fabric.routers_of w.Scenario.fabric d.Domain.id))
    (Topo.domains topo);
  print_string
    (Topo_dot.to_dot ~highlight:tree_domains ~highlight_edges:!edges
       ~label:"Figure 3: shared tree for 224.0.128.1 (root B)" topo);
  if check then begin
    let vs = Bgmp_fabric.tree_violations w.Scenario.fabric ~quiescent:true in
    List.iter (fun (detail, _) -> Format.eprintf "tree invariant: %s@." detail) vs;
    fail_on_violations "dot" (List.length vs)
  end

(* ---------------- soak ------------------------------------------------ *)

let net_total inet counter =
  let net = Internet.net inet in
  List.fold_left (fun acc p -> acc + counter net ~protocol:p) 0 [ "masc"; "bgp"; "bgmp" ]

(* A randomized long-run stress of the integrated stack: group churn,
   random senders, and occasional link failures/restores, checking the
   exact-delivery invariant continuously. *)
let run_soak check trace_out steps seed loss sampling =
  Format.printf "# soak: %d randomized steps over a transit-stub internetwork (seed %d)@." steps
    seed;
  let rng = Rng.create seed in
  let topo = Gen.transit_stub ~rng ~backbones:2 ~regionals_per_backbone:3 ~stubs_per_regional:3 in
  let inet = Internet.create ~config:{ Internet.quick_config with Internet.loss } topo in
  Option.iter (fun f -> Trace.set_sink (Internet.trace inet) (Trace.Jsonl f)) trace_out;
  (match sampling with
  | Some (ts, every) -> Internet.enable_sampling ~every:(Time.seconds every) inet ts
  | None -> ());
  if check then Internet.enable_invariant_checks inet;
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);
  let n = Topo.domain_count topo in
  let initiator = 5 in
  let rec get tries =
    match Internet.request_address inet initiator with
    | Some a -> a
    | None ->
        if tries > 50 then begin
          Format.eprintf "soak: allocation never settled@.";
          exit 2
        end
        else begin
          Internet.run_for inet (Time.hours 1.0);
          get (tries + 1)
        end
  in
  let group = (get 0).Maas.address in
  let members = Array.make n false in
  let broken = ref None in
  let violations = ref 0 in
  let checks = ref 0 in
  for step = 1 to steps do
    (match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 -> (
        (* toggle a membership *)
        let d = Rng.int rng n in
        if members.(d) then begin
          Internet.leave inet ~host:(Host_ref.make d 0) ~group;
          members.(d) <- false
        end
        else begin
          Internet.join inet ~host:(Host_ref.make d 0) ~group;
          members.(d) <- true
        end)
    | 4 -> (
        (* break or heal a random link *)
        match !broken with
        | Some (a, b) ->
            Format.printf "step %4d: restore %d-%d@." step a b;
            Internet.restore_link inet a b;
            broken := None
        | None -> (
            let links = Array.of_list (Topo.links topo) in
            let l = Rng.pick rng links in
            (* Avoid partitioning the root's own attachments entirely;
               pick stub-side links only. *)
            if
              (Topo.domain topo l.Topo.b).Domain.kind = Domain.Stub
              && l.Topo.b <> initiator
            then begin
              Format.printf "step %4d: fail %d-%d@." step l.Topo.a l.Topo.b;
              Internet.fail_link inet l.Topo.a l.Topo.b;
              broken := Some (l.Topo.a, l.Topo.b)
            end))
    | _ -> ());
    Internet.run_for inet (Time.minutes 10.0);
    let src = Host_ref.make (Rng.int rng n) 42 in
    let payload = Internet.send inet ~source:src ~group in
    Internet.run_for inet (Time.minutes 10.0);
    let got =
      List.sort_uniq compare
        (List.map (fun (h, _) -> h.Host_ref.host_domain) (Internet.deliveries inet ~payload))
    in
    (* Members behind the broken link are unreachable by design; exclude
       them from the expectation. *)
    let unreachable d = match !broken with Some (_, b) -> d = b | None -> false in
    let want =
      (* A partitioned source still serves its own domain's members
         (interior delivery needs no inter-domain link) but nobody else;
         a partitioned member is excluded from everyone else's
         delivery. *)
      if unreachable src.Host_ref.host_domain then
        if members.(src.Host_ref.host_domain) then [ src.Host_ref.host_domain ] else []
      else List.filter (fun d -> members.(d) && not (unreachable d)) (List.init n (fun i -> i))
    in
    incr checks;
    if got <> want then begin
      incr violations;
      Format.printf "step %4d: MISMATCH src=%d broken=%s got=[%s] want=[%s]@." step
        src.Host_ref.host_domain
        (match !broken with Some (a, b) -> Printf.sprintf "%d-%d" a b | None -> "-")
        (String.concat "," (List.map string_of_int got))
        (String.concat "," (List.map string_of_int want));
      Format.printf "  root=%s tree=[%s]@."
        (match Internet.root_domain_of inet group with
        | Some r -> string_of_int r
        | None -> "NONE")
        (String.concat ","
           (List.map string_of_int (Bgmp_fabric.tree_domains (Internet.fabric inet) ~group)))
    end
  done;
  Format.printf "soak complete: %d delivery checks, %d violations, %d duplicates@." !checks
    !violations
    (Bgmp_fabric.duplicate_deliveries (Internet.fabric inet));
  if loss > 0.0 then
    (* Exact delivery is not an invariant under message loss: dropped
       joins and data are the point of the exercise.  Report the
       transport's accounting instead of failing. *)
    Format.printf "transport (loss %.2f): %d sent, %d delivered, %d dropped@." loss
      (net_total inet Net.sent) (net_total inet Net.delivered) (net_total inet Net.dropped)
  else if !violations > 0 then exit 1;
  if check then begin
    (* Quiescent-only predicates are sound here only when no link is
       down (a partitioned member legitimately keeps local state). *)
    ignore (Internet.check_invariants ~quiescent:(!broken = None) inet);
    report_inet_violations "soak" inet
  end;
  if trace_out <> None then Trace.close (Internet.trace inet)

(* ---------------- demo ----------------------------------------------- *)

let run_demo check trace_out loss sampling () =
  let topo = Gen.figure1 () in
  let inet = Internet.create ~config:{ Internet.quick_config with Internet.loss } topo in
  Option.iter (fun f -> Trace.set_sink (Internet.trace inet) (Trace.Jsonl f)) trace_out;
  (match sampling with
  | Some (ts, every) -> Internet.enable_sampling ~every:(Time.seconds every) inet ts
  | None -> ());
  if check then Internet.enable_invariant_checks inet;
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);
  let dom name = Option.get (Topo.find_by_name topo name) in
  let name_of d = (Topo.domain topo d).Domain.name in
  let rec get tries =
    match Internet.request_address inet (dom "B") with
    | Some a -> a
    | None ->
        if tries > 30 then begin
          Format.eprintf "demo: allocation did not settle@.";
          exit 2
        end
        else begin
          Internet.run_for inet (Time.hours 1.0);
          get (tries + 1)
        end
  in
  let alloc = get 0 in
  let group = alloc.Maas.address in
  Format.printf "group %a rooted at %s@." Ipv4.pp group
    (match Internet.root_domain_of inet group with
    | Some r -> name_of r
    | None -> "?");
  List.iter
    (fun n -> Internet.join inet ~host:(Host_ref.make (dom n) 0) ~group)
    [ "C"; "D"; "F"; "G" ];
  Internet.run_for inet (Time.minutes 30.0);
  let p = Internet.send inet ~source:(Host_ref.make (dom "E") 1) ~group in
  Internet.run_for inet (Time.minutes 5.0);
  List.iter
    (fun (h, hops) ->
      Format.printf "%s received (%d hops)@." (name_of h.Host_ref.host_domain) hops)
    (Internet.deliveries inet ~payload:p);
  if loss > 0.0 then
    Format.printf "transport (loss %.2f): %d sent, %d delivered, %d dropped@." loss
      (net_total inet Net.sent) (net_total inet Net.delivered) (net_total inet Net.dropped);
  if check then begin
    ignore (Internet.check_invariants ~quiescent:true inet);
    report_inet_violations "demo" inet
  end;
  if trace_out <> None then Trace.close (Internet.trace inet)

(* ---------------- beacon ---------------------------------------------- *)

(* dbeacon-style active measurement: beacon fleets over real BGMP trees,
   N x N delivery matrix on stdout, optional JSONL export for the
   [report --matrix] view. *)
let run_beacon check domains per_domain probes trials seed loss churn matrix_out jobs sampling =
  if trials > 1 && sampling <> None then
    Format.eprintf "beacon: --sample needs a single trial; telemetry disabled@.";
  let p =
    {
      Beacon_campaign.default_params with
      Beacon_campaign.domains;
      per_domain;
      probes;
      trials;
      seed;
      loss;
      churn;
      telemetry =
        (if trials > 1 then None
         else Option.map (fun (ts, every) -> (ts, Time.seconds every)) sampling);
    }
  in
  Format.printf
    "# beacon: %d domains, %d beacon(s)/domain + interdomain session, %d probes/source, %d \
     trial(s), loss %.2f%s@."
    domains per_domain probes trials loss
    (if churn then ", churn" else "");
  let r = Beacon_campaign.run ~jobs p in
  List.iter
    (fun (t : Beacon_campaign.trial_result) ->
      Format.printf
        "trial %d: domains=%d sources=%d probes=%d delivered=%d lost=%d dup=%d data-msgs=%d \
         net-drops=%d converged=%.3fs window=[%.3fs, %.3fs]@."
        t.Beacon_campaign.r_trial t.Beacon_campaign.r_domains t.Beacon_campaign.r_sources
        t.Beacon_campaign.r_probes_sent t.Beacon_campaign.r_deliveries
        t.Beacon_campaign.r_lost t.Beacon_campaign.r_duplicates
        t.Beacon_campaign.r_data_msgs t.Beacon_campaign.r_net_dropped
        t.Beacon_campaign.r_converged_s t.Beacon_campaign.r_first_probe_s
        t.Beacon_campaign.r_last_harvest_s)
    r.Beacon_campaign.trials;
  Format.printf "--- delivery matrix ---@.";
  Format.printf "%a@." Beacon_matrix.pp_summary r.Beacon_campaign.agg;
  let worst = Beacon_matrix.worst r.Beacon_campaign.cells ~n:5 in
  if List.exists (fun (c : Beacon_matrix.cell) -> c.Beacon_matrix.c_loss > 0.0) worst
  then begin
    Format.printf "--- worst pairs ---@.";
    Format.printf "%a" Beacon_matrix.pp_cells worst
  end;
  (match matrix_out with
  | None -> ()
  | Some file ->
      let t0 = List.hd r.Beacon_campaign.trials in
      let last =
        List.fold_left
          (fun acc (t : Beacon_campaign.trial_result) ->
            Float.max acc t.Beacon_campaign.r_last_harvest_s)
          0.0 r.Beacon_campaign.trials
      in
      Beacon_matrix.write_jsonl
        ~meta:
          [
            ("trials", float_of_int trials);
            ("seed", float_of_int seed);
            ("loss", loss);
            ("domains", float_of_int t0.Beacon_campaign.r_domains);
            ("converged_s", t0.Beacon_campaign.r_converged_s);
            ("first_probe_s", t0.Beacon_campaign.r_first_probe_s);
            ("last_harvest_s", last);
          ]
        file r.Beacon_campaign.cells;
      Format.printf "matrix written to %s@." file);
  if check then begin
    (* The measurement layer's own invariants: accounting closes, trees
       never duplicate, and a lossless churn-free run delivers
       everything. *)
    let bad = ref 0 in
    let agg = r.Beacon_campaign.agg in
    if agg.Beacon_matrix.s_sent <> agg.Beacon_matrix.s_got + agg.Beacon_matrix.s_lost
    then begin
      incr bad;
      Format.eprintf "beacon: %d probes expected but %d+%d accounted@."
        agg.Beacon_matrix.s_sent agg.Beacon_matrix.s_got agg.Beacon_matrix.s_lost
    end;
    List.iter
      (fun (t : Beacon_campaign.trial_result) ->
        if t.Beacon_campaign.r_duplicates > 0 then begin
          incr bad;
          Format.eprintf "beacon: trial %d delivered %d duplicate copies@."
            t.Beacon_campaign.r_trial t.Beacon_campaign.r_duplicates
        end)
      r.Beacon_campaign.trials;
    if loss = 0.0 && (not churn) && not agg.Beacon_matrix.s_complete then begin
      incr bad;
      Format.eprintf "beacon: incomplete matrix despite loss=0 and no churn@."
    end;
    fail_on_violations "beacon" !bad
  end

(* ---------------- trace ----------------------------------------------- *)

(* Offline viewer for JSONL traces (--metrics' sibling: any Trace.t can
   be pointed at a Jsonl sink).  Default output: per-chain timelines and
   end-to-end latency summaries; --id renders one causal chain. *)
(* Truncated or corrupted artifacts (a run killed mid-write, a partial
   download) should degrade loudly, not crash or silently shrink: every
   loader reports how many non-blank lines it had to skip. *)
let warn_skipped what file n =
  if n > 0 then Format.eprintf "%s %s: %d malformed line(s) skipped@." what file n

let run_trace file id =
  let entries, bad = Trace.load_jsonl_counted file in
  warn_skipped "trace" file bad;
  match id with
  | Some id -> Trace_report.pp_chain_for Format.std_formatter entries ~id
  | None ->
      Trace_report.pp_timelines Format.std_formatter entries;
      Trace_report.pp_latencies Format.std_formatter entries

(* ---------------- report ---------------------------------------------- *)

(* Offline viewer for the other two observability artifacts: the
   --profile JSONL (per-phase wall-clock/allocation tree) and the
   --sample JSONL (sim-time telemetry series), plus a re-tabulation of a
   --metrics=FILE snapshot. *)

(* Text between the first occurrence of [pre] and the next occurrence of
   [post] after it — enough to re-read the flat one-object-per-line
   metrics JSON without a JSON dependency. *)
let extract_between s pre post =
  let find_from sub from =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
    in
    go from
  in
  match find_from pre 0 with
  | None -> None
  | Some i -> (
      let start = i + String.length pre in
      match find_from post start with
      | None -> None
      | Some j -> Some (String.sub s start (j - start)))

let report_profile ppf file fold =
  let rows, bad = Prof.load_jsonl_counted file in
  warn_skipped "profile" file bad;
  if rows = [] then Format.fprintf ppf "profile %s: no rows@." file
  else begin
    Format.fprintf ppf "--- profile: %s ---@." file;
    Prof.pp_rows ppf rows
  end;
  match fold with
  | None -> ()
  | Some out ->
      let oc = open_out out in
      output_string oc (Prof.folded rows);
      close_out oc;
      Format.fprintf ppf "folded stacks written to %s@." out

let report_timeseries ppf file series =
  let points, bad = Timeseries.load_jsonl_counted file in
  warn_skipped "telemetry" file bad;
  if points = [] then Format.fprintf ppf "telemetry %s: no rows@." file
  else
    let all = Timeseries.series_of points in
    match series with
    | Some name -> (
        match List.assoc_opt name all with
        | None -> Format.fprintf ppf "series %s: not present in %s@." name file
        | Some pts ->
            Format.fprintf ppf "--- series %s (%s) ---@." name file;
            Array.iter (fun (t, v) -> Format.fprintf ppf "%14.1f %14g@." t v) pts)
    | None ->
        Format.fprintf ppf "--- telemetry: %s ---@." file;
        Format.fprintf ppf "%-26s %5s %11s %11s %12s %12s %12s %12s@." "series" "n" "t-first"
          "t-last" "first" "last" "min" "max";
        List.iter
          (fun (name, pts) ->
            let n = Array.length pts in
            let vmin = Array.fold_left (fun a (_, v) -> min a v) infinity pts in
            let vmax = Array.fold_left (fun a (_, v) -> max a v) neg_infinity pts in
            Format.fprintf ppf "%-26s %5d %11.1f %11.1f %12g %12g %12g %12g@." name n
              (fst pts.(0))
              (fst pts.(n - 1))
              (snd pts.(0))
              (snd pts.(n - 1))
              vmin vmax)
          all

let report_metrics ppf file =
  let ic = open_in file in
  let n = ref 0 in
  Format.fprintf ppf "--- metrics: %s ---@." file;
  (try
     while true do
       let line = input_line ic in
       match extract_between line "\"name\": \"" "\"" with
       | None -> ()
       | Some name ->
           incr n;
           let kind = Option.value ~default:"?" (extract_between line "\"kind\": \"" "\"") in
           let detail =
             match kind with
             | "counter" | "gauge" ->
                 Option.value ~default:"" (extract_between line "\"value\": " "}")
             | "histogram" -> (
                 match extract_between line "\"count\": " "," with
                 | Some c -> c ^ " observations"
                 | None -> "")
             | _ -> ""
           in
           Format.fprintf ppf "%-36s %-10s %s@." name kind detail
     done
   with End_of_file -> ());
  close_in ic;
  Format.fprintf ppf "%d instrument(s)@." !n

(* The [beacon --matrix-out] view: measurement timeline from the meta
   line, the aggregate matrix summary, and the dbeacon "who can't hear
   whom" worst-pairs table. *)
let report_matrix ppf file =
  let meta, cells, bad = Beacon_matrix.load_jsonl_counted file in
  warn_skipped "matrix" file bad;
  if cells = [] then Format.fprintf ppf "matrix %s: no cells@." file
  else begin
    Format.fprintf ppf "--- delivery matrix: %s ---@." file;
    (match
       ( List.assoc_opt "converged_s" meta,
         List.assoc_opt "first_probe_s" meta,
         List.assoc_opt "last_harvest_s" meta )
     with
    | Some c, Some f, Some l ->
        Format.fprintf ppf
          "timeline: trees converged %.3fs, measured [%.3fs, %.3fs] (window %.3fs)@." c f l
          (l -. f)
    | _ -> ());
    List.iter
      (fun (k, v) ->
        if not (List.mem k [ "converged_s"; "first_probe_s"; "last_harvest_s" ]) then
          Format.fprintf ppf "%-14s %g@." k v)
      meta;
    let s = Beacon_matrix.summary cells in
    Format.fprintf ppf "%a@." Beacon_matrix.pp_summary s;
    let worst = Beacon_matrix.worst cells ~n:10 in
    if List.exists (fun (c : Beacon_matrix.cell) -> c.Beacon_matrix.c_loss > 0.0) worst
    then begin
      Format.fprintf ppf "--- worst pairs ---@.";
      Format.fprintf ppf "%a" Beacon_matrix.pp_cells worst
    end
    else Format.fprintf ppf "all pairs fully delivered@."
  end

(* --- recording diff --------------------------------------------------- *)

(* [report --diff A B]: stream two flight recordings, find the first
   record where they disagree (semantically — seq numbers are assigned
   per stream and excluded), and show an aligned context window plus
   the causal chain of both sides' divergent events.  This is the
   oracle for "did these two runs execute the same event stream, and if
   not, where did they first differ and why". *)

let pp_record ppf (r : Recorder.record) =
  Format.fprintf ppf "#%-6d %14.3f  %-24s %s" r.Recorder.seq r.Recorder.r_time r.Recorder.r_label
    r.Recorder.r_subject;
  match r.Recorder.r_trace_id with
  | Some id ->
      Format.fprintf ppf "  [%s%s]" id
        (match r.Recorder.r_span with Some s -> Printf.sprintf " #%d" s | None -> "")
  | None -> ()

(* Semantic equality: everything but the seq. *)
let same_record (a : Recorder.record) (b : Recorder.record) =
  { a with Recorder.seq = 0 } = { b with Recorder.seq = 0 }

let rec_to_entry (r : Recorder.record) =
  {
    Trace.time = r.Recorder.r_time;
    actor = r.Recorder.r_subject;
    tag = r.Recorder.r_label;
    detail = "";
    trace_id = r.Recorder.r_trace_id;
    span = r.Recorder.r_span;
    parent = r.Recorder.r_parent;
  }

(* The divergent record itself may carry no span (engine dispatch
   records do not); anchor the chain on the nearest record that does —
   backward first, then forward — so the reader still gets the causal
   neighbourhood of the divergence. *)
let pp_chain_near ppf name recs i =
  let n = Array.length recs in
  let rec scan d =
    let back = i - d and fwd = i + d in
    if back < 0 && fwd >= n then None
    else if back >= 0 && recs.(back).Recorder.r_trace_id <> None then Some back
    else if fwd < n && recs.(fwd).Recorder.r_trace_id <> None then Some fwd
    else scan (d + 1)
  in
  match scan 0 with
  | None -> Format.fprintf ppf "%s: no causal chain (no record carries a trace id)@." name
  | Some k ->
      let id = Option.get recs.(k).Recorder.r_trace_id in
      if k = i then Format.fprintf ppf "--- causal chain, %s ---@." name
      else
        Format.fprintf ppf "--- causal chain, %s (anchored on nearest spanned record, %d) ---@."
          name k;
      Trace_report.pp_chain_for ppf (List.map rec_to_entry (Array.to_list recs)) ~id

let run_diff ppf a b =
  let load file =
    match Recorder.load_jsonl file with
    | exception Sys_error e ->
        Format.eprintf "report --diff: %s@." e;
        exit 2
    | recs, bad ->
        warn_skipped "recording" file bad;
        Array.of_list recs
  in
  let ra = load a and rb = load b in
  let na = Array.length ra and nb = Array.length rb in
  Format.fprintf ppf "--- diff: %s (%d records) vs %s (%d records) ---@." a na b nb;
  let common = min na nb in
  let rec first_diff i = if i >= common then None else if same_record ra.(i) rb.(i) then first_diff (i + 1) else Some i in
  match first_diff 0 with
  | None when na = nb ->
      Format.fprintf ppf "recordings identical (%d records)@." na;
      0
  | None ->
      (* One stream is a strict prefix of the other: the divergence is
         the first extra record. *)
      let longer, extra, n_long = if na > nb then (a, ra, na) else (b, rb, nb) in
      Format.fprintf ppf "streams agree for all %d common records;@." common;
      Format.fprintf ppf "%s has %d extra record(s), first:@." longer (n_long - common);
      Format.fprintf ppf "  %a@." pp_record extra.(common);
      pp_chain_near ppf longer extra common;
      1
  | Some i ->
      Format.fprintf ppf "first divergence at record %d@." i;
      let ctx = 5 in
      let lo = max 0 (i - ctx) in
      if i > 0 then begin
        Format.fprintf ppf "common context (last %d records):@." (i - lo);
        for k = lo to i - 1 do
          Format.fprintf ppf "    %a@." pp_record ra.(k)
        done
      end;
      let follow = 3 in
      let side name recs n =
        for k = i to min (n - 1) (i + follow) do
          Format.fprintf ppf "  %s %s %a@." name (if k = i then ">" else " ") pp_record recs.(k)
        done
      in
      side "A" ra na;
      side "B" rb nb;
      pp_chain_near ppf ("A = " ^ a) ra i;
      pp_chain_near ppf ("B = " ^ b) rb i;
      1

let run_report profile timeseries metrics series fold matrix triage diff files =
  let ppf = Format.std_formatter in
  (match (diff, files) with
  | false, [] -> ()
  | false, _ :: _ ->
      Format.eprintf "report: positional recordings are only meaningful with --diff@.";
      exit 2
  | true, [ fa; fb ] -> exit (run_diff ppf fa fb)
  | true, _ ->
      Format.eprintf "report --diff: exactly two recording files required (got %d)@."
        (List.length files);
      exit 2);
  (match triage with
  | None -> ()
  | Some file ->
      if Sys.file_exists file then begin
        Explore.pp_triage ppf ~ledger:file;
        exit 0
      end
      else begin
        Format.eprintf "report --triage: %s not found (produce it with the explore subcommand)@."
          file;
        exit 2
      end);
  if Sys.file_exists profile then report_profile ppf profile fold
  else Format.fprintf ppf "profile %s: not found (produce it with --profile)@." profile;
  if Sys.file_exists timeseries then report_timeseries ppf timeseries series
  else
    Format.fprintf ppf "telemetry %s: not found (produce it with --sample EVERY)@." timeseries;
  (match metrics with
  | None -> ()
  | Some file ->
      if Sys.file_exists file then report_metrics ppf file
      else Format.fprintf ppf "metrics %s: not found (produce it with --metrics=FILE)@." file);
  match matrix with
  | None -> ()
  | Some file ->
      if Sys.file_exists file then report_matrix ppf file
      else
        Format.fprintf ppf "matrix %s: not found (produce it with beacon --matrix-out)@." file

(* ---------------- explore -------------------------------------------- *)

let run_explore budget max_faults seed ledger repro_dir =
  let config =
    { Explore.default_config with Explore.budget; max_faults; seed; ledger; repro_dir }
  in
  let s = Explore.run_campaign config in
  Explore.pp_summary Format.std_formatter s

(* ---------------- cmdliner wiring ------------------------------------ *)

open Cmdliner

let summary_flag =
  Arg.(value & flag & info [ "summary" ] ~doc:"Print only the summary, not the data series.")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect runtime metrics and export a snapshot at exit: a JSON document written to \
           $(docv), or a human-readable table on standard error when $(docv) is \"-\" (the \
           value used when the option is given bare).")

let profile_arg =
  Arg.(
    value
    & opt ~vopt:(Some "profile.jsonl") (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Profile the run: hierarchical wall-clock and allocation spans are collected and \
           written as JSON lines to $(docv) at exit (default profile.jsonl when the option is \
           given bare); inspect them with the $(b,report) subcommand.  Standard output is \
           unchanged.")

let sample_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "sample" ] ~docv:"EVERY"
        ~doc:
          "Record sim-time telemetry series (pending events, per-protocol in-flight messages, \
           G-RIB size, outstanding claims, tree entries) as JSON lines to timeseries.jsonl, \
           sampled every $(docv) simulated seconds; inspect them with the $(b,report) \
           subcommand.  fig2 samples at its figure cadence, fig4 once per group-size point \
           and fig4-modern once per checkpoint, ignoring $(docv).")

let record_arg =
  Arg.(
    value
    & opt ~vopt:(Some "recording.jsonl") (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:
          "Flight-record the run: one JSON line per fired engine event and per transport \
           delivery/drop, each carrying its sim time, label, subject and causal span ids, \
           written to $(docv) (default recording.jsonl when the option is given bare).  \
           Compare two recordings with $(b,report --diff).  Standard output is unchanged.")

let fingerprint_arg =
  Arg.(
    value & flag
    & info [ "fingerprint" ]
        ~doc:
          "Print the run's fingerprint on standard error at exit: a rolling 64-bit hash of \
           the flight-recorder stream, overall and per label prefix (masc.*, bgp.*, bgmp.*, \
           net.*, ...).  Two runs with equal fingerprints executed the same event stream; \
           the hash is byte-identical at any --jobs.  Standard output is unchanged.")

(* The full observability record for experiments that can drive a
   telemetry sink; [obs_basic_term] for the rest (same --metrics /
   --profile / --record / --fingerprint handling, no --sample). *)
let obs_term =
  Term.(
    const (fun m p s r fp ->
        { obs_metrics = m; obs_profile = p; obs_sample = s; obs_record = r; obs_fingerprint = fp })
    $ metrics_arg $ profile_arg $ sample_arg $ record_arg $ fingerprint_arg)

let obs_basic_term =
  Term.(
    const (fun m p r fp ->
        {
          obs_metrics = m;
          obs_profile = p;
          obs_sample = None;
          obs_record = r;
          obs_fingerprint = fp;
        })
    $ metrics_arg $ profile_arg $ record_arg $ fingerprint_arg)

let seed_arg = Arg.(value & opt int 1998 & info [ "seed" ] ~doc:"Random seed.")

(* Sets the Par pool's default job count for the whole command; the
   experiment layers fan out with that default.  Every output stream
   (stdout, --metrics, --profile, --sample) is byte-identical at any
   value: randomness is drawn before fan-out and Obs shards merge in
   task order. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Run independent work (fig4 trials, ablation simulations, baseline sweeps) on $(docv) \
           runtime domains.  Output is byte-identical at any value; 0 picks the machine's \
           recommended domain count.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Stream the run's trace as JSON lines to $(docv); inspect it afterwards with the \
           $(b,trace) subcommand.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check-invariants" ]
        ~doc:
          "Evaluate the live invariants during the run (overlap-free MASC allocations, acyclic \
           and G-RIB-consistent BGMP trees, tree-ratio sanity).  Violations are reported on \
           standard error and make the command exit non-zero; standard output is unchanged.")

let days_arg n = Arg.(value & opt int n & info [ "days" ] ~doc:"Simulated days.")

let loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P"
        ~doc:
          "Per-message drop probability on every inter-domain channel, applied to all three \
           protocols by the shared transport (deterministic: drawn from a seeded RNG).  At 0 \
           (the default) the run is bit-identical to a loss-free build.")

let fig2_cmd =
  let doc = "Reproduce Figure 2: MASC address-space utilization and G-RIB size over time." in
  let hetero =
    Arg.(
      value & opt int 0
      & info [ "hetero" ]
          ~doc:"Heterogeneity: children per top-level domain vary by +/- this amount.")
  in
  Cmd.v
    (Cmd.info "fig2" ~doc)
    Term.(
      const (fun obs jobs check summary days hetero seed ->
          Par.set_jobs jobs;
          with_obs obs (run_fig2 check summary days hetero seed))
      $ obs_term $ jobs_arg $ check_arg $ summary_flag $ days_arg 800 $ hetero $ seed_arg)

let fig4_cmd =
  let doc = "Reproduce Figure 4: path-length overhead of shared trees vs shortest-path trees." in
  let nodes = Arg.(value & opt int 3326 & info [ "nodes" ] ~doc:"Topology size.") in
  let trials = Arg.(value & opt int 20 & info [ "trials" ] ~doc:"Groups per size.") in
  let topology =
    Arg.(
      value
      & opt string "power-law"
      & info [ "topology" ] ~doc:"Topology family: power-law or transit-stub.")
  in
  Cmd.v
    (Cmd.info "fig4" ~doc)
    Term.(
      const (fun obs jobs check summary nodes trials topology seed ->
          Par.set_jobs jobs;
          with_obs obs (run_fig4 check summary nodes trials topology seed))
      $ obs_term $ jobs_arg $ check_arg $ summary_flag $ nodes $ trials $ topology $ seed_arg)

let fig4_modern_cmd =
  let doc =
    "The state-vs-members study at modern scale: arena-backed per-router state under group and \
     link churn, with incrementally maintained routing."
  in
  let domains =
    Arg.(value & opt int 2000 & info [ "domains" ] ~doc:"Target domain count (transit-stub).")
  in
  let groups = Arg.(value & opt int 200 & info [ "groups" ] ~doc:"Group-id space per trial.") in
  let roots = Arg.(value & opt int 8 & info [ "roots" ] ~doc:"Distinct tree-root domains.") in
  let events = Arg.(value & opt int 4000 & info [ "events" ] ~doc:"Membership events per trial.") in
  let link_every =
    Arg.(
      value & opt int 500
      & info [ "link-every" ]
          ~doc:"One peer-link failure/restore per this many membership events (0 disables).")
  in
  let trials = Arg.(value & opt int 2 & info [ "trials" ] ~doc:"Independent trials (averaged).") in
  let scratch =
    Arg.(
      value & flag
      & info [ "scratch" ]
          ~doc:
            "Recompute every in-use tree from scratch on each link event (the retired baseline) \
             instead of repairing the maintained trees in place.")
  in
  Cmd.v
    (Cmd.info "fig4-modern" ~doc)
    Term.(
      const (fun obs jobs check summary domains groups roots events link_every trials scratch seed ->
          Par.set_jobs jobs;
          with_obs obs
            (run_fig4_modern check summary domains groups roots events link_every trials scratch
               seed jobs))
      $ obs_term $ jobs_arg $ check_arg $ summary_flag $ domains $ groups $ roots $ events
      $ link_every $ trials $ scratch $ seed_arg)

let ablate_placement_cmd =
  Cmd.v
    (Cmd.info "ablate-placement"
       ~doc:"A2: first-sub-prefix vs random claim placement (aggregation impact).")
    Term.(
      const (fun obs jobs check days seed ->
          Par.set_jobs jobs;
          with_obs obs (fun _ -> run_ablate_placement check days seed))
      $ obs_basic_term $ jobs_arg $ check_arg $ days_arg 400 $ seed_arg)

let ablate_threshold_cmd =
  Cmd.v
    (Cmd.info "ablate-threshold"
       ~doc:"A3: occupancy-threshold sweep (utilization/aggregation trade-off).")
    Term.(
      const (fun obs jobs check days seed ->
          Par.set_jobs jobs;
          with_obs obs (fun _ -> run_ablate_threshold check days seed))
      $ obs_basic_term $ jobs_arg $ check_arg $ days_arg 400 $ seed_arg)

let ablate_root_cmd =
  let nodes = Arg.(value & opt int 1000 & info [ "nodes" ] ~doc:"Topology size.") in
  let trials = Arg.(value & opt int 20 & info [ "trials" ] ~doc:"Trials.") in
  Cmd.v
    (Cmd.info "ablate-root" ~doc:"A4: root-domain placement sensitivity for tree quality.")
    Term.(
      const (fun obs check nodes trials seed ->
          with_obs obs (fun _ -> run_ablate_root check nodes trials seed))
      $ obs_basic_term $ check_arg $ nodes $ trials $ seed_arg)

let ablate_kampai_cmd =
  Cmd.v
    (Cmd.info "ablate-kampai"
       ~doc:"A5: contiguous CIDR claims vs Kampai non-contiguous masks.")
    Term.(
      const (fun obs check days seed ->
          with_obs obs (fun _ -> run_ablate_kampai check days seed))
      $ obs_basic_term $ check_arg $ days_arg 400 $ seed_arg)

let ablate_claim_cmd =
  Cmd.v
    (Cmd.info "ablate-claim"
       ~doc:"A1: claim-collide vs query-response allocation under partition.")
    Term.(
      const (fun obs check seed -> with_obs obs (fun _ -> run_ablate_claim check seed))
      $ obs_basic_term $ check_arg $ seed_arg)

let baselines_cmd =
  let nodes = Arg.(value & opt int 1000 & info [ "nodes" ] ~doc:"Topology size.") in
  let trials = Arg.(value & opt int 15 & info [ "trials" ] ~doc:"Trials per group size.") in
  Cmd.v
    (Cmd.info "baselines" ~doc:"Related-work baselines (HPIM, HDVMRP) vs BGMP trees.")
    Term.(
      const (fun obs jobs check nodes trials seed ->
          Par.set_jobs jobs;
          with_obs obs (fun _ -> run_baselines check nodes trials seed))
      $ obs_basic_term $ jobs_arg $ check_arg $ nodes $ trials $ seed_arg)

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz DOT of the Figure-3 topology with its shared tree.")
    Term.(
      const (fun obs jobs check loss () ->
          Par.set_jobs jobs;
          with_obs obs (fun _ -> run_dot check loss ()))
      $ obs_basic_term $ jobs_arg $ check_arg $ loss_arg $ const ())

let soak_cmd =
  let steps = Arg.(value & opt int 300 & info [ "steps" ] ~doc:"Randomized steps.") in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Randomized churn + failure soak of the integrated stack with invariant checking.")
    Term.(
      const (fun obs jobs check tr steps seed loss ->
          Par.set_jobs jobs;
          with_obs obs (run_soak check tr steps seed loss))
      $ obs_term $ jobs_arg $ check_arg $ trace_out_arg $ steps $ seed_arg $ loss_arg)

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"End-to-end MASC+BGP+BGMP run on the Figure-1 topology.")
    Term.(
      const (fun obs jobs check tr loss () ->
          Par.set_jobs jobs;
          with_obs obs (fun sampling -> run_demo check tr loss sampling ()))
      $ obs_term $ jobs_arg $ check_arg $ trace_out_arg $ loss_arg $ const ())

let beacon_cmd =
  let domains =
    Arg.(value & opt int 20 & info [ "domains" ] ~doc:"Target domain count (rounded to the transit-stub shape).")
  in
  let per_domain =
    Arg.(value & opt int 2 & info [ "per-domain" ] ~doc:"Beacons per domain.")
  in
  let probes = Arg.(value & opt int 3 & info [ "probes" ] ~doc:"Probes per source.") in
  let trials = Arg.(value & opt int 1 & info [ "trials" ] ~doc:"Independent trials.") in
  let churn =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:
            "Fail the last stub's uplink a third of the way through the measurement window and \
             restore it at two thirds.")
  in
  let matrix_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "matrix-out" ] ~docv:"FILE"
          ~doc:
            "Write the delivery matrix as JSON lines to $(docv); inspect it with \
             $(b,report --matrix).")
  in
  Cmd.v
    (Cmd.info "beacon"
       ~doc:
         "Active measurement: beacon fleets probe per-domain groups and an interdomain session \
          over real BGMP trees, accumulating an NxN delivery/loss/latency matrix (dbeacon's \
          view of the multicast internet).")
    Term.(
      const (fun obs jobs check domains per_domain probes trials seed loss churn matrix_out ->
          Par.set_jobs jobs;
          with_obs obs
            (run_beacon check domains per_domain probes trials seed loss churn matrix_out jobs))
      $ obs_term $ jobs_arg $ check_arg $ domains $ per_domain $ probes $ trials $ seed_arg
      $ loss_arg $ churn $ matrix_out)

let trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE.jsonl" ~doc:"JSONL trace file (from a Jsonl trace sink).")
  in
  let id =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"TRACE_ID"
          ~doc:
            "Render the causal chain for one trace id (e.g. claim:1:224.0.0.0/24, \
             group:224.0.128.1, join:...) instead of the full timelines.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Inspect a JSONL trace: per-chain timelines, end-to-end claim/join latency summaries, \
          and causal chains for a given trace id.")
    Term.(
      const (fun obs file id -> with_obs obs (fun _ -> run_trace file id))
      $ obs_basic_term $ file $ id)

let explore_cmd =
  let budget =
    Arg.(
      value & opt int 50
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Fault schedules to run: every single-fault schedule over the arena's links is \
             enumerated first, then seeded random multi-fault episodes fill the rest of the \
             budget.")
  in
  let max_faults =
    Arg.(
      value & opt int 6
      & info [ "max-faults" ] ~docv:"K" ~doc:"Fault-step ceiling per sampled schedule.")
  in
  let ledger =
    Arg.(
      value
      & opt string "explore_ledger.jsonl"
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Violation ledger: one JSON outcome record per schedule, written in trial order \
             (byte-identical at any --jobs); triage it with $(b,report --triage).")
  in
  let repro_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:
            "Re-run the smallest shrunk counterexamples sequentially with the flight recorder \
             on, writing a replayable recording (compare with $(b,report --diff)) and a trace \
             dump (inspect with $(b,trace)) per counterexample into $(docv).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Fault-scenario explorer: search link-failure/partition/loss schedules against the \
          invariant oracle (plus non-convergence watermarks), shrink every failure to a minimal \
          counterexample, and append structured outcomes to a violation ledger (triage it with \
          $(b,report --triage)).")
    Term.(
      const (fun obs jobs budget max_faults ledger repro_dir seed ->
          Par.set_jobs jobs;
          with_obs obs (fun _ -> run_explore budget max_faults seed ledger repro_dir))
      $ obs_basic_term $ jobs_arg $ budget $ max_faults $ ledger $ repro_dir $ seed_arg)

let report_cmd =
  let profile =
    Arg.(
      value & opt string "profile.jsonl"
      & info [ "profile" ] ~docv:"FILE" ~doc:"Profile JSONL to read (written by --profile).")
  in
  let timeseries =
    Arg.(
      value
      & opt string "timeseries.jsonl"
      & info [ "timeseries" ] ~docv:"FILE"
          ~doc:"Telemetry JSONL to read (written by --sample).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Metrics JSON snapshot to re-tabulate (written by --metrics=FILE).")
  in
  let series =
    Arg.(
      value
      & opt (some string) None
      & info [ "series" ] ~docv:"NAME"
          ~doc:
            "Dump one telemetry series as (time, value) pairs instead of the summary table \
             (e.g. grib.routes, engine.pending, alloc.utilization).")
  in
  let fold =
    Arg.(
      value
      & opt (some string) None
      & info [ "fold" ] ~docv:"FILE"
          ~doc:
            "Also write flamegraph folded stacks (one \"a;b;c self-microseconds\" line per \
             span) to $(docv).")
  in
  let matrix =
    Arg.(
      value
      & opt (some string) None
      & info [ "matrix" ] ~docv:"FILE"
          ~doc:
            "Delivery-matrix JSONL to summarize (written by $(b,beacon --matrix-out)): \
             measurement timeline, aggregate summary, worst pairs.")
  in
  let triage =
    Arg.(
      value
      & opt (some string) None
      & info [ "triage" ] ~docv:"LEDGER"
          ~doc:
            "Triage an explorer violation ledger (written by $(b,explore)): bucket outcomes by \
             verdict and by violated invariant, rank counterexamples by minimality, and print \
             the blamed causal chain out of each top counterexample's repro trace.  Exclusive \
             with the other report views.")
  in
  let diff =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Compare two flight recordings (written by --record), given as the two positional \
             arguments: find the first semantically divergent record, print an aligned context \
             window and both sides' causal chains.  Exits 0 when identical, 1 on divergence.")
  in
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"RECORDING.jsonl" ~doc:"Recordings to compare (with $(b,--diff)).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Summarize a run's observability artifacts: the per-phase wall-clock/allocation \
          breakdown from a --profile JSONL, sim-time telemetry series from a --sample JSONL, \
          a --metrics JSON snapshot, a beacon delivery matrix, an explorer violation ledger \
          (--triage) — or diff two flight recordings.")
    Term.(
      const run_report $ profile $ timeseries $ metrics $ series $ fold $ matrix $ triage $ diff
      $ files)

let main_cmd =
  let doc = "Experiments for the MASC/BGMP inter-domain multicast architecture (SIGCOMM 1998)." in
  Cmd.group
    (Cmd.info "masc-bgmp" ~version:"1.0.0" ~doc)
    [
      fig2_cmd;
      fig4_cmd;
      fig4_modern_cmd;
      ablate_placement_cmd;
      ablate_threshold_cmd;
      ablate_root_cmd;
      ablate_kampai_cmd;
      ablate_claim_cmd;
      baselines_cmd;
      beacon_cmd;
      soak_cmd;
      explore_cmd;
      dot_cmd;
      trace_cmd;
      report_cmd;
      demo_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
