(* Golden-figure regression: pin the paper figures' CLI output
   byte-for-byte.  The copies under [golden/] were captured before the
   transport substrate landed, so these tests prove the refactor is
   output-identical at loss zero — any change to scheduling order, RNG
   consumption, or delivery timing shows up here as a diff. *)

let check = Alcotest.check

(* The test runs with cwd [_build/default/test]; the binary and the
   golden copies are declared as deps in [test/dune]. *)
let exe = Filename.concat ".." (Filename.concat "bin" "main.exe")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_figure ~args ~golden () =
  let out = Filename.temp_file "golden" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe) args (Filename.quote out)
      in
      let rc = Sys.command cmd in
      check Alcotest.int (args ^ ": exit code") 0 rc;
      check Alcotest.string
        (args ^ ": output identical to golden/" ^ golden)
        (read_file (Filename.concat "golden" golden))
        (read_file out))

let suite =
  [
    ("fig1 demo", `Quick, check_figure ~args:"demo" ~golden:"fig1_demo.txt");
    ("fig3 dot", `Quick, check_figure ~args:"dot" ~golden:"fig3_dot.txt");
    ( "fig2 summary",
      `Quick,
      check_figure ~args:"fig2 --summary --days 450" ~golden:"fig2_summary.txt" );
    ( "fig4 summary",
      `Quick,
      check_figure ~args:"fig4 --summary --nodes 1000 --trials 5" ~golden:"fig4_summary.txt" );
  ]
