(* Golden-figure regression: pin the paper figures' CLI output
   byte-for-byte.  The copies under [golden/] were captured before the
   transport substrate landed, so these tests prove the refactor is
   output-identical at loss zero — any change to scheduling order, RNG
   consumption, or delivery timing shows up here as a diff. *)

let check = Alcotest.check

(* The test runs with cwd [_build/default/test]; the binary and the
   golden copies are declared as deps in [test/dune]. *)
let exe = Filename.concat ".." (Filename.concat "bin" "main.exe")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_figure ~args ~golden () =
  let out = Filename.temp_file "golden" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe) args (Filename.quote out)
      in
      let rc = Sys.command cmd in
      check Alcotest.int (args ^ ": exit code") 0 rc;
      check Alcotest.string
        (args ^ ": output identical to golden/" ^ golden)
        (read_file (Filename.concat "golden" golden))
        (read_file out))

(* The --metrics key set: which instruments a figure run registers is
   part of the observable contract.  Pinning the (sorted) names — not
   the timing-dependent values — catches a renamed or lost instrument
   without making the test flaky. *)
let check_metric_keys ~args ~golden () =
  let json = Filename.temp_file "metrics" ".json" in
  let out = Filename.temp_file "golden" ".out" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ json; out ])
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s --metrics=%s > %s 2>&1" (Filename.quote exe) args
          (Filename.quote json) (Filename.quote out)
      in
      let rc = Sys.command cmd in
      check Alcotest.int (args ^ ": exit code") 0 rc;
      let re = Str.regexp "\"name\": \"\\([^\"]+\\)\"" in
      let keys = ref [] in
      let ic = open_in json in
      (try
         while true do
           let line = input_line ic in
           try
             ignore (Str.search_forward re line 0);
             keys := Str.matched_group 1 line :: !keys
           with Not_found -> ()
         done
       with End_of_file -> ());
      close_in ic;
      let got = String.concat "\n" (List.rev !keys) ^ "\n" in
      check Alcotest.string
        (args ^ ": metric key set identical to golden/" ^ golden)
        (read_file (Filename.concat "golden" golden))
        got)

(* Cross-jobs determinism: the same goldens must hold at any --jobs.
   All randomness is drawn on the submitting domain and Obs shards fold
   back in task order, so the worker count is unobservable. *)

(* The --metrics export must also be byte-identical across job counts;
   only the harness.wall_seconds gauge (real elapsed time) may differ. *)
let check_metrics_jobs_invariant ~args () =
  let run jobs =
    let json = Filename.temp_file "metrics" ".json" in
    let out = Filename.temp_file "golden" ".out" in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ json; out ])
      (fun () ->
        let cmd =
          Printf.sprintf "%s %s --jobs %d --metrics=%s > %s 2>&1" (Filename.quote exe) args jobs
            (Filename.quote json) (Filename.quote out)
        in
        let rc = Sys.command cmd in
        check Alcotest.int (Printf.sprintf "%s --jobs %d: exit code" args jobs) 0 rc;
        String.concat "\n"
          (List.filter
             (fun line ->
               try
                 ignore (Str.search_forward (Str.regexp_string "harness.wall_seconds") line 0);
                 false
               with Not_found -> true)
             (String.split_on_char '\n' (read_file json))))
  in
  check Alcotest.string
    (args ^ ": metrics identical at --jobs 1 and --jobs 4")
    (run 1) (run 4)

(* Byte-identical stdout across job counts, without a golden copy —
   for runs whose exact numbers are pinned elsewhere. *)
let check_stdout_jobs_invariant ~args ~jobs () =
  let run jobs =
    let out = Filename.temp_file "golden" ".out" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
      (fun () ->
        let cmd =
          Printf.sprintf "%s %s --jobs %d > %s 2>&1" (Filename.quote exe) args jobs
            (Filename.quote out)
        in
        let rc = Sys.command cmd in
        check Alcotest.int (Printf.sprintf "%s --jobs %d: exit code" args jobs) 0 rc;
        read_file out)
  in
  match List.map run jobs with
  | [] -> ()
  | first :: rest ->
      List.iteri
        (fun i got ->
          check Alcotest.string
            (Printf.sprintf "%s: output identical at --jobs %d and %d" args (List.hd jobs)
               (List.nth jobs (i + 1)))
            first got)
        rest

(* Flight-recorder fingerprint on stderr must be byte-identical across
   job counts: shard records fold back in task order and each task
   mints spans from a fresh minter, so --jobs is unobservable in the
   event stream too. *)
let check_fingerprint_jobs_invariant ~args ~jobs () =
  let run jobs =
    let err = Filename.temp_file "fp" ".err" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove err with Sys_error _ -> ())
      (fun () ->
        let cmd =
          Printf.sprintf "%s %s --fingerprint --jobs %d > /dev/null 2> %s" (Filename.quote exe)
            args jobs (Filename.quote err)
        in
        let rc = Sys.command cmd in
        check Alcotest.int (Printf.sprintf "%s --jobs %d: exit code" args jobs) 0 rc;
        let out = read_file err in
        check Alcotest.bool
          (Printf.sprintf "%s --jobs %d: stderr carries a fingerprint" args jobs)
          true
          (try
             ignore (Str.search_forward (Str.regexp_string "fingerprint ") out 0);
             true
           with Not_found -> false);
        out)
  in
  match List.map run jobs with
  | [] -> ()
  | first :: rest ->
      List.iteri
        (fun i got ->
          check Alcotest.string
            (Printf.sprintf "%s: fingerprint identical at --jobs %d and %d" args (List.hd jobs)
               (List.nth jobs (i + 1)))
            first got)
        rest

let contains needle hay =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

(* --check-invariants must leave stdout byte-identical: the verdict is
   stderr-only, per the CLI header contract. *)
let check_invariants_stdout_invariant ~args () =
  let run extra =
    let out = Filename.temp_file "ck" ".out" and err = Filename.temp_file "ck" ".err" in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ out; err ])
      (fun () ->
        let cmd =
          Printf.sprintf "%s %s%s > %s 2> %s" (Filename.quote exe) args extra
            (Filename.quote out) (Filename.quote err)
        in
        let rc = Sys.command cmd in
        check Alcotest.int (args ^ extra ^ ": exit code") 0 rc;
        (read_file out, read_file err))
  in
  let plain, _ = run "" in
  let checked, err = run " --check-invariants" in
  check Alcotest.string (args ^ ": stdout unchanged by --check-invariants") plain checked;
  check Alcotest.bool (args ^ ": stderr reports the verdict") true
    (contains "invariants clean" err)

(* End-to-end explorer: the campaign must find the seeded partition
   canary, shrink it to one fault, write a replayable recording naming
   the violated invariant, and produce a byte-identical ledger and
   stdout at any --jobs; triage must render the blamed causal chain. *)
let check_explore_cli () =
  let ledger j = Printf.sprintf "explore_test_j%d.jsonl" j in
  let repro_dir = "explore_test_repro" in
  let out j = Printf.sprintf "explore_test_j%d.out" j in
  let triage_out = "explore_test_triage.out" in
  let jobs = [ 1; 4; 8 ] in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      (triage_out :: List.concat_map (fun j -> [ ledger j; out j ]) jobs);
    if Sys.file_exists repro_dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat repro_dir f) with Sys_error _ -> ())
        (Sys.readdir repro_dir);
      try Sys.rmdir repro_dir with Sys_error _ -> ()
    end
  in
  Fun.protect ~finally:cleanup (fun () ->
      List.iter
        (fun j ->
          let cmd =
            Printf.sprintf "%s explore --budget 10 --seed 7 --jobs %d --ledger %s --repro-dir %s > %s 2>&1"
              (Filename.quote exe) j (ledger j) repro_dir (out j)
          in
          check Alcotest.int (Printf.sprintf "explore --jobs %d: exit code" j) 0 (Sys.command cmd))
        jobs;
      let l1 = read_file (ledger 1) in
      List.iter
        (fun j ->
          check Alcotest.string
            (Printf.sprintf "ledger identical at --jobs 1 and --jobs %d" j)
            l1
            (read_file (ledger j));
          check Alcotest.string
            (Printf.sprintf "stdout identical at --jobs 1 and --jobs %d" j)
            (read_file (out 1)) (read_file (out j)))
        [ 4; 8 ];
      check Alcotest.bool "ledger records the canary violation" true
        (contains "masc-sibling-overlap" l1);
      check Alcotest.bool "canary shrinks to a single fault" true
        (contains "\"min_faults\": 1" l1);
      check Alcotest.bool "ledger points at the repro recording" true
        (contains "cex-0.recording.jsonl" l1);
      let recording = read_file (Filename.concat repro_dir "cex-0.recording.jsonl") in
      check Alcotest.bool "recording names the violated invariant" true
        (contains "explore.violation" recording && contains "masc-sibling-overlap" recording);
      check Alcotest.bool "recording carries the blamed trace id" true
        (contains "claim:" recording);
      let cmd =
        Printf.sprintf "%s report --triage %s > %s 2>&1" (Filename.quote exe) (ledger 1)
          triage_out
      in
      check Alcotest.int "report --triage: exit code" 0 (Sys.command cmd);
      let triage = read_file triage_out in
      check Alcotest.bool "triage buckets by invariant" true
        (contains "masc-sibling-overlap" triage);
      check Alcotest.bool "triage blames the claim chain" true (contains "blames claim:" triage);
      check Alcotest.bool "triage renders the causal chain" true
        (contains "causal chain" triage))

(* End-to-end diff: two demo recordings that differ only in --loss must
   diverge, and the report must say where. *)
let check_record_diff () =
  let rec_a = Filename.temp_file "rec_a" ".jsonl" in
  let rec_b = Filename.temp_file "rec_b" ".jsonl" in
  let out = Filename.temp_file "diff" ".out" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ rec_a; rec_b; out ])
    (fun () ->
      let record loss file =
        let cmd =
          Printf.sprintf "%s demo --loss %s --record=%s > /dev/null 2>&1" (Filename.quote exe)
            loss (Filename.quote file)
        in
        check Alcotest.int ("demo --loss " ^ loss ^ ": exit code") 0 (Sys.command cmd)
      in
      record "0.0" rec_a;
      record "0.02" rec_b;
      let diff a b =
        Sys.command
          (Printf.sprintf "%s report --diff %s %s > %s 2>&1" (Filename.quote exe)
             (Filename.quote a) (Filename.quote b) (Filename.quote out))
      in
      check Alcotest.int "identical recordings: exit 0" 0 (diff rec_a rec_a);
      let has needle hay =
        try
          ignore (Str.search_forward (Str.regexp_string needle) hay 0);
          true
        with Not_found -> false
      in
      check Alcotest.bool "identical recordings reported as such" true
        (has "identical" (read_file out));
      check Alcotest.int "divergent recordings: exit 1" 1 (diff rec_a rec_b);
      let report = read_file out in
      check Alcotest.bool "first divergence located" true (has "first divergence" report);
      check Alcotest.bool "loss shows up as a drop record" true (has "net.drop." report))

let suite =
  [
    ("fig1 demo", `Quick, check_figure ~args:"demo" ~golden:"fig1_demo.txt");
    ("fig1 demo --jobs 4", `Quick, check_figure ~args:"demo --jobs 4" ~golden:"fig1_demo.txt");
    ("fig3 dot", `Quick, check_figure ~args:"dot" ~golden:"fig3_dot.txt");
    ("fig3 dot --jobs 4", `Quick, check_figure ~args:"dot --jobs 4" ~golden:"fig3_dot.txt");
    ( "fig2 summary",
      `Quick,
      check_figure ~args:"fig2 --summary --days 450" ~golden:"fig2_summary.txt" );
    ( "fig2 summary --jobs 4",
      `Quick,
      check_figure ~args:"fig2 --summary --days 450 --jobs 4" ~golden:"fig2_summary.txt" );
    ( "fig4 summary",
      `Quick,
      check_figure ~args:"fig4 --summary --nodes 1000 --trials 5" ~golden:"fig4_summary.txt" );
    ( "fig4 summary --jobs 4",
      `Quick,
      check_figure ~args:"fig4 --summary --nodes 1000 --trials 5 --jobs 4"
        ~golden:"fig4_summary.txt" );
    ( "fig4 summary --jobs 8",
      `Quick,
      check_figure ~args:"fig4 --summary --nodes 1000 --trials 5 --jobs 8"
        ~golden:"fig4_summary.txt" );
    ( "fig4 metrics identical across jobs",
      `Quick,
      check_metrics_jobs_invariant ~args:"fig4 --summary --nodes 200 --trials 3" );
    ( "beacon summary",
      `Quick,
      check_figure
        ~args:"beacon --domains 8 --per-domain 1 --probes 2 --check-invariants"
        ~golden:"beacon_summary.txt" );
    ( "beacon summary --jobs 4",
      `Quick,
      check_figure
        ~args:"beacon --domains 8 --per-domain 1 --probes 2 --check-invariants --jobs 4"
        ~golden:"beacon_summary.txt" );
    ( "beacon lossy matrix identical across jobs",
      `Quick,
      check_stdout_jobs_invariant
        ~args:"beacon --domains 8 --per-domain 1 --probes 2 --trials 3 --loss 0.05"
        ~jobs:[ 1; 4; 8 ] );
    ( "fig4-modern summary",
      `Quick,
      check_figure
        ~args:"fig4-modern --domains 600 --groups 50 --events 1500 --trials 2"
        ~golden:"fig4_modern_summary.txt" );
    ( "fig4-modern summary --jobs 4",
      `Quick,
      check_figure
        ~args:"fig4-modern --domains 600 --groups 50 --events 1500 --trials 2 --jobs 4"
        ~golden:"fig4_modern_summary.txt" );
    ( "fig4-modern metrics identical across jobs",
      `Quick,
      check_metrics_jobs_invariant
        ~args:"fig4-modern --summary --domains 600 --groups 50 --events 1500 --trials 2" );
    ( "fig4-modern fingerprint identical across jobs",
      `Quick,
      check_fingerprint_jobs_invariant
        ~args:"fig4-modern --summary --domains 600 --groups 50 --events 1500 --trials 2"
        ~jobs:[ 1; 4 ] );
    ( "fig2 metric keys",
      `Quick,
      check_metric_keys ~args:"fig2 --summary --days 30" ~golden:"fig2_metrics_keys.txt" );
    ( "fig4 metric keys",
      `Quick,
      check_metric_keys ~args:"fig4 --summary --nodes 200 --trials 3"
        ~golden:"fig4_metrics_keys.txt" );
    ( "fig4 fingerprint identical across jobs",
      `Quick,
      check_fingerprint_jobs_invariant ~args:"fig4 --summary --nodes 200 --trials 3"
        ~jobs:[ 1; 4 ] );
    ( "fig2 fingerprint identical across jobs",
      `Quick,
      check_fingerprint_jobs_invariant ~args:"fig2 --summary --days 60" ~jobs:[ 1; 4 ] );
    ( "beacon fingerprint identical across jobs",
      `Quick,
      check_fingerprint_jobs_invariant
        ~args:"beacon --domains 8 --per-domain 1 --probes 2 --trials 3 --loss 0.05"
        ~jobs:[ 1; 4; 8 ] );
    ("report --diff on demo recordings", `Quick, check_record_diff);
    ( "fig4-modern --check-invariants leaves stdout unchanged",
      `Quick,
      check_invariants_stdout_invariant
        ~args:"fig4-modern --domains 600 --groups 50 --events 1500 --trials 2" );
    ("explore finds, shrinks, reproduces; ledger jobs-invariant", `Quick, check_explore_cli);
  ]
