(* Differential tests: the CSR kernels (Spf.bfs/dijkstra/valley_free_dist
   and their _csr forms) against the list-based reference kernels, and
   the SPF cache / precomputed-paths plumbing against the uncached
   results, on seeded random topologies. *)

let check = Alcotest.check

let topologies seed =
  let pl = Gen.power_law ~rng:(Rng.create seed) ~n:220 ~m:2 in
  let ts =
    Gen.transit_stub ~rng:(Rng.create seed) ~backbones:3 ~regionals_per_backbone:4
      ~stubs_per_regional:5
  in
  [ ("power_law", pl); ("transit_stub", ts) ]

let sources rng n k = List.init k (fun _ -> Rng.int rng n)

let int_array = Alcotest.array Alcotest.int

let test_bfs_matches_reference () =
  List.iter
    (fun seed ->
      List.iter
        (fun (name, topo) ->
          let rng = Rng.create (seed * 7 + 1) in
          let n = Topo.domain_count topo in
          List.iter
            (fun src ->
              let fast = Spf.bfs topo src in
              let slow = Spf.bfs_list topo src in
              check int_array (Printf.sprintf "%s/%d/%d dist" name seed src) slow.Spf.dist
                fast.Spf.dist;
              check int_array (Printf.sprintf "%s/%d/%d via" name seed src) slow.Spf.via
                fast.Spf.via)
            (sources rng n 5))
        (topologies seed))
    [ 11; 42; 1998 ]

let test_dijkstra_matches_reference () =
  List.iter
    (fun seed ->
      List.iter
        (fun (name, topo) ->
          let rng = Rng.create (seed * 7 + 2) in
          let n = Topo.domain_count topo in
          List.iter
            (fun src ->
              let fast = Spf.dijkstra topo src in
              let slow = Spf.dijkstra_list topo src in
              (* Both kernels add the same link delays in the same order
                 and break heap ties FIFO, so even the floats and the
                 predecessor choices are bitwise identical. *)
              check (Alcotest.array (Alcotest.float 0.0))
                (Printf.sprintf "%s/%d/%d wdist" name seed src)
                slow.Spf.wdist fast.Spf.wdist;
              check int_array (Printf.sprintf "%s/%d/%d wvia" name seed src) slow.Spf.wvia
                fast.Spf.wvia)
            (sources rng n 5))
        (topologies seed))
    [ 11; 42; 1998 ]

let test_valley_free_matches_reference () =
  List.iter
    (fun seed ->
      List.iter
        (fun (name, topo) ->
          let rng = Rng.create (seed * 7 + 3) in
          let n = Topo.domain_count topo in
          List.iter
            (fun src ->
              check int_array
                (Printf.sprintf "%s/%d/%d valley-free" name seed src)
                (Spf.valley_free_dist_list topo src)
                (Spf.valley_free_dist topo src))
            (sources rng n 5))
        (topologies seed))
    [ 11; 42; 1998 ]

let test_explicit_workspace_reuse () =
  let topo = Gen.power_law ~rng:(Rng.create 5) ~n:150 ~m:2 in
  let csr = Topo.freeze topo in
  let ws = Spf.make_workspace csr in
  (* Reusing one workspace across sources and kernels must not leak
     state between calls. *)
  List.iter
    (fun src ->
      let a = Spf.bfs_csr ~ws csr src in
      let b = Spf.bfs_csr csr src in
      check int_array "ws bfs dist" b.Spf.dist a.Spf.dist;
      let wa = Spf.dijkstra_csr ~ws csr src in
      let wb = Spf.dijkstra_csr csr src in
      check (Alcotest.array (Alcotest.float 0.0)) "ws dijkstra wdist" wb.Spf.wdist wa.Spf.wdist;
      check int_array "ws valley free" (Spf.valley_free_dist_csr csr src)
        (Spf.valley_free_dist_csr ~ws csr src))
    [ 0; 17; 49; 149 ]

let test_freeze_memoized_and_invalidated () =
  let topo = Gen.line ~n:4 in
  let c1 = Topo.freeze topo in
  let c2 = Topo.freeze topo in
  check Alcotest.bool "freeze memoized" true (c1 == c2);
  let d = Topo.add_domain topo ~name:"X" ~kind:Domain.Stub in
  Topo.add_link topo 3 d Topo.Peer;
  let c3 = Topo.freeze topo in
  check Alcotest.bool "mutation invalidates memo" true (c1 != c3);
  check Alcotest.int "old snapshot unchanged" 4 c1.Topo.csr_nodes;
  check Alcotest.int "new snapshot sees the link" 5 c3.Topo.csr_nodes;
  let p = Spf.bfs topo 0 in
  check Alcotest.int "bfs over refrozen graph" 4 (Spf.dist p d)

let test_cache_transparent () =
  let topo = Gen.power_law ~rng:(Rng.create 21) ~n:180 ~m:2 in
  let cache = Spf.make_cache topo in
  List.iter
    (fun src ->
      let cached = Spf.bfs_cached cache src in
      let plain = Spf.bfs topo src in
      check int_array "cached dist" plain.Spf.dist cached.Spf.dist;
      check int_array "cached via" plain.Spf.via cached.Spf.via)
    [ 3; 3; 99; 3; 99; 0 ];
  let hits, misses = Spf.cache_stats cache in
  check Alcotest.int "misses = distinct sources" 3 misses;
  check Alcotest.int "hits = repeats" 3 hits;
  check Alcotest.bool "repeat is the same array" true
    (Spf.bfs_cached cache 3 == Spf.bfs_cached cache 3)

let test_precomputed_paths_do_not_change_results () =
  let topo = Gen.power_law ~rng:(Rng.create 77) ~n:200 ~m:2 in
  let cache = Spf.make_cache topo in
  let rng = Rng.create 78 in
  let n = Topo.domain_count topo in
  for _ = 1 to 10 do
    let source = Rng.int rng n in
    let receivers =
      Array.of_list
        (List.filter (fun d -> d <> source)
           (Array.to_list (Rng.sample_without_replacement rng 12 n)))
    in
    let root = receivers.(0) in
    let group = { Path_eval.source; root; receivers } in
    let plain = Path_eval.evaluate topo group in
    let cached =
      Path_eval.evaluate ~from_source:(Spf.bfs_cached cache source)
        ~from_root:(Spf.bfs_cached cache root) topo group
    in
    check int_array "spt" plain.Path_eval.spt cached.Path_eval.spt;
    check int_array "unidirectional" plain.Path_eval.unidirectional
      cached.Path_eval.unidirectional;
    check int_array "bidirectional" plain.Path_eval.bidirectional cached.Path_eval.bidirectional;
    check int_array "hybrid" plain.Path_eval.hybrid cached.Path_eval.hybrid;
    (* Same for a tree built from precomputed root paths. *)
    let members = Array.to_list receivers in
    let t1 = Shared_tree.build topo ~root ~members in
    let t2 = Shared_tree.build ~to_root:(Spf.bfs_cached cache root) topo ~root ~members in
    check Alcotest.int "tree node count" (Shared_tree.node_count t1) (Shared_tree.node_count t2);
    List.iter
      (fun m ->
        check Alcotest.int "member depth" (Shared_tree.depth t1 m) (Shared_tree.depth t2 m);
        check (Alcotest.option Alcotest.int) "member parent" (Shared_tree.parent t1 m)
          (Shared_tree.parent t2 m))
      members
  done

let test_mismatched_precomputed_paths_rejected () =
  let topo = Gen.line ~n:5 in
  let wrong = Spf.bfs topo 2 in
  Alcotest.check_raises "shared tree rejects wrong root"
    (Invalid_argument "Shared_tree.build: to_root paths not rooted at root") (fun () ->
      ignore (Shared_tree.build ~to_root:wrong topo ~root:0 ~members:[ 4 ]));
  Alcotest.check_raises "path eval rejects wrong source"
    (Invalid_argument "Path_eval.evaluate: from_source paths have the wrong source") (fun () ->
      ignore
        (Path_eval.evaluate ~from_source:wrong topo
           { Path_eval.source = 0; root = 1; receivers = [| 4 |] }))

let test_experiment_unchanged_by_cache () =
  (* The experiment driver now routes every BFS through its SPF cache;
     its points must be exactly what uncached evaluation produces. *)
  let p =
    {
      Tree_experiment.default_params with
      Tree_experiment.nodes = 150;
      group_sizes = [ 1; 5; 20 ];
      trials = 5;
      seed = 3;
    }
  in
  let r = Tree_experiment.run p in
  (* Replay the driver's sampling with uncached Path_eval calls. *)
  let rng = Rng.create p.Tree_experiment.seed in
  let topo =
    Gen.power_law ~rng ~n:p.Tree_experiment.nodes ~m:p.Tree_experiment.attach_degree
  in
  let n = Topo.domain_count topo in
  let expected =
    List.map
      (fun size ->
        let ua = Stats.create () in
        for _ = 1 to p.Tree_experiment.trials do
          let source = Rng.int rng n in
          let receivers =
            let draws = Rng.sample_without_replacement rng (size + 1) n in
            let filtered =
              Array.of_list (List.filter (fun d -> d <> source) (Array.to_list draws))
            in
            Array.sub filtered 0 size
          in
          let root = receivers.(0) in
          let paths = Path_eval.evaluate topo { Path_eval.source; root; receivers } in
          let s = Path_eval.ratios ~baseline:paths.Path_eval.spt paths.Path_eval.unidirectional in
          if s.Path_eval.receivers_counted > 0 then Stats.add ua s.Path_eval.avg_ratio
        done;
        Stats.mean ua)
      p.Tree_experiment.group_sizes
  in
  List.iter2
    (fun (pt : Tree_experiment.point) expected_uni ->
      check (Alcotest.float 0.0) "uni_avg identical to uncached replay" expected_uni
        pt.Tree_experiment.uni_avg)
    r.Tree_experiment.points expected

let suite =
  [
    ("bfs matches reference", `Quick, test_bfs_matches_reference);
    ("dijkstra matches reference", `Quick, test_dijkstra_matches_reference);
    ("valley free matches reference", `Quick, test_valley_free_matches_reference);
    ("explicit workspace reuse", `Quick, test_explicit_workspace_reuse);
    ("freeze memoized and invalidated", `Quick, test_freeze_memoized_and_invalidated);
    ("cache transparent", `Quick, test_cache_transparent);
    ("precomputed paths change nothing", `Quick, test_precomputed_paths_do_not_change_results);
    ("mismatched precomputed paths rejected", `Quick, test_mismatched_precomputed_paths_rejected);
    ("experiment unchanged by cache", `Quick, test_experiment_unchanged_by_cache);
  ]
