(* The fault-scenario explorer: schedule codec, generator, oracle
   verdicts, shrinker, ledger, campaign determinism, triage. *)

let check = Alcotest.check

let sched s =
  match Schedule.of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "unparseable schedule %S: %s" s e

let test_schedule_codec () =
  let s = "part:0-1@1800,down:2-3@3600.5,loss:0.05@7200,heal:0-1@86400" in
  let t = sched s in
  check Alcotest.string "round-trip" s (Schedule.to_string t);
  check Alcotest.int "faults" 4 (Schedule.faults t);
  (* Out-of-order and unsorted input normalises. *)
  let t2 = sched "heal:0-1@86400,part:0-1@1800,loss:0.05@7200,down:2-3@3600.5" in
  check Alcotest.string "sorted on parse" s (Schedule.to_string t2);
  check Alcotest.string "fingerprint agrees" (Schedule.fingerprint t) (Schedule.fingerprint t2);
  check Alcotest.bool "fingerprint is 16 hex digits" true
    (String.length (Schedule.fingerprint t) = 16);
  (match Schedule.of_string "frob:0-1@10" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown fault kind parsed");
  check Alcotest.int "empty schedule" 0 (Schedule.faults (Result.get_ok (Schedule.of_string "")))

let test_schedule_ends_all_up () =
  let up s = Schedule.ends_all_up (sched s) in
  check Alcotest.bool "permanent partition ends cut" false (up "part:0-1@1800");
  check Alcotest.bool "healed partition ends up" true (up "part:0-1@1800,heal:0-1@7200");
  check Alcotest.bool "cross-family repair counts" true (up "down:0-1@1800,heal:0-1@7200");
  check Alcotest.bool "lingering loss is not clean" false (up "loss:0.1@1800");
  check Alcotest.bool "reset loss is clean" true (up "loss:0.1@1800,loss:0@7200");
  check Alcotest.bool "empty is clean" true (up "")

let arena = { Oracle.tops = 2; children_per_top = 2 }

let arena_topo () = Gen.masc_hierarchy ~tops:2 ~children_per_top:2

let test_generator_deterministic () =
  let gen () =
    Fault_gen.generate ~topo:(arena_topo ()) ~budget:40 ~max_faults:6 ~seed:42
      ~horizon:(Time.hours 4.0)
  in
  let a = List.map Schedule.to_string (gen ()) and b = List.map Schedule.to_string (gen ()) in
  check (Alcotest.list Alcotest.string) "same seed, same schedules" a b;
  check Alcotest.int "budget respected" 40 (List.length a);
  (* The enumerated head guarantees the §4.4 canary — a permanent
     partition of the top-level peering at claim time — in every
     campaign regardless of seed. *)
  check Alcotest.bool "claim-time partition canary enumerated" true
    (List.mem "part:0-1@1800" a);
  let c =
    List.map Schedule.to_string
      (Fault_gen.generate ~topo:(arena_topo ()) ~budget:40 ~max_faults:6 ~seed:43
         ~horizon:(Time.hours 4.0))
  in
  check Alcotest.bool "different seed, different sampled tail" true (a <> c);
  check Alcotest.bool "canary survives the seed change" true (List.mem "part:0-1@1800" c)

let test_verdict_rule () =
  let v = { Invariant.inv = "x"; detail = "d"; trace_id = None } in
  check Alcotest.bool "violations trump convergence" true
    (Oracle.verdict_of ~converged_at:(Some 10.0) ~deadline:100.0 ~violations:[ v ]
    = Oracle.Violation);
  check Alcotest.bool "late watermark is non-convergence" true
    (Oracle.verdict_of ~converged_at:(Some 101.0) ~deadline:100.0 ~violations:[]
    = Oracle.Non_convergence);
  check Alcotest.bool "violations also trump lateness" true
    (Oracle.verdict_of ~converged_at:(Some 101.0) ~deadline:100.0 ~violations:[ v ]
    = Oracle.Violation);
  check Alcotest.bool "on-time is a pass" true
    (Oracle.verdict_of ~converged_at:(Some 99.0) ~deadline:100.0 ~violations:[] = Oracle.Pass);
  check Alcotest.bool "no activity at all is a pass" true
    (Oracle.verdict_of ~converged_at:None ~deadline:100.0 ~violations:[] = Oracle.Pass)

let test_nonconvergence_from_watermarks () =
  (* Activity past the quiescence grace convicts a run even with every
     invariant green: the oracle's rule applied to a real engine whose
     last durable state change lands after the deadline. *)
  let eng = Engine.create () in
  let deadline = 100.0 in
  ignore (Engine.schedule_at eng 50.0 (fun () -> Engine.note_activity eng "bgp"));
  ignore (Engine.schedule_at eng 150.0 (fun () -> Engine.note_activity eng "bgp"));
  Engine.run_until_idle eng;
  check Alcotest.bool "watermark past deadline" true
    (Oracle.verdict_of ~converged_at:(Engine.converged_at eng) ~deadline ~violations:[]
    = Oracle.Non_convergence);
  let eng2 = Engine.create () in
  ignore (Engine.schedule_at eng2 50.0 (fun () -> Engine.note_activity eng2 "bgp"));
  ignore (Engine.schedule_at eng2 150.0 (fun () -> ()));
  Engine.run_until_idle eng2;
  check Alcotest.bool "mere events past deadline do not convict" true
    (Oracle.verdict_of ~converged_at:(Engine.converged_at eng2) ~deadline ~violations:[]
    = Oracle.Pass)

let test_oracle_pass_on_empty_schedule () =
  let outcome, _ = Oracle.run ~arena ~seed:7 [] in
  check Alcotest.bool "no faults, no violations" true (outcome.Oracle.violations = []);
  check Alcotest.bool "verdict pass" true (outcome.Oracle.verdict = Oracle.Pass);
  (* The bench's monitored-vs-plain knob: same verdict without the
     cadence monitor, and no transient checks counted. *)
  let plain, _ = Oracle.run ~arena ~seed:7 ~monitor:false [] in
  check Alcotest.bool "unmonitored verdict pass" true (plain.Oracle.verdict = Oracle.Pass);
  check Alcotest.int "unmonitored transient count" 0 plain.Oracle.transient

let test_oracle_finds_partition_canary () =
  (* The seeded known-violation scenario: a permanent partition of the
     top-level peering while both tops claim out of 224/4 — first-fit
     lands them on the same sub-prefix and nothing ever resolves it. *)
  let outcome, inet = Oracle.run ~arena ~seed:7 (sched "part:0-1@1800") in
  check Alcotest.bool "verdict violation" true (outcome.Oracle.verdict = Oracle.Violation);
  let v =
    match
      List.filter
        (fun v -> v.Invariant.inv = "masc-sibling-overlap")
        outcome.Oracle.violations
    with
    | v :: _ -> v
    | [] -> Alcotest.fail "masc-sibling-overlap not among the violations"
  in
  check Alcotest.bool "violation blames a causal chain" true (v.Invariant.trace_id <> None);
  (* The stack's own bounded retention recovers the same first
     violation after the run (satellite: violations_seen). *)
  let seen = Invariant.violations_seen (Internet.invariants inet) in
  check Alcotest.bool "violations_seen non-empty" true (seen <> []);
  check Alcotest.bool "first seen violation carries detail + trace id" true
    (List.exists
       (fun s -> s.Invariant.inv = "masc-sibling-overlap" && s.Invariant.trace_id = v.Invariant.trace_id)
       seen)

let test_oracle_healed_partition_self_repairs () =
  (* Healed before the renewal duel deadline: the §4.4 story ends with
     the loser yielding — the oracle must NOT flag a violation. *)
  let outcome, _ = Oracle.run ~arena ~seed:7 (sched "part:0-1@1800,heal:0-1@14400") in
  check Alcotest.bool "no violation after self-repair" true
    (outcome.Oracle.verdict <> Oracle.Violation)

let test_oracle_deterministic () =
  let run () =
    let o, _ = Oracle.run ~arena ~seed:11 (sched "down:0-1@1800,up:0-1@10800") in
    ( Oracle.verdict_to_string o.Oracle.verdict,
      List.map (fun v -> (v.Invariant.inv, v.Invariant.trace_id)) o.Oracle.violations,
      o.Oracle.converged_at )
  in
  let a = run () and b = run () in
  check Alcotest.bool "same seed, same outcome" true (a = b)

let test_shrinker_essential_among_decoys () =
  (* One essential fault buried in 8 decoys: greedy removal must strip
     every decoy and time-coarsening must round the survivor, no matter
     what the decoys are. *)
  let essential = { Schedule.at = Time.seconds 1830.0; fault = Schedule.Partition (0, 1) } in
  let decoys =
    [
      { Schedule.at = Time.seconds 400.0; fault = Schedule.Link_down (0, 2) };
      { Schedule.at = Time.seconds 900.0; fault = Schedule.Link_up (0, 2) };
      { Schedule.at = Time.seconds 1200.0; fault = Schedule.Set_loss 0.05 };
      { Schedule.at = Time.seconds 1500.0; fault = Schedule.Set_loss 0.0 };
      { Schedule.at = Time.seconds 2000.0; fault = Schedule.Link_down (1, 3) };
      { Schedule.at = Time.seconds 2600.0; fault = Schedule.Link_up (1, 3) };
      { Schedule.at = Time.seconds 3100.0; fault = Schedule.Partition (0, 2) };
      { Schedule.at = Time.seconds 3500.0; fault = Schedule.Heal (0, 2) };
    ]
  in
  let full = Schedule.make (essential :: decoys) in
  (* The predicate is the ground truth "fails iff the essential fault
     survives": the shrinker must converge on exactly that fault. *)
  let still_fails s =
    List.exists (fun st -> st.Schedule.fault = Schedule.Partition (0, 1)) s
  in
  let r = Shrinker.shrink ~still_fails full in
  check Alcotest.int "exactly the essential fault" 1 (Schedule.faults r.Shrinker.shrunk);
  (match r.Shrinker.shrunk with
  | [ { Schedule.fault = Schedule.Partition (0, 1); at } ] ->
      (* The predicate is time-blind, so coarsening runs all the way to
         the day floor. *)
      check (Alcotest.float 0.0) "time coarsened" 0.0 (Time.to_seconds at)
  | _ -> Alcotest.failf "shrunk to %s" (Schedule.to_string r.Shrinker.shrunk));
  check Alcotest.bool "shrinking spent oracle runs" true (r.Shrinker.steps > 0);
  (* Determinism: same input, same minimal counterexample and cost. *)
  let r2 = Shrinker.shrink ~still_fails full in
  check Alcotest.string "deterministic result" (Schedule.to_string r.Shrinker.shrunk)
    (Schedule.to_string r2.Shrinker.shrunk);
  check Alcotest.int "deterministic cost" r.Shrinker.steps r2.Shrinker.steps

let test_shrinker_on_real_oracle () =
  (* End to end on the live oracle: a decoy-laden failing schedule
     shrinks to the single essential partition. *)
  let full = sched "down:0-2@600,up:0-2@1200,part:0-1@1830,loss:0.05@2400,loss:0@3000" in
  let outcome, _ = Oracle.run ~arena ~seed:7 full in
  check Alcotest.bool "full schedule fails" true (outcome.Oracle.verdict = Oracle.Violation);
  let still_fails s =
    let o, _ = Oracle.run ~arena ~seed:7 s in
    o.Oracle.verdict = Oracle.Violation
    && List.exists (fun v -> v.Invariant.inv = "masc-sibling-overlap") o.Oracle.violations
  in
  let r = Shrinker.shrink ~still_fails full in
  check Alcotest.int "one essential fault" 1 (Schedule.faults r.Shrinker.shrunk);
  match r.Shrinker.shrunk with
  | [ { Schedule.fault = Schedule.Partition (0, 1); _ } ] -> ()
  | _ -> Alcotest.failf "shrunk to %s" (Schedule.to_string r.Shrinker.shrunk)

let test_ledger_roundtrip () =
  let e =
    {
      Ledger.trial = 3;
      seed = 123456;
      schedule = "part:0-1@1800,loss:0.05@2400";
      fingerprint = "00deadbeef001234";
      verdict = "violation";
      invariants = [ "masc-sibling-overlap"; "masc-sibling-overlap" ];
      trace_ids = [ "m:224.0.0.0/6"; "" ];
      transient = 4;
      converged_at = Some 1830.5;
      deadline = 93600.0;
      min_schedule = Some "part:0-1@1800";
      min_faults = Some 1;
      shrink_steps = Some 9;
      repro_recording = Some "repro/cex-3.recording.jsonl";
      repro_trace = None;
    }
  in
  (match Ledger.of_json (Ledger.to_json e) with
  | Some e' -> check Alcotest.bool "round-trip" true (e = e')
  | None -> Alcotest.fail "round-trip failed");
  let pass = { e with Ledger.verdict = "pass"; invariants = []; trace_ids = [];
               min_schedule = None; min_faults = None; shrink_steps = None;
               repro_recording = None; converged_at = None } in
  (match Ledger.of_json (Ledger.to_json pass) with
  | Some e' -> check Alcotest.bool "nulls round-trip" true (pass = e')
  | None -> Alcotest.fail "null round-trip failed");
  check Alcotest.bool "malformed is None" true (Ledger.of_json "{\"trial\": oops}" = None)

let test_invariant_violations_seen () =
  (* Satellite: bounded retention on the registry itself. *)
  let reg = Metrics.create () in
  let inv = Invariant.create ~registry:reg () in
  let broken = ref [] in
  Invariant.register inv ~name:"probe" (fun () -> !broken);
  check (Alcotest.list Alcotest.string) "clean run retains nothing" []
    (List.map (fun v -> v.Invariant.detail) (Invariant.violations_seen inv));
  broken := [ ("first", Some "chain-1") ];
  ignore (Invariant.check inv);
  broken := [ ("second", None) ];
  ignore (Invariant.check inv);
  let seen = Invariant.violations_seen inv in
  check Alcotest.int "both retained, oldest first" 2 (List.length seen);
  (match seen with
  | v :: _ ->
      check Alcotest.string "first violation's detail" "first" v.Invariant.detail;
      check (Alcotest.option Alcotest.string) "first violation's trace id" (Some "chain-1")
        v.Invariant.trace_id
  | [] -> Alcotest.fail "nothing retained");
  (* The ring is bounded: flooding keeps the head, counters keep counting. *)
  broken := List.init 10 (fun i -> (Printf.sprintf "v%d" i, None));
  for _ = 1 to 20 do
    ignore (Invariant.check inv)
  done;
  let seen = List.length (Invariant.violations_seen inv) in
  check Alcotest.bool "retention bounded" true (seen <= 64);
  (match Metrics.find (Metrics.snapshot reg) "invariant.violations" with
  | Some (Metrics.Counter_v n) -> check Alcotest.bool "counters unaffected by the cap" true (n = 202)
  | _ -> Alcotest.fail "violations counter missing");
  match Invariant.violations_seen inv with
  | v :: _ -> check Alcotest.string "head still the first violation" "first" v.Invariant.detail
  | [] -> Alcotest.fail "head lost"

let suite =
  [
    Alcotest.test_case "schedule codec round-trips" `Quick test_schedule_codec;
    Alcotest.test_case "schedule end-state analysis" `Quick test_schedule_ends_all_up;
    Alcotest.test_case "generator deterministic, canary enumerated" `Quick
      test_generator_deterministic;
    Alcotest.test_case "verdict rule" `Quick test_verdict_rule;
    Alcotest.test_case "non-convergence from watermarks" `Quick
      test_nonconvergence_from_watermarks;
    Alcotest.test_case "oracle passes the fault-free run" `Quick test_oracle_pass_on_empty_schedule;
    Alcotest.test_case "oracle finds the partition canary" `Quick
      test_oracle_finds_partition_canary;
    Alcotest.test_case "healed partition self-repairs" `Quick
      test_oracle_healed_partition_self_repairs;
    Alcotest.test_case "oracle deterministic" `Quick test_oracle_deterministic;
    Alcotest.test_case "shrinker: essential fault among 8 decoys" `Quick
      test_shrinker_essential_among_decoys;
    Alcotest.test_case "shrinker on the real oracle" `Quick test_shrinker_on_real_oracle;
    Alcotest.test_case "ledger round-trips" `Quick test_ledger_roundtrip;
    Alcotest.test_case "invariant violations_seen retention" `Quick
      test_invariant_violations_seen;
  ]
