(* Integration tests for mcast_core: the full MASC + BGP + BGMP stack. *)

let check = Alcotest.check

let setup ?config ?migp_style topo =
  let config = Option.value ~default:Internet.quick_config config in
  let inet = Internet.create ~config ?migp_style topo in
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);
  inet

let dom topo name = Option.get (Topo.find_by_name topo name)

let rec get_address ?(tries = 30) inet d =
  match Internet.request_address inet d with
  | Some a -> a
  | None ->
      if tries = 0 then Alcotest.fail "address allocation never succeeded"
      else begin
        Internet.run_for inet (Time.hours 1.0);
        get_address ~tries:(tries - 1) inet d
      end

let deliveries_names inet topo payload =
  List.sort compare
    (List.map
       (fun (h, _) -> (Topo.domain topo h.Host_ref.host_domain).Domain.name)
       (Internet.deliveries inet ~payload))

let test_root_at_initiator_domain () =
  let topo = Gen.figure1 () in
  let inet = setup topo in
  let b = dom topo "B" in
  let alloc = get_address inet b in
  check Alcotest.bool "address is multicast" true (Ipv4.is_multicast alloc.Maas.address);
  check (Alcotest.option Alcotest.int) "root domain is the initiator's" (Some b)
    (Internet.root_domain_of inet alloc.Maas.address)

let test_end_to_end_delivery () =
  let topo = Gen.figure1 () in
  let inet = setup topo in
  let b = dom topo "B" in
  let alloc = get_address inet b in
  let g = alloc.Maas.address in
  List.iter
    (fun n -> Internet.join inet ~host:(Host_ref.make (dom topo n) 0) ~group:g)
    [ "C"; "D"; "F"; "G" ];
  Internet.run_for inet (Time.minutes 30.0);
  let p = Internet.send inet ~source:(Host_ref.make (dom topo "E") 1) ~group:g in
  Internet.run_for inet (Time.minutes 10.0);
  check (Alcotest.list Alcotest.string) "all members receive" [ "C"; "D"; "F"; "G" ]
    (deliveries_names inet topo p);
  check Alcotest.int "no duplicates" 0
    (Bgmp_fabric.duplicate_deliveries (Internet.fabric inet))

let test_multiple_groups_different_roots () =
  let topo = Gen.figure1 () in
  let inet = setup topo in
  let b = dom topo "B" and c = dom topo "C" in
  let a1 = get_address inet b in
  let a2 = get_address inet c in
  check Alcotest.bool "distinct addresses" false (Ipv4.equal a1.Maas.address a2.Maas.address);
  check (Alcotest.option Alcotest.int) "first rooted at B" (Some b)
    (Internet.root_domain_of inet a1.Maas.address);
  check (Alcotest.option Alcotest.int) "second rooted at C" (Some c)
    (Internet.root_domain_of inet a2.Maas.address);
  (* Disjoint membership: F on g1, G on g2. *)
  Internet.join inet ~host:(Host_ref.make (dom topo "F") 0) ~group:a1.Maas.address;
  Internet.join inet ~host:(Host_ref.make (dom topo "G") 0) ~group:a2.Maas.address;
  Internet.run_for inet (Time.minutes 30.0);
  let p1 = Internet.send inet ~source:(Host_ref.make (dom topo "D") 0) ~group:a1.Maas.address in
  let p2 = Internet.send inet ~source:(Host_ref.make (dom topo "D") 0) ~group:a2.Maas.address in
  Internet.run_for inet (Time.minutes 10.0);
  check (Alcotest.list Alcotest.string) "g1 reaches F" [ "F" ] (deliveries_names inet topo p1);
  check (Alcotest.list Alcotest.string) "g2 reaches G" [ "G" ] (deliveries_names inet topo p2)

let test_aggregation_visible_in_gribs () =
  (* After B (customer of A) acquires space carved from A's range, the
     peers D/E must carry only A's aggregate — not B's specific. *)
  let topo = Gen.figure1 () in
  let inet = setup topo in
  let b = dom topo "B" in
  ignore (get_address inet b);
  Internet.run_for inet (Time.hours 1.0);
  let b_specifics = Speaker.originated (Internet.speaker inet b) in
  check Alcotest.bool "B originates a range" true (b_specifics <> []);
  let d_routes = Speaker.best_routes (Internet.speaker inet (dom topo "D")) in
  List.iter
    (fun bp ->
      check Alcotest.bool "B's specific invisible at D" false (List.mem_assoc bp d_routes))
    b_specifics;
  (* Yet D can still route to the group: the aggregate covers it. *)
  (match Speaker.lookup (Internet.speaker inet (dom topo "D")) (Prefix.base (List.hd b_specifics)) with
  | Some r -> check Alcotest.int "aggregate originated by A" (dom topo "A") r.Route.origin
  | None -> Alcotest.fail "no covering aggregate at D")

let test_leave_then_no_delivery () =
  let topo = Gen.figure1 () in
  let inet = setup topo in
  let b = dom topo "B" in
  let alloc = get_address inet b in
  let g = alloc.Maas.address in
  let host = Host_ref.make (dom topo "G") 0 in
  Internet.join inet ~host ~group:g;
  Internet.run_for inet (Time.minutes 30.0);
  let p1 = Internet.send inet ~source:(Host_ref.make (dom topo "E") 0) ~group:g in
  Internet.run_for inet (Time.minutes 10.0);
  check (Alcotest.list Alcotest.string) "delivered while joined" [ "G" ]
    (deliveries_names inet topo p1);
  Internet.leave inet ~host ~group:g;
  Internet.run_for inet (Time.minutes 30.0);
  let p2 = Internet.send inet ~source:(Host_ref.make (dom topo "E") 0) ~group:g in
  Internet.run_for inet (Time.minutes 10.0);
  check (Alcotest.list Alcotest.string) "nothing after leave" [] (deliveries_names inet topo p2)

let test_address_release_and_reuse () =
  let topo = Gen.figure1 () in
  let inet = setup topo in
  let b = dom topo "B" in
  let a1 = get_address inet b in
  Internet.release_address inet b a1;
  let a2 = get_address inet b in
  check Alcotest.bool "released address reused" true (Ipv4.equal a1.Maas.address a2.Maas.address)

let test_many_addresses_unique_across_domains () =
  let topo = Gen.figure1 () in
  let inet = setup topo in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun name ->
      let d = dom topo name in
      for _ = 1 to 10 do
        let a = get_address inet d in
        check Alcotest.bool "globally unique" false (Hashtbl.mem seen a.Maas.address);
        Hashtbl.add seen a.Maas.address name
      done)
    [ "B"; "C"; "F"; "G" ];
  check Alcotest.int "forty addresses" 40 (Hashtbl.length seen)

let test_stack_on_generated_topology () =
  let rng = Rng.create 11 in
  let topo = Gen.transit_stub ~rng ~backbones:2 ~regionals_per_backbone:2 ~stubs_per_regional:2 in
  let inet = setup topo in
  (* Pick a stub domain as initiator. *)
  let stub =
    (List.find (fun d -> d.Domain.kind = Domain.Stub) (Topo.domains topo)).Domain.id
  in
  let alloc = get_address inet stub in
  let g = alloc.Maas.address in
  check (Alcotest.option Alcotest.int) "rooted at the stub" (Some stub)
    (Internet.root_domain_of inet g);
  (* Every other stub joins; a backbone host sends. *)
  let stubs =
    List.filter_map
      (fun d -> if d.Domain.kind = Domain.Stub && d.Domain.id <> stub then Some d.Domain.id else None)
      (Topo.domains topo)
  in
  List.iter (fun d -> Internet.join inet ~host:(Host_ref.make d 0) ~group:g) stubs;
  Internet.run_for inet (Time.minutes 30.0);
  let p = Internet.send inet ~source:(Host_ref.make 0 0) ~group:g in
  Internet.run_for inet (Time.minutes 10.0);
  let got = List.map fst (Internet.deliveries inet ~payload:p) in
  check Alcotest.int "all stubs received" (List.length stubs) (List.length got);
  check Alcotest.int "no duplicates" 0 (Bgmp_fabric.duplicate_deliveries (Internet.fabric inet))

let test_trace_records_protocol_activity () =
  let topo = Gen.figure1 () in
  let inet = setup topo in
  ignore (get_address inet (dom topo "B"));
  let tr = Internet.trace inet in
  check Alcotest.bool "claims traced" true (Trace.find tr ~tag:"claim" <> []);
  check Alcotest.bool "acquisitions traced" true (Trace.find tr ~tag:"acquired" <> [])

let test_masc_bgp_glue_withdraw_on_expiry () =
  (* A claim that lapses must disappear from every G-RIB. *)
  let topo = Gen.figure1 () in
  let config =
    {
      Internet.quick_config with
      Internet.masc =
        {
          Internet.quick_config.Internet.masc with
          Masc_node.claim_lifetime = Time.days 1.0;
          renew_margin = Time.hours 2.0;
        };
    }
  in
  let inet = setup ~config topo in
  let b = dom topo "B" in
  let alloc = get_address inet b in
  let g = alloc.Maas.address in
  check Alcotest.bool "routable while held" true (Internet.root_domain_of inet g <> None);
  (* Release the address so the claim has no use, then let it expire. *)
  Internet.release_address inet b alloc;
  Internet.run_for inet (Time.days 5.0);
  check (Alcotest.option Alcotest.int) "B's specific withdrawn everywhere" None
    (Option.bind
       (Speaker.lookup (Internet.speaker inet (dom topo "G")) g)
       (fun r -> if r.Route.origin = b then Some b else None))

let test_fallback_allocation_roots_at_parent () =
  let topo = Gen.figure1 () in
  let inet = setup topo in
  let f = dom topo "F" and b = dom topo "B" in
  (* Warm up so F holds its initial range. *)
  ignore (get_address inet f);
  (* Exhaust F's space with a burst; fallbacks must come from B (F's
     provider) and be rooted there. *)
  let fallback_seen = ref false in
  let local_seen = ref false in
  for _ = 1 to 600 do
    match Internet.request_address_with_fallback inet f with
    | Some (a, root) ->
        if root = f then local_seen := true
        else begin
          fallback_seen := true;
          check Alcotest.int "fallback comes from the provider" b root;
          check (Alcotest.option Alcotest.int) "group rooted at the provider" (Some b)
            (Internet.root_domain_of inet a.Maas.address)
        end
    | None ->
        (* Neither MAAS had space: let the pending claims settle a bit,
           as a retrying session would. *)
        Internet.run_for inet (Time.minutes 30.0)
  done;
  check Alcotest.bool "local allocations happened" true !local_seen;
  check Alcotest.bool "fallback allocations happened" true !fallback_seen

let test_churn_sequence_invariant () =
  (* Random join/leave churn: after every settled step, a probe packet
     reaches exactly the current members. *)
  let topo = Gen.figure3 () in
  let engine = Engine.create () in
  let b = dom topo "B" in
  let paths = Spf.bfs topo b in
  let route_to_root d _ =
    if d = b then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward topo paths d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  let fabric = Bgmp_fabric.create ~engine ~topo ~route_to_root () in
  let g = Ipv4.of_string "224.0.128.1" in
  let rng = Rng.create 99 in
  let n = Topo.domain_count topo in
  let member = Array.make n false in
  for step = 1 to 60 do
    let d = Rng.int rng n in
    if member.(d) then begin
      Bgmp_fabric.host_leave fabric ~host:(Host_ref.make d 0) ~group:g;
      member.(d) <- false
    end
    else begin
      Bgmp_fabric.host_join fabric ~host:(Host_ref.make d 0) ~group:g;
      member.(d) <- true
    end;
    Engine.run_until_idle engine;
    let src = Host_ref.make (Rng.int rng n) 77 in
    let p = Bgmp_fabric.send fabric ~source:src ~group:g in
    Engine.run_until_idle engine;
    let got =
      List.sort compare
        (List.map (fun (h, _) -> h.Host_ref.host_domain) (Bgmp_fabric.deliveries fabric ~payload:p))
    in
    let want =
      List.sort compare
        (List.filteri (fun i _ -> member.(i)) (Array.to_list (Array.init n (fun i -> i))))
    in
    check (Alcotest.list Alcotest.int) (Printf.sprintf "step %d exact delivery" step) want got
  done;
  (* Branch establishment is make-before-break: the packet that turns a
     branch live can reach a domain via both paths once.  Such transient
     duplicates are suppressed before hosts see them (the per-step exact
     delivery checks above); just bound them. *)
  check Alcotest.bool "transient duplicates bounded" true
    (Bgmp_fabric.duplicate_deliveries fabric < 60)

let test_invariants_clean_and_converged () =
  (* The full Figure-1 session with the live monitor installed (the
     scenario default): no predicate may fire, and every subsystem must
     have reported a convergence watermark. *)
  let s = Scenario.figure1 () in
  let inet = s.Scenario.inet in
  check Alcotest.int "no violations across the whole run" 0
    (List.length (Internet.invariant_violations inet));
  check (Alcotest.list Alcotest.string) "all four predicates installed"
    [ "masc-sibling-overlap"; "bgmp-acyclic"; "bgmp-tree-settled"; "grib-nexthop" ]
    (Invariant.names (Internet.invariants inet));
  check Alcotest.int "an explicit full check is also clean" 0
    (List.length (Internet.check_invariants ~quiescent:false inet));
  let classes = List.map fst (Engine.watermarks (Internet.engine inet)) in
  List.iter
    (fun c -> check Alcotest.bool (c ^ " watermark present") true (List.mem c classes))
    [ "bgmp"; "bgp"; "masc" ];
  match Engine.converged_at (Internet.engine inet) with
  | Some t ->
      check Alcotest.bool "convergence time within the run" true
        (t > 0.0 && t <= Engine.now (Internet.engine inet))
  | None -> Alcotest.fail "stack never reported convergence"

let test_seeded_overlap_violation_detected () =
  let s = Scenario.figure1 ~check_invariants:false () in
  let inet = s.Scenario.inet in
  (* The root domain holds an acquired range; forge an overlapping
     sibling claim in the node's own registry — exactly the state
     collision resolution exists to prevent. *)
  let node = Internet.masc_node inet s.Scenario.root in
  let claim =
    match
      List.filter
        (fun c ->
          c.Masc_node.claim_state = Masc_node.Acquired && c.Masc_node.claim_arena = Masc_node.Up)
        (Masc_node.all_claims node)
    with
    | c :: _ -> c
    | [] -> Alcotest.fail "root domain holds no acquired claim"
  in
  let forged =
    Prefix.make (Prefix.base claim.Masc_node.claim_prefix)
      (Prefix.len claim.Masc_node.claim_prefix + 1)
  in
  let before = Metrics.snapshot Metrics.default in
  Address_space.register (Masc_node.space_view node) ~owner:9999 forged;
  let vs = Internet.check_invariants ~quiescent:false inet in
  let v =
    match List.filter (fun v -> v.Invariant.inv = "masc-sibling-overlap") vs with
    | v :: _ -> v
    | [] -> Alcotest.fail "seeded overlap not detected"
  in
  check (Alcotest.option Alcotest.string) "violation names the claim's causal chain"
    (Some claim.Masc_node.claim_span.Span.trace_id) v.Invariant.trace_id;
  let delta name =
    match Metrics.find (Metrics.diff ~before ~after:(Metrics.snapshot Metrics.default)) name with
    | Some (Metrics.Counter_v n) -> n
    | _ -> 0
  in
  check Alcotest.bool "counted in invariant.violations" true (delta "invariant.violations" >= 1);
  check Alcotest.bool "counted under the predicate's name" true
    (delta "invariant.violations.masc-sibling-overlap" >= 1);
  check Alcotest.bool "recorded as a trace entry on the same chain" true
    (List.exists
       (fun e -> e.Trace.trace_id = Some claim.Masc_node.claim_span.Span.trace_id)
       (Trace.find (Internet.trace inet) ~tag:"violation"));
  (* Removing the forged claim repairs the stack. *)
  Address_space.unregister (Masc_node.space_view node) forged;
  check Alcotest.int "clean after repair" 0
    (List.length (Internet.check_invariants ~quiescent:false inet))

let test_partition_collision_resolves_with_full_chain () =
  (* The §4.4 start-up partition: two top-level domains, isolated from
     each other, both claim the first free sub-prefix of 224/4 and
     graduate.  While partitioned the overlap invariant must see the
     conflict; after healing, the next claim renewal forces the duel,
     the higher-id top yields, and the winner's causal chain carries
     claim, collision, G-RIB update and join end to end. *)
  let topo = Topo.create () in
  let p0 = Topo.add_domain topo ~name:"P0" ~kind:Domain.Backbone in
  let p1 = Topo.add_domain topo ~name:"P1" ~kind:Domain.Backbone in
  let c0 = Topo.add_domain topo ~name:"C0" ~kind:Domain.Stub in
  let c1 = Topo.add_domain topo ~name:"C1" ~kind:Domain.Stub in
  Topo.add_link topo p0 p1 Topo.Peer;
  Topo.add_link topo p0 c0 Topo.Provider_customer;
  Topo.add_link topo p1 c1 Topo.Provider_customer;
  let config =
    {
      Internet.quick_config with
      Internet.masc =
        {
          Internet.quick_config.Internet.masc with
          Masc_node.claim_lifetime = Time.days 1.0;
          renew_margin = Time.hours 2.0;
        };
    }
  in
  let inet = Internet.create ~config topo in
  Masc_network.partition (Internet.masc_network inet) p0 p1;
  Internet.start inet;
  Internet.run_for inet (Time.hours 1.0);
  (* Claims are demand-driven: a group allocated at each top makes both
     claim out of 224/4 blind to each other (and keeps both claims
     renewing later).  First-fit placement lands them on the same
     sub-prefix, so the overlap invariant must expose the conflict
     while the partition lasts. *)
  let alloc = get_address inet p0 in
  ignore (get_address inet p1);
  Internet.run_for inet (Time.hours 1.0);
  let during = Internet.check_invariants ~quiescent:false inet in
  check Alcotest.bool "overlap visible during the partition" true
    (List.exists (fun v -> v.Invariant.inv = "masc-sibling-overlap") during);
  Masc_network.heal (Internet.masc_network inet) p0 p1;
  Internet.run_for inet (Time.days 2.0);
  let tr = Internet.trace inet in
  check Alcotest.bool "a collision was fought" true (Trace.find tr ~tag:"collision-sent" <> []);
  check Alcotest.bool "the loser yielded" true (Trace.find tr ~tag:"collision-yield" <> []);
  check Alcotest.int "overlap resolved after healing" 0
    (List.length
       (List.filter
          (fun v -> v.Invariant.inv = "masc-sibling-overlap")
          (Internet.check_invariants ~quiescent:false inet)));
  (* The surviving allocation still roots P0's group; join from the far
     side and stitch the chain. *)
  let g = alloc.Maas.address in
  check (Alcotest.option Alcotest.int) "group still rooted at the winner" (Some p0)
    (Internet.root_domain_of inet g);
  Internet.join inet ~host:(Host_ref.make c1 0) ~group:g;
  Internet.run_for inet (Time.minutes 30.0);
  let id =
    match Speaker.lookup (Internet.speaker inet p0) g with
    | Some r -> (
        match r.Route.span with
        | Some s -> s.Span.trace_id
        | None -> Alcotest.fail "covering route carries no span")
    | None -> Alcotest.fail "no covering route for the group"
  in
  let chain = Trace_report.chain (Trace.entries tr) ~id in
  let tags = List.map (fun e -> e.Trace.tag) chain in
  List.iter
    (fun t -> check Alcotest.bool (t ^ " on the chain") true (List.mem t tags))
    [ "claim"; "acquired"; "collision-sent"; "grib-update"; "join" ];
  (* And the [trace] subcommand's renderer reconstructs the same story. *)
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Trace_report.pp_chain_for ppf (Trace.entries tr) ~id;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let mem needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun t -> check Alcotest.bool (t ^ " rendered") true (mem t))
    [ "claim"; "collision-sent"; "grib-update"; "join" ]

let suite =
  [
    ("root at initiator domain", `Quick, test_root_at_initiator_domain);
    ("end-to-end delivery", `Quick, test_end_to_end_delivery);
    ("multiple groups, different roots", `Quick, test_multiple_groups_different_roots);
    ("aggregation visible in G-RIBs", `Quick, test_aggregation_visible_in_gribs);
    ("leave then no delivery", `Quick, test_leave_then_no_delivery);
    ("address release and reuse", `Quick, test_address_release_and_reuse);
    ("addresses unique across domains", `Quick, test_many_addresses_unique_across_domains);
    ("stack on generated topology", `Quick, test_stack_on_generated_topology);
    ("trace records protocol activity", `Quick, test_trace_records_protocol_activity);
    ("withdraw on expiry", `Quick, test_masc_bgp_glue_withdraw_on_expiry);
    ("fallback allocation roots at parent", `Quick, test_fallback_allocation_roots_at_parent);
    ("churn sequence invariant", `Quick, test_churn_sequence_invariant);
    ("invariants clean and converged on figure 1", `Quick, test_invariants_clean_and_converged);
    ("seeded overlap violation detected", `Quick, test_seeded_overlap_violation_detected);
    ( "partition collision resolves with full chain",
      `Quick,
      test_partition_collision_resolves_with_full_chain );
  ]
