(* Tests for mcast_util: deterministic RNG, binary heap, statistics. *)

let check = Alcotest.check

(* --- Rng ------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.int64 a) in
  let ys = List.init 32 (fun _ -> Rng.int64 b) in
  check Alcotest.bool "split streams differ" false (xs = ys)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check Alcotest.bool "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let r = Rng.create 3 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.create 5 in
  for _ = 1 to 500 do
    let v = Rng.int_in r (-3) 3 in
    check Alcotest.bool "in [-3,3]" true (v >= -3 && v <= 3)
  done

let test_rng_float_range () =
  let r = Rng.create 9 in
  for _ = 1 to 500 do
    let v = Rng.float r 2.5 in
    check Alcotest.bool "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_float_mean () =
  let r = Rng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float r 1.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "uniform mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_rng_exponential_mean () =
  let r = Rng.create 17 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "exponential mean near 3" true (abs_float (mean -. 3.0) < 0.15)

let test_rng_pick () =
  let r = Rng.create 21 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check Alcotest.bool "picked element" true (Array.mem (Rng.pick r a) a)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 23 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let r = Rng.create 29 in
  let s = Rng.sample_without_replacement r 10 100 in
  check Alcotest.int "10 draws" 10 (Array.length s);
  let tbl = Hashtbl.create 10 in
  Array.iter
    (fun v ->
      check Alcotest.bool "in range" true (v >= 0 && v < 100);
      check Alcotest.bool "distinct" false (Hashtbl.mem tbl v);
      Hashtbl.add tbl v ())
    s;
  (* The dense path (k close to n). *)
  let s2 = Rng.sample_without_replacement r 99 100 in
  let tbl2 = Hashtbl.create 99 in
  Array.iter (fun v -> Hashtbl.replace tbl2 v ()) s2;
  check Alcotest.int "99 distinct" 99 (Hashtbl.length tbl2)

(* --- Heap ----------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc = match Heap.pop h with Some v -> drain (v :: acc) | None -> List.rev acc in
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_fifo_ties () =
  (* Equal keys pop in insertion order: the engine's determinism rests
     on this. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  check (Alcotest.list Alcotest.string) "fifo ties" [ "z"; "a"; "b"; "c" ] order

let test_heap_peek () =
  let h = Heap.create ~cmp:compare in
  check (Alcotest.option Alcotest.int) "peek empty" None (Heap.peek h);
  Heap.push h 3;
  Heap.push h 1;
  check (Alcotest.option Alcotest.int) "peek min" (Some 1) (Heap.peek h);
  check Alcotest.int "peek does not remove" 2 (Heap.length h)

let test_heap_pop_exn_empty () =
  let h : int Heap.t = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn raises" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  check Alcotest.bool "empty after clear" true (Heap.is_empty h);
  Heap.push h 42;
  check (Alcotest.option Alcotest.int) "usable after clear" (Some 42) (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with Some v -> drain (v :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare l)

(* --- Stats ---------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s);
  check (Alcotest.float 1e-9) "variance" (5.0 /. 3.0) (Stats.variance s)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 1e-9) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.min: empty") (fun () ->
      ignore (Stats.min s))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  List.iter
    (fun x ->
      Stats.add whole x;
      if x < 3.0 then Stats.add a x else Stats.add b x)
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  let merged = Stats.merge a b in
  check (Alcotest.float 1e-9) "merged mean" (Stats.mean whole) (Stats.mean merged);
  check (Alcotest.float 1e-9) "merged variance" (Stats.variance whole) (Stats.variance merged);
  check Alcotest.int "merged count" (Stats.count whole) (Stats.count merged)

let test_stats_percentile () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.percentile a 50.0);
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile a 0.0);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile a 100.0);
  check (Alcotest.float 1e-9) "p25" 2.0 (Stats.percentile a 25.0)

let test_stats_percentile_edges () =
  let single = [| 42.0 |] in
  check (Alcotest.float 1e-9) "single p0" 42.0 (Stats.percentile single 0.0);
  check (Alcotest.float 1e-9) "single p50" 42.0 (Stats.percentile single 50.0);
  check (Alcotest.float 1e-9) "single p100" 42.0 (Stats.percentile single 100.0);
  let two = [| -1.0; 7.0 |] in
  check (Alcotest.float 1e-9) "two p0" (-1.0) (Stats.percentile two 0.0);
  check (Alcotest.float 1e-9) "two p100" 7.0 (Stats.percentile two 100.0);
  Alcotest.check_raises "empty rejected" (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [||] 50.0))

let test_stats_percentile_boundary () =
  (* Ranks that land exactly on a sorted element must return that
     element with no interpolation; ranks between elements interpolate
     linearly. *)
  let a = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check (Alcotest.float 1e-9) "p25 exact element" 20.0 (Stats.percentile a 25.0);
  check (Alcotest.float 1e-9) "p75 exact element" 40.0 (Stats.percentile a 75.0);
  check (Alcotest.float 1e-9) "p87.5 interpolates" 45.0 (Stats.percentile a 87.5);
  let even = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "even median interpolates" 2.5 (Stats.percentile even 50.0);
  check (Alcotest.float 1e-9) "even p100 is max" 4.0 (Stats.percentile even 100.0);
  (* Unsorted input must not matter. *)
  check (Alcotest.float 1e-9) "unsorted input" 2.5 (Stats.percentile [| 4.0; 1.0; 3.0; 2.0 |] 50.0)

let test_stats_merge_empty () =
  let filled () =
    let s = Stats.create () in
    List.iter (Stats.add s) [ 1.0; 2.0; 3.0 ];
    s
  in
  let expect name m =
    check Alcotest.int (name ^ " count") 3 (Stats.count m);
    check (Alcotest.float 1e-9) (name ^ " mean") 2.0 (Stats.mean m);
    check (Alcotest.float 1e-9) (name ^ " min") 1.0 (Stats.min m);
    check (Alcotest.float 1e-9) (name ^ " max") 3.0 (Stats.max m)
  in
  expect "empty-left" (Stats.merge (Stats.create ()) (filled ()));
  expect "empty-right" (Stats.merge (filled ()) (Stats.create ()));
  let both = Stats.merge (Stats.create ()) (Stats.create ()) in
  check Alcotest.int "empty-both count" 0 (Stats.count both);
  check (Alcotest.float 1e-9) "empty-both mean" 0.0 (Stats.mean both);
  (* The merge must be a copy: mutating an input afterwards cannot leak
     into the result. *)
  let src = filled () in
  let m = Stats.merge (Stats.create ()) src in
  Stats.add src 1000.0;
  expect "copy isolated" m

let test_stats_variance_small_n () =
  let s = Stats.create () in
  check (Alcotest.float 1e-9) "variance of none" 0.0 (Stats.variance s);
  Stats.add s 5.0;
  check (Alcotest.float 1e-9) "variance of one" 0.0 (Stats.variance s);
  check (Alcotest.float 1e-9) "stddev of one" 0.0 (Stats.stddev s)

let prop_stats_merge_matches_combined =
  (* Splitting a sample arbitrarily and merging the two accumulators
     must agree with one accumulator fed everything. *)
  QCheck.Test.make ~name:"merge of any split equals combined accumulator" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_range (-50.) 50.)) (int_range 0 1000))
    (fun (l, cut_raw) ->
      let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
      let cut = cut_raw mod (List.length l + 1) in
      List.iteri
        (fun i x ->
          Stats.add whole x;
          Stats.add (if i < cut then a else b) x)
        l;
      let merged = Stats.merge a b in
      let close x y = abs_float (x -. y) < 1e-6 in
      Stats.count merged = Stats.count whole
      && close (Stats.mean merged) (Stats.mean whole)
      && close (Stats.variance merged) (Stats.variance whole)
      && close (Stats.min merged) (Stats.min whole)
      && close (Stats.max merged) (Stats.max whole))

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"welford mean equals naive mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-100.) 100.))
    (fun l ->
      let s = Stats.create () in
      List.iter (Stats.add s) l;
      let naive = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
      abs_float (Stats.mean s -. naive) < 1e-6)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng copy", `Quick, test_rng_copy);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int invalid", `Quick, test_rng_int_invalid);
    ("rng int_in", `Quick, test_rng_int_in);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng float mean", `Quick, test_rng_float_mean);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng pick", `Quick, test_rng_pick);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("rng sample without replacement", `Quick, test_rng_sample_without_replacement);
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap fifo ties", `Quick, test_heap_fifo_ties);
    ("heap peek", `Quick, test_heap_peek);
    ("heap pop_exn empty", `Quick, test_heap_pop_exn_empty);
    ("heap clear", `Quick, test_heap_clear);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    ("stats basic", `Quick, test_stats_basic);
    ("stats empty", `Quick, test_stats_empty);
    ("stats merge", `Quick, test_stats_merge);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats percentile edges", `Quick, test_stats_percentile_edges);
    ("stats percentile boundary", `Quick, test_stats_percentile_boundary);
    ("stats merge empty", `Quick, test_stats_merge_empty);
    ("stats variance small n", `Quick, test_stats_variance_small_n);
    QCheck_alcotest.to_alcotest prop_stats_merge_matches_combined;
    QCheck_alcotest.to_alcotest prop_stats_mean_matches_naive;
  ]
