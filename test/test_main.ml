(* Aggregated test runner: one Alcotest suite per library. *)

let () =
  Alcotest.run "masc_bgmp"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("addr", Test_addr.suite);
      ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("topo", Test_topo.suite);
      ("spf_equiv", Test_spf_equiv.suite);
      ("spf_inc", Test_spf_inc.suite);
      ("bgp", Test_bgp.suite);
      ("masc", Test_masc.suite);
      ("migp", Test_migp.suite);
      ("bgmp", Test_bgmp.suite);
      ("beacon", Test_beacon.suite);
      ("trees", Test_trees.suite);
      ("core", Test_core.suite);
      ("extensions", Test_extensions.suite);
      ("baselines", Test_baselines.suite);
      ("workload", Test_workload.suite);
      ("repair", Test_repair.suite);
      ("failures", Test_failures.suite);
      ("conformance", Test_conformance.suite);
      ("explore", Test_explore.suite);
      ("golden", Test_golden.suite);
      ("artifacts", Test_artifacts.suite);
    ]
