(* Tests for mcast_bgp: routes, decision process, policy export,
   aggregation, and network-wide convergence of group routes. *)

let check = Alcotest.check

let p = Prefix.of_string

let prefix_testable = Alcotest.testable Prefix.pp Prefix.equal

(* --- Route ------------------------------------------------------------ *)

let test_route_prefer_shortest_path () =
  let pre = p "224.0.0.0/16" in
  let short = Route.through (Route.originate 1 pre) 2 in
  let long = Route.through (Route.through (Route.originate 1 pre) 3) 4 in
  check Alcotest.bool "shorter preferred" true (Route.prefer short long == short);
  let self = Route.originate 5 pre in
  check Alcotest.bool "self-originated beats learned" true (Route.prefer self short == self)

let test_route_loop_detection () =
  let r = Route.through (Route.through (Route.originate 1 (p "224.0.0.0/16")) 2) 3 in
  check Alcotest.bool "loop via path" true (Route.contains_loop r 2);
  check Alcotest.bool "loop via origin" true (Route.contains_loop r 1);
  check Alcotest.bool "no loop" false (Route.contains_loop r 9)

let test_route_next_hop () =
  let r = Route.originate 1 (p "224.0.0.0/16") in
  check (Alcotest.option Alcotest.int) "self-originated has no next hop" None (Route.next_hop r);
  check (Alcotest.option Alcotest.int) "learned next hop" (Some 7) (Route.next_hop (Route.through r 7))

(* --- A small BGP network harness -------------------------------------- *)

let line_network n =
  (* 0 -P- 1 -P- 2 ... provider chain, 0 at the top. *)
  let topo = Gen.line ~n in
  let engine = Engine.create () in
  let net = Bgp_network.create ~engine ~topo () in
  (topo, engine, net)

let test_propagation_line () =
  let _, _, net = line_network 4 in
  Bgp_network.originate net 0 (p "224.0.0.0/16");
  Bgp_network.converge net;
  for d = 0 to 3 do
    match Speaker.lookup (Bgp_network.speaker net d) (Ipv4.of_string "224.0.1.1") with
    | Some r ->
        check Alcotest.int (Printf.sprintf "origin at %d" d) 0 r.Route.origin;
        check Alcotest.int (Printf.sprintf "path length at %d" d) d (Route.path_length r)
    | None -> Alcotest.fail (Printf.sprintf "domain %d has no route" d)
  done

let test_next_hop_to_root () =
  let _, _, net = line_network 3 in
  Bgp_network.originate net 0 (p "224.0.0.0/16");
  Bgp_network.converge net;
  let g = Ipv4.of_string "224.0.0.1" in
  check (Alcotest.option Alcotest.int) "at root" None
    (Speaker.next_hop_to_root (Bgp_network.speaker net 0) g);
  check (Alcotest.option Alcotest.int) "one hop" (Some 0)
    (Speaker.next_hop_to_root (Bgp_network.speaker net 1) g);
  check (Alcotest.option Alcotest.int) "two hops" (Some 1)
    (Speaker.next_hop_to_root (Bgp_network.speaker net 2) g)

let test_withdraw_propagates () =
  let _, _, net = line_network 3 in
  Bgp_network.originate net 0 (p "224.0.0.0/16");
  Bgp_network.converge net;
  Bgp_network.withdraw net 0 (p "224.0.0.0/16");
  Bgp_network.converge net;
  for d = 0 to 2 do
    check Alcotest.bool (Printf.sprintf "gone at %d" d) true
      (Speaker.lookup (Bgp_network.speaker net d) (Ipv4.of_string "224.0.0.1") = None)
  done

let test_gao_rexford_policy () =
  (* Two providers P1, P2 over one customer C; a prefix originated by P1
     must NOT be exported by C to P2 (customers give no transit). *)
  let topo = Topo.create () in
  let p1 = Topo.add_domain topo ~name:"P1" ~kind:Domain.Backbone in
  let p2 = Topo.add_domain topo ~name:"P2" ~kind:Domain.Backbone in
  let c = Topo.add_domain topo ~name:"C" ~kind:Domain.Stub in
  Topo.add_link topo p1 c Topo.Provider_customer;
  Topo.add_link topo p2 c Topo.Provider_customer;
  let engine = Engine.create () in
  let net = Bgp_network.create ~engine ~topo () in
  Bgp_network.originate net p1 (p "224.0.0.0/16");
  Bgp_network.converge net;
  check Alcotest.bool "customer has the route" true
    (Speaker.lookup (Bgp_network.speaker net c) (Ipv4.of_string "224.0.0.1") <> None);
  check Alcotest.bool "other provider does not (no valley)" true
    (Speaker.lookup (Bgp_network.speaker net p2) (Ipv4.of_string "224.0.0.1") = None)

let test_peer_routes_not_transited () =
  (* Peers exchange their own routes but do not give each other transit
     to a third peer. P1 -peer- P2 -peer- P3 in a line. *)
  let topo = Topo.create () in
  let p1 = Topo.add_domain topo ~name:"P1" ~kind:Domain.Backbone in
  let p2 = Topo.add_domain topo ~name:"P2" ~kind:Domain.Backbone in
  let p3 = Topo.add_domain topo ~name:"P3" ~kind:Domain.Backbone in
  Topo.add_link topo p1 p2 Topo.Peer;
  Topo.add_link topo p2 p3 Topo.Peer;
  let engine = Engine.create () in
  let net = Bgp_network.create ~engine ~topo () in
  Bgp_network.originate net p1 (p "224.0.0.0/16");
  Bgp_network.converge net;
  check Alcotest.bool "direct peer hears it" true
    (Speaker.lookup (Bgp_network.speaker net p2) (Ipv4.of_string "224.0.0.1") <> None);
  check Alcotest.bool "peer of peer does not" true
    (Speaker.lookup (Bgp_network.speaker net p3) (Ipv4.of_string "224.0.0.1") = None)

let test_customer_routes_go_everywhere () =
  (* Provider must export customer routes to peers and other customers. *)
  let topo = Topo.create () in
  let prov = Topo.add_domain topo ~name:"P" ~kind:Domain.Backbone in
  let peer = Topo.add_domain topo ~name:"Q" ~kind:Domain.Backbone in
  let c1 = Topo.add_domain topo ~name:"C1" ~kind:Domain.Stub in
  let c2 = Topo.add_domain topo ~name:"C2" ~kind:Domain.Stub in
  Topo.add_link topo prov peer Topo.Peer;
  Topo.add_link topo prov c1 Topo.Provider_customer;
  Topo.add_link topo prov c2 Topo.Provider_customer;
  let engine = Engine.create () in
  let net = Bgp_network.create ~engine ~topo () in
  Bgp_network.originate net c1 (p "224.1.0.0/16");
  Bgp_network.converge net;
  let g = Ipv4.of_string "224.1.2.3" in
  check Alcotest.bool "peer hears customer route" true
    (Speaker.lookup (Bgp_network.speaker net peer) g <> None);
  check Alcotest.bool "sibling customer hears it" true
    (Speaker.lookup (Bgp_network.speaker net c2) g <> None)

let test_aggregation_suppresses_specifics () =
  (* §4.3.2: the parent's covering route makes the child's more-specific
     route invisible beyond the parent. A(top) - B - C chain where B
     claims from A's space. *)
  let _, _, net = line_network 3 in
  Bgp_network.originate net 0 (p "224.0.0.0/16");
  Bgp_network.originate net 1 (p "224.0.128.0/24");
  Bgp_network.converge net;
  (* Domain 0 (the parent? here 0 is the top): it originates the /16; it
     hears B's /24. 0's own G-RIB has both. *)
  check Alcotest.int "top sees both routes" 2 (Speaker.grib_size (Bgp_network.speaker net 0));
  (* Domain 2 is a customer of 1: it hears 1's /24 (self-originated) and
     the /16 (learned from 0 via 1 — 1 exports its provider's route to
     its customer). *)
  check Alcotest.bool "customer of B sees the /24" true
    (List.mem_assoc (p "224.0.128.0/24") (Speaker.best_routes (Bgp_network.speaker net 2)));
  (* Now check suppression in the other direction: make a sibling of B
     under the top — it must NOT see B's /24 (covered by the /16 the top
     originates), only the aggregate. *)
  let topo = Topo.create () in
  let a = Topo.add_domain topo ~name:"A" ~kind:Domain.Backbone in
  let b = Topo.add_domain topo ~name:"B" ~kind:Domain.Regional in
  let s = Topo.add_domain topo ~name:"S" ~kind:Domain.Regional in
  Topo.add_link topo a b Topo.Provider_customer;
  Topo.add_link topo a s Topo.Provider_customer;
  let engine = Engine.create () in
  let net2 = Bgp_network.create ~engine ~topo () in
  Bgp_network.originate net2 a (p "224.0.0.0/16");
  Bgp_network.originate net2 b (p "224.0.128.0/24");
  Bgp_network.converge net2;
  let s_routes = Speaker.best_routes (Bgp_network.speaker net2 s) in
  check Alcotest.bool "sibling sees aggregate" true (List.mem_assoc (p "224.0.0.0/16") s_routes);
  check Alcotest.bool "sibling does not see the specific" false
    (List.mem_assoc (p "224.0.128.0/24") s_routes);
  (* Yet longest-match from the sibling still routes toward A, which
     holds the more-specific route toward B: two-stage forwarding of
     §4.2. *)
  check (Alcotest.option Alcotest.int) "sibling forwards to A" (Some a)
    (Speaker.next_hop_to_root (Bgp_network.speaker net2 s) (Ipv4.of_string "224.0.128.9"));
  check (Alcotest.option Alcotest.int) "A forwards into B" (Some b)
    (Speaker.next_hop_to_root (Bgp_network.speaker net2 a) (Ipv4.of_string "224.0.128.9"))

let test_custom_export_filter () =
  (* Multicast policy via selective propagation (§4.2): A filters the
     route toward one peer. *)
  let topo = Topo.create () in
  let a = Topo.add_domain topo ~name:"A" ~kind:Domain.Backbone in
  let b = Topo.add_domain topo ~name:"B" ~kind:Domain.Stub in
  let c = Topo.add_domain topo ~name:"C" ~kind:Domain.Stub in
  Topo.add_link topo a b Topo.Provider_customer;
  Topo.add_link topo a c Topo.Provider_customer;
  let engine = Engine.create () in
  let net = Bgp_network.create ~engine ~topo () in
  Speaker.set_export_filter (Bgp_network.speaker net a) (fun ~dst _route -> dst <> c);
  Bgp_network.originate net a (p "224.0.0.0/16");
  Bgp_network.converge net;
  check Alcotest.bool "B hears the route" true
    (Speaker.lookup (Bgp_network.speaker net b) (Ipv4.of_string "224.0.0.1") <> None);
  check Alcotest.bool "C is filtered" true
    (Speaker.lookup (Bgp_network.speaker net c) (Ipv4.of_string "224.0.0.1") = None)

let test_best_path_selection_in_mesh () =
  (* A square: 0-1, 1-3, 0-2, 2-3 (all peers won't propagate; use
     provider links downward from 0). 3 should pick a 2-hop path. *)
  let topo = Topo.create () in
  let d0 = Topo.add_domain topo ~name:"0" ~kind:Domain.Backbone in
  let d1 = Topo.add_domain topo ~name:"1" ~kind:Domain.Regional in
  let d2 = Topo.add_domain topo ~name:"2" ~kind:Domain.Regional in
  let d3 = Topo.add_domain topo ~name:"3" ~kind:Domain.Stub in
  Topo.add_link topo d0 d1 Topo.Provider_customer;
  Topo.add_link topo d0 d2 Topo.Provider_customer;
  Topo.add_link topo d1 d3 Topo.Provider_customer;
  Topo.add_link topo d2 d3 Topo.Provider_customer;
  let engine = Engine.create () in
  let net = Bgp_network.create ~engine ~topo () in
  Bgp_network.originate net d0 (p "224.0.0.0/16");
  Bgp_network.converge net;
  match Speaker.lookup (Bgp_network.speaker net d3) (Ipv4.of_string "224.0.0.1") with
  | Some r ->
      check Alcotest.int "two-hop path" 2 (Route.path_length r);
      (* Deterministic tie-break: lower first-hop id wins. *)
      check (Alcotest.option Alcotest.int) "tie-break to lower id" (Some d1) (Route.next_hop r)
  | None -> Alcotest.fail "no route at 3"

let test_grib_sizes () =
  let _, _, net = line_network 3 in
  Bgp_network.originate net 0 (p "224.0.0.0/16");
  Bgp_network.originate net 1 (p "225.0.0.0/16");
  Bgp_network.converge net;
  let sizes = Bgp_network.grib_sizes net in
  check Alcotest.int "domain 0" 2 sizes.(0);
  check Alcotest.int "domain 2" 2 sizes.(2)

let test_reorigination_idempotent () =
  let _, _, net = line_network 2 in
  Bgp_network.originate net 0 (p "224.0.0.0/16");
  Bgp_network.converge net;
  let before = Bgp_network.update_count net in
  Bgp_network.originate net 0 (p "224.0.0.0/16");
  Bgp_network.converge net;
  check Alcotest.int "no extra updates" before (Bgp_network.update_count net)

let prop_converged_next_hops_reach_origin =
  (* On random provider trees, following next hops from any domain
     reaches the route's origin. *)
  QCheck.Test.make ~name:"G-RIB next hops lead to the root domain" ~count:30
    QCheck.(int_range 1 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let topo = Gen.transit_stub ~rng ~backbones:2 ~regionals_per_backbone:2 ~stubs_per_regional:2 in
      let engine = Engine.create () in
      let net = Bgp_network.create ~engine ~topo () in
      let origin = Rng.int rng (Topo.domain_count topo) in
      Bgp_network.originate net origin (p "224.0.0.0/16");
      Bgp_network.converge net;
      let g = Ipv4.of_string "224.0.0.1" in
      let ok = ref true in
      for d = 0 to Topo.domain_count topo - 1 do
        let rec follow node steps =
          if steps > Topo.domain_count topo then false
          else if node = origin then true
          else
            match Speaker.next_hop_to_root (Bgp_network.speaker net node) g with
            | Some nxt -> follow nxt (steps + 1)
            | None -> false
        in
        (* Policy may legitimately hide the route from some domains; only
           check domains that have it. *)
        if Speaker.lookup (Bgp_network.speaker net d) g <> None then
          if not (follow d 0) then ok := false
      done;
      !ok)

let test_update_pp () =
  let r = Route.originate 3 (p "224.0.0.0/16") in
  check Alcotest.bool "advertise prints" true
    (String.length (Format.asprintf "%a" Update.pp (Update.Advertise r)) > 0);
  check Alcotest.bool "withdraw prints" true
    (String.length (Format.asprintf "%a" Update.pp (Update.Withdraw (p "224.0.0.0/16"))) > 0)

let _ = prefix_testable

let suite =
  [
    ("route prefer shortest path", `Quick, test_route_prefer_shortest_path);
    ("route loop detection", `Quick, test_route_loop_detection);
    ("route next hop", `Quick, test_route_next_hop);
    ("propagation along a line", `Quick, test_propagation_line);
    ("next hop to root", `Quick, test_next_hop_to_root);
    ("withdraw propagates", `Quick, test_withdraw_propagates);
    ("gao-rexford policy", `Quick, test_gao_rexford_policy);
    ("peer routes not transited", `Quick, test_peer_routes_not_transited);
    ("customer routes go everywhere", `Quick, test_customer_routes_go_everywhere);
    ("aggregation suppresses specifics", `Quick, test_aggregation_suppresses_specifics);
    ("custom export filter", `Quick, test_custom_export_filter);
    ("best path selection in mesh", `Quick, test_best_path_selection_in_mesh);
    ("grib sizes", `Quick, test_grib_sizes);
    ("re-origination idempotent", `Quick, test_reorigination_idempotent);
    ("update pp", `Quick, test_update_pp);
    QCheck_alcotest.to_alcotest prop_converged_next_hops_reach_origin;
  ]
