(* Tests for mcast_obs: the metrics registry and its snapshots. *)

let check = Alcotest.check

(* A private registry per test keeps these independent of the
   process-wide instrumentation in the protocol stack. *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "a.hits" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 3;
  check Alcotest.int "count" 5 (Metrics.count c);
  (* Find-or-create: the same name yields the same handle. *)
  Metrics.incr (Metrics.counter ~registry:r "a.hits");
  check Alcotest.int "shared handle" 6 (Metrics.count c)

let test_gauge_set_max () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "a.depth" in
  Metrics.set_max g 4.0;
  Metrics.set_max g 2.0;
  check (Alcotest.float 1e-9) "keeps high-water mark" 4.0 (Metrics.value g);
  Metrics.set g 1.0;
  check (Alcotest.float 1e-9) "set overrides" 1.0 (Metrics.value g)

let test_kind_mismatch_raises () =
  let r = Metrics.create () in
  ignore (Metrics.counter ~registry:r "x");
  check Alcotest.bool "gauge on counter name" true
    (try
       ignore (Metrics.gauge ~registry:r "x");
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "histogram on counter name" true
    (try
       ignore (Metrics.histogram ~registry:r "x");
       false
     with Invalid_argument _ -> true)

let test_histogram_bucketing () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~limits:[| 1.0; 2.0; 5.0 |] "a.wait" in
  (* Upper bounds are inclusive; above the last limit is overflow. *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.9; 5.0; 5.1; 100.0 ];
  match Metrics.find (Metrics.snapshot r) "a.wait" with
  | Some (Metrics.Histogram_v v) ->
      check Alcotest.int "count" 8 v.Metrics.hcount;
      check
        (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.int))
        "bucket fill"
        [ (1.0, 2); (2.0, 2); (5.0, 2); (infinity, 2) ]
        v.Metrics.hbuckets;
      check (Alcotest.float 1e-9) "min" 0.5 v.Metrics.hmin;
      check (Alcotest.float 1e-9) "max" 100.0 v.Metrics.hmax;
      check (Alcotest.float 1e-6) "sum" 120.0 v.Metrics.hsum
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_histogram_rejects_bad_limits () =
  let r = Metrics.create () in
  check Alcotest.bool "non-increasing limits" true
    (try
       ignore (Metrics.histogram ~registry:r ~limits:[| 2.0; 1.0 |] "bad");
       false
     with Invalid_argument _ -> true)

let test_percentile_of_view () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~limits:[| 1.0; 2.0; 5.0 |] "lat" in
  (* Four observations spread over three bins. *)
  List.iter (Metrics.observe h) [ 0.5; 1.5; 2.5; 4.5 ];
  let v =
    match Metrics.find (Metrics.snapshot r) "lat" with
    | Some (Metrics.Histogram_v v) -> v
    | _ -> Alcotest.fail "histogram missing"
  in
  let p = Metrics.percentile_of_view v in
  (* The extremes are exact: p0 pins to hmin, p100 to hmax. *)
  check (Alcotest.float 1e-9) "p0 = min" 0.5 (p 0.0);
  check (Alcotest.float 1e-9) "p100 = max" 4.5 (p 100.0);
  (* Interior estimates interpolate within their bucket and stay
     monotone and inside the observed range. *)
  let p50 = p 50.0 and p90 = p 90.0 in
  check Alcotest.bool "p50 within bucket range" true (p50 >= 1.0 && p50 <= 2.0);
  check Alcotest.bool "monotone" true (p50 <= p90);
  check Alcotest.bool "p90 clamped to max" true (p90 <= 4.5);
  (* Error cases: empty view, out-of-range p. *)
  let r2 = Metrics.create () in
  ignore (Metrics.histogram ~registry:r2 ~limits:[| 1.0 |] "empty");
  let empty =
    match Metrics.find (Metrics.snapshot r2) "empty" with
    | Some (Metrics.Histogram_v v) -> v
    | _ -> Alcotest.fail "histogram missing"
  in
  check Alcotest.bool "empty view rejected" true
    (try
       ignore (Metrics.percentile_of_view empty 50.0);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "p out of range rejected" true
    (try
       ignore (p 101.0);
       false
     with Invalid_argument _ -> true)

let test_snapshot_sorted_and_reset () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter ~registry:r "z.last");
  Metrics.incr (Metrics.counter ~registry:r "a.first");
  Metrics.set (Metrics.gauge ~registry:r "m.mid") 7.0;
  check (Alcotest.list Alcotest.string) "sorted by name"
    [ "a.first"; "m.mid"; "z.last" ]
    (List.map fst (Metrics.snapshot r));
  let c = Metrics.counter ~registry:r "a.first" in
  Metrics.reset r;
  check Alcotest.int "counter zeroed" 0 (Metrics.count c);
  (* Handles stay valid across reset. *)
  Metrics.incr c;
  check Alcotest.int "handle usable after reset" 1 (Metrics.count c)

let test_diff () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c" in
  let g = Metrics.gauge ~registry:r "g" in
  let h = Metrics.histogram ~registry:r ~limits:[| 10.0 |] "h" in
  Metrics.incr c;
  Metrics.set g 5.0;
  Metrics.observe h 1.0;
  let before = Metrics.snapshot r in
  Metrics.add c 9;
  Metrics.set g 2.0;
  Metrics.observe h 3.0;
  Metrics.observe h 99.0;
  let d = Metrics.diff ~before ~after:(Metrics.snapshot r) in
  (match Metrics.find d "c" with
  | Some (Metrics.Counter_v n) -> check Alcotest.int "counter delta" 9 n
  | _ -> Alcotest.fail "counter missing");
  (match Metrics.find d "g" with
  | Some (Metrics.Gauge_v v) -> check (Alcotest.float 1e-9) "gauge takes after" 2.0 v
  | _ -> Alcotest.fail "gauge missing");
  match Metrics.find d "h" with
  | Some (Metrics.Histogram_v v) ->
      check Alcotest.int "histogram count delta" 2 v.Metrics.hcount;
      check (Alcotest.float 1e-6) "histogram sum delta" 102.0 v.Metrics.hsum;
      check
        (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.int))
        "bucket deltas"
        [ (10.0, 1); (infinity, 1) ]
        v.Metrics.hbuckets
  | _ -> Alcotest.fail "histogram missing"

let test_registry_determinism_across_runs () =
  (* Two identical seeded runs of the allocation simulator, each from a
     reset default registry, must leave byte-identical snapshots. *)
  let params =
    { Allocation_sim.default_params with Allocation_sim.horizon = Time.days 5.0; seed = 77 }
  in
  let run () =
    Metrics.reset Metrics.default;
    ignore (Allocation_sim.run params);
    Metrics.to_json (Metrics.snapshot Metrics.default)
  in
  let first = run () in
  let second = run () in
  check Alcotest.string "identical JSON snapshots" first second;
  check Alcotest.bool "run actually recorded something" true
    (match Metrics.find (Metrics.snapshot Metrics.default) "allocation.requests" with
    | Some (Metrics.Counter_v n) -> n > 0
    | _ -> false)

(* The trace-sink half of the observability work lives in [Sim.Trace];
   the retention-policy tests sit here with the rest of it. *)

let test_trace_ring_eviction () =
  check Alcotest.bool "ring capacity must be positive" true
    (try
       ignore (Trace.create ~sink:(Trace.Ring 0) ());
       false
     with Invalid_argument _ -> true);
  let tr = Trace.create ~sink:(Trace.Ring 3) () in
  for i = 1 to 5 do
    Trace.record tr ~time:(float_of_int i) ~actor:"a" ~tag:"t" (string_of_int i)
  done;
  check Alcotest.int "all five counted" 5 (Trace.length tr);
  check (Alcotest.list Alcotest.string) "newest three retained, oldest first"
    [ "3"; "4"; "5" ]
    (List.map (fun e -> e.Trace.detail) (Trace.entries tr));
  Trace.clear tr;
  check Alcotest.int "cleared count" 0 (Trace.length tr);
  check Alcotest.int "cleared entries" 0 (List.length (Trace.entries tr))

let test_trace_jsonl_roundtrip () =
  let path = Filename.temp_file "trace" ".jsonl" in
  let tr = Trace.create ~sink:(Trace.Jsonl path) () in
  (* Quotes, backslashes, newlines and a control byte all survive. *)
  Trace.record tr ~time:1.5 ~actor:"node-1" ~tag:"claim" "a\"b\\c";
  Trace.record tr ~time:2.25 ~actor:"node-2" ~tag:"join" "line1\nline2\tend";
  Trace.record tr ~time:3.0 ~actor:"x" ~tag:"esc" "ctl\x01byte";
  Trace.close tr;
  let entries = Trace.load_jsonl path in
  Sys.remove path;
  check Alcotest.int "three entries" 3 (List.length entries);
  let e1 = List.nth entries 0 and e2 = List.nth entries 1 and e3 = List.nth entries 2 in
  check (Alcotest.float 1e-12) "time survives" 1.5 e1.Trace.time;
  check Alcotest.string "actor survives" "node-1" e1.Trace.actor;
  check Alcotest.string "quotes/backslash survive" "a\"b\\c" e1.Trace.detail;
  check Alcotest.string "newline/tab survive" "line1\nline2\tend" e2.Trace.detail;
  check Alcotest.string "control byte survives" "ctl\x01byte" e3.Trace.detail;
  check Alcotest.bool "garbage line skipped" true
    (Trace.entry_of_json "not json at all" = None)

(* Spans: the causal identities threaded through protocol messages. *)

let test_span_minting () =
  let m = Span.create_minter () in
  let a = Span.root ~minter:m "claim:1:224.0.0.0/24" in
  let b = Span.child ~minter:m a in
  let c = Span.child ~minter:m b in
  check Alcotest.int "root span id" 0 a.Span.span;
  check (Alcotest.option Alcotest.int) "root has no parent" None a.Span.parent;
  check Alcotest.int "child id increments" 1 b.Span.span;
  check (Alcotest.option Alcotest.int) "child parented on root" (Some 0) b.Span.parent;
  check (Alcotest.option Alcotest.int) "grandchild parent" (Some 1) c.Span.parent;
  check Alcotest.string "chain keeps its trace id" a.Span.trace_id c.Span.trace_id;
  (* Counters are per trace id, so chains stay dense. *)
  let other = Span.root ~minter:m "group:224.0.0.1" in
  check Alcotest.int "fresh counter per trace id" 0 other.Span.span;
  check Alcotest.string "kind before the colon" "claim" (Span.kind a);
  check Alcotest.string "claim id shape" "claim:7:224.0.0.0/24"
    (Span.claim_id ~owner:7 "224.0.0.0/24");
  check Alcotest.string "join id shape" "join:224.0.0.1:3"
    (Span.join_id ~group:"224.0.0.1" ~member:"3");
  Span.reset ~minter:m ();
  check Alcotest.int "reset restarts the counters" 0
    (Span.root ~minter:m "claim:1:224.0.0.0/24").Span.span

let test_trace_span_jsonl_roundtrip () =
  let path = Filename.temp_file "trace" ".jsonl" in
  let tr = Trace.create ~sink:(Trace.Jsonl path) () in
  let m = Span.create_minter () in
  let s0 = Span.root ~minter:m "claim:2:224.0.4.0/24" in
  let s1 = Span.child ~minter:m s0 in
  Trace.record tr ~time:1.0 ~actor:"masc-2" ~tag:"claim" ~span:s0 "224.0.4.0/24 (new)";
  Trace.record tr ~time:2.0 ~actor:"masc-2" ~tag:"acquired" ~span:s1 "224.0.4.0/24";
  (* A bare [?trace_id] links without a span (how violations are recorded). *)
  Trace.record tr ~time:3.0 ~actor:"invariant" ~tag:"violation"
    ~trace_id:"claim:2:224.0.4.0/24" "overlap";
  Trace.record tr ~time:4.0 ~actor:"x" ~tag:"plain" "no chain";
  Trace.close tr;
  let entries = Trace.load_jsonl path in
  Sys.remove path;
  check Alcotest.int "four entries" 4 (List.length entries);
  let e0 = List.nth entries 0
  and e1 = List.nth entries 1
  and e2 = List.nth entries 2
  and e3 = List.nth entries 3 in
  check (Alcotest.option Alcotest.string) "span stamps the trace id"
    (Some "claim:2:224.0.4.0/24") e0.Trace.trace_id;
  check (Alcotest.option Alcotest.int) "root span id" (Some 0) e0.Trace.span;
  check (Alcotest.option Alcotest.int) "root parent absent" None e0.Trace.parent;
  check (Alcotest.option Alcotest.int) "child span id" (Some 1) e1.Trace.span;
  check (Alcotest.option Alcotest.int) "child parent" (Some 0) e1.Trace.parent;
  check (Alcotest.option Alcotest.string) "bare trace id survives"
    (Some "claim:2:224.0.4.0/24") e2.Trace.trace_id;
  check (Alcotest.option Alcotest.int) "bare trace id has no span" None e2.Trace.span;
  check (Alcotest.option Alcotest.string) "unchained entry stays unchained" None
    e3.Trace.trace_id;
  (* A line written before the causality fields existed still parses. *)
  match Trace.entry_of_json {|{"time": 1.5, "actor": "a", "tag": "t", "detail": "old"}|} with
  | Some e ->
      check Alcotest.string "legacy detail" "old" e.Trace.detail;
      check (Alcotest.option Alcotest.string) "legacy trace id absent" None e.Trace.trace_id;
      check (Alcotest.option Alcotest.int) "legacy span absent" None e.Trace.span;
      check (Alcotest.option Alcotest.int) "legacy parent absent" None e.Trace.parent
  | None -> Alcotest.fail "legacy 4-key line did not parse"

let test_trace_jsonl_sink_replacement () =
  let p1 = Filename.temp_file "trace1" ".jsonl" in
  let p2 = Filename.temp_file "trace2" ".jsonl" in
  let tr = Trace.create ~sink:(Trace.Jsonl p1) () in
  Trace.record tr ~time:1.0 ~actor:"a" ~tag:"t" "one";
  Trace.record tr ~time:2.0 ~actor:"a" ~tag:"t" "two";
  (* Replacing the sink must flush and close the old channel: the file
     is complete and immediately re-openable. *)
  Trace.set_sink tr (Trace.Jsonl p2);
  let old = Trace.load_jsonl p1 in
  check Alcotest.int "replaced file is complete" 2 (List.length old);
  check Alcotest.string "last record flushed" "two" (List.nth old 1).Trace.detail;
  let oc = open_out p1 in
  output_string oc "reopenable\n";
  close_out oc;
  Trace.record tr ~time:3.0 ~actor:"a" ~tag:"t" "three";
  Trace.close tr;
  let fresh = Trace.load_jsonl p2 in
  check Alcotest.int "new sink receives later records" 1 (List.length fresh);
  check Alcotest.string "routed to the new file" "three" (List.hd fresh).Trace.detail;
  Sys.remove p1;
  Sys.remove p2

let test_trace_set_sink_after_close () =
  let path = Filename.temp_file "trace" ".jsonl" in
  let tr = Trace.create ~sink:(Trace.Jsonl path) () in
  Trace.record tr ~time:1.0 ~actor:"a" ~tag:"t" "x";
  Trace.close tr;
  (* The channel is already closed; switching sinks must not raise by
     closing it a second time, and the trace stays usable. *)
  Trace.set_sink tr (Trace.Ring 1);
  Trace.record tr ~time:2.0 ~actor:"a" ~tag:"t" "y";
  check Alcotest.int "usable after the switch" 1 (List.length (Trace.entries tr));
  (* Close after close is equally harmless. *)
  Trace.close tr;
  Trace.close tr;
  Sys.remove path

(* The invariant monitor: named predicates, quiescent gating, counters. *)

let test_invariant_monitor () =
  let r = Metrics.create () in
  let inv = Invariant.create ~registry:r () in
  let transient = ref [] in
  Invariant.register inv ~name:"always" (fun () -> !transient);
  Invariant.register inv ~quiescent_only:true ~name:"settled" (fun () ->
      [ ("never settles", Some "chain-1") ]);
  check (Alcotest.list Alcotest.string) "names in registration order" [ "always"; "settled" ]
    (Invariant.names inv);
  check Alcotest.bool "duplicate name rejected" true
    (try
       Invariant.register inv ~name:"always" (fun () -> []);
       false
     with Invalid_argument _ -> true);
  (* Mid-run checks skip the quiescent-only predicate. *)
  check Alcotest.int "clean mid-run" 0 (List.length (Invariant.check ~quiescent:false inv));
  transient := [ ("boom", None) ];
  (match Invariant.check ~quiescent:false inv with
  | [ v ] ->
      check Alcotest.string "names the invariant" "always" v.Invariant.inv;
      check Alcotest.string "carries the detail" "boom" v.Invariant.detail;
      check (Alcotest.option Alcotest.string) "no chain attached" None v.Invariant.trace_id
  | vs -> Alcotest.fail (Printf.sprintf "expected one violation, got %d" (List.length vs)));
  (* A quiescent check runs everything. *)
  transient := [];
  (match Invariant.check inv with
  | [ v ] ->
      check Alcotest.string "settled predicate ran" "settled" v.Invariant.inv;
      check (Alcotest.option Alcotest.string) "chain attached" (Some "chain-1")
        v.Invariant.trace_id
  | vs -> Alcotest.fail (Printf.sprintf "expected one violation, got %d" (List.length vs)));
  let count name =
    match Metrics.find (Metrics.snapshot r) name with
    | Some (Metrics.Counter_v n) -> n
    | _ -> 0
  in
  check Alcotest.int "checks counted" 3 (count "invariant.checks");
  check Alcotest.int "violations counted" 2 (count "invariant.violations");
  check Alcotest.int "per-invariant counter" 1 (count "invariant.violations.settled");
  check Alcotest.int "per-invariant counter (other)" 1 (count "invariant.violations.always")

(* The hierarchical profiler.  Prof is process-global: every test
   leaves it disabled. *)

let with_prof f = Fun.protect ~finally:Prof.disable f

let test_prof_disabled_is_passthrough () =
  Prof.disable ();
  Prof.reset ();
  check Alcotest.int "value returned" 7 (Prof.span "x" (fun () -> 7));
  check Alcotest.int "nothing recorded" 0 (List.length (Prof.rows ()));
  check Alcotest.bool "reports disabled" false (Prof.is_enabled ())

let test_prof_tree () =
  with_prof @@ fun () ->
  Prof.enable ();
  for _ = 1 to 3 do
    Prof.span "outer" (fun () ->
        Prof.span "inner" (fun () -> Sys.opaque_identity (ignore (Array.make 64 0.0))))
  done;
  Prof.span "inner" (fun () -> ());
  let rows = Prof.rows () in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "pre-order paths, same name under different parents distinct"
    [ [ "outer" ]; [ "outer"; "inner" ]; [ "inner" ] ]
    (List.map (fun (r : Prof.row) -> r.Prof.path) rows);
  let outer = Option.get (Prof.find rows [ "outer" ]) in
  let inner = Option.get (Prof.find rows [ "outer"; "inner" ]) in
  check Alcotest.int "outer count" 3 outer.Prof.count;
  check Alcotest.int "inner count" 3 inner.Prof.count;
  check Alcotest.bool "child total within parent" true
    (inner.Prof.total_s <= outer.Prof.total_s +. 1e-9);
  check Alcotest.bool "self = total - children" true
    (abs_float (outer.Prof.self_s -. (outer.Prof.total_s -. inner.Prof.total_s)) < 1e-9);
  check Alcotest.bool "allocation charged to inner" true (inner.Prof.total_bytes > 0.0)

let test_prof_exception_closes_span () =
  with_prof @@ fun () ->
  Prof.enable ();
  (try Prof.span "boom" (fun () -> failwith "bang") with Failure _ -> ());
  Prof.span "after" (fun () -> ());
  let rows = Prof.rows () in
  check Alcotest.bool "failing span still charged" true
    (match Prof.find rows [ "boom" ] with Some r -> r.Prof.count = 1 | None -> false);
  (* The span closed on the way out: "after" is a sibling of "boom",
     not its child. *)
  check Alcotest.bool "current restored" true (Prof.find rows [ "after" ] <> None)

let test_prof_jsonl_roundtrip () =
  with_prof @@ fun () ->
  Prof.enable ();
  Prof.span "a" (fun () -> Prof.span "b" (fun () -> ()));
  let rows = Prof.rows () in
  let path = Filename.temp_file "prof" ".jsonl" in
  Prof.write_jsonl path;
  let loaded = Prof.load_jsonl path in
  Sys.remove path;
  check Alcotest.int "row count survives" (List.length rows) (List.length loaded);
  List.iter2
    (fun (x : Prof.row) (y : Prof.row) ->
      check (Alcotest.list Alcotest.string) "path survives" x.Prof.path y.Prof.path;
      check Alcotest.int "count survives" x.Prof.count y.Prof.count;
      check (Alcotest.float 1e-12) "total_s survives" x.Prof.total_s y.Prof.total_s;
      check (Alcotest.float 1e-12) "self_bytes survives" x.Prof.self_bytes y.Prof.self_bytes)
    rows loaded;
  check Alcotest.bool "garbage line skipped" true (Prof.row_of_json "nope" = None);
  (* Folded stacks: one "a;b self-us" line per row with self time. *)
  List.iter
    (fun line ->
      check Alcotest.bool ("folded line has a space: " ^ line) true
        (String.contains line ' '))
    (String.split_on_char '\n'
       (String.trim (Prof.folded [ { (List.hd rows) with Prof.self_s = 1e-3 } ])))

let test_prof_enable_resets () =
  with_prof @@ fun () ->
  Prof.enable ();
  Prof.span "old" (fun () -> ());
  Prof.enable ();
  Prof.span "new" (fun () -> ());
  let rows = Prof.rows () in
  check Alcotest.bool "old tree gone" true (Prof.find rows [ "old" ] = None);
  check Alcotest.bool "new tree present" true (Prof.find rows [ "new" ] <> None)

(* Sim-time telemetry series. *)

let test_timeseries_memory () =
  let ts = Timeseries.create () in
  let v = ref 1.0 in
  Timeseries.register ts "x" (fun () -> !v);
  Timeseries.register ts "y" (fun () -> 10.0 *. !v);
  (* Re-registering replaces the reader but keeps the order. *)
  Timeseries.register ts "x" (fun () -> -. !v);
  check (Alcotest.list Alcotest.string) "sources in first-registration order" [ "x"; "y" ]
    (Timeseries.sources ts);
  Timeseries.sample ts ~time:1.0;
  v := 2.0;
  Timeseries.sample ts ~time:2.0;
  check Alcotest.int "two samples" 2 (Timeseries.samples ts);
  check
    (Alcotest.list
       (Alcotest.pair (Alcotest.float 1e-9)
          (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))))
    "rows oldest first"
    [ (1.0, [ ("x", -1.0); ("y", 10.0) ]); (2.0, [ ("x", -2.0); ("y", 20.0) ]) ]
    (Timeseries.rows ts)

let test_timeseries_ring () =
  let ts = Timeseries.create ~sink:(Timeseries.Ring 2) () in
  Timeseries.register ts "n" (fun () -> 0.0);
  for i = 1 to 5 do
    Timeseries.sample ts ~time:(float_of_int i)
  done;
  check Alcotest.int "all five counted" 5 (Timeseries.samples ts);
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "newest two retained, oldest first" [ 4.0; 5.0 ]
    (List.map fst (Timeseries.rows ts))

let test_timeseries_jsonl_roundtrip () =
  let path = Filename.temp_file "series" ".jsonl" in
  let ts = Timeseries.create ~sink:(Timeseries.Jsonl path) () in
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "depth" in
  let c = Metrics.counter ~registry:r "hits" in
  Timeseries.register_gauge ts "depth" g;
  Timeseries.register_counter ts "hits" c;
  Metrics.set g 3.5;
  Metrics.incr c;
  Timeseries.sample ts ~time:10.0;
  Metrics.set g 1.25;
  Metrics.incr c;
  Timeseries.sample ts ~time:20.0;
  Timeseries.close ts;
  let points = Timeseries.load_jsonl path in
  Sys.remove path;
  check Alcotest.int "four points" 4 (List.length points);
  let by_series = Timeseries.series_of points in
  check (Alcotest.list Alcotest.string) "series in first-appearance order" [ "depth"; "hits" ]
    (List.map fst by_series);
  check
    (Alcotest.array (Alcotest.pair (Alcotest.float 1e-9) (Alcotest.float 1e-9)))
    "gauge series" [| (10.0, 3.5); (20.0, 1.25) |]
    (List.assoc "depth" by_series);
  check
    (Alcotest.array (Alcotest.pair (Alcotest.float 1e-9) (Alcotest.float 1e-9)))
    "counter series" [| (10.0, 1.0); (20.0, 2.0) |]
    (List.assoc "hits" by_series)

(* The engine's sampler hook: event-driven cadence plus a final sample
   when a run stops, never its own events. *)

let test_engine_sampler_cadence () =
  let e = Engine.create () in
  check Alcotest.bool "non-positive cadence rejected" true
    (try
       Engine.set_sampler e ~every:0.0 (fun _ -> ());
       false
     with Invalid_argument _ -> true);
  let hits = ref [] in
  Engine.set_sampler e ~every:(Time.seconds 60.0) (fun t -> hits := t :: !hits);
  for i = 1 to 10 do
    ignore (Engine.schedule_at e (Time.seconds (float_of_int i *. 25.0)) (fun () -> ()))
  done;
  Engine.run ~until:(Time.seconds 1000.0) e;
  (* Events at 25 s intervals with a 60 s cadence: samples land on the
     first event at or past each multiple of 60, plus a final sample
     when the run stops (the queue drains at 250 s, before the
     horizon, and the clock stays at the last event). *)
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "sampled on cadence, finished at the stop point"
    [ 75.0; 150.0; 225.0; 250.0 ]
    (List.rev !hits);
  (* A drained run samples at the last event time, not twice. *)
  let e2 = Engine.create () in
  let n = ref 0 in
  Engine.set_sampler e2 ~every:(Time.seconds 60.0) (fun _ -> incr n);
  ignore (Engine.schedule_at e2 (Time.seconds 10.0) (fun () -> ()));
  Engine.run e2;
  check Alcotest.int "final sample on drain" 1 !n;
  Engine.clear_sampler e2;
  ignore (Engine.schedule_at e2 (Time.seconds 500.0) (fun () -> ()));
  Engine.run e2;
  check Alcotest.int "cleared sampler is silent" 1 !n

let test_json_shape () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter ~registry:r "only.counter");
  let json = Metrics.to_json (Metrics.snapshot r) in
  check Alcotest.string "document" "{\n  \"metrics\": [\n    {\"name\": \"only.counter\", \"kind\": \"counter\", \"value\": 1}\n  ]\n}\n" json

(* --- flight recorder -------------------------------------------------- *)

(* The recorder's enabled flag and per-domain instance are process
   state, like the profiler's: each test runs under a protect that
   disables it again. *)
let with_recorder ?ring ?sink f =
  Recorder.enable ?ring ?sink ();
  Fun.protect ~finally:Recorder.disable f

let test_recorder_disabled_is_noop () =
  check Alcotest.bool "disabled by default" false (Recorder.is_enabled ());
  Recorder.record ~time:1.0 ~label:"x" ();
  check Alcotest.bool "still disabled" false (Recorder.is_enabled ())

let test_recorder_ring_and_counts () =
  with_recorder ~ring:4 (fun () ->
      for i = 1 to 6 do
        Recorder.record ~time:(float_of_int i) ~label:"ev" ()
      done;
      check Alcotest.int "all records counted" 6 (Recorder.records ());
      let recent = Recorder.recent () in
      check Alcotest.int "ring keeps the newest window" 4 (List.length recent);
      check
        (Alcotest.list (Alcotest.float 1e-9))
        "oldest first" [ 3.0; 4.0; 5.0; 6.0 ]
        (List.map (fun (r : Recorder.record) -> r.Recorder.r_time) recent);
      check Alcotest.int "seq numbers are stream positions" 2
        (List.hd recent).Recorder.seq)

let test_recorder_fingerprint_deterministic_and_order_sensitive () =
  let fp_of labels =
    with_recorder (fun () ->
        List.iter (fun l -> Recorder.record ~time:1.0 ~label:l ()) labels;
        Recorder.fingerprint ())
  in
  let a = fp_of [ "m.one"; "m.two" ] and b = fp_of [ "m.one"; "m.two" ] in
  check Alcotest.int "record count" 2 a.Recorder.fpr_records;
  check Alcotest.bool "same stream, same hash" true (a.Recorder.fpr_hash = b.Recorder.fpr_hash);
  let c = fp_of [ "m.two"; "m.one" ] in
  check Alcotest.bool "order matters" false (a.Recorder.fpr_hash = c.Recorder.fpr_hash);
  check Alcotest.bool "subject matters" false
    (let d =
       with_recorder (fun () ->
           Recorder.record ~time:1.0 ~label:"m.one" ~subject:"s" ();
           Recorder.record ~time:1.0 ~label:"m.two" ();
           Recorder.fingerprint ())
     in
     a.Recorder.fpr_hash = d.Recorder.fpr_hash)

let test_recorder_prefix_buckets () =
  with_recorder (fun () ->
      Recorder.record ~time:1.0 ~label:"net.recv.bgp" ();
      Recorder.record ~time:2.0 ~label:"masc.sweep" ();
      Recorder.record ~time:3.0 ~label:"net.drop.bgp" ();
      Recorder.record ~time:4.0 ~label:"plain" ();
      let fp = Recorder.fingerprint () in
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
        "prefixes sorted, counted by first dot component"
        [ ("masc", 1); ("net", 2); ("plain", 1) ]
        (List.map (fun (p, n, _) -> (p, n)) fp.Recorder.fpr_prefixes))

let test_recorder_jsonl_roundtrip () =
  let span = { Span.trace_id = "claim:1:224.0.0.0/24"; span = 3; parent = Some 2 } in
  with_recorder (fun () ->
      Recorder.record ~time:12.5 ~label:"net.recv.bgp" ~subject:"0->1 \"q\"" ~span ();
      Recorder.record ~time:13.0 ~label:"ev" ();
      List.iter
        (fun r ->
          check Alcotest.bool "roundtrips" true
            (Recorder.record_of_json (Recorder.record_to_json r) = Some r))
        (Recorder.recent ()));
  check Alcotest.bool "garbage rejected" true (Recorder.record_of_json "{nope}" = None)

let test_recorder_sink_and_counted_loader () =
  let file = Filename.temp_file "recorder" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let span = { Span.trace_id = "group:224.0.128.1"; span = 0; parent = None } in
      with_recorder ~sink:file (fun () ->
          Recorder.record ~time:1.0 ~label:"net.recv.bgmp" ~subject:"2->3" ~span ();
          Recorder.record ~time:2.0 ~label:"ev" ());
      (* [disable] closed the sink; corrupt the file the way a killed
         run would: a truncated line plus a blank one. *)
      let oc = open_out_gen [ Open_append ] 0o644 file in
      output_string oc "{\"seq\": 9, \"time\": trunca\n\n";
      close_out oc;
      let recs, bad = Recorder.load_jsonl file in
      check Alcotest.int "good records load" 2 (List.length recs);
      check Alcotest.int "malformed non-blank lines counted" 1 bad;
      let r0 = List.hd recs in
      check Alcotest.string "span survives the file" "group:224.0.128.1"
        (Option.get r0.Recorder.r_trace_id))

let test_recorder_capture_merge_matches_sequential () =
  let sequential =
    with_recorder (fun () ->
        Recorder.record ~time:1.0 ~label:"a.x" ();
        Recorder.record ~time:2.0 ~label:"b.y" ~subject:"s" ();
        Recorder.record ~time:3.0 ~label:"a.z" ();
        Recorder.fingerprint ())
  in
  let merged =
    with_recorder (fun () ->
        Recorder.record ~time:1.0 ~label:"a.x" ();
        let (), shard =
          Recorder.capture (fun () ->
              Recorder.record ~time:2.0 ~label:"b.y" ~subject:"s" ();
              Recorder.record ~time:3.0 ~label:"a.z" ())
        in
        check Alcotest.int "buffered records bypass the live stream" 1 (Recorder.records ());
        Recorder.merge shard;
        check Alcotest.int "merge replays in order" 3 (Recorder.records ());
        check
          (Alcotest.list Alcotest.int)
          "seq renumbered across the merge" [ 0; 1; 2 ]
          (List.map (fun (r : Recorder.record) -> r.Recorder.seq) (Recorder.recent ()));
        Recorder.fingerprint ())
  in
  check Alcotest.bool "merged stream fingerprint equals sequential" true
    (sequential.Recorder.fpr_hash = merged.Recorder.fpr_hash
    && sequential.Recorder.fpr_prefixes = merged.Recorder.fpr_prefixes)

let test_span_with_minter_scoping () =
  (* A scoped minter starts fresh and restores the ambient one, so a
     parallel task's span ids never depend on what minted before. *)
  Span.reset ();
  let outer = Span.root "claim:9:10.0.0.0/8" in
  check Alcotest.int "ambient minter at 0" 0 outer.Span.span;
  let inner =
    Span.with_minter (Span.create_minter ()) (fun () -> Span.root "claim:9:10.0.0.0/8")
  in
  check Alcotest.int "fresh minter restarts the trace id" 0 inner.Span.span;
  let after = Span.root "claim:9:10.0.0.0/8" in
  check Alcotest.int "ambient minter restored and advanced" 1 after.Span.span

let test_counted_loaders_report_malformed () =
  (* Trace, Prof and Timeseries share the skip-and-count contract the
     report subcommand surfaces as a warning. *)
  let file = Filename.temp_file "counted" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let tr = Trace.create ~sink:(Trace.Jsonl file) () in
      Trace.record tr ~time:1.0 ~actor:"a" ~tag:"t" "ok";
      Trace.close tr;
      let oc = open_out_gen [ Open_append ] 0o644 file in
      output_string oc "not json\n\n{\"time\": 2.0, \"actor\": \"b\", \"tag\"\n";
      close_out oc;
      let entries, bad = Trace.load_jsonl_counted file in
      check Alcotest.int "trace entries" 1 (List.length entries);
      check Alcotest.int "trace bad lines" 2 bad;
      let pts, bad_ts =
        let oc = open_out file in
        output_string oc "{\"at\": 1.0, \"series\": \"s\", \"value\": 2.0}\ngarbage\n";
        close_out oc;
        Timeseries.load_jsonl_counted file
      in
      check Alcotest.int "timeseries points" 1 (List.length pts);
      check Alcotest.int "timeseries bad lines" 1 bad_ts;
      let rows, bad_prof =
        let oc = open_out file in
        output_string oc "nonsense\n";
        close_out oc;
        Prof.load_jsonl_counted file
      in
      check Alcotest.int "prof rows" 0 (List.length rows);
      check Alcotest.int "prof bad lines" 1 bad_prof)

let suite =
  [
    ("counter basics", `Quick, test_counter_basics);
    ("gauge set_max", `Quick, test_gauge_set_max);
    ("kind mismatch raises", `Quick, test_kind_mismatch_raises);
    ("histogram bucketing", `Quick, test_histogram_bucketing);
    ("histogram rejects bad limits", `Quick, test_histogram_rejects_bad_limits);
    ("percentile of view", `Quick, test_percentile_of_view);
    ("snapshot sorted, reset keeps handles", `Quick, test_snapshot_sorted_and_reset);
    ("diff", `Quick, test_diff);
    ("registry determinism across seeded runs", `Quick, test_registry_determinism_across_runs);
    ("trace ring eviction", `Quick, test_trace_ring_eviction);
    ("trace jsonl roundtrip", `Quick, test_trace_jsonl_roundtrip);
    ("span minting", `Quick, test_span_minting);
    ("trace span jsonl roundtrip", `Quick, test_trace_span_jsonl_roundtrip);
    ("trace jsonl sink replacement", `Quick, test_trace_jsonl_sink_replacement);
    ("trace set_sink after close", `Quick, test_trace_set_sink_after_close);
    ("invariant monitor", `Quick, test_invariant_monitor);
    ("prof disabled passthrough", `Quick, test_prof_disabled_is_passthrough);
    ("prof tree", `Quick, test_prof_tree);
    ("prof exception closes span", `Quick, test_prof_exception_closes_span);
    ("prof jsonl roundtrip", `Quick, test_prof_jsonl_roundtrip);
    ("prof enable resets", `Quick, test_prof_enable_resets);
    ("timeseries memory", `Quick, test_timeseries_memory);
    ("timeseries ring", `Quick, test_timeseries_ring);
    ("timeseries jsonl roundtrip", `Quick, test_timeseries_jsonl_roundtrip);
    ("engine sampler cadence", `Quick, test_engine_sampler_cadence);
    ("json shape", `Quick, test_json_shape);
    ("recorder disabled is no-op", `Quick, test_recorder_disabled_is_noop);
    ("recorder ring and counts", `Quick, test_recorder_ring_and_counts);
    ( "recorder fingerprint deterministic, order-sensitive",
      `Quick,
      test_recorder_fingerprint_deterministic_and_order_sensitive );
    ("recorder prefix buckets", `Quick, test_recorder_prefix_buckets);
    ("recorder jsonl roundtrip", `Quick, test_recorder_jsonl_roundtrip);
    ("recorder sink and counted loader", `Quick, test_recorder_sink_and_counted_loader);
    ( "recorder capture/merge matches sequential",
      `Quick,
      test_recorder_capture_merge_matches_sequential );
    ("span with_minter scoping", `Quick, test_span_with_minter_scoping);
    ("counted loaders report malformed lines", `Quick, test_counted_loaders_report_malformed);
  ]
