(* Tests for mcast_beacon: the delivery-matrix accumulator, the beacon
   fleet over a live fabric, and the campaign driver (determinism
   across seeds and job counts, loss accounting, churn). *)

let check = Alcotest.check

let h d i = Host_ref.make d i

(* --- Beacon_matrix ----------------------------------------------------- *)

let test_matrix_expect_deliver_cell () =
  let m = Beacon_matrix.create () in
  let src = h 0 1 and dst = h 2 0 in
  Beacon_matrix.expect m ~src ~dst;
  Beacon_matrix.expect m ~src ~dst;
  Beacon_matrix.deliver m ~src ~dst ~latency:0.02 ~hops:2 ~spf_dist:2;
  Beacon_matrix.deliver m ~src ~dst ~latency:0.04 ~hops:4 ~spf_dist:2;
  match Beacon_matrix.cells m with
  | [ c ] ->
      check Alcotest.int "sent" 2 c.Beacon_matrix.c_sent;
      check Alcotest.int "got" 2 c.Beacon_matrix.c_got;
      check (Alcotest.float 1e-9) "loss" 0.0 c.Beacon_matrix.c_loss;
      check (Alcotest.float 1e-9) "lat mean" 0.03 c.Beacon_matrix.c_lat_mean;
      check (Alcotest.float 1e-9) "lat max" 0.04 c.Beacon_matrix.c_lat_max;
      check (Alcotest.float 1e-9) "hops mean" 3.0 c.Beacon_matrix.c_hops_mean;
      check (Alcotest.float 1e-9) "stretch mean" 1.5 c.Beacon_matrix.c_stretch_mean;
      check (Alcotest.float 1e-9) "stretch max" 2.0 c.Beacon_matrix.c_stretch_max
  | cs -> Alcotest.fail (Printf.sprintf "expected one cell, got %d" (List.length cs))

let test_matrix_same_domain_stretch_is_one () =
  (* spf_dist 0 (same domain) must observe stretch 1.0, matching a
     zero-hop interior delivery, not a division by zero. *)
  let m = Beacon_matrix.create () in
  Beacon_matrix.expect m ~src:(h 3 0) ~dst:(h 3 1);
  Beacon_matrix.deliver m ~src:(h 3 0) ~dst:(h 3 1) ~latency:0.0 ~hops:0 ~spf_dist:0;
  match Beacon_matrix.cells m with
  | [ c ] ->
      check (Alcotest.float 1e-9) "stretch" 1.0 c.Beacon_matrix.c_stretch_mean
  | _ -> Alcotest.fail "expected one cell"

let test_matrix_summary_loss_unreachable_asymmetric () =
  let m = Beacon_matrix.create () in
  let a = h 0 0 and b = h 1 0 in
  (* a->b fully delivered, b->a fully lost: one unreachable pair, one
     asymmetric unordered pair, aggregate loss 1/2. *)
  Beacon_matrix.expect m ~src:a ~dst:b;
  Beacon_matrix.deliver m ~src:a ~dst:b ~latency:0.01 ~hops:1 ~spf_dist:1;
  Beacon_matrix.expect m ~src:b ~dst:a;
  let s = Beacon_matrix.summary (Beacon_matrix.cells m) in
  check Alcotest.int "pairs" 2 s.Beacon_matrix.s_pairs;
  check Alcotest.int "sent" 2 s.Beacon_matrix.s_sent;
  check Alcotest.int "got" 1 s.Beacon_matrix.s_got;
  check Alcotest.int "lost" 1 s.Beacon_matrix.s_lost;
  check (Alcotest.float 1e-9) "loss" 0.5 s.Beacon_matrix.s_loss;
  check Alcotest.int "unreachable" 1 s.Beacon_matrix.s_unreachable;
  check Alcotest.int "asymmetric" 1 s.Beacon_matrix.s_asymmetric;
  check Alcotest.bool "not complete" false s.Beacon_matrix.s_complete

let test_matrix_merge_matches_direct () =
  (* Folding two shard matrices must equal accumulating directly. *)
  let direct = Beacon_matrix.create () in
  let m1 = Beacon_matrix.create () and m2 = Beacon_matrix.create () in
  let feed m ~src ~dst lat hops =
    Beacon_matrix.expect m ~src ~dst;
    Beacon_matrix.deliver m ~src ~dst ~latency:lat ~hops ~spf_dist:2
  in
  feed direct ~src:(h 0 0) ~dst:(h 1 0) 0.01 2;
  feed direct ~src:(h 0 0) ~dst:(h 1 0) 0.03 4;
  feed direct ~src:(h 2 0) ~dst:(h 1 0) 0.05 2;
  feed m1 ~src:(h 0 0) ~dst:(h 1 0) 0.01 2;
  feed m2 ~src:(h 0 0) ~dst:(h 1 0) 0.03 4;
  feed m2 ~src:(h 2 0) ~dst:(h 1 0) 0.05 2;
  let merged = Beacon_matrix.create () in
  Beacon_matrix.merge_into ~into:merged m1;
  Beacon_matrix.merge_into ~into:merged m2;
  check Alcotest.bool "merged cells equal direct cells" true
    (Beacon_matrix.cells merged = Beacon_matrix.cells direct)

let test_matrix_worst_ordering () =
  let m = Beacon_matrix.create () in
  (* (0,1): loss 0; (2,3): loss 1; (4,5): loss 0.5. *)
  Beacon_matrix.expect m ~src:(h 0 0) ~dst:(h 1 0);
  Beacon_matrix.deliver m ~src:(h 0 0) ~dst:(h 1 0) ~latency:0.01 ~hops:1 ~spf_dist:1;
  Beacon_matrix.expect m ~src:(h 2 0) ~dst:(h 3 0);
  Beacon_matrix.expect m ~src:(h 4 0) ~dst:(h 5 0);
  Beacon_matrix.expect m ~src:(h 4 0) ~dst:(h 5 0);
  Beacon_matrix.deliver m ~src:(h 4 0) ~dst:(h 5 0) ~latency:0.01 ~hops:1 ~spf_dist:1;
  let worst = Beacon_matrix.worst (Beacon_matrix.cells m) ~n:2 in
  check Alcotest.int "two rows" 2 (List.length worst);
  let srcs = List.map (fun c -> c.Beacon_matrix.c_src.Host_ref.host_domain) worst in
  check (Alcotest.list Alcotest.int) "highest loss first" [ 2; 4 ] srcs

let test_matrix_jsonl_roundtrip () =
  let m = Beacon_matrix.create () in
  Beacon_matrix.expect m ~src:(h 0 1) ~dst:(h 2 0);
  Beacon_matrix.deliver m ~src:(h 0 1) ~dst:(h 2 0) ~latency:0.025 ~hops:3 ~spf_dist:2;
  Beacon_matrix.expect m ~src:(h 2 0) ~dst:(h 0 1);
  let cells = Beacon_matrix.cells m in
  let path = Filename.temp_file "matrix" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Beacon_matrix.write_jsonl ~meta:[ ("loss", 0.5); ("trials", 1.0) ] path cells;
      let meta, loaded = Beacon_matrix.load_jsonl path in
      check Alcotest.int "cells survive" (List.length cells) (List.length loaded);
      check Alcotest.bool "summaries equal" true
        (Beacon_matrix.summary loaded = Beacon_matrix.summary cells);
      check (Alcotest.float 1e-9) "meta loss" 0.5 (List.assoc "loss" meta);
      check (Alcotest.float 1e-9) "meta trials" 1.0 (List.assoc "trials" meta))

(* --- Beacon fleet over a live fabric ----------------------------------- *)

let g = Ipv4.of_string "224.0.128.1"

let make_fabric topo ~root_name =
  let engine = Engine.create () in
  let net = Net.create ~engine () in
  let root = Option.get (Topo.find_by_name topo root_name) in
  let paths = Spf.bfs topo root in
  let route_to_root d _g =
    if d = root then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward topo paths d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  let fabric = Bgmp_fabric.create ~engine ~topo ~net ~route_to_root () in
  (engine, fabric)

let dom topo name = Option.get (Topo.find_by_name topo name)

let fleet_config =
  { Beacon.period = 0.5; probes_per_source = 3; harvest_after = 0.5; stagger = 0.05 }

let test_beacon_fleet_complete_at_loss_zero () =
  let topo = Gen.figure1 () in
  let engine, fabric = make_fabric topo ~root_name:"B" in
  let beacon = Beacon.create ~engine ~topo ~fabric ~config:fleet_config () in
  let c = h (dom topo "C") 0 and f = h (dom topo "F") 0 and e = h (dom topo "E") 9 in
  Beacon.add_listener beacon ~group:g ~host:c;
  Beacon.add_listener beacon ~group:g ~host:f;
  Beacon.add_source beacon ~group:g ~host:e;
  Engine.run_until_idle engine;
  Beacon.start beacon ~at:(Engine.now engine);
  Engine.run_until_idle engine;
  check Alcotest.int "probes sent" 3 (Beacon.probes_sent beacon);
  check Alcotest.int "deliveries" 6 (Beacon.deliveries beacon);
  check Alcotest.int "nothing lost" 0 (Beacon.lost beacon);
  check Alcotest.int "nothing outstanding" 0 (Beacon.outstanding beacon);
  let s = Beacon_matrix.summary (Beacon_matrix.cells (Beacon.matrix beacon)) in
  check Alcotest.int "two pairs" 2 s.Beacon_matrix.s_pairs;
  check Alcotest.bool "complete" true s.Beacon_matrix.s_complete;
  check Alcotest.bool "latency observed" true (s.Beacon_matrix.s_lat_mean > 0.0)

let test_beacon_fleet_accounts_lost_probes () =
  (* Cut C's tree link (the root B peers with C directly in figure 1)
     after convergence: every probe copy bound for C is written off by
     the harvests; F keeps hearing probes. *)
  let topo = Gen.figure1 () in
  let engine, fabric = make_fabric topo ~root_name:"B" in
  let beacon = Beacon.create ~engine ~topo ~fabric ~config:fleet_config () in
  let cdom = dom topo "C" in
  Beacon.add_listener beacon ~group:g ~host:(h cdom 0);
  Beacon.add_listener beacon ~group:g ~host:(h (dom topo "F") 0);
  Beacon.add_source beacon ~group:g ~host:(h (dom topo "E") 9);
  Engine.run_until_idle engine;
  Bgmp_fabric.fail_link fabric cdom (dom topo "B");
  Beacon.start beacon ~at:(Engine.now engine);
  Engine.run_until_idle engine;
  check Alcotest.int "probes sent" 3 (Beacon.probes_sent beacon);
  check Alcotest.int "C's copies lost" 3 (Beacon.lost beacon);
  check Alcotest.int "F's copies arrived" 3 (Beacon.deliveries beacon);
  check Alcotest.int "accounting closed" 0 (Beacon.outstanding beacon);
  let s = Beacon_matrix.summary (Beacon_matrix.cells (Beacon.matrix beacon)) in
  check Alcotest.int "one unreachable pair" 1 s.Beacon_matrix.s_unreachable;
  check Alcotest.bool "not complete" false s.Beacon_matrix.s_complete

(* --- Beacon_campaign --------------------------------------------------- *)

let small p = { p with Beacon_campaign.domains = 8; per_domain = 1; probes = 2 }

let test_campaign_loss_zero_complete () =
  let r = Beacon_campaign.run (small Beacon_campaign.default_params) in
  (match r.Beacon_campaign.trials with
  | [ t ] ->
      check Alcotest.int "14 domains (2x3 transit-stub rounding)" 14
        t.Beacon_campaign.r_domains;
      check Alcotest.int "sources = fleets + session beacons" 28 t.Beacon_campaign.r_sources;
      check Alcotest.bool "data crossed domain borders" true
        (t.Beacon_campaign.r_data_msgs > 0);
      check Alcotest.int "no duplicates" 0 t.Beacon_campaign.r_duplicates;
      check Alcotest.int "no net drops" 0 t.Beacon_campaign.r_net_dropped;
      check Alcotest.bool "probing starts after convergence" true
        (t.Beacon_campaign.r_first_probe_s >= t.Beacon_campaign.r_converged_s)
  | ts -> Alcotest.fail (Printf.sprintf "expected one trial, got %d" (List.length ts)));
  check Alcotest.bool "matrix complete at loss zero" true
    r.Beacon_campaign.agg.Beacon_matrix.s_complete;
  check Alcotest.int "no unreachable pairs" 0
    r.Beacon_campaign.agg.Beacon_matrix.s_unreachable;
  check Alcotest.bool "stretch measured" true
    (r.Beacon_campaign.agg.Beacon_matrix.s_stretch_mean >= 1.0)

let lossy_params =
  { (small Beacon_campaign.default_params) with Beacon_campaign.trials = 3; loss = 0.05 }

let test_campaign_jobs_invariant () =
  (* The matrix is an aggregate over trials merged in task order: the
     worker count must be unobservable. *)
  let r1 = Beacon_campaign.run ~jobs:1 lossy_params in
  let r2 = Beacon_campaign.run ~jobs:2 lossy_params in
  check Alcotest.bool "cells identical at --jobs 1 and 2" true
    (r1.Beacon_campaign.cells = r2.Beacon_campaign.cells);
  check Alcotest.bool "summary identical" true
    (r1.Beacon_campaign.agg = r2.Beacon_campaign.agg);
  check Alcotest.bool "some probes actually dropped" true
    (r1.Beacon_campaign.agg.Beacon_matrix.s_lost > 0)

let test_campaign_seed_determinism () =
  let r1 = Beacon_campaign.run lossy_params in
  let r2 = Beacon_campaign.run lossy_params in
  check Alcotest.bool "same seed, same matrix" true
    (r1.Beacon_campaign.cells = r2.Beacon_campaign.cells);
  let r3 = Beacon_campaign.run { lossy_params with Beacon_campaign.seed = 4242 } in
  check Alcotest.bool "different seed, different loss pattern" false
    (r1.Beacon_campaign.cells = r3.Beacon_campaign.cells)

let test_campaign_churn_loses_probes () =
  (* Link churn mid-window at loss zero: the failed uplink is the only
     loss source, so lost > 0 comes from the outage alone. *)
  let p = { (small Beacon_campaign.default_params) with Beacon_campaign.churn = true } in
  let r = Beacon_campaign.run p in
  (match r.Beacon_campaign.trials with
  | [ t ] ->
      check Alcotest.bool "churn lost probes" true (t.Beacon_campaign.r_lost > 0);
      check Alcotest.int "no duplicates under churn" 0 t.Beacon_campaign.r_duplicates
  | _ -> Alcotest.fail "expected one trial");
  check Alcotest.bool "matrix not complete" false
    r.Beacon_campaign.agg.Beacon_matrix.s_complete

let test_campaign_rejects_bad_params () =
  let module C = Beacon_campaign in
  check Alcotest.bool "zero trials rejected" true
    (try
       ignore (C.run { C.default_params with C.trials = 0 });
       false
     with Invalid_argument _ -> true);
  let ts = Timeseries.create () in
  check Alcotest.bool "telemetry with multiple trials rejected" true
    (try
       ignore
         (C.run { C.default_params with C.trials = 2; telemetry = Some (ts, 0.1) });
       false
     with Invalid_argument _ -> true)

let test_campaign_telemetry_series () =
  let ts = Timeseries.create () in
  let p =
    { (small Beacon_campaign.default_params) with
      Beacon_campaign.telemetry = Some (ts, 0.25)
    }
  in
  let r = Beacon_campaign.run p in
  check Alcotest.bool "campaign ran" true
    (r.Beacon_campaign.agg.Beacon_matrix.s_sent > 0);
  check Alcotest.bool "sampler drove the series" true (Timeseries.samples ts > 0)

let suite =
  [
    ("matrix expect/deliver cell", `Quick, test_matrix_expect_deliver_cell);
    ("matrix same-domain stretch", `Quick, test_matrix_same_domain_stretch_is_one);
    ("matrix summary loss/unreachable/asymmetric", `Quick, test_matrix_summary_loss_unreachable_asymmetric);
    ("matrix merge matches direct", `Quick, test_matrix_merge_matches_direct);
    ("matrix worst ordering", `Quick, test_matrix_worst_ordering);
    ("matrix jsonl roundtrip", `Quick, test_matrix_jsonl_roundtrip);
    ("fleet complete at loss zero", `Quick, test_beacon_fleet_complete_at_loss_zero);
    ("fleet accounts lost probes", `Quick, test_beacon_fleet_accounts_lost_probes);
    ("campaign loss zero complete", `Quick, test_campaign_loss_zero_complete);
    ("campaign jobs invariant", `Quick, test_campaign_jobs_invariant);
    ("campaign seed determinism", `Quick, test_campaign_seed_determinism);
    ("campaign churn loses probes", `Quick, test_campaign_churn_loses_probes);
    ("campaign rejects bad params", `Quick, test_campaign_rejects_bad_params);
    ("campaign telemetry series", `Quick, test_campaign_telemetry_series);
  ]
