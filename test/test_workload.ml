(* Tests for the workload generators and the library-level scenarios. *)

let check = Alcotest.check

(* --- Demand ---------------------------------------------------------- *)

let test_demand_schedule_ordering () =
  let rng = Rng.create 3 in
  let events = Demand.schedule Demand.paper_profile ~rng ~horizon:(Time.days 100.0) in
  check Alcotest.bool "non-empty" true (events <> []);
  let rec ordered = function
    | a :: (b :: _ as rest) -> a.Demand.at <= b.Demand.at && ordered rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "time-ordered" true (ordered events);
  List.iter
    (fun (e : Demand.event) ->
      check Alcotest.bool "within horizon" true (e.Demand.at <= Time.days 100.0);
      check (Alcotest.float 1e-6) "lifetime is 30 days" (Time.days 30.0)
        (e.Demand.expires -. e.Demand.at))
    events

let test_demand_rate_matches_profile () =
  let rng = Rng.create 7 in
  let horizon = Time.days 400.0 in
  let events = Demand.schedule Demand.paper_profile ~rng ~horizon in
  (* Mean gap is 48h -> about 200 requests over 400 days. *)
  let n = List.length events in
  check Alcotest.bool (Printf.sprintf "request count plausible (%d)" n) true (n > 160 && n < 240)

let test_demand_expected_steady_blocks () =
  check (Alcotest.float 1e-6) "paper profile: 15 blocks" 15.0
    (Demand.expected_steady_blocks Demand.paper_profile);
  check Alcotest.bool "bursty profile much higher" true
    (Demand.expected_steady_blocks Demand.bursty_profile > 100.0)

let test_demand_drive_on_engine () =
  let engine = Engine.create () in
  let rng = Rng.create 5 in
  let fired = ref 0 in
  Demand.drive Demand.paper_profile ~rng ~engine ~horizon:(Time.days 30.0)
    ~on_request:(fun ~expires ->
      incr fired;
      check Alcotest.bool "expiry in the future" true (expires > Engine.now engine));
  Engine.run ~until:(Time.days 31.0) engine;
  check Alcotest.bool "requests fired" true (!fired > 5)

(* --- Membership ------------------------------------------------------- *)

let test_membership_beacon_plan () =
  (* The dbeacon deployment shape is index-deterministic: per_domain
     hosts per domain plus host 0 of every domain on the session. *)
  let topo = Gen.figure3 () in
  let n = Topo.domain_count topo in
  let plan = Membership.beacon_plan topo ~per_domain:3 in
  check Alcotest.int "one fleet per domain" n (List.length plan.Membership.local_fleets);
  check Alcotest.int "one session beacon per domain" n
    (List.length plan.Membership.session_beacons);
  List.iter
    (fun (d, fleet) ->
      check Alcotest.int "fleet size" 3 (List.length fleet);
      List.iteri
        (fun i host ->
          check Alcotest.int "fleet host domain" d host.Host_ref.host_domain;
          check Alcotest.int "fleet host index" i host.Host_ref.host_index)
        fleet)
    plan.Membership.local_fleets;
  List.iter
    (fun host -> check Alcotest.int "session beacon is host 0" 0 host.Host_ref.host_index)
    plan.Membership.session_beacons;
  (* Determinism: two plans are structurally identical. *)
  check Alcotest.bool "deterministic" true
    (plan = Membership.beacon_plan topo ~per_domain:3)

let test_membership_uniform () =
  let rng = Rng.create 11 in
  let topo = Gen.star ~n:30 in
  let members = Membership.uniform ~rng topo ~size:10 ~exclude:[ 0 ] in
  check Alcotest.int "ten members" 10 (List.length members);
  check Alcotest.bool "excluded respected" false (List.mem 0 members);
  check Alcotest.int "distinct" 10 (List.length (List.sort_uniq compare members));
  Alcotest.check_raises "too many requested"
    (Invalid_argument "Membership.uniform: not enough domains") (fun () ->
      ignore (Membership.uniform ~rng topo ~size:30 ~exclude:[ 0 ]))

let test_membership_clustered_is_concentrated () =
  let rng = Rng.create 13 in
  let topo = Gen.transit_stub ~rng ~backbones:3 ~regionals_per_backbone:4 ~stubs_per_regional:5 in
  let members = Membership.clustered ~rng topo ~size:20 ~clusters:2 ~exclude:[] in
  check Alcotest.int "twenty members" 20 (List.length members);
  check Alcotest.int "distinct" 20 (List.length (List.sort_uniq compare members));
  (* Concentration: the average pairwise distance of a clustered sample
     should not exceed that of a uniform sample (averaged over seeds). *)
  let avg_pairwise sample =
    let s = Stats.create () in
    List.iter
      (fun a ->
        let paths = Spf.bfs topo a in
        List.iter (fun b -> if a < b then Stats.add s (float_of_int (Spf.dist paths b))) sample)
      sample;
    Stats.mean s
  in
  let clustered_avg = Stats.create () and uniform_avg = Stats.create () in
  for seed = 1 to 5 do
    let rng = Rng.create seed in
    Stats.add clustered_avg
      (avg_pairwise (Membership.clustered ~rng topo ~size:15 ~clusters:2 ~exclude:[]));
    Stats.add uniform_avg (avg_pairwise (Membership.uniform ~rng topo ~size:15 ~exclude:[]))
  done;
  check Alcotest.bool "clustered samples are closer together" true
    (Stats.mean clustered_avg <= Stats.mean uniform_avg +. 0.2)

let test_membership_waves () =
  let rng = Rng.create 17 in
  let events =
    Membership.waves ~rng ~members:[ 1; 2; 3; 4 ] ~wave_count:2 ~wave_gap:(Time.hours 1.0)
      ~stay:(Time.hours 5.0)
  in
  check Alcotest.int "two events per member" 8 (List.length events);
  let rec ordered = function
    | a :: (b :: _ as rest) -> a.Membership.when_ <= b.Membership.when_ && ordered rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "time-ordered" true (ordered events);
  List.iter
    (fun m ->
      let mine = List.filter (fun e -> e.Membership.member = m) events in
      match mine with
      | [ j; l ] ->
          check Alcotest.bool "join before leave" true (j.Membership.joins && not l.Membership.joins);
          check (Alcotest.float 1e-6) "stay duration" (Time.hours 5.0)
            (l.Membership.when_ -. j.Membership.when_)
      | _ -> Alcotest.fail "expected join+leave")
    [ 1; 2; 3; 4 ]

(* --- Scenario ----------------------------------------------------------- *)

let test_scenario_figure1 () =
  let s = Scenario.figure1 () in
  let topo = Internet.topo s.Scenario.inet in
  let b = Option.get (Topo.find_by_name topo "B") in
  check Alcotest.int "rooted at B" b s.Scenario.root;
  check Alcotest.int "four members" 4 (List.length s.Scenario.members);
  let e = Option.get (Topo.find_by_name topo "E") in
  let deliveries = Scenario.send s ~source:(Host_ref.make e 0) in
  check Alcotest.int "all members received" 4 (List.length deliveries)

let test_scenario_figure3_branch () =
  let w = Scenario.figure3 () in
  check Alcotest.bool "branch shortens F's path from 3 to 2 hops" true
    (Scenario.figure3_branch_demo w ~before:[ 3 ] ~after:[ 2 ]);
  (* All five member domains appear in the deliveries of the second
     packet. *)
  let p = Bgmp_fabric.send w.Scenario.fabric ~source:(Host_ref.make 4 (* E *) 0)
      ~group:w.Scenario.walkthrough_group in
  Engine.run_until_idle w.Scenario.engine;
  check Alcotest.int "five member domains" 5
    (List.length (Scenario.deliveries_by_domain w ~payload:p))

let test_scenario_figure3_pim_sm () =
  (* With a non-strict-RPF MIGP everywhere, no branch forms and F stays
     at 3 hops on both packets. *)
  let w = Scenario.figure3 ~migp_style:(fun _ -> Migp.Pim_sm) () in
  check Alcotest.bool "no branch under PIM-SM" true
    (Scenario.figure3_branch_demo w ~before:[ 3 ] ~after:[ 3 ])

let test_group_churn_deterministic () =
  let gen shard =
    Membership.group_churn ~seed:424242 ~shard ~domains:500 ~groups:40 ~events:2000 ()
  in
  let a = gen 3 and b = gen 3 in
  Alcotest.(check int) "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i ev ->
      let ev' = b.(i) in
      Alcotest.(check bool) "same event" true
        (ev.Membership.seq = ev'.Membership.seq
        && ev.Membership.group = ev'.Membership.group
        && ev.Membership.node = ev'.Membership.node
        && ev.Membership.join = ev'.Membership.join
        && ev.Membership.join_ref = ev'.Membership.join_ref))
    a

let test_group_churn_shards_disjoint () =
  (* Shard s draws group ids only from its own block, so parallel
     trials mutate disjoint (group, router) state at any job count. *)
  let groups = 40 in
  List.iter
    (fun shard ->
      let evs =
        Membership.group_churn ~seed:7 ~shard ~domains:300 ~groups ~events:1500 ()
      in
      Array.iter
        (fun ev ->
          if ev.Membership.group < shard * groups || ev.Membership.group >= (shard + 1) * groups
          then
            Alcotest.failf "shard %d drew group %d outside its block" shard ev.Membership.group)
        evs)
    [ 0; 1; 2; 5 ];
  (* And different shards draw genuinely different streams. *)
  let a = Membership.group_churn ~seed:7 ~shard:0 ~domains:300 ~groups ~events:1500 () in
  let b = Membership.group_churn ~seed:7 ~shard:1 ~domains:300 ~groups ~events:1500 () in
  let same = ref true in
  Array.iteri
    (fun i ev ->
      if
        ev.Membership.node <> b.(i).Membership.node
        || ev.Membership.join <> b.(i).Membership.join
      then same := false)
    a;
  Alcotest.(check bool) "shards are independent streams" false !same

let test_group_churn_leaves_reference_live_joins () =
  let evs = Membership.group_churn ~seed:99 ~shard:2 ~domains:200 ~groups:25 ~events:3000 () in
  let live = Hashtbl.create 256 in
  Array.iter
    (fun ev ->
      if ev.Membership.join then begin
        Alcotest.(check int) "joins carry no back-reference" (-1) ev.Membership.join_ref;
        Hashtbl.replace live ev.Membership.seq ev
      end
      else begin
        match Hashtbl.find_opt live ev.Membership.join_ref with
        | None ->
            Alcotest.failf "leave %d references %d, which is not a live join" ev.Membership.seq
              ev.Membership.join_ref
        | Some j ->
            Alcotest.(check int) "leave cancels the join's group" j.Membership.group
              ev.Membership.group;
            Alcotest.(check int) "leave cancels the join's member" j.Membership.node
              ev.Membership.node;
            Hashtbl.remove live ev.Membership.join_ref
      end)
    evs;
  (* Some churn actually happened. *)
  let leaves = Array.fold_left (fun n ev -> if ev.Membership.join then n else n + 1) 0 evs in
  Alcotest.(check bool) "stream contains leaves" true (leaves > 0)

let suite =
  [
    ("demand schedule ordering", `Quick, test_demand_schedule_ordering);
    ("demand rate matches profile", `Quick, test_demand_rate_matches_profile);
    ("demand expected steady blocks", `Quick, test_demand_expected_steady_blocks);
    ("demand drive on engine", `Quick, test_demand_drive_on_engine);
    ("membership uniform", `Quick, test_membership_uniform);
    ("membership beacon plan", `Quick, test_membership_beacon_plan);
    ("membership clustered concentrated", `Quick, test_membership_clustered_is_concentrated);
    ("membership waves", `Quick, test_membership_waves);
    ("group churn deterministic", `Quick, test_group_churn_deterministic);
    ("group churn shards disjoint", `Quick, test_group_churn_shards_disjoint);
    ("group churn leaves reference live joins", `Quick, test_group_churn_leaves_reference_live_joins);
    ("scenario figure1", `Quick, test_scenario_figure1);
    ("scenario figure3 branch", `Quick, test_scenario_figure3_branch);
    ("scenario figure3 under pim-sm", `Quick, test_scenario_figure3_pim_sm);
  ]
