(* Tests for mcast_net: the link-transport substrate shared by MASC,
   BGP and BGMP — FIFO channels, unified up/down state, deterministic
   loss, and the engine's quiescence runner the stack settles with. *)

let check = Alcotest.check

let make ?config () =
  let engine = Engine.create () in
  let net = Net.create ~engine ?config () in
  (engine, net)

let test_channel_fifo_per_link () =
  let engine, net = make () in
  let got = ref [] in
  let ch =
    Net.channel net ~protocol:"t" ~src:0 ~dst:1 ~delay:1.0 ~recv:(fun m -> got := m :: !got)
  in
  for i = 1 to 5 do
    Net.send ch i
  done;
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.int) "delivered in send order" [ 1; 2; 3; 4; 5 ]
    (List.rev !got);
  check Alcotest.int "sent" 5 (Net.sent net ~protocol:"t");
  check Alcotest.int "delivered" 5 (Net.delivered net ~protocol:"t");
  check Alcotest.int "dropped" 0 (Net.dropped net ~protocol:"t")

let test_equal_time_tie_break_is_send_order () =
  (* Two channels with the same delay, interleaved sends at the same
     instant: deliveries fire in exactly the send sequence (the engine
     heap breaks equal-time ties by scheduling order), so multi-channel
     runs are deterministic. *)
  let engine, net = make () in
  let got = ref [] in
  let lane tag src dst =
    Net.channel net ~protocol:"t" ~src ~dst ~delay:2.0 ~recv:(fun m ->
        got := (tag, m) :: !got)
  in
  let ab = lane "ab" 0 1 and ba = lane "ba" 1 0 and ac = lane "ac" 0 2 in
  Net.send ab 1;
  Net.send ba 2;
  Net.send ac 3;
  Net.send ab 4;
  Engine.run_until_idle engine;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "equal-time deliveries follow send order"
    [ ("ab", 1); ("ba", 2); ("ac", 3); ("ab", 4) ]
    (List.rev !got)

let test_asymmetric_block () =
  let engine, net = make () in
  let got = ref [] in
  let mk src dst tag =
    Net.channel net ~protocol:"t" ~src ~dst ~delay:1.0 ~recv:(fun () -> got := tag :: !got)
  in
  let ab = mk 0 1 "a->b" and ba = mk 1 0 "b->a" in
  let notified = ref 0 in
  Net.on_link_change net (fun _ _ ~up:_ -> incr notified);
  Net.block net ~from_:0 ~to_:1;
  check Alcotest.bool "pair not fully up" false (Net.link_up net 0 1);
  check Alcotest.bool "blocked direction down" false (Net.direction_up net ~from_:0 ~to_:1);
  check Alcotest.bool "reverse direction still up" true (Net.direction_up net ~from_:1 ~to_:0);
  Net.send ab ();
  Net.send ba ();
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "only the open direction delivers" [ "b->a" ] !got;
  check Alcotest.int "block does not notify listeners" 0 !notified;
  Net.unblock net ~from_:0 ~to_:1;
  check Alcotest.bool "pair up again" true (Net.link_up net 0 1);
  Net.send ab ();
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "unblocked direction delivers" [ "a->b"; "b->a" ] !got;
  check Alcotest.int "still no notifications" 0 !notified

let loss_pattern ~seed =
  let engine, net =
    make ~config:{ Net.loss_rate = 0.3; loss_seed = seed; delay_override = None } ()
  in
  let got = ref [] in
  let ch =
    Net.channel net ~protocol:"t" ~src:0 ~dst:1 ~delay:1.0 ~recv:(fun m -> got := m :: !got)
  in
  for i = 1 to 200 do
    Net.send ch i
  done;
  Engine.run_until_idle engine;
  (List.rev !got, Net.dropped net ~protocol:"t")

let test_seeded_loss_is_reproducible () =
  let d1, n1 = loss_pattern ~seed:7 in
  let d2, n2 = loss_pattern ~seed:7 in
  check (Alcotest.list Alcotest.int) "same seed, same survivors" d1 d2;
  check Alcotest.int "same seed, same drop count" n1 n2;
  check Alcotest.bool "rate 0.3 actually drops some" true (n1 > 0);
  check Alcotest.int "every message accounted for" 200 (List.length d1 + n1);
  let d3, _ = loss_pattern ~seed:8 in
  check Alcotest.bool "different seed, different pattern" true (d1 <> d3)

let test_fail_link_drops_in_flight () =
  let engine, net = make () in
  let got = ref [] in
  let ch =
    Net.channel net ~protocol:"t" ~src:0 ~dst:1 ~delay:10.0 ~recv:(fun m -> got := m :: !got)
  in
  Net.send ch 1;
  ignore (Engine.schedule_at engine 5.0 (fun () -> Net.fail_link net 0 1));
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.int) "in-flight message lost" [] !got;
  check Alcotest.int "counted as dropped" 1 (Net.dropped net ~protocol:"t");
  (* Restoring before the would-be delivery time does not resurrect a
     message that was on the wire when the link died. *)
  Net.restore_link net 0 1;
  Net.send ch 2;
  ignore (Engine.schedule_at engine (Engine.now engine +. 1.0) (fun () ->
      Net.fail_link net 0 1;
      Net.restore_link net 0 1));
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.int) "fail+restore inside the flight still loses it" [] !got;
  Net.send ch 3;
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.int) "healthy link delivers again" [ 3 ] !got

let test_fail_restore_notify_on_transition_only () =
  let _engine, net = make () in
  let log = ref [] in
  Net.on_link_change net (fun a b ~up -> log := (a, b, up) :: !log);
  Net.fail_link net 2 3;
  Net.fail_link net 2 3;
  Net.fail_link net 3 2;
  Net.restore_link net 2 3;
  Net.restore_link net 2 3;
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.bool))
    "one notification per actual transition"
    [ (2, 3, false); (2, 3, true) ]
    (List.rev !log)

let test_delay_override () =
  let engine, net =
    make ~config:{ Net.loss_rate = 0.0; loss_seed = 0; delay_override = Some 0.25 } ()
  in
  let at = ref nan in
  let ch =
    Net.channel net ~protocol:"t" ~src:0 ~dst:1 ~delay:10.0 ~recv:(fun () ->
        at := Engine.now engine)
  in
  check (Alcotest.float 1e-9) "override wins over channel delay" 0.25 (Net.channel_delay ch);
  Net.send ch ();
  Engine.run_until_idle engine;
  check (Alcotest.float 1e-9) "delivered at overridden delay" 0.25 !at

let test_run_until_quiescent_outlives_housekeeping () =
  (* The Internet.settle shape: protocol activity stops but a periodic
     housekeeping timer keeps the queue non-empty forever.  The
     quiescence runner must stop once every remaining event lies beyond
     the activity watermark plus the grace period. *)
  let engine = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.periodic engine ~interval:1.0 (fun () -> incr fired));
  ignore (Engine.schedule_at engine 1.5 (fun () -> Engine.note_activity engine "proto"));
  ignore (Engine.schedule_at engine 3.5 (fun () -> Engine.note_activity engine "proto"));
  Engine.run_until_quiescent ~grace:4.0 engine;
  check Alcotest.bool "terminated despite the immortal periodic" true (Engine.pending engine > 0);
  check (Alcotest.float 1e-9) "stopped at watermark + grace" 7.0 (Engine.now engine);
  check Alcotest.int "housekeeping ran through the grace window" 7 !fired;
  check Alcotest.bool "non-positive grace rejected" true
    (try
       Engine.run_until_quiescent ~grace:0.0 engine;
       false
     with Invalid_argument _ -> true)

let test_on_drop_observer () =
  (* The drop observer must see both drop flavours: at the source (send
     on a downed direction) and in flight (link fails before delivery),
     each with the lost message. *)
  let engine, net = make () in
  let dropped = ref [] in
  let got = ref [] in
  let ch =
    Net.channel net ~protocol:"t" ~src:0 ~dst:1 ~delay:1.0 ~recv:(fun m -> got := m :: !got)
  in
  Net.set_on_drop ch (fun m -> dropped := m :: !dropped);
  Net.send ch 1;
  (* In flight: 1 is on the wire when the link dies. *)
  Net.fail_link net 0 1;
  (* At source: the direction is already down. *)
  Net.send ch 2;
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.int) "observer saw both losses" [ 1; 2 ]
    (List.sort compare !dropped);
  check (Alcotest.list Alcotest.int) "nothing delivered" [] !got;
  (* After restore the observer stays quiet for successful sends. *)
  Net.restore_link net 0 1;
  Net.send ch 3;
  Engine.run_until_idle engine;
  check Alcotest.int "no new drops" 2 (List.length !dropped);
  check (Alcotest.list Alcotest.int) "delivered after restore" [ 3 ] !got

let test_set_loss_rate_phases () =
  (* The two-phase campaign shape: build state at rate zero (the RNG is
     never drawn), then turn loss on for the measurement window.  The
     lossy phase must be reproducible run-to-run. *)
  let run () =
    let engine, net = make () in
    let got = ref 0 in
    let ch =
      Net.channel net ~protocol:"t" ~src:0 ~dst:1 ~delay:0.5 ~recv:(fun _ -> incr got)
    in
    for i = 1 to 50 do
      Net.send ch i
    done;
    Engine.run_until_idle engine;
    check Alcotest.int "lossless phase delivers everything" 50 !got;
    Net.set_loss_rate net 0.3;
    for i = 1 to 200 do
      Net.send ch i
    done;
    Engine.run_until_idle engine;
    (Net.dropped net ~protocol:"t", !got)
  in
  let d1, g1 = run () in
  let d2, g2 = run () in
  check Alcotest.bool "lossy phase drops some" true (d1 > 0);
  check Alcotest.bool "lossy phase delivers some" true (g1 > 50);
  check Alcotest.int "drops reproducible" d1 d2;
  check Alcotest.int "deliveries reproducible" g1 g2;
  (* Rates outside [0, 1) are rejected. *)
  let _, net = make () in
  List.iter
    (fun rate ->
      check Alcotest.bool
        (Printf.sprintf "rate %.1f rejected" rate)
        true
        (try
           Net.set_loss_rate net rate;
           false
         with Invalid_argument _ -> true))
    [ -0.1; 1.0; 1.5 ]

let suite =
  [
    ("channel fifo per link", `Quick, test_channel_fifo_per_link);
    ("on_drop observer", `Quick, test_on_drop_observer);
    ("set_loss_rate phases", `Quick, test_set_loss_rate_phases);
    ("equal-time tie-break is send order", `Quick, test_equal_time_tie_break_is_send_order);
    ("asymmetric block", `Quick, test_asymmetric_block);
    ("seeded loss is reproducible", `Quick, test_seeded_loss_is_reproducible);
    ("fail_link drops in-flight", `Quick, test_fail_link_drops_in_flight);
    ("fail/restore notify on transition only", `Quick, test_fail_restore_notify_on_transition_only);
    ("net-wide delay override", `Quick, test_delay_override);
    ("run_until_quiescent outlives housekeeping", `Quick, test_run_until_quiescent_outlives_housekeeping);
  ]
