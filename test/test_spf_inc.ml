(* Differential tests for the maintained SPF cache — randomized seeded
   fail/restore schedules, asserting after every delta that the
   in-place-repaired trees match the from-scratch masked kernels — plus
   the arena-backed state representations (Packed_map, Grib_arena,
   Tree_arena) against naive oracles. *)

let check = Alcotest.check
let int_array = Alcotest.array Alcotest.int

let topologies seed =
  let pl = Gen.power_law ~rng:(Rng.create seed) ~n:180 ~m:2 in
  let ts =
    Gen.transit_stub ~rng:(Rng.create seed) ~backbones:3 ~regionals_per_backbone:4
      ~stubs_per_regional:5
  in
  [ ("power_law", pl); ("transit_stub", ts) ]

(* Does the snapshot hold an alive edge between [u] and [v]? *)
let edge_alive csr alive u v =
  let found = ref false in
  for k = csr.Topo.row.(u) to csr.Topo.row.(u + 1) - 1 do
    if
      csr.Topo.nbr.(k) = v
      && (Array.length alive = 0 || alive.(csr.Topo.eid.(k)))
    then found := true
  done;
  !found

(* A repaired BFS tree need not pick the oracle's parents (ties break
   by repair order), so assert the strong property that holds: equal
   dist everywhere, and every parent edge is alive and one hop
   closer. *)
let assert_bfs name csr alive (oracle : Spf.paths) (p : Spf.paths) =
  check int_array (name ^ " dist") oracle.Spf.dist p.Spf.dist;
  for v = 0 to csr.Topo.csr_nodes - 1 do
    if v <> p.Spf.src && p.Spf.dist.(v) <> max_int then begin
      let u = p.Spf.via.(v) in
      if u < 0 || not (edge_alive csr alive u v) then
        Alcotest.failf "%s: via(%d)=%d is not an alive edge" name v u;
      if p.Spf.dist.(u) + 1 <> p.Spf.dist.(v) then
        Alcotest.failf "%s: via(%d)=%d is not one hop closer" name v u
    end
  done

let assert_dijkstra name csr alive (oracle : Spf.weighted) (w : Spf.weighted) =
  for v = 0 to csr.Topo.csr_nodes - 1 do
    let ov = oracle.Spf.wdist.(v) and wv = w.Spf.wdist.(v) in
    if ov = infinity || wv = infinity then begin
      if ov <> wv then Alcotest.failf "%s: wdist(%d) reachability differs" name v
    end
    else if abs_float (ov -. wv) > 1e-9 then
      Alcotest.failf "%s: wdist(%d) %.12g vs oracle %.12g" name v wv ov;
    if v <> w.Spf.wsrc && wv <> infinity then begin
      let u = w.Spf.wvia.(v) in
      if u < 0 || not (edge_alive csr alive u v) then
        Alcotest.failf "%s: wvia(%d)=%d is not an alive edge" name v u
    end
  done

(* Warm every kind of tree for [srcs], then walk a seeded
   fail/restore schedule; after every transition the maintained trees
   must match from-scratch kernels run under the cache's own mask. *)
let run_schedule ~name ~seed ~topo ~steps =
  let csr = Topo.freeze topo in
  let cache = Spf.make_cache_csr csr in
  let n = csr.Topo.csr_nodes in
  let nlinks = Array.length csr.Topo.linkv in
  let rng = Rng.create seed in
  let srcs = ref (List.init 3 (fun _ -> Rng.int rng n)) in
  let warm s =
    ignore (Spf.bfs_cached cache s);
    ignore (Spf.dijkstra_cached cache s);
    ignore (Spf.valley_free_cached cache s)
  in
  List.iter warm !srcs;
  let verify step =
    let alive = Spf.cache_alive_mask cache in
    List.iter
      (fun s ->
        let tag k = Printf.sprintf "%s/step%d/src%d %s" name step s k in
        assert_bfs (tag "bfs") csr alive (Spf.bfs_csr ~alive csr s) (Spf.bfs_cached cache s);
        assert_dijkstra (tag "dijkstra") csr alive
          (Spf.dijkstra_csr ~alive csr s)
          (Spf.dijkstra_cached cache s);
        check int_array (tag "valley-free")
          (Spf.valley_free_dist_csr ~alive csr s)
          (Spf.valley_free_cached cache s))
      !srcs
  in
  for step = 1 to steps do
    let l = csr.Topo.linkv.(Rng.int rng nlinks) in
    let up = not (Spf.cache_link_alive cache ~a:l.Topo.a ~b:l.Topo.b) in
    Spf.cache_note_link cache ~a:l.Topo.a ~b:l.Topo.b ~up;
    (* Halfway through, demand a tree the cache has never seen: cold
       builds under a partially failed mask must agree too. *)
    if step = steps / 2 then begin
      let s = Rng.int rng n in
      if not (List.mem s !srcs) then begin
        warm s;
        srcs := s :: !srcs
      end
    end;
    verify step
  done;
  let repairs, touched = Spf.cache_repair_stats cache in
  if repairs = 0 then Alcotest.fail (name ^ ": schedule repaired nothing");
  if touched = 0 then Alcotest.fail (name ^ ": repairs touched no labels")

let test_incremental_matches_scratch () =
  List.iter
    (fun seed ->
      List.iter
        (fun (tname, topo) ->
          run_schedule
            ~name:(Printf.sprintf "%s/%d" tname seed)
            ~seed:(seed * 13 + 5) ~topo ~steps:30)
        (topologies seed))
    [ 7; 42; 1998 ]

let test_note_link_noops () =
  let topo = Gen.power_law ~rng:(Rng.create 3) ~n:60 ~m:2 in
  let cache = Spf.make_cache topo in
  let base = Spf.bfs_cached cache 0 in
  let d0 = Array.copy base.Spf.dist in
  (* Unknown pair: not a link of the snapshot. *)
  Spf.cache_note_link cache ~a:0 ~b:59 ~up:false;
  Spf.cache_note_link cache ~a:0 ~b:0 ~up:false;
  (* Transition to the state the link is already in. *)
  let l = (Topo.freeze topo).Topo.linkv.(0) in
  Spf.cache_note_link cache ~a:l.Topo.a ~b:l.Topo.b ~up:true;
  check int_array "no-op deltas leave dist alone" d0 base.Spf.dist;
  let repairs, touched = Spf.cache_repair_stats cache in
  check Alcotest.int "no repairs recorded" 0 repairs;
  check Alcotest.int "no labels touched" 0 touched

let test_cache_adopt_appended_links () =
  let rng = Rng.create 11 in
  let topo = Gen.power_law ~rng ~n:120 ~m:2 in
  let csr0 = Topo.freeze topo in
  let cache = Spf.make_cache_csr csr0 in
  List.iter (fun s -> ignore (Spf.bfs_cached cache s)) [ 0; 17; 60 ];
  (* Fail one link first so adoption composes with a live mask. *)
  let l = csr0.Topo.linkv.(5) in
  Spf.cache_note_link cache ~a:l.Topo.a ~b:l.Topo.b ~up:false;
  (* Append shortcut links (skipping pairs already linked) and adopt
     the refrozen snapshot. *)
  let seen = Hashtbl.create 256 in
  let key a b = (min a b * 1024) + max a b in
  List.iter (fun l -> Hashtbl.replace seen (key l.Topo.a l.Topo.b) ()) (Topo.links topo);
  for _ = 1 to 6 do
    let a = Rng.int rng 120 and b = Rng.int rng 120 in
    if a <> b && not (Hashtbl.mem seen (key a b)) then begin
      Hashtbl.replace seen (key a b) ();
      Topo.add_link topo a b Topo.Peer
    end
  done;
  let csr1 = Topo.freeze topo in
  Spf.cache_adopt cache csr1;
  check Alcotest.bool "cache moved onto the new snapshot" true (Spf.cache_csr cache == csr1);
  check Alcotest.bool "failed link still down" false
    (Spf.cache_link_alive cache ~a:l.Topo.a ~b:l.Topo.b);
  let alive = Spf.cache_alive_mask cache in
  List.iter
    (fun s ->
      assert_bfs
        (Printf.sprintf "adopt src%d" s)
        csr1 alive (Spf.bfs_csr ~alive csr1 s) (Spf.bfs_cached cache s))
    [ 0; 17; 60 ]

let test_cache_adopt_incompatible_drops () =
  let topo = Gen.power_law ~rng:(Rng.create 19) ~n:80 ~m:2 in
  let cache = Spf.make_cache topo in
  ignore (Spf.bfs_cached cache 3);
  (* A different graph entirely: adoption must fall back to dropping
     every maintained tree, not mis-repair. *)
  let other = Gen.power_law ~rng:(Rng.create 20) ~n:80 ~m:3 in
  let csr = Topo.freeze other in
  Spf.cache_adopt cache csr;
  let p = Spf.bfs_cached cache 3 in
  check int_array "rebuilt over the new graph" (Spf.bfs_csr csr 3).Spf.dist p.Spf.dist

(* ---------------- arenas --------------------------------------------- *)

let test_packed_map_oracle () =
  let m = Packed_map.create ~initial:4 () in
  let oracle = Hashtbl.create 64 in
  let rng = Rng.create 2024 in
  for _ = 1 to 5000 do
    let k = Rng.int rng 700 in
    match Rng.int rng 3 with
    | 0 | 1 ->
        let v = Rng.int rng 1000 in
        Packed_map.set m k v;
        Hashtbl.replace oracle k v
    | _ ->
        Packed_map.remove m k;
        Hashtbl.remove oracle k
  done;
  check Alcotest.int "length" (Hashtbl.length oracle) (Packed_map.length m);
  Hashtbl.iter
    (fun k v -> check Alcotest.int (Printf.sprintf "find %d" k) v (Packed_map.find m k))
    oracle;
  for k = 0 to 699 do
    if not (Hashtbl.mem oracle k) then begin
      check Alcotest.int (Printf.sprintf "absent %d" k) (-1) (Packed_map.find m k);
      check Alcotest.bool "mem" false (Packed_map.mem m k)
    end
  done;
  Packed_map.clear m;
  check Alcotest.int "clear" 0 (Packed_map.length m);
  check Alcotest.int "find after clear" (-1) (Packed_map.find m 17)

let test_packed_map_rejects_negative () =
  let m = Packed_map.create () in
  Alcotest.check_raises "negative key"
    (Invalid_argument "Packed_map.set: negative key or value") (fun () ->
      Packed_map.set m (-1) 0);
  Alcotest.check_raises "negative value"
    (Invalid_argument "Packed_map.set: negative key or value") (fun () ->
      Packed_map.set m 0 (-1))

let test_grib_arena () =
  let g = Grib_arena.create ~initial:4 ~domains:10 () in
  check Alcotest.int "empty" Grib_arena.no_entry (Grib_arena.find g ~group:0 ~node:0);
  Grib_arena.set g ~group:0 ~node:3 7;
  Grib_arena.set g ~group:5 ~node:3 2;
  Grib_arena.set g ~group:5 ~node:9 (-1);
  check Alcotest.int "hop" 7 (Grib_arena.find g ~group:0 ~node:3);
  check Alcotest.int "root entry" (-1) (Grib_arena.find g ~group:5 ~node:9);
  check Alcotest.int "entries" 3 (Grib_arena.entries g);
  check Alcotest.int "node 3 holds two" 2 (Grib_arena.node_entries g 3);
  Grib_arena.set g ~group:0 ~node:3 8;
  check Alcotest.int "overwrite keeps count" 2 (Grib_arena.node_entries g 3);
  check Alcotest.int "overwrite value" 8 (Grib_arena.find g ~group:0 ~node:3);
  Grib_arena.remove g ~group:0 ~node:3;
  check Alcotest.int "removed" Grib_arena.no_entry (Grib_arena.find g ~group:0 ~node:3);
  check Alcotest.int "count decremented" 1 (Grib_arena.node_entries g 3);
  check Alcotest.bool "storage is flat words" true (Grib_arena.storage_words g > 0)

let test_tree_arena_refcounts () =
  let t = Tree_arena.create ~domains:6 () in
  let h1 = Tree_arena.join t ~group:4 ~path:[| 0; 1; 2 |] in
  let h2 = Tree_arena.join t ~group:4 ~path:[| 0; 1; 3 |] in
  check Alcotest.int "shared prefix refcount" 2 (Tree_arena.refs t ~group:4 ~node:1);
  check Alcotest.int "leaf refcount" 1 (Tree_arena.refs t ~group:4 ~node:3);
  check Alcotest.int "entries are distinct (group,node)" 4 (Tree_arena.entries t);
  check Alcotest.int "router 1 holds one group" 1 (Tree_arena.node_entries t 1);
  Tree_arena.leave t ~group:4 h1;
  check Alcotest.int "prefix survives the other member" 1 (Tree_arena.refs t ~group:4 ~node:1);
  check Alcotest.int "branch torn down" 0 (Tree_arena.refs t ~group:4 ~node:2);
  check Alcotest.int "entries after leave" 3 (Tree_arena.entries t);
  Alcotest.check_raises "handle spent"
    (Invalid_argument "Tree_arena.leave: handle spent or group mismatch") (fun () ->
      Tree_arena.leave t ~group:4 h1);
  Alcotest.check_raises "group mismatch"
    (Invalid_argument "Tree_arena.leave: handle spent or group mismatch") (fun () ->
      Tree_arena.leave t ~group:5 h2);
  Tree_arena.leave t ~group:4 h2;
  check Alcotest.int "empty again" 0 (Tree_arena.entries t);
  check Alcotest.int "router count drained" 0 (Tree_arena.node_entries t 1)

let test_csr_rebuild_counter () =
  let c = Metrics.counter "topo.csr_rebuilds" in
  let topo = Gen.line ~n:6 in
  let before = Metrics.count c in
  ignore (Topo.freeze topo);
  ignore (Topo.freeze topo);
  check Alcotest.int "memoized freeze rebuilds once" (before + 1) (Metrics.count c);
  Topo.add_link topo 0 5 Topo.Peer;
  ignore (Topo.freeze topo);
  check Alcotest.int "mutation forces one more rebuild" (before + 2) (Metrics.count c)

let suite =
  [
    ("incremental matches from-scratch", `Quick, test_incremental_matches_scratch);
    ("note_link no-ops", `Quick, test_note_link_noops);
    ("cache adopts appended links", `Quick, test_cache_adopt_appended_links);
    ("cache adopt incompatible drops", `Quick, test_cache_adopt_incompatible_drops);
    ("packed map vs hashtbl oracle", `Quick, test_packed_map_oracle);
    ("packed map rejects negatives", `Quick, test_packed_map_rejects_negative);
    ("grib arena", `Quick, test_grib_arena);
    ("tree arena refcounts", `Quick, test_tree_arena_refcounts);
    ("csr rebuild counter", `Quick, test_csr_rebuild_counter);
  ]
