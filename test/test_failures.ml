(* Failure-injection tests: link failures across BGP and BGMP, and
   recovery after restoration. *)

let check = Alcotest.check

let p = Prefix.of_string

(* A diamond with two disjoint paths root->member:
       top
      /    \
    left  right
      \    /
      bottom *)
let diamond () =
  let topo = Topo.create () in
  let top = Topo.add_domain topo ~name:"top" ~kind:Domain.Backbone in
  let left = Topo.add_domain topo ~name:"left" ~kind:Domain.Regional in
  let right = Topo.add_domain topo ~name:"right" ~kind:Domain.Regional in
  let bottom = Topo.add_domain topo ~name:"bottom" ~kind:Domain.Stub in
  Topo.add_link topo top left Topo.Provider_customer;
  Topo.add_link topo top right Topo.Provider_customer;
  Topo.add_link topo left bottom Topo.Provider_customer;
  Topo.add_link topo right bottom Topo.Provider_customer;
  (topo, top, left, right, bottom)

let test_bgp_reroutes_around_failed_link () =
  let topo, top, left, right, bottom = diamond () in
  let engine = Engine.create () in
  let net = Bgp_network.create ~engine ~topo () in
  Bgp_network.originate net top (p "224.0.0.0/16");
  Bgp_network.converge net;
  let g = Ipv4.of_string "224.0.0.1" in
  check (Alcotest.option Alcotest.int) "initially via left (lower id tie-break)" (Some left)
    (Speaker.next_hop_to_root (Bgp_network.speaker net bottom) g);
  Bgp_network.fail_link net top left;
  Bgp_network.converge net;
  check (Alcotest.option Alcotest.int) "fails over via right" (Some right)
    (Speaker.next_hop_to_root (Bgp_network.speaker net bottom) g);
  (* left itself now reaches the root through bottom?  No: valley-free
     export means bottom (a customer) does not give left transit; left
     reaches the root via nothing... left learned the route from top
     only, so it loses it entirely. *)
  check Alcotest.bool "left lost the route (no valley transit)" true
    (Speaker.lookup (Bgp_network.speaker net left) g = None);
  Bgp_network.restore_link net top left;
  Bgp_network.converge net;
  check (Alcotest.option Alcotest.int) "recovers to left after restore" (Some left)
    (Speaker.next_hop_to_root (Bgp_network.speaker net bottom) g);
  check Alcotest.bool "left relearns the route" true
    (Speaker.lookup (Bgp_network.speaker net left) g <> None)

let test_bgp_fail_unknown_link_rejected () =
  let topo, top, _, _, bottom = diamond () in
  let engine = Engine.create () in
  let net = Bgp_network.create ~engine ~topo () in
  Alcotest.check_raises "no such link" (Invalid_argument "Bgp_network.fail_link: no such link")
    (fun () -> Bgp_network.fail_link net top bottom)

let integrated_diamond () =
  let topo, top, left, right, bottom = diamond () in
  let inet = Internet.create ~config:Internet.quick_config topo in
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);
  let rec get tries =
    match Internet.request_address inet bottom with
    | Some a -> a
    | None ->
        if tries > 30 then Alcotest.fail "allocation did not settle"
        else begin
          Internet.run_for inet (Time.hours 1.0);
          get (tries + 1)
        end
  in
  let alloc = get 0 in
  (inet, top, left, right, bottom, alloc.Maas.address)

let test_integrated_failover_and_recovery () =
  let inet, top, left, _right, bottom, group = integrated_diamond () in
  (* A member at the top joins the group rooted at bottom. *)
  Internet.join inet ~host:(Host_ref.make top 0) ~group;
  Internet.run_for inet (Time.minutes 30.0);
  let send_and_count () =
    let p = Internet.send inet ~source:(Host_ref.make bottom 1) ~group in
    Internet.run_for inet (Time.minutes 10.0);
    List.length (Internet.deliveries inet ~payload:p)
  in
  check Alcotest.int "delivery before failure" 1 (send_and_count ());
  (* Kill the link the tree uses. *)
  Internet.fail_link inet left bottom;
  Internet.run_for inet (Time.minutes 30.0);
  check Alcotest.int "delivery after failover" 1 (send_and_count ());
  (* And after restoration. *)
  Internet.restore_link inet left bottom;
  Internet.run_for inet (Time.minutes 30.0);
  check Alcotest.int "delivery after restore" 1 (send_and_count ());
  check Alcotest.int "never duplicated" 0
    (Bgmp_fabric.duplicate_deliveries (Internet.fabric inet))

let test_integrated_partition_blocks_then_heals () =
  (* Killing BOTH paths partitions the member from the root: no
     delivery; healing one path restores service. *)
  let inet, top, left, right, bottom, group = integrated_diamond () in
  Internet.join inet ~host:(Host_ref.make top 0) ~group;
  Internet.run_for inet (Time.minutes 30.0);
  Internet.fail_link inet left bottom;
  Internet.fail_link inet right bottom;
  Internet.run_for inet (Time.minutes 30.0);
  let p1 = Internet.send inet ~source:(Host_ref.make bottom 1) ~group in
  Internet.run_for inet (Time.minutes 10.0);
  check Alcotest.int "partitioned: nothing delivered" 0
    (List.length (Internet.deliveries inet ~payload:p1));
  Internet.restore_link inet right bottom;
  Internet.run_for inet (Time.minutes 30.0);
  let p2 = Internet.send inet ~source:(Host_ref.make bottom 1) ~group in
  Internet.run_for inet (Time.minutes 10.0);
  check Alcotest.int "healed: delivered again" 1
    (List.length (Internet.deliveries inet ~payload:p2))

let test_fabric_loses_inflight_messages () =
  let topo, top, left, _right, _bottom = diamond () in
  let engine = Engine.create () in
  let paths = Spf.bfs topo top in
  let route_to_root d _ =
    if d = top then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward topo paths d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  let fabric = Bgmp_fabric.create ~engine ~topo ~route_to_root () in
  let g = Ipv4.of_string "224.9.0.1" in
  (* Join from left, then immediately fail the link before the engine
     runs: the in-flight join must be lost and no tree forms at top. *)
  Bgmp_fabric.host_join fabric ~host:(Host_ref.make left 0) ~group:g;
  Bgmp_fabric.fail_link fabric top left;
  Engine.run_until_idle engine;
  check Alcotest.bool "top never heard the join" false
    (List.mem top (Bgmp_fabric.tree_domains fabric ~group:g))

let suite =
  [
    ("bgp reroutes around failed link", `Quick, test_bgp_reroutes_around_failed_link);
    ("bgp fail unknown link rejected", `Quick, test_bgp_fail_unknown_link_rejected);
    ("integrated failover and recovery", `Quick, test_integrated_failover_and_recovery);
    ("integrated partition blocks then heals", `Quick, test_integrated_partition_blocks_then_heals);
    ("fabric loses in-flight messages", `Quick, test_fabric_loses_inflight_messages);
  ]
