(* Run artifacts: the last suite dumps the default metrics registry and
   a walkthrough trace next to the Alcotest logs, so CI can upload them
   when any earlier suite failed (Alcotest runs every suite before it
   reports, so these files exist even on failing runs). *)

let trace_file = "masc-bgmp-test-trace.jsonl"

let metrics_file = "masc-bgmp-test-metrics.json"

let test_write_artifacts () =
  let w = Scenario.figure3 () in
  let oc = open_out trace_file in
  List.iter
    (fun e ->
      output_string oc (Trace.entry_to_json e);
      output_char oc '\n')
    (Trace.entries w.Scenario.walkthrough_trace);
  close_out oc;
  let oc = open_out metrics_file in
  output_string oc (Metrics.to_json (Metrics.snapshot Metrics.default));
  close_out oc;
  (* The trace artifact must round-trip: it is meant to be fed straight
     back into the [trace] subcommand. *)
  let entries = Trace.load_jsonl trace_file in
  Alcotest.(check bool) "trace artifact is non-empty and parseable" true (entries <> []);
  Alcotest.(check bool) "join chains present in the artifact" true
    (List.exists (fun e -> e.Trace.trace_id <> None) entries);
  Alcotest.(check bool) "metrics artifact written" true (Sys.file_exists metrics_file)

let suite = [ ("write run artifacts", `Quick, test_write_artifacts) ]
