(* Tests for mcast_sim: the event engine, simulated time, tracing. *)

let check = Alcotest.check

let test_time_units () =
  check (Alcotest.float 1e-9) "minutes" 120.0 (Time.minutes 2.0);
  check (Alcotest.float 1e-9) "hours" 7200.0 (Time.hours 2.0);
  check (Alcotest.float 1e-9) "days" 172800.0 (Time.days 2.0);
  check (Alcotest.float 1e-9) "to_hours" 2.0 (Time.to_hours (Time.hours 2.0));
  check (Alcotest.float 1e-9) "to_days" 0.5 (Time.to_days (Time.hours 12.0))

let test_engine_fires_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule_at e 3.0 (note "c"));
  ignore (Engine.schedule_at e 1.0 (note "a"));
  ignore (Engine.schedule_at e 2.0 (note "b"));
  Engine.run_until_idle e;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule_at e 1.0 (fun () -> log := i :: !log))
  done;
  Engine.run_until_idle e;
  check (Alcotest.list Alcotest.int) "scheduling order preserved" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_schedule_after () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  ignore (Engine.schedule_after e 5.0 (fun () -> seen := Engine.now e));
  Engine.run_until_idle e;
  check (Alcotest.float 1e-9) "fired at now+delay" 5.0 !seen

let test_engine_rejects_past () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e 10.0 (fun () -> ()));
  Engine.run_until_idle e;
  check Alcotest.bool "raise on past schedule" true
    (try
       ignore (Engine.schedule_at e 5.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e 1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run_until_idle e;
  check Alcotest.bool "cancelled event does not fire" false !fired;
  (* double cancel is a no-op *)
  Engine.cancel h

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule_at e 1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule_after e 1.0 (fun () -> log := "inner" :: !log))));
  Engine.run_until_idle e;
  check (Alcotest.list Alcotest.string) "nested event fires" [ "outer"; "inner" ] (List.rev !log)

let test_engine_run_until_horizon () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule_at e 1.0 (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule_at e 10.0 (fun () -> fired := 10 :: !fired));
  Engine.run ~until:5.0 e;
  check (Alcotest.list Alcotest.int) "only events before horizon" [ 1 ] (List.rev !fired);
  check (Alcotest.float 1e-9) "clock advanced to horizon" 5.0 (Engine.now e);
  Engine.run ~until:20.0 e;
  check (Alcotest.list Alcotest.int) "later event fires on resume" [ 1; 10 ] (List.rev !fired)

let test_engine_periodic () =
  let e = Engine.create () in
  let count = ref 0 in
  let h = Engine.periodic e ~interval:1.0 (fun () -> incr count) in
  Engine.run ~until:5.5 e;
  check Alcotest.int "five firings by 5.5" 5 !count;
  Engine.cancel h;
  Engine.run ~until:10.0 e;
  check Alcotest.int "no firings after cancel" 5 !count

let test_engine_periodic_self_cancel () =
  let e = Engine.create () in
  let count = ref 0 in
  let handle = ref None in
  let h =
    Engine.periodic e ~interval:1.0 (fun () ->
        incr count;
        if !count = 3 then Engine.cancel (Option.get !handle))
  in
  handle := Some h;
  Engine.run ~until:10.0 e;
  check Alcotest.int "stops when cancelled from inside" 3 !count

let test_engine_step () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e 1.0 (fun () -> ()));
  ignore (Engine.schedule_at e 2.0 (fun () -> ()));
  check Alcotest.bool "step fires one" true (Engine.step e);
  check (Alcotest.float 1e-9) "clock at first" 1.0 (Engine.now e);
  check Alcotest.bool "second step" true (Engine.step e);
  check Alcotest.bool "empty queue" false (Engine.step e)

let test_engine_pending_counts_live_events () =
  let e = Engine.create () in
  check Alcotest.int "empty engine" 0 (Engine.pending e);
  let h1 = Engine.schedule_at e 1.0 (fun () -> ()) in
  ignore (Engine.schedule_at e 2.0 (fun () -> ()));
  ignore (Engine.schedule_at e 3.0 (fun () -> ()));
  check Alcotest.int "three scheduled" 3 (Engine.pending e);
  Engine.cancel h1;
  (* The cancelled event is still in the internal queue (drained lazily)
     but must not be counted. *)
  check Alcotest.int "cancel leaves immediately" 2 (Engine.pending e);
  Engine.cancel h1;
  check Alcotest.int "double cancel no-op" 2 (Engine.pending e);
  ignore (Engine.step e);
  check Alcotest.int "fired event leaves" 1 (Engine.pending e);
  Engine.run_until_idle e;
  check Alcotest.int "drained" 0 (Engine.pending e)

let test_engine_pending_periodic () =
  let e = Engine.create () in
  let h = Engine.periodic e ~interval:1.0 (fun () -> ()) in
  check Alcotest.int "one pending occurrence" 1 (Engine.pending e);
  Engine.run ~until:3.5 e;
  (* Each firing schedules the next occurrence. *)
  check Alcotest.int "still one pending occurrence" 1 (Engine.pending e);
  Engine.cancel h;
  check Alcotest.int "stop clears it" 0 (Engine.pending e);
  Engine.run_until_idle e;
  check Alcotest.int "stays empty" 0 (Engine.pending e)

let test_engine_pending_periodic_self_cancel () =
  (* A periodic closure cancelling its own handle runs [cancel] on the
     very event that is firing; the count must not be decremented twice. *)
  let e = Engine.create () in
  let count = ref 0 in
  let handle = ref None in
  let h =
    Engine.periodic e ~interval:1.0 (fun () ->
        incr count;
        if !count = 2 then Engine.cancel (Option.get !handle))
  in
  handle := Some h;
  Engine.run ~until:10.0 e;
  check Alcotest.int "fired twice" 2 !count;
  check Alcotest.int "no pending left" 0 (Engine.pending e)

let test_engine_watermarks () =
  let e = Engine.create () in
  check (Alcotest.option (Alcotest.float 1e-9)) "no activity yet" None (Engine.converged_at e);
  check Alcotest.int "no watermarks yet" 0 (List.length (Engine.watermarks e));
  ignore (Engine.schedule_at e 1.0 (fun () -> Engine.note_activity e "bgp"));
  ignore (Engine.schedule_at e 2.0 (fun () -> Engine.note_activity e "masc"));
  ignore (Engine.schedule_at e 3.0 (fun () -> Engine.note_activity e "bgp"));
  Engine.run_until_idle e;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "per-class watermarks, sorted by class"
    [ ("bgp", 3.0); ("masc", 2.0) ]
    (Engine.watermarks e);
  check (Alcotest.option (Alcotest.float 1e-9)) "converged at the last state change" (Some 3.0)
    (Engine.converged_at e)

let test_engine_watermarks_empty_run () =
  (* A run that never notes activity: no watermarks, no convergence
     time, and quiescence detection still terminates (quiet window
     anchors on the clock). *)
  let e = Engine.create () in
  Engine.run_until_idle e;
  check (Alcotest.option (Alcotest.float 1e-9)) "idle run: no convergence" None
    (Engine.converged_at e);
  check Alcotest.int "idle run: no watermarks" 0 (List.length (Engine.watermarks e));
  let e2 = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule_at e2 1.0 (fun () -> incr fired));
  Engine.run_until_quiescent ~grace:5.0 e2;
  check Alcotest.int "silent event fires inside the window" 1 !fired;
  check (Alcotest.option (Alcotest.float 1e-9)) "still no convergence" None
    (Engine.converged_at e2)

let test_engine_quiescence_grace_boundary () =
  (* Events past the quiet window never fire — activity they would
     have reported cannot resurrect the run. *)
  let e = Engine.create () in
  ignore (Engine.schedule_at e 1.0 (fun () -> Engine.note_activity e "x"));
  let late = ref false in
  ignore
    (Engine.schedule_at e 20.0 (fun () ->
         late := true;
         Engine.note_activity e "x"));
  Engine.run_until_quiescent ~grace:5.0 e;
  check Alcotest.bool "event beyond watermark+grace never fires" false !late;
  check Alcotest.int "it stays pending" 1 (Engine.pending e);
  check (Alcotest.option (Alcotest.float 1e-9)) "converged at the last fired activity" (Some 1.0)
    (Engine.converged_at e);
  (* A chain of state changes each within [grace] of the last keeps
     extending the run. *)
  let e2 = Engine.create () in
  List.iter
    (fun t -> ignore (Engine.schedule_at e2 t (fun () -> Engine.note_activity e2 "x")))
    [ 1.0; 4.0; 7.0; 10.0 ];
  Engine.run_until_quiescent ~grace:5.0 e2;
  check (Alcotest.option (Alcotest.float 1e-9)) "chained activity extends the run" (Some 10.0)
    (Engine.converged_at e2)

let test_engine_watermark_ordering () =
  (* The watermark list is sorted by class name, independent of the
     order classes first report, and converged_at is the max across
     classes whichever class produced it. *)
  let e = Engine.create () in
  ignore (Engine.schedule_at e 1.0 (fun () -> Engine.note_activity e "zeta"));
  ignore (Engine.schedule_at e 2.0 (fun () -> Engine.note_activity e "alpha"));
  ignore (Engine.schedule_at e 3.0 (fun () -> Engine.note_activity e "mid"));
  Engine.run_until_idle e;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "sorted by class, not by first report"
    [ ("alpha", 2.0); ("mid", 3.0); ("zeta", 1.0) ]
    (Engine.watermarks e);
  check (Alcotest.option (Alcotest.float 1e-9)) "max watermark wins" (Some 3.0)
    (Engine.converged_at e)

let test_engine_monitor () =
  let e = Engine.create () in
  check Alcotest.bool "non-positive cadence rejected" true
    (try
       Engine.set_monitor e ~cadence:0.0 (fun ~quiescent:_ -> ());
       false
     with Invalid_argument _ -> true);
  let ticks = ref 0 and quiesces = ref 0 in
  Engine.set_monitor e ~cadence:1.0 (fun ~quiescent ->
      if quiescent then incr quiesces else incr ticks);
  (* Five events 0.5 apart with cadence 1.0: the hook fires after the
     events that cross 1.0 and 2.0, then once with [~quiescent:true]
     when the queue drains. *)
  for i = 1 to 5 do
    ignore (Engine.schedule_at e (0.5 *. float_of_int i) (fun () -> ()))
  done;
  Engine.run_until_idle e;
  check Alcotest.int "cadence-limited ticks" 2 !ticks;
  check Alcotest.int "quiescent fire on drain" 1 !quiesces;
  Engine.clear_monitor e;
  ignore (Engine.schedule_at e 10.0 (fun () -> ()));
  Engine.run_until_idle e;
  check Alcotest.int "cleared monitor stays silent" 2 !ticks;
  check Alcotest.int "no further quiescent fires" 1 !quiesces

let test_trace_report_chains_and_latencies () =
  let entry time tag span parent =
    {
      Trace.time;
      actor = "a";
      tag;
      detail = tag;
      trace_id = Some "claim:1:224.0.0.0/24";
      span = Some span;
      parent;
    }
  in
  let other = { (entry 5.0 "grib-update" 0 None) with Trace.trace_id = Some "group:224.0.0.1" } in
  let unchained = { (entry 6.0 "noise" 0 None) with Trace.trace_id = None; span = None } in
  let entries =
    [ entry 1.0 "claim" 0 None; other; entry 4.0 "acquired" 1 (Some 0); unchained ]
  in
  check (Alcotest.list Alcotest.string) "chain ids in first-appearance order"
    [ "claim:1:224.0.0.0/24"; "group:224.0.0.1" ]
    (Trace_report.chain_ids entries);
  let chain = Trace_report.chain entries ~id:"claim:1:224.0.0.0/24" in
  check (Alcotest.list Alcotest.string) "chain selects and time-orders" [ "claim"; "acquired" ]
    (List.map (fun e -> e.Trace.tag) chain);
  check Alcotest.string "kind of id" "claim" (Trace_report.kind_of_id "claim:1:224.0.0.0/24");
  (match Trace_report.latencies entries with
  | [ c; g ] ->
      check Alcotest.string "claim kind first" "claim" c.Trace_report.kind;
      check Alcotest.int "one claim chain" 1 c.Trace_report.chains;
      check (Alcotest.float 1e-9) "end-to-end duration" 3.0 c.Trace_report.max_s;
      check Alcotest.string "group kind second" "group" g.Trace_report.kind;
      check (Alcotest.float 1e-9) "single-entry chain has zero latency" 0.0 g.Trace_report.max_s
  | l -> Alcotest.fail (Printf.sprintf "expected two latency rows, got %d" (List.length l)));
  (* The renderer indents children under parents and keeps span refs. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Trace_report.pp_chain_for ppf entries ~id:"claim:1:224.0.0.0/24";
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let mem needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "header names the chain" true (mem "claim:1:224.0.0.0/24");
  check Alcotest.bool "root span rendered" true (mem "(#0)");
  check Alcotest.bool "child span ref rendered" true (mem "(#1<-0)")

let test_trace_basics () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~actor:"x" ~tag:"join" "detail-1";
  Trace.record tr ~time:2.0 ~actor:"y" ~tag:"claim" "detail-2";
  Trace.record tr ~time:3.0 ~actor:"x" ~tag:"join" "detail-3";
  check Alcotest.int "length" 3 (Trace.length tr);
  check Alcotest.int "find by tag" 2 (List.length (Trace.find tr ~tag:"join"));
  let entries = Trace.entries tr in
  check Alcotest.string "oldest first" "detail-1" (List.hd entries).Trace.detail

let test_trace_disabled_drops () =
  let tr = Trace.create () in
  Trace.set_enabled tr false;
  Trace.record tr ~time:1.0 ~actor:"x" ~tag:"t" "dropped";
  check Alcotest.int "nothing recorded" 0 (Trace.length tr);
  Trace.set_enabled tr true;
  Trace.recordf tr ~time:2.0 ~actor:"x" ~tag:"t" "kept %d" 42;
  check Alcotest.int "recorded again" 1 (Trace.length tr);
  check Alcotest.string "formatted" "kept 42" (List.hd (Trace.entries tr)).Trace.detail

let test_trace_disabled_skips_formatting () =
  (* The disabled path must consume the format arguments without running
     any user formatting code: a %t printer acts as the witness. *)
  let tr = Trace.create () in
  let formatted = ref false in
  let witness ppf =
    formatted := true;
    Format.pp_print_string ppf "boom"
  in
  Trace.set_enabled tr false;
  Trace.recordf tr ~time:1.0 ~actor:"x" ~tag:"t" "value %t" witness;
  check Alcotest.bool "formatter not invoked while disabled" false !formatted;
  check Alcotest.int "nothing recorded" 0 (Trace.length tr);
  Trace.set_enabled tr true;
  Trace.recordf tr ~time:2.0 ~actor:"x" ~tag:"t" "value %t" witness;
  check Alcotest.bool "formatter invoked when enabled" true !formatted;
  check Alcotest.string "formatted detail" "value boom"
    (List.hd (Trace.entries tr)).Trace.detail

let test_trace_null_sink_counts () =
  let tr = Trace.create ~sink:Trace.Null () in
  Trace.record tr ~time:1.0 ~actor:"a" ~tag:"t" "x";
  Trace.record tr ~time:2.0 ~actor:"a" ~tag:"t" "y";
  check Alcotest.int "records counted" 2 (Trace.length tr);
  check Alcotest.int "nothing retained" 0 (List.length (Trace.entries tr))

let test_trace_set_sink_switches () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~actor:"a" ~tag:"t" "kept-nowhere";
  Trace.set_sink tr (Trace.Ring 2);
  check Alcotest.bool "sink reports ring" true (Trace.sink tr = Trace.Ring 2);
  check Alcotest.int "old entries dropped" 0 (List.length (Trace.entries tr));
  Trace.record tr ~time:2.0 ~actor:"a" ~tag:"t" "in-ring";
  check Alcotest.int "ring records" 1 (List.length (Trace.entries tr))

let test_trace_clear () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~actor:"a" ~tag:"t" "x";
  Trace.clear tr;
  check Alcotest.int "cleared" 0 (Trace.length tr)

let prop_engine_any_schedule_order_fires_sorted =
  QCheck.Test.make ~name:"events fire in nondecreasing time order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (float_range 0.0 100.0))
    (fun times ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter (fun t -> ignore (Engine.schedule_at e t (fun () -> fired := t :: !fired))) times;
      Engine.run_until_idle e;
      let fired = List.rev !fired in
      fired = List.stable_sort compare times)

let suite =
  [
    ("time units", `Quick, test_time_units);
    ("engine time order", `Quick, test_engine_fires_in_time_order);
    ("engine fifo ties", `Quick, test_engine_fifo_at_same_time);
    ("engine schedule_after", `Quick, test_engine_schedule_after);
    ("engine rejects past", `Quick, test_engine_rejects_past);
    ("engine cancel", `Quick, test_engine_cancel);
    ("engine nested scheduling", `Quick, test_engine_nested_scheduling);
    ("engine run until horizon", `Quick, test_engine_run_until_horizon);
    ("engine periodic", `Quick, test_engine_periodic);
    ("engine periodic self-cancel", `Quick, test_engine_periodic_self_cancel);
    ("engine step", `Quick, test_engine_step);
    ("engine pending counts live events", `Quick, test_engine_pending_counts_live_events);
    ("engine pending with periodic", `Quick, test_engine_pending_periodic);
    ("engine pending periodic self-cancel", `Quick, test_engine_pending_periodic_self_cancel);
    ("engine watermarks and converged_at", `Quick, test_engine_watermarks);
    ("engine watermarks empty run", `Quick, test_engine_watermarks_empty_run);
    ("engine quiescence grace boundary", `Quick, test_engine_quiescence_grace_boundary);
    ("engine watermark ordering determinism", `Quick, test_engine_watermark_ordering);
    ("engine monitor hook", `Quick, test_engine_monitor);
    ("trace report chains and latencies", `Quick, test_trace_report_chains_and_latencies);
    ("trace basics", `Quick, test_trace_basics);
    ("trace disabled drops", `Quick, test_trace_disabled_drops);
    ("trace disabled skips formatting", `Quick, test_trace_disabled_skips_formatting);
    ("trace null sink counts", `Quick, test_trace_null_sink_counts);
    ("trace set_sink switches", `Quick, test_trace_set_sink_switches);
    ("trace clear", `Quick, test_trace_clear);
    QCheck_alcotest.to_alcotest prop_engine_any_schedule_order_fires_sorted;
  ]
