(* Tests for mcast_bgmp: the border-router state machine and the fabric
   (tree construction, bidirectional data flow, source-specific
   branches, teardown, MIGP interplay). *)

let check = Alcotest.check

let g = Ipv4.of_string "224.0.128.1"

(* --- Bgmp_router state machine (pure, no fabric) ----------------------- *)

let router_with_routes ~root_class ~source_class =
  let r = Bgmp_router.create ~id:100 ~domain:9 ~name:"R1" in
  Bgmp_router.set_classify_root r (fun _ -> root_class);
  Bgmp_router.set_classify_source r (fun _ -> source_class);
  r

let test_router_join_creates_entry_and_propagates () =
  let r = router_with_routes ~root_class:(Bgmp_router.External 55) ~source_class:Bgmp_router.Unroutable in
  let actions = Bgmp_router.handle_join r ~group:g ~from:Bgmp_router.Migp_target in
  (match actions with
  | [ Bgmp_router.To_peer (55, Bgmp_msg.Join { group = g'; _ }) ] ->
      check Alcotest.int "join for group" g g'
  | _ -> Alcotest.fail "expected a single upstream join");
  match Bgmp_router.star_entry r g with
  | Some e ->
      check Alcotest.bool "parent is external peer" true
        (e.Bgmp_router.parent = Some (Bgmp_router.Peer 55));
      check Alcotest.int "one child" 1 (List.length e.Bgmp_router.children)
  | None -> Alcotest.fail "entry missing"

let test_router_second_join_no_propagation () =
  let r = router_with_routes ~root_class:(Bgmp_router.External 55) ~source_class:Bgmp_router.Unroutable in
  ignore (Bgmp_router.handle_join r ~group:g ~from:Bgmp_router.Migp_target);
  let actions = Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 7) in
  check Alcotest.int "no upstream join" 0 (List.length actions);
  match Bgmp_router.star_entry r g with
  | Some e -> check Alcotest.int "two children" 2 (List.length e.Bgmp_router.children)
  | None -> Alcotest.fail "entry missing"

let test_router_root_domain_parent_is_migp () =
  let r = router_with_routes ~root_class:Bgmp_router.Root_here ~source_class:Bgmp_router.Unroutable in
  let actions = Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 3) in
  (match actions with
  | [ Bgmp_router.Migp_join _ ] -> ()
  | _ -> Alcotest.fail "expected an MIGP-side join");
  match Bgmp_router.star_entry r g with
  | Some e ->
      check Alcotest.bool "parent is the MIGP component" true
        (e.Bgmp_router.parent = Some Bgmp_router.Migp_target)
  | None -> Alcotest.fail "entry missing"

let test_router_prune_tears_down () =
  let r = router_with_routes ~root_class:(Bgmp_router.External 55) ~source_class:Bgmp_router.Unroutable in
  ignore (Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 3));
  ignore (Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 4));
  let a1 = Bgmp_router.handle_prune r ~group:g ~from:(Bgmp_router.Peer 3) in
  check Alcotest.int "no upstream prune while children remain" 0 (List.length a1);
  let a2 = Bgmp_router.handle_prune r ~group:g ~from:(Bgmp_router.Peer 4) in
  (match a2 with
  | [ Bgmp_router.To_peer (55, Bgmp_msg.Prune _) ] -> ()
  | _ -> Alcotest.fail "expected upstream prune");
  check Alcotest.bool "entry removed" true (Bgmp_router.star_entry r g = None)

let test_router_data_bidirectional () =
  let r = router_with_routes ~root_class:(Bgmp_router.External 55) ~source_class:Bgmp_router.Unroutable in
  ignore (Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 3));
  let src = Host_ref.make 1 0 in
  (* Data from the child flows to the parent (up) but not back. *)
  let up = Bgmp_router.handle_data r ~group:g ~source:src ~payload:1 ~hops:0 ~from:(Bgmp_router.Peer 3) in
  (match up with
  | [ Bgmp_router.To_peer (55, Bgmp_msg.Data _) ] -> ()
  | _ -> Alcotest.fail "expected upward forwarding");
  (* Data from the parent flows to the child. *)
  let down =
    Bgmp_router.handle_data r ~group:g ~source:src ~payload:2 ~hops:0 ~from:(Bgmp_router.Peer 55)
  in
  match down with
  | [ Bgmp_router.To_peer (3, Bgmp_msg.Data _) ] -> ()
  | _ -> Alcotest.fail "expected downward forwarding"

let test_router_off_tree_default_forwarding () =
  let r = router_with_routes ~root_class:(Bgmp_router.External 55) ~source_class:Bgmp_router.Unroutable in
  let src = Host_ref.make 1 0 in
  (* Off-tree router forwards toward the root (§5.2)... *)
  let acts = Bgmp_router.handle_data r ~group:g ~source:src ~payload:1 ~hops:0 ~from:Bgmp_router.Migp_target in
  (match acts with
  | [ Bgmp_router.To_peer (55, Bgmp_msg.Data _) ] -> ()
  | _ -> Alcotest.fail "expected default forwarding toward root");
  (* ...data arriving FROM the root direction at an off-tree router has
     no interested party here: dropped, never echoed. *)
  let acts2 =
    Bgmp_router.handle_data r ~group:g ~source:src ~payload:2 ~hops:0 ~from:(Bgmp_router.Peer 55)
  in
  check Alcotest.int "dropped, not echoed" 0 (List.length acts2);
  (* An off-tree router whose exit lies via another border router hands
     externally-arriving data to the MIGP to reach that exit (§5.2, the
     A1 case). *)
  let r_int =
    router_with_routes ~root_class:(Bgmp_router.Internal 77) ~source_class:Bgmp_router.Unroutable
  in
  (match Bgmp_router.handle_data r_int ~group:g ~source:src ~payload:3 ~hops:0 ~from:(Bgmp_router.Peer 7) with
  | [ Bgmp_router.Migp_data _ ] -> ()
  | _ -> Alcotest.fail "expected hand-off to the MIGP (internal next hop)");
  (* Unroutable groups are dropped. *)
  let r2 = router_with_routes ~root_class:Bgmp_router.Unroutable ~source_class:Bgmp_router.Unroutable in
  check Alcotest.int "unroutable dropped" 0
    (List.length
       (Bgmp_router.handle_data r2 ~group:g ~source:src ~payload:4 ~hops:0
          ~from:(Bgmp_router.Peer 1)))

let test_router_data_after_teardown_reverts_to_default () =
  (* Once the last prune removes the (star,G) entry, the router must be
     indistinguishable from one that never had state: data reverts to
     default forwarding toward the root, never to a former child. *)
  let r = router_with_routes ~root_class:(Bgmp_router.External 55) ~source_class:Bgmp_router.Unroutable in
  ignore (Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 3));
  ignore (Bgmp_router.handle_prune r ~group:g ~from:(Bgmp_router.Peer 3));
  check Alcotest.bool "entry gone" true (Bgmp_router.star_entry r g = None);
  let src = Host_ref.make 1 0 in
  (match Bgmp_router.handle_data r ~group:g ~source:src ~payload:1 ~hops:0 ~from:Bgmp_router.Migp_target with
  | [ Bgmp_router.To_peer (55, Bgmp_msg.Data _) ] -> ()
  | _ -> Alcotest.fail "expected default forwarding toward root, not to former child");
  (* Data arriving from the root side finds nobody interested. *)
  check Alcotest.int "nothing echoed to former child" 0
    (List.length
       (Bgmp_router.handle_data r ~group:g ~source:src ~payload:2 ~hops:0
          ~from:(Bgmp_router.Peer 55)))

let test_router_data_during_prune_in_flight () =
  (* The §5 race: a child pruned, but data addressed before the prune
     is still in flight.  After the child's prune the entry survives
     (another child remains), and late data from the pruned side must be
     treated like any non-tree arrival — forwarded to the remaining
     targets, never looped back to the pruner. *)
  let r = router_with_routes ~root_class:(Bgmp_router.External 55) ~source_class:Bgmp_router.Unroutable in
  ignore (Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 3));
  ignore (Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 4));
  ignore (Bgmp_router.handle_prune r ~group:g ~from:(Bgmp_router.Peer 3));
  let src = Host_ref.make 1 0 in
  let acts = Bgmp_router.handle_data r ~group:g ~source:src ~payload:1 ~hops:2 ~from:(Bgmp_router.Peer 3) in
  let to_ids =
    List.filter_map
      (function Bgmp_router.To_peer (p, Bgmp_msg.Data _) -> Some p | _ -> None)
      acts
  in
  check (Alcotest.list Alcotest.int) "late data goes up and to the live child only" [ 4; 55 ]
    (List.sort compare to_ids);
  check Alcotest.bool "never echoed to the pruned peer" false (List.mem 3 to_ids)

let test_router_sg_join_on_tree_copies_targets () =
  let r = router_with_routes ~root_class:(Bgmp_router.External 55) ~source_class:(Bgmp_router.External 66) in
  ignore (Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 3));
  let src = Host_ref.make 1 0 in
  let acts = Bgmp_router.handle_join_sg r ~source:src ~group:g ~from:(Bgmp_router.Peer 9) in
  check Alcotest.int "join not propagated past the shared tree" 0 (List.length acts);
  match Bgmp_router.sg_entry r src g with
  | Some v ->
      check Alcotest.bool "rpf points toward source" true
        (v.Bgmp_router.view_rpf = Some (Bgmp_router.Peer 66));
      check Alcotest.bool "branch child added" true
        (List.mem (Bgmp_router.Peer 9) v.Bgmp_router.view_targets)
  | None -> Alcotest.fail "sg entry missing"

let test_router_sg_join_off_tree_propagates () =
  let r = router_with_routes ~root_class:Bgmp_router.Unroutable ~source_class:(Bgmp_router.External 66) in
  let src = Host_ref.make 1 0 in
  let acts = Bgmp_router.handle_join_sg r ~source:src ~group:g ~from:(Bgmp_router.Peer 9) in
  match acts with
  | [ Bgmp_router.To_peer (66, Bgmp_msg.Join_sg _) ] -> ()
  | _ -> Alcotest.fail "expected propagation toward the source"

let test_router_sg_data_rpf_gated () =
  let r = router_with_routes ~root_class:Bgmp_router.Unroutable ~source_class:(Bgmp_router.External 66) in
  let src = Host_ref.make 1 0 in
  ignore (Bgmp_router.handle_join_sg r ~source:src ~group:g ~from:(Bgmp_router.Peer 9));
  (* Data from the RPF side flows down the branch... *)
  let ok = Bgmp_router.handle_data r ~group:g ~source:src ~payload:1 ~hops:0 ~from:(Bgmp_router.Peer 66) in
  (match ok with
  | [ Bgmp_router.To_peer (9, Bgmp_msg.Data _) ] -> ()
  | _ -> Alcotest.fail "expected forwarding down the branch");
  (* ...data from anywhere else is dropped (no loops through branches). *)
  let dropped =
    Bgmp_router.handle_data r ~group:g ~source:src ~payload:2 ~hops:0 ~from:(Bgmp_router.Peer 9)
  in
  check Alcotest.int "non-RPF data dropped" 0 (List.length dropped)

let test_router_entry_count () =
  let r = router_with_routes ~root_class:(Bgmp_router.External 55) ~source_class:(Bgmp_router.External 66) in
  ignore (Bgmp_router.handle_join r ~group:g ~from:(Bgmp_router.Peer 3));
  ignore (Bgmp_router.handle_join_sg r ~source:(Host_ref.make 1 0) ~group:g ~from:(Bgmp_router.Peer 9));
  check Alcotest.int "one star one sg" 2 (Bgmp_router.entry_count r)

(* --- Fabric ------------------------------------------------------------- *)

let make_fabric ?config ?migp_style ~root_name topo =
  let engine = Engine.create () in
  let root = Option.get (Topo.find_by_name topo root_name) in
  let paths = Spf.bfs topo root in
  let route_to_root d _g =
    if d = root then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward topo paths d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  let fabric = Bgmp_fabric.create ~engine ~topo ?config ?migp_style ~route_to_root () in
  (engine, fabric)

let dom topo name = Option.get (Topo.find_by_name topo name)

let join_all topo fabric names =
  List.iter (fun n -> Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom topo n) 0) ~group:g) names

let deliver_domains topo fabric payload =
  List.sort compare
    (List.map
       (fun (h, _) -> (Topo.domain topo h.Host_ref.host_domain).Domain.name)
       (Bgmp_fabric.deliveries fabric ~payload))

let test_fabric_members_receive_exactly_once () =
  let topo = Gen.figure3 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  join_all topo fabric [ "B"; "C"; "D"; "F"; "H" ];
  Engine.run_until_idle engine;
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 7) ~group:g in
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "all members, sorted" [ "B"; "C"; "D"; "F"; "H" ]
    (deliver_domains topo fabric p);
  check Alcotest.int "no duplicates" 0 (Bgmp_fabric.duplicate_deliveries fabric)

let test_fabric_sender_need_not_be_member () =
  (* The IP service model (§3): E has no members yet its host's packets
     reach the group. *)
  let topo = Gen.figure1 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  join_all topo fabric [ "C" ];
  Engine.run_until_idle engine;
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 0) ~group:g in
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "non-member sender reaches members" [ "C" ]
    (deliver_domains topo fabric p)

let test_fabric_member_sender_zero_hops_locally () =
  let topo = Gen.figure1 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  join_all topo fabric [ "B"; "F" ];
  Engine.run_until_idle engine;
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "B") 5) ~group:g in
  Engine.run_until_idle engine;
  let hops_of name =
    List.assoc (Host_ref.make (dom topo name) 0)
      (List.map (fun (h, hops) -> (h, hops)) (Bgmp_fabric.deliveries fabric ~payload:p))
  in
  check Alcotest.int "local member at zero hops" 0 (hops_of "B");
  check Alcotest.int "remote member over the tree" 1 (hops_of "F")

let test_fabric_leave_tears_down_tree () =
  let topo = Gen.figure1 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  let host_c = Host_ref.make (dom topo "C") 0 in
  Bgmp_fabric.host_join fabric ~host:host_c ~group:g;
  Engine.run_until_idle engine;
  check Alcotest.bool "tree built" true (List.length (Bgmp_fabric.tree_domains fabric ~group:g) >= 2);
  Bgmp_fabric.host_leave fabric ~host:host_c ~group:g;
  Engine.run_until_idle engine;
  (* Only the root-side state may remain; C must be off. *)
  check Alcotest.bool "C off the tree" false
    (List.mem (dom topo "C") (Bgmp_fabric.tree_domains fabric ~group:g));
  (* And data no longer reaches C. *)
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 0) ~group:g in
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "no deliveries" [] (deliver_domains topo fabric p)

let test_fabric_data_during_prune_window () =
  (* A leave and a send issued at the same instant: the prune and the
     data race through the fabric.  Whatever interleaving the engine
     resolves, the surviving member hears the packet exactly once, the
     fabric never duplicates, and a follow-up send after quiescence
     reaches only the survivor. *)
  let topo = Gen.figure1 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  join_all topo fabric [ "C"; "F" ];
  Engine.run_until_idle engine;
  Bgmp_fabric.host_leave fabric ~host:(Host_ref.make (dom topo "C") 0) ~group:g;
  (* No run_until_idle: the prune is still in flight when data departs. *)
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 0) ~group:g in
  Engine.run_until_idle engine;
  let got = deliver_domains topo fabric p in
  check Alcotest.bool "survivor F heard the racing packet" true (List.mem "F" got);
  check Alcotest.int "no duplicates in the race window" 0
    (Bgmp_fabric.duplicate_deliveries fabric);
  let p2 = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 0) ~group:g in
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "after quiescence only F remains" [ "F" ]
    (deliver_domains topo fabric p2)

let test_fabric_hop_counts_pinned () =
  (* Hop counts increment once per inter-domain link crossed — pin the
     exact per-member values for the §5.2 walkthrough (source E, root B,
     figure 3): the root B hears the packet after 2 link crossings, and
     each member's count grows by one per tree link beyond it. *)
  let topo = Gen.figure3 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  join_all topo fabric [ "B"; "C"; "D"; "F"; "H" ];
  Engine.run_until_idle engine;
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 7) ~group:g in
  Engine.run_until_idle engine;
  let got =
    List.sort compare
      (List.map
         (fun (h, hops) ->
           ((Topo.domain topo h.Host_ref.host_domain).Domain.name, hops))
         (Bgmp_fabric.deliveries fabric ~payload:p))
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "pinned per-member hop counts"
    [ ("B", 2); ("C", 3); ("D", 2); ("F", 3); ("H", 4) ]
    got

let test_fabric_tree_is_stable_across_sends () =
  let topo = Gen.figure3 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  join_all topo fabric [ "C"; "D"; "H" ];
  Engine.run_until_idle engine;
  let before = Bgmp_fabric.tree_domains fabric ~group:g in
  for _ = 1 to 5 do
    ignore (Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 0) ~group:g);
    Engine.run_until_idle engine
  done;
  check (Alcotest.list Alcotest.int) "tree unchanged by data" before
    (Bgmp_fabric.tree_domains fabric ~group:g)

let test_fabric_branch_shortens_path () =
  (* The §5.3 walkthrough: members in F, source in D; F's shortest path
     to D runs via A (F2), not via the shared tree through B (F1).  With
     branching enabled the second packet takes the shorter path. *)
  let topo = Gen.figure3 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  join_all topo fabric [ "B"; "C"; "D"; "F"; "H" ];
  Engine.run_until_idle engine;
  let src = Host_ref.make (dom topo "D") 3 in
  ignore (Bgmp_fabric.send fabric ~source:src ~group:g);
  Engine.run_until_idle engine;
  let p2 = Bgmp_fabric.send fabric ~source:src ~group:g in
  Engine.run_until_idle engine;
  let f_host = Host_ref.make (dom topo "F") 0 in
  let hops =
    List.assoc f_host (List.map (fun (h, hops) -> (h, hops)) (Bgmp_fabric.deliveries fabric ~payload:p2))
  in
  check Alcotest.int "branch delivers F over 2 hops (D-A-F)" 2 hops;
  check Alcotest.bool "encapsulations were counted" true
    (Migp.encapsulations (Bgmp_fabric.migp_of fabric (dom topo "F")) > 0)

let test_fabric_no_branch_without_branching () =
  let topo = Gen.figure3 () in
  let engine, fabric =
    make_fabric
      ~config:{ Bgmp_fabric.branching = false }
      ~root_name:"B" topo
  in
  join_all topo fabric [ "B"; "C"; "D"; "F"; "H" ];
  Engine.run_until_idle engine;
  let src = Host_ref.make (dom topo "D") 3 in
  ignore (Bgmp_fabric.send fabric ~source:src ~group:g);
  Engine.run_until_idle engine;
  let p2 = Bgmp_fabric.send fabric ~source:src ~group:g in
  Engine.run_until_idle engine;
  let f_host = Host_ref.make (dom topo "F") 0 in
  let hops =
    List.assoc f_host (List.map (fun (h, hops) -> (h, hops)) (Bgmp_fabric.deliveries fabric ~payload:p2))
  in
  check Alcotest.int "shared-tree path stays at 3 hops (D-A-B-F)" 3 hops

let test_fabric_flooding_counters_by_style () =
  let topo = Gen.figure1 () in
  (* All-DVMRP vs all-PIM-SM: the dense style must record flood
     deliveries; the sparse one must not. *)
  let run style =
    let engine, fabric = make_fabric ~migp_style:(fun _ -> style) ~root_name:"B" topo in
    join_all topo fabric [ "C"; "F" ];
    Engine.run_until_idle engine;
    ignore (Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 0) ~group:g);
    Engine.run_until_idle engine;
    List.fold_left
      (fun acc (d : Domain.t) -> acc + Migp.flood_deliveries (Bgmp_fabric.migp_of fabric d.Domain.id))
      0 (Topo.domains topo)
  in
  check Alcotest.bool "dvmrp floods internally" true (run Migp.Dvmrp > 0);
  check Alcotest.int "pim-sm delivers only along state" 0 (run Migp.Pim_sm)

let test_fabric_pim_sm_delivery_equivalent () =
  (* MIGP independence: delivery semantics identical across styles. *)
  let topo = Gen.figure3 () in
  let run style =
    let engine, fabric = make_fabric ~migp_style:(fun _ -> style) ~root_name:"B" topo in
    join_all topo fabric [ "B"; "C"; "D"; "F"; "H" ];
    Engine.run_until_idle engine;
    let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 7) ~group:g in
    Engine.run_until_idle engine;
    (deliver_domains topo fabric p, Bgmp_fabric.duplicate_deliveries fabric)
  in
  let dv, dup_dv = run Migp.Dvmrp in
  let sm, dup_sm = run Migp.Pim_sm in
  let cbt, dup_cbt = run Migp.Cbt in
  check (Alcotest.list Alcotest.string) "same receivers (dvmrp vs pim-sm)" dv sm;
  check (Alcotest.list Alcotest.string) "same receivers (dvmrp vs cbt)" dv cbt;
  check Alcotest.int "no dups dvmrp" 0 dup_dv;
  check Alcotest.int "no dups pim-sm" 0 dup_sm;
  check Alcotest.int "no dups cbt" 0 dup_cbt

let test_fabric_mixed_migp_styles () =
  (* Each domain running a different MIGP must still interoperate. *)
  let topo = Gen.figure3 () in
  let styles = [| Migp.Dvmrp; Migp.Pim_sm; Migp.Cbt; Migp.Pim_dm |] in
  let engine, fabric =
    make_fabric ~migp_style:(fun d -> styles.(d mod 4)) ~root_name:"B" topo
  in
  join_all topo fabric [ "B"; "C"; "D"; "F"; "H" ];
  Engine.run_until_idle engine;
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 7) ~group:g in
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "all members under mixed MIGPs" [ "B"; "C"; "D"; "F"; "H" ]
    (deliver_domains topo fabric p);
  check Alcotest.int "no duplicates" 0 (Bgmp_fabric.duplicate_deliveries fabric)

let test_fabric_leave_preserves_transit_and_branches () =
  (* Regression: C's members leave while H (C's customer) stays joined.
     C must keep providing transit for H, and the (S,G) suppression that
     C's dead branches installed must be lifted so H still hears every
     source. *)
  let topo = Gen.figure3 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  join_all topo fabric [ "C"; "D"; "F"; "H" ];
  Engine.run_until_idle engine;
  let src_d = Host_ref.make (dom topo "D") 1 in
  (* Two sends build branches (strict-RPF DVMRP everywhere). *)
  ignore (Bgmp_fabric.send fabric ~source:src_d ~group:g);
  Engine.run_until_idle engine;
  ignore (Bgmp_fabric.send fabric ~source:src_d ~group:g);
  Engine.run_until_idle engine;
  (* C and F leave. *)
  List.iter
    (fun n -> Bgmp_fabric.host_leave fabric ~host:(Host_ref.make (dom topo n) 0) ~group:g)
    [ "C"; "F" ];
  Engine.run_until_idle engine;
  (* Both an off-tree source (E) and the branch-affected source (D) must
     still reach the remaining members D and H, exactly once. *)
  let p1 = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 0) ~group:g in
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "E reaches D and H" [ "D"; "H" ]
    (deliver_domains topo fabric p1);
  let p2 = Bgmp_fabric.send fabric ~source:src_d ~group:g in
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "D reaches D and H" [ "D"; "H" ]
    (deliver_domains topo fabric p2)

let test_fabric_multiple_groups_independent () =
  let topo = Gen.figure1 () in
  let engine = Engine.create () in
  let b = dom topo "B" and c = dom topo "C" in
  let paths_b = Spf.bfs topo b and paths_c = Spf.bfs topo c in
  let g1 = Ipv4.of_string "224.1.0.1" and g2 = Ipv4.of_string "224.2.0.1" in
  (* g1 rooted at B, g2 rooted at C. *)
  let route_to_root d grp =
    let root, paths = if Ipv4.equal grp g1 then (b, paths_b) else (c, paths_c) in
    if d = root then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward topo paths d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  let fabric = Bgmp_fabric.create ~engine ~topo ~route_to_root () in
  Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom topo "F") 0) ~group:g1;
  Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom topo "G") 0) ~group:g2;
  Engine.run_until_idle engine;
  let p1 = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "D") 0) ~group:g1 in
  let p2 = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "D") 0) ~group:g2 in
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.string) "g1 reaches F only" [ "F" ] (deliver_domains topo fabric p1);
  check (Alcotest.list Alcotest.string) "g2 reaches G only" [ "G" ] (deliver_domains topo fabric p2)

let test_fabric_message_counters () =
  let topo = Gen.figure1 () in
  let engine, fabric = make_fabric ~root_name:"B" topo in
  join_all topo fabric [ "C" ];
  Engine.run_until_idle engine;
  check Alcotest.bool "control messages counted" true (Bgmp_fabric.control_messages fabric > 0);
  ignore (Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 0) ~group:g);
  Engine.run_until_idle engine;
  check Alcotest.bool "data messages counted" true (Bgmp_fabric.data_messages fabric > 0);
  check Alcotest.bool "entries counted" true (Bgmp_fabric.total_entries fabric > 0)

let test_fabric_router_naming () =
  let topo = Gen.figure1 () in
  let _, fabric = make_fabric ~root_name:"B" topo in
  let a_routers = Bgmp_fabric.routers_of fabric (dom topo "A") in
  check Alcotest.bool "A has several border routers" true (List.length a_routers >= 4);
  check Alcotest.string "first is A1" "A1" (Bgmp_router.name (List.hd a_routers));
  match Bgmp_fabric.router_toward fabric (dom topo "A") (dom topo "B") with
  | Some r -> check Alcotest.int "router_toward domain" (dom topo "A") (Bgmp_router.domain r)
  | None -> Alcotest.fail "expected a router on the A-B link"

let test_fabric_regression_seed_142759 () =
  (* Found by the qcheck property: members behind a backbone starved
     because (a) copied (S,G) entries were frozen snapshots of the
     (star,G) targets and (b) graft entries at on-tree routers were
     RPF-gated, blocking the tree copies flowing through them.  Pinned
     here so the exact counterexample stays covered. *)
  let seed = 142759 in
  let rng = Rng.create seed in
  let topo = Gen.transit_stub ~rng ~backbones:2 ~regionals_per_backbone:3 ~stubs_per_regional:2 in
  let n = Topo.domain_count topo in
  let engine = Engine.create () in
  let root = Rng.int rng n in
  let paths = Spf.bfs topo root in
  let route_to_root d _ =
    if d = root then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward topo paths d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  let styles = [| Migp.Dvmrp; Migp.Pim_sm; Migp.Cbt; Migp.Pim_dm |] in
  let fabric =
    Bgmp_fabric.create ~engine ~topo ~migp_style:(fun d -> styles.(d mod 4)) ~route_to_root ()
  in
  let member_count = 1 + Rng.int rng (n / 2) in
  let members = Array.to_list (Rng.sample_without_replacement rng member_count n) in
  List.iter (fun d -> Bgmp_fabric.host_join fabric ~host:(Host_ref.make d 0) ~group:g) members;
  Engine.run_until_idle engine;
  let source = Host_ref.make (Rng.int rng n) 99 in
  let want = List.sort compare members in
  List.iter
    (fun round ->
      let p = Bgmp_fabric.send fabric ~source ~group:g in
      Engine.run_until_idle engine;
      let got =
        List.sort compare
          (List.map (fun (h, _) -> h.Host_ref.host_domain) (Bgmp_fabric.deliveries fabric ~payload:p))
      in
      check (Alcotest.list Alcotest.int) (Printf.sprintf "round %d exact delivery" round) want got)
    [ 1; 2; 3 ];
  check Alcotest.int "no duplicates" 0 (Bgmp_fabric.duplicate_deliveries fabric)

let prop_fabric_delivers_to_exactly_members =
  (* On random transit-stub topologies with random membership, every
     member receives exactly once and non-members receive nothing. *)
  QCheck.Test.make ~name:"fabric delivers to exactly the members" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let topo =
        Gen.transit_stub ~rng ~backbones:2 ~regionals_per_backbone:3 ~stubs_per_regional:2
      in
      let n = Topo.domain_count topo in
      let engine = Engine.create () in
      let root = Rng.int rng n in
      let paths = Spf.bfs topo root in
      let route_to_root d _ =
        if d = root then Bgmp_fabric.Root_here
        else
          match Spf.next_hop_toward topo paths d with
          | Some nh -> Bgmp_fabric.Via nh
          | None -> Bgmp_fabric.Unroutable
      in
      let styles = [| Migp.Dvmrp; Migp.Pim_sm; Migp.Cbt; Migp.Pim_dm |] in
      let fabric =
        Bgmp_fabric.create ~engine ~topo ~migp_style:(fun d -> styles.(d mod 4)) ~route_to_root ()
      in
      let member_count = 1 + Rng.int rng (n / 2) in
      let members = Array.to_list (Rng.sample_without_replacement rng member_count n) in
      List.iter
        (fun d -> Bgmp_fabric.host_join fabric ~host:(Host_ref.make d 0) ~group:g)
        members;
      Engine.run_until_idle engine;
      let source = Host_ref.make (Rng.int rng n) 99 in
      let p = Bgmp_fabric.send fabric ~source ~group:g in
      Engine.run_until_idle engine;
      let got = List.map fst (Bgmp_fabric.deliveries fabric ~payload:p) in
      let got_sorted = List.sort Host_ref.compare got in
      let want = List.sort Host_ref.compare (List.map (fun d -> Host_ref.make d 0) members) in
      got_sorted = want && Bgmp_fabric.duplicate_deliveries fabric = 0)

let suite =
  [
    ("router join creates entry", `Quick, test_router_join_creates_entry_and_propagates);
    ("router second join silent", `Quick, test_router_second_join_no_propagation);
    ("router root parent is migp", `Quick, test_router_root_domain_parent_is_migp);
    ("router prune tears down", `Quick, test_router_prune_tears_down);
    ("router data bidirectional", `Quick, test_router_data_bidirectional);
    ("router off-tree default forwarding", `Quick, test_router_off_tree_default_forwarding);
    ("router data after teardown", `Quick, test_router_data_after_teardown_reverts_to_default);
    ("router data during prune in flight", `Quick, test_router_data_during_prune_in_flight);
    ("router sg join on tree copies", `Quick, test_router_sg_join_on_tree_copies_targets);
    ("router sg join off tree propagates", `Quick, test_router_sg_join_off_tree_propagates);
    ("router sg data rpf gated", `Quick, test_router_sg_data_rpf_gated);
    ("router entry count", `Quick, test_router_entry_count);
    ("fabric members receive exactly once", `Quick, test_fabric_members_receive_exactly_once);
    ("fabric sender need not be member", `Quick, test_fabric_sender_need_not_be_member);
    ("fabric local members at zero hops", `Quick, test_fabric_member_sender_zero_hops_locally);
    ("fabric leave tears down", `Quick, test_fabric_leave_tears_down_tree);
    ("fabric data during prune window", `Quick, test_fabric_data_during_prune_window);
    ("fabric hop counts pinned", `Quick, test_fabric_hop_counts_pinned);
    ("fabric tree stable across sends", `Quick, test_fabric_tree_is_stable_across_sends);
    ("fabric branch shortens path", `Quick, test_fabric_branch_shortens_path);
    ("fabric no branch when disabled", `Quick, test_fabric_no_branch_without_branching);
    ("fabric flooding counters by style", `Quick, test_fabric_flooding_counters_by_style);
    ("fabric migp independence", `Quick, test_fabric_pim_sm_delivery_equivalent);
    ("fabric mixed migp styles", `Quick, test_fabric_mixed_migp_styles);
    ("fabric leave preserves transit/branches", `Quick, test_fabric_leave_preserves_transit_and_branches);
    ("fabric multiple groups", `Quick, test_fabric_multiple_groups_independent);
    ("fabric message counters", `Quick, test_fabric_message_counters);
    ("fabric router naming", `Quick, test_fabric_router_naming);
    ("fabric regression seed 142759", `Quick, test_fabric_regression_seed_142759);
    QCheck_alcotest.to_alcotest prop_fabric_delivers_to_exactly_members;
  ]
