(* Tests for mcast_par and the domain-safe Obs plumbing it relies on:
   Par.map ordering and exception propagation, per-slot state reuse,
   shard capture, and the merge operators (Metrics.merge_into,
   Prof.merge/merge_tree, Timeseries.merge_into) that make parallel
   runs byte-identical to sequential ones. *)

let check = Alcotest.check

(* ---- Par.map ----------------------------------------------------- *)

let test_map_ordering () =
  let xs = List.init 100 (fun i -> i) in
  let expect = List.map (fun x -> x * x) xs in
  check (Alcotest.list Alcotest.int) "jobs 1" expect (Par.map ~jobs:1 (fun x -> x * x) xs);
  check (Alcotest.list Alcotest.int) "jobs 4" expect (Par.map ~jobs:4 (fun x -> x * x) xs);
  check (Alcotest.list Alcotest.int) "jobs 8" expect (Par.map ~jobs:8 (fun x -> x * x) xs);
  check (Alcotest.list Alcotest.int) "more jobs than items" [ 1; 2; 3 ]
    (Par.map ~jobs:8 (fun x -> x + 1) [ 0; 1; 2 ]);
  check (Alcotest.list Alcotest.int) "empty" [] (Par.map ~jobs:4 (fun x -> x) []);
  check (Alcotest.list Alcotest.int) "singleton" [ 7 ] (Par.map ~jobs:4 (fun x -> x) [ 7 ])

exception Boom of int

let test_map_exception () =
  (* Every task runs to completion; the exception of the lowest-index
     failing task is the one re-raised, at any job count. *)
  let run jobs =
    try
      ignore
        (Par.map ~jobs (fun i -> if i >= 5 then raise (Boom i) else i) (List.init 10 Fun.id));
      Alcotest.fail "expected Boom"
    with Boom i -> i
  in
  check Alcotest.int "inline re-raise" 5 (run 1);
  check Alcotest.int "parallel re-raise is lowest index" 5 (run 4)

let test_map_nested () =
  (* A map submitted from inside a task runs inline on that worker —
     no deadlock, same results. *)
  let expect = List.init 3 (fun i -> List.init 5 (fun j -> (i * 10) + j)) in
  let got =
    Par.map ~jobs:4 (fun i -> Par.map ~jobs:4 (fun j -> (i * 10) + j) (List.init 5 Fun.id))
      (List.init 3 Fun.id)
  in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "nested map" expect got

let test_map_with_state_reuse () =
  let created = ref [] in
  let cm = Mutex.create () in
  let init () =
    let s = ref 0 in
    Mutex.lock cm;
    created := s :: !created;
    Mutex.unlock cm;
    s
  in
  let got =
    Par.map_with ~jobs:1 ~init
      (fun s x ->
        incr s;
        x * 2)
      (List.init 5 Fun.id)
  in
  check (Alcotest.list Alcotest.int) "results" [ 0; 2; 4; 6; 8 ] got;
  check Alcotest.int "one state at jobs 1" 1 (List.length !created);
  check Alcotest.int "state saw every item" 5 !(List.hd !created);
  created := [];
  let got =
    Par.map_with ~jobs:4 ~init
      (fun s x ->
        incr s;
        x * 2)
      (List.init 20 Fun.id)
  in
  check (Alcotest.list Alcotest.int) "parallel results" (List.init 20 (fun i -> i * 2)) got;
  check Alcotest.bool "at most one state per slot" true (List.length !created <= 4);
  check Alcotest.int "states saw every item exactly once" 20
    (List.fold_left (fun acc s -> acc + !s) 0 !created)

let test_set_jobs () =
  check Alcotest.bool "negative rejected" true
    (try
       Par.set_jobs (-1);
       false
     with Invalid_argument _ -> true);
  Par.set_jobs 0;
  check Alcotest.bool "0 resolves to >= 1" true (Par.jobs () >= 1);
  Par.set_jobs 1;
  check Alcotest.int "explicit" 1 (Par.jobs ())

(* ---- shard hammer: N domains, exact totals after merge ----------- *)

let test_shard_hammer () =
  let tasks = 40 in
  let outs =
    Par.map ~jobs:4
      (fun i ->
        Par.with_shard (fun () ->
            (* Handles created without [?registry] bind to the shard
               registry current on this worker domain. *)
            Metrics.add (Metrics.counter "t.par.hits") i;
            Metrics.observe (Metrics.histogram ~limits:[| 10.0; 100.0 |] "t.par.lat")
              (float_of_int i);
            Metrics.set_max (Metrics.gauge "t.par.peak") (float_of_int i)))
      (List.init tasks Fun.id)
  in
  let total = tasks * (tasks - 1) / 2 in
  let merged = Metrics.create () in
  Metrics.with_current merged (fun () -> List.iter (fun ((), s) -> Par.merge_shard s) outs);
  let snap = Metrics.snapshot merged in
  (match Metrics.find snap "t.par.hits" with
  | Some (Metrics.Counter_v c) -> check Alcotest.int "counter total exact" total c
  | _ -> Alcotest.fail "counter missing");
  (match Metrics.find snap "t.par.lat" with
  | Some (Metrics.Histogram_v v) ->
      check Alcotest.int "histogram count exact" tasks v.Metrics.hcount;
      check (Alcotest.float 1e-6) "histogram sum exact" (float_of_int total) v.Metrics.hsum;
      check
        (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.int))
        "bucket fill exact"
        [ (10.0, 11); (100.0, 29); (infinity, 0) ]
        v.Metrics.hbuckets
  | _ -> Alcotest.fail "histogram missing");
  match Metrics.find snap "t.par.peak" with
  | Some (Metrics.Gauge_v g) ->
      check (Alcotest.float 1e-9) "gauge keeps max" (float_of_int (tasks - 1)) g
  | _ -> Alcotest.fail "gauge missing"

let test_merge_order_independent () =
  (* Counter/bucket totals are integer sums: any merge order gives the
     same registry.  Histogram moments combine via Stats.merge, which
     is associative up to float rounding — compare with tolerance. *)
  let shards =
    List.map
      (fun ((), s) -> s)
      (Par.map ~jobs:4
         (fun i ->
           Par.with_shard (fun () ->
               Metrics.add (Metrics.counter "t.ord.c") (i + 1);
               Metrics.observe (Metrics.histogram "t.ord.h") (float_of_int i)))
         (List.init 16 Fun.id))
  in
  let fold order =
    let r = Metrics.create () in
    Metrics.with_current r (fun () -> List.iter Par.merge_shard order);
    Metrics.snapshot r
  in
  let a = fold shards and b = fold (List.rev shards) in
  (match (Metrics.find a "t.ord.c", Metrics.find b "t.ord.c") with
  | Some (Metrics.Counter_v ca), Some (Metrics.Counter_v cb) ->
      check Alcotest.int "counter order-independent" ca cb
  | _ -> Alcotest.fail "counter missing");
  match (Metrics.find a "t.ord.h", Metrics.find b "t.ord.h") with
  | Some (Metrics.Histogram_v va), Some (Metrics.Histogram_v vb) ->
      check Alcotest.int "hist count" va.Metrics.hcount vb.Metrics.hcount;
      check
        (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.int))
        "buckets" va.Metrics.hbuckets vb.Metrics.hbuckets;
      check (Alcotest.float 1e-9) "mean" va.Metrics.hmean vb.Metrics.hmean;
      check (Alcotest.float 1e-6) "stddev" va.Metrics.hstddev vb.Metrics.hstddev
  | _ -> Alcotest.fail "histogram missing"

let test_merge_into_mismatch () =
  let r1 = Metrics.create () and r2 = Metrics.create () in
  ignore (Metrics.counter ~registry:r1 "x");
  ignore (Metrics.gauge ~registry:r2 "x");
  check Alcotest.bool "kind mismatch raises" true
    (try
       Metrics.merge_into ~into:r1 r2;
       false
     with Invalid_argument _ -> true);
  let r3 = Metrics.create () and r4 = Metrics.create () in
  ignore (Metrics.histogram ~registry:r3 ~limits:[| 1.0 |] "h");
  ignore (Metrics.histogram ~registry:r4 ~limits:[| 2.0 |] "h");
  check Alcotest.bool "limits mismatch raises" true
    (try
       Metrics.merge_into ~into:r3 r4;
       false
     with Invalid_argument _ -> true)

(* ---- Prof spans across domains ----------------------------------- *)

let test_prof_merge () =
  Fun.protect
    ~finally:(fun () ->
      Prof.disable ();
      Prof.reset ())
    (fun () ->
      Prof.enable ();
      let outs =
        Par.map ~jobs:4
          (fun i ->
            Par.with_shard (fun () ->
                Prof.span "t.work" (fun () ->
                    if i mod 2 = 0 then Prof.span "t.inner" (fun () -> ()))))
          (List.init 12 Fun.id)
      in
      List.iter (fun ((), s) -> Par.merge_shard s) outs;
      let rows = Prof.rows () in
      (match Prof.find rows [ "t.work" ] with
      | Some r -> check Alcotest.int "outer span count exact" 12 r.Prof.count
      | None -> Alcotest.fail "t.work row missing");
      match Prof.find rows [ "t.work"; "t.inner" ] with
      | Some r -> check Alcotest.int "nested span count exact" 6 r.Prof.count
      | None -> Alcotest.fail "t.inner row missing")

let test_prof_merge_tree_associative () =
  Fun.protect
    ~finally:(fun () ->
      Prof.disable ();
      Prof.reset ())
    (fun () ->
      Prof.enable ();
      let capture n = snd (Prof.capture (fun () -> Prof.span "t.a" (fun () -> ignore n))) in
      let t1 = capture 1 and t2 = capture 2 and t3 = capture 3 in
      let counts first rest =
        List.iter (fun t -> Prof.merge_tree ~into:first t) rest;
        match Prof.find (Prof.tree_rows first) [ "t.a" ] with
        | Some r -> r.Prof.count
        | None -> 0
      in
      (* (t1 + t2) + t3 against t1 + (t2 + t3), rebuilt fresh. *)
      let left = counts (capture 0) [ t1; t2; t3 ] in
      let t4 = capture 2 and t5 = capture 3 in
      Prof.merge_tree ~into:t4 t5;
      let right = counts (capture 1) [ t4 ] in
      check Alcotest.int "merge_tree accumulates associatively" 4 left;
      check Alcotest.int "grouped merge matches" 3 right)

let test_prof_disabled_capture_is_empty () =
  Prof.disable ();
  let x, tree = Prof.capture (fun () -> Prof.span "t.off" (fun () -> 41)) in
  check Alcotest.int "thunk result" 41 x;
  check Alcotest.int "no rows when disabled" 0 (List.length (Prof.tree_rows tree));
  (* Merging an empty tree is a no-op either way. *)
  Prof.merge tree

(* ---- Timeseries shard merge -------------------------------------- *)

let test_timeseries_merge () =
  let mk () =
    let t = Timeseries.create () in
    Timeseries.register t "v" (fun () -> 0.0);
    t
  in
  let main = mk () and shard = mk () in
  Timeseries.sample main ~time:1.0;
  Timeseries.sample shard ~time:2.0;
  Timeseries.sample shard ~time:3.0;
  Timeseries.merge_into ~into:main shard;
  let row = Alcotest.pair (Alcotest.float 1e-9) (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9))) in
  check (Alcotest.list row) "rows appended oldest first"
    [ (1.0, [ ("v", 0.0) ]); (2.0, [ ("v", 0.0) ]); (3.0, [ ("v", 0.0) ]) ]
    (Timeseries.rows main);
  check Alcotest.int "sample count follows" 3 (Timeseries.samples main);
  (* Shard rows are untouched. *)
  check Alcotest.int "source unchanged" 2 (Timeseries.samples shard)

let suite =
  [
    ("map preserves order", `Quick, test_map_ordering);
    ("map re-raises lowest-index exception", `Quick, test_map_exception);
    ("nested map runs inline", `Quick, test_map_nested);
    ("map_with reuses per-slot state", `Quick, test_map_with_state_reuse);
    ("set_jobs validation", `Quick, test_set_jobs);
    ("shard hammer merges to exact totals", `Quick, test_shard_hammer);
    ("merge order-independent totals", `Quick, test_merge_order_independent);
    ("merge_into rejects mismatches", `Quick, test_merge_into_mismatch);
    ("prof spans merge to exact counts", `Quick, test_prof_merge);
    ("prof merge_tree accumulates", `Quick, test_prof_merge_tree_associative);
    ("prof capture empty when disabled", `Quick, test_prof_disabled_capture_is_empty);
    ("timeseries shard merge", `Quick, test_timeseries_merge);
  ]
