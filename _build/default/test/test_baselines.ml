(* Tests for the Kampai allocation scheme, the §6 related-work baseline
   models, and the §3 incongruent-topology (M-RIB) requirement. *)

let check = Alcotest.check

(* --- Kampai blocks -------------------------------------------------------- *)

let blk s = Kampai.block_of_prefix (Prefix.of_string s)

let test_kampai_block_of_prefix () =
  let b = blk "224.1.0.0/24" in
  check Alcotest.int "size" 256 (Kampai.size b);
  check Alcotest.bool "member" true (Kampai.mem (Ipv4.of_string "224.1.0.77") b);
  check Alcotest.bool "non member" false (Kampai.mem (Ipv4.of_string "224.1.1.0") b);
  Alcotest.check_raises "outside 224/4" (Invalid_argument "Kampai.block_of_prefix: outside 224/4")
    (fun () -> ignore (Kampai.block_of_prefix (Prefix.of_string "10.0.0.0/24")))

let test_kampai_disjoint () =
  check Alcotest.bool "disjoint prefixes disjoint" true
    (Kampai.disjoint (blk "224.1.0.0/24") (blk "224.2.0.0/24"));
  check Alcotest.bool "nested not disjoint" false
    (Kampai.disjoint (blk "224.1.0.0/24") (blk "224.1.0.0/16"));
  check Alcotest.bool "same block not disjoint" false
    (Kampai.disjoint (blk "224.1.0.0/24") (blk "224.1.0.0/24"))

let test_kampai_grow_noncontiguous () =
  (* Block the contiguous buddy; growth must still succeed by releasing
     a different (non-contiguous) bit. *)
  let mine = blk "224.1.0.0/24" in
  let buddy = blk "224.1.1.0/24" in
  match Kampai.grow mine ~others:[ buddy ] with
  | None -> Alcotest.fail "expected non-contiguous growth"
  | Some grown ->
      check Alcotest.int "doubled" 512 (Kampai.size grown);
      check Alcotest.bool "still disjoint from the buddy owner" true
        (Kampai.disjoint grown buddy);
      check Alcotest.bool "covers the original space" true
        (Kampai.mem (Ipv4.of_string "224.1.0.5") grown)

let test_kampai_grow_exhaustion () =
  (* With every flip of every free bit colliding, growth fails:
     surround a /24 block by claims covering both settings of each bit.
     Simplest exhaustion: another block claims everything else. *)
  let mine = blk "224.0.0.0/24" in
  (* An adversary holding 224/4 entirely would overlap us; instead hold
     the complement implicitly: each single-bit flip of our block. *)
  let adversaries =
    List.init 20 (fun i ->
        let bit = 1 lsl (i + 8) in
        Kampai.block_of_prefix
          (Prefix.make (Prefix.base (Prefix.of_string "224.0.0.0/24") lxor bit) 24))
  in
  match Kampai.grow mine ~others:adversaries with
  | Some g ->
      (* Growth may still find bits 0-7 (inside our own /24's host part
         are already free) — those are already free bits, not in mask.
         The first 8 bits are free already; mask bits start at 8, all of
         which collide, so growth must fail. *)
      Alcotest.failf "unexpected growth to %d" (Kampai.size g)
  | None -> ()

let test_kampai_shrink_roundtrip () =
  let b = blk "224.1.0.0/24" in
  match Kampai.grow b ~others:[] with
  | None -> Alcotest.fail "grow failed"
  | Some g -> (
      match Kampai.shrink g with
      | None -> Alcotest.fail "shrink failed"
      | Some s ->
          check Alcotest.int "back to original size" (Kampai.size b) (Kampai.size s);
          check Alcotest.bool "covers the base address" true
            (Kampai.mem (Ipv4.of_string "224.1.0.0") s))

let test_kampai_sim_comparison () =
  let p =
    {
      Kampai.Sim.default_params with
      Kampai.Sim.domains = 30;
      horizon = Time.days 150.0;
      seed = 11;
    }
  in
  let r = Kampai.Sim.run p in
  check Alcotest.int "contiguous: no failures" 0 r.Kampai.Sim.contiguous.Kampai.Sim.failures;
  check Alcotest.int "kampai: no failures" 0 r.Kampai.Sim.kampai.Kampai.Sim.failures;
  check Alcotest.int "kampai never renumbers" 0 r.Kampai.Sim.kampai.Kampai.Sim.renumberings;
  check Alcotest.bool "kampai utilization at least matches contiguous" true
    (r.Kampai.Sim.kampai.Kampai.Sim.utilization
    >= r.Kampai.Sim.contiguous.Kampai.Sim.utilization -. 0.05);
  check Alcotest.bool "kampai: one table entry per domain" true
    (r.Kampai.Sim.kampai.Kampai.Sim.table_entries = 30.0);
  check Alcotest.bool "contiguous needs at least as many entries" true
    (r.Kampai.Sim.contiguous.Kampai.Sim.table_entries >= 30.0)

let prop_kampai_grow_preserves_disjointness =
  QCheck.Test.make ~name:"kampai growth keeps all blocks pairwise disjoint" ~count:50
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let blocks =
        ref
          (List.init 12 (fun i ->
               Kampai.block_of_prefix (Prefix.make (0xE0000000 lor (i lsl 10)) 24)))
      in
      (* Grow random blocks repeatedly. *)
      for _ = 1 to 30 do
        let i = Rng.int rng 12 in
        let b = List.nth !blocks i in
        let others = List.filteri (fun j _ -> j <> i) !blocks in
        match Kampai.grow b ~others with
        | Some g -> blocks := List.mapi (fun j x -> if j = i then g else x) !blocks
        | None -> ()
      done;
      let rec pairwise = function
        | [] -> true
        | x :: rest -> List.for_all (Kampai.disjoint x) rest && pairwise rest
      in
      pairwise !blocks)

(* --- HPIM / HDVMRP -------------------------------------------------------- *)

let test_hpim_paths_at_least_spt () =
  let rng = Rng.create 3 in
  let topo = Gen.power_law ~rng ~n:200 ~m:2 in
  let source = 5 in
  let receivers = [| 20; 40; 60; 80 |] in
  let spt = Spf.bfs topo source in
  let paths = Baselines.hpim_paths topo ~rng ~levels:3 ~source ~receivers in
  Array.iteri
    (fun i r ->
      check Alcotest.bool "hpim no shorter than spt" true (paths.(i) >= Spf.dist spt r))
    receivers

let test_hpim_single_level_is_unidirectionalish () =
  (* One RP level: receivers join a single random RP — sanity: paths are
     finite and positive. *)
  let rng = Rng.create 9 in
  let topo = Gen.transit_stub ~rng ~backbones:2 ~regionals_per_backbone:2 ~stubs_per_regional:3 in
  let receivers = [| 3; 7; 11 |] in
  let paths = Baselines.hpim_paths topo ~rng ~levels:1 ~source:1 ~receivers in
  Array.iter (fun p -> check Alcotest.bool "finite path" true (p >= 0 && p < 100)) paths

let test_hpim_rejects_zero_levels () =
  let rng = Rng.create 1 in
  let topo = Gen.line ~n:4 in
  Alcotest.check_raises "zero levels"
    (Invalid_argument "Baselines.hpim_paths: need at least one RP level") (fun () ->
      ignore (Baselines.hpim_paths topo ~rng ~levels:0 ~source:0 ~receivers:[| 1 |]))

let test_hdvmrp_costs () =
  let topo = Gen.line ~n:50 in
  let c = Baselines.hdvmrp_costs topo ~senders:2 ~groups:10 ~members:5 in
  check Alcotest.int "floods touch every domain" (2 * 10 * 50) c.Baselines.flood_deliveries;
  check Alcotest.int "prunes from non-members" (2 * 10 * 45) c.Baselines.prune_messages;
  check Alcotest.int "per-router S,G state" 20 c.Baselines.per_router_state;
  Alcotest.check_raises "members bound"
    (Invalid_argument "Baselines.hdvmrp_costs: more members than domains") (fun () ->
      ignore (Baselines.hdvmrp_costs topo ~senders:1 ~groups:1 ~members:51))

let test_compare_hpim_shape () =
  let points = Baselines.compare_hpim ~nodes:300 ~trials:5 ~sizes:[ 10; 50 ] ~seed:21 () in
  check Alcotest.int "two points" 2 (List.length points);
  List.iter
    (fun (pt : Baselines.comparison_point) ->
      check Alcotest.bool "ratios sane" true
        (pt.Baselines.hpim_avg >= 1.0 && pt.Baselines.bgmp_hybrid_avg >= 1.0))
    points

(* --- §3: incongruent multicast / unicast topologies ----------------------- *)

let test_incongruent_topologies () =
  (* Unicast topology: a line 0-1-2-3.  Multicast-capable topology: the
     same domains but with an extra multicast-only shortcut 0-3, and the
     1-2 link NOT multicast capable.  BGMP must run entirely over the
     multicast topology (the M-RIB), and delivery must use the shortcut
     — impossible paths over the unicast-only link must never be used. *)
  let mtopo = Topo.create () in
  let d0 = Topo.add_domain mtopo ~name:"d0" ~kind:Domain.Backbone in
  let d1 = Topo.add_domain mtopo ~name:"d1" ~kind:Domain.Stub in
  let d2 = Topo.add_domain mtopo ~name:"d2" ~kind:Domain.Stub in
  let d3 = Topo.add_domain mtopo ~name:"d3" ~kind:Domain.Regional in
  Topo.add_link mtopo d0 d1 Topo.Provider_customer;
  (* no multicast-capable 1-2 link *)
  Topo.add_link mtopo d2 d3 Topo.Peer;
  Topo.add_link mtopo d0 d3 Topo.Peer (* multicast-only shortcut *);
  let engine = Engine.create () in
  let g = Ipv4.of_string "224.5.0.1" in
  (* Root at d0; routes per the M-RIB (paths over mtopo). *)
  let paths = Spf.bfs mtopo d0 in
  let route_to_root d _ =
    if d = d0 then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward mtopo paths d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  let fabric = Bgmp_fabric.create ~engine ~topo:mtopo ~route_to_root () in
  Bgmp_fabric.host_join fabric ~host:(Host_ref.make d2 0) ~group:g;
  Engine.run_until_idle engine;
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make d1 0) ~group:g in
  Engine.run_until_idle engine;
  (match Bgmp_fabric.deliveries fabric ~payload:p with
  | [ (h, hops) ] ->
      check Alcotest.int "delivered to d2" d2 h.Host_ref.host_domain;
      (* d1 -> d0 -> d3 -> d2 over multicast-capable links only. *)
      check Alcotest.int "via the multicast shortcut (3 hops)" 3 hops
  | other -> Alcotest.failf "expected one delivery, got %d" (List.length other));
  check Alcotest.int "no duplicates" 0 (Bgmp_fabric.duplicate_deliveries fabric)

let suite =
  [
    ("kampai block of prefix", `Quick, test_kampai_block_of_prefix);
    ("kampai disjoint", `Quick, test_kampai_disjoint);
    ("kampai grows past a blocked buddy", `Quick, test_kampai_grow_noncontiguous);
    ("kampai growth exhaustion", `Quick, test_kampai_grow_exhaustion);
    ("kampai shrink roundtrip", `Quick, test_kampai_shrink_roundtrip);
    ("kampai sim comparison", `Slow, test_kampai_sim_comparison);
    QCheck_alcotest.to_alcotest prop_kampai_grow_preserves_disjointness;
    ("hpim paths at least spt", `Quick, test_hpim_paths_at_least_spt);
    ("hpim single level", `Quick, test_hpim_single_level_is_unidirectionalish);
    ("hpim rejects zero levels", `Quick, test_hpim_rejects_zero_levels);
    ("hdvmrp costs", `Quick, test_hdvmrp_costs);
    ("compare hpim shape", `Quick, test_compare_hpim_shape);
    ("incongruent multicast topology (M-RIB)", `Quick, test_incongruent_topologies);
  ]
