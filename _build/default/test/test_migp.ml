(* Tests for mcast_migp: the behavioural MIGP component. *)

let check = Alcotest.check

let g = Ipv4.of_string "224.1.2.3"

let g2 = Ipv4.of_string "225.0.0.1"

let test_styles () =
  check Alcotest.bool "dvmrp floods" true (Migp.floods_data Migp.Dvmrp);
  check Alcotest.bool "pim-dm floods" true (Migp.floods_data Migp.Pim_dm);
  check Alcotest.bool "pim-sm does not flood" false (Migp.floods_data Migp.Pim_sm);
  check Alcotest.bool "cbt does not flood" false (Migp.floods_data Migp.Cbt);
  check Alcotest.bool "dvmrp strict rpf" true (Migp.strict_rpf Migp.Dvmrp);
  check Alcotest.bool "pim-sm relaxed rpf" false (Migp.strict_rpf Migp.Pim_sm);
  check Alcotest.string "names" "DVMRP" (Migp.style_name Migp.Dvmrp)

let test_membership_and_dwr () =
  let m = Migp.create Migp.Dvmrp ~domain:3 in
  let events = ref [] in
  Migp.set_on_group_active m (fun ~group ~active -> events := (group, active) :: !events);
  let h0 = Host_ref.make 3 0 and h1 = Host_ref.make 3 1 in
  Migp.host_join m ~group:g ~host:h0;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool)) "first join fires DWR"
    [ (g, true) ] (List.rev !events);
  Migp.host_join m ~group:g ~host:h1;
  check Alcotest.int "no extra DWR on second join" 1 (List.length !events);
  check Alcotest.int "two members" 2 (List.length (Migp.members m ~group:g));
  Migp.host_leave m ~group:g ~host:h0;
  check Alcotest.int "still active" 1 (List.length !events);
  Migp.host_leave m ~group:g ~host:h1;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool)) "last leave fires DWR"
    [ (g, true); (g, false) ] (List.rev !events);
  check Alcotest.bool "no members" false (Migp.has_members m ~group:g)

let test_membership_errors () =
  let m = Migp.create Migp.Pim_sm ~domain:3 in
  let h = Host_ref.make 3 0 in
  Alcotest.check_raises "wrong domain" (Invalid_argument "Migp.host_join: host not in this domain")
    (fun () -> Migp.host_join m ~group:g ~host:(Host_ref.make 4 0));
  Migp.host_join m ~group:g ~host:h;
  Alcotest.check_raises "double join" (Invalid_argument "Migp.host_join: already a member")
    (fun () -> Migp.host_join m ~group:g ~host:h);
  Alcotest.check_raises "leave non-member" (Invalid_argument "Migp.host_leave: not a member")
    (fun () -> Migp.host_leave m ~group:g2 ~host:h)

let test_groups_listing () =
  let m = Migp.create Migp.Cbt ~domain:1 in
  Migp.host_join m ~group:g ~host:(Host_ref.make 1 0);
  Migp.host_join m ~group:g2 ~host:(Host_ref.make 1 1);
  check Alcotest.int "two active groups" 2 (List.length (Migp.groups m));
  check Alcotest.bool "lists both" true
    (List.mem g (Migp.groups m) && List.mem g2 (Migp.groups m))

let test_counters () =
  let m = Migp.create Migp.Dvmrp ~domain:0 in
  Migp.note_flood_delivery m 4;
  Migp.note_flood_delivery m 3;
  Migp.note_encapsulation m;
  Migp.note_internal_prune m;
  check Alcotest.int "floods" 7 (Migp.flood_deliveries m);
  check Alcotest.int "encaps" 1 (Migp.encapsulations m);
  check Alcotest.int "prunes" 1 (Migp.internal_prunes m)

let test_member_join_order () =
  let m = Migp.create Migp.Pim_sm ~domain:2 in
  let hosts = List.init 5 (Host_ref.make 2) in
  List.iter (fun h -> Migp.host_join m ~group:g ~host:h) hosts;
  check Alcotest.bool "members in join order" true (Migp.members m ~group:g = hosts)

let suite =
  [
    ("styles", `Quick, test_styles);
    ("membership and DWR", `Quick, test_membership_and_dwr);
    ("membership errors", `Quick, test_membership_errors);
    ("groups listing", `Quick, test_groups_listing);
    ("counters", `Quick, test_counters);
    ("member join order", `Quick, test_member_join_order);
  ]
