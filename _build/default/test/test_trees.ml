(* Tests for mcast_trees: shared-tree construction, the four path
   models, and the Figure-4 experiment driver. *)

let check = Alcotest.check

(* --- Shared_tree ------------------------------------------------------- *)

let test_tree_root_always_on_tree () =
  let topo = Gen.line ~n:4 in
  let tree = Shared_tree.build topo ~root:0 ~members:[] in
  check Alcotest.bool "root on tree" true (Shared_tree.on_tree tree 0);
  check Alcotest.int "only the root" 1 (Shared_tree.node_count tree)

let test_tree_join_grafts_path () =
  let topo = Gen.line ~n:5 in
  let tree = Shared_tree.build topo ~root:0 ~members:[ 4 ] in
  for i = 0 to 4 do
    check Alcotest.bool (Printf.sprintf "node %d on tree" i) true (Shared_tree.on_tree tree i)
  done;
  check Alcotest.int "depth of member" 4 (Shared_tree.depth tree 4);
  check (Alcotest.option Alcotest.int) "parent pointers toward root" (Some 1)
    (Shared_tree.parent tree 2)

let test_tree_join_stops_at_tree () =
  (* Star: hub 0 with leaves.  The second leaf's join stops at the hub,
     not the root leaf. *)
  let topo = Gen.star ~n:5 in
  let tree = Shared_tree.build topo ~root:1 ~members:[ 2; 3 ] in
  check Alcotest.int "nodes: root, hub, two leaves" 4 (Shared_tree.node_count tree);
  check Alcotest.int "tree distance leaf-leaf" 2 (Shared_tree.tree_distance tree 2 3);
  check Alcotest.int "tree distance leaf-root" 2 (Shared_tree.tree_distance tree 2 1);
  check Alcotest.int "distance to self" 0 (Shared_tree.tree_distance tree 2 2)

let test_tree_duplicate_join_harmless () =
  let topo = Gen.line ~n:3 in
  let tree = Shared_tree.build topo ~root:0 ~members:[ 2; 2; 2 ] in
  check Alcotest.int "no duplicate nodes" 3 (Shared_tree.node_count tree);
  check Alcotest.int "members recorded" 3 (List.length (Shared_tree.members tree))

let test_tree_distance_off_tree_raises () =
  let topo = Gen.line ~n:4 in
  let tree = Shared_tree.build topo ~root:0 ~members:[ 1 ] in
  Alcotest.check_raises "off-tree endpoint"
    (Invalid_argument "Shared_tree.tree_distance: endpoint off tree") (fun () ->
      ignore (Shared_tree.tree_distance tree 1 3))

let test_tree_entry_point () =
  let topo = Gen.star ~n:6 in
  let tree = Shared_tree.build topo ~root:1 ~members:[ 2 ] in
  let paths = Spf.bfs topo 1 in
  let toward_root n = Spf.next_hop_toward topo paths n in
  (* Leaf 5 is off-tree; its data walks to the hub, which is on-tree. *)
  check (Alcotest.option Alcotest.int) "entry at hub" (Some 0)
    (Shared_tree.entry_point tree ~walk_toward_root:toward_root 5);
  check (Alcotest.option Alcotest.int) "on-tree sender is its own entry" (Some 2)
    (Shared_tree.entry_point tree ~walk_toward_root:toward_root 2)

(* --- Path_eval ---------------------------------------------------------- *)

let test_path_eval_line_root_at_source () =
  (* Root co-located with the source: bidirectional = SPT exactly. *)
  let topo = Gen.line ~n:6 in
  let group = { Path_eval.source = 0; root = 0; receivers = [| 2; 4; 5 |] } in
  let paths = Path_eval.evaluate topo group in
  check (Alcotest.array Alcotest.int) "spt" [| 2; 4; 5 |] paths.Path_eval.spt;
  check (Alcotest.array Alcotest.int) "bidirectional equals spt" [| 2; 4; 5 |]
    paths.Path_eval.bidirectional;
  check (Alcotest.array Alcotest.int) "unidirectional equals spt here" [| 2; 4; 5 |]
    paths.Path_eval.unidirectional;
  check (Alcotest.array Alcotest.int) "hybrid equals spt" [| 2; 4; 5 |] paths.Path_eval.hybrid

let test_path_eval_unidirectional_detour () =
  (* Line 0-1-2-3-4: source at 4, root/RP at 0, receiver at 3.
     SPT: 1 hop.  Unidirectional: 4 (to RP) + 3 (down) = 7.
     Bidirectional: data meets the tree at 3 itself: 1 hop. *)
  let topo = Gen.line ~n:5 in
  let group = { Path_eval.source = 4; root = 0; receivers = [| 3 |] } in
  let paths = Path_eval.evaluate topo group in
  check (Alcotest.array Alcotest.int) "spt" [| 1 |] paths.Path_eval.spt;
  check (Alcotest.array Alcotest.int) "unidirectional via RP" [| 7 |]
    paths.Path_eval.unidirectional;
  check (Alcotest.array Alcotest.int) "bidirectional shortcuts" [| 1 |]
    paths.Path_eval.bidirectional;
  check (Alcotest.array Alcotest.int) "hybrid no worse" [| 1 |] paths.Path_eval.hybrid

let test_path_eval_hybrid_beats_bidirectional () =
  (* Figure-3-like: the receiver's shortest path to the source leaves
     the shared tree, so a branch helps.
         0 (root)
         |
         1 --- 2 (receiver)
         |     |
         3 --- 4 --- 5 (source)   with the tree path 2-1-0 and source
     feeding via ... build concretely: receiver 2's path to source 5 is
     2-4-5 (2 hops); its tree path from the source entry is longer. *)
  let topo = Topo.create () in
  let add name = Topo.add_domain topo ~name ~kind:Domain.Stub in
  let n0 = add "n0" and n1 = add "n1" and n2 = add "n2" in
  let n3 = add "n3" and n4 = add "n4" and n5 = add "n5" in
  Topo.add_link topo n0 n1 Topo.Peer;
  Topo.add_link topo n1 n2 Topo.Peer;
  Topo.add_link topo n1 n3 Topo.Peer;
  Topo.add_link topo n3 n4 Topo.Peer;
  Topo.add_link topo n2 n4 Topo.Peer;
  Topo.add_link topo n4 n5 Topo.Peer;
  let group = { Path_eval.source = n5; root = n0; receivers = [| n2 |] } in
  let paths = Path_eval.evaluate topo group in
  check (Alcotest.array Alcotest.int) "spt 2 hops" [| 2 |] paths.Path_eval.spt;
  check Alcotest.bool "hybrid no worse than bidirectional" true
    (paths.Path_eval.hybrid.(0) <= paths.Path_eval.bidirectional.(0));
  check (Alcotest.array Alcotest.int) "branch reaches the source domain" [| 2 |]
    paths.Path_eval.hybrid

let test_ratios () =
  let s = Path_eval.ratios ~baseline:[| 2; 4; 0 |] [| 4; 4; 7 |] in
  check Alcotest.int "zero-baseline receivers skipped" 2 s.Path_eval.receivers_counted;
  check (Alcotest.float 1e-9) "avg" 1.5 s.Path_eval.avg_ratio;
  check (Alcotest.float 1e-9) "max" 2.0 s.Path_eval.max_ratio

let test_ratios_length_mismatch () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Path_eval.ratios: length mismatch")
    (fun () -> ignore (Path_eval.ratios ~baseline:[| 1 |] [| 1; 2 |]))

(* Property: fundamental ordering between the tree families. *)
let prop_path_orderings =
  QCheck.Test.make ~name:"spt <= hybrid <= bidirectional; spt <= unidirectional" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let topo = Gen.power_law ~rng ~n:80 ~m:2 in
      let n = Topo.domain_count topo in
      let source = Rng.int rng n in
      let receivers =
        Array.of_list
          (List.filter (fun d -> d <> source)
             (Array.to_list (Rng.sample_without_replacement rng 10 n)))
      in
      let root = receivers.(0) in
      let paths = Path_eval.evaluate topo { Path_eval.source; root; receivers } in
      let ok = ref true in
      Array.iteri
        (fun i spt ->
          let u = paths.Path_eval.unidirectional.(i)
          and b = paths.Path_eval.bidirectional.(i)
          and h = paths.Path_eval.hybrid.(i) in
          if not (spt <= u && spt <= b && spt <= h && h <= b) then ok := false)
        paths.Path_eval.spt;
      !ok)

(* Property: bidirectional path = tree walk, so it is symmetric in a
   specific sense: all receivers on the tree get data. Check the tree
   contains every receiver and path lengths are finite. *)
let prop_paths_finite =
  QCheck.Test.make ~name:"all tree paths finite on connected graphs" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let topo = Gen.transit_stub ~rng ~backbones:2 ~regionals_per_backbone:2 ~stubs_per_regional:3 in
      let n = Topo.domain_count topo in
      let source = Rng.int rng n in
      let receivers = Rng.sample_without_replacement rng (min 8 (n - 1)) n in
      let receivers = Array.of_list (List.filter (fun d -> d <> source) (Array.to_list receivers)) in
      if Array.length receivers = 0 then true
      else begin
        let paths =
          Path_eval.evaluate topo { Path_eval.source; root = receivers.(0); receivers }
        in
        Array.for_all (fun x -> x >= 0 && x < 4 * n) paths.Path_eval.unidirectional
        && Array.for_all (fun x -> x >= 0 && x < 4 * n) paths.Path_eval.bidirectional
        && Array.for_all (fun x -> x >= 0 && x < 4 * n) paths.Path_eval.hybrid
      end)

(* --- Tree_experiment ----------------------------------------------------- *)

let tiny_params =
  {
    Tree_experiment.default_params with
    Tree_experiment.nodes = 150;
    group_sizes = [ 1; 5; 20 ];
    trials = 5;
    seed = 3;
  }

let test_experiment_shape () =
  let r = Tree_experiment.run tiny_params in
  check Alcotest.int "one point per size" 3 (List.length r.Tree_experiment.points);
  List.iter
    (fun (pt : Tree_experiment.point) ->
      check Alcotest.bool "ratios at least 1" true
        (pt.Tree_experiment.uni_avg >= 1.0 && pt.Tree_experiment.bi_avg >= 1.0
        && pt.Tree_experiment.hy_avg >= 1.0);
      check Alcotest.bool "max >= avg" true
        (pt.Tree_experiment.uni_max >= pt.Tree_experiment.uni_avg
        && pt.Tree_experiment.bi_max >= pt.Tree_experiment.bi_avg
        && pt.Tree_experiment.hy_max >= pt.Tree_experiment.hy_avg);
      check Alcotest.bool "hybrid no worse than bidirectional on average" true
        (pt.Tree_experiment.hy_avg <= pt.Tree_experiment.bi_avg +. 1e-9))
    r.Tree_experiment.points

let test_experiment_deterministic () =
  let a = Tree_experiment.run tiny_params and b = Tree_experiment.run tiny_params in
  List.iter2
    (fun (x : Tree_experiment.point) (y : Tree_experiment.point) ->
      check (Alcotest.float 1e-12) "same uni_avg" x.Tree_experiment.uni_avg y.Tree_experiment.uni_avg;
      check (Alcotest.float 1e-12) "same hy_max" x.Tree_experiment.hy_max y.Tree_experiment.hy_max)
    a.Tree_experiment.points b.Tree_experiment.points

let test_experiment_paper_shape_medium () =
  (* A medium instance must already show the paper's ordering at larger
     group sizes: unidirectional clearly worse than bidirectional, which
     is a little worse than hybrid. *)
  let r =
    Tree_experiment.run
      {
        Tree_experiment.default_params with
        Tree_experiment.nodes = 600;
        group_sizes = [ 100 ];
        trials = 10;
        seed = 42;
      }
  in
  match r.Tree_experiment.points with
  | [ pt ] ->
      check Alcotest.bool "unidirectional about 2x SPT" true
        (pt.Tree_experiment.uni_avg > 1.5);
      check Alcotest.bool "bidirectional much better than unidirectional" true
        (pt.Tree_experiment.bi_avg < pt.Tree_experiment.uni_avg);
      check Alcotest.bool "hybrid best of the shared trees" true
        (pt.Tree_experiment.hy_avg <= pt.Tree_experiment.bi_avg)
  | _ -> Alcotest.fail "expected one point"

let test_experiment_root_placement_ablation () =
  (* Root at the source's own domain: the bidirectional tree becomes a
     reverse SPT, so its overhead must drop vs third-party rooting. *)
  let run placement =
    let r =
      Tree_experiment.run
        {
          tiny_params with
          Tree_experiment.nodes = 400;
          group_sizes = [ 50 ];
          trials = 10;
          root_placement = placement;
        }
    in
    (List.hd r.Tree_experiment.points).Tree_experiment.bi_avg
  in
  let at_source = run Tree_experiment.Root_at_source in
  let random = run Tree_experiment.Root_random in
  check Alcotest.bool "source-rooted trees shorter than random-rooted" true
    (at_source <= random +. 1e-9)

let test_series_output () =
  let r = Tree_experiment.run tiny_params in
  let series = Tree_experiment.series_of_result r in
  check Alcotest.int "six series" 6 (List.length series);
  List.iter
    (fun (s : Stats.series) ->
      check Alcotest.int "one point per size" 3 (Array.length s.Stats.points))
    series

let suite =
  [
    ("tree root always on tree", `Quick, test_tree_root_always_on_tree);
    ("tree join grafts path", `Quick, test_tree_join_grafts_path);
    ("tree join stops at tree", `Quick, test_tree_join_stops_at_tree);
    ("tree duplicate join harmless", `Quick, test_tree_duplicate_join_harmless);
    ("tree distance off tree raises", `Quick, test_tree_distance_off_tree_raises);
    ("tree entry point", `Quick, test_tree_entry_point);
    ("path eval line, root at source", `Quick, test_path_eval_line_root_at_source);
    ("path eval unidirectional detour", `Quick, test_path_eval_unidirectional_detour);
    ("path eval hybrid beats bidirectional", `Quick, test_path_eval_hybrid_beats_bidirectional);
    ("ratios", `Quick, test_ratios);
    ("ratios length mismatch", `Quick, test_ratios_length_mismatch);
    QCheck_alcotest.to_alcotest prop_path_orderings;
    QCheck_alcotest.to_alcotest prop_paths_finite;
    ("experiment shape", `Quick, test_experiment_shape);
    ("experiment deterministic", `Quick, test_experiment_deterministic);
    ("experiment paper shape (medium)", `Slow, test_experiment_paper_shape_medium);
    ("experiment root placement ablation", `Slow, test_experiment_root_placement_ablation);
    ("series output", `Quick, test_series_output);
  ]
