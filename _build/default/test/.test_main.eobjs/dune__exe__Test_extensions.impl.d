test/test_extensions.ml: Alcotest Bgmp_router Domain Engine Filename Fun Gen Internet Ipv4 List Maas Masc_network Masc_node Option Prefix Printf Rng Str String Sys Time Topo Topo_dot Topo_dump Trace
