test/test_repair.ml: Alcotest Bgmp_fabric Bgp_network Domain Engine Host_ref Internet Ipv4 List Option Scenario Speaker Time Topo
