test/test_masc.ml: Address_space Alcotest Allocation_sim Array Claim_policy Engine Hashtbl Ipv4 List Maas Masc_network Masc_node Option Prefix Printf QCheck QCheck_alcotest Rng Time
