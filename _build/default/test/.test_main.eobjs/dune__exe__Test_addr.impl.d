test/test_addr.ml: Alcotest Free_space Gen Ipv4 List Option Prefix Prefix_trie Printf QCheck QCheck_alcotest String
