test/test_migp.ml: Alcotest Host_ref Ipv4 List Migp
