test/test_util.ml: Alcotest Array Gen Hashtbl Heap List Option QCheck QCheck_alcotest Rng Stats
