test/test_sim.ml: Alcotest Engine Gen List Option QCheck QCheck_alcotest Time Trace
