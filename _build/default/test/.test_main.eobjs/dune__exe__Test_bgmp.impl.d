test/test_bgmp.ml: Alcotest Array Bgmp_fabric Bgmp_msg Bgmp_router Domain Engine Gen Host_ref Ipv4 List Migp Option Printf QCheck QCheck_alcotest Rng Spf Topo
