test/test_baselines.ml: Alcotest Array Baselines Bgmp_fabric Domain Engine Gen Host_ref Ipv4 Kampai List Prefix QCheck QCheck_alcotest Rng Spf Time Topo
