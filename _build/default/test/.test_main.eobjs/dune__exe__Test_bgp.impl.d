test/test_bgp.ml: Alcotest Array Bgp_network Domain Engine Format Gen Ipv4 List Prefix Printf QCheck QCheck_alcotest Rng Route Speaker String Topo Update
