test/test_conformance.ml: Alcotest Bgmp_fabric Bgmp_router Domain Engine Gen Host_ref Ipv4 List Migp Option Topo
