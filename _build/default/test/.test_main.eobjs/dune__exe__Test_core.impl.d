test/test_core.ml: Alcotest Array Bgmp_fabric Domain Engine Gen Hashtbl Host_ref Internet Ipv4 List Maas Masc_node Option Prefix Printf Rng Route Speaker Spf Time Topo Trace
