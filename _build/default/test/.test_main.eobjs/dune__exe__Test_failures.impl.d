test/test_failures.ml: Alcotest Bgmp_fabric Bgp_network Domain Engine Host_ref Internet Ipv4 List Maas Prefix Speaker Spf Time Topo
