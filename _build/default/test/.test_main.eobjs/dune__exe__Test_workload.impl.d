test/test_workload.ml: Alcotest Bgmp_fabric Demand Engine Gen Host_ref Internet List Membership Migp Option Printf Rng Scenario Spf Stats Time Topo
