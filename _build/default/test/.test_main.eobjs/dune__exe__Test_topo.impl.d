test/test_topo.ml: Alcotest Array Domain Gen Host_ref List Option QCheck QCheck_alcotest Rng Spf Time Topo
