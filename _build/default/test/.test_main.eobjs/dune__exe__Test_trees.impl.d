test/test_trees.ml: Alcotest Array Domain Gen List Path_eval Printf QCheck QCheck_alcotest Rng Shared_tree Spf Stats Topo Tree_experiment
