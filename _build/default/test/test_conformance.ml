(* Conformance to the paper's §5.2/§5.3 walkthrough, router by router.

   The paper's Figure-3 narrative fixes the exact forwarding state:

     "C1 looks up 224.0.128.1 in its G-RIB, finds (224.0.0.0/16, A2),
      and creates a multicast-group forwarding entry ... the parent
      target is A2 and the only child target is its MIGP component."
     "A2 ... instantiates a (*,G) entry with the MIGP component to
      reach A3 as the parent target and C1 as the child target."
     "A3 creates a (*,G) entry with the MIGP component as the child
      target ... The parent target is B1."
     "B1 ... creates a (*,G) entry with its MIGP component as the
      parent target (since it has no BGP next hop) and A3 as the child
      target."

   We reproduce the routing exactly as the paper describes it (C's
   G-RIB holds only A's aggregate, so C's join travels via A — the
   §4.2 aggregation at work) and assert every entry. *)

let check = Alcotest.check

let g = Ipv4.of_string "224.0.128.1"

(* The paper's Figure-3 G-RIB: B is the root; A holds the specific
   toward B; everyone else follows A's covering aggregate. *)
let paper_routes topo =
  let dom name = Option.get (Topo.find_by_name topo name) in
  let a = dom "A" and b = dom "B" and c = dom "C" in
  let f = dom "F" and g_ = dom "G" and h = dom "H" in
  fun d _group ->
    if d = b then Bgmp_fabric.Root_here
    else if d = a then Bgmp_fabric.Via b  (* A holds the specific toward B *)
    else if d = f then Bgmp_fabric.Via b  (* B's customer hears the specific *)
    else if d = g_ || d = h then Bgmp_fabric.Via c  (* C's customers follow C *)
    else Bgmp_fabric.Via a  (* C, D, E follow A's aggregate *)

let setup () =
  let topo = Gen.figure3 () in
  let engine = Engine.create () in
  let fabric = Bgmp_fabric.create ~engine ~topo ~route_to_root:(paper_routes topo) () in
  (topo, engine, fabric)

let dom topo name = Option.get (Topo.find_by_name topo name)

let router fabric topo ~of_ ~toward =
  match Bgmp_fabric.router_toward fabric (dom topo of_) (dom topo toward) with
  | Some r -> r
  | None -> Alcotest.failf "no %s router toward %s" of_ toward

let entry_of r =
  match Bgmp_router.star_entry r g with
  | Some e -> e
  | None -> Alcotest.failf "router %s has no (*,G) entry" (Bgmp_router.name r)

let test_paper_join_state_from_c () =
  let topo, engine, fabric = setup () in
  (* "When a host in domain C now joins this group..." *)
  Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom topo "C") 0) ~group:g;
  Engine.run_until_idle engine;
  (* C1: C's border router toward A (the best exit per the aggregate). *)
  let c1 = router fabric topo ~of_:"C" ~toward:"A" in
  let a2 = router fabric topo ~of_:"A" ~toward:"C" in
  let a3 = router fabric topo ~of_:"A" ~toward:"B" in
  let b1 = router fabric topo ~of_:"B" ~toward:"A" in
  (* C1: parent = A2, children = [MIGP]. *)
  let e_c1 = entry_of c1 in
  check Alcotest.bool "C1 parent is A2" true
    (e_c1.Bgmp_router.parent = Some (Bgmp_router.Peer (Bgmp_router.id a2)));
  check Alcotest.bool "C1 child is its MIGP component" true
    (e_c1.Bgmp_router.children = [ Bgmp_router.Migp_target ]);
  (* A2: parent = MIGP component (toward A3), child = C1. *)
  let e_a2 = entry_of a2 in
  check Alcotest.bool "A2 parent is the MIGP component (toward A3)" true
    (e_a2.Bgmp_router.parent = Some Bgmp_router.Migp_target);
  check Alcotest.bool "A2 child is C1" true
    (e_a2.Bgmp_router.children = [ Bgmp_router.Peer (Bgmp_router.id c1) ]);
  (* A3: parent = B1, child = MIGP. *)
  let e_a3 = entry_of a3 in
  check Alcotest.bool "A3 parent is B1" true
    (e_a3.Bgmp_router.parent = Some (Bgmp_router.Peer (Bgmp_router.id b1)));
  check Alcotest.bool "A3 child is the MIGP component" true
    (e_a3.Bgmp_router.children = [ Bgmp_router.Migp_target ]);
  (* B1 (root domain): parent = MIGP (no BGP next hop), child = A3. *)
  let e_b1 = entry_of b1 in
  check Alcotest.bool "B1 parent is its MIGP component" true
    (e_b1.Bgmp_router.parent = Some Bgmp_router.Migp_target);
  check Alcotest.bool "B1 child is A3" true
    (e_b1.Bgmp_router.children = [ Bgmp_router.Peer (Bgmp_router.id a3) ])

let test_paper_data_from_e () =
  (* "Suppose a host in domain E that has no members of the group sends
     data ... the data packets thus reach group members in domains B,
     C, D, F and H along the shared tree." *)
  let topo, engine, fabric = setup () in
  List.iter
    (fun n -> Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom topo n) 0) ~group:g)
    [ "B"; "C"; "D"; "F"; "H" ];
  Engine.run_until_idle engine;
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make (dom topo "E") 9) ~group:g in
  Engine.run_until_idle engine;
  let got =
    List.sort compare
      (List.map
         (fun (h, _) -> (Topo.domain topo h.Host_ref.host_domain).Domain.name)
         (Bgmp_fabric.deliveries fabric ~payload:p))
  in
  check (Alcotest.list Alcotest.string) "members in B, C, D, F and H" [ "B"; "C"; "D"; "F"; "H" ]
    got;
  check Alcotest.int "no duplicates" 0 (Bgmp_fabric.duplicate_deliveries fabric)

let test_paper_branch_from_f () =
  (* §5.3's walkthrough: source S in D; F's data arrives over the tree
     via F1 (B side) but F's shortest path to S is via F2 (A side):
     encapsulation, then an (S,G) branch terminating at a router on the
     shared tree, then a source-specific prune of the tree copies. *)
  let topo, engine, fabric = setup () in
  List.iter
    (fun n -> Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom topo n) 0) ~group:g)
    [ "B"; "C"; "D"; "F"; "H" ];
  Engine.run_until_idle engine;
  let s = Host_ref.make (dom topo "D") 3 in
  ignore (Bgmp_fabric.send fabric ~source:s ~group:g);
  Engine.run_until_idle engine;
  check Alcotest.bool "encapsulation happened in F" true
    (Migp.encapsulations (Bgmp_fabric.migp_of fabric (dom topo "F")) > 0);
  (* "Once it begins receiving data from A4, F2 sends a source-specific
     prune to F1": the branch carries data from the second packet on,
     which is when the suppression lands. *)
  ignore (Bgmp_fabric.send fabric ~source:s ~group:g);
  Engine.run_until_idle engine;
  (* F2 = F's router toward A; it must now hold branch (S,G) state with
     its MIGP component as a child. *)
  let f2 = router fabric topo ~of_:"F" ~toward:"A" in
  (match Bgmp_router.sg_entry f2 s g with
  | Some v ->
      check Alcotest.bool "F2's (S,G) feeds F's interior" true
        (List.mem Bgmp_router.Migp_target v.Bgmp_router.view_targets)
  | None -> Alcotest.fail "F2 lacks (S,G) state");
  (* F1 = F's router toward B: the shared-tree copies were pruned — its
     (S,G) suppression state exists. *)
  let f1 = router fabric topo ~of_:"F" ~toward:"B" in
  (match Bgmp_router.sg_entry f1 s g with
  | Some v ->
      check Alcotest.bool "F1 suppresses S's shared-tree copies" true
        (v.Bgmp_router.view_removed <> [] || v.Bgmp_router.view_targets = [])
  | None -> Alcotest.fail "F1 lacks (S,G) suppression state");
  (* Steady state: S's next packet reaches F in 2 hops (D-A-F). *)
  let p = Bgmp_fabric.send fabric ~source:s ~group:g in
  Engine.run_until_idle engine;
  let f_hops =
    List.filter_map
      (fun (h, hops) -> if h.Host_ref.host_domain = dom topo "F" then Some hops else None)
      (Bgmp_fabric.deliveries fabric ~payload:p)
  in
  check (Alcotest.list Alcotest.int) "F served via the branch (2 hops)" [ 2 ] f_hops

let test_paper_teardown () =
  (* "When a BGMP router or an MIGP component no longer leads to any
     group members ... the multicast distribution tree is torn down as
     members leave the group." *)
  let topo, engine, fabric = setup () in
  List.iter
    (fun n -> Bgmp_fabric.host_join fabric ~host:(Host_ref.make (dom topo n) 0) ~group:g)
    [ "C"; "D" ];
  Engine.run_until_idle engine;
  List.iter
    (fun n -> Bgmp_fabric.host_leave fabric ~host:(Host_ref.make (dom topo n) 0) ~group:g)
    [ "C"; "D" ];
  Engine.run_until_idle engine;
  check (Alcotest.list Alcotest.int) "tree fully dismantled" []
    (List.filter
       (fun d ->
         List.exists (fun r -> Bgmp_router.on_tree r g) (Bgmp_fabric.routers_of fabric d))
       (List.map (fun (d : Domain.t) -> d.Domain.id) (Topo.domains topo)))

let suite =
  [
    ("paper join state from C (fig 3a)", `Quick, test_paper_join_state_from_c);
    ("paper data from E (fig 3a)", `Quick, test_paper_data_from_e);
    ("paper branch from F (fig 3b)", `Quick, test_paper_branch_from_f);
    ("paper teardown", `Quick, test_paper_teardown);
  ]
