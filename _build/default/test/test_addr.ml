(* Tests for mcast_addr: addresses, prefixes, the trie, and the
   free-space decomposition the MASC claim algorithm searches. *)

let check = Alcotest.check

let prefix_testable = Alcotest.testable Prefix.pp Prefix.equal

let p = Prefix.of_string

(* --- Ipv4 ----------------------------------------------------------- *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> check Alcotest.string "roundtrip" s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "224.0.0.1"; "255.255.255.255"; "10.1.2.3" ]

let test_ipv4_of_octets () =
  check Alcotest.int "224.0.0.0" 0xE0000000 (Ipv4.of_octets 224 0 0 0);
  Alcotest.check_raises "octet range" (Invalid_argument "Ipv4.of_octets: octet out of range")
    (fun () -> ignore (Ipv4.of_octets 256 0 0 0))

let test_ipv4_parse_errors () =
  List.iter
    (fun s ->
      check (Alcotest.option Alcotest.int) (Printf.sprintf "reject %S" s) None
        (Ipv4.of_string_opt s))
    [ ""; "1.2.3"; "1.2.3.4.5"; "a.b.c.d"; "1.2.3.256"; "1.2.3.-1"; "1..2.3" ]

let test_ipv4_is_multicast () =
  check Alcotest.bool "224.0.0.0 multicast" true (Ipv4.is_multicast (Ipv4.of_string "224.0.0.0"));
  check Alcotest.bool "239.255.0.1 multicast" true
    (Ipv4.is_multicast (Ipv4.of_string "239.255.0.1"));
  check Alcotest.bool "223.x not" false (Ipv4.is_multicast (Ipv4.of_string "223.255.255.255"));
  check Alcotest.bool "240.x not" false (Ipv4.is_multicast (Ipv4.of_string "240.0.0.0"))

(* --- Prefix --------------------------------------------------------- *)

let test_prefix_parse () =
  check prefix_testable "parse /24" (Prefix.make (Ipv4.of_string "224.0.1.0") 24) (p "224.0.1.0/24");
  check prefix_testable "bare address is /32" (Prefix.make (Ipv4.of_string "10.0.0.1") 32)
    (p "10.0.0.1");
  check prefix_testable "masking applied" (p "224.0.1.0/24") (p "224.0.1.99/24");
  check (Alcotest.option prefix_testable) "bad length" None (Prefix.of_string_opt "1.2.3.4/33")

let test_prefix_make_exact () =
  Alcotest.check_raises "host bits rejected" (Invalid_argument "Prefix.make_exact: host bits set")
    (fun () -> ignore (Prefix.make_exact (Ipv4.of_string "224.0.1.1") 24))

let test_prefix_size_last () =
  check Alcotest.int "/24 size" 256 (Prefix.size (p "224.0.1.0/24"));
  check Alcotest.int "/32 size" 1 (Prefix.size (p "1.2.3.4/32"));
  check Alcotest.string "last of /24" "224.0.1.255" (Ipv4.to_string (Prefix.last (p "224.0.1.0/24")))

let test_prefix_mem () =
  check Alcotest.bool "member" true (Prefix.mem (Ipv4.of_string "224.0.1.77") (p "224.0.1.0/24"));
  check Alcotest.bool "non member" false (Prefix.mem (Ipv4.of_string "224.0.2.0") (p "224.0.1.0/24"))

let test_prefix_subsumes_overlaps () =
  check Alcotest.bool "subsumes" true (Prefix.subsumes (p "224.0.0.0/16") (p "224.0.128.0/24"));
  check Alcotest.bool "not subsumed" false (Prefix.subsumes (p "224.0.128.0/24") (p "224.0.0.0/16"));
  check Alcotest.bool "reflexive" true (Prefix.subsumes (p "224.0.0.0/16") (p "224.0.0.0/16"));
  check Alcotest.bool "overlaps symmetric" true
    (Prefix.overlaps (p "224.0.128.0/24") (p "224.0.0.0/16"));
  check Alcotest.bool "disjoint" false (Prefix.overlaps (p "224.0.0.0/24") (p "224.0.1.0/24"))

let test_prefix_split_buddy_parent () =
  let lo, hi = Prefix.split (p "224.0.0.0/23") in
  check prefix_testable "lower half" (p "224.0.0.0/24") lo;
  check prefix_testable "upper half" (p "224.0.1.0/24") hi;
  check prefix_testable "buddy of lower" hi (Prefix.buddy lo);
  check prefix_testable "buddy of upper" lo (Prefix.buddy hi);
  check prefix_testable "parent" (p "224.0.0.0/23") (Prefix.parent lo);
  check prefix_testable "double = parent" (Prefix.parent hi) (Prefix.double hi)

let test_prefix_subprefixes () =
  check prefix_testable "first /24 of /22" (p "224.0.0.0/24")
    (Prefix.first_subprefix (p "224.0.0.0/22") 24);
  check Alcotest.int "four /24 in /22" 4 (Prefix.subprefix_count (p "224.0.0.0/22") 24);
  check prefix_testable "third /24" (p "224.0.2.0/24") (Prefix.nth_subprefix (p "224.0.0.0/22") 24 2);
  Alcotest.check_raises "nth out of range"
    (Invalid_argument "Prefix.nth_subprefix: index out of range") (fun () ->
      ignore (Prefix.nth_subprefix (p "224.0.0.0/22") 24 4))

let test_prefix_mask_for_count () =
  check Alcotest.int "1024 -> /22" 22 (Prefix.mask_for_count 1024);
  check Alcotest.int "1025 -> /21" 21 (Prefix.mask_for_count 1025);
  check Alcotest.int "1 -> /32" 32 (Prefix.mask_for_count 1);
  check Alcotest.int "256 -> /24" 24 (Prefix.mask_for_count 256)

let test_prefix_aggregate_buddies () =
  check (Alcotest.list prefix_testable) "buddy merge" [ p "224.0.0.0/23" ]
    (Prefix.aggregate [ p "224.0.0.0/24"; p "224.0.1.0/24" ]);
  check (Alcotest.list prefix_testable) "cascade merge" [ p "224.0.0.0/22" ]
    (Prefix.aggregate [ p "224.0.0.0/24"; p "224.0.1.0/24"; p "224.0.2.0/24"; p "224.0.3.0/24" ]);
  check (Alcotest.list prefix_testable) "subsumed dropped" [ p "224.0.0.0/16" ]
    (Prefix.aggregate [ p "224.0.0.0/16"; p "224.0.128.0/24" ]);
  check (Alcotest.list prefix_testable) "non-buddies kept"
    [ p "224.0.1.0/24"; p "224.0.2.0/24" ]
    (Prefix.aggregate [ p "224.0.2.0/24"; p "224.0.1.0/24" ])

let test_prefix_addr_offset () =
  check Alcotest.string "offset 5" "224.0.1.5" (Ipv4.to_string (Prefix.addr_offset (p "224.0.1.0/24") 5));
  Alcotest.check_raises "offset out of range" (Invalid_argument "Prefix.addr_offset: out of range")
    (fun () -> ignore (Prefix.addr_offset (p "224.0.1.0/24") 256))

let prop_split_partitions =
  QCheck.Test.make ~name:"split halves partition the prefix" ~count:300
    QCheck.(pair (int_bound 0xFFFFFF) (int_range 4 31))
    (fun (base, len) ->
      let pre = Prefix.make (base lsl 8) len in
      let lo, hi = Prefix.split pre in
      Prefix.size lo + Prefix.size hi = Prefix.size pre
      && Prefix.subsumes pre lo && Prefix.subsumes pre hi
      && not (Prefix.overlaps lo hi))

let prop_aggregate_preserves_coverage =
  (* The minimal cover covers exactly the same addresses. *)
  let gen =
    QCheck.make
      ~print:(fun l -> String.concat " " (List.map Prefix.to_string l))
      QCheck.Gen.(
        list_size (1 -- 8)
          (map2
             (fun base len ->
               let len = 20 + (len mod 8) in
               Prefix.make (0xE0000000 lor (base land 0x00FFFF00)) len)
             (int_bound 0xFFFFFF) (int_bound 7)))
  in
  QCheck.Test.make ~name:"aggregate preserves address coverage" ~count:200 gen (fun prefixes ->
      let aggregated = Prefix.aggregate prefixes in
      let covered_by set addr = List.exists (Prefix.mem addr) set in
      (* Check boundary addresses of every input and output prefix. *)
      let probes =
        List.concat_map (fun q -> [ Prefix.base q; Prefix.last q ]) (prefixes @ aggregated)
      in
      List.for_all (fun a -> covered_by prefixes a = covered_by aggregated a) probes)

let prop_aggregate_minimal =
  QCheck.Test.make ~name:"aggregate output has no mergeable pair" ~count:200
    QCheck.(list_of_size Gen.(1 -- 8) (int_bound 255))
    (fun bases ->
      let prefixes = List.map (fun b -> Prefix.make (0xE0000000 lor (b lsl 8)) 24) bases in
      let out = Prefix.aggregate prefixes in
      let rec no_merge = function
        | a :: b :: rest -> Prefix.aggregate2 a b = None && no_merge (b :: rest)
        | [ _ ] | [] -> true
      in
      no_merge out)

(* --- Prefix_trie ---------------------------------------------------- *)

let test_trie_exact () =
  let t = Prefix_trie.create () in
  Prefix_trie.add t (p "224.0.0.0/16") "a";
  Prefix_trie.add t (p "224.0.128.0/24") "b";
  check (Alcotest.option Alcotest.string) "find /16" (Some "a")
    (Prefix_trie.find_exact t (p "224.0.0.0/16"));
  check (Alcotest.option Alcotest.string) "find /24" (Some "b")
    (Prefix_trie.find_exact t (p "224.0.128.0/24"));
  check (Alcotest.option Alcotest.string) "missing" None
    (Prefix_trie.find_exact t (p "224.0.0.0/24"));
  check Alcotest.int "cardinal" 2 (Prefix_trie.cardinal t)

let test_trie_replace () =
  let t = Prefix_trie.create () in
  Prefix_trie.add t (p "224.0.0.0/16") 1;
  Prefix_trie.add t (p "224.0.0.0/16") 2;
  check Alcotest.int "replaced, not duplicated" 1 (Prefix_trie.cardinal t);
  check (Alcotest.option Alcotest.int) "new value" (Some 2)
    (Prefix_trie.find_exact t (p "224.0.0.0/16"))

let test_trie_longest_match () =
  let t = Prefix_trie.create () in
  Prefix_trie.add t (p "224.0.0.0/16") "aggregate";
  Prefix_trie.add t (p "224.0.128.0/24") "specific";
  (match Prefix_trie.longest_match t (Ipv4.of_string "224.0.128.7") with
  | Some (pre, v) ->
      check prefix_testable "matched /24" (p "224.0.128.0/24") pre;
      check Alcotest.string "specific wins" "specific" v
  | None -> Alcotest.fail "expected match");
  (match Prefix_trie.longest_match t (Ipv4.of_string "224.0.5.1") with
  | Some (pre, _) -> check prefix_testable "fell back to /16" (p "224.0.0.0/16") pre
  | None -> Alcotest.fail "expected aggregate match");
  check Alcotest.bool "no match outside" true
    (Prefix_trie.longest_match t (Ipv4.of_string "225.0.0.1") = None)

let test_trie_remove_prunes () =
  let t = Prefix_trie.create () in
  Prefix_trie.add t (p "224.0.128.0/24") 1;
  Prefix_trie.remove t (p "224.0.128.0/24");
  check Alcotest.bool "empty" true (Prefix_trie.is_empty t);
  (* removing a missing prefix is a no-op *)
  Prefix_trie.remove t (p "224.0.128.0/24");
  check Alcotest.int "still empty" 0 (Prefix_trie.cardinal t)

let test_trie_remove_keeps_others () =
  let t = Prefix_trie.create () in
  Prefix_trie.add t (p "224.0.0.0/16") 1;
  Prefix_trie.add t (p "224.0.128.0/24") 2;
  Prefix_trie.remove t (p "224.0.0.0/16");
  check (Alcotest.option Alcotest.int) "sibling survives" (Some 2)
    (Prefix_trie.find_exact t (p "224.0.128.0/24"));
  check (Alcotest.option Alcotest.int) "removed" None (Prefix_trie.find_exact t (p "224.0.0.0/16"))

let test_trie_to_list_order () =
  let t = Prefix_trie.create () in
  List.iter
    (fun (s, v) -> Prefix_trie.add t (p s) v)
    [ ("224.0.128.0/24", 3); ("224.0.0.0/16", 1); ("224.0.64.0/24", 2) ]
  ;
  let keys = List.map fst (Prefix_trie.to_list t) in
  check (Alcotest.list prefix_testable) "prefix order"
    [ p "224.0.0.0/16"; p "224.0.64.0/24"; p "224.0.128.0/24" ]
    keys

let test_trie_covered_by () =
  let t = Prefix_trie.create () in
  List.iter (fun s -> Prefix_trie.add t (p s) ()) [ "224.0.0.0/24"; "224.0.1.0/24"; "225.0.0.0/24" ];
  let covered = List.map fst (Prefix_trie.covered_by t (p "224.0.0.0/16")) in
  check (Alcotest.list prefix_testable) "covered set" [ p "224.0.0.0/24"; p "224.0.1.0/24" ] covered

let prop_trie_matches_naive_longest_match =
  let gen =
    QCheck.make
      ~print:(fun (l, a) ->
        Printf.sprintf "[%s] %s"
          (String.concat " " (List.map Prefix.to_string l))
          (Ipv4.to_string a))
      QCheck.Gen.(
        pair
          (list_size (1 -- 12)
             (map2
                (fun base len -> Prefix.make (0xE0000000 lor (base land 0xFFFFFF)) (8 + (len mod 25)))
                (int_bound 0xFFFFFF) (int_bound 24)))
          (map (fun a -> 0xE0000000 lor (a land 0xFFFFFF)) (int_bound 0xFFFFFF)))
  in
  QCheck.Test.make ~name:"trie longest match equals naive scan" ~count:300 gen (fun (l, addr) ->
      let t = Prefix_trie.create () in
      List.iter (fun pre -> Prefix_trie.add t pre ()) l;
      let naive =
        List.fold_left
          (fun acc pre ->
            if Prefix.mem addr pre then
              match acc with
              | Some best when Prefix.len best >= Prefix.len pre -> acc
              | Some _ | None -> Some pre
            else acc)
          None l
      in
      Option.map fst (Prefix_trie.longest_match t addr) = naive)

(* --- Free_space ------------------------------------------------------ *)

let test_free_blocks_paper_example () =
  (* The example in §4.3.3: with 224.0.1/24 and 239/8 allocated out of
     224/4, the shortest-mask free blocks are 228/6 and 232/6. *)
  let blocks =
    Free_space.shortest_mask_blocks ~parent:Prefix.class_d
      ~allocated:[ p "224.0.1.0/24"; p "239.0.0.0/8" ]
  in
  check (Alcotest.list prefix_testable) "228/6 and 232/6" [ p "228.0.0.0/6"; p "232.0.0.0/6" ]
    blocks

let test_free_blocks_empty_and_full () =
  check (Alcotest.list prefix_testable) "nothing allocated -> whole parent" [ p "224.0.0.0/16" ]
    (Free_space.free_blocks ~parent:(p "224.0.0.0/16") ~allocated:[]);
  check (Alcotest.list prefix_testable) "fully allocated -> nothing" []
    (Free_space.free_blocks ~parent:(p "224.0.0.0/16") ~allocated:[ p "224.0.0.0/16" ]);
  check (Alcotest.list prefix_testable) "covering claim -> nothing" []
    (Free_space.free_blocks ~parent:(p "224.0.0.0/16") ~allocated:[ p "224.0.0.0/8" ])

let test_free_blocks_ignores_outside () =
  check (Alcotest.list prefix_testable) "outside claims ignored" [ p "224.0.0.0/16" ]
    (Free_space.free_blocks ~parent:(p "224.0.0.0/16") ~allocated:[ p "225.0.0.0/16" ])

let test_is_free () =
  let allocated = [ p "224.0.0.0/24" ] in
  check Alcotest.bool "free block" true
    (Free_space.is_free ~parent:(p "224.0.0.0/16") ~allocated (p "224.0.1.0/24"));
  check Alcotest.bool "allocated block" false
    (Free_space.is_free ~parent:(p "224.0.0.0/16") ~allocated (p "224.0.0.0/24"));
  check Alcotest.bool "overlapping block" false
    (Free_space.is_free ~parent:(p "224.0.0.0/16") ~allocated (p "224.0.0.0/23"));
  check Alcotest.bool "outside parent" false
    (Free_space.is_free ~parent:(p "224.0.0.0/16") ~allocated (p "225.0.0.0/24"))

let test_candidates () =
  let cands =
    Free_space.candidates ~parent:(p "224.0.0.0/16") ~allocated:[ p "224.0.0.0/17" ] ~want_len:24
  in
  check (Alcotest.list prefix_testable) "first /24 of the free half" [ p "224.0.128.0/24" ] cands;
  check (Alcotest.list prefix_testable) "no room for /15" []
    (Free_space.candidates ~parent:(p "224.0.0.0/16") ~allocated:[] ~want_len:15)

let test_free_count () =
  check Alcotest.int "half free" 32768
    (Free_space.free_count ~parent:(p "224.0.0.0/16") ~allocated:[ p "224.0.0.0/17" ]);
  check Alcotest.int "all free" 65536 (Free_space.free_count ~parent:(p "224.0.0.0/16") ~allocated:[])

let prop_free_blocks_disjoint_and_complete =
  let gen =
    QCheck.make
      ~print:(fun l -> String.concat " " (List.map Prefix.to_string l))
      QCheck.Gen.(
        list_size (0 -- 10)
          (map2
             (fun base len -> Prefix.make (0xE0000000 lor (base land 0x00FFFF00)) (18 + (len mod 10)))
             (int_bound 0xFFFFFF) (int_bound 9)))
  in
  QCheck.Test.make ~name:"free blocks are disjoint from claims and cover the rest" ~count:200 gen
    (fun allocated ->
      let parent = p "224.0.0.0/12" in
      let blocks = Free_space.free_blocks ~parent ~allocated in
      let disjoint_from_claims =
        List.for_all
          (fun b -> not (List.exists (fun c -> Prefix.overlaps b c) allocated))
          blocks
      in
      let blocks_disjoint =
        let rec pairwise = function
          | [] -> true
          | b :: rest -> (not (List.exists (Prefix.overlaps b) rest)) && pairwise rest
        in
        pairwise blocks
      in
      let count_ok =
        let inside =
          List.fold_left
            (fun acc c ->
              if Prefix.overlaps parent c then
                acc + Prefix.size (if Prefix.subsumes parent c then c else parent)
              else acc)
            0
            (Prefix.aggregate allocated)
        in
        Free_space.free_count ~parent ~allocated = Prefix.size parent - inside
      in
      disjoint_from_claims && blocks_disjoint && count_ok)

let suite =
  [
    ("ipv4 roundtrip", `Quick, test_ipv4_roundtrip);
    ("ipv4 of_octets", `Quick, test_ipv4_of_octets);
    ("ipv4 parse errors", `Quick, test_ipv4_parse_errors);
    ("ipv4 is_multicast", `Quick, test_ipv4_is_multicast);
    ("prefix parse", `Quick, test_prefix_parse);
    ("prefix make_exact", `Quick, test_prefix_make_exact);
    ("prefix size/last", `Quick, test_prefix_size_last);
    ("prefix mem", `Quick, test_prefix_mem);
    ("prefix subsumes/overlaps", `Quick, test_prefix_subsumes_overlaps);
    ("prefix split/buddy/parent", `Quick, test_prefix_split_buddy_parent);
    ("prefix subprefixes", `Quick, test_prefix_subprefixes);
    ("prefix mask_for_count", `Quick, test_prefix_mask_for_count);
    ("prefix aggregate buddies", `Quick, test_prefix_aggregate_buddies);
    ("prefix addr_offset", `Quick, test_prefix_addr_offset);
    QCheck_alcotest.to_alcotest prop_split_partitions;
    QCheck_alcotest.to_alcotest prop_aggregate_preserves_coverage;
    QCheck_alcotest.to_alcotest prop_aggregate_minimal;
    ("trie exact", `Quick, test_trie_exact);
    ("trie replace", `Quick, test_trie_replace);
    ("trie longest match", `Quick, test_trie_longest_match);
    ("trie remove prunes", `Quick, test_trie_remove_prunes);
    ("trie remove keeps others", `Quick, test_trie_remove_keeps_others);
    ("trie to_list order", `Quick, test_trie_to_list_order);
    ("trie covered_by", `Quick, test_trie_covered_by);
    QCheck_alcotest.to_alcotest prop_trie_matches_naive_longest_match;
    ("free blocks paper example", `Quick, test_free_blocks_paper_example);
    ("free blocks empty/full", `Quick, test_free_blocks_empty_and_full);
    ("free blocks ignores outside", `Quick, test_free_blocks_ignores_outside);
    ("is_free", `Quick, test_is_free);
    ("candidates", `Quick, test_candidates);
    ("free count", `Quick, test_free_count);
    QCheck_alcotest.to_alcotest prop_free_blocks_disjoint_and_complete;
  ]
