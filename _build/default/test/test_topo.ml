(* Tests for mcast_topo: the domain graph, shortest paths, generators. *)

let check = Alcotest.check

let test_build_and_accessors () =
  let t = Topo.create () in
  let a = Topo.add_domain t ~name:"A" ~kind:Domain.Backbone in
  let b = Topo.add_domain t ~name:"B" ~kind:Domain.Regional in
  let c = Topo.add_domain t ~name:"C" ~kind:Domain.Stub in
  Topo.add_link t a b Topo.Provider_customer;
  Topo.add_link t b c Topo.Provider_customer;
  check Alcotest.int "domain count" 3 (Topo.domain_count t);
  check Alcotest.int "link count" 2 (Topo.link_count t);
  check Alcotest.string "name" "B" (Topo.domain t b).Domain.name;
  check (Alcotest.option Alcotest.int) "find by name" (Some b) (Topo.find_by_name t "B");
  check (Alcotest.list Alcotest.int) "neighbors of b" [ a; c ] (Topo.neighbors t b);
  check Alcotest.int "degree" 2 (Topo.degree t b);
  check (Alcotest.list Alcotest.int) "providers of b" [ a ] (Topo.providers_of t b);
  check (Alcotest.list Alcotest.int) "customers of b" [ c ] (Topo.customers_of t b);
  check (Alcotest.list Alcotest.int) "peers of b" [] (Topo.peers_of t b);
  check Alcotest.bool "connected" true (Topo.is_connected t)

let test_rejects_bad_links () =
  let t = Topo.create () in
  let a = Topo.add_domain t ~name:"A" ~kind:Domain.Stub in
  let b = Topo.add_domain t ~name:"B" ~kind:Domain.Stub in
  Topo.add_link t a b Topo.Peer;
  Alcotest.check_raises "self link" (Invalid_argument "Topo.add_link: self-link") (fun () ->
      Topo.add_link t a a Topo.Peer);
  Alcotest.check_raises "duplicate link" (Invalid_argument "Topo.add_link: duplicate link")
    (fun () -> Topo.add_link t b a Topo.Peer)

let test_disconnected_detected () =
  let t = Topo.create () in
  ignore (Topo.add_domain t ~name:"A" ~kind:Domain.Stub);
  ignore (Topo.add_domain t ~name:"B" ~kind:Domain.Stub);
  check Alcotest.bool "disconnected" false (Topo.is_connected t)

(* --- Spf ------------------------------------------------------------- *)

let test_bfs_line () =
  let t = Gen.line ~n:5 in
  let paths = Spf.bfs t 0 in
  check Alcotest.int "dist to end" 4 (Spf.dist paths 4);
  check (Alcotest.list Alcotest.int) "path" [ 0; 1; 2; 3; 4 ] (Spf.path paths 4);
  check (Alcotest.option Alcotest.int) "next hop toward src" (Some 1) (Spf.next_hop_toward t paths 2);
  check (Alcotest.option Alcotest.int) "next hop at src" None (Spf.next_hop_toward t paths 0)

let test_bfs_unreachable () =
  let t = Topo.create () in
  let a = Topo.add_domain t ~name:"A" ~kind:Domain.Stub in
  let b = Topo.add_domain t ~name:"B" ~kind:Domain.Stub in
  let paths = Spf.bfs t a in
  check Alcotest.int "unreachable" max_int (Spf.dist paths b);
  check (Alcotest.list Alcotest.int) "empty path" [] (Spf.path paths b)

let test_dijkstra_prefers_low_delay () =
  (* Triangle where the direct link is slow and the two-hop path fast. *)
  let t = Topo.create () in
  let a = Topo.add_domain t ~name:"A" ~kind:Domain.Stub in
  let b = Topo.add_domain t ~name:"B" ~kind:Domain.Stub in
  let c = Topo.add_domain t ~name:"C" ~kind:Domain.Stub in
  Topo.add_link ~delay:(Time.seconds 1.0) t a c Topo.Peer;
  Topo.add_link ~delay:(Time.seconds 0.1) t a b Topo.Peer;
  Topo.add_link ~delay:(Time.seconds 0.1) t b c Topo.Peer;
  let w = Spf.dijkstra t a in
  check (Alcotest.float 1e-9) "via b" 0.2 w.Spf.wdist.(c);
  check (Alcotest.list Alcotest.int) "weighted path" [ a; b; c ] (Spf.wpath w c)

let test_valley_free () =
  (* A provider chain with a peer shortcut:
       P1 -- peer -- P2
       |             |
       C1            C2
     C1 to C2 must go up, across the single peer link, and down (3 hops).
     C1-C2 also have a *direct* peer link in the second topology. *)
  let t = Topo.create () in
  let p1 = Topo.add_domain t ~name:"P1" ~kind:Domain.Backbone in
  let p2 = Topo.add_domain t ~name:"P2" ~kind:Domain.Backbone in
  let c1 = Topo.add_domain t ~name:"C1" ~kind:Domain.Stub in
  let c2 = Topo.add_domain t ~name:"C2" ~kind:Domain.Stub in
  Topo.add_link t p1 p2 Topo.Peer;
  Topo.add_link t p1 c1 Topo.Provider_customer;
  Topo.add_link t p2 c2 Topo.Provider_customer;
  let d = Spf.valley_free_dist t c1 in
  check Alcotest.int "up-peer-down" 3 d.(c2);
  check Alcotest.int "to own provider" 1 d.(p1);
  (* A customer must not provide transit: two providers of the same
     customer cannot reach each other through it. *)
  let t2 = Topo.create () in
  let pa = Topo.add_domain t2 ~name:"PA" ~kind:Domain.Backbone in
  let pb = Topo.add_domain t2 ~name:"PB" ~kind:Domain.Backbone in
  let cu = Topo.add_domain t2 ~name:"CU" ~kind:Domain.Stub in
  Topo.add_link t2 pa cu Topo.Provider_customer;
  Topo.add_link t2 pb cu Topo.Provider_customer;
  let d2 = Spf.valley_free_dist t2 pa in
  check Alcotest.int "customer reached" 1 d2.(cu);
  check Alcotest.int "no valley transit" max_int d2.(pb)

(* --- Generators ------------------------------------------------------ *)

let test_power_law_shape () =
  let rng = Rng.create 1 in
  let t = Gen.power_law ~rng ~n:500 ~m:2 in
  check Alcotest.int "node count" 500 (Topo.domain_count t);
  check Alcotest.bool "connected" true (Topo.is_connected t);
  (* Preferential attachment: expect a heavy tail — some node much
     better connected than the median. *)
  let degrees = List.map (fun d -> Topo.degree t d.Domain.id) (Topo.domains t) in
  let max_deg = List.fold_left max 0 degrees in
  check Alcotest.bool "hub exists" true (max_deg > 20);
  check Alcotest.bool "deterministic given seed" true
    (Topo.link_count t = Topo.link_count (Gen.power_law ~rng:(Rng.create 1) ~n:500 ~m:2))

let test_power_law_rejects_bad_params () =
  Alcotest.check_raises "n <= m" (Invalid_argument "Gen.power_law: need n > m >= 1") (fun () ->
      ignore (Gen.power_law ~rng:(Rng.create 1) ~n:2 ~m:2))

let test_transit_stub_shape () =
  let rng = Rng.create 2 in
  let t = Gen.transit_stub ~rng ~backbones:3 ~regionals_per_backbone:4 ~stubs_per_regional:5 in
  check Alcotest.int "node count" (3 + (3 * 4) + (3 * 4 * 5)) (Topo.domain_count t);
  check Alcotest.bool "connected" true (Topo.is_connected t);
  let backbones = List.filter (fun d -> d.Domain.kind = Domain.Backbone) (Topo.domains t) in
  check Alcotest.int "backbones" 3 (List.length backbones)

let test_masc_hierarchy_shape () =
  let t = Gen.masc_hierarchy ~tops:4 ~children_per_top:3 in
  check Alcotest.int "node count" 16 (Topo.domain_count t);
  (* tops fully meshed: 6 peer links; 12 provider links *)
  check Alcotest.int "links" (6 + 12) (Topo.link_count t);
  let tops = List.filter (fun d -> d.Domain.kind = Domain.Backbone) (Topo.domains t) in
  List.iter
    (fun d -> check Alcotest.int "3 customers each" 3 (List.length (Topo.customers_of t d.Domain.id)))
    tops

let test_figure1_figure3 () =
  let f1 = Gen.figure1 () in
  check Alcotest.int "figure1 domains" 7 (Topo.domain_count f1);
  check Alcotest.bool "figure1 connected" true (Topo.is_connected f1);
  let f3 = Gen.figure3 () in
  check Alcotest.int "figure3 domains" 8 (Topo.domain_count f3);
  check (Alcotest.option Alcotest.int) "H exists" (Some 7) (Topo.find_by_name f3 "H");
  (* B is a customer of A in both. *)
  let a = Option.get (Topo.find_by_name f1 "A") and b = Option.get (Topo.find_by_name f1 "B") in
  check Alcotest.bool "A provides B" true (List.mem b (Topo.customers_of f1 a))

let test_star () =
  let t = Gen.star ~n:6 in
  check Alcotest.int "nodes" 6 (Topo.domain_count t);
  check Alcotest.int "hub degree" 5 (Topo.degree t 0);
  check Alcotest.int "customers of hub" 5 (List.length (Topo.customers_of t 0))

(* --- Host_ref --------------------------------------------------------- *)

let test_host_ref () =
  let h1 = Host_ref.make 3 0 and h2 = Host_ref.make 3 1 and h1' = Host_ref.make 3 0 in
  check Alcotest.bool "equal" true (Host_ref.equal h1 h1');
  check Alcotest.bool "not equal" false (Host_ref.equal h1 h2);
  check Alcotest.bool "ordered" true (Host_ref.compare h1 h2 < 0)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs satisfies triangle inequality over edges" ~count:50
    QCheck.(int_range 1 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let t = Gen.power_law ~rng ~n:60 ~m:2 in
      let paths = Spf.bfs t 0 in
      List.for_all
        (fun (l : Topo.link) ->
          let da = Spf.dist paths l.Topo.a and db = Spf.dist paths l.Topo.b in
          abs (da - db) <= 1)
        (Topo.links t))

let prop_path_endpoints_and_length =
  QCheck.Test.make ~name:"bfs path endpoints and length are consistent" ~count:50
    QCheck.(pair (int_range 1 10000) (int_range 0 59))
    (fun (seed, dst) ->
      let rng = Rng.create seed in
      let t = Gen.power_law ~rng ~n:60 ~m:2 in
      let paths = Spf.bfs t 0 in
      match Spf.path paths dst with
      | [] -> dst <> 0 && Spf.dist paths dst = max_int
      | path ->
          List.hd path = 0
          && List.nth path (List.length path - 1) = dst
          && List.length path = Spf.dist paths dst + 1)

let suite =
  [
    ("build and accessors", `Quick, test_build_and_accessors);
    ("rejects bad links", `Quick, test_rejects_bad_links);
    ("disconnected detected", `Quick, test_disconnected_detected);
    ("bfs line", `Quick, test_bfs_line);
    ("bfs unreachable", `Quick, test_bfs_unreachable);
    ("dijkstra prefers low delay", `Quick, test_dijkstra_prefers_low_delay);
    ("valley free", `Quick, test_valley_free);
    ("power law shape", `Quick, test_power_law_shape);
    ("power law rejects bad params", `Quick, test_power_law_rejects_bad_params);
    ("transit stub shape", `Quick, test_transit_stub_shape);
    ("masc hierarchy shape", `Quick, test_masc_hierarchy_shape);
    ("figure1/figure3", `Quick, test_figure1_figure3);
    ("star", `Quick, test_star);
    ("host ref", `Quick, test_host_ref);
    QCheck_alcotest.to_alcotest prop_bfs_triangle_inequality;
    QCheck_alcotest.to_alcotest prop_path_endpoints_and_length;
  ]
