(* Tests for the paper's §4.4 start-up scheme and §7 extensions:
   topology dumps, exchange-seeded top-level spaces, forwarding-state
   aggregation, remote address allocation, and MASC reparenting. *)

let check = Alcotest.check

let prefix_testable = Alcotest.testable Prefix.pp Prefix.equal

(* --- Topo_dump ---------------------------------------------------------- *)

let test_dump_roundtrip () =
  let topo = Gen.figure3 () in
  let text = Topo_dump.to_string topo in
  match Topo_dump.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok reloaded ->
      check Alcotest.int "same domain count" (Topo.domain_count topo)
        (Topo.domain_count reloaded);
      check Alcotest.int "same link count" (Topo.link_count topo) (Topo.link_count reloaded);
      List.iter2
        (fun (a : Domain.t) (b : Domain.t) ->
          check Alcotest.string "same name" a.Domain.name b.Domain.name;
          check Alcotest.bool "same kind" true (a.Domain.kind = b.Domain.kind))
        (Topo.domains topo) (Topo.domains reloaded);
      List.iter2
        (fun (la : Topo.link) (lb : Topo.link) ->
          check Alcotest.int "same a" la.Topo.a lb.Topo.a;
          check Alcotest.int "same b" la.Topo.b lb.Topo.b;
          check Alcotest.bool "same rel" true (la.Topo.rel = lb.Topo.rel);
          check (Alcotest.float 1e-9) "same delay" la.Topo.delay lb.Topo.delay)
        (Topo.links topo) (Topo.links reloaded)

let test_dump_parse_basics () =
  let text = "# comment\ndomain X backbone\ndomain Y stub # inline comment\nlink X Y provider 0.02\n" in
  match Topo_dump.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok topo ->
      check Alcotest.int "two domains" 2 (Topo.domain_count topo);
      check Alcotest.int "one link" 1 (Topo.link_count topo);
      let l = List.hd (Topo.links topo) in
      check (Alcotest.float 1e-9) "delay parsed" 0.02 (Time.to_seconds l.Topo.delay)

let test_dump_parse_errors () =
  let cases =
    [
      ("domain X nonsense\n", "unknown domain kind");
      ("link A B peer\n", "unknown domain");
      ("domain X stub\ndomain X stub\n", "duplicate domain");
      ("domain X stub\ndomain Y stub\nlink X Y friendship\n", "unknown relationship");
      ("domain X stub\ndomain Y stub\nlink X Y peer -1\n", "bad delay");
      ("frobnicate\n", "unknown record");
    ]
  in
  List.iter
    (fun (text, expected) ->
      match Topo_dump.of_string text with
      | Ok _ -> Alcotest.failf "expected failure for %S" text
      | Error e ->
          check Alcotest.bool
            (Printf.sprintf "error mentions %S (got %S)" expected e)
            true
            (let re = Str.regexp_string expected in
             try
               ignore (Str.search_forward re e 0);
               true
             with Not_found -> false))
    cases

let test_dump_file_io () =
  let topo = Gen.figure1 () in
  let path = Filename.temp_file "topo" ".dump" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topo_dump.save topo ~path;
      match Topo_dump.load ~path with
      | Ok t -> check Alcotest.int "roundtrip via file" 7 (Topo.domain_count t)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_dot_rendering () =
  let topo = Gen.figure1 () in
  let dot = Topo_dot.to_dot ~highlight:[ 0; 1 ] ~highlight_edges:[ (0, 1) ] ~label:"t" topo in
  check Alcotest.bool "digraph header" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle =
    let re = Str.regexp_string needle in
    try
      ignore (Str.search_forward re dot 0);
      true
    with Not_found -> false
  in
  check Alcotest.bool "every domain rendered" true
    (List.for_all (fun (d : Domain.t) -> contains (Printf.sprintf "n%d " d.Domain.id))
       (Topo.domains topo));
  check Alcotest.bool "highlight applied" true (contains "fillcolor");
  check Alcotest.bool "peer links dashed" true (contains "style=dashed");
  check Alcotest.bool "label present" true (contains "label=\"t\"");
  check Alcotest.bool "closed" true (String.length dot >= 2 && String.sub dot (String.length dot - 2) 2 = "}\n")

(* --- §4.4 exchange-seeded start-up -------------------------------------- *)

let test_exchange_partition_assignment () =
  let f = Masc_network.exchange_partition ~tops:[ 10; 20; 30; 40; 50 ] ~exchanges:4 in
  check prefix_testable "first top -> first quarter" (Prefix.of_string "224.0.0.0/6") (f 10);
  check prefix_testable "second top -> second quarter" (Prefix.of_string "228.0.0.0/6") (f 20);
  check prefix_testable "wraps around" (Prefix.of_string "224.0.0.0/6") (f 50);
  check prefix_testable "unknown id falls back to 224/4" Prefix.class_d (f 99);
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Masc_network.exchange_partition: exchange count must be a power of two")
    (fun () ->
      ignore (Masc_network.exchange_partition ~tops:[ 1 ] ~exchanges:3 : Domain.id -> Prefix.t))

let test_exchange_seeded_claims_stay_in_continent () =
  let engine = Engine.create () in
  let tops = [ 0; 1; 2; 3 ] in
  let top_space = Masc_network.exchange_partition ~tops ~exchanges:4 in
  let config =
    { Masc_node.default_config with Masc_node.claim_wait = Time.hours 1.0 }
  in
  let net =
    Masc_network.create ~engine ~rng:(Rng.create 4) ~config ~top_space
      ~parent_of:(fun _ -> None)
      ~ids:tops ()
  in
  Masc_network.start net;
  List.iter (fun id -> Masc_node.request_space (Masc_network.node net id) ~need:4096) tops;
  Engine.run ~until:(Time.days 1.0) engine;
  List.iter
    (fun id ->
      let continental = top_space id in
      let ranges = Masc_node.acquired_ranges (Masc_network.node net id) in
      check Alcotest.bool (Printf.sprintf "top %d acquired" id) true (ranges <> []);
      List.iter
        (fun (c : Masc_node.own_claim) ->
          check Alcotest.bool "claim inside the exchange's continental range" true
            (Prefix.subsumes continental c.Masc_node.claim_prefix))
        ranges)
    tops;
  (* Disjoint continents mean the start-up needs no top-level collision
     traffic at all. *)
  check Alcotest.int "no collisions during start-up" 0 (Masc_network.total_collisions net)

(* --- §7 forwarding-state aggregation ------------------------------------- *)

let test_state_aggregation_collapses_same_targets () =
  let r = Bgmp_router.create ~id:0 ~domain:0 ~name:"R" in
  Bgmp_router.set_classify_root r (fun _ -> Bgmp_router.External 9);
  (* 8 consecutive groups, all joined by the same child: one aggregated
     (star,G-prefix) entry. *)
  let base = Ipv4.of_string "224.1.0.0" in
  for i = 0 to 7 do
    ignore (Bgmp_router.handle_join r ~group:(base + i) ~from:(Bgmp_router.Peer 3))
  done;
  check Alcotest.int "raw entries" 8 (Bgmp_router.entry_count r);
  check Alcotest.int "aggregated to one prefix entry" 1 (Bgmp_router.aggregated_entry_count r);
  (* A group with a different child breaks the run into pieces. *)
  ignore (Bgmp_router.handle_join r ~group:(base + 3) ~from:(Bgmp_router.Peer 4));
  check Alcotest.bool "different targets split the aggregate" true
    (Bgmp_router.aggregated_entry_count r > 1);
  check Alcotest.bool "but far fewer than raw" true
    (Bgmp_router.aggregated_entry_count r < Bgmp_router.entry_count r)

let test_state_aggregation_alignment_matters () =
  let r = Bgmp_router.create ~id:0 ~domain:0 ~name:"R" in
  Bgmp_router.set_classify_root r (fun _ -> Bgmp_router.External 9);
  (* Two groups that are NOT CIDR buddies cannot collapse. *)
  ignore (Bgmp_router.handle_join r ~group:(Ipv4.of_string "224.1.0.1") ~from:(Bgmp_router.Peer 3));
  ignore (Bgmp_router.handle_join r ~group:(Ipv4.of_string "224.1.0.2") ~from:(Bgmp_router.Peer 3));
  check Alcotest.int "misaligned pair stays at two" 2 (Bgmp_router.aggregated_entry_count r)

(* --- §7 remote address allocation ---------------------------------------- *)

let test_remote_address_allocation () =
  let topo = Gen.figure1 () in
  let inet = Internet.create ~config:Internet.quick_config topo in
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);
  let dom name = Option.get (Topo.find_by_name topo name) in
  (* Initiator in G knows the dominant source will be in B: allocate
     from B so the tree roots there. *)
  let rec get tries =
    match Internet.request_address_in inet ~initiator:(dom "G") ~root:(dom "B") with
    | Some a -> a
    | None ->
        if tries > 30 then Alcotest.fail "allocation did not settle"
        else begin
          Internet.run_for inet (Time.hours 1.0);
          get (tries + 1)
        end
  in
  let alloc = get 0 in
  check (Alcotest.option Alcotest.int) "rooted at B, not at the initiator" (Some (dom "B"))
    (Internet.root_domain_of inet alloc.Maas.address);
  check Alcotest.bool "traced" true
    (Trace.find (Internet.trace inet) ~tag:"remote-alloc" <> [])

(* --- multi-provider reparenting ------------------------------------------ *)

let reparent_setup () =
  (* Two top-level providers 0 and 1; child 2 starts under 0. *)
  let engine = Engine.create () in
  let config =
    {
      Masc_node.default_config with
      Masc_node.claim_wait = Time.hours 1.0;
      claim_lifetime = Time.days 3.0;
      renew_margin = Time.hours 12.0;
    }
  in
  let net =
    Masc_network.create ~engine ~rng:(Rng.create 5) ~config
      ~parent_of:(fun id -> if id = 2 then Some 0 else None)
      ~ids:[ 0; 1; 2 ] ()
  in
  Masc_network.start net;
  (engine, net)

let test_reparent_reclaims_from_new_parent () =
  let engine, net = reparent_setup () in
  let child = Masc_network.node net 2 in
  Masc_node.request_space child ~need:256;
  Engine.run ~until:(Time.days 1.0) engine;
  let old_range =
    match Masc_node.acquired_ranges child with
    | [ c ] -> c.Masc_node.claim_prefix
    | _ -> Alcotest.fail "expected one range under the old parent"
  in
  (* Old provider 0's space covers the range. *)
  let covers0 =
    List.map (fun (c : Masc_node.own_claim) -> c.Masc_node.claim_prefix)
      (Masc_node.bgp_ranges (Masc_network.node net 0))
  in
  check Alcotest.bool "old range under provider 0" true
    (List.exists (fun p -> Prefix.subsumes p old_range) covers0);
  (* Switch to provider 1 and demand more space. *)
  Masc_network.reparent net ~child:2 ~new_parent:1;
  Masc_node.request_space child ~need:256;
  Engine.run ~until:(Time.days 2.0) engine;
  let fresh =
    List.filter
      (fun (c : Masc_node.own_claim) ->
        c.Masc_node.claim_active && not (Prefix.equal c.Masc_node.claim_prefix old_range))
      (Masc_node.acquired_ranges child)
  in
  check Alcotest.bool "fresh range acquired after reparent" true (fresh <> []);
  let covers1 =
    List.map (fun (c : Masc_node.own_claim) -> c.Masc_node.claim_prefix)
      (Masc_node.bgp_ranges (Masc_network.node net 1))
  in
  List.iter
    (fun (c : Masc_node.own_claim) ->
      check Alcotest.bool "fresh range under provider 1" true
        (List.exists (fun p -> Prefix.subsumes p c.Masc_node.claim_prefix) covers1))
    fresh

let test_reparent_drains_old_claims () =
  let engine, net = reparent_setup () in
  let child = Masc_network.node net 2 in
  Masc_node.request_space child ~need:256;
  Engine.run ~until:(Time.days 1.0) engine;
  (match Masc_node.acquired_ranges child with
  | [ c ] -> Masc_node.note_assigned child c.Masc_node.claim_prefix 5
  | _ -> Alcotest.fail "expected one range");
  Masc_network.reparent net ~child:2 ~new_parent:1;
  (* Usage drains: simulate the last addresses being freed. *)
  Engine.run ~until:(Time.days 2.0) engine;
  (match Masc_node.all_claims child with
  | c :: _ -> Masc_node.note_assigned child c.Masc_node.claim_prefix (-5)
  | [] -> ());
  (* Without renewal (outside the new parent's covers) the claim must
     lapse within a couple of lifetimes. *)
  Engine.run ~until:(Time.days 12.0) engine;
  List.iter
    (fun (c : Masc_node.own_claim) ->
      check Alcotest.bool "no active claim from the old provider's space" true
        (c.Masc_node.claim_active = false || c.Masc_node.claim_arena = Masc_node.Down
        ||
        let covers1 =
          List.map
            (fun (x : Masc_node.own_claim) -> x.Masc_node.claim_prefix)
            (Masc_node.bgp_ranges (Masc_network.node net 1))
        in
        List.exists (fun p -> Prefix.subsumes p c.Masc_node.claim_prefix) covers1))
    (Masc_node.all_claims child)

let test_reparent_rejects_top_level () =
  let _, net = reparent_setup () in
  Alcotest.check_raises "top-level cannot reparent"
    (Invalid_argument "Masc_network.reparent: child is top-level") (fun () ->
      Masc_network.reparent net ~child:0 ~new_parent:1)

let suite =
  [
    ("dump roundtrip", `Quick, test_dump_roundtrip);
    ("dump parse basics", `Quick, test_dump_parse_basics);
    ("dump parse errors", `Quick, test_dump_parse_errors);
    ("dump file io", `Quick, test_dump_file_io);
    ("dot rendering", `Quick, test_dot_rendering);
    ("exchange partition assignment", `Quick, test_exchange_partition_assignment);
    ("exchange-seeded claims stay continental", `Quick, test_exchange_seeded_claims_stay_in_continent);
    ("state aggregation collapses same targets", `Quick, test_state_aggregation_collapses_same_targets);
    ("state aggregation alignment matters", `Quick, test_state_aggregation_alignment_matters);
    ("remote address allocation", `Quick, test_remote_address_allocation);
    ("reparent reclaims from new parent", `Quick, test_reparent_reclaims_from_new_parent);
    ("reparent drains old claims", `Quick, test_reparent_drains_old_claims);
    ("reparent rejects top level", `Quick, test_reparent_rejects_top_level);
  ]
