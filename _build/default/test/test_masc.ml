(* Tests for mcast_masc: the allocation arena, the claim policy, the
   distributed claim-collide protocol, the MAAS, and the Figure-2
   allocation simulator. *)

let check = Alcotest.check

let p = Prefix.of_string

let prefix_testable = Alcotest.testable Prefix.pp Prefix.equal

(* --- Address_space ---------------------------------------------------- *)

let test_space_cover_and_claims () =
  let s = Address_space.create () in
  Address_space.add_cover s (p "224.0.0.0/16");
  check Alcotest.int "total" 65536 (Address_space.total_addresses s);
  Address_space.register s ~owner:1 (p "224.0.0.0/24");
  Address_space.register s ~owner:2 (p "224.0.1.0/24");
  check Alcotest.int "claims" 2 (Address_space.claim_count s);
  check (Alcotest.option Alcotest.int) "owner" (Some 1) (Address_space.owner_of s (p "224.0.0.0/24"));
  check Alcotest.int "free" (65536 - 512) (Address_space.free_addresses s);
  check (Alcotest.list prefix_testable) "claims of 1" [ p "224.0.0.0/24" ]
    (Address_space.claims_of s ~owner:1);
  Address_space.unregister s (p "224.0.0.0/24");
  check Alcotest.int "after unregister" 1 (Address_space.claim_count s)

let test_space_register_duplicate_rejected () =
  let s = Address_space.create () in
  Address_space.add_cover s (p "224.0.0.0/16");
  Address_space.register s ~owner:1 (p "224.0.0.0/24");
  Alcotest.check_raises "duplicate claim"
    (Invalid_argument "Address_space.register: prefix already claimed") (fun () ->
      Address_space.register s ~owner:2 (p "224.0.0.0/24"))

let test_space_is_free () =
  let s = Address_space.create () in
  Address_space.add_cover s (p "224.0.0.0/16");
  Address_space.register s ~owner:1 (p "224.0.0.0/24");
  check Alcotest.bool "conflicting" false (Address_space.is_free s (p "224.0.0.0/25"));
  check Alcotest.bool "free" true (Address_space.is_free s (p "224.0.1.0/24"));
  check Alcotest.bool "outside covers" false (Address_space.is_free s (p "225.0.0.0/24"))

let test_space_choose_claim_first_subprefix () =
  let s = Address_space.create () in
  Address_space.add_cover s (p "224.0.0.0/16");
  Address_space.register s ~owner:1 (p "224.0.0.0/17");
  (* Only the upper /17 is free: its first /24 must be chosen. *)
  check (Alcotest.option prefix_testable) "first subprefix rule" (Some (p "224.0.128.0/24"))
    (Address_space.choose_claim s ~rng:(Rng.create 1) ~want_len:24);
  check (Alcotest.option prefix_testable) "no room for /16" None
    (Address_space.choose_claim s ~rng:(Rng.create 1) ~want_len:16)

let test_space_choose_claim_random_placement () =
  let s = Address_space.create () in
  Address_space.add_cover s (p "224.0.0.0/20");
  let rng = Rng.create 7 in
  let seen = Hashtbl.create 8 in
  for _ = 1 to 64 do
    match Address_space.choose_claim_placed s ~rng ~want_len:24 ~placement:`Random with
    | Some c -> Hashtbl.replace seen c ()
    | None -> Alcotest.fail "expected a candidate"
  done;
  check Alcotest.bool "random placement varies" true (Hashtbl.length seen > 3)

let test_space_can_double () =
  let s = Address_space.create () in
  Address_space.add_cover s (p "224.0.0.0/16");
  Address_space.register s ~owner:1 (p "224.0.0.0/24");
  check Alcotest.bool "buddy free" true (Address_space.can_double s (p "224.0.0.0/24"));
  Address_space.register s ~owner:2 (p "224.0.1.0/24");
  check Alcotest.bool "buddy taken" false (Address_space.can_double s (p "224.0.0.0/24"));
  (* Doubling beyond the cover is impossible. *)
  let s2 = Address_space.create () in
  Address_space.add_cover s2 (p "224.0.0.0/24");
  Address_space.register s2 ~owner:1 (p "224.0.0.0/24");
  check Alcotest.bool "no room past cover" false (Address_space.can_double s2 (p "224.0.0.0/24"))

(* --- Claim_policy ------------------------------------------------------ *)

let space_16 claims =
  let s = Address_space.create () in
  Address_space.add_cover s (p "224.0.0.0/16");
  List.iter (fun (o, c) -> Address_space.register s ~owner:o c) claims;
  s

let params = Claim_policy.default_params

let test_policy_assign_when_room () =
  let s = space_16 [ (1, p "224.0.0.0/24") ] in
  let claims = [ { Claim_policy.prefix = p "224.0.0.0/24"; active = true; used = 100 } ] in
  match Claim_policy.decide ~params ~space:s ~claims ~need:100 with
  | Claim_policy.Assign pre -> check prefix_testable "assign in place" (p "224.0.0.0/24") pre
  | d -> Alcotest.failf "expected Assign, got %a" Claim_policy.pp_decision d

let test_policy_double_when_dense () =
  (* Full /24, demand for one more block: doubling keeps util at 100%. *)
  let s = space_16 [ (1, p "224.0.0.0/24") ] in
  let claims = [ { Claim_policy.prefix = p "224.0.0.0/24"; active = true; used = 256 } ] in
  match Claim_policy.decide ~params ~space:s ~claims ~need:256 with
  | Claim_policy.Double pre -> check prefix_testable "double the /24" (p "224.0.0.0/24") pre
  | d -> Alcotest.failf "expected Double, got %a" Claim_policy.pp_decision d

let test_policy_claim_new_when_doubling_too_wasteful () =
  (* A /22 with little usage: doubling it would leave utilization under
     75 %, so claim a small separate prefix instead. *)
  let s = space_16 [ (1, p "224.0.0.0/22") ] in
  let claims = [ { Claim_policy.prefix = p "224.0.0.0/22"; active = true; used = 1024 } ] in
  (* used = full 1024; doubling gives util (1024+256)/2048 = 0.625 < 0.75 *)
  match Claim_policy.decide ~params ~space:s ~claims ~need:256 with
  | Claim_policy.Claim_new len -> check Alcotest.int "just-sufficient /24" 24 len
  | d -> Alcotest.failf "expected Claim_new, got %a" Claim_policy.pp_decision d

let test_policy_double_at_limit_even_below_threshold () =
  (* At the two-prefix limit with a free buddy: double anyway. *)
  let s = space_16 [ (1, p "224.0.0.0/22"); (1, p "224.0.16.0/24") ] in
  let claims =
    [
      { Claim_policy.prefix = p "224.0.0.0/22"; active = true; used = 1024 };
      { Claim_policy.prefix = p "224.0.16.0/24"; active = true; used = 256 };
    ]
  in
  match Claim_policy.decide ~params ~space:s ~claims ~need:256 with
  | Claim_policy.Double pre -> check prefix_testable "double smallest" (p "224.0.16.0/24") pre
  | d -> Alcotest.failf "expected Double, got %a" Claim_policy.pp_decision d

let test_policy_consolidate_when_stuck () =
  (* Two active prefixes, both with occupied buddies: consolidate. *)
  let s =
    space_16
      [
        (1, p "224.0.0.0/24");
        (9, p "224.0.1.0/24");  (* buddy of the first, another owner *)
        (1, p "224.0.2.0/24");
        (9, p "224.0.3.0/24");  (* buddy of the third *)
      ]
  in
  let claims =
    [
      { Claim_policy.prefix = p "224.0.0.0/24"; active = true; used = 256 };
      { Claim_policy.prefix = p "224.0.2.0/24"; active = true; used = 256 };
    ]
  in
  match Claim_policy.decide ~params ~space:s ~claims ~need:256 with
  | Claim_policy.Consolidate len ->
      check Alcotest.int "sized for total usage" (Prefix.mask_for_count (256 + 256 + 256)) len
  | d -> Alcotest.failf "expected Consolidate, got %a" Claim_policy.pp_decision d

let test_policy_blocked () =
  (* Space too small for the consolidation target. *)
  let s = Address_space.create () in
  Address_space.add_cover s (p "224.0.0.0/24");
  Address_space.register s ~owner:1 (p "224.0.0.0/25");
  Address_space.register s ~owner:9 (p "224.0.0.128/25");
  let claims = [ { Claim_policy.prefix = p "224.0.0.0/25"; active = true; used = 128 } ] in
  (* need 256: no fitting prefix, no doubling (buddy taken), a second
     claim of /24 cannot fit, consolidation to /23 exceeds the cover. *)
  let d =
    Claim_policy.decide
      ~params:{ params with Claim_policy.max_prefixes = 1 }
      ~space:s ~claims ~need:256
  in
  (match d with
  | Claim_policy.Blocked -> ()
  | _ -> Alcotest.failf "expected Blocked, got %a" Claim_policy.pp_decision d)

let test_policy_rejects_bad_need () =
  let s = space_16 [] in
  Alcotest.check_raises "non-positive need"
    (Invalid_argument "Claim_policy.decide: non-positive need") (fun () ->
      ignore (Claim_policy.decide ~params ~space:s ~claims:[] ~need:0))

let test_policy_inactive_not_assigned () =
  let s = space_16 [ (1, p "224.0.0.0/24") ] in
  let claims = [ { Claim_policy.prefix = p "224.0.0.0/24"; active = false; used = 0 } ] in
  match Claim_policy.decide ~params ~space:s ~claims ~need:256 with
  | Claim_policy.Assign _ -> Alcotest.fail "must not assign into an inactive prefix"
  | Claim_policy.Double _ -> Alcotest.fail "must not double an inactive prefix"
  | Claim_policy.Claim_new _ | Claim_policy.Consolidate _ | Claim_policy.Blocked -> ()

(* --- Masc_node / Masc_network ----------------------------------------- *)

let quick_cfg =
  {
    Masc_node.default_config with
    Masc_node.claim_wait = Time.hours 1.0;
    claim_lifetime = Time.days 30.0;
    renew_margin = Time.hours 12.0;
  }

let flat_hierarchy ids engine rng =
  (* One top (first id), the rest its children. *)
  let top = List.hd ids in
  let parent_of id = if id = top then None else Some top in
  Masc_network.create ~engine ~rng ~config:quick_cfg ~parent_of ~ids ()

let test_node_basic_claim_flow () =
  let engine = Engine.create () in
  let net = flat_hierarchy [ 0; 1; 2 ] engine (Rng.create 42) in
  Masc_network.start net;
  Masc_node.request_space (Masc_network.node net 1) ~need:256;
  Engine.run ~until:(Time.days 1.0) engine;
  let ranges = Masc_node.acquired_ranges (Masc_network.node net 1) in
  check Alcotest.int "child acquired one range" 1 (List.length ranges);
  let r = List.hd ranges in
  check Alcotest.bool "range holds 256 addresses" true
    (Prefix.size r.Masc_node.claim_prefix >= 256);
  (* The parent acquired covering space. *)
  let parent_ranges = Masc_node.bgp_ranges (Masc_network.node net 0) in
  check Alcotest.bool "parent covers child" true
    (List.exists
       (fun (c : Masc_node.own_claim) ->
         Prefix.subsumes c.Masc_node.claim_prefix r.Masc_node.claim_prefix)
       parent_ranges)

let test_node_sibling_claims_disjoint () =
  let engine = Engine.create () in
  let net = flat_hierarchy [ 0; 1; 2; 3; 4 ] engine (Rng.create 7) in
  Masc_network.start net;
  List.iter
    (fun id -> Masc_node.request_space (Masc_network.node net id) ~need:256)
    [ 1; 2; 3; 4 ];
  Engine.run ~until:(Time.days 2.0) engine;
  let all_ranges =
    List.concat_map
      (fun id ->
        List.map
          (fun (c : Masc_node.own_claim) -> c.Masc_node.claim_prefix)
          (Masc_node.acquired_ranges (Masc_network.node net id)))
      [ 1; 2; 3; 4 ]
  in
  check Alcotest.int "everyone acquired" 4 (List.length all_ranges);
  let rec disjoint = function
    | [] -> true
    | x :: rest -> (not (List.exists (Prefix.overlaps x) rest)) && disjoint rest
  in
  check Alcotest.bool "claims pairwise disjoint" true (disjoint all_ranges)

let test_top_level_claims_from_class_d () =
  let engine = Engine.create () in
  (* Three top-level domains, no parents. *)
  let net =
    Masc_network.create ~engine ~rng:(Rng.create 5) ~config:quick_cfg
      ~parent_of:(fun _ -> None)
      ~ids:[ 0; 1; 2 ] ()
  in
  Masc_network.start net;
  List.iter (fun id -> Masc_node.request_space (Masc_network.node net id) ~need:1024) [ 0; 1; 2 ];
  Engine.run ~until:(Time.days 1.0) engine;
  List.iter
    (fun id ->
      let ranges = Masc_node.acquired_ranges (Masc_network.node net id) in
      check Alcotest.bool (Printf.sprintf "top %d acquired" id) true (ranges <> []);
      List.iter
        (fun (c : Masc_node.own_claim) ->
          check Alcotest.bool "inside 224/4" true
            (Prefix.subsumes Prefix.class_d c.Masc_node.claim_prefix))
        ranges)
    [ 0; 1; 2 ]

let test_collision_resolved_by_lower_id () =
  (* Force a deterministic collision: partition two siblings from each
     other is impossible (they share only the parent relay), so instead
     rely on the claim-wait overlap: both claim before hearing each
     other.  Sibling claims relayed via the parent arrive after the
     transport delay; with simultaneous requests both pick the same
     first sub-prefix and the lower id must win. *)
  let engine = Engine.create () in
  let net = flat_hierarchy [ 0; 1; 2 ] engine (Rng.create 1) in
  Masc_network.start net;
  (* Give the parent space first so both children see the same arena. *)
  Masc_node.request_space (Masc_network.node net 1) ~need:256;
  Engine.run ~until:(Time.days 1.0) engine;
  let before = Masc_network.total_collisions net in
  (* Release pressure: both children now claim simultaneously from the
     same parent space. *)
  Masc_node.request_space (Masc_network.node net 2) ~need:256;
  Masc_node.request_space (Masc_network.node net 1) ~need:1024;
  Engine.run ~until:(Time.days 2.0) engine;
  ignore before;
  (* Regardless of whether a collision occurred, final claims must be
     disjoint and all demands satisfied. *)
  let r1 = Masc_node.acquired_ranges (Masc_network.node net 1) in
  let r2 = Masc_node.acquired_ranges (Masc_network.node net 2) in
  check Alcotest.bool "both have space" true (r1 <> [] && r2 <> []);
  List.iter
    (fun (a : Masc_node.own_claim) ->
      List.iter
        (fun (b : Masc_node.own_claim) ->
          check Alcotest.bool "disjoint across siblings" false
            (Prefix.overlaps a.Masc_node.claim_prefix b.Masc_node.claim_prefix))
        r2)
    r1

let test_simultaneous_top_claims_collide_and_recover () =
  let engine = Engine.create () in
  let net =
    Masc_network.create ~engine ~rng:(Rng.create 3) ~config:quick_cfg
      ~parent_of:(fun _ -> None)
      ~ids:[ 0; 1 ] ()
  in
  Masc_network.start net;
  (* Same rng draw order can make both pick the same block; claims are
     announced, so the duel logic must leave exactly disjoint outcomes. *)
  Masc_node.request_space (Masc_network.node net 0) ~need:256;
  Masc_node.request_space (Masc_network.node net 1) ~need:256;
  Engine.run ~until:(Time.days 1.0) engine;
  let r0 = Masc_node.acquired_ranges (Masc_network.node net 0) in
  let r1 = Masc_node.acquired_ranges (Masc_network.node net 1) in
  check Alcotest.bool "both recovered" true (r0 <> [] && r1 <> []);
  List.iter
    (fun (a : Masc_node.own_claim) ->
      List.iter
        (fun (b : Masc_node.own_claim) ->
          check Alcotest.bool "disjoint" false
            (Prefix.overlaps a.Masc_node.claim_prefix b.Masc_node.claim_prefix))
        r1)
    r0

let test_partition_causes_collision_then_heals () =
  (* Two tops partitioned from each other pick overlapping space; after
     the heal, periodic re-announcement (the sweep/renewal path) must
     resolve the conflict deterministically: lower id keeps the range. *)
  let engine = Engine.create () in
  let cfg = { quick_cfg with Masc_node.claim_lifetime = Time.days 2.0; renew_margin = Time.hours 12.0 } in
  let net =
    Masc_network.create ~engine ~rng:(Rng.create 1) ~config:cfg
      ~parent_of:(fun _ -> None)
      ~ids:[ 0; 1 ] ()
  in
  Masc_network.start net;
  Masc_network.partition net 0 1;
  Masc_node.request_space (Masc_network.node net 0) ~need:256;
  Masc_node.request_space (Masc_network.node net 1) ~need:256;
  Engine.run ~until:(Time.days 1.0) engine;
  (* Keep both claims in use so they renew (and re-announce) instead of
     lapsing quietly. *)
  List.iter
    (fun id ->
      let node = Masc_network.node net id in
      List.iter
        (fun (c : Masc_node.own_claim) ->
          Masc_node.note_assigned node c.Masc_node.claim_prefix 10)
        (Masc_node.acquired_ranges node))
    [ 0; 1 ];
  let overlap () =
    List.exists
      (fun (a : Masc_node.own_claim) ->
        List.exists
          (fun (b : Masc_node.own_claim) ->
            Prefix.overlaps a.Masc_node.claim_prefix b.Masc_node.claim_prefix)
          (Masc_node.acquired_ranges (Masc_network.node net 1)))
      (Masc_node.acquired_ranges (Masc_network.node net 0))
  in
  check Alcotest.bool "partition produced overlapping claims" true (overlap ());
  check Alcotest.bool "messages were dropped" true (Masc_network.messages_dropped net > 0);
  Masc_network.heal net 0 1;
  (* Renewal re-announces claims; the duel then fires. *)
  Engine.run ~until:(Time.days 6.0) engine;
  check Alcotest.bool "conflict resolved after heal" false (overlap ());
  check Alcotest.bool "collision was recorded" true (Masc_network.total_collisions net > 0)

let test_claim_expires_without_demand () =
  let engine = Engine.create () in
  let cfg =
    { quick_cfg with Masc_node.claim_lifetime = Time.days 2.0; renew_margin = Time.hours 6.0 }
  in
  let net =
    Masc_network.create ~engine ~rng:(Rng.create 2) ~config:cfg
      ~parent_of:(fun id -> if id = 0 then None else Some 0)
      ~ids:[ 0; 1 ] ()
  in
  Masc_network.start net;
  let node = Masc_network.node net 1 in
  Masc_node.request_space node ~need:256;
  Engine.run ~until:(Time.days 1.0) engine;
  let r = Masc_node.acquired_ranges node in
  check Alcotest.int "acquired" 1 (List.length r);
  (* No addresses were ever assigned: at lifetime end the claim lapses. *)
  Engine.run ~until:(Time.days 6.0) engine;
  check Alcotest.int "expired" 0 (List.length (Masc_node.acquired_ranges node))

let test_claim_renewed_under_use () =
  let engine = Engine.create () in
  let cfg =
    { quick_cfg with Masc_node.claim_lifetime = Time.days 2.0; renew_margin = Time.hours 6.0 }
  in
  let net =
    Masc_network.create ~engine ~rng:(Rng.create 2) ~config:cfg
      ~parent_of:(fun id -> if id = 0 then None else Some 0)
      ~ids:[ 0; 1 ] ()
  in
  Masc_network.start net;
  let node = Masc_network.node net 1 in
  Masc_node.request_space node ~need:256;
  Engine.run ~until:(Time.days 1.0) engine;
  (match Masc_node.acquired_ranges node with
  | [ r ] -> Masc_node.note_assigned node r.Masc_node.claim_prefix 10
  | _ -> Alcotest.fail "expected one range");
  Engine.run ~until:(Time.days 10.0) engine;
  check Alcotest.int "still held under use" 1 (List.length (Masc_node.acquired_ranges node))

let test_three_level_hierarchy_containment () =
  (* Backbone 0 -> regional 1 -> campus 2: a leaf demand must pull
     claims down the whole chain, with containment at every level
     (child ranges inside the parent's ranges) — the recursive structure
     behind the paper's "campus ... regional ... backbone" hierarchy. *)
  let engine = Engine.create () in
  let net =
    Masc_network.create ~engine ~rng:(Rng.create 31) ~config:quick_cfg
      ~parent_of:(function 0 -> None | 1 -> Some 0 | _ -> Some 1)
      ~ids:[ 0; 1; 2 ] ()
  in
  Masc_network.start net;
  Masc_node.request_space (Masc_network.node net 2) ~need:256;
  Engine.run ~until:(Time.days 2.0) engine;
  let up_ranges id =
    List.map
      (fun (c : Masc_node.own_claim) -> c.Masc_node.claim_prefix)
      (Masc_node.bgp_ranges (Masc_network.node net id))
  in
  let leaf = up_ranges 2 and mid = up_ranges 1 and top = up_ranges 0 in
  check Alcotest.bool "leaf acquired" true (leaf <> []);
  check Alcotest.bool "mid acquired" true (mid <> []);
  check Alcotest.bool "top acquired" true (top <> []);
  List.iter
    (fun l ->
      check Alcotest.bool "leaf inside mid" true
        (List.exists (fun m -> Prefix.subsumes m l) mid))
    leaf;
  List.iter
    (fun m ->
      check Alcotest.bool "mid inside top" true
        (List.exists (fun t -> Prefix.subsumes t m) top))
    mid;
  List.iter
    (fun t ->
      check Alcotest.bool "top inside 224/4" true (Prefix.subsumes Prefix.class_d t))
    top

(* --- Maas --------------------------------------------------------------- *)

let maas_setup () =
  let engine = Engine.create () in
  let net = flat_hierarchy [ 0; 1 ] engine (Rng.create 9) in
  Masc_network.start net;
  let node = Masc_network.node net 1 in
  let maas = Maas.create ~engine ~node ~block_size:256 in
  (engine, net, node, maas)

let test_maas_allocates_after_claim () =
  let engine, _net, _node, maas = maas_setup () in
  (* First allocation fails (no space yet) and triggers a claim. *)
  check Alcotest.bool "initially no space" true (Maas.allocate maas () = None);
  Engine.run ~until:(Time.days 1.0) engine;
  match Maas.allocate maas () with
  | Some a ->
      check Alcotest.bool "address inside range" true (Prefix.mem a.Maas.address a.Maas.from_range);
      check Alcotest.int "one live" 1 (Maas.in_use maas)
  | None -> Alcotest.fail "expected an address after the claim settles"

let test_maas_unique_addresses_and_release () =
  let engine, _net, _node, maas = maas_setup () in
  ignore (Maas.allocate maas ());
  Engine.run ~until:(Time.days 1.0) engine;
  let allocs = List.init 100 (fun _ -> Option.get (Maas.allocate maas ())) in
  let tbl = Hashtbl.create 100 in
  List.iter
    (fun (a : Maas.allocation) ->
      check Alcotest.bool "unique" false (Hashtbl.mem tbl a.Maas.address);
      Hashtbl.add tbl a.Maas.address ())
    allocs;
  let first = List.hd allocs in
  Maas.release maas first;
  check Alcotest.int "released" 99 (Maas.in_use maas);
  Alcotest.check_raises "double release"
    (Invalid_argument "Maas.release: address not live (double release?)") (fun () ->
      Maas.release maas first);
  (* Released addresses are reusable. *)
  let again = Option.get (Maas.allocate maas ()) in
  check Alcotest.bool "address recycled" true (Ipv4.equal again.Maas.address first.Maas.address)

let test_maas_grows_when_exhausted () =
  let engine, _net, node, maas = maas_setup () in
  ignore (Maas.allocate maas ());
  Engine.run ~until:(Time.days 1.0) engine;
  (* Exhaust the first /24 (256 addresses). *)
  let got = ref 0 in
  (try
     for _ = 1 to 400 do
       match Maas.allocate maas () with
       | Some _ -> incr got
       | None -> raise Exit
     done
   with Exit -> ());
  check Alcotest.int "first range exhausted at 256" 256 !got;
  Engine.run ~until:(Time.days 2.0) engine;
  (* The node doubled; more allocations flow. *)
  (match Maas.allocate maas () with
  | Some _ -> ()
  | None -> Alcotest.fail "expected growth to unblock allocation");
  check Alcotest.bool "node claim grew" true
    (List.exists
       (fun (c : Masc_node.own_claim) -> Prefix.size c.Masc_node.claim_prefix >= 512)
       (Masc_node.acquired_ranges node))

(* --- Allocation_sim ------------------------------------------------------ *)

let small_sim_params =
  {
    Allocation_sim.default_params with
    Allocation_sim.tops = 5;
    children_per_top = 5;
    horizon = Time.days 120.0;
    seed = 77;
  }

let test_allocation_sim_satisfies_demand () =
  let r = Allocation_sim.run small_sim_params in
  check Alcotest.int "no failed requests" 0 r.Allocation_sim.failed_requests;
  check Alcotest.bool "many requests" true (r.Allocation_sim.total_requests > 1000)

let test_allocation_sim_final_claims_disjoint () =
  let r = Allocation_sim.run small_sim_params in
  (* Top-level claims pairwise disjoint. *)
  let tops =
    Array.to_list r.Allocation_sim.final_tops
    |> List.concat_map (List.map (fun h -> h.Allocation_sim.h_prefix))
  in
  let rec disjoint = function
    | [] -> true
    | x :: rest -> (not (List.exists (Prefix.overlaps x) rest)) && disjoint rest
  in
  check Alcotest.bool "top claims disjoint" true (disjoint tops);
  (* Children claims disjoint and inside some top claim. *)
  let children =
    Array.to_list r.Allocation_sim.final_children
    |> List.concat_map (List.map (fun h -> h.Allocation_sim.h_prefix))
  in
  check Alcotest.bool "child claims disjoint" true (disjoint children);
  List.iter
    (fun c ->
      check Alcotest.bool "child inside a top claim" true
        (List.exists (fun t -> Prefix.subsumes t c) tops))
    children

let test_allocation_sim_utilization_reasonable () =
  let r = Allocation_sim.run small_sim_params in
  let steady = Allocation_sim.steady_state r ~from_day:80.0 in
  check Alcotest.bool "steady samples exist" true (steady <> []);
  List.iter
    (fun (s : Allocation_sim.sample) ->
      check Alcotest.bool "utilization in (0.15, 0.9)" true
        (s.Allocation_sim.utilization > 0.15 && s.Allocation_sim.utilization < 0.9);
      check Alcotest.bool "grib positive" true (s.Allocation_sim.grib_avg > 0.0);
      check Alcotest.bool "max >= avg" true
        (float_of_int s.Allocation_sim.grib_max >= s.Allocation_sim.grib_avg))
    steady

let test_allocation_sim_heterogeneous () =
  (* The paper: "We also examined more heterogeneous topologies with
     similar results."  Children per top vary ±3; the same invariants
     hold and the steady behaviour stays in range. *)
  let r =
    Allocation_sim.run { small_sim_params with Allocation_sim.hetero_spread = 3 }
  in
  check Alcotest.int "no failed requests" 0 r.Allocation_sim.failed_requests;
  (* Heterogeneity changes the child count: final_children length is not
     tops*children_per_top in general. *)
  check Alcotest.bool "children counted correctly" true
    (Array.length r.Allocation_sim.final_children > 0);
  let steady = Allocation_sim.steady_state r ~from_day:80.0 in
  List.iter
    (fun (s : Allocation_sim.sample) ->
      check Alcotest.bool "utilization sane under heterogeneity" true
        (s.Allocation_sim.utilization > 0.1 && s.Allocation_sim.utilization < 0.9))
    steady

let test_allocation_sim_deterministic () =
  let a = Allocation_sim.run small_sim_params in
  let b = Allocation_sim.run small_sim_params in
  check Alcotest.int "same request count" a.Allocation_sim.total_requests
    b.Allocation_sim.total_requests;
  check Alcotest.int "same claims" a.Allocation_sim.claims_made b.Allocation_sim.claims_made;
  let last r = (Array.get r.Allocation_sim.samples (Array.length r.Allocation_sim.samples - 1)) in
  check (Alcotest.float 1e-9) "same final utilization" (last a).Allocation_sim.utilization
    (last b).Allocation_sim.utilization

let test_allocation_sim_random_placement_runs () =
  (* Ablation A2 sanity: the random-placement variant completes with the
     same demand satisfied (the directional G-RIB comparison is an
     experiment, not an invariant — see `bin/main.exe -- ablate-placement`). *)
  let rand =
    Allocation_sim.run { small_sim_params with Allocation_sim.placement = `Random }
  in
  check Alcotest.int "no failed requests" 0 rand.Allocation_sim.failed_requests;
  let steady = Allocation_sim.steady_state rand ~from_day:80.0 in
  check Alcotest.bool "grib settles" true
    (List.for_all (fun (s : Allocation_sim.sample) -> s.Allocation_sim.grib_avg > 0.0) steady)

let prop_masc_claims_never_overlap =
  (* Protocol-level invariant under random small hierarchies and random
     demand order: acquired ranges never overlap across domains. *)
  QCheck.Test.make ~name:"acquired MASC ranges are pairwise disjoint" ~count:15
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let engine = Engine.create () in
      let rng = Rng.create seed in
      let n_children = 2 + Rng.int rng 4 in
      let ids = List.init (1 + n_children) (fun i -> i) in
      let net =
        Masc_network.create ~engine ~rng:(Rng.split rng) ~config:quick_cfg
          ~parent_of:(fun id -> if id = 0 then None else Some 0)
          ~ids ()
      in
      Masc_network.start net;
      List.iter
        (fun id ->
          if id > 0 then
            ignore
              (Engine.schedule_after engine
                 (Time.hours (Rng.float rng 48.0))
                 (fun () ->
                   Masc_node.request_space (Masc_network.node net id)
                     ~need:(256 * (1 + Rng.int rng 4)))))
        ids;
      Engine.run ~until:(Time.days 7.0) engine;
      let ranges =
        List.concat_map
          (fun id ->
            List.map
              (fun (c : Masc_node.own_claim) -> c.Masc_node.claim_prefix)
              (Masc_node.acquired_ranges (Masc_network.node net id)))
          (List.tl ids)
      in
      let rec disjoint = function
        | [] -> true
        | x :: rest -> (not (List.exists (Prefix.overlaps x) rest)) && disjoint rest
      in
      disjoint ranges)

let suite =
  [
    ("space cover and claims", `Quick, test_space_cover_and_claims);
    ("space duplicate rejected", `Quick, test_space_register_duplicate_rejected);
    ("space is_free", `Quick, test_space_is_free);
    ("space choose_claim first-subprefix", `Quick, test_space_choose_claim_first_subprefix);
    ("space choose_claim random placement", `Quick, test_space_choose_claim_random_placement);
    ("space can_double", `Quick, test_space_can_double);
    ("policy assign when room", `Quick, test_policy_assign_when_room);
    ("policy double when dense", `Quick, test_policy_double_when_dense);
    ("policy claim-new when wasteful", `Quick, test_policy_claim_new_when_doubling_too_wasteful);
    ("policy double at limit", `Quick, test_policy_double_at_limit_even_below_threshold);
    ("policy consolidate when stuck", `Quick, test_policy_consolidate_when_stuck);
    ("policy blocked", `Quick, test_policy_blocked);
    ("policy rejects bad need", `Quick, test_policy_rejects_bad_need);
    ("policy inactive not assigned", `Quick, test_policy_inactive_not_assigned);
    ("node basic claim flow", `Quick, test_node_basic_claim_flow);
    ("node sibling claims disjoint", `Quick, test_node_sibling_claims_disjoint);
    ("top level claims from 224/4", `Quick, test_top_level_claims_from_class_d);
    ("collision resolved deterministically", `Quick, test_collision_resolved_by_lower_id);
    ("simultaneous top claims recover", `Quick, test_simultaneous_top_claims_collide_and_recover);
    ("partition collision heals", `Quick, test_partition_causes_collision_then_heals);
    ("claim expires without demand", `Quick, test_claim_expires_without_demand);
    ("claim renewed under use", `Quick, test_claim_renewed_under_use);
    ("three-level hierarchy containment", `Quick, test_three_level_hierarchy_containment);
    ("maas allocates after claim", `Quick, test_maas_allocates_after_claim);
    ("maas unique addresses and release", `Quick, test_maas_unique_addresses_and_release);
    ("maas grows when exhausted", `Quick, test_maas_grows_when_exhausted);
    ("allocation sim satisfies demand", `Slow, test_allocation_sim_satisfies_demand);
    ("allocation sim final claims disjoint", `Slow, test_allocation_sim_final_claims_disjoint);
    ("allocation sim utilization reasonable", `Slow, test_allocation_sim_utilization_reasonable);
    ("allocation sim heterogeneous", `Slow, test_allocation_sim_heterogeneous);
    ("allocation sim deterministic", `Slow, test_allocation_sim_deterministic);
    ("allocation sim placement variant runs", `Slow, test_allocation_sim_random_placement_runs);
    QCheck_alcotest.to_alcotest prop_masc_claims_never_overlap;
  ]
