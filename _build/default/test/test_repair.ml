(* Tests for tree repair after G-RIB changes (route withdrawals, path
   moves, MASC renumbering). *)

let check = Alcotest.check

let g = Ipv4.of_string "224.7.0.1"

let test_fabric_rebuild_moves_path () =
  (* Square: 0-1, 0-2, 1-3, 2-3.  Root at 0, member at 3.  The route
     from 3 toward 0 initially runs via 1; after a "routing change" it
     runs via 2.  rebuild_group must move the tree. *)
  let topo = Topo.create () in
  let d0 = Topo.add_domain topo ~name:"r" ~kind:Domain.Backbone in
  let d1 = Topo.add_domain topo ~name:"l" ~kind:Domain.Regional in
  let d2 = Topo.add_domain topo ~name:"m" ~kind:Domain.Regional in
  let d3 = Topo.add_domain topo ~name:"s" ~kind:Domain.Stub in
  Topo.add_link topo d0 d1 Topo.Provider_customer;
  Topo.add_link topo d0 d2 Topo.Provider_customer;
  Topo.add_link topo d1 d3 Topo.Provider_customer;
  Topo.add_link topo d2 d3 Topo.Provider_customer;
  let engine = Engine.create () in
  let via = ref d1 in
  let route_to_root d _ =
    if d = d0 then Bgmp_fabric.Root_here
    else if d = d3 then Bgmp_fabric.Via !via
    else Bgmp_fabric.Via d0
  in
  let fabric = Bgmp_fabric.create ~engine ~topo ~route_to_root () in
  Bgmp_fabric.host_join fabric ~host:(Host_ref.make d3 0) ~group:g;
  Engine.run_until_idle engine;
  check Alcotest.bool "tree initially via d1" true
    (List.mem d1 (Bgmp_fabric.tree_domains fabric ~group:g));
  (* The path moves; without repair the tree is stale. *)
  via := d2;
  Bgmp_fabric.rebuild_group fabric ~group:g;
  Engine.run_until_idle engine;
  let tree = Bgmp_fabric.tree_domains fabric ~group:g in
  check Alcotest.bool "tree now via d2" true (List.mem d2 tree);
  check Alcotest.bool "old transit dropped" false (List.mem d1 tree);
  (* Delivery still works over the new path. *)
  let p = Bgmp_fabric.send fabric ~source:(Host_ref.make d0 0) ~group:g in
  Engine.run_until_idle engine;
  (match Bgmp_fabric.deliveries fabric ~payload:p with
  | [ (h, hops) ] ->
      check Alcotest.int "member reached" d3 h.Host_ref.host_domain;
      check Alcotest.int "two hops over the new path" 2 hops
  | other -> Alcotest.failf "expected one delivery, got %d" (List.length other));
  check Alcotest.int "no duplicates" 0 (Bgmp_fabric.duplicate_deliveries fabric)

let test_fabric_rebuild_preserves_members_and_branches () =
  (* Rebuild on the Figure-3 group: same members, fresh tree; the (S,G)
     branches are dropped and re-form on the next packets. *)
  let w = Scenario.figure3 () in
  let before = Scenario.deliveries_by_domain w in
  ignore before;
  Bgmp_fabric.rebuild_group w.Scenario.fabric ~group:w.Scenario.walkthrough_group;
  Engine.run_until_idle w.Scenario.engine;
  let e = Option.get (Topo.find_by_name w.Scenario.walkthrough_topo "E") in
  let p =
    Bgmp_fabric.send w.Scenario.fabric ~source:(Host_ref.make e 0)
      ~group:w.Scenario.walkthrough_group
  in
  Engine.run_until_idle w.Scenario.engine;
  check Alcotest.int "all five members after rebuild" 5
    (List.length (Scenario.deliveries_by_domain w ~payload:p));
  (* Branch behaviour re-establishes exactly as before. *)
  check Alcotest.bool "branch re-forms after rebuild" true
    (Scenario.figure3_branch_demo w ~before:[ 3 ] ~after:[ 2 ])

let test_active_groups_listing () =
  let w = Scenario.figure3 () in
  check (Alcotest.list Alcotest.int) "one active group" [ w.Scenario.walkthrough_group ]
    (Bgmp_fabric.active_groups w.Scenario.fabric)

let test_integrated_root_migration_on_withdraw () =
  (* The paper's aggregation fallback as a failure-recovery path: when
     the root domain's specific route disappears (here: forced
     withdrawal, as after a MASC renumbering), longest-match falls back
     to the parent's aggregate — the tree re-roots at the parent and
     delivery continues. *)
  let s = Scenario.figure1 () in
  let inet = s.Scenario.inet in
  let topo = Internet.topo inet in
  let dom name = Option.get (Topo.find_by_name topo name) in
  check Alcotest.int "initially rooted at B" (dom "B") s.Scenario.root;
  (* Sanity: delivery works before. *)
  let d1 = Scenario.send s ~source:(Host_ref.make (dom "E") 0) in
  check Alcotest.int "four deliveries before" 4 (List.length d1);
  (* Withdraw every specific B originates; the aggregate at A remains. *)
  List.iter
    (fun p -> Bgp_network.withdraw (Internet.bgp inet) (dom "B") p)
    (Speaker.originated (Internet.speaker inet (dom "B")));
  Internet.run_for inet (Time.minutes 30.0);
  check (Alcotest.option Alcotest.int) "root migrated to A" (Some (dom "A"))
    (Internet.root_domain_of inet s.Scenario.group);
  let d2 = Scenario.send s ~source:(Host_ref.make (dom "E") 0) in
  check Alcotest.int "four deliveries after migration" 4 (List.length d2);
  check Alcotest.int "no duplicates" 0
    (Bgmp_fabric.duplicate_deliveries (Internet.fabric inet))

let test_integrated_repair_traced_by_doubling () =
  (* MASC doubling replaces B's /24 with a /23 (withdraw + originate):
     the change notification fires and the group keeps working without
     manual intervention. *)
  let s = Scenario.figure1 () in
  let inet = s.Scenario.inet in
  let topo = Internet.topo inet in
  let dom name = Option.get (Topo.find_by_name topo name) in
  (* Exhaust B's first range so its claim doubles (256 addresses per
     /24). *)
  let got = ref 1 (* the scenario already allocated one *) in
  (try
     for _ = 1 to 400 do
       match Internet.request_address inet (dom "B") with
       | Some _ -> incr got
       | None -> raise Exit
     done
   with Exit -> ());
  Internet.run_for inet (Time.hours 2.0);
  (* More allocations must now succeed from the doubled range. *)
  (match Internet.request_address inet (dom "B") with
  | Some _ -> ()
  | None -> Alcotest.fail "doubling did not unblock allocation");
  (* And the original group still delivers. *)
  let d = Scenario.send s ~source:(Host_ref.make (dom "E") 0) in
  check Alcotest.int "group survives the renumber-free doubling" 4 (List.length d)

let suite =
  [
    ("fabric rebuild moves path", `Quick, test_fabric_rebuild_moves_path);
    ("fabric rebuild preserves members/branches", `Quick, test_fabric_rebuild_preserves_members_and_branches);
    ("active groups listing", `Quick, test_active_groups_listing);
    ("integrated root migration on withdraw", `Quick, test_integrated_root_migration_on_withdraw);
    ("integrated repair under MASC doubling", `Quick, test_integrated_repair_traced_by_doubling);
  ]
