(** Address-demand workload generators (§4.3.3).

    The paper's simulation drives every child domain with the same
    stochastic demand: "blocks of 256 addresses with a lifetime of 30
    days ... inter-request times chosen uniformly and randomly from
    between 1 and 95 hours".  This module packages that model (and a
    bursty variant for the "sudden increase in demand" discussion of
    §4.1) for reuse by simulators, examples, and tests. *)

type profile = {
  block_size : int;
  block_lifetime : Time.t;
  inter_request : [ `Uniform of Time.t * Time.t | `Exponential of Time.t ];
      (** time between successive block requests *)
}

val paper_profile : profile
(** 256-address blocks, 30-day lifetime, U[1 h, 95 h]. *)

val bursty_profile : profile
(** The §4.1 stress case: same blocks, exponential inter-arrivals with a
    4-hour mean — roughly 12× the steady rate. *)

type event = { at : Time.t; expires : Time.t }
(** One block request: issued at [at], its addresses lapse at
    [expires]. *)

val schedule : profile -> rng:Rng.t -> horizon:Time.t -> event list
(** The full request stream for one domain up to [horizon], in time
    order. *)

val drive :
  profile ->
  rng:Rng.t ->
  engine:Engine.t ->
  horizon:Time.t ->
  on_request:(expires:Time.t -> unit) ->
  unit
(** Schedule the stream on a live engine: [on_request] fires at each
    request time with the block's expiry. *)

val expected_steady_blocks : profile -> float
(** Little's-law estimate of concurrently live blocks in steady state
    (≈ 15 for the paper profile — 2500 domains × 15 = the 37 500
    outstanding requests quoted in §4.3.3). *)
