lib/workload/demand.mli: Engine Rng Time
