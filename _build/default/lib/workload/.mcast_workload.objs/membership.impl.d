lib/workload/membership.ml: Array Domain Hashtbl List Rng Spf Time Topo
