lib/workload/membership.mli: Domain Rng Time Topo
