lib/workload/demand.ml: Engine List Rng Time
