type style = Dvmrp | Pim_dm | Pim_sm | Cbt

let style_name = function
  | Dvmrp -> "DVMRP"
  | Pim_dm -> "PIM-DM"
  | Pim_sm -> "PIM-SM"
  | Cbt -> "CBT"

let floods_data = function Dvmrp | Pim_dm -> true | Pim_sm | Cbt -> false

let strict_rpf = function Dvmrp | Pim_dm -> true | Pim_sm | Cbt -> false

type t = {
  migp_style : style;
  migp_domain : Domain.id;
  membership : (Ipv4.t, Host_ref.t list ref) Hashtbl.t;
  mutable on_group_active : group:Ipv4.t -> active:bool -> unit;
  mutable floods : int;
  mutable encaps : int;
  mutable prunes : int;
}

let create style ~domain =
  {
    migp_style = style;
    migp_domain = domain;
    membership = Hashtbl.create 8;
    on_group_active = (fun ~group:_ ~active:_ -> ());
    floods = 0;
    encaps = 0;
    prunes = 0;
  }

let style t = t.migp_style

let domain t = t.migp_domain

let set_on_group_active t f = t.on_group_active <- f

let host_join t ~group ~host =
  if host.Host_ref.host_domain <> t.migp_domain then
    invalid_arg "Migp.host_join: host not in this domain";
  match Hashtbl.find_opt t.membership group with
  | None ->
      Hashtbl.replace t.membership group (ref [ host ]);
      t.on_group_active ~group ~active:true
  | Some cell ->
      if List.exists (Host_ref.equal host) !cell then
        invalid_arg "Migp.host_join: already a member";
      cell := !cell @ [ host ]

let host_leave t ~group ~host =
  match Hashtbl.find_opt t.membership group with
  | None -> invalid_arg "Migp.host_leave: not a member"
  | Some cell ->
      if not (List.exists (Host_ref.equal host) !cell) then
        invalid_arg "Migp.host_leave: not a member";
      cell := List.filter (fun h -> not (Host_ref.equal h host)) !cell;
      if !cell = [] then begin
        Hashtbl.remove t.membership group;
        t.on_group_active ~group ~active:false
      end

let members t ~group =
  match Hashtbl.find_opt t.membership group with
  | None -> []
  | Some cell -> !cell

let has_members t ~group = Hashtbl.mem t.membership group

let groups t = Hashtbl.fold (fun g _ acc -> g :: acc) t.membership []

let note_flood_delivery t n = t.floods <- t.floods + n

let note_encapsulation t = t.encaps <- t.encaps + 1

let note_internal_prune t = t.prunes <- t.prunes + 1

let flood_deliveries t = t.floods

let encapsulations t = t.encaps

let internal_prunes t = t.prunes
