(** Multicast Interior Gateway Protocol (MIGP) components.

    BGMP is MIGP-independent (§3): each domain runs whatever multicast
    routing protocol it likes internally, and BGMP interacts with it only
    through a narrow behavioural interface.  Since our domains are atomic
    (no interior topology — see DESIGN.md), each MIGP is modelled by the
    behaviour BGMP can observe at the domain boundary:

    - {b membership tracking} and the Domain-Wide-Report-style signal
      that tells the best exit border router when the domain gains its
      first member or loses its last one;
    - {b data distribution style}: DVMRP and PIM-DM {e flood} incoming
      data to every border router (which then prune), while PIM-SM and
      CBT deliver only along explicitly joined state;
    - {b RPF strictness}: DVMRP and PIM-DM accept a source's packets
      only from the border router on the unicast shortest path back to
      the source, forcing encapsulation (and motivating BGMP's
      source-specific branches, §5.3); PIM-SM and CBT forward on their
      internal shared tree regardless of entry router.

    Counters expose the overhead differences (flood deliveries,
    encapsulations) that the paper discusses qualitatively. *)

type style = Dvmrp | Pim_dm | Pim_sm | Cbt

val style_name : style -> string

val floods_data : style -> bool
(** DVMRP, PIM-DM: broadcast-and-prune inside the domain. *)

val strict_rpf : style -> bool
(** DVMRP, PIM-DM: source packets must enter at the RPF border router. *)

type t

val create : style -> domain:Domain.id -> t

val style : t -> style

val domain : t -> Domain.id

val set_on_group_active : t -> (group:Ipv4.t -> active:bool -> unit) -> unit
(** The Domain-Wide-Report hook: fired with [active:true] when the first
    local host joins a group and [active:false] when the last leaves. *)

val host_join : t -> group:Ipv4.t -> host:Host_ref.t -> unit
(** @raise Invalid_argument if the host is not in this domain or already
    a member. *)

val host_leave : t -> group:Ipv4.t -> host:Host_ref.t -> unit
(** @raise Invalid_argument if the host is not a member. *)

val members : t -> group:Ipv4.t -> Host_ref.t list
(** Join order. *)

val has_members : t -> group:Ipv4.t -> bool

val groups : t -> Ipv4.t list
(** Groups with at least one local member. *)

(** {1 Overhead counters} *)

val note_flood_delivery : t -> int -> unit
(** [n] border routers received a flooded copy. *)

val note_encapsulation : t -> unit

val note_internal_prune : t -> unit
(** A border router pruned itself off the internal broadcast. *)

val flood_deliveries : t -> int

val encapsulations : t -> int

val internal_prunes : t -> int
