lib/trees/baselines.ml: Array Gen List Path_eval Rng Shared_tree Spf Stats Topo
