lib/trees/shared_tree.mli: Domain Topo
