lib/trees/baselines.mli: Domain Rng Topo
