lib/trees/path_eval.ml: Array Domain Shared_tree Spf
