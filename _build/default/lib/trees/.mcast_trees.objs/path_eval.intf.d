lib/trees/path_eval.mli: Domain Topo
