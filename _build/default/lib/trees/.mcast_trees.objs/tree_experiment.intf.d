lib/trees/tree_experiment.mli: Stats
