lib/trees/tree_experiment.ml: Array Gen List Path_eval Rng Stats Topo
