lib/trees/shared_tree.ml: Array Domain List Option Spf Topo
