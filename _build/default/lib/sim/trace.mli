(** Structured event tracing.

    Protocol entities append tagged records as they act; tests assert on
    the recorded sequence and the examples print it as a narrative of the
    run (the Figure 1/3 walkthroughs are rendered from traces). *)

type entry = { time : Time.t; actor : string; tag : string; detail : string }

type t

val create : unit -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Disabled traces drop records (used by the large Figure-2 runs). *)

val record : t -> time:Time.t -> actor:string -> tag:string -> string -> unit

val recordf :
  t -> time:Time.t -> actor:string -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Format-string convenience; the message is only rendered when the
    trace is enabled. *)

val entries : t -> entry list
(** Oldest first. *)

val length : t -> int

val clear : t -> unit

val find : t -> tag:string -> entry list
(** All entries with the given tag, oldest first. *)

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> t -> unit
(** The full trace, one entry per line. *)
