type entry = { time : Time.t; actor : string; tag : string; detail : string }

type t = { mutable entries_rev : entry list; mutable count : int; mutable on : bool }

let create () = { entries_rev = []; count = 0; on = true }

let enabled t = t.on

let set_enabled t v = t.on <- v

let record t ~time ~actor ~tag detail =
  if t.on then begin
    t.entries_rev <- { time; actor; tag; detail } :: t.entries_rev;
    t.count <- t.count + 1
  end

let recordf t ~time ~actor ~tag fmt =
  Format.kasprintf
    (fun detail -> record t ~time ~actor ~tag detail)
    fmt

let entries t = List.rev t.entries_rev

let length t = t.count

let clear t =
  t.entries_rev <- [];
  t.count <- 0

let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let pp_entry ppf e = Format.fprintf ppf "[%a] %-14s %-18s %s" Time.pp e.time e.actor e.tag e.detail

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
