type t = float

let zero = 0.0
let seconds s = s
let minutes m = m *. 60.0
let hours h = h *. 3600.0
let days d = d *. 86400.0

let to_seconds t = t
let to_hours t = t /. 3600.0
let to_days t = t /. 86400.0

let pp ppf t =
  if t >= 86400.0 then Format.fprintf ppf "%.2fd" (to_days t)
  else if t >= 3600.0 then Format.fprintf ppf "%.2fh" (to_hours t)
  else if t >= 1.0 then Format.fprintf ppf "%.3fs" t
  else Format.fprintf ppf "%.1fms" (t *. 1000.0)
