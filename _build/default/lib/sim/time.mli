(** Simulated time.

    Time is a float number of seconds since the start of the simulation.
    The MASC experiments span hundreds of days while BGMP joins settle in
    milliseconds, so helpers for both scales are provided. *)

type t = float

val zero : t
val seconds : float -> t
val minutes : float -> t
val hours : float -> t
val days : float -> t

val to_seconds : t -> float
val to_hours : t -> float
val to_days : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering picking a sensible unit. *)
