type t = Advertise of Route.t | Withdraw of Prefix.t

let pp ppf = function
  | Advertise r -> Format.fprintf ppf "advertise %a" Route.pp r
  | Withdraw p -> Format.fprintf ppf "withdraw %a" Prefix.pp p
