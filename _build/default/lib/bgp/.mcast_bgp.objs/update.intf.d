lib/bgp/update.mli: Format Prefix Route
