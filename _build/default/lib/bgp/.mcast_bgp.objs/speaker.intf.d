lib/bgp/speaker.mli: Domain Ipv4 Prefix Route Time Update
