lib/bgp/route.mli: Domain Format Prefix Time
