lib/bgp/route.ml: Domain Format Int List Prefix String Time
