lib/bgp/bgp_network.ml: Array Domain Engine Hashtbl List Speaker Topo
