lib/bgp/speaker.ml: Domain Hashtbl List Option Prefix Prefix_trie Route Update
