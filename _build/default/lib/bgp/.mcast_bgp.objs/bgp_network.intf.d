lib/bgp/bgp_network.mli: Domain Engine Prefix Speaker Time Topo
