lib/bgp/update.ml: Format Prefix Route
