(** BGP update messages exchanged between peering speakers.

    A real BGP UPDATE carries both announcements and withdrawals; we keep
    one of each per message, which loses nothing at the modelling level
    because our sessions are FIFO. *)

type t =
  | Advertise of Route.t
  | Withdraw of Prefix.t

val pp : Format.formatter -> t -> unit
