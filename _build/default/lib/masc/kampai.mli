(** Kampai-style non-contiguous address masks (§4.3.3/§7).

    The paper: "We are also investigating the use of non-contiguous
    masks as in [Tsuchiya's] Kampai scheme.  The use of non-contiguous
    masks in the Internet may face operational resistance ... but would
    provide even better address space utilization."

    A Kampai block is [(value, mask)]: it covers every address [a] with
    [a land mask = value].  Unlike a CIDR prefix, the zero bits of
    [mask] need not be contiguous, so a domain can always double its
    block by releasing {e any} mask bit whose flip keeps it disjoint
    from every other block — no buddy fragmentation, no renumbering —
    and its whole allocation stays a single routing-table entry forever.

    {!Sim} runs the Figure-2 demand model on one allocation level twice
    — contiguous prefixes with the §4.3.3 policy vs Kampai blocks — and
    reports the utilization/table-size comparison the paper conjectures
    ([bin/main.exe -- ablate-kampai]). *)

type block = private { value : int; mask : int }
(** Invariant: [value land mask = value], and [mask] always keeps the
    four class-D selector bits (so every block stays inside 224/4). *)

val block_of_prefix : Prefix.t -> block
(** A contiguous prefix viewed as a Kampai block.
    @raise Invalid_argument outside 224/4. *)

val size : block -> int
(** Number of addresses covered: [2^(free bits)]. *)

val mem : Ipv4.t -> block -> bool

val disjoint : block -> block -> bool
(** Two blocks are disjoint iff their values differ on some bit
    constrained by both masks. *)

val grow : block -> others:block list -> block option
(** Double the block by releasing one mask bit, choosing the
    lowest-numbered bit whose release keeps the block disjoint from
    every block in [others].  [None] if no bit qualifies. *)

val shrink : block -> block option
(** Halve the block by re-fixing its lowest released bit (to 0).
    [None] when the block is a single address...
    or rather when nothing was ever released. *)

val pp : Format.formatter -> block -> unit
(** Rendered as value/mask in dotted-quad, e.g.
    [224.1.0.0/255.255.0.255] for a block with a non-contiguous hole. *)

(** The comparison simulation. *)
module Sim : sig
  type params = {
    domains : int;
    block_size : int;
    block_lifetime : Time.t;
    request_min : Time.t;
    request_max : Time.t;
    horizon : Time.t;
    seed : int;
  }

  val default_params : params
  (** 100 domains, Figure-2 per-domain demand, 400 days. *)

  type side = {
    utilization : float;  (** steady-state mean: demanded / allocated *)
    table_entries : float;  (** steady-state mean routing-table entries *)
    failures : int;  (** demands that could not be satisfied *)
    renumberings : int;
        (** consolidations forcing a domain onto a new range (always 0
            for Kampai: growth is in place) *)
  }

  type result = { contiguous : side; kampai : side }

  val run : params -> result
end
