(** The MASC expansion policy of §4.3.3: how a domain decides to satisfy
    a demand for more addresses.

    The policy is pure — it inspects the domain's current claims and the
    arena and returns a decision — so it is unit-testable in isolation
    and shared verbatim by the distributed protocol node and the
    Figure-2 allocation simulator.

    Paper rules implemented:
    - target occupancy for a domain's space is [threshold] (75 %);
    - keep at most [max_prefixes] (two) active prefixes per domain;
    - on unsatisfiable demand, {e double} the smallest active prefix
      whose buddy is free when post-doubling utilization stays at or
      above the threshold; otherwise {e claim a small additional prefix}
      just sufficient for the demand; when the domain is at its prefix
      limit and nothing can double under the threshold rule, double
      anyway if physically possible, else {e consolidate}: claim one new
      prefix large enough for the whole current usage and retire the old
      prefixes (they lapse as their addresses expire). *)

type claim = {
  prefix : Prefix.t;
  active : bool;  (** new assignments allowed (inactive = draining) *)
  used : int;  (** addresses currently assigned out of this prefix *)
}

type decision =
  | Assign of Prefix.t  (** room exists in this active claimed prefix *)
  | Double of Prefix.t  (** grow this active claim into its buddy *)
  | Claim_new of int  (** claim a fresh prefix with this mask length *)
  | Consolidate of int
      (** claim a fresh prefix with this mask length; deactivate all
          current claims *)
  | Blocked  (** the arena cannot satisfy the demand *)

type params = { threshold : float; max_prefixes : int }

val default_params : params
(** 75 % occupancy, two prefixes — the paper's simulation settings. *)

val decide : params:params -> space:Address_space.t -> claims:claim list -> need:int -> decision
(** [need] is the number of addresses requested (e.g. a block of 256).
    [space] is the arena the domain claims from; [claims] the domain's
    own claims with their usage. *)

val pp_decision : Format.formatter -> decision -> unit
