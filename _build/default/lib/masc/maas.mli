(** A Multicast Address Allocation Server (MAAS).

    One MAAS serves one domain ([13] in the paper): group initiators ask
    it for a multicast address; it hands out unique addresses from the
    ranges the domain's MASC node has acquired, with a lifetime bounded
    by the range's lifetime, and asks the node for more space when its
    pool runs dry ("it is expected that MASC will keep ahead of the
    demand").  Allocation is decoupled from MASC: while space is
    available, an address is handed out immediately — the fast local
    path the paper contrasts with acquiring a new range. *)

type allocation = {
  address : Ipv4.t;
  from_range : Prefix.t;
  alloc_lifetime_end : Time.t;
      (** min(requested lifetime, lifetime of the underlying range) *)
}

type t

val create : engine:Engine.t -> node:Masc_node.t -> block_size:int -> t
(** [block_size] is the amount of space requested from the MASC node
    when the pool is exhausted (the paper's simulations use 256). *)

val allocate : t -> ?lifetime:Time.t -> unit -> allocation option
(** An unused address, or [None] when no acquired range has room (the
    MAAS then asks its node for space; retry after the claim settles —
    {!pending} reports how many allocations are waiting).  Default
    lifetime: the remaining lifetime of the chosen range. *)

val release : t -> allocation -> unit
(** Return an address to the pool.  Releasing twice is an error. *)

val in_use : t -> int

val pending : t -> int
(** Allocation attempts that failed and await new space. *)

val usable_addresses : t -> int
(** Free addresses across the node's acquired ranges. *)

val renumber_notices : t -> int
(** How many live allocations were invalidated because their underlying
    range was lost (collision after partition, or expiry) — the paper's
    "applications should be prepared to cope" event. *)
