(* Per-range allocation state: a bump pointer plus a free list of
   returned addresses.  Ranges are keyed by their claim prefix; when the
   MASC node reports a range lost, every live allocation inside it is
   invalidated and counted as a renumbering event. *)

type range_pool = { mutable range : Prefix.t; mutable next_addr : Ipv4.t; mutable freed : int list }

type allocation = { address : Ipv4.t; from_range : Prefix.t; alloc_lifetime_end : Time.t }

type t = {
  engine : Engine.t;
  node : Masc_node.t;
  block_size : int;
  pools : (Prefix.t, range_pool) Hashtbl.t;
  live : (Ipv4.t, Prefix.t) Hashtbl.t;
  mutable pending_count : int;
  mutable renumbered : int;
}

let create ~engine ~node ~block_size =
  let t =
    {
      engine;
      node;
      block_size;
      pools = Hashtbl.create 4;
      live = Hashtbl.create 64;
      pending_count = 0;
      renumbered = 0;
    }
  in
  Masc_node.add_on_replaced node (fun ~old_prefix ~by ->
      (* A doubled range keeps every existing assignment valid: grow the
         pool in place.  If the old range was the upper buddy, the fresh
         lower half is skipped (the bump pointer only moves up). *)
      match Hashtbl.find_opt t.pools old_prefix with
      | None -> ()
      | Some pool ->
          Hashtbl.remove t.pools old_prefix;
          pool.range <- by;
          Hashtbl.replace t.pools by pool;
          Hashtbl.iter
            (fun addr range ->
              if Prefix.equal range old_prefix then Hashtbl.replace t.live addr by)
            (Hashtbl.copy t.live));
  Masc_node.add_on_lost node (fun prefix ->
      (* Invalidate allocations in the lost range. *)
      match Hashtbl.find_opt t.pools prefix with
      | None -> ()
      | Some pool ->
          let victims =
            Hashtbl.fold
              (fun addr range acc -> if Prefix.equal range prefix then addr :: acc else acc)
              t.live []
          in
          List.iter
            (fun addr ->
              Hashtbl.remove t.live addr;
              t.renumbered <- t.renumbered + 1)
            victims;
          ignore pool;
          Hashtbl.remove t.pools prefix;
          Masc_node.note_assigned node prefix (-List.length victims));
  t

let sync_pools t =
  List.iter
    (fun (claim : Masc_node.own_claim) ->
      if not (Hashtbl.mem t.pools claim.Masc_node.claim_prefix) then begin
        (* Never create a pool overlapping an existing one (a consolidated
           or doubled range can cover an old pool still draining). *)
        let overlapping =
          Hashtbl.fold
            (fun _ pool acc -> acc || Prefix.overlaps pool.range claim.Masc_node.claim_prefix)
            t.pools false
        in
        if not overlapping then
          Hashtbl.replace t.pools claim.Masc_node.claim_prefix
            {
              range = claim.Masc_node.claim_prefix;
              next_addr = Prefix.base claim.Masc_node.claim_prefix;
              freed = [];
            }
      end)
    (Masc_node.acquired_ranges t.node)

let range_lifetime t prefix =
  let claims = Masc_node.acquired_ranges t.node in
  match
    List.find_opt (fun (c : Masc_node.own_claim) -> Prefix.equal c.Masc_node.claim_prefix prefix) claims
  with
  | Some c -> Some c.Masc_node.claim_lifetime_end
  | None -> None

let allocate t ?lifetime () =
  sync_pools t;
  (* Prefer the fullest pool so draining ranges empty out. *)
  let candidates =
    Hashtbl.fold
      (fun _ pool acc ->
        let free = Prefix.last pool.range - pool.next_addr + 1 + List.length pool.freed in
        if free > 0 then (free, pool) :: acc else acc)
      t.pools []
    |> List.sort (fun (fa, a) (fb, b) ->
           let c = compare fa fb in
           if c <> 0 then c else Prefix.compare a.range b.range)
  in
  match candidates with
  | [] ->
      t.pending_count <- t.pending_count + 1;
      Masc_node.request_space t.node ~need:t.block_size;
      None
  | (_, pool) :: _ ->
      let address =
        match pool.freed with
        | a :: rest ->
            pool.freed <- rest;
            a
        | [] ->
            let a = pool.next_addr in
            pool.next_addr <- pool.next_addr + 1;
            a
      in
      Hashtbl.replace t.live address pool.range;
      Masc_node.note_assigned t.node pool.range 1;
      let range_end =
        Option.value ~default:(Engine.now t.engine) (range_lifetime t pool.range)
      in
      let alloc_lifetime_end =
        match lifetime with
        | None -> range_end
        | Some l -> min range_end (Engine.now t.engine +. l)
      in
      if t.pending_count > 0 then t.pending_count <- t.pending_count - 1;
      Some { address; from_range = pool.range; alloc_lifetime_end }

let release t alloc =
  match Hashtbl.find_opt t.live alloc.address with
  | None -> invalid_arg "Maas.release: address not live (double release?)"
  | Some range ->
      Hashtbl.remove t.live alloc.address;
      Masc_node.note_assigned t.node range (-1);
      (match Hashtbl.find_opt t.pools range with
      | Some pool -> pool.freed <- alloc.address :: pool.freed
      | None -> ())

let in_use t = Hashtbl.length t.live

let pending t = t.pending_count

let usable_addresses t =
  sync_pools t;
  Hashtbl.fold
    (fun _ pool acc -> acc + (Prefix.last pool.range - pool.next_addr + 1 + List.length pool.freed))
    t.pools 0

let renumber_notices t = t.renumbered
