lib/masc/masc_node.ml: Address_space Claim_policy Domain Engine Format Hashtbl List Masc_message Option Prefix Printf Rng String Time Trace
