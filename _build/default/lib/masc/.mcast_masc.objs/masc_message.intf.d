lib/masc/masc_message.mli: Domain Format Prefix Time
