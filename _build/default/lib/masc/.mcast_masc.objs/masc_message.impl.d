lib/masc/masc_message.ml: Domain Format List Prefix String Time
