lib/masc/allocation_sim.ml: Address_space Array Claim_policy Engine List Prefix Rng Seq Time
