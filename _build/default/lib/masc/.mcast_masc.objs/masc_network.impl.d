lib/masc/masc_network.ml: Address_space Domain Engine Hashtbl List Masc_message Masc_node Prefix Rng Time Topo Trace
