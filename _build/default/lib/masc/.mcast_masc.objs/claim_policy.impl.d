lib/masc/claim_policy.ml: Address_space Format List Prefix
