lib/masc/kampai.mli: Format Ipv4 Prefix Time
