lib/masc/maas.ml: Engine Hashtbl Ipv4 List Masc_node Option Prefix Time
