lib/masc/address_space.mli: Prefix Rng
