lib/masc/masc_network.mli: Domain Engine Masc_node Prefix Rng Topo Trace
