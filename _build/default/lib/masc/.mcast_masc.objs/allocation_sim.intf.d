lib/masc/allocation_sim.mli: Claim_policy Prefix Time
