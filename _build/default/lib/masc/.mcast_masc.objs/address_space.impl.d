lib/masc/address_space.ml: Free_space List Prefix Prefix_trie Rng
