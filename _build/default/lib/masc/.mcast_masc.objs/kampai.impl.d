lib/masc/kampai.ml: Address_space Array Claim_policy Engine Format Fun Ipv4 List Prefix Rng Stats Time
