lib/masc/masc_node.mli: Address_space Claim_policy Domain Engine Masc_message Prefix Rng Time Trace
