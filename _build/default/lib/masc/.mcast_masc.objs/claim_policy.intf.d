lib/masc/claim_policy.mli: Address_space Format Prefix
