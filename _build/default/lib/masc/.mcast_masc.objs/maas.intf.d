lib/masc/maas.mli: Engine Ipv4 Masc_node Prefix Time
