type t = {
  mutable cover_list : Prefix.t list;  (** kept aggregated & sorted *)
  claim_trie : int Prefix_trie.t;  (** prefix -> owner *)
}

let create () = { cover_list = []; claim_trie = Prefix_trie.create () }

let add_cover t p = t.cover_list <- Prefix.aggregate (p :: t.cover_list)

let remove_cover t p = t.cover_list <- List.filter (fun q -> not (Prefix.equal p q)) t.cover_list

let covers t = t.cover_list

let register t ~owner p =
  match Prefix_trie.find_exact t.claim_trie p with
  | Some _ -> invalid_arg "Address_space.register: prefix already claimed"
  | None -> Prefix_trie.add t.claim_trie p owner

let unregister t p = Prefix_trie.remove t.claim_trie p

let owner_of t p = Prefix_trie.find_exact t.claim_trie p

let claims t = Prefix_trie.to_list t.claim_trie

let claims_of t ~owner =
  List.filter_map (fun (p, o) -> if o = owner then Some p else None) (claims t)

let claim_count t = Prefix_trie.cardinal t.claim_trie

let claim_prefixes t = List.map fst (claims t)

let conflicting t candidate =
  List.filter (fun (p, _) -> Prefix.overlaps p candidate) (claims t)

let in_some_cover t candidate = List.exists (fun c -> Prefix.subsumes c candidate) t.cover_list

let is_free t candidate = in_some_cover t candidate && conflicting t candidate = []

let choose_claim_placed t ~rng ~want_len ~placement =
  let allocated = claim_prefixes t in
  let all_blocks =
    List.concat_map (fun cover -> Free_space.free_blocks ~parent:cover ~allocated) t.cover_list
  in
  let usable = List.filter (fun b -> Prefix.len b <= want_len) all_blocks in
  match usable with
  | [] -> None
  | _ :: _ ->
      let best = List.fold_left (fun acc b -> min acc (Prefix.len b)) 33 usable in
      let shortest = List.filter (fun b -> Prefix.len b = best) usable in
      let block = List.nth shortest (Rng.int rng (List.length shortest)) in
      (match placement with
      | `First -> Some (Prefix.first_subprefix block want_len)
      | `Random ->
          let slots = Prefix.subprefix_count block want_len in
          Some (Prefix.nth_subprefix block want_len (Rng.int rng slots)))

let choose_claim t ~rng ~want_len = choose_claim_placed t ~rng ~want_len ~placement:`First

let can_double t p =
  if Prefix.len p = 0 then false
  else begin
    let buddy = Prefix.buddy p in
    let doubled = Prefix.double p in
    in_some_cover t doubled
    && not (List.exists (fun (q, _) -> (not (Prefix.equal q p)) && Prefix.overlaps q buddy) (claims t))
  end

let total_addresses t = List.fold_left (fun acc c -> acc + Prefix.size c) 0 t.cover_list

let free_addresses t =
  let allocated = claim_prefixes t in
  List.fold_left (fun acc c -> acc + Free_space.free_count ~parent:c ~allocated) 0 t.cover_list
