type claim = { prefix : Prefix.t; active : bool; used : int }

type decision =
  | Assign of Prefix.t
  | Double of Prefix.t
  | Claim_new of int
  | Consolidate of int
  | Blocked

type params = { threshold : float; max_prefixes : int }

let default_params = { threshold = 0.75; max_prefixes = 2 }

let pp_decision ppf = function
  | Assign p -> Format.fprintf ppf "assign within %a" Prefix.pp p
  | Double p -> Format.fprintf ppf "double %a" Prefix.pp p
  | Claim_new l -> Format.fprintf ppf "claim new /%d" l
  | Consolidate l -> Format.fprintf ppf "consolidate into /%d" l
  | Blocked -> Format.fprintf ppf "blocked"

let decide ~params ~space ~claims ~need =
  if need <= 0 then invalid_arg "Claim_policy.decide: non-positive need";
  let active = List.filter (fun c -> c.active) claims in
  (* Best-fit assignment: the fullest active prefix that still has room,
     keeping utilization dense so draining prefixes empty faster. *)
  let fitting =
    List.filter (fun c -> Prefix.size c.prefix - c.used >= need) active
    |> List.sort (fun a b ->
           compare (Prefix.size a.prefix - a.used) (Prefix.size b.prefix - b.used))
  in
  match fitting with
  | c :: _ -> Assign c.prefix
  | [] ->
      let total_size = List.fold_left (fun acc c -> acc + Prefix.size c.prefix) 0 claims in
      let total_used = need + List.fold_left (fun acc c -> acc + c.used) 0 claims in
      let doubling_candidates =
        List.filter
          (fun c -> need <= Prefix.size c.prefix && Address_space.can_double space c.prefix)
          active
        |> List.sort (fun a b -> compare (Prefix.size a.prefix) (Prefix.size b.prefix))
      in
      let meets_threshold c =
        float_of_int total_used
        >= params.threshold *. float_of_int (total_size + Prefix.size c.prefix)
      in
      let preferred = List.filter meets_threshold doubling_candidates in
      (match preferred with
      | c :: _ -> Double c.prefix
      | [] ->
          if List.length active < params.max_prefixes then Claim_new (Prefix.mask_for_count need)
          else begin
            match doubling_candidates with
            | c :: _ -> Double c.prefix
            | [] -> (
                (* Consolidation target: one prefix holding everything in
                   live use plus the new demand. *)
                let want = Prefix.mask_for_count total_used in
                let fits_somewhere =
                  List.exists
                    (fun cover -> Prefix.len cover <= want)
                    (Address_space.covers space)
                in
                if fits_somewhere then Consolidate want else Blocked)
          end)
