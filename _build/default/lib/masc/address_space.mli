(** A MASC allocation arena: the view a MASC node keeps of one address
    space it allocates from.

    The arena is described by {e covers} — the prefixes that delimit the
    space (the parent's advertised ranges, or 224/4 itself for top-level
    domains) — and {e claims} — the sub-prefixes it has heard claimed by
    the domains allocating out of that space (its siblings and itself).
    All the claim algorithm's questions ("what are the largest free
    blocks?", "can this prefix double into its buddy?") are answered
    here. *)

type t

val create : unit -> t

val add_cover : t -> Prefix.t -> unit
(** Extend the space.  Overlapping covers are allowed (they are unioned
    logically); an exact duplicate is a no-op. *)

val remove_cover : t -> Prefix.t -> unit

val covers : t -> Prefix.t list
(** In prefix order. *)

val register : t -> owner:int -> Prefix.t -> unit
(** Record a claim by [owner].  @raise Invalid_argument if the exact
    prefix is already registered (collisions are decided before
    registration). *)

val unregister : t -> Prefix.t -> unit
(** Forget a claim (expiry, release, or collision loss). *)

val owner_of : t -> Prefix.t -> int option

val claims : t -> (Prefix.t * int) list
(** All (prefix, owner) claims, in prefix order. *)

val claims_of : t -> owner:int -> Prefix.t list

val claim_count : t -> int

val conflicting : t -> Prefix.t -> (Prefix.t * int) list
(** Registered claims overlapping the candidate. *)

val is_free : t -> Prefix.t -> bool
(** Inside some cover and overlapping no registered claim. *)

val choose_claim : t -> rng:Rng.t -> want_len:int -> Prefix.t option
(** One step of the §4.3.3 claim algorithm: compute the free blocks of
    every cover, keep those of the shortest mask length overall, pick one
    uniformly at random, and return its first sub-prefix of length
    [want_len].  [None] when no free block can hold a /[want_len]. *)

val choose_claim_placed :
  t -> rng:Rng.t -> want_len:int -> placement:[ `First | `Random ] -> Prefix.t option
(** Like {!choose_claim} but with a selectable placement rule inside the
    chosen free block: [`First] is the paper's first-sub-prefix rule;
    [`Random] places the claim at a uniformly random aligned position —
    the ablation baseline showing why the paper's rule aggregates
    better. *)

val can_double : t -> Prefix.t -> bool
(** Is the buddy of this claimed prefix entirely free and the doubled
    prefix still inside a single cover?  (The doubling expansion of
    §4.3.3.) *)

val free_addresses : t -> int
(** Total unclaimed addresses across the covers. *)

val total_addresses : t -> int
(** Total addresses across the covers (overlapping covers counted
    once). *)
