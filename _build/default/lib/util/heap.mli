(** Imperative binary min-heap.

    Used as the event queue of the discrete-event engine and as a priority
    queue in shortest-path computations.  Elements are ordered by a
    user-supplied comparison fixed at creation time; ties are broken by
    insertion order (FIFO), which the simulator relies on for
    deterministic processing of simultaneous events. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** An empty heap ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order; the heap is unchanged. *)
