type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance the counter by the golden-ratio
   increment, then scramble with two xor-shift-multiply rounds. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = int64 t in
  { state = seed }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling to avoid modulo bias. *)
    let rec draw () =
      let r = bits t in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()
  end else begin
    let rec draw () =
      let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits into the mantissa. *)
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let rec positive () =
    let u = float t 1.0 in
    if u > 0.0 then u else positive ()
  in
  -. mean *. log (positive ())

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* For small k relative to n use a hash-set of draws; otherwise shuffle a
     full index array.  Both are O(k) expected beyond the O(n) shuffle. *)
  if 2 * k >= n then begin
    let a = Array.init n (fun i -> i) in
    shuffle t a;
    Array.sub a 0 k
  end else begin
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
