type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean_acc = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean_acc

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = if t.n = 0 then invalid_arg "Stats.min: empty" else t.min_v

let max t = if t.n = 0 then invalid_arg "Stats.max: empty" else t.max_v

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean_acc -. a.mean_acc in
    let mean_acc = a.mean_acc +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean_acc;
      m2;
      min_v = Stdlib.min a.min_v b.min_v;
      max_v = Stdlib.max a.max_v b.max_v;
    }
  end

let mean_of a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let max_of a = Array.fold_left Stdlib.max neg_infinity a

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

type series = { label : string; points : (float * float) array }

let pp_series ppf s =
  Format.fprintf ppf "# %s@." s.label;
  Array.iter (fun (x, y) -> Format.fprintf ppf "%g %g@." x y) s.points
