(** Running statistics and small numeric helpers for the experiment
    harness. *)

type t
(** A mutable accumulator of scalar observations (Welford's algorithm for
    mean/variance; min/max tracked exactly). *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0. when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0. with fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** @raise Invalid_argument when empty. *)

val max : t -> float
(** @raise Invalid_argument when empty. *)

val merge : t -> t -> t
(** Combine two accumulators as if all observations were added to one. *)

(** Batch helpers over float arrays. *)

val mean_of : float array -> float
val max_of : float array -> float
val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0, 100\]]; sorts a copy; linear
    interpolation between ranks.  @raise Invalid_argument on empty input. *)

type series = { label : string; points : (float * float) array }
(** A named sequence of (x, y) points, as printed by the figure
    harness. *)

val pp_series : Format.formatter -> series -> unit
(** Gnuplot-style output: a [# label] header then one "x y" pair per
    line. *)
