(* Array-backed binary min-heap with FIFO tie-breaking.

   Each element is stored with the sequence number of its insertion; the
   effective ordering is [(cmp, seq)] lexicographically, so equal-priority
   elements pop in insertion order.  This determinism matters: the
   simulation engine schedules many events at the same timestamp and the
   protocols must process them in a reproducible order. *)

type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let entry_cmp t a b =
  let c = t.cmp a.value b.value in
  if c <> 0 then c else compare a.seq b.seq

let grow t =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let fresh_capacity = if capacity = 0 then 16 else 2 * capacity in
    (* The dummy cell is never read: indices >= size are dead. *)
    let fresh = Array.make fresh_capacity t.data.(0) in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let push t v =
  let e = { value = v; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 16 e else grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_cmp t t.data.(!i) t.data.(parent) < 0 then begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      i := parent
    end else continue := false
  done

let peek t = if t.size = 0 then None else Some t.data.(0).value

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && entry_cmp t t.data.(l) t.data.(!smallest) < 0 then smallest := l;
    if r < t.size && entry_cmp t t.data.(r) t.data.(!smallest) < 0 then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      i := !smallest
    end else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0).value in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t
    end;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i).value :: acc) in
  loop (t.size - 1) []
