lib/util/rng.mli:
