lib/util/heap.mli:
