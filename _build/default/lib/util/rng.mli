(** Deterministic pseudo-random number generation.

    Every stochastic component of the repository draws its randomness from
    this module rather than from [Stdlib.Random], so that a single integer
    seed reproduces an entire experiment bit-for-bit.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit counter-based
    generator with excellent statistical quality for simulation workloads,
    cheap [split], and no global state. *)

type t
(** A mutable generator.  Generators are cheap (one [int64] of state); give
    every independent simulation component its own [split] generator so
    that adding draws to one component does not perturb another. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is a generator that will produce the same future stream as
    [t] without affecting it. *)

val split : t -> t
(** [split t] advances [t] once and returns a new generator whose stream
    is statistically independent of [t]'s. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 30 uniform bits, in [\[0, 2^30)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** A fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)], in random order.  @raise Invalid_argument if [k > n] or
    [k < 0]. *)
