let to_dot ?(highlight = []) ?(highlight_edges = []) ?(label = "") topo =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph topology {\n";
  add "  rankdir=TB;\n";
  add "  node [fontname=\"Helvetica\", fontsize=11];\n";
  if label <> "" then add "  label=%S; labelloc=b;\n" label;
  List.iter
    (fun (d : Domain.t) ->
      let shape =
        match d.Domain.kind with
        | Domain.Backbone -> "box"
        | Domain.Regional -> "ellipse"
        | Domain.Stub -> "plaintext"
        | Domain.Exchange -> "diamond"
      in
      let extra =
        if List.mem d.Domain.id highlight then
          ", style=filled, fillcolor=\"#aaddff\""
        else ""
      in
      add "  n%d [label=\"%s\", shape=%s%s];\n" d.Domain.id d.Domain.name shape extra)
    (Topo.domains topo);
  let edge_highlighted a b =
    List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) highlight_edges
  in
  List.iter
    (fun (l : Topo.link) ->
      let hl = edge_highlighted l.Topo.a l.Topo.b in
      let color = if hl then ", color=\"#0066cc\", penwidth=2.5" else "" in
      match l.Topo.rel with
      | Topo.Provider_customer -> add "  n%d -> n%d [arrowhead=none, arrowtail=none%s];\n" l.Topo.a l.Topo.b color
      | Topo.Peer ->
          add "  n%d -> n%d [dir=none, style=dashed, constraint=false%s];\n" l.Topo.a l.Topo.b
            color)
    (Topo.links topo);
  add "}\n";
  Buffer.contents buf
