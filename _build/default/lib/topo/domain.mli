(** Autonomous systems (domains).

    The paper's unit of routing is the domain: "the set of networks under
    administrative control of a single organization".  Domains come in
    the provider-hierarchy roles the paper describes (backbones at the
    top, regionals below them, campus/stub networks at the leaves). *)

type id = int
(** Dense identifiers, assigned by the topology in creation order.  The
    deterministic MASC collision winner rule compares these ids. *)

type kind =
  | Backbone  (** national / inter-continental transit; MASC top level *)
  | Regional  (** mid-tier provider *)
  | Stub  (** campus or customer network; no transit *)
  | Exchange  (** neutral interconnect (MAE-East, LINX); seeds the
                  top-level address space in the start-up phase *)

type t = { id : id; name : string; kind : kind }

val make : id:id -> name:string -> kind:kind -> t

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int
(** By id. *)
