(** End hosts.

    Hosts are the senders and receivers of multicast data; the
    inter-domain layer only ever sees them through their domain, but
    traces, delivery checks, and the IP-service-model tests ("senders
    need not be members") need stable host identities. *)

type t = { host_domain : Domain.id; host_index : int }

val make : Domain.id -> int -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
