lib/topo/topo_dump.ml: Buffer Domain Fun List Printf String Time Topo
