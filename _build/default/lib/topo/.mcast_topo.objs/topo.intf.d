lib/topo/topo.mli: Domain Format Time
