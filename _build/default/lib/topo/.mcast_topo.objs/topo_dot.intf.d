lib/topo/topo_dot.mli: Domain Topo
