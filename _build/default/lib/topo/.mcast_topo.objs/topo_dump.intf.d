lib/topo/topo_dump.mli: Topo
