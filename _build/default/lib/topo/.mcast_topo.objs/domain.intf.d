lib/topo/domain.mli: Format
