lib/topo/spf.ml: Array Domain Heap List Queue Time Topo
