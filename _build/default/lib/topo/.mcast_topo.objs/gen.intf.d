lib/topo/gen.mli: Rng Topo
