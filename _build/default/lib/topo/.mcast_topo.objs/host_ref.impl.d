lib/topo/host_ref.ml: Domain Format Int
