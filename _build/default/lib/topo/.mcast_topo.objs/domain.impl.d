lib/topo/domain.ml: Format Int
