lib/topo/spf.mli: Domain Topo
