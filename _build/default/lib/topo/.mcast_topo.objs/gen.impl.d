lib/topo/gen.ml: Array Domain Hashtbl List Option Printf Rng Topo
