lib/topo/topo_dot.ml: Buffer Domain List Printf Topo
