lib/topo/topo.ml: Array Domain Format Hashtbl List Queue Time
