lib/topo/host_ref.mli: Domain Format
