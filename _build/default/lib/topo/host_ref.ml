type t = { host_domain : Domain.id; host_index : int }

let make host_domain host_index = { host_domain; host_index }

let compare a b =
  let c = Int.compare a.host_domain b.host_domain in
  if c <> 0 then c else Int.compare a.host_index b.host_index

let equal a b = compare a b = 0

let pp ppf t = Format.fprintf ppf "h%d.%d" t.host_domain t.host_index
