(** Shortest-path computations over the domain graph.

    Path lengths in the paper's Figure 4 are counted in inter-domain
    hops, so BFS is the primary tool; a latency-weighted Dijkstra is also
    provided for the event-driven stack.  Policy-constrained ("valley
    free") paths model BGP export rules: a route learned from a provider
    or peer is only exported to customers, so a valid path is a
    customer→provider ascent, at most one peer edge, then a
    provider→customer descent. *)

type paths = {
  src : Domain.id;
  dist : int array;  (** hop count; [max_int] when unreachable *)
  via : Domain.id array;  (** predecessor toward [src]; [-1] at [src] / unreachable *)
}

val bfs : Topo.t -> Domain.id -> paths
(** Single-source shortest hop counts.  Neighbor exploration follows
    link-insertion order, making tie-breaks deterministic. *)

val dist : paths -> Domain.id -> int

val path : paths -> Domain.id -> Domain.id list
(** The node sequence from [src] to the argument, inclusive; [\[\]] when
    unreachable. *)

val next_hop_toward : Topo.t -> paths -> Domain.id -> Domain.id option
(** First hop on the shortest path from the given node back toward
    [paths.src]; [None] at the source or when unreachable.  (This is the
    "next hop toward the root domain" a G-RIB lookup yields.) *)

type weighted = {
  wsrc : Domain.id;
  wdist : float array;  (** summed link delay in seconds; [infinity] unreachable *)
  wvia : Domain.id array;
}

val dijkstra : Topo.t -> Domain.id -> weighted
(** Latency-weighted single-source shortest paths. *)

val wpath : weighted -> Domain.id -> Domain.id list

val valley_free_dist : Topo.t -> Domain.id -> int array
(** Hop distance from the source to every node along policy-valid
    (valley-free, at most one peer edge) paths, i.e. paths that BGP route
    export would actually reveal.  [max_int] when no policy-compliant
    path exists. *)
