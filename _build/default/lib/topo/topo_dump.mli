(** Plain-text serialization of topologies.

    The paper derived its evaluation topology from BGP routing-table
    dumps; this module defines the analogous artifact for the
    repository: a line-oriented dump that captures domains and links so
    that a generated (or hand-written) topology can be saved, shared,
    and re-loaded for byte-identical experiments.

    Format, one record per line, [#] comments allowed:
    {v
    domain <name> <backbone|regional|stub|exchange>
    link <name-a> <name-b> <provider|peer> [delay-seconds]
    v}
    [provider] means the [a] end provides transit to the [b] end.
    Domains must be declared before links that use them; ids are
    assigned in declaration order. *)

val to_string : Topo.t -> string

val of_string : string -> (Topo.t, string) result
(** Parse a dump.  Errors carry the offending line number and reason. *)

val save : Topo.t -> path:string -> unit

val load : path:string -> (Topo.t, string) result
