(** Graphviz DOT rendering of topologies (and overlays).

    [to_dot] draws the domain graph: backbone domains as boxes,
    regionals as ellipses, stubs as plain nodes; provider→customer
    links as directed edges (provider on top), peer links as dashed
    undirected edges.  The optional [highlight] set paints domains
    (e.g. the members or the on-tree domains of a group) and
    [highlight_edges] paints edges (e.g. the tree edges), so a
    distribution tree can be rendered over its topology:

    {v
    dune exec bin/main.exe -- dot | dot -Tsvg > topo.svg
    v} *)

val to_dot :
  ?highlight:Domain.id list ->
  ?highlight_edges:(Domain.id * Domain.id) list ->
  ?label:string ->
  Topo.t ->
  string
