type id = int

type kind = Backbone | Regional | Stub | Exchange

type t = { id : id; name : string; kind : kind }

let make ~id ~name ~kind = { id; name; kind }

let kind_to_string = function
  | Backbone -> "backbone"
  | Regional -> "regional"
  | Stub -> "stub"
  | Exchange -> "exchange"

let pp ppf t = Format.fprintf ppf "%s(%d,%s)" t.name t.id (kind_to_string t.kind)

let equal a b = a.id = b.id

let compare a b = Int.compare a.id b.id
