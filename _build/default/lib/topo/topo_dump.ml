let kind_to_token = function
  | Domain.Backbone -> "backbone"
  | Domain.Regional -> "regional"
  | Domain.Stub -> "stub"
  | Domain.Exchange -> "exchange"

let kind_of_token = function
  | "backbone" -> Some Domain.Backbone
  | "regional" -> Some Domain.Regional
  | "stub" -> Some Domain.Stub
  | "exchange" -> Some Domain.Exchange
  | _ -> None

let to_string topo =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# masc-bgmp topology dump\n";
  List.iter
    (fun (d : Domain.t) ->
      Buffer.add_string buf
        (Printf.sprintf "domain %s %s\n" d.Domain.name (kind_to_token d.Domain.kind)))
    (Topo.domains topo);
  List.iter
    (fun (l : Topo.link) ->
      let name id = (Topo.domain topo id).Domain.name in
      Buffer.add_string buf
        (Printf.sprintf "link %s %s %s %g\n" (name l.Topo.a) (name l.Topo.b)
           (match l.Topo.rel with
           | Topo.Provider_customer -> "provider"
           | Topo.Peer -> "peer")
           (Time.to_seconds l.Topo.delay)))
    (Topo.links topo);
  Buffer.contents buf

let of_string text =
  let topo = Topo.create () in
  let error = ref None in
  let fail lineno reason =
    if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno reason)
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let tokens =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
      in
      if !error = None then
        match tokens with
        | [] -> ()
        | "domain" :: name :: kind :: rest -> (
            if rest <> [] then fail lineno "trailing tokens after domain"
            else if Topo.find_by_name topo name <> None then
              fail lineno (Printf.sprintf "duplicate domain %S" name)
            else
              match kind_of_token kind with
              | Some k -> ignore (Topo.add_domain topo ~name ~kind:k)
              | None -> fail lineno (Printf.sprintf "unknown domain kind %S" kind))
        | "link" :: a :: b :: rel :: rest -> (
            let delay =
              match rest with
              | [] -> Ok (Time.seconds 0.010)
              | [ d ] -> (
                  match float_of_string_opt d with
                  | Some v when v >= 0.0 -> Ok (Time.seconds v)
                  | Some _ | None -> Error (Printf.sprintf "bad delay %S" d))
              | _ :: _ :: _ -> Error "trailing tokens after link"
            in
            let rel =
              match rel with
              | "provider" -> Ok Topo.Provider_customer
              | "peer" -> Ok Topo.Peer
              | other -> Error (Printf.sprintf "unknown relationship %S" other)
            in
            match (Topo.find_by_name topo a, Topo.find_by_name topo b, rel, delay) with
            | None, _, _, _ -> fail lineno (Printf.sprintf "unknown domain %S" a)
            | _, None, _, _ -> fail lineno (Printf.sprintf "unknown domain %S" b)
            | _, _, Error e, _ | _, _, _, Error e -> fail lineno e
            | Some ia, Some ib, Ok r, Ok d -> (
                try Topo.add_link ~delay:d topo ia ib r
                with Invalid_argument msg -> fail lineno msg))
        | token :: _ -> fail lineno (Printf.sprintf "unknown record %S" token))
    lines;
  match !error with
  | Some e -> Error e
  | None -> Ok topo

let save topo ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string topo))

let load ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error e -> Error e
