type paths = { src : Domain.id; dist : int array; via : Domain.id array }

let bfs topo src =
  let n = Topo.domain_count topo in
  let dist = Array.make n max_int in
  let via = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          via.(v) <- u;
          Queue.add v queue
        end)
      (Topo.neighbors topo u)
  done;
  { src; dist; via }

let dist p id = p.dist.(id)

let path p dst =
  if p.dist.(dst) = max_int then []
  else begin
    let rec walk node acc = if node = p.src then node :: acc else walk p.via.(node) (node :: acc) in
    walk dst []
  end

let next_hop_toward _topo p node =
  if node = p.src || p.dist.(node) = max_int then None else Some p.via.(node)

type weighted = { wsrc : Domain.id; wdist : float array; wvia : Domain.id array }

let dijkstra topo src =
  let n = Topo.domain_count topo in
  let wdist = Array.make n infinity in
  let wvia = Array.make n (-1) in
  wdist.(src) <- 0.0;
  let heap = Heap.create ~cmp:(fun (d1, _) (d2, _) -> compare (d1 : float) d2) in
  Heap.push heap (0.0, src);
  let finished = Array.make n false in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if not finished.(u) then begin
          finished.(u) <- true;
          List.iter
            (fun v ->
              match Topo.link_between topo u v with
              | None -> ()
              | Some l ->
                  let nd = d +. Time.to_seconds l.Topo.delay in
                  if nd < wdist.(v) then begin
                    wdist.(v) <- nd;
                    wvia.(v) <- u;
                    Heap.push heap (nd, v)
                  end)
            (Topo.neighbors topo u)
        end;
        drain ()
  in
  drain ();
  { wsrc = src; wdist; wvia }

let wpath w dst =
  if w.wdist.(dst) = infinity then []
  else begin
    let rec walk node acc = if node = w.wsrc then node :: acc else walk w.wvia.(node) (node :: acc) in
    walk dst []
  end

(* Valley-free reachability via a layered BFS over (node, phase) states.
   Phases, from the *destination's* point of view walking outward from the
   source: Up (still climbing customer->provider links), Peered (crossed
   the single allowed peer link), Down (descending provider->customer).
   Transitions: Up -> Up (to provider), Up -> Peered (peer edge),
   Up/Peered/Down -> Down (to customer). *)
type phase = Up | Peered | Down

let phase_index = function Up -> 0 | Peered -> 1 | Down -> 2

let valley_free_dist topo src =
  let n = Topo.domain_count topo in
  let dist = Array.make_matrix n 3 max_int in
  let best = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src).(phase_index Up) <- 0;
  best.(src) <- 0;
  Queue.add (src, Up) queue;
  let relax v phase d =
    let pi = phase_index phase in
    if d < dist.(v).(pi) then begin
      dist.(v).(pi) <- d;
      if d < best.(v) then best.(v) <- d;
      Queue.add (v, phase) queue
    end
  in
  while not (Queue.is_empty queue) do
    let u, phase = Queue.pop queue in
    let d = dist.(u).(phase_index phase) + 1 in
    List.iter
      (fun v ->
        match Topo.link_between topo u v with
        | None -> ()
        | Some l -> (
            let going_up = l.Topo.rel = Topo.Provider_customer && l.Topo.a = v in
            let going_down = l.Topo.rel = Topo.Provider_customer && l.Topo.a = u in
            let peer_edge = l.Topo.rel = Topo.Peer in
            match phase with
            | Up ->
                if going_up then relax v Up d;
                if peer_edge then relax v Peered d;
                if going_down then relax v Down d
            | Peered | Down -> if going_down then relax v Down d))
      (Topo.neighbors topo u)
  done;
  best
