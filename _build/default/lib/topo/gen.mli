(** Topology generators.

    The paper evaluates on (a) a 50-top-level × 50-children two-level
    hierarchy for the MASC simulations and (b) a 3326-node graph derived
    from 1998 BGP table dumps for the tree-quality simulations.  The dump
    is unobtainable, so [power_law] synthesises an internet-like graph of
    the same scale (preferential attachment reproduces the AS graph's
    heavy-tailed degree distribution and small diameter), and
    [transit_stub] provides an alternative hierarchical shape — the paper
    notes its results were similar across generated topologies. *)

val power_law : rng:Rng.t -> n:int -> m:int -> Topo.t
(** Barabási–Albert preferential attachment: [n] domains, each newcomer
    attaching to [m] distinct existing domains with probability
    proportional to degree.  The first [m+1] domains form a clique and
    are marked [Backbone]; nodes that end up with degree > 1 are
    [Regional]; degree-1 nodes are [Stub].  Links are provider→customer
    from the earlier (higher-degree) node.  Connected by construction.
    @raise Invalid_argument if [n <= m] or [m < 1]. *)

val transit_stub :
  rng:Rng.t ->
  backbones:int ->
  regionals_per_backbone:int ->
  stubs_per_regional:int ->
  Topo.t
(** Classic transit-stub hierarchy: a clique of backbones, each with a
    ring of regional customers, each regional with stub customers; a few
    random peer links between regionals add path diversity. *)

val masc_hierarchy : tops:int -> children_per_top:int -> Topo.t
(** The Figure-2 experiment shape: [tops] backbone domains in a full mesh
    (so every top-level domain hears every sibling claim), each with
    [children_per_top] stub customers. *)

val figure1 : unit -> Topo.t
(** The seven-domain example topology of Figure 1: backbones A, D, E;
    regionals B, C under A; stubs F under B and G under C.  Domain names
    match the figure ("A".."G"). *)

val figure3 : unit -> Topo.t
(** The eight-domain topology of Figure 3: as Figure 1 plus domain H
    under C, a peer link F–A (via border router F2 in the paper), and
    the D–A / E–A links used by the walkthrough. *)

val line : n:int -> Topo.t
(** A path graph, for tests. *)

val star : n:int -> Topo.t
(** A hub (id 0, provider) with [n-1] leaf customers, for tests. *)
