(** The inter-domain topology: a graph of domains connected by
    inter-domain links carrying business relationships.

    Provider-customer relationships both shape the MASC hierarchy (a
    customer picks one of its providers as MASC parent) and define BGP
    export policy (a provider carries transit only to/from its
    customers). *)

type relationship =
  | Provider_customer  (** the [a] end of the link is provider of the [b] end *)
  | Peer  (** settlement-free peering *)

type link = { a : Domain.id; b : Domain.id; rel : relationship; delay : Time.t }

type t

val create : unit -> t

val add_domain : t -> name:string -> kind:Domain.kind -> Domain.id
(** Ids are assigned densely in creation order. *)

val add_link : ?delay:Time.t -> t -> Domain.id -> Domain.id -> relationship -> unit
(** [add_link t a b Provider_customer] makes [a] a provider of [b].
    Default delay 10 ms.  Self-links and duplicate links are rejected
    with [Invalid_argument]. *)

val domain_count : t -> int

val link_count : t -> int

val domain : t -> Domain.id -> Domain.t
(** @raise Invalid_argument on an unknown id. *)

val domains : t -> Domain.t list

val find_by_name : t -> string -> Domain.id option

val neighbors : t -> Domain.id -> Domain.id list
(** Adjacent domains, in link-insertion order. *)

val degree : t -> Domain.id -> int

val link_between : t -> Domain.id -> Domain.id -> link option

val providers_of : t -> Domain.id -> Domain.id list

val customers_of : t -> Domain.id -> Domain.id list

val peers_of : t -> Domain.id -> Domain.id list

val links : t -> link list

val is_connected : t -> bool
(** Is the graph connected (true for the empty graph)? *)

val pp_summary : Format.formatter -> t -> unit
