lib/bgmp/bgmp_fabric.mli: Bgmp_router Domain Engine Host_ref Ipv4 Migp Time Topo
