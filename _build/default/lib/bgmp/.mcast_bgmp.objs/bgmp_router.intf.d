lib/bgmp/bgmp_router.mli: Bgmp_msg Domain Format Host_ref Ipv4
