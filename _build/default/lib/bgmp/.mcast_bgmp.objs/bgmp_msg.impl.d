lib/bgmp/bgmp_msg.ml: Format Host_ref Ipv4
