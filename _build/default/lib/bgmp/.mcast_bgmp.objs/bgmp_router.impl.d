lib/bgmp/bgmp_router.ml: Bgmp_msg Domain Format Hashtbl Host_ref Ipv4 List Option Prefix Printf String
