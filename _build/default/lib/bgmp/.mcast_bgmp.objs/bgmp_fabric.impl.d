lib/bgmp/bgmp_fabric.ml: Array Bgmp_msg Bgmp_router Domain Engine Hashtbl Host_ref Ipv4 List Migp Option Printf Spf Time Topo
