lib/bgmp/bgmp_msg.mli: Format Host_ref Ipv4
