type config = {
  masc : Masc_node.config;
  bgmp : Bgmp_fabric.config;
  maas_block : int;
  seed : int;
}

let default_config =
  {
    masc = Masc_node.default_config;
    bgmp = Bgmp_fabric.default_config;
    maas_block = 256;
    seed = 1998;
  }

let quick_config =
  {
    default_config with
    masc =
      {
        Masc_node.default_config with
        Masc_node.claim_wait = Time.minutes 5.0;
        renew_margin = Time.hours 1.0;
      };
  }

type t = {
  cfg : config;
  engine : Engine.t;
  net_topo : Topo.t;
  net_trace : Trace.t;
  bgp_net : Bgp_network.t;
  masc_net : Masc_network.t;
  bgmp_fabric : Bgmp_fabric.t;
  maases : Maas.t array;
}

let engine t = t.engine

let topo t = t.net_topo

let trace t = t.net_trace

let speaker t d = Bgp_network.speaker t.bgp_net d

let masc_node t d = Masc_network.node t.masc_net d

let maas t d = t.maases.(d)

let fabric t = t.bgmp_fabric

let bgp t = t.bgp_net

let masc_network t = t.masc_net

let create ?(config = default_config) ?migp_style net_topo =
  let engine = Engine.create () in
  let rng = Rng.create config.seed in
  let net_trace = Trace.create () in
  let bgp_net = Bgp_network.create ~engine ~topo:net_topo in
  let masc_net =
    Masc_network.of_topo ~engine ~rng ~config:config.masc ~trace:net_trace net_topo
  in
  (* MASC -> BGP glue: acquired ranges become group routes injected at
     their root domain; lost ranges are withdrawn (§4.2). *)
  List.iter
    (fun id ->
      let node = Masc_network.node masc_net id in
      Masc_node.add_on_acquired node (fun prefix ~lifetime_end ->
          Bgp_network.originate ~lifetime_end bgp_net id prefix);
      Masc_node.add_on_replaced node (fun ~old_prefix ~by:_ ->
          Bgp_network.withdraw bgp_net id old_prefix);
      Masc_node.add_on_lost node (fun prefix -> Bgp_network.withdraw bgp_net id prefix))
    (Masc_network.ids masc_net);
  (* BGP -> BGMP glue: the G-RIB answers where the root domain lies. *)
  let route_to_root dom group =
    match Speaker.lookup (Bgp_network.speaker bgp_net dom) group with
    | None -> Bgmp_fabric.Unroutable
    | Some route -> (
        match Route.next_hop route with
        | None -> Bgmp_fabric.Root_here
        | Some nh -> Bgmp_fabric.Via nh)
  in
  let bgmp_fabric =
    Bgmp_fabric.create ~engine ~topo:net_topo ~config:config.bgmp ?migp_style ~route_to_root ()
  in
  let maases =
    Array.init (Topo.domain_count net_topo) (fun d ->
        Maas.create ~engine ~node:(Masc_network.node masc_net d) ~block_size:config.maas_block)
  in
  (* BGP -> BGMP repair glue: a change to any domain's best route for a
     covering prefix makes the affected groups' trees stale; rebuild
     them under the new routes.  Rebuilds are coalesced per group within
     an engine tick so an update storm triggers one repair. *)
  let pending_rebuild = Hashtbl.create 8 in
  let schedule_rebuild group =
    if not (Hashtbl.mem pending_rebuild group) then begin
      Hashtbl.replace pending_rebuild group ();
      ignore
        (Engine.schedule_after engine Time.zero (fun () ->
             Hashtbl.remove pending_rebuild group;
             Bgmp_fabric.rebuild_group bgmp_fabric ~group))
    end
  in
  List.iter
    (fun (d : Domain.t) ->
      Speaker.set_on_grib_change (Bgp_network.speaker bgp_net d.Domain.id) (fun prefix ->
          List.iter
            (fun group -> if Prefix.mem group prefix then schedule_rebuild group)
            (Bgmp_fabric.active_groups bgmp_fabric)))
    (Topo.domains net_topo);
  { cfg = config; engine; net_topo; net_trace; bgp_net; masc_net; bgmp_fabric; maases }

let start t = Masc_network.start t.masc_net

let rebuild_all_groups t =
  List.iter
    (fun group -> Bgmp_fabric.rebuild_group t.bgmp_fabric ~group)
    (Bgmp_fabric.active_groups t.bgmp_fabric)

let fail_link t a b =
  Bgp_network.fail_link t.bgp_net a b;
  Bgmp_fabric.fail_link t.bgmp_fabric a b;
  (* Rebuild once the withdrawals settle; the grib-change hook also
     fires rebuilds during reconvergence, but a group whose routes are
     unaffected can still have tree edges over the dead link. *)
  ignore (Engine.schedule_after t.engine (Time.seconds 1.0) (fun () -> rebuild_all_groups t))

let restore_link t a b =
  Bgp_network.restore_link t.bgp_net a b;
  Bgmp_fabric.restore_link t.bgmp_fabric a b;
  ignore (Engine.schedule_after t.engine (Time.seconds 1.0) (fun () -> rebuild_all_groups t))

let run_for t duration = Engine.run ~until:(Engine.now t.engine +. duration) t.engine

let settle t = Engine.run_until_idle t.engine

let request_address t dom = Maas.allocate t.maases.(dom) ()

let request_address_in t ~initiator ~root =
  let alloc = Maas.allocate t.maases.(root) () in
  (match alloc with
  | Some a ->
      Trace.recordf t.net_trace ~time:(Engine.now t.engine)
        ~actor:(Printf.sprintf "maas-%d" root) ~tag:"remote-alloc" "%a for initiator %d"
        Ipv4.pp a.Maas.address initiator
  | None -> ());
  alloc

let request_address_with_fallback t dom =
  match Maas.allocate t.maases.(dom) () with
  | Some a -> Some (a, dom)
  | None -> (
      match Masc_node.role (Masc_network.node t.masc_net dom) with
      | Masc_node.Top -> None
      | Masc_node.Child parent -> (
          match Maas.allocate t.maases.(parent) () with
          | Some a ->
              Trace.recordf t.net_trace ~time:(Engine.now t.engine)
                ~actor:(Printf.sprintf "maas-%d" dom) ~tag:"fallback-alloc"
                "%a from parent %d" Ipv4.pp a.Maas.address parent;
              Some (a, parent)
          | None -> None))

let release_address t dom alloc = Maas.release t.maases.(dom) alloc

let root_domain_of t group =
  (* Aggregation can hide the most specific route from distant vantage
     points (§4.3.2): a backbone may only carry its own covering range.
     Follow origins — each origin's G-RIB holds the next more-specific
     route — until a domain names itself, which is the root. *)
  let n = Topo.domain_count t.net_topo in
  let rec scan d =
    if d >= n then None
    else
      match Speaker.lookup (Bgp_network.speaker t.bgp_net d) group with
      | Some route -> Some route.Route.origin
      | None -> scan (d + 1)
  in
  let rec follow d depth =
    if depth > n then Some d
    else
      match Speaker.lookup (Bgp_network.speaker t.bgp_net d) group with
      | Some route when route.Route.origin <> d -> follow route.Route.origin (depth + 1)
      | Some _ | None -> Some d
  in
  Option.bind (scan 0) (fun d -> follow d 0)

let join t ~host ~group = Bgmp_fabric.host_join t.bgmp_fabric ~host ~group

let leave t ~host ~group = Bgmp_fabric.host_leave t.bgmp_fabric ~host ~group

let send t ~source ~group = Bgmp_fabric.send t.bgmp_fabric ~source ~group

let deliveries t ~payload = Bgmp_fabric.deliveries t.bgmp_fabric ~payload
