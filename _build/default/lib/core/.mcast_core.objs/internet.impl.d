lib/core/internet.ml: Array Bgmp_fabric Bgp_network Domain Engine Hashtbl Ipv4 List Maas Masc_network Masc_node Option Prefix Printf Rng Route Speaker Time Topo Trace
