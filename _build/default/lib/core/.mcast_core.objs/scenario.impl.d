lib/core/scenario.ml: Bgmp_fabric Domain Engine Gen Host_ref Internet Ipv4 List Maas Option Spf Time Topo
