lib/core/internet.mli: Bgmp_fabric Bgp_network Domain Engine Host_ref Ipv4 Maas Masc_network Masc_node Migp Speaker Time Topo Trace
