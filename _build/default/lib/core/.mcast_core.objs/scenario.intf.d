lib/core/scenario.mli: Bgmp_fabric Domain Engine Host_ref Internet Ipv4 Migp Topo
