(* A path-explicit binary trie: each node sits at a (base, depth) position;
   children split on the next address bit.  Nodes carry an optional value;
   internal nodes without values are kept while they have descendants.

   Depth d corresponds to prefix length d, so lookups walk at most 32
   levels.  This is the textbook structure behind real routing tables
   (PATRICIA without path compression — fine at simulation scale and much
   simpler to verify). *)

type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable count : int }

let fresh_node () = { value = None; zero = None; one = None }

let create () = { root = fresh_node (); count = 0 }

let is_empty t = t.count = 0

let cardinal t = t.count

(* Bit [d] of the address, counting from the most significant (bit 0 is
   the 2^31 position): the branch taken at depth [d]. *)
let bit_at addr d = (addr lsr (31 - d)) land 1

let add t prefix v =
  let rec descend node d =
    if d = Prefix.len prefix then begin
      if node.value = None then t.count <- t.count + 1;
      node.value <- Some v
    end
    else begin
      let b = bit_at (Prefix.base prefix) d in
      let child =
        match if b = 0 then node.zero else node.one with
        | Some c -> c
        | None ->
            let c = fresh_node () in
            if b = 0 then node.zero <- Some c else node.one <- Some c;
            c
      in
      descend child (d + 1)
    end
  in
  descend t.root 0

let remove t prefix =
  (* Returns true when the subtree below became empty and the child link
     can be pruned. *)
  let rec descend node d =
    if d = Prefix.len prefix then begin
      if node.value <> None then begin
        node.value <- None;
        t.count <- t.count - 1
      end;
      node.value = None && node.zero = None && node.one = None
    end
    else begin
      let b = bit_at (Prefix.base prefix) d in
      match if b = 0 then node.zero else node.one with
      | None -> false
      | Some child ->
          let prune = descend child (d + 1) in
          if prune then if b = 0 then node.zero <- None else node.one <- None;
          node.value = None && node.zero = None && node.one = None
    end
  in
  ignore (descend t.root 0)

let find_exact t prefix =
  let rec descend node d =
    if d = Prefix.len prefix then node.value
    else
      let b = bit_at (Prefix.base prefix) d in
      match if b = 0 then node.zero else node.one with
      | None -> None
      | Some child -> descend child (d + 1)
  in
  descend t.root 0

let matches t addr =
  let rec descend node d acc =
    let acc =
      match node.value with
      | Some v -> (Prefix.make addr d, v) :: acc
      | None -> acc
    in
    if d = 32 then acc
    else
      let b = bit_at addr d in
      match if b = 0 then node.zero else node.one with
      | None -> acc
      | Some child -> descend child (d + 1) acc
  in
  descend t.root 0 []

let longest_match t addr =
  match matches t addr with
  | [] -> None
  | best :: _ -> Some best

let fold t ~init ~f =
  (* In-order walk (zero before one) yields increasing prefix order with
     shorter prefixes before their sub-prefixes. *)
  let rec walk node base d acc =
    let acc =
      match node.value with
      | Some v -> f (Prefix.make base d) v acc
      | None -> acc
    in
    let acc =
      match node.zero with
      | Some child -> walk child base (d + 1) acc
      | None -> acc
    in
    match node.one with
    | Some child -> walk child (base lor (1 lsl (31 - d))) (d + 1) acc
    | None -> acc
  in
  walk t.root 0 0 init

let iter t ~f = fold t ~init:() ~f:(fun p v () -> f p v)

let to_list t = List.rev (fold t ~init:[] ~f:(fun p v acc -> (p, v) :: acc))

let covered_by t prefix =
  List.filter (fun (p, _) -> Prefix.subsumes prefix p) (to_list t)
