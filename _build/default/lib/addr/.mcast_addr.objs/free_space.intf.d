lib/addr/free_space.mli: Prefix
