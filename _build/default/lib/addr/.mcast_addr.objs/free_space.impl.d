lib/addr/free_space.ml: List Prefix
