lib/addr/prefix.ml: Format Int Ipv4 List Option Printf String
