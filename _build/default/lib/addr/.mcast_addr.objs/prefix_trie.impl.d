lib/addr/prefix_trie.ml: List Prefix
