lib/addr/prefix_trie.mli: Ipv4 Prefix
