lib/addr/ipv4.ml: Format Int Printf String
