(** IPv4 addresses.

    Addresses are represented as plain non-negative [int]s in
    [\[0, 2^32)] (OCaml ints are 63-bit on all supported platforms), which
    keeps prefix arithmetic allocation-free. *)

type t = int
(** An address; always in [\[0, 2^32)]. *)

val max_addr : t
(** 255.255.255.255 *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d].
    @raise Invalid_argument if any octet is outside [\[0, 255\]]. *)

val to_octets : t -> int * int * int * int

val of_string : string -> t
(** Parse dotted-quad notation.  @raise Invalid_argument on malformed
    input. *)

val of_string_opt : string -> t option

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int

val equal : t -> t -> bool

val is_multicast : t -> bool
(** True for class-D addresses, 224.0.0.0 – 239.255.255.255. *)
