(** Free-space analysis of an address block: the search primitive of the
    MASC claim algorithm (§4.3.3 of the paper).

    Given a parent space and the set of sub-prefixes already claimed
    within it, the claim algorithm must (a) decompose the unclaimed
    remainder into maximal aligned blocks, (b) pick among the blocks of
    the shortest mask length, and (c) test whether a particular block
    (e.g. the buddy of a prefix being doubled) is entirely free. *)

val free_blocks : parent:Prefix.t -> allocated:Prefix.t list -> Prefix.t list
(** The maximal free sub-prefixes of [parent] once every prefix of
    [allocated] that overlaps [parent] is removed; sorted by base
    address.  A claimed prefix covering all of [parent] yields [\[\]];
    no overlap yields [\[parent\]].

    Example from the paper: with 224.0.1/24 and 239/8 allocated out of
    224/4, the shortest-mask free blocks are 228/6 and 232/6. *)

val shortest_mask_blocks : parent:Prefix.t -> allocated:Prefix.t list -> Prefix.t list
(** The subset of {!free_blocks} having the minimal mask length (the
    largest free blocks); [\[\]] when the space is exhausted. *)

val is_free : parent:Prefix.t -> allocated:Prefix.t list -> Prefix.t -> bool
(** Is the candidate (a sub-prefix of [parent]) disjoint from every
    allocated prefix? *)

val candidates : parent:Prefix.t -> allocated:Prefix.t list -> want_len:int -> Prefix.t list
(** The claim-algorithm candidate set: the first length-[want_len]
    sub-prefix of each shortest-mask free block that can hold such a
    sub-prefix.  Empty when no free block is large enough. *)

val free_count : parent:Prefix.t -> allocated:Prefix.t list -> int
(** Total number of free addresses in [parent]. *)
