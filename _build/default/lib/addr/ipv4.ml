type t = int

let max_addr = 0xFFFFFFFF

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: octet out of range" in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets t = ((t lsr 24) land 0xFF, (t lsr 16) land 0xFF, (t lsr 8) land 0xFF, t land 0xFF)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && String.length x > 0 -> Some v
        | Some _ | None -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _, _, _, _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string t =
  let a, b, c, d = to_octets t in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let pp ppf t = Format.pp_print_string ppf (to_string t)

let compare = Int.compare

let equal = Int.equal

let is_multicast t = t lsr 28 = 0xE
