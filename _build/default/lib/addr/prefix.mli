(** CIDR address prefixes and prefix arithmetic.

    A prefix ["224.0.1.0/24"] denotes the 256 addresses whose first 24 bits
    match.  All of MASC's claim machinery is prefix arithmetic: finding the
    free sub-blocks of a parent's space, taking the first sub-prefix of a
    chosen size, doubling a block into its buddy, and aggregating siblings
    back together (CIDR aggregation, as BGP does for group routes). *)

type t = private { base : Ipv4.t; len : int }
(** [base] always has all host bits zero; [len] in [\[0, 32\]]. *)

val make : Ipv4.t -> int -> t
(** [make addr len] masks [addr] down to [len] significant bits.
    @raise Invalid_argument if [len] is outside [\[0, 32\]]. *)

val make_exact : Ipv4.t -> int -> t
(** Like {!make} but requires the host bits of [addr] to already be zero.
    @raise Invalid_argument otherwise — use this when a dirty base
    indicates a logic error. *)

val of_string : string -> t
(** Parse ["a.b.c.d/len"] (also accepts a bare address as a /32).
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Total order: by base address, then by length (shorter first). *)

val equal : t -> t -> bool

val base : t -> Ipv4.t

val len : t -> int

val size : t -> int
(** Number of addresses covered: [2^(32-len)]. *)

val last : t -> Ipv4.t
(** Highest address in the prefix. *)

val mem : Ipv4.t -> t -> bool
(** [mem addr p]: does [p] cover [addr]? *)

val subsumes : t -> t -> bool
(** [subsumes p q]: is every address of [q] inside [p]?  (Reflexive.) *)

val overlaps : t -> t -> bool
(** Prefixes overlap iff one subsumes the other. *)

val split : t -> t * t
(** The two halves of a prefix.  @raise Invalid_argument on a /32. *)

val buddy : t -> t
(** The sibling block that, merged with [t], forms the enclosing
    prefix of length [len - 1].  @raise Invalid_argument on a /0. *)

val parent : t -> t
(** The enclosing prefix one bit shorter.  @raise Invalid_argument on a
    /0. *)

val double : t -> t
(** [double p = parent p]: the block grown one bit, covering [p] and its
    buddy.  Named for the MASC expansion operation. *)

val first_subprefix : t -> int -> t
(** [first_subprefix p l] is the lowest sub-prefix of [p] with length [l]
    — the MASC claim algorithm's placement rule ("the prefix it then
    claims is the first sub-prefix of the desired size within the chosen
    space").  @raise Invalid_argument if [l < len p]. *)

val nth_subprefix : t -> int -> int -> t
(** [nth_subprefix p l i] is the [i]-th (0-based) sub-prefix of length
    [l].  @raise Invalid_argument if out of range. *)

val subprefix_count : t -> int -> int
(** How many length-[l] sub-prefixes fit in [p]. *)

val aggregate2 : t -> t -> t option
(** [aggregate2 a b] is [Some (parent a)] when [a] and [b] are buddies,
    else [None]. *)

val aggregate : t list -> t list
(** Repeatedly merge buddies and drop subsumed prefixes until a fixpoint:
    the minimal CIDR cover of the input set.  Output is sorted. *)

val mask_for_count : int -> int
(** [mask_for_count n] is the shortest prefix length whose block holds at
    least [n] addresses (e.g. [mask_for_count 1024 = 22]).
    @raise Invalid_argument if [n <= 0] or [n > 2^32]. *)

val addr_offset : t -> int -> Ipv4.t
(** [addr_offset p i] is the [i]-th address of [p].
    @raise Invalid_argument if [i] is outside [\[0, size p)]. *)

val class_d : t
(** 224.0.0.0/4 — the complete IPv4 multicast address space from which
    all MASC claims ultimately descend. *)
