type t = { base : Ipv4.t; len : int }

let mask_of_len len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  { base = addr land mask_of_len len; len }

let make_exact addr len =
  let p = make addr len in
  if p.base <> addr then invalid_arg "Prefix.make_exact: host bits set";
  p

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> { base = a; len = 32 }) (Ipv4.of_string_opt s)
  | Some i -> (
      let addr_part = String.sub s 0 i in
      let len_part = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string_opt addr_part, int_of_string_opt len_part) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
      | _, _ -> None)

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.base) p.len

let pp ppf p = Format.pp_print_string ppf (to_string p)

let compare a b =
  let c = Int.compare a.base b.base in
  if c <> 0 then c else Int.compare a.len b.len

let equal a b = a.base = b.base && a.len = b.len

let base p = p.base

let len p = p.len

let size p = 1 lsl (32 - p.len)

let last p = p.base lor (size p - 1)

let mem addr p = addr land mask_of_len p.len = p.base

let subsumes p q = q.len >= p.len && q.base land mask_of_len p.len = p.base

let overlaps a b = subsumes a b || subsumes b a

let split p =
  if p.len >= 32 then invalid_arg "Prefix.split: cannot split a /32";
  let l = p.len + 1 in
  ({ base = p.base; len = l }, { base = p.base lor (1 lsl (32 - l)); len = l })

let buddy p =
  if p.len = 0 then invalid_arg "Prefix.buddy: /0 has no buddy";
  { p with base = p.base lxor (1 lsl (32 - p.len)) }

let parent p =
  if p.len = 0 then invalid_arg "Prefix.parent: /0 has no parent";
  make p.base (p.len - 1)

let double = parent

let first_subprefix p l =
  if l < p.len || l > 32 then invalid_arg "Prefix.first_subprefix: bad length";
  { base = p.base; len = l }

let subprefix_count p l =
  if l < p.len || l > 32 then invalid_arg "Prefix.subprefix_count: bad length";
  1 lsl (l - p.len)

let nth_subprefix p l i =
  let n = subprefix_count p l in
  if i < 0 || i >= n then invalid_arg "Prefix.nth_subprefix: index out of range";
  { base = p.base lor (i lsl (32 - l)); len = l }

let aggregate2 a b =
  if a.len = b.len && a.len > 0 && buddy a = b then Some (parent a) else None

(* Minimal CIDR cover: sort, drop subsumed prefixes, then repeatedly merge
   adjacent buddies.  Each merge can enable another merge at a shorter
   length, so we loop to a fixpoint; total work is O(n log n * 32). *)
let aggregate prefixes =
  let drop_subsumed sorted =
    let rec loop acc = function
      | [] -> List.rev acc
      | p :: rest -> (
          match acc with
          | covering :: _ when subsumes covering p -> loop acc rest
          | _ :: _ | [] -> loop (p :: acc) rest)
    in
    loop [] sorted
  in
  let merge_pass sorted =
    let changed = ref false in
    let rec loop acc = function
      | a :: b :: rest -> (
          match aggregate2 a b with
          | Some merged ->
              changed := true;
              loop acc (merged :: rest)
          | None -> loop (a :: acc) (b :: rest))
      | [ x ] -> List.rev (x :: acc)
      | [] -> List.rev acc
    in
    let merged = loop [] sorted in
    (merged, !changed)
  in
  let rec fix l =
    let l = drop_subsumed (List.sort_uniq compare l) in
    let merged, changed = merge_pass l in
    if changed then fix merged else merged
  in
  fix prefixes

let mask_for_count n =
  if n <= 0 then invalid_arg "Prefix.mask_for_count: non-positive count";
  if n > 1 lsl 32 then invalid_arg "Prefix.mask_for_count: count exceeds address space";
  let rec loop l = if 1 lsl (32 - l) >= n then l else loop (l - 1) in
  loop 32

let addr_offset p i =
  if i < 0 || i >= size p then invalid_arg "Prefix.addr_offset: out of range";
  p.base lor i

let class_d = make (Ipv4.of_octets 224 0 0 0) 4
