(* Recursive buddy decomposition: the free space of a block is either the
   whole block (no overlap), nothing (covered by a claim), or the union of
   the free spaces of its two halves.  Claims are pre-filtered at each
   level, so the cost is O(claims * depth) per path. *)

let free_blocks ~parent ~allocated =
  let rec walk block claims acc =
    match claims with
    | [] -> block :: acc
    | _ :: _ ->
        if List.exists (fun c -> Prefix.subsumes c block) claims then acc
        else begin
          let lo, hi = Prefix.split block in
          let lo_claims = List.filter (Prefix.overlaps lo) claims in
          let hi_claims = List.filter (Prefix.overlaps hi) claims in
          walk lo lo_claims (walk hi hi_claims acc)
        end
  in
  let relevant = List.filter (Prefix.overlaps parent) allocated in
  List.sort Prefix.compare (walk parent relevant [])

let shortest_mask_blocks ~parent ~allocated =
  let blocks = free_blocks ~parent ~allocated in
  match blocks with
  | [] -> []
  | _ :: _ ->
      let best = List.fold_left (fun acc b -> min acc (Prefix.len b)) 33 blocks in
      List.filter (fun b -> Prefix.len b = best) blocks

let is_free ~parent ~allocated candidate =
  Prefix.subsumes parent candidate
  && not (List.exists (fun c -> Prefix.overlaps c candidate) allocated)

let candidates ~parent ~allocated ~want_len =
  let blocks = shortest_mask_blocks ~parent ~allocated in
  let usable = List.filter (fun b -> Prefix.len b <= want_len) blocks in
  List.map (fun b -> Prefix.first_subprefix b want_len) usable

let free_count ~parent ~allocated =
  List.fold_left (fun acc b -> acc + Prefix.size b) 0 (free_blocks ~parent ~allocated)
