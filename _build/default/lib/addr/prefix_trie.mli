(** Binary radix trie keyed by address prefixes.

    This is the routing-table structure used by the BGP substrate (the
    G-RIB and M-RIB are tries of group routes) and by the BGMP component
    to look up the root domain of a group address via longest-prefix
    match — exactly the lookup BGP routers perform. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val cardinal : 'a t -> int
(** Number of prefixes bound to a value. *)

val add : 'a t -> Prefix.t -> 'a -> unit
(** Bind a prefix, replacing any previous binding of exactly that
    prefix. *)

val remove : 'a t -> Prefix.t -> unit
(** Remove the binding of exactly that prefix, if any. *)

val find_exact : 'a t -> Prefix.t -> 'a option

val longest_match : 'a t -> Ipv4.t -> (Prefix.t * 'a) option
(** The most specific bound prefix covering the address. *)

val matches : 'a t -> Ipv4.t -> (Prefix.t * 'a) list
(** All bound prefixes covering the address, most specific first. *)

val covered_by : 'a t -> Prefix.t -> (Prefix.t * 'a) list
(** All bindings whose prefix is subsumed by the argument (including an
    exact binding), in increasing prefix order. *)

val fold : 'a t -> init:'b -> f:(Prefix.t -> 'a -> 'b -> 'b) -> 'b
(** Fold over all bindings in increasing prefix order. *)

val iter : 'a t -> f:(Prefix.t -> 'a -> unit) -> unit

val to_list : 'a t -> (Prefix.t * 'a) list
(** Bindings in increasing prefix order. *)
