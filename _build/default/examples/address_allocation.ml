(* MASC claim-collide in action (§4.1), including the failure case the
   48-hour waiting period exists for: two top-level domains claim the
   same range while partitioned from each other; after the partition
   heals, the collision is detected and the lower-numbered domain keeps
   the range while the other renumbers.

   Run with: dune exec examples/address_allocation.exe *)

let () =
  let engine = Engine.create () in
  let rng = Rng.create 7 in
  let trace = Trace.create () in
  let config =
    {
      Masc_node.default_config with
      Masc_node.claim_wait = Time.hours 4.0;
      claim_lifetime = Time.days 10.0;
      renew_margin = Time.days 1.0;
    }
  in
  (* Two backbone (top-level) domains 0 and 1, each with two customers. *)
  let parent_of = function 0 | 1 -> None | 2 | 3 -> Some 0 | _ -> Some 1 in
  let net =
    Masc_network.create ~engine ~rng ~config ~trace ~parent_of ~ids:[ 0; 1; 2; 3; 4; 5 ] ()
  in
  Masc_network.start net;

  Format.printf "=== Normal operation: children claim from their parents ===@.";
  List.iter
    (fun id -> Masc_node.request_space (Masc_network.node net id) ~need:256)
    [ 2; 3; 4; 5 ];
  Engine.run ~until:(Time.days 1.0) engine;
  let show_claims id =
    let node = Masc_network.node net id in
    Format.printf "  domain %d: %s@." id
      (String.concat "  "
         (List.map
            (fun (c : Masc_node.own_claim) ->
              Format.asprintf "%a(%s)" Prefix.pp c.Masc_node.claim_prefix
                (match c.Masc_node.claim_state with
                | Masc_node.Acquired -> "acquired"
                | Masc_node.Waiting -> "waiting"))
            (Masc_node.all_claims node)))
  in
  List.iter show_claims [ 0; 1; 2; 3; 4; 5 ];

  Format.printf "@.=== Partition: domains 0 and 1 cannot hear each other ===@.";
  Masc_network.partition net 0 1;
  (* Both tops need much more space and claim big blocks blindly. *)
  Masc_node.request_space (Masc_network.node net 2) ~need:65536;
  Masc_node.request_space (Masc_network.node net 4) ~need:65536;
  Engine.run ~until:(Time.days 2.0) engine;
  show_claims 0;
  show_claims 1;
  Format.printf "  (messages dropped so far: %d)@." (Masc_network.messages_dropped net);
  (* Keep the ranges in use so they renew and re-announce. *)
  List.iter
    (fun id ->
      let node = Masc_network.node net id in
      List.iter
        (fun (c : Masc_node.own_claim) ->
          Masc_node.note_assigned node c.Masc_node.claim_prefix 64)
        (Masc_node.acquired_ranges node))
    [ 0; 1; 2; 3; 4; 5 ];

  Format.printf "@.=== Heal: renewals re-announce, collisions fire ===@.";
  Masc_network.heal net 0 1;
  Engine.run ~until:(Time.days 25.0) engine;
  show_claims 0;
  show_claims 1;
  Format.printf "  collisions suffered in total: %d@." (Masc_network.total_collisions net);

  Format.printf "@.=== Collision-related trace events ===@.";
  List.iter
    (fun tag ->
      List.iter
        (fun e -> Format.printf "  %a@." Trace.pp_entry e)
        (Trace.find trace ~tag))
    [ "collision-sent"; "collision-lost"; "collision-yield" ];

  (* Verify the invariant the waiting period protects: after everything
     settles, no two domains hold overlapping space. *)
  let all =
    List.concat_map
      (fun id ->
        List.map
          (fun (c : Masc_node.own_claim) -> (id, c.Masc_node.claim_prefix))
          (Masc_node.acquired_ranges (Masc_network.node net id)))
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let conflict =
    List.exists
      (fun (i, pi) ->
        List.exists (fun (j, pj) -> i <> j && Prefix.overlaps pi pj) all)
      all
  in
  Format.printf "@.Overlapping allocations remaining: %b@." conflict
