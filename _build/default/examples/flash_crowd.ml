(* The §4.1 burst scenario: "It is expected that MASC will keep ahead
   of the demand for multicast addresses in its domain, but if there is
   a sudden increase in demand, addresses could be obtained from the
   parent's address space.  If this is done, the root of the shared
   tree for these groups would simply be the parent's domain, which
   might be sub-optimal."

   A stub domain's sessions suddenly multiply (a flash crowd of new
   groups).  Its MASC node claims more space, but claims take a
   collision-wait to settle; meanwhile the MAAS falls back to the
   provider's space so no session is delayed.  We count how many groups
   ended up rooted at the parent (sub-optimally) versus locally, and
   show the local claim catching up.

   Run with: dune exec examples/flash_crowd.exe *)

let () =
  let topo = Gen.figure1 () in
  let inet = Internet.create ~config:Internet.quick_config topo in
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);
  let dom name = Option.get (Topo.find_by_name topo name) in
  let name_of d = (Topo.domain topo d).Domain.name in
  let f = dom "F" in

  (* Warm-up: one session so F holds its initial (small) range. *)
  let rec warm tries =
    match Internet.request_address inet f with
    | Some a -> a
    | None ->
        if tries > 30 then failwith "warm-up allocation never settled";
        Internet.run_for inet (Time.hours 1.0);
        warm (tries + 1)
  in
  ignore (warm 0);
  Format.printf "F's initial MASC ranges: %s@."
    (String.concat " "
       (List.map
          (fun (c : Masc_node.own_claim) -> Prefix.to_string c.Masc_node.claim_prefix)
          (Masc_node.acquired_ranges (Internet.masc_node inet f))));

  (* Flash crowd: 600 sessions created back-to-back — far beyond the
     /24 the steady state justified. *)
  let local = ref 0 and fallback = ref 0 and failed = ref 0 in
  let roots = Hashtbl.create 4 in
  for _ = 1 to 600 do
    match Internet.request_address_with_fallback inet f with
    | Some (_, root) ->
        if root = f then incr local else incr fallback;
        Hashtbl.replace roots root (1 + Option.value ~default:0 (Hashtbl.find_opt roots root))
    | None ->
        incr failed;
        (* Give the claim machinery a moment, as a session retry would. *)
        Internet.run_for inet (Time.minutes 1.0)
  done;
  Format.printf
    "@.Flash crowd of 600 sessions: %d rooted locally, %d fell back to the provider, %d \
     retried@."
    !local !fallback !failed;
  Hashtbl.iter
    (fun root n -> Format.printf "  groups rooted at %s: %d@." (name_of root) n)
    roots;

  (* Let MASC catch up (claims settle), then show new sessions root
     locally again. *)
  Internet.run_for inet (Time.days 1.0);
  Format.printf "@.F's MASC ranges after the claims settle: %s@."
    (String.concat " "
       (List.map
          (fun (c : Masc_node.own_claim) -> Prefix.to_string c.Masc_node.claim_prefix)
          (Masc_node.acquired_ranges (Internet.masc_node inet f))));
  let after_local = ref 0 and after_fallback = ref 0 in
  for _ = 1 to 50 do
    match Internet.request_address_with_fallback inet f with
    | Some (_, root) -> if root = f then incr after_local else incr after_fallback
    | None -> ()
  done;
  Format.printf "After catch-up, 50 new sessions: %d local, %d fallback@." !after_local
    !after_fallback;

  (* The sub-optimality the paper mentions, made visible: a fallback
     group's tree roots at B (F's provider), so members in G reach it
     through B even for sources inside F. *)
  match Internet.request_address_with_fallback inet f with
  | Some (alloc, root) ->
      let group = alloc.Maas.address in
      Internet.join inet ~host:(Host_ref.make (dom "G") 0) ~group;
      Internet.run_for inet (Time.minutes 30.0);
      let payload = Internet.send inet ~source:(Host_ref.make f 0) ~group in
      Internet.run_for inet (Time.minutes 10.0);
      List.iter
        (fun (h, hops) ->
          Format.printf "@.Group rooted at %s: source in F reaches %s in %d hops@."
            (name_of root) (name_of h.Host_ref.host_domain) hops)
        (Internet.deliveries inet ~payload)
  | None -> Format.printf "@. (no address available for the epilogue)@."
