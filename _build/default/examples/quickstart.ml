(* Quickstart: the full MASC/BGMP architecture on the paper's Figure-1
   topology.

   Builds the seven-domain internetwork, lets MASC allocate multicast
   address ranges down the provider hierarchy, asks domain B's MAAS for
   a group address (making B the root domain), joins members in four
   other domains, and sends a packet from a non-member host in E.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let topo = Gen.figure1 () in
  Format.printf "Topology: %a@." Topo.pp_summary topo;

  (* Bring the stack up with fast protocol timers (minutes, not the
     deployment-scale 48 h collision wait). *)
  let inet = Internet.create ~config:Internet.quick_config topo in
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);

  let dom name = Option.get (Topo.find_by_name topo name) in
  let name_of d = (Topo.domain topo d).Domain.name in

  (* 1. A session initiator in domain B asks its MAAS for an address.
     The MAAS pulls space from B's MASC node, which claims a sub-range
     of its provider A's allocation — so the group is rooted at B. *)
  let rec get_address tries =
    match Internet.request_address inet (dom "B") with
    | Some a -> a
    | None ->
        if tries > 30 then failwith "allocation did not settle";
        Internet.run_for inet (Time.hours 1.0);
        get_address (tries + 1)
  in
  let alloc = get_address 0 in
  let group = alloc.Maas.address in
  Format.printf "@.Initiator in B obtained group address %a (from MASC range %a)@." Ipv4.pp group
    Prefix.pp alloc.Maas.from_range;
  (match Internet.root_domain_of inet group with
  | Some root -> Format.printf "Root domain per the G-RIB: %s@." (name_of root)
  | None -> Format.printf "Root domain: (not yet routable)@.");

  (* 2. Show each domain's G-RIB: note that D and E only carry A's
     aggregate — B's specific range is suppressed (CIDR aggregation,
     §4.3.2 of the paper). *)
  Format.printf "@.Group routes (G-RIB) per domain:@.";
  List.iter
    (fun (d : Domain.t) ->
      let routes = Speaker.best_routes (Internet.speaker inet d.Domain.id) in
      Format.printf "  %-2s: %s@." d.Domain.name
        (String.concat "  "
           (List.map
              (fun (pre, (r : Route.t)) ->
                Format.asprintf "%a->%s" Prefix.pp pre (name_of r.Route.origin))
              routes)))
    (Topo.domains topo);

  (* 3. Members join from C, D, F and G; BGMP grafts them onto the
     bidirectional shared tree rooted at B. *)
  let members = [ "C"; "D"; "F"; "G" ] in
  List.iter (fun n -> Internet.join inet ~host:(Host_ref.make (dom n) 0) ~group) members;
  Internet.run_for inet (Time.minutes 30.0);
  Format.printf "@.Members joined in: %s@." (String.concat ", " members);
  Format.printf "Shared tree spans domains: %s@."
    (String.concat ", "
       (List.map name_of (Bgmp_fabric.tree_domains (Internet.fabric inet) ~group)));

  (* 4. A host in E — NOT a member — sends to the group (the IP service
     model needs no signalling before sending). *)
  let payload = Internet.send inet ~source:(Host_ref.make (dom "E") 1) ~group in
  Internet.run_for inet (Time.minutes 5.0);
  Format.printf "@.Host in E (non-member) sent packet #%d:@." payload;
  List.iter
    (fun (h, hops) ->
      Format.printf "  delivered to %s after %d inter-domain hops@."
        (name_of h.Host_ref.host_domain) hops)
    (Internet.deliveries inet ~payload);
  Format.printf "Duplicates: %d@."
    (Bgmp_fabric.duplicate_deliveries (Internet.fabric inet));

  (* 5. A short excerpt of the MASC protocol trace. *)
  Format.printf "@.MASC activity (first 12 events):@.";
  List.iteri
    (fun i e -> if i < 12 then Format.printf "  %a@." Trace.pp_entry e)
    (Trace.entries (Internet.trace inet))
