examples/flash_crowd.ml: Domain Format Gen Hashtbl Host_ref Internet List Maas Masc_node Option Prefix String Time Topo
