examples/teleconference.mli:
