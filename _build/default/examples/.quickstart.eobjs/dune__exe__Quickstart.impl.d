examples/quickstart.ml: Bgmp_fabric Domain Format Gen Host_ref Internet Ipv4 List Maas Option Prefix Route Speaker String Time Topo Trace
