examples/teleconference.ml: Bgmp_fabric Domain Format Gen Host_ref Internet Ipv4 List Maas Rng Spf Stats Time Topo
