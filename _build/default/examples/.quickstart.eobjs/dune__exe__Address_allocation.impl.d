examples/address_allocation.ml: Engine Format List Masc_network Masc_node Prefix Rng String Time Trace
