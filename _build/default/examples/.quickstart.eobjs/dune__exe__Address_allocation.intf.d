examples/address_allocation.mli:
