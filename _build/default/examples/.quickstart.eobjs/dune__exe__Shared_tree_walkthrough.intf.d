examples/shared_tree_walkthrough.mli:
