examples/quickstart.mli:
