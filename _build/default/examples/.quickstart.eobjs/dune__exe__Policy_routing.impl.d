examples/policy_routing.ml: Bgmp_fabric Bgp_network Domain Engine Format Host_ref Ipv4 List Prefix Route Speaker String Topo
