examples/provider_failover.mli:
