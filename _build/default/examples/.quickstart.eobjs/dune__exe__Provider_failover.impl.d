examples/provider_failover.ml: Domain Format Host_ref Internet Ipv4 List Maas Masc_network Masc_node Prefix String Time Topo
