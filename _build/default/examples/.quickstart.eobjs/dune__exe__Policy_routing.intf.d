examples/policy_routing.mli:
