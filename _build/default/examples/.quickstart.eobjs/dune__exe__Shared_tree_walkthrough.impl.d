examples/shared_tree_walkthrough.ml: Bgmp_fabric Bgmp_router Domain Engine Format Gen Host_ref Ipv4 List Migp Option Spf String Topo
