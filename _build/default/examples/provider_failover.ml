(* Multi-provider MASC (§4: "a domain that is a customer of other
   domains will choose one or more of those provider domains to be its
   MASC parent") and failure recovery across the stack.

   A dual-homed customer starts under provider P1.  P1's link fails:
   BGP reroutes existing group routes over P2 and the distribution
   trees are rebuilt; the customer then re-parents its MASC node to P2
   so future address claims come from P2's space.

   Run with: dune exec examples/provider_failover.exe *)

let () =
  (* Dual-homed customer:
       P1   P2     (backbone peers)
        \   /
         CU        (customer of both)
         |
         LEAF      (customer of CU, where members live) *)
  let topo = Topo.create () in
  let p1 = Topo.add_domain topo ~name:"P1" ~kind:Domain.Backbone in
  let p2 = Topo.add_domain topo ~name:"P2" ~kind:Domain.Backbone in
  let cu = Topo.add_domain topo ~name:"CU" ~kind:Domain.Regional in
  let leaf = Topo.add_domain topo ~name:"LEAF" ~kind:Domain.Stub in
  Topo.add_link topo p1 p2 Topo.Peer;
  Topo.add_link topo p1 cu Topo.Provider_customer;
  Topo.add_link topo p2 cu Topo.Provider_customer;
  Topo.add_link topo cu leaf Topo.Provider_customer;

  let inet = Internet.create ~config:Internet.quick_config topo in
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);
  let name_of d = (Topo.domain topo d).Domain.name in

  (* CU allocates a group; its MASC parent is its first provider, P1,
     so the range is carved from P1's space. *)
  let rec get tries =
    match Internet.request_address inet cu with
    | Some a -> a
    | None ->
        if tries > 30 then failwith "allocation did not settle";
        Internet.run_for inet (Time.hours 1.0);
        get (tries + 1)
  in
  let alloc = get 0 in
  let group = alloc.Maas.address in
  Format.printf "Group %a allocated by CU (MASC parent: P1)@." Ipv4.pp group;
  Format.printf "CU's ranges: %s@."
    (String.concat " "
       (List.map
          (fun (c : Masc_node.own_claim) -> Prefix.to_string c.Masc_node.claim_prefix)
          (Masc_node.acquired_ranges (Internet.masc_node inet cu))));
  (match Masc_node.role (Internet.masc_node inet cu) with
  | Masc_node.Child p -> Format.printf "CU's MASC parent: %s@." (name_of p)
  | Masc_node.Top -> ());

  (* A member in P2's own network joins; a host in LEAF sends. *)
  Internet.join inet ~host:(Host_ref.make p2 0) ~group;
  Internet.run_for inet (Time.minutes 30.0);
  let show tag =
    let p = Internet.send inet ~source:(Host_ref.make leaf 5) ~group in
    Internet.run_for inet (Time.minutes 10.0);
    Format.printf "%s:@." tag;
    List.iter
      (fun (h, hops) ->
        Format.printf "  delivered to %s in %d hops@." (name_of h.Host_ref.host_domain) hops)
      (Internet.deliveries inet ~payload:p)
  in
  show "Before the failure";

  (* P1-CU link dies: BGP reroutes CU's group route via P2, the tree is
     rebuilt, delivery continues. *)
  Format.printf "@.*** link P1-CU fails ***@.";
  Internet.fail_link inet p1 cu;
  Internet.run_for inet (Time.hours 1.0);
  show "After BGP failover and tree rebuild";

  (* MASC-level failover: CU re-parents to P2.  The old range (carved
     from P1's space) drains by lifetime; new claims come from P2. *)
  Format.printf "@.*** CU re-parents its MASC node to P2 ***@.";
  Masc_network.reparent (Internet.masc_network inet) ~child:cu ~new_parent:p2;
  Internet.run_for inet (Time.days 1.0);
  (* New demand claims from the new parent. *)
  let rec get2 tries =
    match Internet.request_address inet cu with
    | Some a -> a
    | None ->
        if tries > 60 then failwith "post-failover allocation did not settle";
        Internet.run_for inet (Time.hours 1.0);
        get2 (tries + 1)
  in
  (* Addresses from the old (P1-derived) range stay valid until its
     lifetime lapses — sessions are not renumbered by the failover. *)
  let recycled = get2 0 in
  Format.printf "Allocation right after reparenting: %a — still from the draining old range %a@."
    Ipv4.pp recycled.Maas.address Prefix.pp recycled.Maas.from_range;
  (* Exhaust the old pool to force allocation from P2-derived space. *)
  let fresh = ref recycled in
  (try
     for _ = 1 to 600 do
       let a = get2 0 in
       if not (Prefix.equal a.Maas.from_range recycled.Maas.from_range) then begin
         fresh := a;
         raise Exit
       end
     done
   with Exit -> ());
  Format.printf "First allocation from the new provider's space: %a (range %a)@." Ipv4.pp
    !fresh.Maas.address Prefix.pp !fresh.Maas.from_range;
  Format.printf "CU's claims now: %s@."
    (String.concat "  "
       (List.map
          (fun (c : Masc_node.own_claim) ->
            Format.asprintf "%a(%s,%s)" Prefix.pp c.Masc_node.claim_prefix
              (match c.Masc_node.claim_arena with
              | Masc_node.Up -> "from-provider"
              | Masc_node.Down -> "self-reserved")
              (if c.Masc_node.claim_active then "active" else "draining"))
          (Masc_node.all_claims (Internet.masc_node inet cu))));
  (match Masc_node.role (Internet.masc_node inet cu) with
  | Masc_node.Child p -> Format.printf "CU's MASC parent now: %s@." (name_of p)
  | Masc_node.Top -> ());
  (* P2's ranges cover CU's fresh claims. *)
  Format.printf "P2's ranges: %s@."
    (String.concat " "
       (List.map
          (fun (c : Masc_node.own_claim) -> Prefix.to_string c.Masc_node.claim_prefix)
          (Masc_node.bgp_ranges (Internet.masc_node inet p2))))
