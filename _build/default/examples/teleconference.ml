(* The paper's motivating scenario (§5.1): a large one-to-many broadcast
   — "the multicast session for a NASA space shuttle broadcast would
   have the shared tree rooted in NASA's domain".

   The initiator allocates the group address in its own (stub) domain,
   so the root domain coincides with the dominant sender.  Receivers all
   over a transit-stub internetwork join and leave dynamically; we
   measure every delivery's inter-domain hop count against the unicast
   shortest path to show the shared tree is near-optimal when the root
   is well placed.

   Run with: dune exec examples/teleconference.exe *)

let () =
  let rng = Rng.create 2026 in
  let topo = Gen.transit_stub ~rng ~backbones:3 ~regionals_per_backbone:3 ~stubs_per_regional:4 in
  Format.printf "Topology: %a@." Topo.pp_summary topo;

  let inet = Internet.create ~config:Internet.quick_config topo in
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);

  (* NASA's domain: the first stub. *)
  let nasa =
    (List.find (fun d -> d.Domain.kind = Domain.Stub) (Topo.domains topo)).Domain.id
  in
  let rec get_address tries =
    match Internet.request_address inet nasa with
    | Some a -> a
    | None ->
        if tries > 30 then failwith "allocation did not settle";
        Internet.run_for inet (Time.hours 1.0);
        get_address (tries + 1)
  in
  let alloc = get_address 0 in
  let group = alloc.Maas.address in
  Format.printf "Broadcast group %a rooted at domain %d (the sender's own domain)@.@." Ipv4.pp
    group nasa;

  (* Audience: every other stub domain joins, in waves. *)
  let audience =
    List.filter_map
      (fun d ->
        if d.Domain.kind = Domain.Stub && d.Domain.id <> nasa then Some d.Domain.id else None)
      (Topo.domains topo)
  in
  let wave_size = (List.length audience / 3) + 1 in
  let waves =
    let rec split acc rest =
      match rest with
      | [] -> List.rev acc
      | _ ->
          let take = min wave_size (List.length rest) in
          let w = List.filteri (fun i _ -> i < take) rest in
          let rest = List.filteri (fun i _ -> i >= take) rest in
          split (w :: acc) rest
    in
    split [] audience
  in
  let sender = Host_ref.make nasa 0 in
  let from_nasa = Spf.bfs topo nasa in
  let packet_no = ref 0 in
  List.iteri
    (fun i wave ->
      List.iter (fun d -> Internet.join inet ~host:(Host_ref.make d 0) ~group) wave;
      Internet.run_for inet (Time.minutes 20.0);
      let p = Internet.send inet ~source:sender ~group in
      incr packet_no;
      Internet.run_for inet (Time.minutes 5.0);
      let deliveries = Internet.deliveries inet ~payload:p in
      let stretch = Stats.create () in
      List.iter
        (fun (h, hops) ->
          let spt = Spf.dist from_nasa h.Host_ref.host_domain in
          if spt > 0 then Stats.add stretch (float_of_int hops /. float_of_int spt))
        deliveries;
      Format.printf
        "wave %d: +%2d receivers; packet #%d delivered to %3d; path stretch vs SPT: avg %.2fx max \
         %.2fx@."
        (i + 1) (List.length wave) p (List.length deliveries) (Stats.mean stretch)
        (if Stats.count stretch > 0 then Stats.max stretch else 0.0))
    waves;

  (* Churn: half the audience leaves; the tree prunes back. *)
  let tree_before =
    List.length (Bgmp_fabric.tree_domains (Internet.fabric inet) ~group)
  in
  List.iteri
    (fun i d -> if i mod 2 = 0 then Internet.leave inet ~host:(Host_ref.make d 0) ~group)
    audience;
  Internet.run_for inet (Time.minutes 30.0);
  let tree_after = List.length (Bgmp_fabric.tree_domains (Internet.fabric inet) ~group) in
  Format.printf "@.After half the audience leaves, tree shrinks from %d to %d domains@."
    tree_before tree_after;

  let p = Internet.send inet ~source:sender ~group in
  Internet.run_for inet (Time.minutes 5.0);
  Format.printf "Final packet reaches %d receivers (expected %d); duplicates total: %d@."
    (List.length (Internet.deliveries inet ~payload:p))
    (List.length audience - ((List.length audience + 1) / 2))
    (Bgmp_fabric.duplicate_deliveries (Internet.fabric inet))
