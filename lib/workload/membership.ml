let uniform ~rng topo ~size ~exclude =
  let n = Topo.domain_count topo in
  let candidates =
    List.filter (fun d -> not (List.mem d exclude)) (List.init n (fun i -> i))
  in
  if List.length candidates < size then invalid_arg "Membership.uniform: not enough domains";
  let arr = Array.of_list candidates in
  Rng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 size)

let clustered ~rng topo ~size ~clusters ~exclude =
  let n = Topo.domain_count topo in
  if clusters < 1 then invalid_arg "Membership.clustered: need at least one cluster";
  let seeds = Array.init clusters (fun _ -> Rng.int rng n) in
  let dists = Array.map (fun s -> Spf.bfs topo s) seeds in
  (* Weight candidates by proximity to the nearest seed: weight
     1/(1+d)^2 gives a strong but not degenerate concentration. *)
  let eligible = List.filter (fun d -> not (List.mem d exclude)) (List.init n (fun i -> i)) in
  let weight d =
    let best =
      Array.fold_left
        (fun acc paths -> min acc (Spf.dist paths d))
        max_int dists
    in
    if best = max_int then 0.0 else 1.0 /. ((1.0 +. float_of_int best) ** 2.0)
  in
  let chosen = Hashtbl.create size in
  let total = List.fold_left (fun acc d -> acc +. weight d) 0.0 eligible in
  let attempts = ref 0 in
  while Hashtbl.length chosen < size && !attempts < 200 * size do
    incr attempts;
    let target = Rng.float rng total in
    let rec pick acc = function
      | [] -> ()
      | d :: rest ->
          let acc = acc +. weight d in
          if acc >= target then begin
            if not (Hashtbl.mem chosen d) then Hashtbl.replace chosen d ()
          end
          else pick acc rest
    in
    pick 0.0 eligible
  done;
  (* Uniform fallback for any residue (tiny weights, unlucky draws). *)
  let rec fill candidates =
    if Hashtbl.length chosen >= size then ()
    else
      match candidates with
      | [] -> invalid_arg "Membership.clustered: not enough domains"
      | d :: rest ->
          if not (Hashtbl.mem chosen d) then Hashtbl.replace chosen d ();
          fill rest
  in
  if Hashtbl.length chosen < size then fill eligible;
  Hashtbl.fold (fun d () acc -> d :: acc) chosen [] |> List.sort compare

type beacon_plan = {
  local_fleets : (Domain.id * Host_ref.t list) list;
  session_beacons : Host_ref.t list;
}

let beacon_plan topo ~per_domain =
  if per_domain < 1 then invalid_arg "Membership.beacon_plan: need at least one beacon";
  let n = Topo.domain_count topo in
  let fleet d = List.init per_domain (fun i -> Host_ref.make d i) in
  {
    local_fleets = List.init n (fun d -> (d, fleet d));
    session_beacons = List.init n (fun d -> Host_ref.make d 0);
  }

type group_event = {
  seq : int;
  group : int;
  node : Domain.id;
  join : bool;
  join_ref : int;  (* a leave names the join it cancels; -1 on joins *)
}

let group_churn ~seed ~shard ~domains ~groups ?(join_bias = 0.55) ~events () =
  if domains < 1 then invalid_arg "Membership.group_churn: need at least one domain";
  if groups < 1 then invalid_arg "Membership.group_churn: need at least one group";
  if events < 0 then invalid_arg "Membership.group_churn: negative event count";
  if not (join_bias > 0.0 && join_bias <= 1.0) then
    invalid_arg "Membership.group_churn: join_bias must be in (0, 1]";
  (* One generator per (seed, shard): shards draw independent streams,
     so trial-parallel consumers are deterministic at any job count.
     Group ids live in the shard's own block, keeping shard state
     disjoint by construction. *)
  let rng = Rng.create (seed lxor ((shard + 1) * 0x9E3779B97F4A7C)) in
  let base = shard * groups in
  (* Active memberships, swap-removable in O(1): parallel arrays of
     group, member and the join's event index. *)
  let cap = ref 16 in
  let ag = ref (Array.make !cap 0) in
  let am = ref (Array.make !cap 0) in
  let ar = ref (Array.make !cap 0) in
  let live = ref 0 in
  let push g m r =
    if !live = !cap then begin
      let grown_cap = 2 * !cap in
      let grow a = let b = Array.make grown_cap 0 in Array.blit a 0 b 0 !live; b in
      ag := grow !ag;
      am := grow !am;
      ar := grow !ar;
      cap := grown_cap
    end;
    !ag.(!live) <- g;
    !am.(!live) <- m;
    !ar.(!live) <- r;
    incr live
  in
  Array.init events (fun i ->
      if !live = 0 || Rng.float rng 1.0 < join_bias then begin
        let g = base + Rng.int rng groups in
        let m = Rng.int rng domains in
        push g m i;
        { seq = i; group = g; node = m; join = true; join_ref = -1 }
      end
      else begin
        let j = Rng.int rng !live in
        let g = !ag.(j) and m = !am.(j) and r = !ar.(j) in
        decr live;
        !ag.(j) <- !ag.(!live);
        !am.(j) <- !am.(!live);
        !ar.(j) <- !ar.(!live);
        { seq = i; group = g; node = m; join = false; join_ref = r }
      end)

type churn_event = { when_ : Time.t; member : Domain.id; joins : bool }

let waves ~rng ~members ~wave_count ~wave_gap ~stay =
  if wave_count < 1 then invalid_arg "Membership.waves: need at least one wave";
  let events =
    List.concat_map
      (fun m ->
        let wave = Rng.int rng wave_count in
        let join_at = (float_of_int wave *. wave_gap) +. Rng.float rng (wave_gap /. 2.0) in
        [
          { when_ = join_at; member = m; joins = true };
          { when_ = join_at +. stay; member = m; joins = false };
        ])
      members
  in
  List.sort (fun a b -> compare a.when_ b.when_) events
