(** Group-membership workload generators.

    Figure 4 samples receivers uniformly; real sessions cluster
    (audiences concentrate in a few provider subtrees) and churn
    (members join in waves and leave early).  These generators feed
    both the tree-quality experiments and the end-to-end examples. *)

val uniform : rng:Rng.t -> Topo.t -> size:int -> exclude:Domain.id list -> Domain.id list
(** [size] distinct member domains, uniform over the topology minus
    [exclude].  @raise Invalid_argument if fewer candidates remain than
    [size]. *)

val clustered :
  rng:Rng.t -> Topo.t -> size:int -> clusters:int -> exclude:Domain.id list -> Domain.id list
(** Affinity sampling: pick [clusters] random seed domains and draw
    members preferentially near them (by hop distance), modelling
    regionally concentrated audiences.  Falls back to uniform for the
    residue. *)

type beacon_plan = {
  local_fleets : (Domain.id * Host_ref.t list) list;
      (** per domain, its beacon hosts (indices [0 .. per_domain-1]) —
          the members and sources of the domain's own ASM group *)
  session_beacons : Host_ref.t list;
      (** host 0 of every domain: the "border" beacon that also joins
          and sources the interdomain session group *)
}

val beacon_plan : Topo.t -> per_domain:int -> beacon_plan
(** The dbeacon deployment shape: [per_domain] beacons in every domain
    probing their domain's group, plus one beacon per domain on a
    shared interdomain session.  Deterministic — placement is by
    domain/host index, no RNG. *)

type group_event = {
  seq : int;  (** position in the stream *)
  group : int;  (** dense group id, within the shard's own block *)
  node : Domain.id;  (** the member's domain *)
  join : bool;
  join_ref : int;
      (** for a leave, the [seq] of the join it cancels (members leave
          uniformly at random among the currently joined); [-1] on
          joins.  Consumers keyed by join receipts — e.g.
          [Tree_arena.handle]s — tear down exactly the state that join
          installed. *)
}

val group_churn :
  seed:int ->
  shard:int ->
  domains:int ->
  groups:int ->
  ?join_bias:float ->
  events:int ->
  unit ->
  group_event array
(** A deterministic join/leave stream over [groups] dense group ids and
    [domains] member domains: each event is a join with probability
    [join_bias] (default 0.55, forced when nothing is joined), else a
    leave of a uniformly random active membership.  Streams are keyed
    by [(seed, shard)] — equal pairs reproduce the exact stream, and a
    shard's group ids live in block [shard * groups .. (shard+1) *
    groups - 1], so shards running in parallel touch disjoint state at
    any [--jobs]. *)

type churn_event = { when_ : Time.t; member : Domain.id; joins : bool }

val waves :
  rng:Rng.t ->
  members:Domain.id list ->
  wave_count:int ->
  wave_gap:Time.t ->
  stay:Time.t ->
  churn_event list
(** Members join in [wave_count] waves separated by [wave_gap], each
    member leaving [stay] after joining; events in time order. *)
