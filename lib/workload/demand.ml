type profile = {
  block_size : int;
  block_lifetime : Time.t;
  inter_request : [ `Uniform of Time.t * Time.t | `Exponential of Time.t ];
}

let paper_profile =
  {
    block_size = 256;
    block_lifetime = Time.days 30.0;
    inter_request = `Uniform (Time.hours 1.0, Time.hours 95.0);
  }

let bursty_profile =
  { paper_profile with inter_request = `Exponential (Time.hours 4.0) }

type event = { at : Time.t; expires : Time.t }

let draw_gap profile rng =
  match profile.inter_request with
  | `Uniform (lo, hi) -> Rng.float_in rng lo hi
  | `Exponential mean -> Rng.exponential rng ~mean

let schedule profile ~rng ~horizon =
  let rec loop now acc =
    let at = now +. draw_gap profile rng in
    if at > horizon then List.rev acc
    else loop at ({ at; expires = at +. profile.block_lifetime } :: acc)
  in
  loop Time.zero []

let drive profile ~rng ~engine ~horizon ~on_request =
  let rec arm () =
    ignore
      (Engine.schedule_after ~label:"workload.request" engine (draw_gap profile rng) (fun () ->
           if Engine.now engine <= horizon then begin
             on_request ~expires:(Engine.now engine +. profile.block_lifetime);
             arm ()
           end))
  in
  arm ()

let expected_steady_blocks profile =
  let mean_gap =
    match profile.inter_request with
    | `Uniform (lo, hi) -> (lo +. hi) /. 2.0
    | `Exponential mean -> mean
  in
  profile.block_lifetime /. mean_gap
