type t =
  | Space_advertise of Prefix.t list
  | Claim_announce of {
      owner : Domain.id;
      prefix : Prefix.t;
      lifetime_end : Time.t;
      span : Span.t option;
    }
  | Claim_release of { owner : Domain.id; prefix : Prefix.t }
  | Collision_announce of {
      victim : Domain.id;
      victim_prefix : Prefix.t;
      winner : Domain.id;
      winner_prefix : Prefix.t;
      span : Span.t option;
    }
  | Need_space of int

let pp ppf = function
  | Space_advertise ranges ->
      Format.fprintf ppf "space-advertise [%s]"
        (String.concat " " (List.map Prefix.to_string ranges))
  | Claim_announce { owner; prefix; lifetime_end; span = _ } ->
      Format.fprintf ppf "claim %a by %d (until %a)" Prefix.pp prefix owner Time.pp lifetime_end
  | Claim_release { owner; prefix } -> Format.fprintf ppf "release %a by %d" Prefix.pp prefix owner
  | Collision_announce { victim; victim_prefix; winner; winner_prefix; span = _ } ->
      Format.fprintf ppf "collision: %a of %d loses to %a of %d" Prefix.pp victim_prefix victim
        Prefix.pp winner_prefix winner
  | Need_space n -> Format.fprintf ppf "need-space %d" n
