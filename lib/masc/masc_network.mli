(** A running MASC hierarchy: one node per participating domain, wired
    over the simulation engine.

    The hierarchy mirrors the provider/customer structure of the
    topology (§4: "a domain that is a customer of other domains will
    choose one or more of those provider domains to be its MASC
    parent"); domains with no provider are top level and exchange claims
    directly with each other.  Messages travel over {!Net} channels
    (one per directed overlay edge, 50 ms delay), so the paper's
    motivating failure case — two domains claiming the same range while
    unable to hear each other — is injected through the shared
    transport's link state. *)

type t

val create :
  engine:Engine.t ->
  rng:Rng.t ->
  ?config:Masc_node.config ->
  ?trace:Trace.t ->
  ?top_space:(Domain.id -> Prefix.t) ->
  ?net:Net.t ->
  parent_of:(Domain.id -> Domain.id option) ->
  ids:Domain.id list ->
  unit ->
  t
(** Build nodes for [ids]; [parent_of] gives each domain's MASC parent
    ([None] = top level).  Top-level nodes mesh with each other and are
    bootstrapped on the space [top_space] assigns them — by default all
    of 224/4; pass {!exchange_partition} to model the §4.4 start-up
    scheme where Internet exchange points each advertise a continental
    sub-range and every backbone adopts a nearby exchange's prefix.
    [net] is the transport to send over — pass the internet-wide one to
    share link state with BGP and BGMP; by default the hierarchy gets a
    private [Net.t] on the same engine. *)

val exchange_partition : tops:Domain.id list -> exchanges:int -> Domain.id -> Prefix.t
(** Split 224/4 into [exchanges] equal sub-ranges ("one per continent",
    §4.4) and assign each top-level domain to one round-robin.
    @raise Invalid_argument if [exchanges] is not a positive power of
    two reachable by prefix splitting (1, 2, 4, 8, ...). *)

val of_topo :
  engine:Engine.t ->
  rng:Rng.t ->
  ?config:Masc_node.config ->
  ?trace:Trace.t ->
  ?net:Net.t ->
  Topo.t ->
  t
(** Hierarchy from the topology: each domain's parent is its first
    provider (link-insertion order); provider-less domains are top
    level. *)

val node : t -> Domain.id -> Masc_node.t
(** @raise Not_found for a domain with no MASC node. *)

val ids : t -> Domain.id list

val start : t -> unit
(** Start every node (tops first, then down the hierarchy). *)

val reparent : t -> child:Domain.id -> new_parent:Domain.id -> unit
(** Move a child domain under a different parent (multi-provider
    failover): rewires the relay lists on both parents, switches the
    child's node, and has the new parent advertise its space.
    @raise Invalid_argument if [child] is top-level or [new_parent] is
    unknown. *)

val net : t -> Net.t
(** The transport the hierarchy sends over. *)

val partition : t -> Domain.id -> Domain.id -> unit
(** [Net.fail_link] on the transport: both directions between the two
    domains go down — future messages drop at the source, in-flight ones
    are lost — until {!heal}.  On a shared transport this partitions the
    pair for every protocol, not just MASC. *)

val heal : t -> Domain.id -> Domain.id -> unit
(** [Net.restore_link] on the transport. *)

val messages_sent : t -> int
(** MASC messages sent over the transport (including dropped ones). *)

val messages_dropped : t -> int

val total_collisions : t -> int
(** Sum of collisions suffered across nodes. *)
