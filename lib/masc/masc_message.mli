(** Messages exchanged between MASC nodes.

    A child exchanges messages with its parent; the parent relays claims
    among its children (the claim/collision flow of §4.1).  Top-level
    domains, having no parent, exchange the same messages directly with
    their top-level siblings.  Because claims are relayed, each claim
    message carries the identity of the claiming domain ([owner]), which
    is generally not the immediate sender. *)

type t =
  | Space_advertise of Prefix.t list
      (** parent → children: the parent's current address ranges, from
          which the children select their claims *)
  | Claim_announce of {
      owner : Domain.id;
      prefix : Prefix.t;
      lifetime_end : Time.t;
      span : Span.t option;
    }
      (** a new claim, a renewal (same prefix, later lifetime), or a
          growth into a covering prefix by the same owner; [span] is the
          claim's causal span, relayed unchanged *)
  | Claim_release of { owner : Domain.id; prefix : Prefix.t }
      (** the owner relinquishes the range before its lifetime ends *)
  | Collision_announce of {
      victim : Domain.id;
      victim_prefix : Prefix.t;
      winner : Domain.id;
      winner_prefix : Prefix.t;
      span : Span.t option;
    }
      (** sent (or relayed) toward the claimer whose range lost; the
          victim must give up [victim_prefix] and claim elsewhere;
          [span] continues the {e winning} claim's chain *)
  | Need_space of int
      (** child → parent: the child could not place a claim for this
          many addresses; the parent should expand its own space *)

val pp : Format.formatter -> t -> unit
