(** The paper's §4.3.3 MASC claim-algorithm simulation (Figure 2).

    A two-level hierarchy of [tops] top-level domains, each with
    [children_per_top] child domains.  Each child's allocation server
    requests blocks of [block_size] addresses with lifetime
    [block_lifetime]; inter-request times are uniform on
    [\[request_min, request_max\]].  Children claim prefixes from their
    parent's space and parents claim from 224/4, both with the §4.3.3
    policy (75 % occupancy target, at most two prefixes, doubling /
    small-claim / consolidation).

    The simulator runs the claim algorithm synchronously against each
    arena's current registry: the 48-hour collision wait is three orders
    of magnitude below the 30-day dynamics being measured and the paper's
    own simulation tracks exactly these two observables — address-space
    utilization and G-RIB size, defined as in §4.3.3:

    - {e utilization}: fraction of the addresses claimed from 224/4 that
      are actually requested by the allocation servers;
    - {e G-RIB size at a top-level domain}: globally advertised prefixes
      (all top-level claims) plus its children's prefixes;
    - {e G-RIB size at a child}: globally advertised prefixes plus the
      prefixes claimed by its siblings. *)

type params = {
  tops : int;
  children_per_top : int;
  block_size : int;
  block_lifetime : Time.t;
  request_min : Time.t;
  request_max : Time.t;
  horizon : Time.t;
  sample_interval : Time.t;
  policy : Claim_policy.params;
  claim_lifetime : Time.t;
  placement : [ `First | `Random ];  (** sub-prefix placement rule (ablation A2) *)
  hetero_spread : int;
      (** heterogeneity: each top-level domain gets
          [children_per_top ± U(0, hetero_spread)] children (0 = the
          paper's homogeneous 50×50; the paper notes it "also examined
          more heterogeneous topologies with similar results") *)
  check_invariants : bool;
      (** evaluate the ["allocation-overlap"] invariant (no two domains
          hold overlapping live claims) at every sample; default [false]
          — the O(claims²) sweep is measurable on the full 50×50 run *)
  seed : int;
  telemetry : Timeseries.t option;
      (** when set, every figure sample also lands one [alloc.*] row per
          series in the sink (pending events, outstanding blocks,
          claimed/demanded addresses, utilization, G-RIB avg/max, top
          prefixes), timestamped in sim seconds; default [None] *)
}

val default_params : params
(** The paper's settings: 50×50 domains, 256-address blocks, 30-day
    lifetimes, U[1 h, 95 h] inter-request, 800-day horizon, daily
    samples, 75 % / 2-prefix policy, first-sub-prefix placement. *)

type sample = {
  day : float;
  utilization : float;
  grib_avg : float;
  grib_max : int;
  outstanding_blocks : int;
  claimed_addresses : int;  (** total claimed from 224/4 *)
  demanded_addresses : int;
  top_prefixes : int;  (** globally advertised prefix count *)
  child_prefixes : int;
}

type holding = { h_prefix : Prefix.t; h_active : bool; h_used : int }
(** One claimed prefix at the end of the run. *)

type result = {
  samples : sample array;
  failed_requests : int;  (** block requests that found no space *)
  total_requests : int;
  claims_made : int;
  final_tops : holding list array;  (** per top-level domain *)
  final_children : holding list array;  (** per child domain *)
  invariant_violations : int;
      (** overlap violations seen across all samples (0 unless
          [check_invariants]; also counted in {!Metrics.default}) *)
  top_converged_day : float;
      (** when the set of globally advertised (top-level) prefixes last
          changed — the allocation layer's convergence time, from the
          engine's ["masc"] activity watermark *)
}

val run : params -> result

val steady_state : result -> from_day:float -> sample list
(** The samples at or after [from_day], for summary statistics. *)

val run_many : ?jobs:int -> params list -> result list
(** Run several independent simulations concurrently on the {!Par}
    pool (default: the pool's job count), results in input order.
    Metrics and profiler spans collected by each run land in a
    shard and are merged back in input order, so observability output
    is byte-identical at any job count.
    @raise Invalid_argument if any parameter set carries [telemetry]
    (a worker cannot drive a shared sink). *)
