type block = { value : int; mask : int }

let block_of_prefix p =
  if not (Prefix.subsumes Prefix.class_d p) then
    invalid_arg "Kampai.block_of_prefix: outside 224/4";
  let len = Prefix.len p in
  let mask = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF in
  { value = Prefix.base p; mask }

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x lsr 1) (acc + (x land 1)) in
  loop x 0

let size b = 1 lsl (32 - popcount b.mask)

let mem addr b = addr land b.mask = b.value

let disjoint a b = (a.value lxor b.value) land a.mask land b.mask <> 0

let grow b ~others =
  let rec try_bit i =
    if i > 27 then None
    else begin
      let bit = 1 lsl i in
      if b.mask land bit = 0 then try_bit (i + 1)
      else begin
        let candidate = { value = b.value land lnot bit; mask = b.mask land lnot bit } in
        if List.for_all (disjoint candidate) others then Some candidate else try_bit (i + 1)
      end
    end
  in
  try_bit 0

let shrink b =
  let rec find_clear i =
    if i > 27 then None
    else begin
      let bit = 1 lsl i in
      if b.mask land bit = 0 then Some bit else find_clear (i + 1)
    end
  in
  match find_clear 0 with
  | None -> None
  | Some bit -> Some { b with mask = b.mask lor bit }

let pp ppf b =
  Format.fprintf ppf "%s/%s" (Ipv4.to_string b.value) (Ipv4.to_string b.mask)

module Sim = struct
  type params = {
    domains : int;
    block_size : int;
    block_lifetime : Time.t;
    request_min : Time.t;
    request_max : Time.t;
    horizon : Time.t;
    seed : int;
  }

  let default_params =
    {
      domains = 100;
      block_size = 256;
      block_lifetime = Time.days 30.0;
      request_min = Time.hours 1.0;
      request_max = Time.hours 95.0;
      horizon = Time.days 400.0;
      seed = 1998;
    }

  type side = {
    utilization : float;
    table_entries : float;
    failures : int;
    renumberings : int;
  }

  type result = { contiguous : side; kampai : side }

  (* ----- Kampai side: one growable block per domain ----------------- *)

  type kdom = { mutable blk : block; mutable kused : int }

  let run_kampai p =
    let engine = Engine.create () in
    let rng = Rng.create p.seed in
    let doms =
      Array.init p.domains (fun i ->
          {
            blk =
              block_of_prefix
                (Prefix.make (0xE0000000 lor (i lsl 8)) 24);
            kused = 0;
          })
    in
    let others i =
      Array.to_list (Array.mapi (fun j d -> if j = i then None else Some d.blk) doms)
      |> List.filter_map Fun.id
    in
    let failures = ref 0 in
    let util_acc = Stats.create () and entries_acc = Stats.create () in
    let rec demand_loop i =
      let d = doms.(i) in
      ignore
        (Engine.schedule_after ~label:"kampai.request" engine
           (Rng.float_in rng p.request_min p.request_max)
           (fun () ->
             let rec ensure () =
               if d.kused + p.block_size <= size d.blk then true
               else
                 match grow d.blk ~others:(others i) with
                 | Some bigger ->
                     d.blk <- bigger;
                     ensure ()
                 | None -> false
             in
             if ensure () then begin
               d.kused <- d.kused + p.block_size;
               ignore
                 (Engine.schedule_after ~label:"kampai.block_expiry" engine p.block_lifetime (fun () ->
                      d.kused <- d.kused - p.block_size;
                      (* Release space eagerly: because regrowth can
                         never be blocked by a neighbour's buddy, Kampai
                         affords shrinking whenever the upper half is
                         unused — the fragmentation-free growth is the
                         scheme's whole advantage. *)
                      let rec maybe_shrink () =
                        if d.kused <= size d.blk / 2 && size d.blk > p.block_size then begin
                          match shrink d.blk with
                          | Some smaller when d.kused <= size smaller ->
                              d.blk <- smaller;
                              maybe_shrink ()
                          | Some _ | None -> ()
                        end
                      in
                      maybe_shrink ()))
             end
             else incr failures;
             demand_loop i))
    in
    for i = 0 to p.domains - 1 do
      demand_loop i
    done;
    let sample () =
      let used = Array.fold_left (fun acc d -> acc + d.kused) 0 doms in
      let allocated = Array.fold_left (fun acc d -> acc + size d.blk) 0 doms in
      if Engine.now engine >= p.horizon /. 2.0 then begin
        Stats.add util_acc (float_of_int used /. float_of_int allocated);
        Stats.add entries_acc (float_of_int p.domains)
      end
    in
    let rec sampling () =
      ignore
        (Engine.schedule_after ~label:"kampai.sample" engine (Time.days 1.0) (fun () ->
             sample ();
             if Engine.now engine < p.horizon then sampling ()))
    in
    sampling ();
    Engine.run ~until:p.horizon engine;
    {
      utilization = Stats.mean util_acc;
      table_entries = Stats.mean entries_acc;
      failures = !failures;
      renumberings = 0;
    }

  (* ----- Contiguous side: §4.3.3 prefixes from one shared arena ------ *)

  type cclaim = { mutable cpfx : Prefix.t; mutable cused : int; mutable cactive : bool }

  type cdom = { cid : int; mutable claims : cclaim list }

  let run_contiguous p =
    let engine = Engine.create () in
    let rng = Rng.create p.seed in
    let arena = Address_space.create () in
    Address_space.add_cover arena Prefix.class_d;
    let doms = Array.init p.domains (fun cid -> { cid; claims = [] }) in
    let failures = ref 0 and renumberings = ref 0 in
    let util_acc = Stats.create () and entries_acc = Stats.create () in
    let policy = Claim_policy.default_params in
    let policy_view d =
      List.map
        (fun c -> { Claim_policy.prefix = c.cpfx; active = c.cactive; used = c.cused })
        d.claims
    in
    let add_claim d prefix =
      Address_space.register arena ~owner:d.cid prefix;
      let c = { cpfx = prefix; cused = 0; cactive = true } in
      d.claims <- c :: d.claims;
      c
    in
    let release_if_empty d c =
      if c.cused = 0 && not c.cactive then begin
        Address_space.unregister arena c.cpfx;
        d.claims <- List.filter (fun x -> x != c) d.claims
      end
    in
    let rec satisfy d attempts =
      if attempts = 0 then None
      else
        match Claim_policy.decide ~params:policy ~space:arena ~claims:(policy_view d) ~need:p.block_size with
        | Claim_policy.Assign pre -> List.find_opt (fun c -> Prefix.equal c.cpfx pre) d.claims
        | Claim_policy.Double pre -> (
            match List.find_opt (fun c -> Prefix.equal c.cpfx pre) d.claims with
            | Some c ->
                Address_space.unregister arena c.cpfx;
                let doubled = Prefix.double c.cpfx in
                Address_space.register arena ~owner:d.cid doubled;
                c.cpfx <- doubled;
                Some c
            | None -> None)
        | Claim_policy.Claim_new len -> (
            match Address_space.choose_claim arena ~rng ~want_len:len with
            | Some pre -> Some (add_claim d pre)
            | None -> satisfy d (attempts - 1))
        | Claim_policy.Consolidate len -> (
            match Address_space.choose_claim arena ~rng ~want_len:len with
            | Some pre ->
                let fresh = add_claim d pre in
                incr renumberings;
                List.iter
                  (fun c ->
                    if c != fresh then begin
                      c.cactive <- false;
                      release_if_empty d c
                    end)
                  d.claims;
                Some fresh
            | None -> satisfy d (attempts - 1))
        | Claim_policy.Blocked -> None
    in
    let rec demand_loop i =
      let d = doms.(i) in
      ignore
        (Engine.schedule_after ~label:"kampai.request" engine
           (Rng.float_in rng p.request_min p.request_max)
           (fun () ->
             (match satisfy d 3 with
             | Some c ->
                 c.cused <- c.cused + p.block_size;
                 ignore
                   (Engine.schedule_after ~label:"kampai.block_expiry" engine p.block_lifetime (fun () ->
                        c.cused <- c.cused - p.block_size;
                        release_if_empty d c))
             | None -> incr failures);
             demand_loop i))
    in
    for i = 0 to p.domains - 1 do
      demand_loop i
    done;
    let sample () =
      if Engine.now engine >= p.horizon /. 2.0 then begin
        let used = ref 0 and allocated = ref 0 and entries = ref 0 in
        Array.iter
          (fun d ->
            List.iter
              (fun c ->
                used := !used + c.cused;
                allocated := !allocated + Prefix.size c.cpfx;
                incr entries)
              d.claims)
          doms;
        if !allocated > 0 then
          Stats.add util_acc (float_of_int !used /. float_of_int !allocated);
        Stats.add entries_acc (float_of_int !entries)
      end
    in
    let rec sampling () =
      ignore
        (Engine.schedule_after ~label:"kampai.sample" engine (Time.days 1.0) (fun () ->
             sample ();
             if Engine.now engine < p.horizon then sampling ()))
    in
    sampling ();
    Engine.run ~until:p.horizon engine;
    {
      utilization = Stats.mean util_acc;
      table_entries = Stats.mean entries_acc;
      failures = !failures;
      renumberings = !renumberings;
    }

  let run p = { contiguous = run_contiguous p; kampai = run_kampai p }
end
