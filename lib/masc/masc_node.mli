(** A MASC protocol node: the claim-collide state machine of §4.

    One node serves one domain.  A node {e listens} to the space
    advertised by its parent (or to 224/4 if it is top-level), {e claims}
    sub-ranges chosen by the §4.3.3 algorithm, announces the claims to
    its parent and (via the parent's relaying) to its siblings, waits a
    configurable collision period, and only then treats the range as
    {e acquired} — handing it to the domain's MAAS and injecting it into
    BGP through the [on_acquired] callback.  Overlapping claims by
    different domains are resolved deterministically: an established
    (acquired) claim beats a waiting one, and between two waiting claims
    the lower domain id wins (footnote 4 of the paper).

    A node with children also manages the {e down} arena: it relays each
    child's claim to the other children, tracks how much of its space the
    children occupy, and expands its own space when they run out (§4.1:
    "it claims more address space when the utilization exceeds a given
    threshold"). *)

type config = {
  claim_wait : Time.t;
      (** collision-listening period before a claim is usable; the paper
          suggests 48 hours in deployment — tests scale it down *)
  claim_lifetime : Time.t;  (** lifetime requested for each claim (30 days) *)
  renew_margin : Time.t;
      (** how long before expiry a still-needed claim is renewed *)
  policy : Claim_policy.params;
  child_expand_headroom : float;
      (** a parent expands when children's claims exceed this fraction of
          its space (defaults to [policy.threshold]) *)
}

val default_config : config
(** 48 h wait, 30 d lifetime, 24 h renew margin, default policy. *)

type role = Top | Child of Domain.id

type claim_state = Waiting | Acquired

type arena_kind =
  | Up  (** ranges claimed from the parent's space (or 224/4): these are
            the domain's MASC allocation, injected into BGP *)
  | Down
      (** ranges a transit domain reserves out of its own space for its
          local MAAS, claimed against its children like a sibling *)

type own_claim = {
  claim_arena : arena_kind;
  claim_prefix : Prefix.t;
  mutable claim_lifetime_end : Time.t;
  mutable claim_state : claim_state;
  mutable claim_active : bool;  (** accepting new assignments *)
  claim_span : Span.t;  (** root of this claim's causal chain *)
}

type t

val create :
  id:Domain.id -> role:role -> config:config -> engine:Engine.t -> rng:Rng.t -> trace:Trace.t -> t

val id : t -> Domain.id

val role : t -> role

val set_transport : t -> (dst:Domain.id -> Masc_message.t -> unit) -> unit

val set_children : t -> Domain.id list -> unit

val set_top_siblings : t -> Domain.id list -> unit
(** For a top-level node: the other top-level nodes it exchanges claims
    with directly. *)

val add_on_acquired : t -> (Prefix.t -> lifetime_end:Time.t -> span:Span.t -> unit) -> unit
(** Register a listener for newly acquired Up ranges (the MAAS learns of
    usable space; the BGP speaker injects the group route).  [span] is
    the acquisition's span on the claim's causal chain, for threading
    into the resulting BGP route.  Listeners accumulate. *)

val add_on_replaced : t -> (old_prefix:Prefix.t -> by:Prefix.t -> unit) -> unit
(** Register a listener fired when a doubling claim absorbs an existing
    acquired prefix: the old group route must be withdrawn (the new,
    covering route is already injected) and MAAS pools grow in place —
    existing address assignments stay valid. *)

val add_on_lost : t -> (Prefix.t -> unit) -> unit
(** Register a listener fired when an acquired prefix is lost (collision
    after a partition, or lifetime expiry): the MAAS must renumber and
    BGP must withdraw.  Listeners accumulate. *)

val add_on_space_changed : t -> (unit -> unit) -> unit
(** Register a listener fired whenever the set of acquired ranges
    changes; a MAAS retries parked allocations on this signal. *)

val reparent : t -> new_parent:Domain.id -> unit
(** Switch a child domain to a different provider as its MASC parent
    (§4: "a domain that is a customer of other domains will choose one
    or more of those provider domains to be its MASC parent").  The
    node forgets the old parent's advertised space and claim registry;
    claims outside the new parent's space stop renewing and drain away
    as their addresses expire, while fresh demand claims from the new
    space.  @raise Invalid_argument on a top-level node. *)

val bootstrap_top : t -> Prefix.t -> unit
(** Configure the global space a top-level node claims from (normally
    {!Prefix.class_d}, or an exchange's continental sub-range in the
    start-up scheme of §4.4). *)

val start : t -> unit
(** Begin protocol operation (advertise space to children, schedule
    periodic housekeeping). *)

val receive : t -> from_:Domain.id -> Masc_message.t -> unit

val request_space : t -> need:int -> unit
(** Demand [need] more addresses (a MAAS ran out).  The node applies the
    §4.3.3 policy: assign from an existing range (then
    [on_space_changed] fires immediately), double, claim anew, or
    consolidate; if its parent's space is exhausted it sends
    [Need_space] upward and retries when new space is advertised. *)

val note_assigned : t -> Prefix.t -> int -> unit
(** The MAAS reports [n] addresses newly assigned (negative = freed)
    within the given acquired range; feeds utilization decisions. *)

val acquired_ranges : t -> own_claim list
(** The MAAS-usable acquired claims: the Up arena for a leaf domain, the
    Down (self-reserved) arena for a transit domain. *)

val bgp_ranges : t -> own_claim list
(** Acquired Up-arena claims: the ranges this domain injects into BGP as
    group routes (it is the root domain for all of them). *)

val all_claims : t -> own_claim list

val assigned_in : t -> Prefix.t -> int

val space_view : t -> Address_space.t
(** The node's view of the arena it claims from (covers = parent space;
    claims = heard sibling claims plus its own). *)

val children_view : t -> Address_space.t
(** The arena this node's children claim from. *)

val pending_requests : t -> int

val collisions_suffered : t -> int
(** How many of this node's claims were killed by collisions. *)

val claims_made : t -> int
