type params = {
  tops : int;
  children_per_top : int;
  block_size : int;
  block_lifetime : Time.t;
  request_min : Time.t;
  request_max : Time.t;
  horizon : Time.t;
  sample_interval : Time.t;
  policy : Claim_policy.params;
  claim_lifetime : Time.t;
  placement : [ `First | `Random ];
  hetero_spread : int;
  check_invariants : bool;
  seed : int;
  telemetry : Timeseries.t option;
}

let default_params =
  {
    tops = 50;
    children_per_top = 50;
    block_size = 256;
    block_lifetime = Time.days 30.0;
    request_min = Time.hours 1.0;
    request_max = Time.hours 95.0;
    horizon = Time.days 800.0;
    sample_interval = Time.days 1.0;
    policy = Claim_policy.default_params;
    claim_lifetime = Time.days 30.0;
    placement = `First;
    hetero_spread = 0;
    check_invariants = false;
    seed = 1998;
    telemetry = None;
  }

type sample = {
  day : float;
  utilization : float;
  grib_avg : float;
  grib_max : int;
  outstanding_blocks : int;
  claimed_addresses : int;
  demanded_addresses : int;
  top_prefixes : int;
  child_prefixes : int;
}

type holding = { h_prefix : Prefix.t; h_active : bool; h_used : int }

type result = {
  samples : sample array;
  failed_requests : int;
  total_requests : int;
  claims_made : int;
  final_tops : holding list array;
  final_children : holding list array;
  invariant_violations : int;
  top_converged_day : float;
}

(* One claimed prefix held by a domain (child or top).  [used] counts
   addresses of live blocks (child) or of children's claims (top,
   maintained incrementally). *)
type dom_claim = {
  mutable prefix : Prefix.t;
  mutable active : bool;
  mutable used : int;
  mutable expires : Time.t;
  mutable alive : bool;
}

type child = { c_owner : int; c_top : int; mutable c_claims : dom_claim list; c_rng : Rng.t }

type top = {
  t_owner : int;
  t_arena : Address_space.t;  (** the arena this top's children claim from *)
  mutable t_claims : dom_claim list;
  t_rng : Rng.t;
}

type sim = {
  p : params;
  engine : Engine.t;
  global : Address_space.t;  (** 224/4; claims are top-level prefixes *)
  top_doms : top array;
  child_doms : child array;
  mutable demanded : int;  (** addresses of live blocks *)
  mutable claimed_top : int;  (** addresses claimed from 224/4 *)
  mutable blocks : int;
  mutable failed : int;
  mutable requests : int;
  mutable claims_made : int;
  mutable samples_rev : sample list;
  mutable last_sample : sample option;
  mutable right_size_top : sim -> top -> unit;
  mutable right_size_child : sim -> child -> unit;
  mutable violations : int;
  invariants : Invariant.t;
}

let m_requests = Metrics.counter "allocation.requests"
let m_failed = Metrics.counter "allocation.failed_requests"
let m_claims_made = Metrics.counter "allocation.claims_made"
let m_outstanding = Metrics.gauge "allocation.outstanding_blocks"
let m_utilization = Metrics.gauge "allocation.utilization"
let m_converged = Metrics.gauge "allocation.top_converged_day"

let policy_view claims =
  List.map
    (fun c -> { Claim_policy.prefix = c.prefix; active = c.active; used = c.used })
    (List.filter (fun c -> c.alive) claims)

let live_claims claims = List.filter (fun c -> c.alive) claims

(* --- top-level (parent) expansion ---------------------------------- *)

let top_total top = List.fold_left (fun acc c -> acc + Prefix.size c.prefix) 0 (live_claims top.t_claims)

let top_used top = List.fold_left (fun acc c -> acc + c.used) 0 (live_claims top.t_claims)

(* Lifetime machinery (§4.3.1): a claim still in use is renewed at
   expiry, but only while [may_renew] holds — a child claim may not
   outlive its covering parent range, so once the parent range is
   deactivated the child claim switches to draining (no new assignments)
   and is recycled when its addresses time out. *)
let rec schedule_claim_expiry sim ~(arena : Address_space.t) ~(holder : dom_claim)
    ~(may_renew : unit -> bool) ?(on_renew = fun () -> ()) ~(on_release : unit -> unit) () =
  ignore
    (Engine.schedule_at ~label:"alloc.claim_expiry" sim.engine holder.expires (fun () ->
         if holder.alive then begin
           if holder.used > 0 && may_renew () then begin
             holder.expires <- Engine.now sim.engine +. sim.p.claim_lifetime;
             schedule_claim_expiry sim ~arena ~holder ~may_renew ~on_renew ~on_release ();
             on_renew ()
           end
           else if holder.used > 0 then begin
             (* Cannot renew: drain and re-check one lifetime later. *)
             holder.active <- false;
             holder.expires <- Engine.now sim.engine +. sim.p.claim_lifetime;
             schedule_claim_expiry sim ~arena ~holder ~may_renew ~on_renew ~on_release ()
           end
           else begin
             holder.alive <- false;
             Address_space.unregister arena holder.prefix;
             on_release ()
           end
         end))

(* The set of top-level (globally advertised) prefixes changed: advance
   the convergence watermark. *)
let note_top_change sim = Engine.note_activity sim.engine "masc"

let top_release sim top holder () =
  note_top_change sim;
  top.t_claims <- List.filter (fun c -> c != holder) top.t_claims;
  Address_space.remove_cover top.t_arena holder.prefix;
  sim.claimed_top <- sim.claimed_top - Prefix.size holder.prefix

let top_add_claim sim top prefix =
  Address_space.register sim.global ~owner:top.t_owner prefix;
  Address_space.add_cover top.t_arena prefix;
  let holder =
    {
      prefix;
      active = true;
      used = 0;
      expires = Engine.now sim.engine +. sim.p.claim_lifetime;
      alive = true;
    }
  in
  note_top_change sim;
  top.t_claims <- holder :: top.t_claims;
  sim.claimed_top <- sim.claimed_top + Prefix.size prefix;
  sim.claims_made <- sim.claims_made + 1;
  Metrics.incr m_claims_made;
  schedule_claim_expiry sim ~arena:sim.global ~holder
    ~may_renew:(fun () -> holder.active)
    ~on_renew:(fun () -> sim.right_size_top sim top)
    ~on_release:(top_release sim top holder) ();
  holder

let top_double sim top holder =
  note_top_change sim;
  let doubled = Prefix.double holder.prefix in
  Address_space.unregister sim.global holder.prefix;
  Address_space.register sim.global ~owner:top.t_owner doubled;
  Address_space.remove_cover top.t_arena holder.prefix;
  Address_space.add_cover top.t_arena doubled;
  sim.claimed_top <- sim.claimed_top + Prefix.size holder.prefix;
  sim.claims_made <- sim.claims_made + 1;
  Metrics.incr m_claims_made;
  holder.prefix <- doubled

let top_deactivate sim top holder =
  if holder.active then begin
    note_top_change sim;
    holder.active <- false;
    (* Children may no longer place or grow claims inside a draining
       range; their claims within it lapse at their own expiry. *)
    Address_space.remove_cover top.t_arena holder.prefix
  end

(* Grow a top's space by [need] addresses; [force] skips the Assign
   short-circuit (used when a child failed on fragmentation, so raw
   capacity exists but no usable contiguous block).  The effective need
   is never below what restores the occupancy target, so
   fragmentation-forced claims do not litter 224/4 with slivers. *)
let top_expand sim top ~need ~force =
  let threshold = sim.p.policy.Claim_policy.threshold in
  let total = top_total top and used = top_used top in
  let to_target =
    max 0 (int_of_float (ceil (float_of_int (used + need) /. threshold)) - total)
  in
  let need = max need to_target in
  let decision =
    Claim_policy.decide ~params:sim.p.policy ~space:sim.global
      ~claims:(policy_view top.t_claims) ~need
  in
  let claim_new len =
    match
      Address_space.choose_claim_placed sim.global ~rng:top.t_rng ~want_len:len
        ~placement:sim.p.placement
    with
    | Some prefix -> Some (top_add_claim sim top prefix)
    | None -> None
  in
  let consolidate len =
    match claim_new len with
    | Some fresh ->
        List.iter (fun c -> if c.alive && c != fresh then top_deactivate sim top c) top.t_claims;
        true
    | None -> false
  in
  (* Fragmentation-forced growth must still respect the prefix budget:
     at the limit, consolidate into one block big enough for everything
     instead of littering 224/4 with per-incident slivers. *)
  let forced_growth () =
    let active = List.filter (fun c -> c.alive && c.active) top.t_claims in
    if List.length active < sim.p.policy.Claim_policy.max_prefixes then
      claim_new (Prefix.mask_for_count need) <> None
    else consolidate (Prefix.mask_for_count (used + need))
  in
  match decision with
  | Claim_policy.Assign _ -> if force then forced_growth () else true
  | Claim_policy.Double p -> (
      match List.find_opt (fun c -> c.alive && Prefix.equal c.prefix p) top.t_claims with
      | Some holder ->
          top_double sim top holder;
          true
      | None -> false)
  | Claim_policy.Claim_new len -> claim_new len <> None
  | Claim_policy.Consolidate len -> consolidate len
  | Claim_policy.Blocked -> forced_growth ()

(* Renewal-time adaptation (§4.3.3: ranges "have to be given up once the
   lifetime expires unless explicitly renewed.  This helps us adapt
   continually to usage patterns"): a domain whose active space is badly
   under-used at renewal consolidates down to a right-sized block. *)
let right_size_top sim top =
  let active = List.filter (fun c -> c.alive && c.active) top.t_claims in
  let size = List.fold_left (fun acc c -> acc + Prefix.size c.prefix) 0 active in
  let used = List.fold_left (fun acc c -> acc + c.used) 0 active in
  let threshold = sim.p.policy.Claim_policy.threshold in
  if used > 0 && size > 0 && float_of_int used < 0.5 *. threshold *. float_of_int size then begin
    let len = Prefix.mask_for_count used in
    if 1 lsl (32 - len) < size then begin
      match
        Address_space.choose_claim_placed sim.global ~rng:top.t_rng ~want_len:len
          ~placement:sim.p.placement
      with
      | Some prefix ->
          let fresh = top_add_claim sim top prefix in
          List.iter (fun c -> if c.alive && c != fresh then top_deactivate sim top c) top.t_claims
      | None -> ()
    end
  end

(* Keep the parent ahead of its children's demand (§4.1). *)
let top_pressure_check sim top =
  let total = top_total top in
  let used = top_used top in
  if total = 0 then ignore (top_expand sim top ~need:sim.p.block_size ~force:false)
  else begin
    let threshold = sim.p.policy.Claim_policy.threshold in
    if float_of_int used > threshold *. float_of_int total then begin
      let target = int_of_float (ceil (float_of_int used /. threshold)) in
      ignore (top_expand sim top ~need:(max sim.p.block_size (target - total)) ~force:false)
    end
  end

(* --- child claims --------------------------------------------------- *)

let top_claim_covering top prefix =
  List.find_opt (fun c -> c.alive && Prefix.subsumes c.prefix prefix) top.t_claims

let note_child_claimed sim child prefix delta =
  let top = sim.top_doms.(child.c_top) in
  match top_claim_covering top prefix with
  | Some holder -> holder.used <- holder.used + delta
  | None -> ()

let child_release sim child holder () =
  child.c_claims <- List.filter (fun c -> c != holder) child.c_claims;
  note_child_claimed sim child holder.prefix (-(Prefix.size holder.prefix))

let child_add_claim sim child prefix =
  let top = sim.top_doms.(child.c_top) in
  Address_space.register top.t_arena ~owner:child.c_owner prefix;
  let holder =
    {
      prefix;
      active = true;
      used = 0;
      expires = Engine.now sim.engine +. sim.p.claim_lifetime;
      alive = true;
    }
  in
  child.c_claims <- holder :: child.c_claims;
  sim.claims_made <- sim.claims_made + 1;
  Metrics.incr m_claims_made;
  note_child_claimed sim child prefix (Prefix.size prefix);
  schedule_claim_expiry sim ~arena:top.t_arena ~holder
    ~may_renew:(fun () ->
      holder.active
      && (match top_claim_covering top holder.prefix with
         | Some cover -> cover.active
         | None -> false))
    ~on_renew:(fun () -> sim.right_size_child sim child)
    ~on_release:(child_release sim child holder) ();
  top_pressure_check sim top;
  holder

let child_double sim child holder =
  let top = sim.top_doms.(child.c_top) in
  let doubled = Prefix.double holder.prefix in
  Address_space.unregister top.t_arena holder.prefix;
  Address_space.register top.t_arena ~owner:child.c_owner doubled;
  note_child_claimed sim child holder.prefix (Prefix.size holder.prefix);
  (* +size(old) = size(new) - size(old) added on top of what was already
     counted for the old prefix. *)
  sim.claims_made <- sim.claims_made + 1;
  Metrics.incr m_claims_made;
  holder.prefix <- doubled;
  top_pressure_check sim top

(* Find (growing the spaces as needed) a claim with room for one block.
   Returns [None] only when even parent expansion failed. *)
let rec child_satisfy sim child ~attempts =
  if attempts <= 0 then None
  else begin
    let top = sim.top_doms.(child.c_top) in
    let decision =
      Claim_policy.decide ~params:sim.p.policy ~space:top.t_arena
        ~claims:(policy_view child.c_claims) ~need:sim.p.block_size
    in
    let place len =
      match
        Address_space.choose_claim_placed top.t_arena ~rng:child.c_rng ~want_len:len
          ~placement:sim.p.placement
      with
      | Some prefix -> Some (child_add_claim sim child prefix)
      | None ->
          if top_expand sim top ~need:(1 lsl (32 - len)) ~force:true then
            child_satisfy sim child ~attempts:(attempts - 1)
          else None
    in
    match decision with
    | Claim_policy.Assign p ->
        List.find_opt
          (fun c -> c.alive && c.active && Prefix.equal c.prefix p)
          child.c_claims
    | Claim_policy.Double p -> (
        match
          List.find_opt (fun c -> c.alive && Prefix.equal c.prefix p) child.c_claims
        with
        | Some holder ->
            child_double sim child holder;
            Some holder
        | None -> None)
    | Claim_policy.Claim_new len -> place len
    | Claim_policy.Consolidate len -> (
        match place len with
        | Some holder ->
            List.iter (fun c -> if c != holder then c.active <- false) child.c_claims;
            Some holder
        | None -> None)
    | Claim_policy.Blocked ->
        let need =
          sim.p.block_size
          + List.fold_left (fun acc c -> if c.alive then acc + c.used else acc) 0 child.c_claims
        in
        if top_expand sim top ~need ~force:true then child_satisfy sim child ~attempts:(attempts - 1)
        else None
  end

let right_size_child sim child =
  let active = List.filter (fun c -> c.alive && c.active) child.c_claims in
  let size = List.fold_left (fun acc c -> acc + Prefix.size c.prefix) 0 active in
  let used = List.fold_left (fun acc c -> acc + c.used) 0 active in
  let threshold = sim.p.policy.Claim_policy.threshold in
  if used > 0 && size > 0 && float_of_int used < 0.5 *. threshold *. float_of_int size then begin
    let len = Prefix.mask_for_count used in
    if 1 lsl (32 - len) < size then begin
      let top = sim.top_doms.(child.c_top) in
      match
        Address_space.choose_claim_placed top.t_arena ~rng:child.c_rng ~want_len:len
          ~placement:sim.p.placement
      with
      | Some prefix ->
          let fresh = child_add_claim sim child prefix in
          List.iter (fun c -> if c.alive && c != fresh then c.active <- false) child.c_claims
      | None -> ()
    end
  end

let expire_block sim child holder () =
  holder.used <- holder.used - sim.p.block_size;
  sim.demanded <- sim.demanded - sim.p.block_size;
  sim.blocks <- sim.blocks - 1;
  (* An inactive claim that just drained is recycled immediately — the
     paper's "will timeout when the currently allocated addresses
     timeout". *)
  if holder.alive && (not holder.active) && holder.used = 0 then begin
    holder.alive <- false;
    let top = sim.top_doms.(child.c_top) in
    Address_space.unregister top.t_arena holder.prefix;
    child_release sim child holder ()
  end

let rec child_request_loop sim child =
  let delay = Rng.float_in child.c_rng sim.p.request_min sim.p.request_max in
  ignore
    (Engine.schedule_after ~label:"alloc.request" sim.engine delay (fun () ->
         sim.requests <- sim.requests + 1;
         Metrics.incr m_requests;
         (match child_satisfy sim child ~attempts:3 with
         | Some holder ->
             holder.used <- holder.used + sim.p.block_size;
             sim.demanded <- sim.demanded + sim.p.block_size;
             sim.blocks <- sim.blocks + 1;
             ignore
               (Engine.schedule_after ~label:"alloc.block_expiry" sim.engine sim.p.block_lifetime
                  (fun () -> expire_block sim child holder ()))
         | None ->
             sim.failed <- sim.failed + 1;
             Metrics.incr m_failed);
         child_request_loop sim child))

(* --- invariants ------------------------------------------------------ *)

(* The guarantee MASC's collision resolution exists to provide (§4),
   checked live against the synchronous registries: no two domains hold
   overlapping live claims — tops against 224/4, and each arena's
   children among themselves. *)
let overlap_violations sim () =
  let pair_check claims acc =
    let rec go acc = function
      | [] -> acc
      | (a, (pa : Prefix.t)) :: rest ->
          let acc =
            List.fold_left
              (fun acc (b, pb) ->
                if a <> b && Prefix.overlaps pa pb then
                  ( Printf.sprintf "domains %d and %d claimed overlapping ranges %s and %s" a b
                      (Prefix.to_string pa) (Prefix.to_string pb),
                    None )
                  :: acc
                else acc)
              acc rest
          in
          go acc rest
    in
    go acc claims
  in
  let tops =
    Array.to_list sim.top_doms
    |> List.concat_map (fun top ->
           List.map (fun c -> (top.t_owner, c.prefix)) (live_claims top.t_claims))
  in
  let acc = pair_check tops [] in
  let per_top = Hashtbl.create 16 in
  Array.iter
    (fun child ->
      let entries = List.map (fun c -> (child.c_owner, c.prefix)) (live_claims child.c_claims) in
      Hashtbl.replace per_top child.c_top
        (entries @ Option.value ~default:[] (Hashtbl.find_opt per_top child.c_top)))
    sim.child_doms;
  Hashtbl.fold (fun _ claims acc -> pair_check claims acc) per_top acc

(* --- sampling ------------------------------------------------------- *)

let take_sample sim =
  let p = sim.p in
  let global_prefixes =
    Array.fold_left (fun acc top -> acc + List.length (live_claims top.t_claims)) 0 sim.top_doms
  in
  let child_prefix_total =
    Array.fold_left (fun acc c -> acc + List.length (live_claims c.c_claims)) 0 sim.child_doms
  in
  (* Per-top counts of children prefixes. *)
  let per_top = Array.make p.tops 0 in
  Array.iter
    (fun c -> per_top.(c.c_top) <- per_top.(c.c_top) + List.length (live_claims c.c_claims))
    sim.child_doms;
  let sum_grib = ref 0 and max_grib = ref 0 in
  Array.iter
    (fun top ->
      let g = global_prefixes + per_top.(top.t_owner) in
      sum_grib := !sum_grib + g;
      if g > !max_grib then max_grib := g)
    sim.top_doms;
  Array.iter
    (fun c ->
      let own = List.length (live_claims c.c_claims) in
      let g = global_prefixes + per_top.(c.c_top) - own in
      sum_grib := !sum_grib + g;
      if g > !max_grib then max_grib := g)
    sim.child_doms;
  let n_domains = p.tops + Array.length sim.child_doms in
  let utilization =
    if sim.claimed_top = 0 then 0.0 else float_of_int sim.demanded /. float_of_int sim.claimed_top
  in
  Metrics.set m_outstanding (float_of_int sim.blocks);
  Metrics.set m_utilization utilization;
  if p.check_invariants then
    sim.violations <- sim.violations + List.length (Invariant.check ~quiescent:false sim.invariants);
  {
    day = Time.to_days (Engine.now sim.engine);
    utilization;
    grib_avg = float_of_int !sum_grib /. float_of_int n_domains;
    grib_max = !max_grib;
    outstanding_blocks = sim.blocks;
    claimed_addresses = sim.claimed_top;
    demanded_addresses = sim.demanded;
    top_prefixes = global_prefixes;
    child_prefixes = child_prefix_total;
  }

let run p =
  let engine = Engine.create () in
  let rng = Rng.create p.seed in
  let global = Address_space.create () in
  Address_space.add_cover global Prefix.class_d;
  let top_doms =
    Array.init p.tops (fun i ->
        { t_owner = i; t_arena = Address_space.create (); t_claims = []; t_rng = Rng.split rng })
  in
  let children_counts =
    Array.init p.tops (fun _ ->
        let spread = if p.hetero_spread = 0 then 0 else Rng.int_in rng (-p.hetero_spread) p.hetero_spread in
        max 1 (p.children_per_top + spread))
  in
  let child_doms =
    let specs =
      Array.to_list children_counts
      |> List.mapi (fun top count -> List.init count (fun _ -> top))
      |> List.concat
    in
    Array.of_list
      (List.mapi
         (fun i top ->
           { c_owner = p.tops + i; c_top = top; c_claims = []; c_rng = Rng.split rng })
         specs)
  in
  let sim =
    {
      p;
      engine;
      global;
      top_doms;
      child_doms;
      demanded = 0;
      claimed_top = 0;
      blocks = 0;
      failed = 0;
      requests = 0;
      claims_made = 0;
      samples_rev = [];
      last_sample = None;
      right_size_top = (fun _ _ -> ());
      right_size_child = (fun _ _ -> ());
      violations = 0;
      invariants = Invariant.create ();
    }
  in
  sim.right_size_top <- right_size_top;
  sim.right_size_child <- right_size_child;
  Invariant.register sim.invariants ~name:"allocation-overlap" (overlap_violations sim);
  (* Telemetry sources read the sim's running tallies plus the latest
     figure sample, so the series ride the existing sampling cadence
     with no extra events. *)
  (match p.telemetry with
  | Some ts ->
      let of_last f = match sim.last_sample with Some s -> f s | None -> 0.0 in
      Timeseries.register ts "alloc.pending_events" (fun () ->
          float_of_int (Engine.pending engine));
      Timeseries.register ts "alloc.outstanding_blocks" (fun () -> float_of_int sim.blocks);
      Timeseries.register ts "alloc.claimed_addresses" (fun () -> float_of_int sim.claimed_top);
      Timeseries.register ts "alloc.demanded_addresses" (fun () -> float_of_int sim.demanded);
      Timeseries.register ts "alloc.utilization" (fun () -> of_last (fun s -> s.utilization));
      Timeseries.register ts "alloc.grib_avg" (fun () -> of_last (fun s -> s.grib_avg));
      Timeseries.register ts "alloc.grib_max" (fun () ->
          of_last (fun s -> float_of_int s.grib_max));
      Timeseries.register ts "alloc.top_prefixes" (fun () ->
          of_last (fun s -> float_of_int s.top_prefixes))
  | None -> ());
  Prof.span "fig2.populate" (fun () ->
      Array.iter (fun c -> child_request_loop sim c) child_doms);
  let rec sampling () =
    ignore
      (Engine.schedule_after ~label:"alloc.sample" engine p.sample_interval (fun () ->
           let s = take_sample sim in
           sim.last_sample <- Some s;
           sim.samples_rev <- s :: sim.samples_rev;
           (match p.telemetry with
           | Some ts -> Timeseries.sample ts ~time:(Time.to_seconds (Engine.now engine))
           | None -> ());
           if Engine.now engine < p.horizon then sampling ()))
  in
  sampling ();
  Prof.span "fig2.run" (fun () -> Engine.run ~until:p.horizon engine);
  Prof.span "fig2.summarize" (fun () ->
      let snapshot claims =
        List.map
          (fun c -> { h_prefix = c.prefix; h_active = c.active; h_used = c.used })
          (live_claims claims)
      in
      let top_converged_day =
        Option.value ~default:0.0
          (Option.map Time.to_days (List.assoc_opt "masc" (Engine.watermarks engine)))
      in
      Metrics.set m_converged top_converged_day;
      {
        samples = Array.of_list (List.rev sim.samples_rev);
        failed_requests = sim.failed;
        total_requests = sim.requests;
        claims_made = sim.claims_made;
        final_tops = Array.map (fun top -> snapshot top.t_claims) sim.top_doms;
        final_children = Array.map (fun c -> snapshot c.c_claims) sim.child_doms;
        invariant_violations = sim.violations;
        top_converged_day;
      })

let steady_state result ~from_day =
  Array.to_list (Array.of_seq (Seq.filter (fun s -> s.day >= from_day) (Array.to_seq result.samples)))

(* Independent full simulations fanned out over the Par pool, one task
   per parameter set.  Each run is self-contained (own engine, own
   rng), so the only cross-task state is the Obs layer — shard-local in
   each task, folded back here in input order, keeping metrics and
   profiles identical at any job count.  Telemetry params are rejected:
   a shard cannot drive a shared Jsonl sink. *)
let run_many ?jobs ps =
  List.iter
    (fun p ->
      if p.telemetry <> None then invalid_arg "Allocation_sim.run_many: telemetry not supported")
    ps;
  let outs = Par.map ?jobs (fun p -> Par.with_shard (fun () -> run p)) ps in
  List.map
    (fun (r, shard) ->
      Par.merge_shard shard;
      r)
    outs
