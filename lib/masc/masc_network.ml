type t = {
  engine : Engine.t;
  net : Net.t;
  nodes : (Domain.id, Masc_node.t) Hashtbl.t;
  node_ids : Domain.id list;
  (* MASC talks along overlay edges (parent/child, top-sibling) that
     need not be topology links; channels are created on first use per
     directed pair. *)
  channels : (Domain.id * Domain.id, Masc_message.t Net.channel) Hashtbl.t;
  delay : Time.t;
}

let message_span = function
  | Masc_message.Claim_announce { span; _ } | Masc_message.Collision_announce { span; _ } -> span
  | Masc_message.Space_advertise _ | Masc_message.Claim_release _ | Masc_message.Need_space _ ->
      None

let channel_to t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some ch -> ch
  | None ->
      let ch =
        Net.channel t.net ~protocol:"masc" ~src ~dst ~delay:t.delay ~recv:(fun msg ->
            match Hashtbl.find_opt t.nodes dst with
            | Some receiver -> Masc_node.receive receiver ~from_:src msg
            | None -> ())
      in
      Hashtbl.add t.channels (src, dst) ch;
      ch

let exchange_partition ~tops ~exchanges =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  let bits = log2 exchanges in
  if exchanges <= 0 || 1 lsl bits <> exchanges then
    invalid_arg "Masc_network.exchange_partition: exchange count must be a power of two";
  let len = Prefix.len Prefix.class_d + bits in
  let assignment = Hashtbl.create (List.length tops) in
  List.iteri
    (fun i top ->
      Hashtbl.replace assignment top (Prefix.nth_subprefix Prefix.class_d len (i mod exchanges)))
    tops;
  fun id ->
    match Hashtbl.find_opt assignment id with
    | Some p -> p
    | None -> Prefix.class_d

let create ~engine ~rng ?(config = Masc_node.default_config) ?(trace = Trace.create ())
    ?(top_space = fun _ -> Prefix.class_d) ?net ~parent_of ~ids () =
  let net = match net with Some n -> n | None -> Net.create ~engine ~trace () in
  let t =
    {
      engine;
      net;
      nodes = Hashtbl.create (List.length ids);
      node_ids = ids;
      channels = Hashtbl.create 16;
      delay = Time.seconds 0.05;
    }
  in
  (* Create nodes. *)
  List.iter
    (fun id ->
      let role =
        match parent_of id with
        | Some p -> Masc_node.Child p
        | None -> Masc_node.Top
      in
      let node =
        Masc_node.create ~id ~role ~config ~engine ~rng:(Rng.split rng) ~trace
      in
      Hashtbl.replace t.nodes id node)
    ids;
  (* Children lists, top meshes, bootstrap, transport. *)
  let tops = List.filter (fun id -> parent_of id = None) ids in
  List.iter
    (fun id ->
      let node = Hashtbl.find t.nodes id in
      let children = List.filter (fun c -> parent_of c = Some id) ids in
      Masc_node.set_children node children;
      (match Masc_node.role node with
      | Masc_node.Top ->
          Masc_node.bootstrap_top node (top_space id);
          Masc_node.set_top_siblings node (List.filter (fun s -> s <> id) tops)
      | Masc_node.Child _ -> ());
      Masc_node.set_transport node (fun ~dst msg ->
          Net.send (channel_to t ~src:id ~dst) ?span:(message_span msg) msg))
    ids;
  t

let of_topo ~engine ~rng ?config ?trace ?net topo =
  let parent_of id =
    match Topo.providers_of topo id with
    | [] -> None
    | p :: _ -> Some p
  in
  let ids = List.map (fun d -> d.Domain.id) (Topo.domains topo) in
  create ~engine ~rng ?config ?trace ?net ~parent_of ~ids ()

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> raise Not_found

let ids t = t.node_ids

let start t =
  (* Tops first so their space advertisements precede child activity. *)
  let tops, rest =
    List.partition (fun id -> Masc_node.role (node t id) = Masc_node.Top) t.node_ids
  in
  List.iter (fun id -> Masc_node.start (node t id)) tops;
  List.iter (fun id -> Masc_node.start (node t id)) rest

let reparent t ~child ~new_parent =
  let child_node = node t child in
  let parent_node =
    match Hashtbl.find_opt t.nodes new_parent with
    | Some n -> n
    | None -> invalid_arg "Masc_network.reparent: unknown parent"
  in
  (match Masc_node.role child_node with
  | Masc_node.Top -> invalid_arg "Masc_network.reparent: child is top-level"
  | Masc_node.Child old_parent -> (
      match Hashtbl.find_opt t.nodes old_parent with
      | Some old_node ->
          Masc_node.set_children old_node
            (List.filter
               (fun c -> c <> child)
               (List.filter_map
                  (fun id ->
                    match Masc_node.role (node t id) with
                    | Masc_node.Child p when p = old_parent -> Some id
                    | Masc_node.Child _ | Masc_node.Top -> None)
                  t.node_ids))
      | None -> ()));
  Masc_node.reparent child_node ~new_parent;
  let siblings =
    List.filter_map
      (fun id ->
        match Masc_node.role (node t id) with
        | Masc_node.Child p when p = new_parent -> Some id
        | Masc_node.Child _ | Masc_node.Top -> None)
      t.node_ids
  in
  Masc_node.set_children parent_node siblings;
  Masc_node.start parent_node;
  (* Push the new parent's space to all its children (including the
     newcomer) right away — over the transport, like any other
     advertisement. *)
  Net.send
    (channel_to t ~src:new_parent ~dst:child)
    (Masc_message.Space_advertise (Address_space.covers (Masc_node.children_view parent_node)))

let net t = t.net

let partition t a b = Net.fail_link t.net a b

let heal t a b = Net.restore_link t.net a b

let messages_sent t = Net.sent t.net ~protocol:"masc"

let messages_dropped t = Net.dropped t.net ~protocol:"masc"

let total_collisions t =
  List.fold_left (fun acc id -> acc + Masc_node.collisions_suffered (node t id)) 0 t.node_ids
