let m_claims = Metrics.counter "masc.claims"

let m_collisions = Metrics.counter "masc.collisions"

let m_reclaims = Metrics.counter "masc.reclaims"

(* How long a MAAS-side space request waits before the claim machinery
   satisfies it (0 when existing space suffices immediately). *)
let m_request_wait =
  Metrics.histogram "masc.request_wait_s"
    ~limits:[| 0.0; Time.hours 1.0; Time.hours 12.0; Time.days 1.0; Time.days 2.0; Time.days 7.0 |]

type config = {
  claim_wait : Time.t;
  claim_lifetime : Time.t;
  renew_margin : Time.t;
  policy : Claim_policy.params;
  child_expand_headroom : float;
}

let default_config =
  {
    claim_wait = Time.hours 48.0;
    claim_lifetime = Time.days 30.0;
    renew_margin = Time.hours 24.0;
    policy = Claim_policy.default_params;
    child_expand_headroom = Claim_policy.default_params.Claim_policy.threshold;
  }

type role = Top | Child of Domain.id

type claim_state = Waiting | Acquired

type arena_kind = Up | Down

type own_claim = {
  claim_arena : arena_kind;
  claim_prefix : Prefix.t;
  mutable claim_lifetime_end : Time.t;
  mutable claim_state : claim_state;
  mutable claim_active : bool;
  claim_span : Span.t;  (** root of this claim's causal chain *)
}

(* Extra per-claim protocol state kept private to the implementation. *)
type claim_ctl = {
  claim : own_claim;
  mutable absorbing : Prefix.t option;  (** old prefix this claim doubles *)
  mutable consolidating : bool;
  mutable wait_timer : Engine.handle option;
  mutable renew_timer : Engine.handle option;
}

type foreign_claim = { f_owner : Domain.id; mutable f_expiry : Time.t }

type t = {
  self : Domain.id;
  mutable node_role : role;
  config : config;
  engine : Engine.t;
  rng : Rng.t;
  trace : Trace.t;
  mutable transport : dst:Domain.id -> Masc_message.t -> unit;
  mutable children : Domain.id list;
  mutable top_siblings : Domain.id list;
  up_space : Address_space.t;
  down_space : Address_space.t;
  up_foreign : (Prefix.t, foreign_claim) Hashtbl.t;
  down_foreign : (Prefix.t, foreign_claim) Hashtbl.t;
  mutable own : claim_ctl list;
  assigned_tbl : (Prefix.t, int) Hashtbl.t;
  mutable pending : (int * Time.t) list;
      (** outstanding MAAS needs: (address count, time enqueued) *)
  mutable child_needs : int list;
      (** children's unsatisfied space requests, retried as our own
          space grows (multi-level hierarchies: the grandparent's grant
          arrives after the child asked) *)
  mutable on_acquired : (Prefix.t -> lifetime_end:Time.t -> span:Span.t -> unit) list;
  mutable on_replaced : (old_prefix:Prefix.t -> by:Prefix.t -> unit) list;
  mutable on_lost : (Prefix.t -> unit) list;
  mutable on_space_changed : (unit -> unit) list;
  mutable collisions_suffered : int;
  mutable claims_made : int;
  mutable started : bool;
}

let create ~id ~role ~config ~engine ~rng ~trace =
  {
    self = id;
    node_role = role;
    config;
    engine;
    rng;
    trace;
    transport = (fun ~dst:_ _ -> ());
    children = [];
    top_siblings = [];
    up_space = Address_space.create ();
    down_space = Address_space.create ();
    up_foreign = Hashtbl.create 16;
    down_foreign = Hashtbl.create 16;
    own = [];
    assigned_tbl = Hashtbl.create 8;
    pending = [];
    child_needs = [];
    on_acquired = [];
    on_replaced = [];
    on_lost = [];
    on_space_changed = [];
    collisions_suffered = 0;
    claims_made = 0;
    started = false;
  }

let id t = t.self

let role t = t.node_role

let set_transport t f = t.transport <- f

let set_children t children = t.children <- children

let set_top_siblings t sibs = t.top_siblings <- sibs

let add_on_acquired t f = t.on_acquired <- t.on_acquired @ [ f ]

let add_on_replaced t f = t.on_replaced <- t.on_replaced @ [ f ]

let add_on_lost t f = t.on_lost <- t.on_lost @ [ f ]

let add_on_space_changed t f = t.on_space_changed <- t.on_space_changed @ [ f ]

let bootstrap_top t prefix = Address_space.add_cover t.up_space prefix

let has_children t = t.children <> []

let arena_space t = function Up -> t.up_space | Down -> t.down_space

let foreign_tbl t = function Up -> t.up_foreign | Down -> t.down_foreign

(* The arena a local MAAS draws from: leaf domains use their MASC
   allocation directly; transit domains reserve self ranges against
   their children. *)
let maas_arena t = if has_children t then Down else Up

let own_in t arena = List.filter (fun c -> c.claim.claim_arena = arena) t.own

let trace t tag ?span fmt =
  Format.kasprintf
    (fun detail ->
      Trace.record t.trace ~time:(Engine.now t.engine)
        ~actor:(Printf.sprintf "masc-%d" t.self) ~tag ?span detail)
    fmt

let send t dst msg = t.transport ~dst msg

let announce_targets t = function
  | Up -> ( match t.node_role with Child parent -> [ parent ] | Top -> t.top_siblings)
  | Down -> t.children

let assigned_in t prefix = Option.value ~default:0 (Hashtbl.find_opt t.assigned_tbl prefix)

(* Addresses in use inside one of our claims: MAAS assignments, plus (for
   Up claims of a transit domain) everything the children have claimed
   out of it. *)
let used_in t c =
  let direct = assigned_in t c.claim.claim_prefix in
  match c.claim.claim_arena with
  | Down -> direct
  | Up ->
      if has_children t then
        direct
        + List.fold_left
            (fun acc (p, _) ->
              if Prefix.subsumes c.claim.claim_prefix p then acc + Prefix.size p else acc)
            0
            (Address_space.claims t.down_space)
      else direct

let policy_claims t arena =
  List.map
    (fun c ->
      {
        Claim_policy.prefix = c.claim.claim_prefix;
        active = c.claim.claim_active && c.claim.claim_state = Acquired;
        used = used_in t c;
      })
    (own_in t arena)

let acquired_ranges t =
  List.rev
    (List.filter_map
       (fun c ->
         if c.claim.claim_arena = maas_arena t && c.claim.claim_state = Acquired then
           Some c.claim
         else None)
       t.own)

let bgp_ranges t =
  List.rev
    (List.filter_map
       (fun c ->
         if c.claim.claim_arena = Up && c.claim.claim_state = Acquired then Some c.claim
         else None)
       t.own)

let all_claims t = List.rev_map (fun c -> c.claim) t.own

let space_view t = t.up_space

let children_view t = t.down_space

let pending_requests t = List.length t.pending

let collisions_suffered t = t.collisions_suffered

let claims_made t = t.claims_made

let advertise_space_to_children t =
  if has_children t then begin
    let covers = Address_space.covers t.down_space in
    List.iter (fun child -> send t child (Masc_message.Space_advertise covers)) t.children
  end

let refresh_down_covers t =
  if has_children t then begin
    List.iter (Address_space.remove_cover t.down_space) (Address_space.covers t.down_space);
    List.iter
      (fun c ->
        if c.claim.claim_arena = Up && c.claim.claim_state = Acquired then
          Address_space.add_cover t.down_space c.claim.claim_prefix)
      t.own;
    advertise_space_to_children t
  end

let signal_space_changed t =
  ignore
    (Engine.schedule_after ~label:"masc.space_changed" t.engine Time.zero (fun () ->
         List.iter (fun f -> f ()) t.on_space_changed))

(* ------------------------------------------------------------------ *)
(* Claim lifecycle                                                     *)
(* ------------------------------------------------------------------ *)

let remove_own t ctl ~release ~lost =
  (match ctl.wait_timer with Some h -> Engine.cancel h | None -> ());
  (match ctl.renew_timer with Some h -> Engine.cancel h | None -> ());
  (* The registry slot for this prefix may already have been handed to a
     collision winner; only drop it when it is still ours. *)
  (let space = arena_space t ctl.claim.claim_arena in
   match Address_space.owner_of space ctl.claim.claim_prefix with
   | Some owner when owner = t.self -> Address_space.unregister space ctl.claim.claim_prefix
   | Some _ | None -> ());
  t.own <- List.filter (fun c -> c != ctl) t.own;
  if release then
    List.iter
      (fun dst ->
        send t dst
          (Masc_message.Claim_release { owner = t.self; prefix = ctl.claim.claim_prefix }))
      (announce_targets t ctl.claim.claim_arena);
  if lost && ctl.claim.claim_state = Acquired then begin
    if ctl.claim.claim_arena = Up then begin
      List.iter (fun f -> f ctl.claim.claim_prefix) t.on_lost;
      refresh_down_covers t
    end;
    signal_space_changed t
  end

let announce_claim t ctl =
  List.iter
    (fun dst ->
      send t dst
        (Masc_message.Claim_announce
           {
             owner = t.self;
             prefix = ctl.claim.claim_prefix;
             lifetime_end = ctl.claim.claim_lifetime_end;
             span = Some ctl.claim.claim_span;
           }))
    (announce_targets t ctl.claim.claim_arena)

let rec schedule_renewal t ctl =
  let at = max (Engine.now t.engine) (ctl.claim.claim_lifetime_end -. t.config.renew_margin) in
  ctl.renew_timer <-
    Some (Engine.schedule_at ~label:"masc.renew" t.engine at (fun () -> renewal_decision t ctl))

and renewal_decision t ctl =
  if List.memq ctl t.own then begin
    (* A claim may only be renewed while it still lies inside the space
       it was drawn from (§4.3.1: a child's lifetime is bounded by the
       parent's range) — after a reparent or a parent consolidation the
       claim drains instead. *)
    let inside_covers =
      List.exists
        (fun cover -> Prefix.subsumes cover ctl.claim.claim_prefix)
        (Address_space.covers (arena_space t ctl.claim.claim_arena))
    in
    let still_needed =
      inside_covers && (used_in t ctl > 0 || (ctl.claim.claim_active && t.pending <> []))
    in
    if still_needed then begin
      ctl.claim.claim_lifetime_end <- Engine.now t.engine +. t.config.claim_lifetime;
      trace t "renew" "%a until %a" Prefix.pp ctl.claim.claim_prefix Time.pp
        ctl.claim.claim_lifetime_end;
      announce_claim t ctl;
      schedule_renewal t ctl
    end
    else begin
      (* Let the claim lapse at its lifetime end. *)
      let expiry = ctl.claim.claim_lifetime_end in
      ctl.claim.claim_active <- false;
      ctl.renew_timer <-
        Some
          (Engine.schedule_at ~label:"masc.expire" t.engine (max expiry (Engine.now t.engine))
             (fun () ->
               if List.memq ctl t.own && used_in t ctl = 0 then begin
                 trace t "expire" "%a" Prefix.pp ctl.claim.claim_prefix;
                 remove_own t ctl ~release:true ~lost:true
               end
               else if List.memq ctl t.own then begin
                 if
                   List.exists
                     (fun cover -> Prefix.subsumes cover ctl.claim.claim_prefix)
                     (Address_space.covers (arena_space t ctl.claim.claim_arena))
                 then begin
                   (* Usage reappeared before expiry: renew after all. *)
                   ctl.claim.claim_lifetime_end <- Engine.now t.engine +. t.config.claim_lifetime;
                   announce_claim t ctl;
                   schedule_renewal t ctl
                 end
                 else
                   (* Still draining outside the covers: check again in a
                      lifetime; release happens once usage hits zero. *)
                   schedule_renewal t ctl
               end))
    end
  end

let rec finish_wait t ctl =
  if List.memq ctl t.own && ctl.claim.claim_state = Waiting then begin
    ctl.claim.claim_state <- Acquired;
    let acquired_span = Span.child ctl.claim.claim_span in
    trace t "acquired" ~span:acquired_span "%a" Prefix.pp ctl.claim.claim_prefix;
    Engine.note_activity t.engine "masc";
    (* A doubling claim absorbs the prefix it grew from. *)
    (match ctl.absorbing with
    | Some old_prefix -> (
        match
          List.find_opt
            (fun c ->
              Prefix.equal c.claim.claim_prefix old_prefix
              && c.claim.claim_arena = ctl.claim.claim_arena)
            t.own
        with
        | Some old_ctl ->
            let moved = assigned_in t old_prefix in
            if moved > 0 then begin
              Hashtbl.remove t.assigned_tbl old_prefix;
              Hashtbl.replace t.assigned_tbl ctl.claim.claim_prefix
                (assigned_in t ctl.claim.claim_prefix + moved)
            end;
            remove_own t old_ctl ~release:true ~lost:false;
            if ctl.claim.claim_arena = Up || old_ctl.claim.claim_arena = ctl.claim.claim_arena
            then
              List.iter
                (fun f -> f ~old_prefix ~by:ctl.claim.claim_prefix)
                t.on_replaced
        | None -> ())
    | None -> ());
    if ctl.consolidating then
      List.iter
        (fun c ->
          if c != ctl && c.claim.claim_arena = ctl.claim.claim_arena then
            c.claim.claim_active <- false)
        t.own;
    if ctl.claim.claim_arena = Up then begin
      List.iter
        (fun f ->
          f ctl.claim.claim_prefix ~lifetime_end:ctl.claim.claim_lifetime_end
            ~span:acquired_span)
        t.on_acquired;
      refresh_down_covers t
    end;
    schedule_renewal t ctl;
    signal_space_changed t;
    process_pending t
  end

and start_claim t arena ~want_len ?(absorbing = None) ?(consolidating = false) () =
  let space = arena_space t arena in
  let candidate =
    match absorbing with
    | Some p -> if Address_space.can_double space p then Some (Prefix.double p) else None
    | None -> Address_space.choose_claim space ~rng:t.rng ~want_len
  in
  match candidate with
  | None -> false
  | Some prefix ->
      (* Doubling registers a prefix that covers our own old claim; the
         arena allows overlapping registrations, and same-owner overlap
         is not a collision. *)
      (match Address_space.owner_of space prefix with
      | Some _ -> Address_space.unregister space prefix
      | None -> ());
      Address_space.register space ~owner:t.self prefix;
      let claim_span = Span.root (Span.claim_id ~owner:t.self (Prefix.to_string prefix)) in
      let claim =
        {
          claim_arena = arena;
          claim_prefix = prefix;
          claim_lifetime_end = Engine.now t.engine +. t.config.claim_lifetime;
          claim_state = Waiting;
          claim_active = true;
          claim_span;
        }
      in
      let ctl = { claim; absorbing; consolidating; wait_timer = None; renew_timer = None } in
      t.own <- ctl :: t.own;
      t.claims_made <- t.claims_made + 1;
      Metrics.incr m_claims;
      Engine.note_activity t.engine "masc";
      trace t "claim" ~span:claim_span "%a (%s)" Prefix.pp prefix
        (match (absorbing, consolidating) with
        | Some _, _ -> "double"
        | None, true -> "consolidate"
        | None, false -> "new");
      announce_claim t ctl;
      ctl.wait_timer <-
        Some
          (Engine.schedule_after ~label:"masc.claim_wait" t.engine t.config.claim_wait (fun () ->
               finish_wait t ctl));
      true

and escalate_up t ~need =
  match t.node_role with
  | Child parent ->
      trace t "need-space" "%d addresses" need;
      send t parent (Masc_message.Need_space need)
  | Top -> trace t "blocked" "224/4 exhausted for need %d" need

(* Apply the §4.3.3 policy for [need] addresses in [arena]; returns true
   when the demand is already satisfiable from existing space. *)
and try_grow t arena ~need =
  let growth_in_flight =
    List.exists
      (fun c -> c.claim.claim_arena = arena && c.claim.claim_state = Waiting)
      t.own
  in
  if growth_in_flight then false
  else begin
    let decision =
      Claim_policy.decide ~params:t.config.policy ~space:(arena_space t arena)
        ~claims:(policy_claims t arena) ~need
    in
    match decision with
    | Claim_policy.Assign _ -> true
    | Claim_policy.Double p ->
        if not (start_claim t arena ~want_len:(Prefix.len p - 1) ~absorbing:(Some p) ()) then
          grow_or_escalate t arena ~need ~want_len:(Prefix.mask_for_count need);
        false
    | Claim_policy.Claim_new len ->
        grow_or_escalate t arena ~need ~want_len:len;
        false
    | Claim_policy.Consolidate len ->
        if not (start_claim t arena ~want_len:len ~consolidating:true ()) then
          grow_or_escalate t arena ~need ~want_len:(Prefix.mask_for_count need);
        false
    | Claim_policy.Blocked ->
        grow_or_escalate t arena ~need ~want_len:(Prefix.mask_for_count need);
        false
  end

and grow_or_escalate t arena ~need ~want_len =
  if not (start_claim t arena ~want_len ()) then begin
    match arena with
    | Up -> escalate_up t ~need
    | Down ->
        (* Our own space is full: grow the Up arena, which on acquisition
           refreshes the Down covers and retries pending work. *)
        ignore (try_grow t Up ~need)
  end

and process_pending t =
  let arena = maas_arena t in
  let now = Engine.now t.engine in
  let still_pending =
    List.filter
      (fun (need, since) ->
        if try_grow t arena ~need then begin
          Metrics.observe m_request_wait (now -. since);
          false
        end
        else true)
      t.pending
  in
  let satisfied = List.length t.pending - List.length still_pending in
  t.pending <- still_pending;
  if satisfied > 0 then signal_space_changed t;
  retry_child_needs t

(* Children whose Need_space we could not satisfy yet: drop each once
   our space offers that much room, otherwise keep pushing our own
   growth. *)
and retry_child_needs t =
  if t.child_needs <> [] then
    t.child_needs <-
      List.filter
        (fun need ->
          if Address_space.free_addresses t.down_space >= need then false
          else begin
            ignore (try_grow t Up ~need);
            true
          end)
        t.child_needs

let request_space t ~need =
  if need <= 0 then invalid_arg "Masc_node.request_space: non-positive need";
  if try_grow t (maas_arena t) ~need then begin
    Metrics.observe m_request_wait 0.0;
    signal_space_changed t
  end
  else t.pending <- t.pending @ [ (need, Engine.now t.engine) ]

let note_assigned t prefix n =
  Hashtbl.replace t.assigned_tbl prefix (max 0 (assigned_in t prefix + n))

(* ------------------------------------------------------------------ *)
(* Parent-side behaviour                                               *)
(* ------------------------------------------------------------------ *)

(* Expand our own (Up) space when the children's claims crowd it. *)
let check_children_pressure t =
  if has_children t then begin
    let total = Address_space.total_addresses t.down_space in
    let used =
      List.fold_left (fun acc (p, _) -> acc + Prefix.size p) 0 (Address_space.claims t.down_space)
    in
    if total = 0 then ignore (try_grow t Up ~need:256)
    else begin
      let headroom = t.config.child_expand_headroom in
      if float_of_int used > headroom *. float_of_int total then begin
        let target = int_of_float (ceil (float_of_int used /. headroom)) in
        let need = max 256 (target - total) in
        ignore (try_grow t Up ~need)
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Collision machinery                                                 *)
(* ------------------------------------------------------------------ *)

let send_collision t ~arena ~victim ~victim_prefix ~winner_prefix ~span =
  let route =
    match arena with
    | Down -> [ victim ]  (* our child: direct *)
    | Up -> (
        match t.node_role with
        | Top -> [ victim ]
        | Child parent -> [ parent ]  (* the parent relays to the sibling *))
  in
  List.iter
    (fun dst ->
      send t dst
        (Masc_message.Collision_announce
           { victim; victim_prefix; winner = t.self; winner_prefix; span }))
    route

let register_foreign t arena ~owner ~prefix ~lifetime_end =
  let space = arena_space t arena in
  let tbl = foreign_tbl t arena in
  (match Address_space.owner_of space prefix with
  | Some existing when existing <> owner ->
      (* Exact-prefix conflict between two other domains: keep the
         deterministic winner (lower id) in our view. *)
      if owner < existing then begin
        Address_space.unregister space prefix;
        Address_space.register space ~owner prefix;
        Hashtbl.replace tbl prefix { f_owner = owner; f_expiry = lifetime_end }
      end
  | Some _ -> Hashtbl.replace tbl prefix { f_owner = owner; f_expiry = lifetime_end }
  | None ->
      Address_space.register space ~owner prefix;
      Hashtbl.replace tbl prefix { f_owner = owner; f_expiry = lifetime_end })

let unregister_foreign t arena prefix =
  Address_space.unregister (arena_space t arena) prefix;
  Hashtbl.remove (foreign_tbl t arena) prefix

(* Another domain claimed [prefix]; fight for any of our overlapping
   claims in that arena.  Returns [(foreign_wins, losers)]: whether the
   foreign claim survived every duel, and which of our own claims lost.
   Losers are NOT yet removed — the caller registers the winning foreign
   claim first so that re-claims cannot pick the contested range again. *)
let duel_own_claims t arena ~owner ~prefix =
  let overlapping =
    List.filter (fun c -> Prefix.overlaps c.claim.claim_prefix prefix) (own_in t arena)
  in
  List.fold_left
    (fun (foreign_wins, losers) ctl ->
      let we_win =
        match ctl.claim.claim_state with
        | Acquired -> true  (* established use beats a fresh claim (§4.1) *)
        | Waiting -> t.self < owner
      in
      if we_win then begin
        (* The collision continues the WINNING claim's chain, so the
           surviving allocation's timeline contains the duel. *)
        let cspan = Span.child ctl.claim.claim_span in
        trace t "collision-sent" ~span:cspan "%a of %d loses to our %a" Prefix.pp prefix owner
          Prefix.pp ctl.claim.claim_prefix;
        send_collision t ~arena ~victim:owner ~victim_prefix:prefix
          ~winner_prefix:ctl.claim.claim_prefix ~span:(Some cspan);
        (false, losers)
      end
      else (foreign_wins, ctl :: losers))
    (true, []) overlapping

let handle_claim_announce_impl t arena ~owner ~prefix ~lifetime_end ~span =
  if owner = t.self then ()
  else begin
    (* Parent validation: a child claim outside our space is rejected
       with an explicit collision (§4.4). *)
    let out_of_space =
      arena = Down
      && not
           (List.exists
              (fun cover -> Prefix.subsumes cover prefix)
              (Address_space.covers t.down_space))
    in
    if out_of_space then
      (* No winning claim exists; the rejection stays on the claimant's
         own chain. *)
      send_collision t ~arena ~victim:owner ~victim_prefix:prefix
        ~winner_prefix:(Prefix.make (Prefix.base prefix) (Prefix.len prefix))
        ~span:(Option.map Span.child span)
    else begin
      let foreign_wins, losers = duel_own_claims t arena ~owner ~prefix in
      if foreign_wins then begin
        register_foreign t arena ~owner ~prefix ~lifetime_end;
        (* Now that the winner occupies the range in our view, yield our
           losing claims and pick replacements elsewhere. *)
        List.iter
          (fun ctl ->
            t.collisions_suffered <- t.collisions_suffered + 1;
            Metrics.incr m_collisions;
            Engine.note_activity t.engine "masc";
            trace t "collision-lost"
              ?span:(Option.map Span.child span)
              "our %a loses to %a of %d" Prefix.pp ctl.claim.claim_prefix Prefix.pp prefix owner;
            let want_len = Prefix.len ctl.claim.claim_prefix in
            remove_own t ctl ~release:false ~lost:true;
            Metrics.incr m_reclaims;
            if not (start_claim t arena ~want_len ()) then
              grow_or_escalate t arena ~need:(Prefix.size ctl.claim.claim_prefix)
                ~want_len)
          losers;
        if arena = Down then begin
          (* Relay the sibling claim to our other children and react to
             the extra pressure on our space. *)
          List.iter
            (fun child ->
              if child <> owner then
                send t child (Masc_message.Claim_announce { owner; prefix; lifetime_end; span }))
            t.children;
          check_children_pressure t
        end
      end
    end
  end

let handle_claim_announce t arena ~owner ~prefix ~lifetime_end ~span =
  if Prof.is_enabled () then
    Prof.span "masc.claim_announce" (fun () ->
        handle_claim_announce_impl t arena ~owner ~prefix ~lifetime_end ~span)
  else handle_claim_announce_impl t arena ~owner ~prefix ~lifetime_end ~span

let handle_collision_impl t ~victim ~victim_prefix ~winner ~winner_prefix ~span =
  if victim = t.self then begin
    match
      List.find_opt (fun c -> Prefix.equal c.claim.claim_prefix victim_prefix) t.own
    with
    | None -> ()  (* already given up *)
    | Some ctl ->
        let yield =
          match ctl.claim.claim_state with
          | Waiting -> true
          | Acquired -> t.self > winner  (* post-partition tie-break *)
        in
        if yield then begin
          t.collisions_suffered <- t.collisions_suffered + 1;
          Metrics.incr m_collisions;
          Engine.note_activity t.engine "masc";
          trace t "collision-yield"
            ?span:(Option.map Span.child span)
            "%a to %d's %a" Prefix.pp victim_prefix winner Prefix.pp winner_prefix;
          let arena = ctl.claim.claim_arena in
          let want_len = Prefix.len ctl.claim.claim_prefix in
          remove_own t ctl ~release:false ~lost:true;
          Metrics.incr m_reclaims;
          (* Record the winner's range before re-selecting so the
             replacement cannot land on the contested space again. *)
          (match Address_space.owner_of (arena_space t arena) winner_prefix with
          | Some _ -> ()
          | None ->
              register_foreign t arena ~owner:winner ~prefix:winner_prefix
                ~lifetime_end:(Engine.now t.engine +. t.config.claim_lifetime));
          if not (start_claim t arena ~want_len ()) then
            grow_or_escalate t arena ~need:(Prefix.size victim_prefix) ~want_len
        end
  end
  else if List.mem victim t.children then
    (* Relay a collision announcement toward our child. *)
    send t victim
      (Masc_message.Collision_announce { victim; victim_prefix; winner; winner_prefix; span })

let handle_collision t ~victim ~victim_prefix ~winner ~winner_prefix ~span =
  if Prof.is_enabled () then
    Prof.span "masc.collision" (fun () ->
        handle_collision_impl t ~victim ~victim_prefix ~winner ~winner_prefix ~span)
  else handle_collision_impl t ~victim ~victim_prefix ~winner ~winner_prefix ~span

let receive t ~from_ msg =
  let arena_of_sender () = if List.mem from_ t.children then Down else Up in
  match msg with
  | Masc_message.Space_advertise ranges ->
      List.iter (Address_space.remove_cover t.up_space) (Address_space.covers t.up_space);
      List.iter (Address_space.add_cover t.up_space) ranges;
      trace t "space" "parent space now [%s]"
        (String.concat " " (List.map Prefix.to_string ranges));
      process_pending t
  | Masc_message.Claim_announce { owner; prefix; lifetime_end; span } ->
      handle_claim_announce t (arena_of_sender ()) ~owner ~prefix ~lifetime_end ~span
  | Masc_message.Claim_release { owner; prefix } ->
      let arena = arena_of_sender () in
      (match Address_space.owner_of (arena_space t arena) prefix with
      | Some o when o = owner -> unregister_foreign t arena prefix
      | Some _ | None -> ());
      if arena = Down then
        List.iter
          (fun child ->
            if child <> owner then send t child (Masc_message.Claim_release { owner; prefix }))
          t.children;
      process_pending t
  | Masc_message.Collision_announce { victim; victim_prefix; winner; winner_prefix; span } ->
      handle_collision t ~victim ~victim_prefix ~winner ~winner_prefix ~span
  | Masc_message.Need_space need ->
      if List.mem from_ t.children then begin
        trace t "child-needs" "%d addresses for %d" need from_;
        let total = Address_space.total_addresses t.down_space in
        let used =
          List.fold_left
            (fun acc (p, _) -> acc + Prefix.size p)
            0
            (Address_space.claims t.down_space)
        in
        let need_up = max need (used + need - (total - used)) in
        if not (List.mem need t.child_needs) then t.child_needs <- t.child_needs @ [ need ];
        ignore (try_grow t Up ~need:(max 256 need_up));
        retry_child_needs t
      end

let reparent t ~new_parent =
  match t.node_role with
  | Top -> invalid_arg "Masc_node.reparent: top-level node has no parent"
  | Child old_parent ->
      if old_parent <> new_parent then begin
        trace t "reparent" "%d -> %d" old_parent new_parent;
        t.node_role <- Child new_parent;
        (* Forget the old parent's space and sibling registry; the new
           parent's Space_advertise repopulates the covers and its relays
           repopulate the registry. *)
        List.iter (Address_space.remove_cover t.up_space) (Address_space.covers t.up_space);
        Hashtbl.iter (fun p _ -> Address_space.unregister t.up_space p) t.up_foreign;
        Hashtbl.reset t.up_foreign;
        (* Deactivate own Up claims: they lie in the old parent's space;
           the renewal gate drains them. *)
        List.iter
          (fun c -> if c.claim.claim_arena = Up then c.claim.claim_active <- false)
          t.own;
        (* Ask the new parent for its space and for room to restart. *)
        send t new_parent (Masc_message.Need_space 256)
      end

(* Housekeeping: purge expired foreign claims so their space becomes
   claimable again. *)
let sweep t =
  let now = Engine.now t.engine in
  let purge arena tbl =
    let dead = Hashtbl.fold (fun p fc acc -> if fc.f_expiry <= now then p :: acc else acc) tbl [] in
    List.iter (fun p -> unregister_foreign t arena p) dead;
    dead <> []
  in
  let changed_up = purge Up t.up_foreign in
  let changed_down = purge Down t.down_foreign in
  if changed_up || changed_down then process_pending t

let start t =
  if not t.started then begin
    t.started <- true;
    refresh_down_covers t;
    advertise_space_to_children t;
    let interval = max (Time.hours 1.0) (t.config.claim_lifetime /. 10.0) in
    ignore (Engine.periodic ~label:"masc.sweep" t.engine ~interval (fun () -> sweep t))
  end
