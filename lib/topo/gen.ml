let power_law ~rng ~n ~m =
  if m < 1 || n <= m then invalid_arg "Gen.power_law: need n > m >= 1";
  let topo = Topo.create () in
  (* Names are assigned up front; kinds are refined after the degree
     distribution is known, so domains are created as Stub and the final
     kinds are exposed through a rebuilt topology. *)
  let ids = Array.init n (fun i -> Topo.add_domain topo ~name:(Printf.sprintf "d%d" i) ~kind:Domain.Stub) in
  ignore ids;
  (* Seed clique over the first m+1 nodes. *)
  for i = 0 to m do
    for j = i + 1 to m do
      Topo.add_link topo i j Topo.Provider_customer
    done
  done;
  (* Repeated-endpoint pool: picking a uniform element is
     degree-proportional attachment.  One preallocated array appended at
     the tail replaces the historical cons-list + per-node
     [Array.of_list] rebuild (which alone was most of a large graph's
     allocation).  Historical draws indexed the list FRONT, so the pick
     reads [len - 1 - k] and every [x :: y :: rest] cons becomes
     "append y, then x" — the draw sequence, and thus every golden, is
     unchanged. *)
  let cap = 2 * ((((m + 1) * m) / 2) + (max 0 (n - m - 1) * m)) in
  let ep = Array.make (max 1 cap) 0 in
  let len = ref 0 in
  let append u =
    ep.(!len) <- u;
    incr len
  in
  for i = 0 to m do
    for j = i + 1 to m do
      append j;
      append i
    done
  done;
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    let tries = ref 0 in
    while Hashtbl.length chosen < m && !tries < 50 * m do
      incr tries;
      let u = ep.(!len - 1 - Rng.int rng !len) in
      if u <> v && not (Hashtbl.mem chosen u) then Hashtbl.add chosen u ()
    done;
    (* Fallback for pathological draws: attach to lowest-id nodes not yet
       chosen (keeps the graph connected deterministically). *)
    let u = ref 0 in
    while Hashtbl.length chosen < m do
      if !u <> v && not (Hashtbl.mem chosen !u) then Hashtbl.add chosen !u ();
      incr u
    done;
    Hashtbl.iter
      (fun u () ->
        Topo.add_link topo u v Topo.Provider_customer;
        append v;
        append u)
      chosen
  done;
  (* Rebuild with kinds derived from final degrees. *)
  let final = Topo.create () in
  for i = 0 to n - 1 do
    let deg = Topo.degree topo i in
    let kind =
      if i <= m then Domain.Backbone
      else if deg > 1 then Domain.Regional
      else Domain.Stub
    in
    ignore (Topo.add_domain final ~name:(Printf.sprintf "d%d" i) ~kind)
  done;
  List.iter (fun l -> Topo.add_link final l.Topo.a l.Topo.b l.Topo.rel) (Topo.links topo);
  final

let transit_stub ~rng ~backbones ~regionals_per_backbone ~stubs_per_regional =
  if backbones < 1 then invalid_arg "Gen.transit_stub: need at least one backbone";
  let topo = Topo.create () in
  let bb =
    Array.init backbones (fun i ->
        Topo.add_domain topo ~name:(Printf.sprintf "bb%d" i) ~kind:Domain.Backbone)
  in
  Array.iteri
    (fun i a -> Array.iteri (fun j b -> if i < j then Topo.add_link topo a b Topo.Peer) bb)
    bb;
  let regionals = ref [] in
  Array.iteri
    (fun i b ->
      for r = 0 to regionals_per_backbone - 1 do
        let rid =
          Topo.add_domain topo ~name:(Printf.sprintf "r%d_%d" i r) ~kind:Domain.Regional
        in
        Topo.add_link topo b rid Topo.Provider_customer;
        regionals := rid :: !regionals;
        for s = 0 to stubs_per_regional - 1 do
          let sid =
            Topo.add_domain topo ~name:(Printf.sprintf "s%d_%d_%d" i r s) ~kind:Domain.Stub
          in
          Topo.add_link topo rid sid Topo.Provider_customer
        done
      done)
    bb;
  (* Sprinkle peer links between regionals: one per four regionals. *)
  let regs = Array.of_list !regionals in
  let extra = Array.length regs / 4 in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < 100 * (extra + 1) do
    incr attempts;
    let a = Rng.pick rng regs and b = Rng.pick rng regs in
    if a <> b && Topo.link_between topo a b = None then begin
      Topo.add_link topo a b Topo.Peer;
      incr added
    end
  done;
  topo

let masc_hierarchy ~tops ~children_per_top =
  let topo = Topo.create () in
  let top_ids =
    Array.init tops (fun i ->
        Topo.add_domain topo ~name:(Printf.sprintf "top%d" i) ~kind:Domain.Backbone)
  in
  Array.iteri
    (fun i a ->
      Array.iteri (fun j b -> if i < j then Topo.add_link topo a b Topo.Peer) top_ids)
    top_ids;
  Array.iteri
    (fun i t ->
      for c = 0 to children_per_top - 1 do
        let cid =
          Topo.add_domain topo ~name:(Printf.sprintf "c%d_%d" i c) ~kind:Domain.Stub
        in
        Topo.add_link topo t cid Topo.Provider_customer
      done)
    top_ids;
  topo

let figure1 () =
  let topo = Topo.create () in
  let add name kind = Topo.add_domain topo ~name ~kind in
  let a = add "A" Domain.Backbone in
  let b = add "B" Domain.Regional in
  let c = add "C" Domain.Regional in
  let d = add "D" Domain.Backbone in
  let e = add "E" Domain.Backbone in
  let f = add "F" Domain.Stub in
  let g = add "G" Domain.Stub in
  Topo.add_link topo d a Topo.Peer;
  Topo.add_link topo e a Topo.Peer;
  Topo.add_link topo d e Topo.Peer;
  Topo.add_link topo a b Topo.Provider_customer;
  Topo.add_link topo a c Topo.Provider_customer;
  Topo.add_link topo b c Topo.Peer;
  Topo.add_link topo b f Topo.Provider_customer;
  Topo.add_link topo c g Topo.Provider_customer;
  topo

let figure3 () =
  let topo = figure1 () in
  let c = Option.get (Topo.find_by_name topo "C") in
  let a = Option.get (Topo.find_by_name topo "A") in
  let f = Option.get (Topo.find_by_name topo "F") in
  let g = Option.get (Topo.find_by_name topo "G") in
  let h = Topo.add_domain topo ~name:"H" ~kind:Domain.Stub in
  Topo.add_link topo c h Topo.Provider_customer;
  Topo.add_link topo g h Topo.Peer;
  (* F's second border router F2 peers directly with A in Figure 3(b). *)
  Topo.add_link topo a f Topo.Peer;
  topo

let line ~n =
  let topo = Topo.create () in
  let ids =
    Array.init n (fun i ->
        Topo.add_domain topo ~name:(Printf.sprintf "n%d" i)
          ~kind:(if i = 0 then Domain.Backbone else Domain.Stub))
  in
  for i = 0 to n - 2 do
    Topo.add_link topo ids.(i) ids.(i + 1) Topo.Provider_customer
  done;
  topo

let star ~n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  let topo = Topo.create () in
  let hub = Topo.add_domain topo ~name:"hub" ~kind:Domain.Backbone in
  for i = 1 to n - 1 do
    let leaf = Topo.add_domain topo ~name:(Printf.sprintf "leaf%d" i) ~kind:Domain.Stub in
    Topo.add_link topo hub leaf Topo.Provider_customer
  done;
  topo
