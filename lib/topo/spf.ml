type paths = { src : Domain.id; dist : int array; via : Domain.id array }

let m_bfs = Metrics.counter "spf.bfs_runs"

let m_dijkstra = Metrics.counter "spf.dijkstra_runs"

let m_valley_free = Metrics.counter "spf.valley_free_runs"

let m_cache_hit = Metrics.counter "spf.cache_hits"

let m_cache_miss = Metrics.counter "spf.cache_misses"

(* ------------------------------------------------------------------ *)
(* Workspace: preallocated scratch shared by the CSR kernels           *)
(* ------------------------------------------------------------------ *)

type workspace = {
  mutable q : int array;  (* FIFO ring for bfs / valley-free states *)
  mutable vf : int array;  (* per-(node, phase) distances, 3n *)
  mutable fin : bool array;  (* dijkstra settled flags, n *)
  mutable hkey : float array;  (* binary heap: keys *)
  mutable hnode : int array;  (* binary heap: node ids *)
  mutable hseq : int array;  (* binary heap: insertion seq (FIFO ties) *)
  mutable hsize : int;
  mutable hseq_next : int;
}

let make_workspace (c : Topo.csr) =
  let n = c.Topo.csr_nodes in
  let m = Array.length c.Topo.nbr in
  {
    q = Array.make (max 1 (3 * n)) 0;
    vf = Array.make (max 1 (3 * n)) 0;
    fin = Array.make (max 1 n) false;
    hkey = Array.make (max 16 (m + 1)) 0.0;
    hnode = Array.make (max 16 (m + 1)) 0;
    hseq = Array.make (max 16 (m + 1)) 0;
    hsize = 0;
    hseq_next = 0;
  }

let fit_workspace ws (c : Topo.csr) =
  let n = c.Topo.csr_nodes in
  let m = Array.length c.Topo.nbr in
  if Array.length ws.q < 3 * n then ws.q <- Array.make (3 * n) 0;
  if Array.length ws.vf < 3 * n then ws.vf <- Array.make (3 * n) 0;
  if Array.length ws.fin < n then ws.fin <- Array.make n false;
  if Array.length ws.hkey < m + 1 then begin
    ws.hkey <- Array.make (m + 1) 0.0;
    ws.hnode <- Array.make (m + 1) 0;
    ws.hseq <- Array.make (m + 1) 0
  end

let resolve_ws ws csr =
  match ws with
  | Some ws ->
      fit_workspace ws csr;
      ws
  | None -> make_workspace csr

(* Heap ordering is (key, seq) lexicographic — the same FIFO tie-break
   as Util.Heap, so CSR Dijkstra settles equal-distance nodes in the
   same order as the list-based reference. *)

let heap_less ws i j =
  ws.hkey.(i) < ws.hkey.(j) || (ws.hkey.(i) = ws.hkey.(j) && ws.hseq.(i) < ws.hseq.(j))

let heap_swap ws i j =
  let k = ws.hkey.(i) and n = ws.hnode.(i) and s = ws.hseq.(i) in
  ws.hkey.(i) <- ws.hkey.(j);
  ws.hnode.(i) <- ws.hnode.(j);
  ws.hseq.(i) <- ws.hseq.(j);
  ws.hkey.(j) <- k;
  ws.hnode.(j) <- n;
  ws.hseq.(j) <- s

let heap_push ws key node =
  let i = ws.hsize in
  ws.hkey.(i) <- key;
  ws.hnode.(i) <- node;
  ws.hseq.(i) <- ws.hseq_next;
  ws.hseq_next <- ws.hseq_next + 1;
  ws.hsize <- i + 1;
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if heap_less ws !i parent then begin
      heap_swap ws !i parent;
      i := parent
    end
    else continue := false
  done

(* Removes the minimum, leaving its key/node readable via the caller
   having copied them first. *)
let heap_remove_min ws =
  ws.hsize <- ws.hsize - 1;
  if ws.hsize > 0 then begin
    heap_swap ws 0 ws.hsize;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < ws.hsize && heap_less ws l !smallest then smallest := l;
      if r < ws.hsize && heap_less ws r !smallest then smallest := r;
      if !smallest <> !i then begin
        heap_swap ws !i !smallest;
        i := !smallest
      end
      else continue := false
    done
  end

(* ------------------------------------------------------------------ *)
(* CSR kernels                                                         *)
(* ------------------------------------------------------------------ *)

let bfs_kernel ?ws (csr : Topo.csr) src =
  let n = csr.Topo.csr_nodes in
  if src < 0 || src >= n then invalid_arg "Spf.bfs_csr: unknown source id";
  Metrics.incr m_bfs;
  let ws = resolve_ws ws csr in
  let dist = Array.make n max_int in
  let via = Array.make n (-1) in
  dist.(src) <- 0;
  let q = ws.q in
  let head = ref 0 and tail = ref 0 in
  q.(!tail) <- src;
  incr tail;
  let row = csr.Topo.row and nbr = csr.Topo.nbr in
  while !head < !tail do
    let u = q.(!head) in
    incr head;
    let du1 = dist.(u) + 1 in
    for k = row.(u) to row.(u + 1) - 1 do
      let v = nbr.(k) in
      if dist.(v) = max_int then begin
        dist.(v) <- du1;
        via.(v) <- u;
        q.(!tail) <- v;
        incr tail
      end
    done
  done;
  { src; dist; via }

type weighted = { wsrc : Domain.id; wdist : float array; wvia : Domain.id array }

let dijkstra_kernel ?ws (csr : Topo.csr) src =
  let n = csr.Topo.csr_nodes in
  if src < 0 || src >= n then invalid_arg "Spf.dijkstra_csr: unknown source id";
  Metrics.incr m_dijkstra;
  let ws = resolve_ws ws csr in
  let wdist = Array.make n infinity in
  let wvia = Array.make n (-1) in
  wdist.(src) <- 0.0;
  Array.fill ws.fin 0 n false;
  ws.hsize <- 0;
  ws.hseq_next <- 0;
  heap_push ws 0.0 src;
  let row = csr.Topo.row and nbr = csr.Topo.nbr and edelay = csr.Topo.edelay in
  while ws.hsize > 0 do
    let d = ws.hkey.(0) and u = ws.hnode.(0) in
    heap_remove_min ws;
    if not ws.fin.(u) then begin
      ws.fin.(u) <- true;
      for k = row.(u) to row.(u + 1) - 1 do
        let v = nbr.(k) in
        let nd = d +. edelay.(k) in
        if nd < wdist.(v) then begin
          wdist.(v) <- nd;
          wvia.(v) <- u;
          heap_push ws nd v
        end
      done
    end
  done;
  { wsrc = src; wdist; wvia }

(* Valley-free layered BFS over (node, phase) states flattened to
   [node * 3 + phase]: phase 0 = Up (still climbing customer->provider),
   1 = Peered (crossed the one allowed peer link), 2 = Down (descending
   provider->customer).  Transitions: Up -> Up (to provider), Up ->
   Peered (peer edge), Up/Peered/Down -> Down (to customer). *)

let valley_free_kernel ?ws (csr : Topo.csr) src =
  let n = csr.Topo.csr_nodes in
  if src < 0 || src >= n then invalid_arg "Spf.valley_free_dist_csr: unknown source id";
  Metrics.incr m_valley_free;
  let ws = resolve_ws ws csr in
  let best = Array.make n max_int in
  let vf = ws.vf in
  Array.fill vf 0 (3 * n) max_int;
  let q = ws.q in
  let head = ref 0 and tail = ref 0 in
  vf.(3 * src) <- 0;
  best.(src) <- 0;
  q.(!tail) <- 3 * src;
  incr tail;
  let row = csr.Topo.row and nbr = csr.Topo.nbr and edir = csr.Topo.edir in
  let relax v phase d =
    let s = (3 * v) + phase in
    if d < vf.(s) then begin
      vf.(s) <- d;
      if d < best.(v) then best.(v) <- d;
      q.(!tail) <- s;
      incr tail
    end
  in
  while !head < !tail do
    let s = q.(!head) in
    incr head;
    let u = s / 3 and phase = s mod 3 in
    let d = vf.(s) + 1 in
    for k = row.(u) to row.(u + 1) - 1 do
      let v = nbr.(k) in
      let dir = edir.(k) in
      if phase = 0 then begin
        if dir = Topo.edge_up then relax v 0 d;
        if dir = Topo.edge_peer then relax v 1 d;
        if dir = Topo.edge_down then relax v 2 d
      end
      else if dir = Topo.edge_down then relax v 2 d
    done
  done;
  best

(* The exported kernels carry a profiler section each; the disabled
   path is one flag test, keeping the kernels bench-clean. *)

let bfs_csr ?ws csr src =
  if Prof.is_enabled () then Prof.span "spf.bfs" (fun () -> bfs_kernel ?ws csr src)
  else bfs_kernel ?ws csr src

let dijkstra_csr ?ws csr src =
  if Prof.is_enabled () then Prof.span "spf.dijkstra" (fun () -> dijkstra_kernel ?ws csr src)
  else dijkstra_kernel ?ws csr src

let valley_free_dist_csr ?ws csr src =
  if Prof.is_enabled () then
    Prof.span "spf.valley_free" (fun () -> valley_free_kernel ?ws csr src)
  else valley_free_kernel ?ws csr src

(* ------------------------------------------------------------------ *)
(* Default entry points: freeze (memoized) + a shared workspace        *)
(* ------------------------------------------------------------------ *)

(* One workspace per domain, grown to the largest graph seen, keeps the
   common call sites (Shared_tree, Path_eval, Bgmp_fabric, Membership,
   ...) allocation-free without threading a workspace through every
   signature.  Domain-local (not global) so Par worker domains calling
   [bfs]/[dijkstra] never share scratch.  NB: [Domain] in this library
   is the multicast addressing domain; the runtime one is
   [Stdlib.Domain]. *)
let shared_ws_key : workspace option ref Stdlib.Domain.DLS.key =
  Stdlib.Domain.DLS.new_key (fun () -> ref None)

let with_shared_ws csr =
  let cell = Stdlib.Domain.DLS.get shared_ws_key in
  match !cell with
  | Some ws ->
      fit_workspace ws csr;
      ws
  | None ->
      let ws = make_workspace csr in
      cell := Some ws;
      ws

let bfs topo src =
  let csr = Topo.freeze topo in
  bfs_csr ~ws:(with_shared_ws csr) csr src

let dijkstra topo src =
  let csr = Topo.freeze topo in
  dijkstra_csr ~ws:(with_shared_ws csr) csr src

let valley_free_dist topo src =
  let csr = Topo.freeze topo in
  valley_free_dist_csr ~ws:(with_shared_ws csr) csr src

(* ------------------------------------------------------------------ *)
(* Legacy list-based reference kernels                                 *)
(* ------------------------------------------------------------------ *)

let bfs_list topo src =
  let n = Topo.domain_count topo in
  let dist = Array.make n max_int in
  let via = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun (v, _) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          via.(v) <- u;
          Queue.add v queue
        end)
      (Topo.adjacency topo u)
  done;
  { src; dist; via }

let dijkstra_list topo src =
  let n = Topo.domain_count topo in
  let wdist = Array.make n infinity in
  let wvia = Array.make n (-1) in
  wdist.(src) <- 0.0;
  let heap = Heap.create ~cmp:(fun (d1, _) (d2, _) -> Float.compare d1 d2) in
  Heap.push heap (0.0, src);
  let finished = Array.make n false in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if not finished.(u) then begin
          finished.(u) <- true;
          List.iter
            (fun (v, l) ->
              let nd = d +. Time.to_seconds l.Topo.delay in
              if nd < wdist.(v) then begin
                wdist.(v) <- nd;
                wvia.(v) <- u;
                Heap.push heap (nd, v)
              end)
            (Topo.adjacency topo u)
        end;
        drain ()
  in
  drain ();
  { wsrc = src; wdist; wvia }

type phase = Up | Peered | Down

let phase_index = function Up -> 0 | Peered -> 1 | Down -> 2

let valley_free_dist_list topo src =
  let n = Topo.domain_count topo in
  let dist = Array.make_matrix n 3 max_int in
  let best = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src).(phase_index Up) <- 0;
  best.(src) <- 0;
  Queue.add (src, Up) queue;
  let relax v phase d =
    let pi = phase_index phase in
    if d < dist.(v).(pi) then begin
      dist.(v).(pi) <- d;
      if d < best.(v) then best.(v) <- d;
      Queue.add (v, phase) queue
    end
  in
  while not (Queue.is_empty queue) do
    let u, phase = Queue.pop queue in
    let d = dist.(u).(phase_index phase) + 1 in
    List.iter
      (fun (v, l) ->
        let going_up = l.Topo.rel = Topo.Provider_customer && l.Topo.a = v in
        let going_down = l.Topo.rel = Topo.Provider_customer && l.Topo.a = u in
        let peer_edge = l.Topo.rel = Topo.Peer in
        match phase with
        | Up ->
            if going_up then relax v Up d;
            if peer_edge then relax v Peered d;
            if going_down then relax v Down d
        | Peered | Down -> if going_down then relax v Down d)
      (Topo.adjacency topo u)
  done;
  best

(* ------------------------------------------------------------------ *)
(* Result accessors                                                    *)
(* ------------------------------------------------------------------ *)

let dist p id = p.dist.(id)

let path p dst =
  if p.dist.(dst) = max_int then []
  else begin
    let rec walk node acc = if node = p.src then node :: acc else walk p.via.(node) (node :: acc) in
    walk dst []
  end

let next_hop_toward _topo p node =
  if node = p.src || p.dist.(node) = max_int then None else Some p.via.(node)

let wpath w dst =
  if w.wdist.(dst) = infinity then []
  else begin
    let rec walk node acc = if node = w.wsrc then node :: acc else walk w.wvia.(node) (node :: acc) in
    walk dst []
  end

(* ------------------------------------------------------------------ *)
(* Source-keyed SPF cache                                              *)
(* ------------------------------------------------------------------ *)

type cache = {
  ccsr : Topo.csr;
  cws : workspace;
  slots : paths option array;  (* keyed by source id *)
  mutable hits : int;
  mutable misses : int;
}

let make_cache_csr ?ws csr =
  {
    ccsr = csr;
    cws = resolve_ws ws csr;
    slots = Array.make (max 1 csr.Topo.csr_nodes) None;
    hits = 0;
    misses = 0;
  }

let make_cache topo = make_cache_csr (Topo.freeze topo)

let cache_csr c = c.ccsr

let bfs_cached c src =
  match c.slots.(src) with
  | Some p ->
      c.hits <- c.hits + 1;
      Metrics.incr m_cache_hit;
      p
  | None ->
      c.misses <- c.misses + 1;
      Metrics.incr m_cache_miss;
      let p = bfs_csr ~ws:c.cws c.ccsr src in
      c.slots.(src) <- Some p;
      p

let cache_stats c = (c.hits, c.misses)
