type paths = { src : Domain.id; dist : int array; via : Domain.id array }

let m_bfs = Metrics.counter "spf.bfs_runs"

let m_dijkstra = Metrics.counter "spf.dijkstra_runs"

let m_valley_free = Metrics.counter "spf.valley_free_runs"

let m_cache_hit = Metrics.counter "spf.cache_hits"

let m_cache_miss = Metrics.counter "spf.cache_misses"

(* ------------------------------------------------------------------ *)
(* Workspace: preallocated scratch shared by the CSR kernels           *)
(* ------------------------------------------------------------------ *)

type workspace = {
  mutable q : int array;  (* FIFO ring for bfs / valley-free states *)
  mutable vf : int array;  (* per-(node, phase) distances, 3n *)
  mutable fin : bool array;  (* dijkstra settled flags, n *)
  mutable hkey : float array;  (* binary heap: keys *)
  mutable hnode : int array;  (* binary heap: node ids *)
  mutable hseq : int array;  (* binary heap: insertion seq (FIFO ties) *)
  mutable hsize : int;
  mutable hseq_next : int;
}

let make_workspace (c : Topo.csr) =
  let n = c.Topo.csr_nodes in
  let m = Array.length c.Topo.nbr in
  {
    q = Array.make (max 1 (3 * n)) 0;
    vf = Array.make (max 1 (3 * n)) 0;
    fin = Array.make (max 1 n) false;
    hkey = Array.make (max 16 (m + 1)) 0.0;
    hnode = Array.make (max 16 (m + 1)) 0;
    hseq = Array.make (max 16 (m + 1)) 0;
    hsize = 0;
    hseq_next = 0;
  }

let fit_workspace ws (c : Topo.csr) =
  let n = c.Topo.csr_nodes in
  let m = Array.length c.Topo.nbr in
  if Array.length ws.q < 3 * n then ws.q <- Array.make (3 * n) 0;
  if Array.length ws.vf < 3 * n then ws.vf <- Array.make (3 * n) 0;
  if Array.length ws.fin < n then ws.fin <- Array.make n false;
  if Array.length ws.hkey < m + 1 then begin
    ws.hkey <- Array.make (m + 1) 0.0;
    ws.hnode <- Array.make (m + 1) 0;
    ws.hseq <- Array.make (m + 1) 0
  end

let resolve_ws ws csr =
  match ws with
  | Some ws ->
      fit_workspace ws csr;
      ws
  | None -> make_workspace csr

(* Heap ordering is (key, seq) lexicographic — the same FIFO tie-break
   as Util.Heap, so CSR Dijkstra settles equal-distance nodes in the
   same order as the list-based reference. *)

let heap_less ws i j =
  ws.hkey.(i) < ws.hkey.(j) || (ws.hkey.(i) = ws.hkey.(j) && ws.hseq.(i) < ws.hseq.(j))

let heap_swap ws i j =
  let k = ws.hkey.(i) and n = ws.hnode.(i) and s = ws.hseq.(i) in
  ws.hkey.(i) <- ws.hkey.(j);
  ws.hnode.(i) <- ws.hnode.(j);
  ws.hseq.(i) <- ws.hseq.(j);
  ws.hkey.(j) <- k;
  ws.hnode.(j) <- n;
  ws.hseq.(j) <- s

(* Repairs push one entry per improvement, which is not bounded by the
   edge count the initial sizing assumed — grow on demand. *)
let heap_ensure ws =
  let cap = Array.length ws.hkey in
  if ws.hsize = cap then begin
    let hkey = Array.make (2 * cap) 0.0 in
    let hnode = Array.make (2 * cap) 0 in
    let hseq = Array.make (2 * cap) 0 in
    Array.blit ws.hkey 0 hkey 0 cap;
    Array.blit ws.hnode 0 hnode 0 cap;
    Array.blit ws.hseq 0 hseq 0 cap;
    ws.hkey <- hkey;
    ws.hnode <- hnode;
    ws.hseq <- hseq
  end

let heap_push ws key node =
  heap_ensure ws;
  let i = ws.hsize in
  ws.hkey.(i) <- key;
  ws.hnode.(i) <- node;
  ws.hseq.(i) <- ws.hseq_next;
  ws.hseq_next <- ws.hseq_next + 1;
  ws.hsize <- i + 1;
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if heap_less ws !i parent then begin
      heap_swap ws !i parent;
      i := parent
    end
    else continue := false
  done

(* Removes the minimum, leaving its key/node readable via the caller
   having copied them first. *)
let heap_remove_min ws =
  ws.hsize <- ws.hsize - 1;
  if ws.hsize > 0 then begin
    heap_swap ws 0 ws.hsize;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < ws.hsize && heap_less ws l !smallest then smallest := l;
      if r < ws.hsize && heap_less ws r !smallest then smallest := r;
      if !smallest <> !i then begin
        heap_swap ws !i !smallest;
        i := !smallest
      end
      else continue := false
    done
  end

(* ------------------------------------------------------------------ *)
(* CSR kernels                                                         *)
(* ------------------------------------------------------------------ *)

(* All three kernels take an optional [alive] mask keyed by link id
   (through [csr.eid]): a dead edge is simply never relaxed.  The empty
   mask means "all alive" and keeps the unmasked hot path branch-cheap.
   The masked kernels double as the from-scratch oracles the incremental
   cache repairs are differentially tested against. *)

let mask_of = function Some a when Array.length a > 0 -> a | Some _ | None -> [||]

let bfs_kernel ?ws ?alive (csr : Topo.csr) src =
  let n = csr.Topo.csr_nodes in
  if src < 0 || src >= n then invalid_arg "Spf.bfs_csr: unknown source id";
  Metrics.incr m_bfs;
  let ws = resolve_ws ws csr in
  let mask = mask_of alive in
  let masked = Array.length mask > 0 in
  let dist = Array.make n max_int in
  let via = Array.make n (-1) in
  dist.(src) <- 0;
  let q = ws.q in
  let head = ref 0 and tail = ref 0 in
  q.(!tail) <- src;
  incr tail;
  let row = csr.Topo.row and nbr = csr.Topo.nbr and eid = csr.Topo.eid in
  while !head < !tail do
    let u = q.(!head) in
    incr head;
    let du1 = dist.(u) + 1 in
    for k = row.(u) to row.(u + 1) - 1 do
      if (not masked) || mask.(eid.(k)) then begin
        let v = nbr.(k) in
        if dist.(v) = max_int then begin
          dist.(v) <- du1;
          via.(v) <- u;
          q.(!tail) <- v;
          incr tail
        end
      end
    done
  done;
  { src; dist; via }

type weighted = { wsrc : Domain.id; wdist : float array; wvia : Domain.id array }

let dijkstra_kernel ?ws ?alive (csr : Topo.csr) src =
  let n = csr.Topo.csr_nodes in
  if src < 0 || src >= n then invalid_arg "Spf.dijkstra_csr: unknown source id";
  Metrics.incr m_dijkstra;
  let ws = resolve_ws ws csr in
  let mask = mask_of alive in
  let masked = Array.length mask > 0 in
  let wdist = Array.make n infinity in
  let wvia = Array.make n (-1) in
  wdist.(src) <- 0.0;
  Array.fill ws.fin 0 n false;
  ws.hsize <- 0;
  ws.hseq_next <- 0;
  heap_push ws 0.0 src;
  let row = csr.Topo.row
  and nbr = csr.Topo.nbr
  and edelay = csr.Topo.edelay
  and eid = csr.Topo.eid in
  while ws.hsize > 0 do
    let d = ws.hkey.(0) and u = ws.hnode.(0) in
    heap_remove_min ws;
    if not ws.fin.(u) then begin
      ws.fin.(u) <- true;
      for k = row.(u) to row.(u + 1) - 1 do
        if (not masked) || mask.(eid.(k)) then begin
          let v = nbr.(k) in
          let nd = d +. edelay.(k) in
          if nd < wdist.(v) then begin
            wdist.(v) <- nd;
            wvia.(v) <- u;
            heap_push ws nd v
          end
        end
      done
    end
  done;
  { wsrc = src; wdist; wvia }

(* Valley-free layered BFS over (node, phase) states flattened to
   [node * 3 + phase]: phase 0 = Up (still climbing customer->provider),
   1 = Peered (crossed the one allowed peer link), 2 = Down (descending
   provider->customer).  Transitions: Up -> Up (to provider), Up ->
   Peered (peer edge), Up/Peered/Down -> Down (to customer). *)

let valley_free_kernel ?ws ?alive (csr : Topo.csr) src =
  let n = csr.Topo.csr_nodes in
  if src < 0 || src >= n then invalid_arg "Spf.valley_free_dist_csr: unknown source id";
  Metrics.incr m_valley_free;
  let ws = resolve_ws ws csr in
  let mask = mask_of alive in
  let masked = Array.length mask > 0 in
  let best = Array.make n max_int in
  let vf = ws.vf in
  Array.fill vf 0 (3 * n) max_int;
  let q = ws.q in
  let head = ref 0 and tail = ref 0 in
  vf.(3 * src) <- 0;
  best.(src) <- 0;
  q.(!tail) <- 3 * src;
  incr tail;
  let row = csr.Topo.row
  and nbr = csr.Topo.nbr
  and edir = csr.Topo.edir
  and eid = csr.Topo.eid in
  let relax v phase d =
    let s = (3 * v) + phase in
    if d < vf.(s) then begin
      vf.(s) <- d;
      if d < best.(v) then best.(v) <- d;
      q.(!tail) <- s;
      incr tail
    end
  in
  while !head < !tail do
    let s = q.(!head) in
    incr head;
    let u = s / 3 and phase = s mod 3 in
    let d = vf.(s) + 1 in
    for k = row.(u) to row.(u + 1) - 1 do
      if (not masked) || mask.(eid.(k)) then begin
        let v = nbr.(k) in
        let dir = edir.(k) in
        if phase = 0 then begin
          if dir = Topo.edge_up then relax v 0 d;
          if dir = Topo.edge_peer then relax v 1 d;
          if dir = Topo.edge_down then relax v 2 d
        end
        else if dir = Topo.edge_down then relax v 2 d
      end
    done
  done;
  best

(* Like [valley_free_kernel] but keeps the whole layered tree — per-state
   distance and predecessor STATE — so the incremental cache can repair
   it under link deltas.  Fresh result arrays (the tree outlives the
   call); only the queue is borrowed from the workspace. *)

type vftree = {
  vsrc : Domain.id;
  vdist : int array;  (* per state [3v + phase], max_int unreachable *)
  vvia : int array;  (* predecessor state, -1 at the root / unreachable *)
  vbest : int array;  (* per node: min over its three states *)
}

let vf_tree_kernel ?ws ?alive (csr : Topo.csr) src =
  let n = csr.Topo.csr_nodes in
  if src < 0 || src >= n then invalid_arg "Spf.vf_tree: unknown source id";
  Metrics.incr m_valley_free;
  let ws = resolve_ws ws csr in
  let mask = mask_of alive in
  let masked = Array.length mask > 0 in
  let vdist = Array.make (3 * n) max_int in
  let vvia = Array.make (3 * n) (-1) in
  let vbest = Array.make n max_int in
  let q = ws.q in
  let head = ref 0 and tail = ref 0 in
  vdist.(3 * src) <- 0;
  vbest.(src) <- 0;
  q.(!tail) <- 3 * src;
  incr tail;
  let row = csr.Topo.row
  and nbr = csr.Topo.nbr
  and edir = csr.Topo.edir
  and eid = csr.Topo.eid in
  let relax from v phase d =
    let s = (3 * v) + phase in
    if d < vdist.(s) then begin
      vdist.(s) <- d;
      vvia.(s) <- from;
      if d < vbest.(v) then vbest.(v) <- d;
      q.(!tail) <- s;
      incr tail
    end
  in
  while !head < !tail do
    let s = q.(!head) in
    incr head;
    let u = s / 3 and phase = s mod 3 in
    let d = vdist.(s) + 1 in
    for k = row.(u) to row.(u + 1) - 1 do
      if (not masked) || mask.(eid.(k)) then begin
        let v = nbr.(k) in
        let dir = edir.(k) in
        if phase = 0 then begin
          if dir = Topo.edge_up then relax s v 0 d;
          if dir = Topo.edge_peer then relax s v 1 d;
          if dir = Topo.edge_down then relax s v 2 d
        end
        else if dir = Topo.edge_down then relax s v 2 d
      end
    done
  done;
  { vsrc = src; vdist; vvia; vbest }

(* The exported kernels carry a profiler section each; the disabled
   path is one flag test, keeping the kernels bench-clean. *)

let bfs_csr ?ws ?alive csr src =
  if Prof.is_enabled () then Prof.span "spf.bfs" (fun () -> bfs_kernel ?ws ?alive csr src)
  else bfs_kernel ?ws ?alive csr src

let dijkstra_csr ?ws ?alive csr src =
  if Prof.is_enabled () then
    Prof.span "spf.dijkstra" (fun () -> dijkstra_kernel ?ws ?alive csr src)
  else dijkstra_kernel ?ws ?alive csr src

let valley_free_dist_csr ?ws ?alive csr src =
  if Prof.is_enabled () then
    Prof.span "spf.valley_free" (fun () -> valley_free_kernel ?ws ?alive csr src)
  else valley_free_kernel ?ws ?alive csr src

(* ------------------------------------------------------------------ *)
(* Default entry points: freeze (memoized) + a shared workspace        *)
(* ------------------------------------------------------------------ *)

(* One workspace per domain, grown to the largest graph seen, keeps the
   common call sites (Shared_tree, Path_eval, Bgmp_fabric, Membership,
   ...) allocation-free without threading a workspace through every
   signature.  Domain-local (not global) so Par worker domains calling
   [bfs]/[dijkstra] never share scratch.  NB: [Domain] in this library
   is the multicast addressing domain; the runtime one is
   [Stdlib.Domain]. *)
let shared_ws_key : workspace option ref Stdlib.Domain.DLS.key =
  Stdlib.Domain.DLS.new_key (fun () -> ref None)

let with_shared_ws csr =
  let cell = Stdlib.Domain.DLS.get shared_ws_key in
  match !cell with
  | Some ws ->
      fit_workspace ws csr;
      ws
  | None ->
      let ws = make_workspace csr in
      cell := Some ws;
      ws

let bfs topo src =
  let csr = Topo.freeze topo in
  bfs_csr ~ws:(with_shared_ws csr) csr src

let dijkstra topo src =
  let csr = Topo.freeze topo in
  dijkstra_csr ~ws:(with_shared_ws csr) csr src

let valley_free_dist topo src =
  let csr = Topo.freeze topo in
  valley_free_dist_csr ~ws:(with_shared_ws csr) csr src

(* ------------------------------------------------------------------ *)
(* Legacy list-based reference kernels                                 *)
(* ------------------------------------------------------------------ *)

let bfs_list topo src =
  let n = Topo.domain_count topo in
  let dist = Array.make n max_int in
  let via = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun (v, _) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          via.(v) <- u;
          Queue.add v queue
        end)
      (Topo.adjacency topo u)
  done;
  { src; dist; via }

let dijkstra_list topo src =
  let n = Topo.domain_count topo in
  let wdist = Array.make n infinity in
  let wvia = Array.make n (-1) in
  wdist.(src) <- 0.0;
  let heap = Heap.create ~cmp:(fun (d1, _) (d2, _) -> Float.compare d1 d2) in
  Heap.push heap (0.0, src);
  let finished = Array.make n false in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if not finished.(u) then begin
          finished.(u) <- true;
          List.iter
            (fun (v, l) ->
              let nd = d +. Time.to_seconds l.Topo.delay in
              if nd < wdist.(v) then begin
                wdist.(v) <- nd;
                wvia.(v) <- u;
                Heap.push heap (nd, v)
              end)
            (Topo.adjacency topo u)
        end;
        drain ()
  in
  drain ();
  { wsrc = src; wdist; wvia }

type phase = Up | Peered | Down

let phase_index = function Up -> 0 | Peered -> 1 | Down -> 2

let valley_free_dist_list topo src =
  let n = Topo.domain_count topo in
  let dist = Array.make_matrix n 3 max_int in
  let best = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src).(phase_index Up) <- 0;
  best.(src) <- 0;
  Queue.add (src, Up) queue;
  let relax v phase d =
    let pi = phase_index phase in
    if d < dist.(v).(pi) then begin
      dist.(v).(pi) <- d;
      if d < best.(v) then best.(v) <- d;
      Queue.add (v, phase) queue
    end
  in
  while not (Queue.is_empty queue) do
    let u, phase = Queue.pop queue in
    let d = dist.(u).(phase_index phase) + 1 in
    List.iter
      (fun (v, l) ->
        let going_up = l.Topo.rel = Topo.Provider_customer && l.Topo.a = v in
        let going_down = l.Topo.rel = Topo.Provider_customer && l.Topo.a = u in
        let peer_edge = l.Topo.rel = Topo.Peer in
        match phase with
        | Up ->
            if going_up then relax v Up d;
            if peer_edge then relax v Peered d;
            if going_down then relax v Down d
        | Peered | Down -> if going_down then relax v Down d)
      (Topo.adjacency topo u)
  done;
  best

(* ------------------------------------------------------------------ *)
(* Result accessors                                                    *)
(* ------------------------------------------------------------------ *)

let dist p id = p.dist.(id)

let path p dst =
  if p.dist.(dst) = max_int then []
  else begin
    let rec walk node acc = if node = p.src then node :: acc else walk p.via.(node) (node :: acc) in
    walk dst []
  end

let next_hop_toward _topo p node =
  if node = p.src || p.dist.(node) = max_int then None else Some p.via.(node)

let wpath w dst =
  if w.wdist.(dst) = infinity then []
  else begin
    let rec walk node acc = if node = w.wsrc then node :: acc else walk w.wvia.(node) (node :: acc) in
    walk dst []
  end

(* ------------------------------------------------------------------ *)
(* Maintained SPF cache: trees repaired in place under link deltas     *)
(* ------------------------------------------------------------------ *)

let m_inc_repairs = Metrics.counter "spf.inc_repairs"

let m_inc_touched = Metrics.counter "spf.inc_touched"

(* The cache no longer memoizes over an immutable snapshot: each filled
   slot is a MAINTAINED tree.  [cache_note_link] flips a link's alive
   bit and ripple-repairs every filled slot — decrease-ripple on
   insert/restore, affected-subtree rebuild on failure — instead of
   invalidating and recomputing from scratch.  Dead links are carried as
   a bool mask keyed by link id, so a from-scratch masked kernel over
   the same snapshot is the differential oracle for any repaired tree. *)

type cache = {
  mutable ccsr : Topo.csr;
  cws : workspace;
  mutable slots : paths option array;  (* BFS trees, keyed by source id *)
  mutable wslots : weighted option array;  (* Dijkstra trees *)
  mutable vslots : vftree option array;  (* valley-free layered trees *)
  mutable alive : bool array;  (* by link id; [||] means all alive *)
  link_ids : (int, int) Hashtbl.t;  (* packed (min * n + max) -> link id *)
  mutable link_ids_len : int;  (* links of [ccsr.linkv] indexed so far *)
  mutable ring : int array;  (* repair FIFO over nodes / vf states *)
  mutable mark : bool array;  (* repair flags, 3n; all-false at rest *)
  mutable aff : int array;  (* affected node/state list (grown on demand) *)
  mutable hits : int;
  mutable misses : int;
  mutable repairs : int;  (* link transitions that repaired >= 1 tree *)
  mutable touched : int;  (* labels rewritten across all repairs *)
}

(* The three slot arrays are allocated on first use of their kind: a
   per-trial cache that only ever serves BFS queries costs one word per
   unused kind, not an n-slot array. *)
let make_cache_csr ?ws csr =
  {
    ccsr = csr;
    cws = resolve_ws ws csr;
    slots = [||];
    wslots = [||];
    vslots = [||];
    alive = [||];
    link_ids = Hashtbl.create 16;
    link_ids_len = 0;
    ring = [||];
    mark = [||];
    aff = [||];
    hits = 0;
    misses = 0;
    repairs = 0;
    touched = 0;
  }

let make_cache topo = make_cache_csr (Topo.freeze topo)

let cache_csr c = c.ccsr

let alive_opt c = if Array.length c.alive = 0 then None else Some c.alive

let cache_alive_mask c = c.alive

let ensure_link_index c =
  let linkv = c.ccsr.Topo.linkv in
  let n = c.ccsr.Topo.csr_nodes in
  if c.link_ids_len < Array.length linkv then begin
    for i = c.link_ids_len to Array.length linkv - 1 do
      let l = linkv.(i) in
      let x = min l.Topo.a l.Topo.b and y = max l.Topo.a l.Topo.b in
      Hashtbl.replace c.link_ids ((x * n) + y) i
    done;
    c.link_ids_len <- Array.length linkv
  end

let find_link c a b =
  let n = c.ccsr.Topo.csr_nodes in
  if a < 0 || b < 0 || a >= n || b >= n then None
  else begin
    ensure_link_index c;
    Hashtbl.find_opt c.link_ids ((min a b * n) + max a b)
  end

let cache_link_alive c ~a ~b =
  match find_link c a b with
  | Some lid -> Array.length c.alive = 0 || c.alive.(lid)
  | None -> true

let ensure_scratch c =
  let n3 = 3 * c.ccsr.Topo.csr_nodes in
  if Array.length c.mark < n3 then begin
    c.mark <- Array.make (max 16 n3) false;
    c.ring <- Array.make (max 16 n3) 0;
    c.aff <- Array.make (max 16 n3) 0
  end

let aff_push c i v =
  if !i >= Array.length c.aff then begin
    let grown = Array.make (2 * Array.length c.aff) 0 in
    Array.blit c.aff 0 grown 0 !i;
    c.aff <- grown
  end;
  c.aff.(!i) <- v;
  incr i

(* --- BFS repairs -------------------------------------------------- *)

(* Edge (a, b) came alive: seed both directions, then decrease-ripple.
   The ring FIFO is deduped with [mark] (a node already queued is just
   relabelled in place), so at most n entries are ever pending and the
   3n ring never wraps onto live entries. *)
let bfs_insert_repair c (p : paths) a b =
  let csr = c.ccsr in
  let row = csr.Topo.row and nbr = csr.Topo.nbr and eid = csr.Topo.eid in
  let alive = c.alive in
  let masked = Array.length alive > 0 in
  let dist = p.dist and via = p.via in
  let ring = c.ring and mark = c.mark in
  let cap = Array.length ring in
  let head = ref 0 and size = ref 0 in
  let touched = ref 0 in
  let push v =
    if not mark.(v) then begin
      mark.(v) <- true;
      ring.((!head + !size) mod cap) <- v;
      incr size
    end
  in
  let seed u v =
    if dist.(u) <> max_int && dist.(u) + 1 < dist.(v) then begin
      dist.(v) <- dist.(u) + 1;
      via.(v) <- u;
      incr touched;
      push v
    end
  in
  seed a b;
  seed b a;
  while !size > 0 do
    let u = ring.(!head) in
    head := (!head + 1) mod cap;
    decr size;
    mark.(u) <- false;
    let du1 = dist.(u) + 1 in
    for k = row.(u) to row.(u + 1) - 1 do
      if (not masked) || alive.(eid.(k)) then begin
        let v = nbr.(k) in
        if du1 < dist.(v) then begin
          dist.(v) <- du1;
          via.(v) <- u;
          incr touched;
          push v
        end
      end
    done
  done;
  !touched

(* Edge (a, b) died.  If the tree does not use it, the tree is its own
   witness that every distance is still optimal and nothing happens.
   Otherwise: collect the orphaned subtree (children satisfy
   [via.(child) = parent] and are graph neighbors, so one CSR row scan
   per member finds them), reset it, pull boundary candidates from
   intact alive neighbors, and settle the affected set with a restricted
   Dijkstra over unit weights.  The first pop of a node carries its
   final distance; later pops are stale and skipped via [mark]. *)
let bfs_delete_repair c (p : paths) a b =
  let dist = p.dist and via = p.via in
  let orphan = if via.(b) = a then b else if via.(a) = b then a else -1 in
  if orphan < 0 then 0
  else begin
    let csr = c.ccsr in
    let row = csr.Topo.row and nbr = csr.Topo.nbr and eid = csr.Topo.eid in
    let alive = c.alive in
    let masked = Array.length alive > 0 in
    let ring = c.ring and mark = c.mark in
    let qh = ref 0 and qt = ref 0 in
    let na = ref 0 in
    mark.(orphan) <- true;
    aff_push c na orphan;
    ring.(!qt) <- orphan;
    incr qt;
    while !qh < !qt do
      let u = ring.(!qh) in
      incr qh;
      for k = row.(u) to row.(u + 1) - 1 do
        let v = nbr.(k) in
        if (not mark.(v)) && via.(v) = u then begin
          mark.(v) <- true;
          aff_push c na v;
          ring.(!qt) <- v;
          incr qt
        end
      done
    done;
    for i = 0 to !na - 1 do
      let v = c.aff.(i) in
      dist.(v) <- max_int;
      via.(v) <- -1
    done;
    let ws = c.cws in
    ws.hsize <- 0;
    ws.hseq_next <- 0;
    for i = 0 to !na - 1 do
      let v = c.aff.(i) in
      let best = ref max_int and bvia = ref (-1) in
      for k = row.(v) to row.(v + 1) - 1 do
        if (not masked) || alive.(eid.(k)) then begin
          let u = nbr.(k) in
          if (not mark.(u)) && dist.(u) <> max_int && dist.(u) + 1 < !best then begin
            best := dist.(u) + 1;
            bvia := u
          end
        end
      done;
      if !best < max_int then begin
        dist.(v) <- !best;
        via.(v) <- !bvia;
        heap_push ws (float_of_int !best) v
      end
    done;
    while ws.hsize > 0 do
      let v = ws.hnode.(0) in
      heap_remove_min ws;
      if mark.(v) then begin
        mark.(v) <- false;
        let dv1 = dist.(v) + 1 in
        for k = row.(v) to row.(v + 1) - 1 do
          if (not masked) || alive.(eid.(k)) then begin
            let w = nbr.(k) in
            if mark.(w) && dv1 < dist.(w) then begin
              dist.(w) <- dv1;
              via.(w) <- v;
              heap_push ws (float_of_int dv1) w
            end
          end
        done
      end
    done;
    (* nodes cut off entirely keep max_int; drop their leftover marks *)
    for i = 0 to !na - 1 do
      mark.(c.aff.(i)) <- false
    done;
    !na
  end

(* --- Dijkstra repairs --------------------------------------------- *)

let dijkstra_insert_repair c (wt : weighted) a b w =
  let csr = c.ccsr in
  let row = csr.Topo.row
  and nbr = csr.Topo.nbr
  and eid = csr.Topo.eid
  and edelay = csr.Topo.edelay in
  let alive = c.alive in
  let masked = Array.length alive > 0 in
  let wdist = wt.wdist and wvia = wt.wvia in
  let ws = c.cws in
  ws.hsize <- 0;
  ws.hseq_next <- 0;
  let touched = ref 0 in
  let seed u v =
    if wdist.(u) < infinity && wdist.(u) +. w < wdist.(v) then begin
      wdist.(v) <- wdist.(u) +. w;
      wvia.(v) <- u;
      incr touched;
      heap_push ws wdist.(v) v
    end
  in
  seed a b;
  seed b a;
  while ws.hsize > 0 do
    let d = ws.hkey.(0) and u = ws.hnode.(0) in
    heap_remove_min ws;
    if d <= wdist.(u) then
      for k = row.(u) to row.(u + 1) - 1 do
        if (not masked) || alive.(eid.(k)) then begin
          let v = nbr.(k) in
          let nd = wdist.(u) +. edelay.(k) in
          if nd < wdist.(v) then begin
            wdist.(v) <- nd;
            wvia.(v) <- u;
            incr touched;
            heap_push ws nd v
          end
        end
      done
  done;
  !touched

let dijkstra_delete_repair c (wt : weighted) a b =
  let wdist = wt.wdist and wvia = wt.wvia in
  let orphan = if wvia.(b) = a then b else if wvia.(a) = b then a else -1 in
  if orphan < 0 then 0
  else begin
    let csr = c.ccsr in
    let row = csr.Topo.row
    and nbr = csr.Topo.nbr
    and eid = csr.Topo.eid
    and edelay = csr.Topo.edelay in
    let alive = c.alive in
    let masked = Array.length alive > 0 in
    let ring = c.ring and mark = c.mark in
    let qh = ref 0 and qt = ref 0 in
    let na = ref 0 in
    mark.(orphan) <- true;
    aff_push c na orphan;
    ring.(!qt) <- orphan;
    incr qt;
    while !qh < !qt do
      let u = ring.(!qh) in
      incr qh;
      for k = row.(u) to row.(u + 1) - 1 do
        let v = nbr.(k) in
        if (not mark.(v)) && wvia.(v) = u then begin
          mark.(v) <- true;
          aff_push c na v;
          ring.(!qt) <- v;
          incr qt
        end
      done
    done;
    for i = 0 to !na - 1 do
      let v = c.aff.(i) in
      wdist.(v) <- infinity;
      wvia.(v) <- -1
    done;
    let ws = c.cws in
    ws.hsize <- 0;
    ws.hseq_next <- 0;
    for i = 0 to !na - 1 do
      let v = c.aff.(i) in
      let best = ref infinity and bvia = ref (-1) in
      for k = row.(v) to row.(v + 1) - 1 do
        if (not masked) || alive.(eid.(k)) then begin
          let u = nbr.(k) in
          if not mark.(u) then begin
            let cand = wdist.(u) +. edelay.(k) in
            if cand < !best then begin
              best := cand;
              bvia := u
            end
          end
        end
      done;
      if !best < infinity then begin
        wdist.(v) <- !best;
        wvia.(v) <- !bvia;
        heap_push ws !best v
      end
    done;
    while ws.hsize > 0 do
      let v = ws.hnode.(0) in
      heap_remove_min ws;
      if mark.(v) then begin
        mark.(v) <- false;
        for k = row.(v) to row.(v + 1) - 1 do
          if (not masked) || alive.(eid.(k)) then begin
            let w = nbr.(k) in
            let nd = wdist.(v) +. edelay.(k) in
            if mark.(w) && nd < wdist.(w) then begin
              wdist.(w) <- nd;
              wvia.(w) <- v;
              heap_push ws nd w
            end
          end
        done
      end
    done;
    for i = 0 to !na - 1 do
      mark.(c.aff.(i)) <- false
    done;
    !na
  end

(* --- Valley-free repairs ------------------------------------------ *)

(* Repairs run on the layered state graph [3v + phase].  Out-transitions
   mirror the kernel; the in-edge rules used for boundary candidates are
   their flips: reading [edir] in v's OWN row (direction v -> u), the
   reverse edge u -> v is Up when [edir = edge_down], Peer when
   [edir = edge_peer] and Down when [edir = edge_up]. *)

let vf_insert_repair c (t : vftree) a b dir_ab dir_ba =
  let csr = c.ccsr in
  let row = csr.Topo.row
  and nbr = csr.Topo.nbr
  and eid = csr.Topo.eid
  and edir = csr.Topo.edir in
  let alive = c.alive in
  let masked = Array.length alive > 0 in
  let vdist = t.vdist and vvia = t.vvia and vbest = t.vbest in
  let ring = c.ring and mark = c.mark in
  let cap = Array.length ring in
  let head = ref 0 and size = ref 0 in
  let na = ref 0 in
  let push s =
    if not mark.(s) then begin
      mark.(s) <- true;
      ring.((!head + !size) mod cap) <- s;
      incr size
    end
  in
  let improve from v phase d =
    let s = (3 * v) + phase in
    if d < vdist.(s) then begin
      vdist.(s) <- d;
      vvia.(s) <- from;
      aff_push c na s;
      push s
    end
  in
  let seed u v dir =
    let su0 = 3 * u in
    if vdist.(su0) <> max_int then begin
      let d = vdist.(su0) + 1 in
      if dir = Topo.edge_up then improve su0 v 0 d;
      if dir = Topo.edge_peer then improve su0 v 1 d
    end;
    if dir = Topo.edge_down then
      for pu = 0 to 2 do
        let s = (3 * u) + pu in
        if vdist.(s) <> max_int then improve s v 2 (vdist.(s) + 1)
      done
  in
  seed a b dir_ab;
  seed b a dir_ba;
  while !size > 0 do
    let s = ring.(!head) in
    head := (!head + 1) mod cap;
    decr size;
    mark.(s) <- false;
    let u = s / 3 and phase = s mod 3 in
    let d = vdist.(s) + 1 in
    for k = row.(u) to row.(u + 1) - 1 do
      if (not masked) || alive.(eid.(k)) then begin
        let v = nbr.(k) in
        let dir = edir.(k) in
        if phase = 0 then begin
          if dir = Topo.edge_up then improve s v 0 d;
          if dir = Topo.edge_peer then improve s v 1 d;
          if dir = Topo.edge_down then improve s v 2 d
        end
        else if dir = Topo.edge_down then improve s v 2 d
      end
    done
  done;
  for i = 0 to !na - 1 do
    let v = c.aff.(i) / 3 in
    vbest.(v) <- min vdist.(3 * v) (min vdist.((3 * v) + 1) vdist.((3 * v) + 2))
  done;
  !na

let vf_delete_repair c (t : vftree) a b =
  let csr = c.ccsr in
  let row = csr.Topo.row
  and nbr = csr.Topo.nbr
  and eid = csr.Topo.eid
  and edir = csr.Topo.edir in
  let alive = c.alive in
  let masked = Array.length alive > 0 in
  let vdist = t.vdist and vvia = t.vvia and vbest = t.vbest in
  let ring = c.ring and mark = c.mark in
  let qt = ref 0 in
  let na = ref 0 in
  let orphan s =
    mark.(s) <- true;
    aff_push c na s;
    vdist.(s) <- max_int;
    vvia.(s) <- -1;
    ring.(!qt) <- s;
    incr qt
  in
  for p = 0 to 2 do
    let s = (3 * b) + p in
    if vvia.(s) >= 0 && vvia.(s) / 3 = a then orphan s;
    let s = (3 * a) + p in
    if vvia.(s) >= 0 && vvia.(s) / 3 = b then orphan s
  done;
  if !qt = 0 then 0
  else begin
    let qh = ref 0 in
    while !qh < !qt do
      let s = ring.(!qh) in
      incr qh;
      let u = s / 3 in
      for k = row.(u) to row.(u + 1) - 1 do
        let v = nbr.(k) in
        for p = 0 to 2 do
          let sv = (3 * v) + p in
          if (not mark.(sv)) && vvia.(sv) = s then orphan sv
        done
      done
    done;
    let ws = c.cws in
    ws.hsize <- 0;
    ws.hseq_next <- 0;
    for i = 0 to !na - 1 do
      let s = c.aff.(i) in
      let v = s / 3 and phase = s mod 3 in
      let best = ref max_int and bvia = ref (-1) in
      let cand su =
        if (not mark.(su)) && vdist.(su) <> max_int && vdist.(su) + 1 < !best then begin
          best := vdist.(su) + 1;
          bvia := su
        end
      in
      for k = row.(v) to row.(v + 1) - 1 do
        if (not masked) || alive.(eid.(k)) then begin
          let u = nbr.(k) in
          let dir = edir.(k) in
          if phase = 0 then begin
            if dir = Topo.edge_down then cand (3 * u)
          end
          else if phase = 1 then begin
            if dir = Topo.edge_peer then cand (3 * u)
          end
          else if dir = Topo.edge_up then begin
            cand (3 * u);
            cand ((3 * u) + 1);
            cand ((3 * u) + 2)
          end
        end
      done;
      if !best < max_int then begin
        vdist.(s) <- !best;
        vvia.(s) <- !bvia;
        heap_push ws (float_of_int !best) s
      end
    done;
    while ws.hsize > 0 do
      let s = ws.hnode.(0) in
      heap_remove_min ws;
      if mark.(s) then begin
        mark.(s) <- false;
        let u = s / 3 and phase = s mod 3 in
        let d = vdist.(s) + 1 in
        for k = row.(u) to row.(u + 1) - 1 do
          if (not masked) || alive.(eid.(k)) then begin
            let v = nbr.(k) in
            let dir = edir.(k) in
            let relax_to pv =
              let sv = (3 * v) + pv in
              if mark.(sv) && d < vdist.(sv) then begin
                vdist.(sv) <- d;
                vvia.(sv) <- s;
                heap_push ws (float_of_int d) sv
              end
            in
            if phase = 0 then begin
              if dir = Topo.edge_up then relax_to 0;
              if dir = Topo.edge_peer then relax_to 1;
              if dir = Topo.edge_down then relax_to 2
            end
            else if dir = Topo.edge_down then relax_to 2
          end
        done
      end
    done;
    for i = 0 to !na - 1 do
      let s = c.aff.(i) in
      mark.(s) <- false;
      let v = s / 3 in
      vbest.(v) <- min vdist.(3 * v) (min vdist.((3 * v) + 1) vdist.((3 * v) + 2))
    done;
    !na
  end

(* --- Delta entry points ------------------------------------------- *)

let link_dirs (l : Topo.link) =
  match l.Topo.rel with
  | Topo.Peer -> (Topo.edge_peer, Topo.edge_peer)
  | Topo.Provider_customer -> (Topo.edge_down, Topo.edge_up)

let repair_all c lid up =
  ensure_scratch c;
  fit_workspace c.cws c.ccsr;
  let l = c.ccsr.Topo.linkv.(lid) in
  let a = l.Topo.a and b = l.Topo.b in
  let w = Time.to_seconds l.Topo.delay in
  let dir_ab, dir_ba = link_dirs l in
  let any = ref false in
  let touched = ref 0 in
  Array.iter
    (function
      | Some p ->
          any := true;
          touched :=
            !touched + (if up then bfs_insert_repair c p a b else bfs_delete_repair c p a b)
      | None -> ())
    c.slots;
  Array.iter
    (function
      | Some wt ->
          any := true;
          touched :=
            !touched
            + (if up then dijkstra_insert_repair c wt a b w else dijkstra_delete_repair c wt a b)
      | None -> ())
    c.wslots;
  Array.iter
    (function
      | Some t ->
          any := true;
          touched :=
            !touched
            + (if up then vf_insert_repair c t a b dir_ab dir_ba else vf_delete_repair c t a b)
      | None -> ())
    c.vslots;
  if !any then begin
    c.repairs <- c.repairs + 1;
    Metrics.incr m_inc_repairs;
    c.touched <- c.touched + !touched;
    Metrics.add m_inc_touched !touched
  end

let cache_note_link c ~a ~b ~up =
  match find_link c a b with
  | None -> ()  (* not a link of this snapshot: nothing maintained to fix *)
  | Some lid ->
      let now_alive = Array.length c.alive = 0 || c.alive.(lid) in
      if now_alive <> up then begin
        if Array.length c.alive = 0 then
          c.alive <- Array.make (max 1 (Array.length c.ccsr.Topo.linkv)) true;
        c.alive.(lid) <- up;
        repair_all c lid up
      end

let cache_adopt c (csr' : Topo.csr) =
  if csr' != c.ccsr then begin
    let old = c.ccsr in
    let on = old.Topo.csr_nodes and nn = csr'.Topo.csr_nodes in
    let om = Array.length old.Topo.linkv and nm = Array.length csr'.Topo.linkv in
    (* Same nodes + the old link table as a physical prefix (freeze
       re-snapshots the same link records) means the new snapshot is the
       old graph plus appended links: adoptable by insert-repair. *)
    let prefix_ok =
      nn = on && nm >= om
      &&
      let ok = ref true in
      for i = 0 to om - 1 do
        if not (csr'.Topo.linkv.(i) == old.Topo.linkv.(i)) then ok := false
      done;
      !ok
    in
    c.ccsr <- csr';
    if prefix_ok then begin
      if Array.length c.alive > 0 && Array.length c.alive < nm then begin
        let grown = Array.make nm true in
        Array.blit c.alive 0 grown 0 (Array.length c.alive);
        c.alive <- grown
      end;
      fit_workspace c.cws csr';
      ensure_scratch c;
      ensure_link_index c;
      for lid = om to nm - 1 do
        repair_all c lid true
      done
    end
    else begin
      (* a different graph: drop the maintained trees and start over *)
      c.slots <- [||];
      c.wslots <- [||];
      c.vslots <- [||];
      c.alive <- [||];
      Hashtbl.reset c.link_ids;
      c.link_ids_len <- 0;
      fit_workspace c.cws csr'
    end
  end

(* --- Cached queries ----------------------------------------------- *)

let bfs_slots c =
  if Array.length c.slots = 0 then c.slots <- Array.make (max 1 c.ccsr.Topo.csr_nodes) None;
  c.slots

let dijkstra_slots c =
  if Array.length c.wslots = 0 then c.wslots <- Array.make (max 1 c.ccsr.Topo.csr_nodes) None;
  c.wslots

let vf_slots c =
  if Array.length c.vslots = 0 then c.vslots <- Array.make (max 1 c.ccsr.Topo.csr_nodes) None;
  c.vslots

let bfs_cached c src =
  match (bfs_slots c).(src) with
  | Some p ->
      c.hits <- c.hits + 1;
      Metrics.incr m_cache_hit;
      p
  | None ->
      c.misses <- c.misses + 1;
      Metrics.incr m_cache_miss;
      let p = bfs_csr ~ws:c.cws ?alive:(alive_opt c) c.ccsr src in
      (bfs_slots c).(src) <- Some p;
      p

let dijkstra_cached c src =
  match (dijkstra_slots c).(src) with
  | Some w ->
      c.hits <- c.hits + 1;
      Metrics.incr m_cache_hit;
      w
  | None ->
      c.misses <- c.misses + 1;
      Metrics.incr m_cache_miss;
      let w = dijkstra_csr ~ws:c.cws ?alive:(alive_opt c) c.ccsr src in
      (dijkstra_slots c).(src) <- Some w;
      w

let valley_free_tree_cached c src =
  match (vf_slots c).(src) with
  | Some t ->
      c.hits <- c.hits + 1;
      Metrics.incr m_cache_hit;
      t
  | None ->
      c.misses <- c.misses + 1;
      Metrics.incr m_cache_miss;
      let t = vf_tree_kernel ~ws:c.cws ?alive:(alive_opt c) c.ccsr src in
      (vf_slots c).(src) <- Some t;
      t

let valley_free_cached c src = (valley_free_tree_cached c src).vbest

let cache_stats c = (c.hits, c.misses)

let cache_repair_stats c = (c.repairs, c.touched)
