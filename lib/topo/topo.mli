(** The inter-domain topology: a graph of domains connected by
    inter-domain links carrying business relationships.

    Provider-customer relationships both shape the MASC hierarchy (a
    customer picks one of its providers as MASC parent) and define BGP
    export policy (a provider carries transit only to/from its
    customers). *)

type relationship =
  | Provider_customer  (** the [a] end of the link is provider of the [b] end *)
  | Peer  (** settlement-free peering *)

type link = { a : Domain.id; b : Domain.id; rel : relationship; delay : Time.t }

type csr = {
  csr_nodes : int;
  row : int array;  (** length [csr_nodes + 1]; node [u]'s edges live at
                        indices [row.(u) .. row.(u+1) - 1] *)
  nbr : int array;  (** directed edge -> neighbor id *)
  eid : int array;  (** directed edge -> index into [linkv] *)
  edelay : float array;  (** directed edge -> link delay in seconds *)
  edir : int array;
      (** directed edge [u -> v]: {!edge_up} when [v] is [u]'s provider,
          {!edge_peer} on a peering link, {!edge_down} when [v] is [u]'s
          customer *)
  linkv : link array;  (** flat link table, in insertion order *)
}
(** A frozen compressed-sparse-row snapshot of the graph.  Snapshots are
    immutable: mutating the [t] it came from (adding a domain or link)
    does not update existing snapshots — call {!freeze} again to get a
    fresh one.  Edges of each node appear in link-insertion order, so
    kernels iterating a snapshot break ties exactly like the list-based
    accessors. *)

val edge_up : int
val edge_peer : int
val edge_down : int

type t

val create : unit -> t

val add_domain : t -> name:string -> kind:Domain.kind -> Domain.id
(** Ids are assigned densely in creation order. *)

val add_link : ?delay:Time.t -> t -> Domain.id -> Domain.id -> relationship -> unit
(** [add_link t a b Provider_customer] makes [a] a provider of [b].
    Default delay 10 ms.  Self-links and duplicate links are rejected
    with [Invalid_argument]. *)

val domain_count : t -> int

val link_count : t -> int

val domain : t -> Domain.id -> Domain.t
(** @raise Invalid_argument on an unknown id. *)

val domains : t -> Domain.t list

val find_by_name : t -> string -> Domain.id option

val neighbors : t -> Domain.id -> Domain.id list
(** Adjacent domains, in link-insertion order. *)

val adjacency : t -> Domain.id -> (Domain.id * link) list
(** [(neighbor, link)] pairs, in link-insertion order.  Lets path kernels
    see each edge's link without a per-neighbor {!link_between} lookup. *)

val freeze : t -> csr
(** The current graph as a CSR snapshot.  Memoized: repeated calls on an
    unmodified graph return the same snapshot; any mutation invalidates
    the memo (but never the snapshots already handed out).  Each actual
    rebuild bumps the [topo.csr_rebuilds] counter (visible in
    [--metrics]); the link table is kept as a flat array so a rebuild
    re-snapshots it with one copy rather than walking a list. *)

val degree : t -> Domain.id -> int

val link_between : t -> Domain.id -> Domain.id -> link option

val providers_of : t -> Domain.id -> Domain.id list

val customers_of : t -> Domain.id -> Domain.id list

val peers_of : t -> Domain.id -> Domain.id list

val links : t -> link list

val is_connected : t -> bool
(** Is the graph connected (true for the empty graph)? *)

val pp_summary : Format.formatter -> t -> unit
