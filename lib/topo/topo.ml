type relationship = Provider_customer | Peer

type link = { a : Domain.id; b : Domain.id; rel : relationship; delay : Time.t }

type csr = {
  csr_nodes : int;
  row : int array;
  nbr : int array;
  eid : int array;
  edelay : float array;
  edir : int array;
  linkv : link array;
}

type t = {
  mutable doms : Domain.t array;
  mutable n : int;
  mutable adj : (Domain.id * link) list array;
      (** per-node: (neighbor, link), in REVERSE insertion order (cons on
          add); public accessors restore insertion order *)
  mutable linkv_dyn : link array;
      (** links in insertion order; first [link_n] slots are live.  Kept
          as a growable array (not a list) so {!freeze} snapshots the
          link table with one [Array.sub] instead of an O(m) list
          reversal — the dirty-range fast path of re-memoization. *)
  mutable link_n : int;
  by_name : (string, Domain.id) Hashtbl.t;
  mutable frozen : csr option;  (** memoized snapshot, cleared on mutation *)
}

(* How often a mutated graph actually pays for a CSR rebuild; the
   incremental SPF layer's savings show up as this staying flat while
   link-churn counters climb. *)
let m_csr_rebuilds = Metrics.counter "topo.csr_rebuilds"

let create () =
  {
    doms = [||];
    n = 0;
    adj = [||];
    linkv_dyn = [||];
    link_n = 0;
    by_name = Hashtbl.create 64;
    frozen = None;
  }

let ensure_capacity t =
  let cap = Array.length t.doms in
  if t.n = cap then begin
    let fresh_cap = if cap = 0 then 16 else 2 * cap in
    let dummy = Domain.make ~id:(-1) ~name:"" ~kind:Domain.Stub in
    let doms = Array.make fresh_cap dummy in
    Array.blit t.doms 0 doms 0 t.n;
    let adj = Array.make fresh_cap [] in
    Array.blit t.adj 0 adj 0 t.n;
    t.doms <- doms;
    t.adj <- adj
  end

let add_domain t ~name ~kind =
  ensure_capacity t;
  let id = t.n in
  t.doms.(id) <- Domain.make ~id ~name ~kind;
  t.n <- t.n + 1;
  Hashtbl.replace t.by_name name id;
  t.frozen <- None;
  id

let domain_count t = t.n

let link_count t = t.link_n

let check_id t id = if id < 0 || id >= t.n then invalid_arg "Topo: unknown domain id"

let domain t id =
  check_id t id;
  t.doms.(id)

let domains t = Array.to_list (Array.sub t.doms 0 t.n)

let find_by_name t name = Hashtbl.find_opt t.by_name name

let link_between t x y =
  check_id t x;
  check_id t y;
  List.assoc_opt y t.adj.(x)

let add_link ?(delay = Time.seconds 0.010) t a b rel =
  check_id t a;
  check_id t b;
  if a = b then invalid_arg "Topo.add_link: self-link";
  if link_between t a b <> None then invalid_arg "Topo.add_link: duplicate link";
  let l = { a; b; rel; delay } in
  t.adj.(a) <- (b, l) :: t.adj.(a);
  t.adj.(b) <- (a, l) :: t.adj.(b);
  let cap = Array.length t.linkv_dyn in
  if t.link_n = cap then begin
    let grown = Array.make (if cap = 0 then 16 else 2 * cap) l in
    Array.blit t.linkv_dyn 0 grown 0 t.link_n;
    t.linkv_dyn <- grown
  end;
  t.linkv_dyn.(t.link_n) <- l;
  t.link_n <- t.link_n + 1;
  t.frozen <- None

let adjacency t id =
  check_id t id;
  List.rev t.adj.(id)

let neighbors t id =
  check_id t id;
  List.rev_map fst t.adj.(id)

let degree t id =
  check_id t id;
  List.length t.adj.(id)

let providers_of t id =
  check_id t id;
  List.filter_map
    (fun (nbr, l) ->
      match l.rel with
      | Provider_customer when l.a = nbr -> Some nbr
      | Provider_customer | Peer -> None)
    (List.rev t.adj.(id))

let customers_of t id =
  check_id t id;
  List.filter_map
    (fun (nbr, l) ->
      match l.rel with
      | Provider_customer when l.a = id -> Some nbr
      | Provider_customer | Peer -> None)
    (List.rev t.adj.(id))

let peers_of t id =
  check_id t id;
  List.filter_map
    (fun (nbr, l) ->
      match l.rel with
      | Peer -> Some nbr
      | Provider_customer -> None)
    (List.rev t.adj.(id))

let links t = Array.to_list (Array.sub t.linkv_dyn 0 t.link_n)

let edge_up = 0
let edge_peer = 1
let edge_down = 2

let freeze t =
  match t.frozen with
  | Some c -> c
  | None ->
      Metrics.incr m_csr_rebuilds;
      let n = t.n in
      let linkv = Array.sub t.linkv_dyn 0 t.link_n in
      let m = 2 * Array.length linkv in
      let row = Array.make (n + 1) 0 in
      Array.iter
        (fun l ->
          row.(l.a + 1) <- row.(l.a + 1) + 1;
          row.(l.b + 1) <- row.(l.b + 1) + 1)
        linkv;
      for u = 1 to n do
        row.(u) <- row.(u) + row.(u - 1)
      done;
      let fill = Array.sub row 0 (max 1 n) in
      let nbr = Array.make m (-1) in
      let eid = Array.make m (-1) in
      let edelay = Array.make m 0.0 in
      let edir = Array.make m 0 in
      (* Per-node slots fill in global link-insertion order, which equals
         per-node insertion order (a link is appended to both endpoints'
         adjacency the moment it is created). *)
      Array.iteri
        (fun i l ->
          let put u v =
            let k = fill.(u) in
            fill.(u) <- k + 1;
            nbr.(k) <- v;
            eid.(k) <- i;
            edelay.(k) <- Time.to_seconds l.delay;
            edir.(k) <-
              (match l.rel with
              | Peer -> edge_peer
              | Provider_customer -> if l.a = v then edge_up else edge_down)
          in
          put l.a l.b;
          put l.b l.a)
        linkv;
      let c = { csr_nodes = n; row; nbr; eid; edelay; edir; linkv } in
      t.frozen <- Some c;
      c

let is_connected t =
  if t.n = 0 then true
  else begin
    let seen = Array.make t.n false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    seen.(0) <- true;
    let visited = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun (v, _) ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr visited;
            Queue.add v queue
          end)
        t.adj.(u)
    done;
    !visited = t.n
  end

let pp_summary ppf t =
  let count kind = List.length (List.filter (fun d -> d.Domain.kind = kind) (domains t)) in
  Format.fprintf ppf "%d domains (%d backbone, %d regional, %d stub, %d exchange), %d links"
    t.n (count Domain.Backbone) (count Domain.Regional) (count Domain.Stub)
    (count Domain.Exchange) t.link_n
