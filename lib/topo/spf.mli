(** Shortest-path computations over the domain graph.

    Path lengths in the paper's Figure 4 are counted in inter-domain
    hops, so BFS is the primary tool; a latency-weighted Dijkstra is also
    provided for the event-driven stack.  Policy-constrained ("valley
    free") paths model BGP export rules: a route learned from a provider
    or peer is only exported to customers, so a valid path is a
    customer→provider ascent, at most one peer edge, then a
    provider→customer descent.

    The default entry points ({!bfs}, {!dijkstra}, {!valley_free_dist})
    freeze the topology into a CSR snapshot (memoized by {!Topo.freeze})
    and run flat-array kernels over it with a shared preallocated
    workspace.  For hot loops, freeze once and call the [_csr] kernels
    with an explicit {!workspace}; for repeated same-source queries, use
    a {!cache}.  The [_list] variants are the straightforward
    adjacency-list reference implementations kept for differential
    testing. *)

type paths = {
  src : Domain.id;
  dist : int array;  (** hop count; [max_int] when unreachable *)
  via : Domain.id array;  (** predecessor toward [src]; [-1] at [src] / unreachable *)
}

val bfs : Topo.t -> Domain.id -> paths
(** Single-source shortest hop counts.  Neighbor exploration follows
    link-insertion order, making tie-breaks deterministic. *)

val dist : paths -> Domain.id -> int

val path : paths -> Domain.id -> Domain.id list
(** The node sequence from [src] to the argument, inclusive; [\[\]] when
    unreachable. *)

val next_hop_toward : Topo.t -> paths -> Domain.id -> Domain.id option
(** First hop on the shortest path from the given node back toward
    [paths.src]; [None] at the source or when unreachable.  (This is the
    "next hop toward the root domain" a G-RIB lookup yields.) *)

type weighted = {
  wsrc : Domain.id;
  wdist : float array;  (** summed link delay in seconds; [infinity] unreachable *)
  wvia : Domain.id array;
}

val dijkstra : Topo.t -> Domain.id -> weighted
(** Latency-weighted single-source shortest paths. *)

val wpath : weighted -> Domain.id -> Domain.id list

val valley_free_dist : Topo.t -> Domain.id -> int array
(** Hop distance from the source to every node along policy-valid
    (valley-free, at most one peer edge) paths, i.e. paths that BGP route
    export would actually reveal.  [max_int] when no policy-compliant
    path exists. *)

(** {2 CSR kernels}

    Allocation-free apart from the result arrays: all scratch (BFS
    queue, Dijkstra heap and settled flags, valley-free phase table)
    lives in a reusable {!workspace}.  When [?ws] is omitted a fresh
    workspace is allocated for the call.

    Each kernel takes an optional [?alive] mask keyed by link id
    (through [csr.eid]): a link whose entry is [false] is never relaxed,
    so the kernels double as from-scratch oracles for trees maintained
    under link failures.  An empty (or omitted) mask means every link is
    alive. *)

type workspace

val make_workspace : Topo.csr -> workspace
(** Scratch sized for the given snapshot.  A workspace may be reused
    across snapshots; it grows as needed and is never shrunk. *)

val bfs_csr : ?ws:workspace -> ?alive:bool array -> Topo.csr -> Domain.id -> paths

val dijkstra_csr : ?ws:workspace -> ?alive:bool array -> Topo.csr -> Domain.id -> weighted

val valley_free_dist_csr :
  ?ws:workspace -> ?alive:bool array -> Topo.csr -> Domain.id -> int array

type vftree = {
  vsrc : Domain.id;
  vdist : int array;
      (** per layered state [3 * node + phase] (phase 0 = Up, 1 = Peered,
          2 = Down); [max_int] unreachable *)
  vvia : int array;  (** predecessor {e state}; [-1] at the root / unreachable *)
  vbest : int array;  (** per node: min over its three states — what
                          {!valley_free_dist} reports *)
}
(** The full valley-free layered tree, kept (rather than just the
    per-node minimum) so the incremental cache can repair it in place. *)

(** {2 Maintained SPF cache}

    Memoizes BFS / Dijkstra / valley-free trees per source id over one
    frozen snapshot — and {e maintains} them under link deltas instead
    of invalidating.  {!cache_note_link} flips a link's alive bit and
    ripple-repairs only the affected subtree of every filled slot:
    restores seed a decrease-ripple from the link's endpoints, failures
    cut the orphaned subtree and re-settle it from its intact boundary.
    Wire it to the event stack with
    [Net.on_link_change net (fun a b ~up -> Spf.cache_note_link cache ~a ~b ~up)].

    Cached results are live views: a [paths] handed out earlier reflects
    repairs applied later.  The cache holds its own workspace. *)

type cache

val make_cache : Topo.t -> cache
(** Freezes the topology ({!Topo.freeze}, memoized) and starts an empty
    cache over the snapshot. *)

val make_cache_csr : ?ws:workspace -> Topo.csr -> cache
(** With [?ws] the cache borrows the given workspace instead of
    allocating one — e.g. a Par worker's slot-local scratch reused
    across many short-lived per-task caches.  The caller must not use
    the workspace from another domain while the cache is live. *)

val cache_csr : cache -> Topo.csr
(** The snapshot this cache computes over. *)

val bfs_cached : cache -> Domain.id -> paths
(** [bfs] from the given source, computed at most once per cache and
    repaired in place across link deltas. *)

val dijkstra_cached : cache -> Domain.id -> weighted

val valley_free_cached : cache -> Domain.id -> int array
(** The maintained equivalent of {!valley_free_dist}; the returned array
    is the live [vbest] of {!valley_free_tree_cached}. *)

val valley_free_tree_cached : cache -> Domain.id -> vftree

val cache_note_link : cache -> a:Domain.id -> b:Domain.id -> up:bool -> unit
(** Record that the link between [a] and [b] went down ([up:false]) or
    came back ([up:true]) and repair every filled slot.  A pair that is
    not a link of the snapshot, or a transition to the state the link is
    already in, is a silent no-op. *)

val cache_adopt : cache -> Topo.csr -> unit
(** Move the cache onto a fresh snapshot of the {e same} graph after
    links were appended ({!Topo.add_link} + {!Topo.freeze}): each
    appended link is insert-repaired into every filled slot.  A snapshot
    that is not the old graph plus appended links (nodes changed, links
    rewritten) drops all maintained trees instead. *)

val cache_link_alive : cache -> a:Domain.id -> b:Domain.id -> bool
(** Current alive state of a link ([true] for unknown pairs). *)

val cache_alive_mask : cache -> bool array
(** The mask consumed by the [?alive] kernels; [[||]] means every link
    is alive.  Shared, not copied — treat as read-only. *)

val cache_stats : cache -> int * int
(** [(hits, misses)] so far. *)

val cache_repair_stats : cache -> int * int
(** [(repairs, touched)]: link transitions that repaired at least one
    maintained tree, and total labels rewritten doing so.  Mirrored by
    the [spf.inc_repairs] / [spf.inc_touched] counters. *)

(** {2 List-based reference kernels}

    The original adjacency-list implementations, kept as differential
    oracles for the CSR kernels (see [test/test_spf_equiv.ml]).  They
    visit edges in the same (link-insertion) order as the CSR kernels,
    so results — including tie-breaks — match exactly. *)

val bfs_list : Topo.t -> Domain.id -> paths

val dijkstra_list : Topo.t -> Domain.id -> weighted

val valley_free_dist_list : Topo.t -> Domain.id -> int array
