(** Shortest-path computations over the domain graph.

    Path lengths in the paper's Figure 4 are counted in inter-domain
    hops, so BFS is the primary tool; a latency-weighted Dijkstra is also
    provided for the event-driven stack.  Policy-constrained ("valley
    free") paths model BGP export rules: a route learned from a provider
    or peer is only exported to customers, so a valid path is a
    customer→provider ascent, at most one peer edge, then a
    provider→customer descent.

    The default entry points ({!bfs}, {!dijkstra}, {!valley_free_dist})
    freeze the topology into a CSR snapshot (memoized by {!Topo.freeze})
    and run flat-array kernels over it with a shared preallocated
    workspace.  For hot loops, freeze once and call the [_csr] kernels
    with an explicit {!workspace}; for repeated same-source queries, use
    a {!cache}.  The [_list] variants are the straightforward
    adjacency-list reference implementations kept for differential
    testing. *)

type paths = {
  src : Domain.id;
  dist : int array;  (** hop count; [max_int] when unreachable *)
  via : Domain.id array;  (** predecessor toward [src]; [-1] at [src] / unreachable *)
}

val bfs : Topo.t -> Domain.id -> paths
(** Single-source shortest hop counts.  Neighbor exploration follows
    link-insertion order, making tie-breaks deterministic. *)

val dist : paths -> Domain.id -> int

val path : paths -> Domain.id -> Domain.id list
(** The node sequence from [src] to the argument, inclusive; [\[\]] when
    unreachable. *)

val next_hop_toward : Topo.t -> paths -> Domain.id -> Domain.id option
(** First hop on the shortest path from the given node back toward
    [paths.src]; [None] at the source or when unreachable.  (This is the
    "next hop toward the root domain" a G-RIB lookup yields.) *)

type weighted = {
  wsrc : Domain.id;
  wdist : float array;  (** summed link delay in seconds; [infinity] unreachable *)
  wvia : Domain.id array;
}

val dijkstra : Topo.t -> Domain.id -> weighted
(** Latency-weighted single-source shortest paths. *)

val wpath : weighted -> Domain.id -> Domain.id list

val valley_free_dist : Topo.t -> Domain.id -> int array
(** Hop distance from the source to every node along policy-valid
    (valley-free, at most one peer edge) paths, i.e. paths that BGP route
    export would actually reveal.  [max_int] when no policy-compliant
    path exists. *)

(** {2 CSR kernels}

    Allocation-free apart from the result arrays: all scratch (BFS
    queue, Dijkstra heap and settled flags, valley-free phase table)
    lives in a reusable {!workspace}.  When [?ws] is omitted a fresh
    workspace is allocated for the call. *)

type workspace

val make_workspace : Topo.csr -> workspace
(** Scratch sized for the given snapshot.  A workspace may be reused
    across snapshots; it grows as needed and is never shrunk. *)

val bfs_csr : ?ws:workspace -> Topo.csr -> Domain.id -> paths

val dijkstra_csr : ?ws:workspace -> Topo.csr -> Domain.id -> weighted

val valley_free_dist_csr : ?ws:workspace -> Topo.csr -> Domain.id -> int array

(** {2 Source-keyed SPF cache}

    Memoizes {!bfs} results per source id over one frozen snapshot, so
    harness code evaluating many groups on one topology never recomputes
    a BFS it already ran.  The cache holds its own workspace.  Like the
    snapshot it wraps, it must be rebuilt if the topology mutates. *)

type cache

val make_cache : Topo.t -> cache
(** Freezes the topology ({!Topo.freeze}, memoized) and starts an empty
    cache over the snapshot. *)

val make_cache_csr : ?ws:workspace -> Topo.csr -> cache
(** With [?ws] the cache borrows the given workspace instead of
    allocating one — e.g. a Par worker's slot-local scratch reused
    across many short-lived per-task caches.  The caller must not use
    the workspace from another domain while the cache is live. *)

val cache_csr : cache -> Topo.csr
(** The snapshot this cache computes over. *)

val bfs_cached : cache -> Domain.id -> paths
(** [bfs] from the given source, computed at most once per cache. *)

val cache_stats : cache -> int * int
(** [(hits, misses)] so far. *)

(** {2 List-based reference kernels}

    The original adjacency-list implementations, kept as differential
    oracles for the CSR kernels (see [test/test_spf_equiv.ml]).  They
    visit edges in the same (link-insertion) order as the CSR kernels,
    so results — including tie-breaks — match exactly. *)

val bfs_list : Topo.t -> Domain.id -> paths

val dijkstra_list : Topo.t -> Domain.id -> weighted

val valley_free_dist_list : Topo.t -> Domain.id -> int array
