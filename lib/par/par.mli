(** Fixed-size domain pool for deterministic fan-out.

    The pool spawns its worker domains once, on first use, and reuses
    them for every subsequent batch — OCaml domains are heavyweight
    (each owns a minor heap), so per-call [Domain.spawn] would swamp
    the work being parallelised.  [map] submits a batch, participates
    in draining it from the calling domain, and returns results in
    input order regardless of which domain ran which task.

    Determinism contract: with [jobs = 1] no domains are involved and
    tasks run inline in order, through the same code path callers use
    at any job count.  At [jobs > 1] only scheduling changes; callers
    keep output byte-identical by giving each task its own RNG stream
    and its own {!Metrics} shard (see {!with_shard}) and folding shards
    back in task order.

    Exceptions: if tasks raise, the batch still runs to completion (no
    cancellation) and the exception of the lowest-indexed failing task
    is re-raised in the caller with its backtrace.

    Nested [map] (a task calling [map]) runs the inner batch inline on
    the worker — the pool never deadlocks waiting on itself. *)

val set_jobs : int -> unit
(** Set the default job count used when [?jobs] is omitted.  [0] means
    [Domain.recommended_domain_count ()].  Call from the main domain
    before any parallel work; raising the count grows the pool on the
    next batch, lowering it just idles extra workers. *)

val jobs : unit -> int
(** The resolved default job count (never 0). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element, running up to
    [jobs] tasks concurrently (the caller's domain counts as one), and
    returns results in input order. *)

val map_with : ?jobs:int -> init:(unit -> 's) -> ('s -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} with per-worker local state: [init] runs at most once
    per worker slot per batch, lazily, on the domain that uses it, and
    its result is passed to every task that slot executes.  Use it for
    scratch state that is expensive to build and unobservable in the
    output — e.g. one {!Spf.workspace} per worker.  Anything that
    affects output must be per-task, not per-worker. *)

(** {1 Observability shards}

    Helpers tying the pool to the Obs layer.  A task that records
    metrics, profiler spans or flight-recorder records wraps its body
    in [with_shard]; the caller folds the shards back with
    [merge_shard] in task order at the join point, making [--metrics],
    [--profile] and [--fingerprint] output independent of
    scheduling. *)

type shard

val with_shard : (unit -> 'a) -> 'a * shard
(** Run the thunk with a fresh {!Metrics} registry current on this
    domain, profiler spans captured to a detached tree, flight-recorder
    records buffered to a shard, and a fresh {!Span} minter installed —
    so the causal span ids a task mints are a deterministic function of
    the task alone; return the result together with the shard. *)

val merge_shard : shard -> unit
(** Fold a shard into this domain's current registry, currently open
    profiler span, and live recorder ({!Metrics.merge_into} +
    {!Prof.merge} + {!Recorder.merge}). *)
