(* A fixed-size pool of worker domains.  Workers are spawned on first
   parallel batch and then park on a condition variable between
   batches; a batch is published under the pool mutex as a (generation,
   batch) pair, every participating domain — the submitter included —
   grabs task indices from a shared atomic cursor, and the submitter
   waits until the batch's remaining-count hits zero.  Results land in
   per-index slots, so output order is input order no matter which
   domain ran what.

   Worker domains are never joined: they hold no resources beyond
   their heap, and the whole process exits with the main domain. *)

let requested_jobs = ref 1

let set_jobs n =
  if n < 0 then invalid_arg "Par.set_jobs: negative";
  requested_jobs := n

let jobs () =
  let j = if !requested_jobs = 0 then Domain.recommended_domain_count () else !requested_jobs in
  max 1 j

(* Slot 0 is the submitting (main) domain; worker [k] owns slot [k]
   for its whole life, so per-slot state needs no synchronisation. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

(* Set while a domain is inside a task, so a nested [map] runs inline
   instead of deadlocking the pool against itself. *)
let in_task_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type batch = {
  bjobs : int;  (* slots allowed to drain this batch *)
  total : int;
  next : int Atomic.t;  (* next task index to claim *)
  run : slot:int -> int -> unit;
  mutable remaining : int;  (* guarded by [m] *)
}

let m = Mutex.create ()
let work_cv = Condition.create ()  (* workers: a new batch is up *)
let done_cv = Condition.create ()  (* submitter: remaining hit zero *)
let generation = ref 0  (* guarded by [m] *)
let current_batch : batch option ref = ref None  (* guarded by [m] *)
let spawned = ref 0

let drain b ~slot =
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.total then begin
      b.run ~slot i;
      Mutex.lock m;
      b.remaining <- b.remaining - 1;
      if b.remaining = 0 then Condition.broadcast done_cv;
      Mutex.unlock m;
      loop ()
    end
  in
  loop ()

let rec worker_loop id last_gen =
  Mutex.lock m;
  while !generation = last_gen do
    Condition.wait work_cv m
  done;
  let gen = !generation in
  let b = !current_batch in
  Mutex.unlock m;
  (match b with Some b when id < b.bjobs -> drain b ~slot:id | Some _ | None -> ());
  worker_loop id gen

(* Grow the pool to [k] workers (slots 1..k). *)
let ensure_workers k =
  while !spawned < k do
    incr spawned;
    let id = !spawned in
    Mutex.lock m;
    let gen = !generation in
    Mutex.unlock m;
    ignore
      (Domain.spawn (fun () ->
           Domain.DLS.set slot_key id;
           worker_loop id gen))
  done

let resolve_jobs = function
  | Some j -> if j = 0 then max 1 (Domain.recommended_domain_count ()) else max 1 j
  | None -> jobs ()

let map_with ?jobs:j ~init f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let j = min (resolve_jobs j) n in
    let results = Array.make n None in
    let errors = Array.make n None in
    let states = Array.make j None in
    let task slot i =
      let s =
        match states.(slot) with
        | Some s -> s
        | None ->
            let s = init () in
            states.(slot) <- Some s;
            s
      in
      try results.(i) <- Some (f s arr.(i))
      with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let run ~slot i =
      let prev = Domain.DLS.get in_task_key in
      Domain.DLS.set in_task_key true;
      Fun.protect ~finally:(fun () -> Domain.DLS.set in_task_key prev) (fun () -> task slot i)
    in
    if j = 1 || Domain.DLS.get in_task_key then
      (* Inline: same per-task wrapper, same run-to-completion and
         lowest-index-raise semantics, no domains. *)
      for i = 0 to n - 1 do
        run ~slot:0 i
      done
    else begin
      ensure_workers (j - 1);
      let b = { bjobs = j; total = n; next = Atomic.make 0; run; remaining = n } in
      Mutex.lock m;
      current_batch := Some b;
      incr generation;
      Condition.broadcast work_cv;
      Mutex.unlock m;
      drain b ~slot:0;
      Mutex.lock m;
      while b.remaining > 0 do
        Condition.wait done_cv m
      done;
      current_batch := None;
      Mutex.unlock m
    end;
    let rec first_error i =
      if i >= n then None else match errors.(i) with Some e -> Some e | None -> first_error (i + 1)
    in
    (match first_error 0 with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list (Array.map (function Some v -> v | None -> assert false) results)
  end

let map ?jobs f xs = map_with ?jobs ~init:(fun () -> ()) (fun () x -> f x) xs

(* --- Observability shards -------------------------------------------- *)

type shard = { sm : Metrics.registry; sp : Prof.tree; sr : Recorder.shard }

let with_shard f =
  let reg = Metrics.create () in
  let (x, tree), recs =
    Recorder.capture (fun () ->
        Prof.capture (fun () ->
            Metrics.with_current reg (fun () -> Span.with_minter (Span.create_minter ()) f)))
  in
  (x, { sm = reg; sp = tree; sr = recs })

let merge_shard s =
  Metrics.merge_into ~into:(Metrics.current ()) s.sm;
  Prof.merge s.sp;
  Recorder.merge s.sr
