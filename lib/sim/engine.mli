(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of pending
    events.  Protocol entities (MASC nodes, BGP speakers, BGMP routers,
    MIGP components) are plain OCaml values that schedule closures;
    events at equal timestamps fire in scheduling order, so runs are
    fully deterministic. *)

type t

type handle
(** A cancellation token for a scheduled event. *)

val create : unit -> t

val now : t -> Time.t

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** Schedule a closure at an absolute time.  Scheduling in the past
    raises [Invalid_argument]. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> handle
(** Schedule a closure [delay] after the current time (delay must be
    non-negative). *)

val periodic : t -> interval:Time.t -> (unit -> unit) -> handle
(** Run the closure every [interval], starting one interval from now,
    until cancelled.  @raise Invalid_argument if [interval <= 0]. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op.
    Cancelling a periodic event stops all future firings. *)

val pending : t -> int
(** Number of live (scheduled, not yet fired, not cancelled) events.
    Cancelled events leave this count immediately, even though they
    only drain from the internal queue lazily. *)

val step : t -> bool
(** Fire the single earliest event.  Returns [false] when the queue is
    empty. *)

val run : ?until:Time.t -> t -> unit
(** Fire events until the queue drains, or until the clock would pass
    [until] (events strictly after [until] remain queued and the clock is
    advanced to [until]). *)

val run_until_idle : t -> unit
(** [run] with no horizon. *)
