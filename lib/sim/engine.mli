(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of pending
    events.  Protocol entities (MASC nodes, BGP speakers, BGMP routers,
    MIGP components) are plain OCaml values that schedule closures;
    events at equal timestamps fire in scheduling order, so runs are
    fully deterministic. *)

type t

type handle
(** A cancellation token for a scheduled event. *)

val create : unit -> t

val now : t -> Time.t

val schedule_at : ?label:string -> t -> Time.t -> (unit -> unit) -> handle
(** Schedule a closure at an absolute time.  Scheduling in the past
    raises [Invalid_argument].  [label] names the event kind for the
    profiler: when {!Prof} is enabled, the action fires inside
    [Prof.span label], bucketing dispatch time per kind (default
    ["event"]). *)

val schedule_after : ?label:string -> t -> Time.t -> (unit -> unit) -> handle
(** Schedule a closure [delay] after the current time (delay must be
    non-negative). *)

val periodic : ?label:string -> t -> interval:Time.t -> (unit -> unit) -> handle
(** Run the closure every [interval], starting one interval from now,
    until cancelled.  @raise Invalid_argument if [interval <= 0]. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op.
    Cancelling a periodic event stops all future firings. *)

val pending : t -> int
(** Number of live (scheduled, not yet fired, not cancelled) events.
    Cancelled events leave this count immediately, even though they
    only drain from the internal queue lazily. *)

val step : t -> bool
(** Fire the single earliest event.  Returns [false] when the queue is
    empty.  This is the single dispatch point: when the flight recorder
    ({!Recorder}) is enabled, every fired event appends one record
    [(time, label)] before its action runs — one branch when disabled,
    like the profiler. *)

val run : ?until:Time.t -> t -> unit
(** Fire events until the queue drains, or until the clock would pass
    [until] (events strictly after [until] remain queued and the clock is
    advanced to [until]). *)

val run_until_idle : t -> unit
(** [run] with no horizon. *)

val run_until_quiescent : grace:Time.t -> t -> unit
(** Fire events until the run has been {e quiescent} for [grace] of
    virtual time: stop once every remaining event lies more than [grace]
    past the latest {!note_activity} watermark (or past the current
    clock, if nothing ever reported activity).  Unlike {!run_until_idle}
    this terminates in the presence of periodic housekeeping that never
    drains — the housekeeping keeps firing only as long as it keeps
    producing activity.  The monitor's quiescent hook runs at the stop
    point.  @raise Invalid_argument if [grace <= 0]. *)

(** {1 Convergence watermarks}

    Protocol code calls {!note_activity} whenever an actor class
    changes durable state (a RIB entry, a claim, tree state — not mere
    message forwarding).  The latest watermark across all classes is
    the time the run converged: everything after it was churn-free. *)

val note_activity : t -> string -> unit
(** Record that actor class [cls] changed state at the current clock. *)

val watermarks : t -> (string * Time.t) list
(** Per-class last-state-change times, sorted by class name. *)

val converged_at : t -> Time.t option
(** The maximum watermark, i.e. when the last state change happened;
    [None] if nothing ever reported activity. *)

(** {1 Monitor hook}

    A monitor piggybacks on event execution rather than scheduling its
    own periodic events, so it never keeps an otherwise-idle run
    alive.  The hook fires with [~quiescent:false] at most once per
    [cadence] of virtual time (after the event that crossed the
    boundary), and with [~quiescent:true] whenever {!run} drains the
    queue. *)

val set_monitor : t -> cadence:Time.t -> (quiescent:bool -> unit) -> unit
(** Replaces any previous monitor.
    @raise Invalid_argument if [cadence <= 0]. *)

val clear_monitor : t -> unit

(** {1 Sampler hook}

    The telemetry twin of the monitor: a hook called with the current
    virtual time at most once per [every] of virtual time (after the
    event that crossed the boundary), and once more when a run stops —
    queue drained, horizon reached, or quiescence detected — so a
    telemetry series always carries a final point.  Like the monitor it
    piggybacks on event execution and never keeps an idle run alive. *)

val set_sampler : t -> every:Time.t -> (Time.t -> unit) -> unit
(** Replaces any previous sampler.
    @raise Invalid_argument if [every <= 0]. *)

val clear_sampler : t -> unit
