(* Pure rendering over entry lists: the [trace] subcommand and the
   walkthrough example both build their causal-chain output here, so a
   loaded JSONL file and a live in-memory trace render identically. *)

let stable_sort_by_time entries =
  List.stable_sort (fun a b -> Float.compare a.Trace.time b.Trace.time) entries

let chain_ids entries =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun e ->
      match e.Trace.trace_id with
      | Some id when not (Hashtbl.mem seen id) ->
          Hashtbl.add seen id ();
          Some id
      | Some _ | None -> None)
    entries

let chain entries ~id =
  stable_sort_by_time (List.filter (fun e -> e.Trace.trace_id = Some id) entries)

let kind_of_id id =
  match String.index_opt id ':' with Some i -> String.sub id 0 i | None -> id

(* Depth of each entry from its parent link; parents normally precede
   children in time, so one ordered pass suffices.  Orphans (parent not
   retained, e.g. a ring sink evicted it) sit at depth 0. *)
let depths chain =
  let depth_of_span = Hashtbl.create 16 in
  List.map
    (fun e ->
      let d =
        match e.Trace.parent with
        | Some p -> ( match Hashtbl.find_opt depth_of_span p with Some d -> d + 1 | None -> 0)
        | None -> 0
      in
      (match e.Trace.span with Some s -> Hashtbl.replace depth_of_span s d | None -> ());
      (e, d))
    chain

let pp_span_ref ppf e =
  match (e.Trace.span, e.Trace.parent) with
  | Some s, Some p -> Format.fprintf ppf "  (#%d<-%d)" s p
  | Some s, None -> Format.fprintf ppf "  (#%d)" s
  | None, _ -> ()

let pp_chain ppf entries =
  List.iter
    (fun (e, depth) ->
      Format.fprintf ppf "%s[%a] %-14s %-18s %s%a@." (String.make (2 * depth) ' ') Time.pp
        e.Trace.time e.Trace.actor e.Trace.tag e.Trace.detail pp_span_ref e)
    (depths entries)

let pp_chain_for ppf entries ~id =
  match chain entries ~id with
  | [] -> Format.fprintf ppf "no entries for trace id %s@." id
  | c ->
      Format.fprintf ppf "trace %s (%d entries)@." id (List.length c);
      pp_chain ppf c

let pp_timelines ppf entries =
  List.iter
    (fun id ->
      let c = chain entries ~id in
      Format.fprintf ppf "%s@." id;
      List.iter
        (fun e ->
          Format.fprintf ppf "  [%a] %-14s %-18s %s@." Time.pp e.Trace.time e.Trace.actor
            e.Trace.tag e.Trace.detail)
        c)
    (chain_ids entries)

type latency = { kind : string; chains : int; min_s : float; mean_s : float; max_s : float }

let latencies entries =
  let by_kind = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun id ->
      match chain entries ~id with
      | [] -> ()
      | c ->
          let first = (List.hd c).Trace.time in
          let last = List.fold_left (fun acc e -> max acc e.Trace.time) first c in
          let k = kind_of_id id in
          let d = last -. first in
          (match Hashtbl.find_opt by_kind k with
          | None ->
              order := k :: !order;
              Hashtbl.add by_kind k (1, d, d, d)
          | Some (n, mn, mx, sum) -> Hashtbl.replace by_kind k (n + 1, min mn d, max mx d, sum +. d)))
    (chain_ids entries);
  List.rev_map
    (fun k ->
      let n, mn, mx, sum = Hashtbl.find by_kind k in
      { kind = k; chains = n; min_s = mn; mean_s = sum /. float_of_int n; max_s = mx })
    !order

let pp_latencies ppf entries =
  match latencies entries with
  | [] -> Format.fprintf ppf "no causal chains in trace@."
  | ls ->
      Format.fprintf ppf "%-8s %7s %12s %12s %12s@." "kind" "chains" "min" "mean" "max";
      List.iter
        (fun l ->
          Format.fprintf ppf "%-8s %7d %12s %12s %12s@." l.kind l.chains
            (Format.asprintf "%a" Time.pp l.min_s)
            (Format.asprintf "%a" Time.pp l.mean_s)
            (Format.asprintf "%a" Time.pp l.max_s))
        ls
