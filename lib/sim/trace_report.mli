(** Rendering causal chains, timelines and latency summaries from trace
    entries — shared by the [trace] bin subcommand (over loaded JSONL)
    and the walkthrough examples (over live traces). *)

val chain_ids : Trace.entry list -> string list
(** Distinct trace ids, in first-appearance order. *)

val chain : Trace.entry list -> id:string -> Trace.entry list
(** Entries belonging to one chain, time-ordered (stable). *)

val kind_of_id : string -> string
(** ["claim:3:224/24"] → ["claim"]. *)

val pp_chain : Format.formatter -> Trace.entry list -> unit
(** Render a chain with children indented under their parent spans. *)

val pp_chain_for : Format.formatter -> Trace.entry list -> id:string -> unit
(** Select [id]'s chain and render it with a header. *)

val pp_timelines : Format.formatter -> Trace.entry list -> unit
(** Flat per-chain (per-group / per-prefix) timelines, every chain. *)

type latency = { kind : string; chains : int; min_s : float; mean_s : float; max_s : float }

val latencies : Trace.entry list -> latency list
(** End-to-end (first entry to last entry) chain durations, aggregated
    by chain kind, in first-appearance order. *)

val pp_latencies : Format.formatter -> Trace.entry list -> unit
