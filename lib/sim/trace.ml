type entry = {
  time : Time.t;
  actor : string;
  tag : string;
  detail : string;
  trace_id : string option;
  span : int option;
  parent : int option;
}

type sink = Unbounded | Ring of int | Jsonl of string | Null

type store =
  | S_unbounded of { mutable entries_rev : entry list }
  | S_ring of { buf : entry option array; mutable next : int }
  | S_jsonl of { path : string; mutable oc : out_channel option }
  | S_null

type t = { mutable store : store; mutable count : int; mutable on : bool }

let store_of_sink = function
  | Unbounded -> S_unbounded { entries_rev = [] }
  | Ring n ->
      if n <= 0 then invalid_arg "Trace.create: ring capacity must be positive";
      S_ring { buf = Array.make n None; next = 0 }
  | Jsonl path -> S_jsonl { path; oc = Some (open_out path) }
  | Null -> S_null

let create ?(sink = Unbounded) () = { store = store_of_sink sink; count = 0; on = true }

let sink t =
  match t.store with
  | S_unbounded _ -> Unbounded
  | S_ring r -> Ring (Array.length r.buf)
  | S_jsonl j -> Jsonl j.path
  | S_null -> Null

let close_store = function
  | S_jsonl j -> (
      match j.oc with
      | Some oc ->
          j.oc <- None;
          close_out oc
      | None -> ())
  | S_unbounded _ | S_ring _ | S_null -> ()

let set_sink t s =
  close_store t.store;
  t.store <- store_of_sink s

let close t = close_store t.store

let enabled t = t.on

let set_enabled t v = t.on <- v

(* --- JSONL encoding -------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let entry_to_json e =
  let b = Buffer.create 96 in
  Printf.bprintf b "{\"time\": %.17g, \"actor\": \"%s\", \"tag\": \"%s\", \"detail\": \"%s\""
    (Time.to_seconds e.time) (json_escape e.actor) (json_escape e.tag) (json_escape e.detail);
  (match e.trace_id with
  | Some id -> Printf.bprintf b ", \"trace_id\": \"%s\"" (json_escape id)
  | None -> ());
  (match e.span with Some s -> Printf.bprintf b ", \"span\": %d" s | None -> ());
  (match e.parent with Some p -> Printf.bprintf b ", \"parent\": %d" p | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

(* A minimal scanner for the exact shape [entry_to_json] emits: known
   keys in a fixed order, string values with backslash escapes.  The
   causality keys are optional so pre-span trace files still load. *)
let entry_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let error = ref false in
  let skip_ws () = while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then incr pos else error := true
  in
  let parse_string () =
    skip_ws ();
    if !pos >= n || line.[!pos] <> '"' then begin
      error := true;
      ""
    end
    else begin
      incr pos;
      let b = Buffer.create 16 in
      let fin = ref false in
      while (not !fin) && not !error do
        if !pos >= n then error := true
        else begin
          let c = line.[!pos] in
          incr pos;
          if c = '"' then fin := true
          else if c = '\\' then begin
            if !pos >= n then error := true
            else begin
              let e = line.[!pos] in
              incr pos;
              match e with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  if !pos + 4 <= n then begin
                    (match int_of_string_opt ("0x" ^ String.sub line !pos 4) with
                    | Some code when code < 0x100 -> Buffer.add_char b (Char.chr code)
                    | Some _ | None -> error := true);
                    pos := !pos + 4
                  end
                  else error := true
              | _ -> error := true
            end
          end
          else Buffer.add_char b c
        end
      done;
      Buffer.contents b
    end
  in
  let parse_key key =
    expect '"';
    let k = String.length key in
    if (not !error) && !pos + k + 1 <= n && String.sub line (!pos - 1) (k + 2) = "\"" ^ key ^ "\"" then
      pos := !pos + k + 1
    else error := true;
    expect ':'
  in
  let parse_float () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
    do
      incr pos
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None ->
        error := true;
        0.0
  in
  (* Try an optional trailing field; on failure rewind as if it were
     absent, so lines written before the field existed still parse. *)
  let attempt f =
    let saved = !pos in
    let v = f () in
    if !error then begin
      pos := saved;
      error := false;
      None
    end
    else Some v
  in
  expect '{';
  parse_key "time";
  let time = parse_float () in
  expect ',';
  parse_key "actor";
  let actor = parse_string () in
  expect ',';
  parse_key "tag";
  let tag = parse_string () in
  expect ',';
  parse_key "detail";
  let detail = parse_string () in
  let trace_id =
    attempt (fun () ->
        expect ',';
        parse_key "trace_id";
        parse_string ())
  in
  let parse_int key =
    attempt (fun () ->
        expect ',';
        parse_key key;
        int_of_float (parse_float ()))
  in
  let span = if trace_id = None then None else parse_int "span" in
  let parent = if span = None then None else parse_int "parent" in
  expect '}';
  if !error then None else Some { time; actor; tag; detail; trace_id; span; parent }

let load_jsonl_counted path =
  let ic = open_in path in
  let rec loop acc bad =
    match input_line ic with
    | line ->
        if String.trim line = "" then loop acc bad
        else (
          match entry_of_json line with
          | Some e -> loop (e :: acc) bad
          | None -> loop acc (bad + 1))
    | exception End_of_file -> (List.rev acc, bad)
  in
  let res = loop [] 0 in
  close_in ic;
  res

let load_jsonl path = fst (load_jsonl_counted path)

(* --- recording ------------------------------------------------------- *)

let push t e =
  match t.store with
  | S_unbounded u -> u.entries_rev <- e :: u.entries_rev
  | S_ring r ->
      r.buf.(r.next) <- Some e;
      r.next <- (r.next + 1) mod Array.length r.buf
  | S_jsonl j -> (
      match j.oc with
      | Some oc ->
          output_string oc (entry_to_json e);
          output_char oc '\n'
      | None -> ())
  | S_null -> ()

let record t ~time ~actor ~tag ?span ?trace_id detail =
  if t.on then begin
    let trace_id, span, parent =
      match span with
      | Some s -> (Some s.Span.trace_id, Some s.Span.span, s.Span.parent)
      | None -> (trace_id, None, None)
    in
    push t { time; actor; tag; detail; trace_id; span; parent };
    t.count <- t.count + 1
  end

let recordf t ~time ~actor ~tag ?span ?trace_id fmt =
  if t.on then
    Format.kasprintf (fun detail -> record t ~time ~actor ~tag ?span ?trace_id detail) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t =
  match t.store with
  | S_unbounded u -> List.rev u.entries_rev
  | S_ring r ->
      let cap = Array.length r.buf in
      let acc = ref [] in
      for i = cap - 1 downto 0 do
        match r.buf.((r.next + i) mod cap) with
        | Some e -> acc := e :: !acc
        | None -> ()
      done;
      !acc
  | S_jsonl _ | S_null -> []

let length t = t.count

let clear t =
  (match t.store with
  | S_unbounded u -> u.entries_rev <- []
  | S_ring r ->
      Array.fill r.buf 0 (Array.length r.buf) None;
      r.next <- 0
  | S_jsonl j ->
      (match j.oc with Some oc -> close_out oc | None -> ());
      j.oc <- Some (open_out j.path)
  | S_null -> ());
  t.count <- 0

let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let pp_entry ppf e = Format.fprintf ppf "[%a] %-14s %-18s %s" Time.pp e.time e.actor e.tag e.detail

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
