type event = { time : Time.t; mutable cancelled : bool; action : unit -> unit }

(* A handle owns a cancellation closure: for a plain event it flips the
   event's flag; for a periodic schedule it also stops re-arming. *)
type handle = { mutable stop : unit -> unit }

type t = { mutable clock : Time.t; queue : event Heap.t }

let create () =
  { clock = Time.zero; queue = Heap.create ~cmp:(fun a b -> Float.compare a.time b.time) }

let now t = t.clock

let schedule_event t time action =
  let e = { time; cancelled = false; action } in
  Heap.push t.queue e;
  e

let schedule_at t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g before now %g" (Time.to_seconds time)
         (Time.to_seconds t.clock));
  let e = schedule_event t time action in
  { stop = (fun () -> e.cancelled <- true) }

let schedule_after t delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (t.clock +. delay) action

let periodic t ~interval action =
  if interval <= 0.0 then invalid_arg "Engine.periodic: non-positive interval";
  let handle = { stop = (fun () -> ()) } in
  let stopped = ref false in
  let rec arm () =
    let e =
      schedule_event t (t.clock +. interval) (fun () ->
          if not !stopped then begin
            action ();
            if not !stopped then arm ()
          end)
    in
    handle.stop <-
      (fun () ->
        stopped := true;
        e.cancelled <- true)
  in
  arm ();
  handle

let cancel h = h.stop ()

let pending t = Heap.length t.queue

let step t =
  let rec loop () =
    match Heap.pop t.queue with
    | None -> false
    | Some e ->
        if e.cancelled then loop ()
        else begin
          t.clock <- e.time;
          e.action ();
          true
        end
  in
  loop ()

let run ?until t =
  match until with
  | None ->
      let rec drain () = if step t then drain () in
      drain ()
  | Some horizon ->
      let rec drain () =
        match Heap.peek t.queue with
        | None -> ()
        | Some e when e.time > horizon -> t.clock <- max t.clock horizon
        | Some _ ->
            ignore (step t);
            drain ()
      in
      drain ()

let run_until_idle t = run t
