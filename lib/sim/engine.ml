(* An event's [cancelled] flag doubles as "consumed": it is set when the
   event is cancelled AND when it fires, so the live-event accounting
   below decrements exactly once per scheduled event. *)
(* [label] buckets the event for the profiler ("net.deliver.bgp",
   "masc.sweep", ...); the default "event" keeps unlabelled call sites
   free of per-schedule string building. *)
type event = { time : Time.t; mutable cancelled : bool; label : string; action : unit -> unit }

(* A handle owns a cancellation closure: for a plain event it flips the
   event's flag; for a periodic schedule it also stops re-arming. *)
type handle = { mutable stop : unit -> unit }

(* A monitor runs a hook (invariant checks, in practice) at most once
   per [cadence] of virtual time, and once more with [~quiescent:true]
   whenever the queue drains. *)
type monitor = { cadence : Time.t; mutable last_check : Time.t; hook : quiescent:bool -> unit }

(* A sampler is the telemetry twin of the monitor: it piggybacks on
   event execution (never scheduling its own events), firing at most
   once per [every] of virtual time plus once at quiescence. *)
type sampler = { every : Time.t; mutable last_sample : Time.t; s_hook : Time.t -> unit }

type t = {
  mutable clock : Time.t;
  queue : event Heap.t;
  mutable live : int;
  (* Last state-changing event per actor class, self-reported via
     [note_activity]; the max is the convergence time of the run. *)
  watermarks : (string, Time.t) Hashtbl.t;
  mutable monitor : monitor option;
  mutable sampler : sampler option;
}

let m_scheduled = Metrics.counter "sim.events_scheduled"

let m_fired = Metrics.counter "sim.events_fired"

let m_cancelled = Metrics.counter "sim.events_cancelled"

let m_queue_max = Metrics.gauge "sim.queue_depth_max"

let m_virtual = Metrics.gauge "sim.virtual_seconds"

let create () =
  {
    clock = Time.zero;
    queue = Heap.create ~cmp:(fun a b -> Float.compare a.time b.time);
    live = 0;
    watermarks = Hashtbl.create 8;
    monitor = None;
    sampler = None;
  }

let now t = t.clock

let note_activity t cls = Hashtbl.replace t.watermarks cls t.clock

let watermarks t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.watermarks []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let converged_at t =
  Hashtbl.fold (fun _ v acc -> match acc with None -> Some v | Some m -> Some (max m v)) t.watermarks None

let set_monitor t ~cadence hook =
  if cadence <= 0.0 then invalid_arg "Engine.set_monitor: non-positive cadence";
  t.monitor <- Some { cadence; last_check = t.clock; hook }

let clear_monitor t = t.monitor <- None

let monitor_tick t =
  match t.monitor with
  | Some m when t.clock -. m.last_check >= m.cadence ->
      m.last_check <- t.clock;
      m.hook ~quiescent:false
  | Some _ | None -> ()

let monitor_quiescent t =
  match t.monitor with
  | Some m ->
      m.last_check <- t.clock;
      m.hook ~quiescent:true
  | None -> ()

let set_sampler t ~every s_hook =
  if every <= 0.0 then invalid_arg "Engine.set_sampler: non-positive cadence";
  t.sampler <- Some { every; last_sample = t.clock; s_hook }

let clear_sampler t = t.sampler <- None

let sampler_tick t =
  match t.sampler with
  | Some s when t.clock -. s.last_sample >= s.every ->
      s.last_sample <- t.clock;
      s.s_hook t.clock
  | Some _ | None -> ()

let sampler_final t =
  match t.sampler with
  | Some s ->
      s.last_sample <- t.clock;
      s.s_hook t.clock
  | None -> ()

let schedule_event t time label action =
  let e = { time; cancelled = false; label; action } in
  Heap.push t.queue e;
  t.live <- t.live + 1;
  Metrics.incr m_scheduled;
  Metrics.set_max m_queue_max (float_of_int t.live);
  e

let cancel_event t e =
  if not e.cancelled then begin
    e.cancelled <- true;
    t.live <- t.live - 1;
    Metrics.incr m_cancelled
  end

let schedule_at ?(label = "event") t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g before now %g" (Time.to_seconds time)
         (Time.to_seconds t.clock));
  let e = schedule_event t time label action in
  { stop = (fun () -> cancel_event t e) }

let schedule_after ?(label = "event") t delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at ~label t (t.clock +. delay) action

let periodic ?(label = "event") t ~interval action =
  if interval <= 0.0 then invalid_arg "Engine.periodic: non-positive interval";
  let handle = { stop = (fun () -> ()) } in
  let stopped = ref false in
  let rec arm () =
    let e =
      schedule_event t (t.clock +. interval) label (fun () ->
          if not !stopped then begin
            action ();
            if not !stopped then arm ()
          end)
    in
    handle.stop <-
      (fun () ->
        stopped := true;
        cancel_event t e)
  in
  arm ();
  handle

let cancel h = h.stop ()

let pending t = t.live

let step t =
  let rec loop () =
    match Heap.pop t.queue with
    | None -> false
    | Some e ->
        if e.cancelled then loop ()
        else begin
          (* Consume before firing so a cancel from inside the action
             (periodic self-cancel) cannot double-decrement. *)
          e.cancelled <- true;
          t.live <- t.live - 1;
          Metrics.incr m_fired;
          t.clock <- e.time;
          Metrics.set m_virtual t.clock;
          if Recorder.is_enabled () then Recorder.record ~time:t.clock ~label:e.label ();
          if Prof.is_enabled () then Prof.span e.label e.action else e.action ();
          monitor_tick t;
          sampler_tick t;
          true
        end
  in
  loop ()

let run ?until t =
  match until with
  | None ->
      let rec drain () = if step t then drain () in
      drain ();
      monitor_quiescent t;
      sampler_final t
  | Some horizon ->
      let rec drain () =
        match Heap.peek t.queue with
        | None ->
            monitor_quiescent t;
            sampler_final t
        | Some e when e.time > horizon ->
            t.clock <- max t.clock horizon;
            Metrics.set m_virtual t.clock;
            sampler_final t
        | Some _ ->
            ignore (step t);
            drain ()
      in
      drain ()

let run_until_idle t = run t

let run_until_quiescent ~grace t =
  if grace <= 0.0 then invalid_arg "Engine.run_until_quiescent: non-positive grace";
  let quiet_until () =
    (match converged_at t with Some w -> w | None -> t.clock) +. grace
  in
  let rec drain () =
    match Heap.peek t.queue with
    | None -> ()
    | Some e when e.cancelled ->
        (* Cancelled events drain lazily; skip them here so a stale
           timestamp cannot end the run early. *)
        ignore (Heap.pop t.queue);
        drain ()
    | Some e when e.time > quiet_until () ->
        (* Everything still queued lies beyond the quiet window: no
           actor has reported a state change for [grace] of virtual
           time, so what remains is periodic housekeeping. *)
        ()
    | Some _ ->
        ignore (step t);
        drain ()
  in
  drain ();
  monitor_quiescent t;
  sampler_final t
