(** Structured event tracing.

    Protocol entities append tagged records as they act; tests assert on
    the recorded sequence and the examples print it as a narrative of the
    run (the Figure 1/3 walkthroughs are rendered from traces).

    Where records go is a pluggable {!sink}: the default unbounded
    in-memory store, a bounded ring buffer that keeps only the newest
    entries, a JSONL file stream for large runs, or a null sink that
    drops (but counts) records.  Every record accepted while the trace
    is enabled increments {!length}, whatever the sink retains. *)

type entry = {
  time : Time.t;
  actor : string;
  tag : string;
  detail : string;
  trace_id : string option;  (** causal chain this entry belongs to *)
  span : int option;  (** span id within the chain *)
  parent : int option;  (** parent span id within the chain *)
}

type sink =
  | Unbounded  (** keep every entry in memory (the default) *)
  | Ring of int  (** keep only the newest [n] entries; [n > 0] *)
  | Jsonl of string  (** stream entries as JSON lines to the file *)
  | Null  (** count records but retain nothing *)

type t

val create : ?sink:sink -> unit -> t
(** @raise Invalid_argument on [Ring n] with [n <= 0]. *)

val sink : t -> sink

val set_sink : t -> sink -> unit
(** Replace the sink, dropping anything the old sink retained (a
    replaced [Jsonl] sink's channel is flushed and closed). *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Disabled traces drop records (used by the large Figure-2 runs). *)

val record :
  t -> time:Time.t -> actor:string -> tag:string -> ?span:Span.t -> ?trace_id:string -> string -> unit
(** [?span] stamps the entry with the span's trace id, span id and
    parent; [?trace_id] alone links an entry to a chain without a span
    of its own (invariant violations do this).  [?span] wins when both
    are given. *)

val recordf :
  t ->
  time:Time.t ->
  actor:string ->
  tag:string ->
  ?span:Span.t ->
  ?trace_id:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Format-string convenience; when the trace is disabled the arguments
    are consumed without any formatting work. *)

val entries : t -> entry list
(** Oldest first.  What the sink retained: everything ([Unbounded]),
    the newest window ([Ring]), nothing ([Jsonl], [Null]). *)

val length : t -> int
(** Total records accepted since creation or {!clear}, independent of
    how many the sink retained. *)

val clear : t -> unit
(** Reset the count and drop retained entries ([Jsonl] truncates and
    restarts its file). *)

val close : t -> unit
(** Flush and close a [Jsonl] sink's channel; a no-op otherwise.
    Recording after [close] silently drops. *)

val find : t -> tag:string -> entry list
(** All retained entries with the given tag, oldest first. *)

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> t -> unit
(** The full retained trace, one entry per line. *)

(** {1 JSONL} *)

val entry_to_json : entry -> string
(** One JSON object, no trailing newline:
    [{"time": t, "actor": ..., "tag": ..., "detail": ...}] plus
    [trace_id]/[span]/[parent] when present. *)

val entry_of_json : string -> entry option
(** Parse a line produced by {!entry_to_json}; lines written before the
    causality fields existed parse with those fields [None]. *)

val load_jsonl : string -> entry list
(** Read a file written by a [Jsonl] sink back into entries (lines that
    do not parse are skipped). *)

val load_jsonl_counted : string -> entry list * int
(** Like {!load_jsonl}, also returning how many malformed non-blank
    lines were skipped — callers surface the count so a truncated file
    is loud rather than silently shorter. *)
