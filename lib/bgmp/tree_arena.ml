type handle = int

type t = {
  n : int;
  refs : Packed_map.t;  (* (group * n + node) -> refcount *)
  counts : int array;  (* per-router live entry count *)
  mutable pool : int array;  (* recorded paths: [group; len; nodes...] *)
  mutable pool_len : int;
}

let create ?(initial = 16) ~domains () =
  if domains < 1 then invalid_arg "Tree_arena.create: need at least one domain";
  {
    n = domains;
    refs = Packed_map.create ~initial ();
    counts = Array.make domains 0;
    pool = Array.make 1024 0;
    pool_len = 0;
  }

let domains t = t.n

let key t group node = (group * t.n) + node

let pool_reserve t extra =
  let need = t.pool_len + extra in
  if need > Array.length t.pool then begin
    let cap = ref (2 * Array.length t.pool) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let grown = Array.make !cap 0 in
    Array.blit t.pool 0 grown 0 t.pool_len;
    t.pool <- grown
  end

let incr_ref t group node =
  let k = key t group node in
  let r = Packed_map.find t.refs k in
  if r < 0 then begin
    Packed_map.set t.refs k 1;
    t.counts.(node) <- t.counts.(node) + 1
  end
  else Packed_map.set t.refs k (r + 1)

let decr_ref t group node =
  let k = key t group node in
  let r = Packed_map.find t.refs k in
  if r <= 1 then begin
    Packed_map.remove t.refs k;
    t.counts.(node) <- t.counts.(node) - 1
  end
  else Packed_map.set t.refs k (r - 1)

let join t ~group ~path =
  if group < 0 then invalid_arg "Tree_arena.join: negative group";
  let len = Array.length path in
  if len = 0 then invalid_arg "Tree_arena.join: empty path";
  Array.iter
    (fun v -> if v < 0 || v >= t.n then invalid_arg "Tree_arena.join: node out of range")
    path;
  pool_reserve t (len + 2);
  let h = t.pool_len in
  t.pool.(h) <- group;
  t.pool.(h + 1) <- len;
  Array.blit path 0 t.pool (h + 2) len;
  t.pool_len <- t.pool_len + len + 2;
  for i = 0 to len - 1 do
    incr_ref t group path.(i)
  done;
  h

let leave t ~group (h : handle) =
  if h < 0 || h + 2 > t.pool_len then invalid_arg "Tree_arena.leave: bad handle";
  if t.pool.(h) <> group || t.pool.(h + 1) <= 0 then
    invalid_arg "Tree_arena.leave: handle spent or group mismatch";
  let len = t.pool.(h + 1) in
  for i = 0 to len - 1 do
    decr_ref t group t.pool.(h + 2 + i)
  done;
  (* spend the handle: a second leave of the same receipt must not
     corrupt refcounts silently *)
  t.pool.(h + 1) <- -len

let entries t = Packed_map.length t.refs

let node_entries t node =
  if node < 0 || node >= t.n then invalid_arg "Tree_arena: unknown node id";
  t.counts.(node)

let refs t ~group ~node =
  if node < 0 || node >= t.n then invalid_arg "Tree_arena: unknown node id";
  match Packed_map.find t.refs (key t group node) with -1 -> 0 | r -> r

let storage_words t = (2 * Packed_map.capacity t.refs) + t.n + Array.length t.pool
