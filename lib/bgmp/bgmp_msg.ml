type t =
  | Join of { group : Ipv4.t; span : Span.t option }
  | Prune of Ipv4.t
  | Join_sg of { source : Host_ref.t; group : Ipv4.t }
  | Prune_sg of { source : Host_ref.t; group : Ipv4.t }
  | Data of { group : Ipv4.t; source : Host_ref.t; payload : int; hops : int }

let pp ppf = function
  | Join { group; span = _ } -> Format.fprintf ppf "join %a" Ipv4.pp group
  | Prune g -> Format.fprintf ppf "prune %a" Ipv4.pp g
  | Join_sg { source; group } -> Format.fprintf ppf "join (%a,%a)" Host_ref.pp source Ipv4.pp group
  | Prune_sg { source; group } ->
      Format.fprintf ppf "prune (%a,%a)" Host_ref.pp source Ipv4.pp group
  | Data { group; source; payload; hops } ->
      Format.fprintf ppf "data %a from %a #%d (%d hops)" Ipv4.pp group Host_ref.pp source payload
        hops
