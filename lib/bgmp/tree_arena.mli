(** Arena-backed BGMP tree state for dense group/domain ids.

    {!Bgmp_router} models one router's protocol behavior with per-entry
    records (joined parent, (S,G) lists, timers).  At fig4-modern scale
    — 75k domains, 10⁵ groups, hundreds of thousands of membership
    events — per-router forwarding state must be two int arrays, not a
    record heap.  Each (group, node) pair on some member's path to the
    group root holds one packed refcount; a node's entry count is the
    classic "multicast forwarding entries per router" state axis.

    Joins record the exact path they installed (as a segment in a flat
    int pool) and {!leave} tears down that recorded path, so membership
    stays balanced even when SPF trees were repaired between the join
    and the leave — the incremental-routing analogue of BGMP's rule
    that a prune must retrace the join it cancels. *)

type t

type handle = int
(** Receipt for one {!join}, to be passed to {!leave} exactly once. *)

val create : ?initial:int -> domains:int -> unit -> t
(** [initial] hints the expected live (group, node) entry count. *)

val domains : t -> int

val join : t -> group:int -> path:Domain.id array -> handle
(** Install one member whose packets travel [path] (member end to tree
    end, inclusive; order is irrelevant): every node on the path gains
    a reference to [group], creating the forwarding entry where the
    count was zero.  The path is copied into the arena's pool.
    @raise Invalid_argument on an empty path, a node out of range, or a
    negative group. *)

val leave : t -> group:int -> handle -> unit
(** Remove the member installed by the matching {!join}, decrementing
    along the path recorded then (not the path SPF would give now).
    Entries reaching zero references are freed.
    @raise Invalid_argument when the handle was already spent. *)

val entries : t -> int
(** Live (group, node) forwarding entries across all routers. *)

val node_entries : t -> int -> int
(** Forwarding entries at this router. *)

val refs : t -> group:int -> node:int -> int
(** Reference count of one entry; [0] when absent. *)

val storage_words : t -> int
(** Words held by the arena's flat arrays (entry table + per-router
    counts + path pool). *)
