type root_route = Root_here | Via of Domain.id | Unroutable

let m_ctl_msgs = Metrics.counter "bgmp.ctl_msgs_sent"
let m_data_msgs = Metrics.counter "bgmp.data_msgs_sent"

type config = { branching : bool }

let default_config = { branching = true }

type t = {
  engine : Engine.t;
  topo : Topo.t;
  net : Net.t;
  cfg : config;
  route_to_root : Domain.id -> Ipv4.t -> root_route;
  trace : Trace.t option;
  span_of_group : Domain.id -> Ipv4.t -> Span.t option;
      (** causal span of the G-RIB route a domain uses for a group, so
          joins continue the originating claim's chain *)
  migps : Migp.t array;
  routers : Bgmp_router.t array;
  domain_routers : int list array;  (** router ids per domain *)
  router_neighbor : Domain.id array;  (** the domain across router i's link *)
  mutable peer_chan : Bgmp_msg.t Net.channel array;
      (** router i's transport lane to its external peer across the link *)
  toward_tbl : (Domain.id * Domain.id, int) Hashtbl.t;  (** (dom, neighbor) -> router id *)
  ucast_cache : (Domain.id, Spf.paths) Hashtbl.t;  (** BFS from a target domain *)
  delivered : (int, (Host_ref.t * int) list ref) Hashtbl.t;
  seen : (int * Host_ref.t, unit) Hashtbl.t;
  payload_spans : (int, Span.t) Hashtbl.t;
      (** causal span a payload travels under, kept only for payloads
          sent with one (probes under an attached trace) *)
  mutable on_delivery :
    (group:Ipv4.t -> source:Host_ref.t -> payload:int -> host:Host_ref.t -> hops:int -> unit)
    option;
  mutable dup_count : int;
  mutable next_payload : int;
  mutable ctl_msgs : int;
  mutable data_msgs : int;
  (* Data-plane instruments, created per fabric (find-or-create by
     name) so fabric-free runs keep their metric key sets unchanged. *)
  m_data_delivered : Metrics.counter;
  m_data_dup : Metrics.counter;
  m_data_dropped : Metrics.counter;
  m_ctl_dropped : Metrics.counter;
}

let peer_of rid = rid lxor 1

let ftrace t actor tag ?span fmt =
  Format.kasprintf
    (fun detail ->
      match t.trace with
      | Some tr -> Trace.record tr ~time:(Engine.now t.engine) ~actor ~tag ?span detail
      | None -> ())
    fmt

(* The trace id a group's causal chain lives under: the originating
   claim's when a G-RIB route (with span) exists, else the group's own. *)
let group_trace_id t dom group =
  match t.span_of_group dom group with
  | Some s -> s.Span.trace_id
  | None -> Span.group_id (Ipv4.to_string group)

(* The span a fresh join minted at [dom] starts from. *)
let join_root_span t dom group =
  match t.span_of_group dom group with
  | Some route_span -> Span.child route_span
  | None -> Span.root (Span.group_id (Ipv4.to_string group))

(* Unicast next hop from [dom] toward [target_dom]: predecessor pointers
   of a BFS rooted at the target (memoized per target). *)
let ucast_next_hop t ~from ~target =
  if from = target then None
  else begin
    let paths =
      match Hashtbl.find_opt t.ucast_cache target with
      | Some p -> p
      | None ->
          let p = Spf.bfs t.topo target in
          Hashtbl.replace t.ucast_cache target p;
          p
    in
    Spf.next_hop_toward t.topo paths from
  end

let router_toward_id t dom neighbor = Hashtbl.find_opt t.toward_tbl (dom, neighbor)

(* The border router a domain uses to reach the root of [group]. *)
let exit_router_for_group t dom group =
  match t.route_to_root dom group with
  | Root_here | Unroutable -> None
  | Via nd -> router_toward_id t dom nd

(* The border router on the unicast shortest path toward a domain. *)
let exit_router_for_domain t dom target =
  match ucast_next_hop t ~from:dom ~target with
  | None -> None
  | Some nd -> router_toward_id t dom nd

(* Does the domain's interior still need the group once [excluding]
   (typically the exit router being pruned) is set aside?  Interior
   interest = local members, or another border router whose shared-tree
   parent runs through the MIGP (a transit branch like C4 serving a
   customer domain). *)
let interior_interest t dom group ~excluding =
  Migp.has_members t.migps.(dom) ~group
  || List.exists
       (fun rid ->
         rid <> excluding
         &&
         match Bgmp_router.star_entry t.routers.(rid) group with
         | Some e -> e.Bgmp_router.parent = Some Bgmp_router.Migp_target
         | None -> false)
       t.domain_routers.(dom)

let classify_root_for t rid group =
  let dom = Bgmp_router.domain t.routers.(rid) in
  match t.route_to_root dom group with
  | Root_here -> Bgmp_router.Root_here
  | Unroutable -> Bgmp_router.Unroutable
  | Via nd -> (
      if t.router_neighbor.(rid) = nd then Bgmp_router.External (peer_of rid)
      else
        match router_toward_id t dom nd with
        | Some exit -> Bgmp_router.Internal exit
        | None -> Bgmp_router.Unroutable)

let classify_source_for t rid source_dom =
  let dom = Bgmp_router.domain t.routers.(rid) in
  if dom = source_dom then Bgmp_router.Root_here
  else
    match ucast_next_hop t ~from:dom ~target:source_dom with
    | None -> Bgmp_router.Unroutable
    | Some nd -> (
        if t.router_neighbor.(rid) = nd then Bgmp_router.External (peer_of rid)
        else
          match router_toward_id t dom nd with
          | Some exit -> Bgmp_router.Internal exit
          | None -> Bgmp_router.Unroutable)

(* ------------------------------------------------------------------ *)
(* Action execution                                                    *)
(* ------------------------------------------------------------------ *)

let record_delivery t ~group ~source ~payload ~host ~hops =
  if Hashtbl.mem t.seen (payload, host) then begin
    t.dup_count <- t.dup_count + 1;
    Metrics.incr t.m_data_dup
  end
  else begin
    Hashtbl.replace t.seen (payload, host) ();
    Metrics.incr t.m_data_delivered;
    let cell =
      match Hashtbl.find_opt t.delivered payload with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace t.delivered payload c;
          c
    in
    cell := !cell @ [ (host, hops) ];
    match t.on_delivery with
    | Some f -> f ~group ~source ~payload ~host ~hops
    | None -> ()
  end

let rec exec_actions t rid actions = List.iter (exec_action t rid) actions

and exec_action t rid action =
  match action with
  | Bgmp_router.To_peer (_, msg) ->
      (match msg with
      | Bgmp_msg.Data _ ->
          t.data_msgs <- t.data_msgs + 1;
          Metrics.incr m_data_msgs
      | Bgmp_msg.Join _ | Bgmp_msg.Prune _ | Bgmp_msg.Join_sg _ | Bgmp_msg.Prune_sg _ ->
          t.ctl_msgs <- t.ctl_msgs + 1;
          Metrics.incr m_ctl_msgs);
      (* The peer target is always the external peer across router
         [rid]'s link — exactly where its fixed transport lane goes. *)
      let span =
        match msg with
        | Bgmp_msg.Join { span; _ } -> span
        | Bgmp_msg.Data { payload; _ } ->
            if Hashtbl.length t.payload_spans = 0 then None
            else Hashtbl.find_opt t.payload_spans payload
        | Bgmp_msg.Prune _ | Bgmp_msg.Join_sg _ | Bgmp_msg.Prune_sg _ -> None
      in
      Net.send t.peer_chan.(rid) ?span msg
  | Bgmp_router.Migp_join { group; span } -> (
      let dom = Bgmp_router.domain t.routers.(rid) in
      match exit_router_for_group t dom group with
      | Some exit when exit <> rid ->
          Engine.note_activity t.engine "bgmp";
          ftrace t (Bgmp_router.name t.routers.(exit)) "join-hop" ?span "%a via interior"
            Ipv4.pp group;
          exec_actions t exit
            (Bgmp_router.handle_join t.routers.(exit) ~group ?span ~from:Bgmp_router.Migp_target)
      | Some _ | None -> ())
  | Bgmp_router.Migp_prune group -> (
      let dom = Bgmp_router.domain t.routers.(rid) in
      match exit_router_for_group t dom group with
      | Some exit when exit <> rid && not (interior_interest t dom group ~excluding:exit) ->
          exec_actions t exit
            (Bgmp_router.handle_prune t.routers.(exit) ~group ~from:Bgmp_router.Migp_target)
      | Some _ | None -> ())
  | Bgmp_router.To_internal (peer_rid, msg) ->
      (* Intra-domain hand-off between internal BGMP peers: immediate
         (interior latency is below our modelling grain) and addressed,
         not flooded. *)
      dispatch_internal_msg t ~to_:peer_rid ~from_rid:rid msg
  | Bgmp_router.Migp_data { group; source; payload; hops } ->
      internal_distribute t
        ~dom:(Bgmp_router.domain t.routers.(rid))
        ~entry:(Some rid) ~group ~source ~payload ~hops

and dispatch_internal_msg t ~to_ ~from_rid msg =
  let router = t.routers.(to_) in
  let from = Bgmp_router.Internal_router from_rid in
  let actions =
    match msg with
    | Bgmp_msg.Join { group; span } ->
        Engine.note_activity t.engine "bgmp";
        ftrace t (Bgmp_router.name router) "join-hop" ?span "%a from %s" Ipv4.pp group
          (Bgmp_router.name t.routers.(from_rid));
        Bgmp_router.handle_join router ~group ?span ~from
    | Bgmp_msg.Prune group ->
        Engine.note_activity t.engine "bgmp";
        Bgmp_router.handle_prune router ~group ~from
    | Bgmp_msg.Join_sg { source; group } ->
        Engine.note_activity t.engine "bgmp";
        Bgmp_router.handle_join_sg router ~source ~group ~from
    | Bgmp_msg.Prune_sg { source; group } ->
        Engine.note_activity t.engine "bgmp";
        Bgmp_router.handle_prune_sg router ~source ~group ~from
    | Bgmp_msg.Data { group; source; payload; hops } ->
        if Bgmp_router.sg_entry router source group = None && not (Bgmp_router.on_tree router group)
        then
          (* Stale chain: the receiver lost its state; tell the sender to
             stop instead of default-forwarding source traffic. *)
          [ Bgmp_router.To_internal (from_rid, Bgmp_msg.Prune_sg { source; group }) ]
        else Bgmp_router.handle_data router ~group ~source ~payload ~hops ~from
  in
  exec_actions t to_ actions

and dispatch_peer_msg t ~to_ ~from_rid msg =
  let router = t.routers.(to_) in
  let from = Bgmp_router.Peer from_rid in
  let actions =
    match msg with
    | Bgmp_msg.Join { group; span } ->
        Engine.note_activity t.engine "bgmp";
        ftrace t (Bgmp_router.name router) "join-hop" ?span "%a from %s" Ipv4.pp group
          (Bgmp_router.name t.routers.(from_rid));
        Bgmp_router.handle_join router ~group ?span ~from
    | Bgmp_msg.Prune group ->
        Engine.note_activity t.engine "bgmp";
        Bgmp_router.handle_prune router ~group ~from
    | Bgmp_msg.Join_sg { source; group } ->
        Engine.note_activity t.engine "bgmp";
        Bgmp_router.handle_join_sg router ~source ~group ~from
    | Bgmp_msg.Prune_sg { source; group } ->
        Engine.note_activity t.engine "bgmp";
        Bgmp_router.handle_prune_sg router ~source ~group ~from
    | Bgmp_msg.Data { group; source; payload; hops } ->
        (* The inter-domain hop count ticks here: a peer arrival is the
           one place a packet crosses a domain boundary. *)
        let forward () =
          Bgmp_router.handle_data router ~group ~source ~payload ~hops:(hops + 1) ~from
        in
        if Prof.is_enabled () then Prof.span "bgmp.data.forward" forward else forward ()
  in
  exec_actions t to_ actions

(* Distribute a packet inside a domain: deliver to local members, apply
   the MIGP's RPF/encapsulation behaviour, and hand copies to the border
   routers that need them (§5.2).  [entry = None] means the packet
   originates at a local host. *)
and internal_distribute t ~dom ~entry ~group ~source ~payload ~hops =
  if Prof.is_enabled () then
    Prof.span "bgmp.data.distribute" (fun () ->
        internal_distribute_impl t ~dom ~entry ~group ~source ~payload ~hops)
  else internal_distribute_impl t ~dom ~entry ~group ~source ~payload ~hops

and internal_distribute_impl t ~dom ~entry ~group ~source ~payload ~hops =
  let migp = t.migps.(dom) in
  let style = Migp.style migp in
  let members = Migp.members migp ~group in
  let source_local = source.Host_ref.host_domain = dom in
  (* Interior RPF toward a LOCAL source: a packet of our own source
     re-entering from a border router fails every interior RPF check
     (the source's interfaces point the other way) and is dropped —
     everything inside was already served at the original injection.
     Without this, a source-specific branch crossing back into the
     source domain would cycle tree and branch forever. *)
  if source_local && entry <> None then ()
  else begin
  (* RPF handling for strict MIGPs: data that entered at the wrong
     border router is tunnelled to the RPF router (counted), which may
     then grow a source-specific branch to stop the encapsulation. *)
  if
    members <> [] && (not source_local) && Migp.strict_rpf style
    && t.cfg.branching
  then begin
    match (entry, exit_router_for_domain t dom source.Host_ref.host_domain) with
    | Some entry_rid, Some rpf_rid when entry_rid <> rpf_rid ->
        Migp.note_encapsulation migp;
        exec_actions t rpf_rid
          (Bgmp_router.initiate_branch t.routers.(rpf_rid) ~source ~group
             ~shared_entry_router:entry_rid)
    | (Some _ | None), (Some _ | None) -> ()
  end
  else if members <> [] && (not source_local) && Migp.strict_rpf style then begin
    match (entry, exit_router_for_domain t dom source.Host_ref.host_domain) with
    | Some entry_rid, Some rpf_rid when entry_rid <> rpf_rid -> Migp.note_encapsulation migp
    | (Some _ | None), (Some _ | None) -> ()
  end;
  List.iter (fun h -> record_delivery t ~group ~source ~payload ~host:h ~hops) members;
  (* Which border routers get a copy from the interior. *)
  let interested rid =
    let r = t.routers.(rid) in
    Bgmp_router.on_tree r group || Bgmp_router.sg_entry r source group <> None
    || classify_root_for t rid group = Bgmp_router.External (peer_of rid)
  in
  let border_targets =
    if Migp.floods_data style then begin
      let all = List.filter (fun rid -> Some rid <> entry) t.domain_routers.(dom) in
      Migp.note_flood_delivery migp (List.length all);
      List.iter (fun rid -> if not (interested rid) then Migp.note_internal_prune migp) all;
      all
    end
    else List.filter (fun rid -> Some rid <> entry && interested rid) t.domain_routers.(dom)
  in
    List.iter
      (fun rid ->
        exec_actions t rid
          (Bgmp_router.handle_data t.routers.(rid) ~group ~source ~payload ~hops
             ~from:Bgmp_router.Migp_target))
      border_targets
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ~engine ~topo ?net ?(config = default_config) ?(migp_style = fun _ -> Migp.Dvmrp)
    ?trace ?(span_of_group = fun _ _ -> None) ~route_to_root () =
  let net = match net with Some n -> n | None -> Net.create ~engine ?trace () in
  let n = Topo.domain_count topo in
  let links = Topo.links topo in
  let router_count = 2 * List.length links in
  let migps = Array.init n (fun d -> Migp.create (migp_style d) ~domain:d) in
  let domain_routers = Array.make n [] in
  let router_neighbor = Array.make router_count (-1) in
  let router_delay = Array.make router_count Time.zero in
  let toward_tbl = Hashtbl.create router_count in
  let per_domain_counter = Array.make n 0 in
  let routers =
    Array.make router_count (Bgmp_router.create ~id:0 ~domain:0 ~name:"placeholder")
  in
  List.iteri
    (fun k (l : Topo.link) ->
      let make_end rid dom other =
        per_domain_counter.(dom) <- per_domain_counter.(dom) + 1;
        let name =
          Printf.sprintf "%s%d" (Topo.domain topo dom).Domain.name per_domain_counter.(dom)
        in
        routers.(rid) <- Bgmp_router.create ~id:rid ~domain:dom ~name;
        domain_routers.(dom) <- domain_routers.(dom) @ [ rid ];
        router_neighbor.(rid) <- other;
        router_delay.(rid) <- l.Topo.delay;
        Hashtbl.replace toward_tbl (dom, other) rid
      in
      make_end (2 * k) l.Topo.a l.Topo.b;
      make_end ((2 * k) + 1) l.Topo.b l.Topo.a)
    links;
  let t =
    {
      engine;
      topo;
      net;
      cfg = config;
      route_to_root;
      trace;
      span_of_group;
      migps;
      routers;
      domain_routers;
      router_neighbor;
      peer_chan = [||];
      toward_tbl;
      ucast_cache = Hashtbl.create 16;
      delivered = Hashtbl.create 64;
      seen = Hashtbl.create 256;
      payload_spans = Hashtbl.create 16;
      on_delivery = None;
      dup_count = 0;
      next_payload = 0;
      ctl_msgs = 0;
      data_msgs = 0;
      m_data_delivered = Metrics.counter "bgmp.data.delivered";
      m_data_dup = Metrics.counter "bgmp.data.duplicates";
      m_data_dropped = Metrics.counter "bgmp.data.dropped";
      m_ctl_dropped = Metrics.counter "bgmp.ctl.dropped";
    }
  in
  Array.iteri
    (fun rid router ->
      Bgmp_router.set_classify_root router (fun group -> classify_root_for t rid group);
      Bgmp_router.set_classify_source router (fun sd -> classify_source_for t rid sd))
    routers;
  (* One transport lane per router, to its external peer across the
     link (delivered there as coming from [rid]). *)
  let classify_drop msg =
    match msg with
    | Bgmp_msg.Data _ -> Metrics.incr t.m_data_dropped
    | Bgmp_msg.Join _ | Bgmp_msg.Prune _ | Bgmp_msg.Join_sg _ | Bgmp_msg.Prune_sg _ ->
        Metrics.incr t.m_ctl_dropped
  in
  t.peer_chan <-
    Array.init router_count (fun rid ->
        let ch =
          Net.channel net ~protocol:"bgmp"
            ~src:(Bgmp_router.domain routers.(rid))
            ~dst:router_neighbor.(rid) ~delay:router_delay.(rid)
            ~recv:(fun msg -> dispatch_peer_msg t ~to_:(peer_of rid) ~from_rid:rid msg)
        in
        Net.set_on_drop ch classify_drop;
        ch);
  (* Domain-Wide-Report wiring: first member in a domain sends a join
     via the best exit router; last member leaving sends the prune. *)
  Array.iteri
    (fun dom migp ->
      Migp.set_on_group_active migp (fun ~group ~active ->
          (match exit_router_for_group t dom group with
          | None -> ()
          | Some exit ->
              let router = t.routers.(exit) in
              if active then begin
                (* A Domain-Wide Report starts a join chain: continue the
                   G-RIB route's causal chain when one is known. *)
                let span = join_root_span t dom group in
                Engine.note_activity t.engine "bgmp";
                ftrace t
                  (Printf.sprintf "bgmp-d%d" dom)
                  "join" ~span "%a via %s" Ipv4.pp group (Bgmp_router.name router);
                exec_actions t exit
                  (Bgmp_router.handle_join router ~group ~span ~from:Bgmp_router.Migp_target)
              end
              else if not (interior_interest t dom group ~excluding:exit) then begin
                Engine.note_activity t.engine "bgmp";
                exec_actions t exit
                  (Bgmp_router.handle_prune router ~group ~from:Bgmp_router.Migp_target)
              end);
          (* Last member gone: tear down the (S,G) branches this domain's
             routers grew on the members' behalf, so no orphaned branch
             keeps pulling (or re-injecting) the sources' traffic. *)
          if (not active) && not (Migp.has_members migp ~group) then
            List.iter
              (fun rid ->
                let router = t.routers.(rid) in
                List.iter
                  (fun (source, (v : Bgmp_router.sg_view)) ->
                    if
                      List.exists
                        (Bgmp_router.target_equal Bgmp_router.Migp_target)
                        v.Bgmp_router.view_added
                    then
                      exec_actions t rid
                        (Bgmp_router.handle_prune_sg router ~source ~group
                           ~from:Bgmp_router.Migp_target))
                  (Bgmp_router.sg_for_group router group);
                (* With the branches gone, stale negative state at this
                   domain's on-tree routers would starve remaining transit
                   customers of the sources' shared-tree copies: lift it. *)
                List.iter
                  (fun (source, (v : Bgmp_router.sg_view)) ->
                    if v.Bgmp_router.view_removed <> [] || v.Bgmp_router.view_targets = [] then
                      exec_actions t rid
                        (Bgmp_router.cancel_suppression router ~source ~group))
                  (Bgmp_router.sg_for_group router group))
              t.domain_routers.(dom)))
    migps;
  t

let host_join t ~host ~group =
  Migp.host_join t.migps.(host.Host_ref.host_domain) ~group ~host

let host_leave t ~host ~group =
  Migp.host_leave t.migps.(host.Host_ref.host_domain) ~group ~host

let next_payload_id t = t.next_payload

let send ?span t ~source ~group =
  let payload = t.next_payload in
  t.next_payload <- t.next_payload + 1;
  (match span with Some s -> Hashtbl.replace t.payload_spans payload s | None -> ());
  internal_distribute t ~dom:source.Host_ref.host_domain ~entry:None ~group ~source ~payload
    ~hops:0;
  payload

let set_on_delivery t f = t.on_delivery <- f

let group_span t dom group = join_root_span t dom group

let deliveries t ~payload =
  match Hashtbl.find_opt t.delivered payload with
  | Some cell -> !cell
  | None -> []

let forget_payload t ~payload =
  (match Hashtbl.find_opt t.delivered payload with
  | Some cell -> List.iter (fun (h, _) -> Hashtbl.remove t.seen (payload, h)) !cell
  | None -> ());
  Hashtbl.remove t.delivered payload;
  Hashtbl.remove t.payload_spans payload

let duplicate_deliveries t = t.dup_count

let migp_of t dom = t.migps.(dom)

let routers_of t dom = List.map (fun rid -> t.routers.(rid)) t.domain_routers.(dom)

let router_toward t dom neighbor =
  Option.map (fun rid -> t.routers.(rid)) (router_toward_id t dom neighbor)

let tree_domains t ~group =
  let doms = ref [] in
  Array.iteri
    (fun dom rids ->
      if List.exists (fun rid -> Bgmp_router.on_tree t.routers.(rid) group) rids then
        doms := dom :: !doms)
    t.domain_routers;
  List.sort compare !doms

let net t = t.net

let fail_link t a b =
  if Topo.link_between t.topo a b = None then invalid_arg "Bgmp_fabric.fail_link: no such link";
  Net.fail_link t.net a b

let restore_link t a b = Net.restore_link t.net a b

let active_groups t =
  let acc = Hashtbl.create 8 in
  Array.iter
    (fun r -> List.iter (fun g -> Hashtbl.replace acc g ()) (Bgmp_router.star_groups r))
    t.routers;
  Array.iter (fun m -> List.iter (fun g -> Hashtbl.replace acc g ()) (Migp.groups m)) t.migps;
  List.sort compare (Hashtbl.fold (fun g () l -> g :: l) acc [])

let rebuild_group t ~group =
  Array.iter (fun r -> Bgmp_router.clear_group r group) t.routers;
  Engine.note_activity t.engine "bgmp";
  Array.iteri
    (fun dom migp ->
      if Migp.has_members migp ~group then
        match exit_router_for_group t dom group with
        | Some exit ->
            let span = join_root_span t dom group in
            ftrace t
              (Printf.sprintf "bgmp-d%d" dom)
              "join" ~span "%a rebuild via %s" Ipv4.pp group
              (Bgmp_router.name t.routers.(exit));
            exec_actions t exit
              (Bgmp_router.handle_join t.routers.(exit) ~group ~span
                 ~from:Bgmp_router.Migp_target)
        | None -> ())
    t.migps

let control_messages t = t.ctl_msgs

let data_messages t = t.data_msgs

(* ------------------------------------------------------------------ *)
(* Live invariants                                                     *)
(* ------------------------------------------------------------------ *)

(* The next router a (star,G) parent pointer leads to; [None] when the
   pointer terminates inside this domain (root reached, or nothing
   further to forward to). *)
let parent_hop t rid group =
  match Bgmp_router.star_entry t.routers.(rid) group with
  | None -> None
  | Some e -> (
      match e.Bgmp_router.parent with
      | None -> None
      | Some (Bgmp_router.Peer p) -> Some p
      | Some (Bgmp_router.Internal_router r) -> Some r
      | Some Bgmp_router.Migp_target -> (
          let dom = Bgmp_router.domain t.routers.(rid) in
          match exit_router_for_group t dom group with
          | Some exit when exit <> rid -> Some exit
          | Some _ | None -> None))

let tree_violations t ~quiescent =
  let violations = ref [] in
  let add group fmt =
    Format.kasprintf
      (fun detail -> violations := (detail, Some (group_trace_id t 0 group)) :: !violations)
      fmt
  in
  let router_count = Array.length t.routers in
  List.iter
    (fun group ->
      let on_tree rid = Bgmp_router.on_tree t.routers.(rid) group in
      (* Acyclicity: following parent pointers from any on-tree router
         must terminate within [router_count] hops. *)
      Array.iteri
        (fun rid _ ->
          if on_tree rid then begin
            let steps = ref 0 and cur = ref (Some rid) in
            while !cur <> None && !steps <= router_count do
              incr steps;
              cur := parent_hop t (Option.get !cur) group
            done;
            if !cur <> None then
              add group "tree cycle for %a via parent pointers from %s" Ipv4.pp group
                (Bgmp_router.name t.routers.(rid))
          end)
        t.routers;
      if quiescent then begin
        (* Parent/child symmetry across peer links: a join sent upstream
           must have been installed as a child at the upstream peer. *)
        Array.iteri
          (fun rid _ ->
            match Bgmp_router.star_entry t.routers.(rid) group with
            | Some { Bgmp_router.parent = Some (Bgmp_router.Peer p); _ } -> (
                match Bgmp_router.star_entry t.routers.(p) group with
                | Some up
                  when List.exists
                         (Bgmp_router.target_equal (Bgmp_router.Peer rid))
                         up.Bgmp_router.children ->
                    ()
                | Some _ | None ->
                    add group "%s's parent %s lacks the matching child entry for %a"
                      (Bgmp_router.name t.routers.(rid))
                      (Bgmp_router.name t.routers.(p))
                      Ipv4.pp group)
            | Some _ | None -> ())
          t.routers;
        (* Join state subset of tree membership: a non-root domain with
           members must sit on the group's tree. *)
        Array.iteri
          (fun dom migp ->
            if
              Migp.has_members migp ~group
              && t.route_to_root dom group <> Root_here
              && not (List.exists on_tree t.domain_routers.(dom))
            then
              add group "domain %d has members of %a but no tree state" dom Ipv4.pp group)
          t.migps
      end)
    (active_groups t);
  List.rev !violations

let total_entries t =
  Array.fold_left (fun acc r -> acc + Bgmp_router.entry_count r) 0 t.routers
