type target = Peer of int | Migp_target | Internal_router of int

let m_joins = Metrics.counter "bgmp.joins_rcvd"
let m_prunes = Metrics.counter "bgmp.prunes_rcvd"
let m_sg_joins = Metrics.counter "bgmp.sg_joins_rcvd"
let m_sg_prunes = Metrics.counter "bgmp.sg_prunes_rcvd"
let m_entries_max = Metrics.gauge "bgmp.tree_entries_max"

let target_equal a b =
  match (a, b) with
  | Peer x, Peer y -> x = y
  | Migp_target, Migp_target -> true
  | Internal_router x, Internal_router y -> x = y
  | (Peer _ | Migp_target | Internal_router _), _ -> false

let pp_target ppf = function
  | Peer p -> Format.fprintf ppf "peer-%d" p
  | Migp_target -> Format.pp_print_string ppf "migp"
  | Internal_router r -> Format.fprintf ppf "internal-%d" r

type route_class = Root_here | External of int | Internal of int | Unroutable

type action =
  | To_peer of int * Bgmp_msg.t
  | To_internal of int * Bgmp_msg.t
      (** hand a BGMP message to an internal BGMP peer (another border
          router of the same domain) through the MIGP — the paper's
          "the parent target is the MIGP component of the border
          router"; used by (S,G) chains so their traffic tunnels
          between the two routers instead of flooding the interior *)
  | Migp_join of { group : Ipv4.t; span : Span.t option }
  | Migp_prune of Ipv4.t
  | Migp_data of { group : Ipv4.t; source : Host_ref.t; payload : int; hops : int }

type entry = { mutable parent : target option; mutable children : target list }

(* (S,G) state is stored as a DELTA against the live (star,G) entry:
   [added] holds grafted branch children, [removed] holds shared-tree
   targets pruned for this source.  The effective outgoing set is
   computed at forwarding time from the current (star,G) targets, so
   shared-tree growth after the (S,G) entry was created is never lost
   (a frozen copy would silently starve later joiners). *)
type sg_state = {
  mutable sg_parent : target option;  (** join/prune propagation direction *)
  mutable sg_rpf : target option;  (** where S's packets must arrive from *)
  mutable added : target list;
  mutable removed : target list;
}

type sg_view = {
  view_parent : target option;
  view_rpf : target option;
  view_added : target list;
  view_removed : target list;
  view_targets : target list;
}

type t = {
  rid : int;
  rdomain : Domain.id;
  rname : string;
  star : (Ipv4.t, entry) Hashtbl.t;
  sg : (Host_ref.t * Ipv4.t, sg_state) Hashtbl.t;
  pending_branch_prune : (Host_ref.t * Ipv4.t, int) Hashtbl.t;
      (** branches we initiated: same-domain router whose shared-tree
          copies to prune once (S,G) data arrives from the branch parent *)
  mutable classify_root : Ipv4.t -> route_class;
  mutable classify_source : Domain.id -> route_class;
}

let create ~id ~domain ~name =
  {
    rid = id;
    rdomain = domain;
    rname = name;
    star = Hashtbl.create 8;
    sg = Hashtbl.create 4;
    pending_branch_prune = Hashtbl.create 2;
    classify_root = (fun _ -> Unroutable);
    classify_source = (fun _ -> Unroutable);
  }

let id t = t.rid

let domain t = t.rdomain

let name t = t.rname

let set_classify_root t f = t.classify_root <- f

let set_classify_source t f = t.classify_source <- f

let star_entry t group = Hashtbl.find_opt t.star group

let star_targets_now t group =
  match Hashtbl.find_opt t.star group with
  | Some e -> (match e.parent with Some p -> [ p ] | None -> []) @ e.children
  | None -> []

let minus l r = List.filter (fun x -> not (List.exists (target_equal x) r)) l

(* The effective outgoing set of an (S,G) entry: live shared-tree
   targets minus the pruned ones and the RPF side, plus grafted branch
   children. *)
let sg_targets_now t group st =
  let tree = star_targets_now t group in
  let rpf = match st.sg_rpf with Some r -> [ r ] | None -> [] in
  let tree_part = minus tree (st.removed @ rpf) in
  tree_part @ minus st.added (tree_part @ rpf)

let view_of t group st =
  {
    view_parent = st.sg_parent;
    view_rpf = st.sg_rpf;
    view_added = st.added;
    view_removed = st.removed;
    view_targets = sg_targets_now t group st;
  }

let sg_entry t source group =
  Option.map (view_of t group) (Hashtbl.find_opt t.sg (source, group))

let sg_for_group t group =
  Hashtbl.fold
    (fun (s, g) st acc -> if Ipv4.equal g group then (s, view_of t group st) :: acc else acc)
    t.sg []

let star_groups t = Hashtbl.fold (fun g _ acc -> g :: acc) t.star []

let on_tree t group = Hashtbl.mem t.star group

let entry_count t = Hashtbl.length t.star + Hashtbl.length t.sg

(* High-water mark of tree state held by any single router. *)
let note_entries t = Metrics.set_max m_entries_max (float_of_int (entry_count t))

(* Groups whose entries have the same target signature collapse into
   aligned prefix entries; the aggregated size is the minimal CIDR cover
   of each signature class (§7). *)
let aggregated_entry_count t =
  let tgt = function
    | Peer p -> Printf.sprintf "p%d" p
    | Migp_target -> "m"
    | Internal_router r -> Printf.sprintf "i%d" r
  in
  let opt = function Some x -> tgt x | None -> "-" in
  let classes = Hashtbl.create 8 in
  let add key group =
    let cell =
      match Hashtbl.find_opt classes key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace classes key c;
          c
    in
    cell := Prefix.make group 32 :: !cell
  in
  Hashtbl.iter
    (fun group (e : entry) ->
      add
        (String.concat "," ("*" :: opt e.parent :: List.sort compare (List.map tgt e.children)))
        group)
    t.star;
  Hashtbl.iter
    (fun (source, group) st ->
      add
        (Format.asprintf "%a|%s|%s" Host_ref.pp source (opt st.sg_rpf)
           (String.concat "," (List.sort compare (List.map tgt (sg_targets_now t group st)))))
        group)
    t.sg;
  Hashtbl.fold (fun _ cell acc -> acc + List.length (Prefix.aggregate !cell)) classes 0

(* Parent target and the action that sends a join upstream, for a path
   classified by the fabric. *)
let upstream_of_class cls ~peer_msg ~migp_action =
  match cls with
  | Root_here -> (Some Migp_target, [ migp_action ])
  | External p -> (Some (Peer p), [ To_peer (p, peer_msg) ])
  | Internal _ -> (Some Migp_target, [ migp_action ])
  | Unroutable -> (None, [])

(* (S,G) upstream: chains address the internal next-hop router
   explicitly, so their traffic never rides the interior flood. *)
let sg_upstream_of_class cls ~peer_msg =
  match cls with
  | Root_here -> (Some Migp_target, [])
  | External p -> (Some (Peer p), [ To_peer (p, peer_msg) ])
  | Internal r -> (Some (Internal_router r), [ To_internal (r, peer_msg) ])
  | Unroutable -> (None, [])

let add_child e target =
  if not (List.exists (target_equal target) e.children) then e.children <- e.children @ [ target ]

let remove_child e target =
  e.children <- List.filter (fun c -> not (target_equal c target)) e.children

let handle_join_impl ?span t ~group ~from =
  Metrics.incr m_joins;
  match Hashtbl.find_opt t.star group with
  | Some e ->
      (* Already on the tree: just add the new branch.  A join from our
         own parent would be a routing anomaly; ignore it. *)
      if e.parent <> None && target_equal (Option.get e.parent) from then []
      else begin
        add_child e from;
        []
      end
  | None ->
      let next = Option.map Span.child span in
      let parent, upstream =
        upstream_of_class (t.classify_root group)
          ~peer_msg:(Bgmp_msg.Join { group; span = next })
          ~migp_action:(Migp_join { group; span = next })
      in
      let e = { parent; children = [ from ] } in
      Hashtbl.replace t.star group e;
      note_entries t;
      upstream

let handle_join ?span t ~group ~from =
  if Prof.is_enabled () then Prof.span "bgmp.join" (fun () -> handle_join_impl ?span t ~group ~from)
  else handle_join_impl ?span t ~group ~from

let handle_prune_impl t ~group ~from =
  Metrics.incr m_prunes;
  match Hashtbl.find_opt t.star group with
  | None -> []
  | Some e ->
      remove_child e from;
      if e.children = [] then begin
        Hashtbl.remove t.star group;
        (* Also drop dependent (S,G) state for this group. *)
        let dead =
          Hashtbl.fold (fun (s, g) _ acc -> if Ipv4.equal g group then (s, g) :: acc else acc) t.sg []
        in
        List.iter (Hashtbl.remove t.sg) dead;
        List.iter (Hashtbl.remove t.pending_branch_prune) dead;
        match e.parent with
        | Some (Peer p) -> [ To_peer (p, Bgmp_msg.Prune group) ]
        | Some Migp_target -> [ Migp_prune group ]
        | Some (Internal_router r) -> [ To_internal (r, Bgmp_msg.Prune group) ]
        | None -> []
      end
      else []

(* The toward-source target for (S,G) state: where S's packets are
   expected to arrive from (the RPF side). *)
let rpf_target_for t source =
  match t.classify_source source.Host_ref.host_domain with
  | Root_here -> Some Migp_target
  | External p -> Some (Peer p)
  | Internal r -> Some (Internal_router r)
  | Unroutable -> None

(* Does the (S,G) entry still forward to any downstream target (the
   emptiness test driving prune propagation)?  Downstream = live tree
   CHILDREN minus removed, plus grafted children — the tree parent does
   not count ("F1 has no other child targets ... it propagates the
   prune up", §5.3). *)
let sg_downstream_empty t group st =
  let tree_children =
    match Hashtbl.find_opt t.star group with
    | Some e -> e.children
    | None -> []
  in
  minus tree_children st.removed = [] && minus st.added st.removed = []

let handle_prune t ~group ~from =
  if Prof.is_enabled () then Prof.span "bgmp.prune" (fun () -> handle_prune_impl t ~group ~from)
  else handle_prune_impl t ~group ~from

let handle_join_sg_impl t ~source ~group ~from =
  Metrics.incr m_sg_joins;
  match Hashtbl.find_opt t.sg (source, group) with
  | Some st ->
      (* A graft: cancel a previous prune of this target, or add a new
         branch child. *)
      if List.exists (target_equal from) st.removed then
        st.removed <- List.filter (fun x -> not (target_equal x from)) st.removed
      else if not (List.exists (target_equal from) st.added) then
        st.added <- st.added @ [ from ];
      []
  | None -> (
      match Hashtbl.find_opt t.star group with
      | Some star_e ->
          (* On the shared tree: graft the branch child; the outgoing set
             tracks the live (star,G) targets.  The join is not
             propagated further (§5.3). *)
          let st =
            {
              sg_parent = star_e.parent;
              sg_rpf = rpf_target_for t source;
              added = [ from ];
              removed = [];
            }
          in
          Hashtbl.replace t.sg (source, group) st;
          note_entries t;
          []
      | None ->
          let parent, upstream =
            sg_upstream_of_class
              (t.classify_source source.Host_ref.host_domain)
              ~peer_msg:(Bgmp_msg.Join_sg { source; group })
          in
          let st = { sg_parent = parent; sg_rpf = parent; added = [ from ]; removed = [] } in
          Hashtbl.replace t.sg (source, group) st;
          note_entries t;
          upstream)

let handle_join_sg t ~source ~group ~from =
  if Prof.is_enabled () then
    Prof.span "bgmp.join_sg" (fun () -> handle_join_sg_impl t ~source ~group ~from)
  else handle_join_sg_impl t ~source ~group ~from

let handle_prune_sg t ~source ~group ~from =
  Metrics.incr m_sg_prunes;
  let propagate_if_empty st =
    if sg_downstream_empty t group st then begin
      match (Hashtbl.find_opt t.star group, st.sg_parent) with
      | None, Some (Peer p) ->
          (* A pure branch with no children left: tear it down. *)
          Hashtbl.remove t.sg (source, group);
          Hashtbl.remove t.pending_branch_prune (source, group);
          [ To_peer (p, Bgmp_msg.Prune_sg { source; group }) ]
      | None, Some (Internal_router r) ->
          Hashtbl.remove t.sg (source, group);
          Hashtbl.remove t.pending_branch_prune (source, group);
          [ To_internal (r, Bgmp_msg.Prune_sg { source; group }) ]
      | Some star_e, _ -> (
          (* Negative state on the shared tree: stop upstream copies. *)
          match star_e.parent with
          | Some (Peer p) -> [ To_peer (p, Bgmp_msg.Prune_sg { source; group }) ]
          | Some (Migp_target | Internal_router _) | None -> [])
      | None, (Some Migp_target | None) -> []
    end
    else []
  in
  match Hashtbl.find_opt t.sg (source, group) with
  | Some st ->
      let changed = ref false in
      if List.exists (target_equal from) st.added then begin
        st.added <- List.filter (fun x -> not (target_equal x from)) st.added;
        changed := true
      end
      else if not (List.exists (target_equal from) st.removed) then begin
        st.removed <- st.removed @ [ from ];
        changed := true
      end;
      (* A pruned target turns the entry into suppression state: S's
         remaining copies are expected from the shared-tree parent. *)
      (if st.removed <> [] then
         match Hashtbl.find_opt t.star group with
         | Some star_e -> st.sg_rpf <- star_e.parent
         | None -> ());
      if !changed then propagate_if_empty st else []
  | None -> (
      (* Prune of S's shared-tree copies at an on-tree router: install
         negative (S,G) state.  The expected arrival side for S's
         shared-tree copies is the (star,G) parent (PIM's (S,G)Rpt
         semantics); data arriving from anywhere else — e.g. branch
         re-injections through the interior — is dropped, never pushed
         back up the tree. *)
      match Hashtbl.find_opt t.star group with
      | None -> []
      | Some star_e ->
          let st =
            { sg_parent = star_e.parent; sg_rpf = star_e.parent; added = []; removed = [ from ] }
          in
          Hashtbl.replace t.sg (source, group) st;
          note_entries t;
          propagate_if_empty st)

let forward_data targets ~group ~source ~payload ~hops ~from =
  List.filter_map
    (fun tgt ->
      if target_equal tgt from then None
      else
        match tgt with
        | Peer p -> Some (To_peer (p, Bgmp_msg.Data { group; source; payload; hops }))
        | Internal_router r -> Some (To_internal (r, Bgmp_msg.Data { group; source; payload; hops }))
        | Migp_target -> Some (Migp_data { group; source; payload; hops }))
    targets

let handle_data t ~group ~source ~payload ~hops ~from =
  (* A branch we initiated becomes live when (S,G) data arrives from its
     RPF side: time to prune the duplicate shared-tree copies (§5.3). *)
  let branch_prunes =
    match
      (Hashtbl.find_opt t.sg (source, group), Hashtbl.find_opt t.pending_branch_prune (source, group))
    with
    | Some st, Some shared_router
      when st.sg_rpf <> None && target_equal (Option.get st.sg_rpf) from ->
        (* Deliberately NOT consumed: membership churn can lift the
           shared-tree suppression while this branch lives on, and the
           un-suppressed tree copy plus the branch would cycle; asserting
           the prune on every branch arrival keeps the pair consistent
           (the prune is idempotent and precedes the forwards below). *)
        [ To_internal (shared_router, Bgmp_msg.Prune_sg { source; group }) ]
    | Some _, Some _ | None, Some _ | Some _, None | None, None -> []
  in
  (* The §5.2 default rule, used when no (star,G) entry applies: pass
     the packet along toward the group's root domain. *)
  let default_toward_root () =
    match t.classify_root group with
    | Root_here -> (
        match from with
        | Migp_target | Internal_router _ -> []  (* nowhere further to go *)
        | Peer _ -> [ Migp_data { group; source; payload; hops } ])
    | External p ->
        if (match from with Peer q -> q = p | Migp_target | Internal_router _ -> false) then []
        else [ To_peer (p, Bgmp_msg.Data { group; source; payload; hops }) ]
    | Internal _ -> (
        match from with
        | Migp_target | Internal_router _ -> []
        | Peer _ -> [ Migp_data { group; source; payload; hops } ])
    | Unroutable -> []
  in
  let forwards =
    match Hashtbl.find_opt t.sg (source, group) with
    | Some st -> (
        (* Three flavours of (S,G) state, distinguished live:
           - a pure BRANCH (no (star,G) here): strictly RPF-gated — S's
             packets are accepted only from the toward-source side and
             flow down the grafted children; anything else is dropped
             (this is what makes branch re-injections loop-free);
           - NEGATIVE state on the shared tree (some tree target was
             pruned for S): gated on the side S's shared-tree copies
             arrive from, forwarding to the surviving children — its
             whole point is suppression, so off-gate arrivals drop;
           - a GRAFT on the shared tree (branch children added, nothing
             pruned): behaves exactly like the bidirectional (star,G)
             entry plus the extra children — gating it to one side would
             starve tree neighbours whose copies flow through us. *)
        let star = Hashtbl.find_opt t.star group in
        match (star, st.removed) with
        | None, _ -> (
            match st.sg_rpf with
            | Some r when not (target_equal from r) -> []
            | Some _ | None ->
                (* A branch hop at an off-tree router must not swallow
                   the packet: besides the grafted children, the data
                   still flows toward the root domain (the branch is an
                   ADDITION to the shared-tree distribution, §5.3).
                   Skip the default when it duplicates a branch child. *)
                let branch = forward_data (minus st.added [ from ]) ~group ~source ~payload ~hops ~from in
                let defaults =
                  List.filter
                    (fun act ->
                      match act with
                      | To_peer (p, Bgmp_msg.Data _) ->
                          not
                            (List.exists
                               (function Peer q -> q = p | Migp_target | Internal_router _ -> false)
                               st.added)
                      | Migp_data _ ->
                          not (List.exists (target_equal Migp_target) st.added)
                      | To_peer _ | To_internal _ | Migp_join _ | Migp_prune _ -> true)
                    (default_toward_root ())
                in
                branch @ defaults)
        | Some star_e, _ :: _ -> (
            match st.sg_rpf with
            | Some r when not (target_equal from r) -> []
            | Some _ | None ->
                let survivors = minus star_e.children st.removed @ minus st.added st.removed in
                forward_data survivors ~group ~source ~payload ~hops ~from)
        | Some star_e, [] ->
            let tree =
              (match star_e.parent with Some p -> [ p ] | None -> []) @ star_e.children
            in
            let acceptable =
              List.exists (target_equal from) tree
              || (match st.sg_rpf with Some r -> target_equal from r | None -> false)
            in
            if not acceptable then []
            else
              forward_data
                (tree @ minus st.added tree)
                ~group ~source ~payload ~hops ~from)
    | None -> (
        match Hashtbl.find_opt t.star group with
        | Some e ->
            let targets = (match e.parent with Some p -> [ p ] | None -> []) @ e.children in
            forward_data targets ~group ~source ~payload ~hops ~from
        | None -> default_toward_root ())
  in
  branch_prunes @ forwards

let clear_group t group =
  Hashtbl.remove t.star group;
  let dead_sg =
    Hashtbl.fold (fun (s, g) _ acc -> if Ipv4.equal g group then (s, g) :: acc else acc) t.sg []
  in
  List.iter (Hashtbl.remove t.sg) dead_sg;
  let dead_pending =
    Hashtbl.fold
      (fun (s, g) _ acc -> if Ipv4.equal g group then (s, g) :: acc else acc)
      t.pending_branch_prune []
  in
  List.iter (Hashtbl.remove t.pending_branch_prune) dead_pending

let cancel_suppression t ~source ~group =
  match (Hashtbl.find_opt t.sg (source, group), Hashtbl.find_opt t.star group) with
  | Some _, Some star_e ->
      Hashtbl.remove t.sg (source, group);
      (match star_e.parent with
      | Some (Peer p) -> [ To_peer (p, Bgmp_msg.Join_sg { source; group }) ]
      | Some (Migp_target | Internal_router _) | None -> [])
  | (Some _ | None), (Some _ | None) -> []

let initiate_branch t ~source ~group ~shared_entry_router =
  match Hashtbl.find_opt t.sg (source, group) with
  | Some st ->
      (* Already a transit hop of someone else's chain: graft our own
         interior (members) onto it and arrange the suppression of the
         stale shared-tree copies. *)
      if not (List.exists (target_equal Migp_target) st.added) then
        st.added <- st.added @ [ Migp_target ];
      Hashtbl.replace t.pending_branch_prune (source, group) shared_entry_router;
      []
  | None -> (
      let parent, upstream =
        sg_upstream_of_class
          (t.classify_source source.Host_ref.host_domain)
          ~peer_msg:(Bgmp_msg.Join_sg { source; group })
      in
      match parent with
      | None -> []
      | Some _ ->
          let st =
            { sg_parent = parent; sg_rpf = parent; added = [ Migp_target ]; removed = [] }
          in
          Hashtbl.replace t.sg (source, group) st;
          note_entries t;
          Hashtbl.replace t.pending_branch_prune (source, group) shared_entry_router;
          upstream)
