(** BGMP messages exchanged between peering border routers over their
    (modelled) TCP sessions: shared-tree joins and prunes, the
    source-specific variants of §5.3, and data packets. *)

type t =
  | Join of { group : Ipv4.t; span : Span.t option }
      (** (star,G) join toward the group's root domain; [span] continues
          the causal chain that triggered the join, re-minted per hop *)
  | Prune of Ipv4.t
  | Join_sg of { source : Host_ref.t; group : Ipv4.t }
      (** source-specific join toward the source's domain *)
  | Prune_sg of { source : Host_ref.t; group : Ipv4.t }
  | Data of { group : Ipv4.t; source : Host_ref.t; payload : int; hops : int }
      (** a multicast packet; [hops] counts inter-domain links traversed
          (for path-length verification against {!Path_eval}) *)

val pp : Format.formatter -> t -> unit
