(** The BGMP fabric: every domain's border routers, their peering
    sessions, and the MIGP-mediated interior, assembled over the
    simulation engine.

    One border router exists per end of every inter-domain link (as in
    the paper's figures: A1–A4 are A's routers on its four links).  The
    fabric executes the {!Bgmp_router} state machines' actions: peer
    messages travel with the link's delay; MIGP-side actions are routed
    to the right border router of the domain; data handed to a domain's
    interior is distributed per the domain's MIGP style (flooding or
    explicit-state), with RPF-encapsulation and automatic source-specific
    branch initiation for strict-RPF MIGPs (§5.3).

    Routing information is injected: [route_to_root] answers from the
    G-RIB (in the integrated stack, from the BGP speakers; in tests,
    from a static table), and source routing uses unicast shortest
    paths over the topology (the M-RIB in the congruent-topology
    case). *)

type root_route =
  | Root_here
  | Via of Domain.id  (** next-hop domain toward the root *)
  | Unroutable

type config = {
  branching : bool;
      (** build source-specific branches automatically when a strict-RPF
          MIGP would otherwise keep encapsulating (§5.3) *)
}

val default_config : config

type t

val create :
  engine:Engine.t ->
  topo:Topo.t ->
  ?net:Net.t ->
  ?config:config ->
  ?migp_style:(Domain.id -> Migp.style) ->
  ?trace:Trace.t ->
  ?span_of_group:(Domain.id -> Ipv4.t -> Span.t option) ->
  route_to_root:(Domain.id -> Ipv4.t -> root_route) ->
  unit ->
  t
(** Peer messages travel over {!Net} channels (one per border router,
    toward its external peer) with the link's delay; [net] is the
    transport to use — pass the internet-wide one to share link state
    with BGP and MASC, or a [Net.t] whose config overrides delays or
    injects loss (the old [link_delay_override] lives in [Net.config]
    now).  By default the fabric gets a private [Net.t] on the same
    engine.  [migp_style] defaults to DVMRP everywhere.  [trace] receives
    join-chain entries ("join" at the originating domain, "join-hop"
    per tree hop).  [span_of_group] supplies the causal span of the
    G-RIB route a domain uses for a group (the integrated stack wires
    it to the speakers' routes), so join chains continue the MASC
    claim's trace id; without it, chains start fresh under
    ["group:<addr>"]. *)

(** {1 Host operations} *)

val host_join : t -> host:Host_ref.t -> group:Ipv4.t -> unit

val host_leave : t -> host:Host_ref.t -> group:Ipv4.t -> unit

val send : ?span:Span.t -> t -> source:Host_ref.t -> group:Ipv4.t -> int
(** Send one packet from the host to the group; returns the fresh
    payload id.  Senders need not be members (IP service model, §3).
    Run the engine to let it propagate.  [?span] is the packet's causal
    span: every inter-domain copy travels under it, so a transport drop
    is blamed on the packet's chain in the trace.  Only pass one for
    traced packets — the span is retained until {!forget_payload}. *)

val next_payload_id : t -> int
(** The payload id the next {!send} will use.  Measurement layers
    register their per-probe accounting {e before} sending: intra-domain
    copies deliver synchronously inside [send], so registering after it
    returns would miss them. *)

(** {1 Delivery observation} *)

val deliveries : t -> payload:int -> (Host_ref.t * int) list
(** Hosts that received the payload, with the inter-domain hop count of
    the path each copy took. *)

val set_on_delivery :
  t ->
  (group:Ipv4.t -> source:Host_ref.t -> payload:int -> host:Host_ref.t -> hops:int -> unit)
  option ->
  unit
(** Install (or clear) a hook called once per {e first} copy delivered
    to a host — duplicates only bump {!duplicate_deliveries}.  The hook
    runs at delivery time, inside the engine event, so
    [Engine.now] is the delivery time.  The measurement layer
    ([Beacon]) folds these into its delivery matrix. *)

val forget_payload : t -> payload:int -> unit
(** Drop the fabric's per-payload bookkeeping (delivery list, dedup
    entries, retained span) for a payload whose accounting is finished.
    Long soaks call this after harvesting each probe, keeping fabric
    memory bounded by the in-flight window rather than the whole run.
    A straggler copy arriving after the forget would be re-recorded as
    a fresh delivery, so only forget payloads past their maximum path
    delay. *)

val group_span : t -> Domain.id -> Ipv4.t -> Span.t
(** A fresh span for a packet a host in the domain is about to send to
    the group: a child of the covering G-RIB route's span when
    [span_of_group] knows one (so probes join the route's causal
    chain), else a fresh root under ["group:<addr>"]. *)

val duplicate_deliveries : t -> int
(** Copies delivered to a host that had already received that payload —
    0 in a correct run. *)

val net : t -> Net.t
(** The transport peer messages travel over. *)

val fail_link : t -> Domain.id -> Domain.id -> unit
(** [Net.fail_link] on the transport: messages over the link (joins,
    prunes, data — and, on a shared transport, every other protocol's
    traffic) are lost until {!restore_link}, including ones already in
    flight.  Combine with {!rebuild_group} (or use [Internet.fail_link],
    which orchestrates BGP and BGMP together) to move trees off the dead
    link. *)

val restore_link : t -> Domain.id -> Domain.id -> unit

(** {1 Route-change repair} *)

val active_groups : t -> Ipv4.t list
(** Groups with forwarding state or local members anywhere, ascending. *)

val rebuild_group : t -> group:Ipv4.t -> unit
(** Rebuild the group's distribution tree under the {e current} routing
    information: every router's (star,G)/(S,G) state is dropped and
    each member domain re-issues its join toward the (possibly new)
    root path.  Call after the G-RIB changes for the group's covering
    route — withdawals, policy changes, or MASC renumbering move the
    path to the root, and the old tree is stale (real BGMP reconverges
    the same way: new joins follow the new routes while the old state
    times out). *)

(** {1 Introspection} *)

val migp_of : t -> Domain.id -> Migp.t

val routers_of : t -> Domain.id -> Bgmp_router.t list

val router_toward : t -> Domain.id -> Domain.id -> Bgmp_router.t option
(** [router_toward t d e]: d's border router on the d–e link. *)

val tree_domains : t -> group:Ipv4.t -> Domain.id list
(** Domains with at least one on-tree border router, ascending. *)

val control_messages : t -> int
(** Join/prune messages sent between peers so far. *)

val data_messages : t -> int
(** Data packets sent over inter-domain links so far. *)

val total_entries : t -> int
(** Forwarding entries across all border routers. *)

val tree_violations : t -> quiescent:bool -> (string * string option) list
(** Live invariant sweep over every active group, as
    [(detail, trace_id)] pairs suitable for {!Invariant.register}
    predicates: parent-pointer acyclicity (always), and — only when
    [quiescent], since in-flight joins legitimately violate them —
    parent/child symmetry across peer links and members-implies-tree
    membership. *)
