(** The BGMP component of one border router (§5).

    The router keeps per-group (star,G) forwarding entries — a parent
    target toward the group's root domain and a list of child targets —
    plus (S,G) entries for source-specific branches.  A target is either
    an external BGMP peer (the border router across one of this
    router's inter-domain links) or the domain's MIGP component.

    The state machine is transport-agnostic: every handler returns the
    list of {!action}s to perform, and the enclosing fabric interprets
    them (sending peer messages with link delay, routing MIGP-side
    actions to the right border router of the domain, distributing data
    internally per the MIGP style). *)

type target =
  | Peer of int  (** global router id of an external BGMP peer *)
  | Migp_target  (** this domain's MIGP component (interior flood/members) *)
  | Internal_router of int
      (** the MIGP component of a specific border router of the same
          domain — the paper's internal BGMP peer, used by (S,G) chains
          so source-specific traffic tunnels across the interior instead
          of riding the general flood *)

val target_equal : target -> target -> bool

val pp_target : Format.formatter -> target -> unit

(** Where the path toward some root/source domain leaves from this
    router's point of view; the fabric computes it from the G-RIB (for
    roots) or the M-RIB/unicast table (for sources). *)
type route_class =
  | Root_here  (** this domain is the root (or source) domain *)
  | External of int  (** next hop is across this router's own link: peer id *)
  | Internal of int
      (** next hop is via another border router of this domain (its
          global router id) *)
  | Unroutable

type action =
  | To_peer of int * Bgmp_msg.t
  | To_internal of int * Bgmp_msg.t
      (** hand a BGMP message directly to an internal BGMP peer (another
          border router of this domain) through the MIGP *)
  | Migp_join of { group : Ipv4.t; span : Span.t option }
      (** propagate a (star,G) join through the domain (to the best exit
          router toward the root, or just graft local members when this
          domain is the root); [span] carries the join's causal chain *)
  | Migp_prune of Ipv4.t
  | Migp_data of { group : Ipv4.t; source : Host_ref.t; payload : int; hops : int }
      (** hand a packet to the domain's internal distribution *)

type entry = {
  mutable parent : target option;
      (** toward the root domain; join/prune propagation goes here *)
  mutable children : target list;  (** downstream targets *)
}
(** A (star,G) shared-tree entry: forwards bidirectionally among
    parent and children. *)

type sg_view = {
  view_parent : target option;  (** join/prune propagation direction *)
  view_rpf : target option;  (** where S's packets must arrive from *)
  view_added : target list;  (** grafted branch children *)
  view_removed : target list;  (** shared-tree targets pruned for S *)
  view_targets : target list;
      (** the effective outgoing set right now — computed against the
          live (star,G) entry, so shared-tree changes after the (S,G)
          state was installed are reflected automatically *)
}
(** Read-only view of an (S,G) entry (source-specific branch or
    negative/prune state). *)

type t

val create : id:int -> domain:Domain.id -> name:string -> t

val id : t -> int

val domain : t -> Domain.id

val name : t -> string

val set_classify_root : t -> (Ipv4.t -> route_class) -> unit
(** How to reach the root domain of a group (G-RIB longest match). *)

val set_classify_source : t -> (Domain.id -> route_class) -> unit
(** How to reach a source's domain (M-RIB / unicast routing). *)

(** {1 Event handlers} — each returns the actions to execute. *)

val handle_join : ?span:Span.t -> t -> group:Ipv4.t -> from:target -> action list
(** [?span] is the incoming join's span; the upstream join/action this
    handler emits (first join only) carries a fresh child span, so the
    chain records one span per tree hop. *)

val handle_prune : t -> group:Ipv4.t -> from:target -> action list

val handle_join_sg : t -> source:Host_ref.t -> group:Ipv4.t -> from:target -> action list

val handle_prune_sg : t -> source:Host_ref.t -> group:Ipv4.t -> from:target -> action list

val handle_data :
  t -> group:Ipv4.t -> source:Host_ref.t -> payload:int -> hops:int -> from:target -> action list

val initiate_branch : t -> source:Host_ref.t -> group:Ipv4.t -> shared_entry_router:int -> action list
(** Begin a source-specific branch at this (decapsulating) router: set
    up (S,G) state toward the source and remember which same-domain
    router's shared-tree copies to prune once branch data flows
    (§5.3). *)

val cancel_suppression : t -> source:Host_ref.t -> group:Ipv4.t -> action list
(** Remove this router's negative (S,G) state for the source and
    re-subscribe to the source's shared-tree copies upstream (an (S,G)
    join toward the (star,G) parent, cancelling the prune that a
    now-dead branch once sent).  No-op without (star,G) state. *)

val clear_group : t -> Ipv4.t -> unit
(** Drop every (star,G) and (S,G) entry for the group (tree rebuild
    after a G-RIB change). *)

(** {1 Introspection} *)

val star_entry : t -> Ipv4.t -> entry option

val sg_entry : t -> Host_ref.t -> Ipv4.t -> sg_view option

val star_groups : t -> Ipv4.t list

val sg_for_group : t -> Ipv4.t -> (Host_ref.t * sg_view) list
(** All (S,G) entries for the given group. *)

val on_tree : t -> Ipv4.t -> bool

val entry_count : t -> int
(** Total forwarding entries, (star,G) plus (S,G) — the state-scaling
    metric of §7. *)

val aggregated_entry_count : t -> int
(** Forwarding-table size after the §7 state aggregation: (star,G) and
    (S,G) entries whose target lists are identical collapse into
    (star,G-prefix) / (S,G-prefix) entries covering aligned group
    ranges ("BGMP has provisions for this by allowing (star,G-prefix)
    and (S-prefix,G-prefix) state to be stored at the routers wherever
    the list of targets are the same"). *)
