(** The link-transport substrate under MASC, BGP and BGMP.

    Every inter-domain message in the stack crosses a directed
    {!channel}: a FIFO, fixed-delay lane between two endpoints (domain
    ids), owned by a {!t} that holds the {e single source of truth} for
    link state.  The three protocol layers used to model links three
    different ways (MASC kept its own partition set, BGP dropped
    in-flight updates on failure, BGMP carried a private delay table);
    routing them all through one substrate gives every protocol the same
    failure semantics and gives fault injection one place to act:

    - {b delay} — each channel delivers [delay] after the send (or the
      net-wide [delay_override]); delivery order per channel is FIFO,
      and equal-time deliveries across channels fire in send order (the
      engine's heap breaks ties by scheduling sequence), so runs are
      fully deterministic;
    - {b up/down state} — {!fail_link} takes both directions of an
      endpoint pair down: subsequent sends are dropped at the source and
      messages already in flight are lost (they were bits on the dead
      wire).  {!block} does the same for one direction only (asymmetric
      partition);
    - {b loss} — a seeded, deterministic per-message loss probability
      ([loss_rate]); the RNG is private to the net and is never drawn
      when the rate is zero, so loss-free runs are bit-identical to the
      pre-substrate stack;
    - {b observability} — [net.sent/delivered/dropped.<protocol>]
      metrics, per-net counters, and (when a trace is attached) a
      [net-drop] trace entry per lost message carrying the message's
      causal span.  When the flight recorder is enabled, every landed
      message appends a [net.recv.<protocol>] record and every lost one
      a [net.drop.<protocol>] record (subject ["src->dst [reason]"]),
      both carrying the message's span.

    Endpoints are plain ints.  Channels need not follow topology links:
    MASC's overlay (parent/child/top-sibling) pairs share the same state
    table, so partitioning a non-adjacent pair is expressed the same way
    as failing a physical link. *)

type config = {
  loss_rate : float;  (** per-message drop probability in [0, 1) *)
  loss_seed : int;  (** seed of the private loss RNG *)
  delay_override : Time.t option;
      (** when set, every channel delivers with this delay instead of
          its own (collapsed from the old
          [Bgmp_fabric.config.link_delay_override]) *)
}

val default_config : config
(** No loss, no override, seed 1998. *)

type t

val create : engine:Engine.t -> ?config:config -> ?trace:Trace.t -> unit -> t
(** [trace] receives one [net-drop] entry per dropped message. *)

val engine : t -> Engine.t

val set_loss_rate : t -> float -> unit
(** Change the per-message loss probability for {e subsequent} sends.
    The loss RNG's draw sequence is unchanged for past sends (it is
    only ever drawn while the rate is positive), so a run that builds
    state losslessly and then turns loss on for a measurement phase
    stays deterministic.  @raise Invalid_argument outside [0, 1). *)

(** {1 Channels} *)

type 'a channel
(** A directed lane carrying ['a] messages from [src] to [dst]. *)

val channel :
  t -> protocol:string -> src:int -> dst:int -> delay:Time.t -> recv:('a -> unit) -> 'a channel
(** A fresh channel; [recv] runs at delivery time, [delay] later than
    the send (unless overridden net-wide).  [protocol] labels the
    accounting ("masc", "bgp", "bgmp"). *)

val set_on_drop : 'a channel -> ('a -> unit) -> unit
(** Install a drop observer: it runs — with the lost message — whenever
    this channel drops, at the source (link down or loss draw) and in
    flight (epoch drop), after the net-wide accounting.  Layers use it
    to classify their own losses (e.g. BGMP data vs control). *)

val send : 'a channel -> ?span:Span.t -> 'a -> unit
(** Queue a message.  It is dropped — at the source — if the [src]→[dst]
    direction is down or the loss draw fires, and — in flight — if the
    direction goes down before the delivery time.  [span] attributes a
    drop to its causal chain in the trace. *)

val channel_delay : 'a channel -> Time.t
(** The effective delivery delay (after any override). *)

(** {1 Link state}

    State is per {e direction} of an endpoint pair; the pair needs no
    prior channel — blocking a pair that never communicates is a
    no-op. *)

val fail_link : t -> int -> int -> unit
(** Take both directions down: future sends drop at the source,
    in-flight messages are lost, and {!on_link_change} listeners fire
    with [up:false].  Idempotent. *)

val restore_link : t -> int -> int -> unit
(** Bring both directions back up (clearing any one-direction {!block}
    too) and notify listeners with [up:true].  Messages lost while the
    link was down stay lost.  Idempotent. *)

val block : t -> from_:int -> to_:int -> unit
(** Asymmetric partition: take only the [from_]→[to_] direction down
    (in-flight messages on that direction are lost).  Listeners are not
    notified — the reverse direction, and any session semantics built on
    it, stay up. *)

val unblock : t -> from_:int -> to_:int -> unit

val link_up : t -> int -> int -> bool
(** Both directions up? *)

val direction_up : t -> from_:int -> to_:int -> bool

val on_link_change : t -> (int -> int -> up:bool -> unit) -> unit
(** Subscribe to {!fail_link}/{!restore_link} transitions (BGP uses this
    to drop and re-form peering sessions).  Listeners run after the
    state change, in subscription order. *)

(** {1 Accounting}

    Per-net, per-protocol message counters (the same numbers are
    published as [net.<counter>.<protocol>] metrics, which aggregate
    across nets). *)

val sent : t -> protocol:string -> int
(** Send attempts, including ones dropped at the source. *)

val delivered : t -> protocol:string -> int

val dropped : t -> protocol:string -> int
(** Loss + dropped-at-source + lost-in-flight. *)

val in_flight : t -> protocol:string -> int
(** Messages currently on the wire across the protocol's channels
    (sent, not yet delivered or dropped).  Mirrored live in the
    [net.inflight.<protocol>] gauge: incremented on enqueue,
    decremented on delivery {e and} on an in-flight epoch drop; a drop
    at the source never enqueues, so it never moves the gauge. *)

val protocols : t -> string list
(** Protocols that have sent at least once on this net, sorted. *)
