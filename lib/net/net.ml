type config = { loss_rate : float; loss_seed : int; delay_override : Time.t option }

let default_config = { loss_rate = 0.0; loss_seed = 1998; delay_override = None }

(* Per-protocol accounting: plain ints for per-net queries plus the
   process-wide metrics counters. *)
type stats = {
  protocol : string;
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable n_inflight : int;
  m_sent : Metrics.counter;
  m_delivered : Metrics.counter;
  m_dropped : Metrics.counter;
  (* Queue depth across all the protocol's channels: up on enqueue,
     down when the message leaves the wire — delivered or epoch-dropped
     in flight.  At-source drops never enqueue, so they never touch it. *)
  m_inflight : Metrics.gauge;
  (* Profiler bucket for this protocol's delivery events, built once so
     [send] does no string concatenation per message. *)
  ev_label : string;
  (* Flight-recorder labels for landed and dropped messages, also
     prebuilt. *)
  recv_label : string;
  drop_label : string;
}

type t = {
  engine : Engine.t;
  mutable cfg : config;
  trace : Trace.t option;
  (* The loss RNG is private to the net and is never drawn when
     [loss_rate] is zero, so loss-free runs match the pre-substrate
     stack draw-for-draw. *)
  loss_rng : Rng.t;
  by_protocol : (string, stats) Hashtbl.t;
  (* Directed link state.  [down] holds the directions currently down;
     [epoch] counts down-transitions per direction, so an in-flight
     message (which remembers the epoch at send time) is lost exactly
     when its direction failed before delivery — even if it was
     restored again in between. *)
  down : (int * int, unit) Hashtbl.t;
  epoch : (int * int, int) Hashtbl.t;
  mutable listeners : (int -> int -> up:bool -> unit) list;
}

type 'a channel = {
  net : t;
  stats : stats;
  src : int;
  dst : int;
  delay : Time.t;
  recv : 'a -> unit;
  mutable on_drop : ('a -> unit) option;
  queue : ('a * Span.t option * int) Queue.t;
  mutable last_delivery : Time.t;
  (* Recorder subject, built once per channel. *)
  subj : string;
}

let create ~engine ?(config = default_config) ?trace () =
  if config.loss_rate < 0.0 || config.loss_rate >= 1.0 then
    invalid_arg "Net.create: loss_rate outside [0, 1)";
  {
    engine;
    cfg = config;
    trace;
    loss_rng = Rng.create config.loss_seed;
    by_protocol = Hashtbl.create 4;
    down = Hashtbl.create 16;
    epoch = Hashtbl.create 16;
    listeners = [];
  }

let engine t = t.engine

let set_loss_rate t rate =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Net.set_loss_rate: rate outside [0, 1)";
  t.cfg <- { t.cfg with loss_rate = rate }

let stats_for t protocol =
  match Hashtbl.find_opt t.by_protocol protocol with
  | Some s -> s
  | None ->
      let s =
        {
          protocol;
          n_sent = 0;
          n_delivered = 0;
          n_dropped = 0;
          n_inflight = 0;
          m_sent = Metrics.counter ("net.sent." ^ protocol);
          m_delivered = Metrics.counter ("net.delivered." ^ protocol);
          m_dropped = Metrics.counter ("net.dropped." ^ protocol);
          m_inflight = Metrics.gauge ("net.inflight." ^ protocol);
          ev_label = "net.deliver." ^ protocol;
          recv_label = "net.recv." ^ protocol;
          drop_label = "net.drop." ^ protocol;
        }
      in
      Hashtbl.add t.by_protocol protocol s;
      s

let channel t ~protocol ~src ~dst ~delay ~recv =
  let delay = match t.cfg.delay_override with Some d -> d | None -> delay in
  if delay < 0.0 then invalid_arg "Net.channel: negative delay";
  {
    net = t;
    stats = stats_for t protocol;
    src;
    dst;
    delay;
    recv;
    on_drop = None;
    queue = Queue.create ();
    last_delivery = Time.zero;
    subj = string_of_int src ^ "->" ^ string_of_int dst;
  }

let set_on_drop ch f = ch.on_drop <- Some f

let channel_delay ch = ch.delay

let direction_up t ~from_ ~to_ = not (Hashtbl.mem t.down (from_, to_))

let link_up t a b = direction_up t ~from_:a ~to_:b && direction_up t ~from_:b ~to_:a

let epoch_of t from_ to_ = try Hashtbl.find t.epoch (from_, to_) with Not_found -> 0

let drop ch ?span msg reason =
  let st = ch.stats in
  st.n_dropped <- st.n_dropped + 1;
  Metrics.incr st.m_dropped;
  if Recorder.is_enabled () then
    Recorder.record
      ~time:(Engine.now ch.net.engine)
      ~label:st.drop_label ~subject:(ch.subj ^ " " ^ reason) ?span ();
  (match ch.on_drop with Some f -> f msg | None -> ());
  match ch.net.trace with
  | Some tr ->
      Trace.recordf tr ~time:(Engine.now ch.net.engine) ~actor:("net:" ^ st.protocol)
        ~tag:"net-drop" ?span "%d->%d %s" ch.src ch.dst reason
  | None -> ()

let deliver ch =
  let msg, span, sent_epoch = Queue.pop ch.queue in
  let st = ch.stats in
  (* The message left the wire whether it lands or was caught by a
     down-transition: the in-flight gauge drops on both paths. *)
  st.n_inflight <- st.n_inflight - 1;
  Metrics.set st.m_inflight (float_of_int st.n_inflight);
  if epoch_of ch.net ch.src ch.dst <> sent_epoch then drop ch ?span msg "in-flight"
  else begin
    st.n_delivered <- st.n_delivered + 1;
    Metrics.incr st.m_delivered;
    if Recorder.is_enabled () then
      Recorder.record ~time:(Engine.now ch.net.engine) ~label:st.recv_label ~subject:ch.subj ?span ();
    ch.recv msg
  end

let send ch ?span msg =
  let n = ch.net in
  let st = ch.stats in
  st.n_sent <- st.n_sent + 1;
  Metrics.incr st.m_sent;
  if not (direction_up n ~from_:ch.src ~to_:ch.dst) then drop ch ?span msg "link-down"
  else if n.cfg.loss_rate > 0.0 && Rng.float n.loss_rng 1.0 < n.cfg.loss_rate then
    drop ch ?span msg "loss"
  else begin
    Queue.push (msg, span, epoch_of n ch.src ch.dst) ch.queue;
    st.n_inflight <- st.n_inflight + 1;
    Metrics.set st.m_inflight (float_of_int st.n_inflight);
    (* The clamp keeps delivery FIFO even if a future channel variant
       gets a per-message delay; with a constant delay it is a no-op,
       so schedule times are exactly [now + delay]. *)
    let at = Float.max (Engine.now n.engine +. ch.delay) ch.last_delivery in
    ch.last_delivery <- at;
    ignore (Engine.schedule_at ~label:st.ev_label n.engine at (fun () -> deliver ch))
  end

(* Returns whether the direction changed state, so fail/restore notify
   listeners only on an actual transition. *)
let take_down t from_ to_ =
  if Hashtbl.mem t.down (from_, to_) then false
  else begin
    Hashtbl.replace t.down (from_, to_) ();
    Hashtbl.replace t.epoch (from_, to_) (1 + epoch_of t from_ to_);
    true
  end

let bring_up t from_ to_ =
  if Hashtbl.mem t.down (from_, to_) then begin
    Hashtbl.remove t.down (from_, to_);
    true
  end
  else false

let notify t a b ~up = List.iter (fun f -> f a b ~up) (List.rev t.listeners)

let fail_link t a b =
  let c1 = take_down t a b in
  let c2 = take_down t b a in
  if c1 || c2 then notify t a b ~up:false

let restore_link t a b =
  let c1 = bring_up t a b in
  let c2 = bring_up t b a in
  if c1 || c2 then notify t a b ~up:true

let block t ~from_ ~to_ = ignore (take_down t from_ to_)

let unblock t ~from_ ~to_ = ignore (bring_up t from_ to_)

let on_link_change t f = t.listeners <- f :: t.listeners

let sent t ~protocol =
  match Hashtbl.find_opt t.by_protocol protocol with Some s -> s.n_sent | None -> 0

let delivered t ~protocol =
  match Hashtbl.find_opt t.by_protocol protocol with Some s -> s.n_delivered | None -> 0

let dropped t ~protocol =
  match Hashtbl.find_opt t.by_protocol protocol with Some s -> s.n_dropped | None -> 0

let in_flight t ~protocol =
  match Hashtbl.find_opt t.by_protocol protocol with Some s -> s.n_inflight | None -> 0

let protocols t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.by_protocol [] |> List.sort String.compare
