type config = {
  period : Time.t;
  probes_per_source : int;
  harvest_after : Time.t;
  stagger : Time.t;
}

let default_config =
  {
    period = Time.seconds 1.0;
    probes_per_source = 5;
    harvest_after = Time.seconds 1.0;
    stagger = Time.seconds 0.010;
  }

(* A probe in its accounting window: sent, not yet harvested. *)
type pending = {
  p_src : Host_ref.t;
  p_group : Ipv4.t;
  p_seq : int;
  p_sent_at : Time.t;
  p_span : Span.t option;
  mutable p_waiting : Host_ref.t list;  (** expected receivers not yet heard from *)
}

type t = {
  engine : Engine.t;
  topo : Topo.t;
  fabric : Bgmp_fabric.t;
  cfg : config;
  trace : Trace.t option;
  matrix : Beacon_matrix.t;
  listeners : (Ipv4.t, Host_ref.t list ref) Hashtbl.t;  (** registration order *)
  mutable sources : (Ipv4.t * Host_ref.t) list;  (** reverse registration order *)
  pending : (int, pending) Hashtbl.t;  (** by payload id *)
  spf : (Domain.id, Spf.paths) Hashtbl.t;  (** BFS memo per source domain *)
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_lost : int;
  mutable last_harvest : Time.t;
  m_sent : Metrics.counter;
  m_delivered : Metrics.counter;
  m_lost : Metrics.counter;
  m_outstanding : Metrics.gauge;
}

let btrace t ?span tag fmt =
  Format.kasprintf
    (fun detail ->
      match t.trace with
      | Some tr -> Trace.record tr ~time:(Engine.now t.engine) ~actor:"beacon" ~tag ?span detail
      | None -> ())
    fmt

let spf_dist t ~from ~to_ =
  if from = to_ then 0
  else begin
    let paths =
      match Hashtbl.find_opt t.spf from with
      | Some p -> p
      | None ->
          let p = Spf.bfs t.topo from in
          Hashtbl.replace t.spf from p;
          p
    in
    Spf.dist paths to_
  end

let on_delivery t ~group:_ ~source:_ ~payload ~host ~hops =
  match Hashtbl.find_opt t.pending payload with
  | None -> ()  (* not a probe, or already harvested: a straggler stays lost *)
  | Some p ->
      if List.exists (Host_ref.equal host) p.p_waiting then begin
        p.p_waiting <- List.filter (fun h -> not (Host_ref.equal host h)) p.p_waiting;
        t.n_delivered <- t.n_delivered + 1;
        Metrics.incr t.m_delivered;
        let latency = Engine.now t.engine -. p.p_sent_at in
        Beacon_matrix.deliver t.matrix ~src:p.p_src ~dst:host ~latency ~hops
          ~spf_dist:
            (spf_dist t ~from:p.p_src.Host_ref.host_domain ~to_:host.Host_ref.host_domain)
      end

let create ~engine ~topo ~fabric ?(config = default_config) ?trace () =
  let t =
    {
      engine;
      topo;
      fabric;
      cfg = config;
      trace;
      matrix = Beacon_matrix.create ();
      listeners = Hashtbl.create 16;
      sources = [];
      pending = Hashtbl.create 256;
      spf = Hashtbl.create 16;
      n_sent = 0;
      n_delivered = 0;
      n_lost = 0;
      last_harvest = Time.zero;
      m_sent = Metrics.counter "beacon.probes_sent";
      m_delivered = Metrics.counter "beacon.deliveries";
      m_lost = Metrics.counter "beacon.lost";
      m_outstanding = Metrics.gauge "beacon.probes_outstanding";
    }
  in
  Bgmp_fabric.set_on_delivery fabric
    (Some (fun ~group ~source ~payload ~host ~hops -> on_delivery t ~group ~source ~payload ~host ~hops));
  t

let add_listener t ~group ~host =
  let l =
    match Hashtbl.find_opt t.listeners group with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.listeners group l;
        l
  in
  l := !l @ [ host ];
  Bgmp_fabric.host_join t.fabric ~host ~group

let add_source t ~group ~host = t.sources <- (group, host) :: t.sources

let harvest t payload =
  match Hashtbl.find_opt t.pending payload with
  | None -> ()
  | Some p ->
      let missing = List.length p.p_waiting in
      if missing > 0 then begin
        t.n_lost <- t.n_lost + missing;
        Metrics.add t.m_lost missing;
        (* Lost pairs stay as (sent > got) cells; the trace names them. *)
        List.iter
          (fun dst ->
            btrace t ?span:p.p_span "probe-lost" "%a seq %d payload %d never reached %a"
              Ipv4.pp p.p_group p.p_seq payload Host_ref.pp dst)
          p.p_waiting
      end;
      Hashtbl.remove t.pending payload;
      Metrics.set t.m_outstanding (float_of_int (Hashtbl.length t.pending));
      Bgmp_fabric.forget_payload t.fabric ~payload

let fire_probe t ~group ~host ~seq =
  let span =
    match t.trace with
    | Some _ -> Some (Bgmp_fabric.group_span t.fabric host.Host_ref.host_domain group)
    | None -> None
  in
  let expected =
    match Hashtbl.find_opt t.listeners group with Some l -> !l | None -> []
  in
  let payload = Bgmp_fabric.next_payload_id t.fabric in
  let p =
    {
      p_src = host;
      p_group = group;
      p_seq = seq;
      p_sent_at = Engine.now t.engine;
      p_span = span;
      p_waiting = expected;
    }
  in
  List.iter (fun dst -> Beacon_matrix.expect t.matrix ~src:host ~dst) expected;
  Hashtbl.replace t.pending payload p;
  t.n_sent <- t.n_sent + 1;
  Metrics.incr t.m_sent;
  Metrics.set t.m_outstanding (float_of_int (Hashtbl.length t.pending));
  btrace t ?span "probe" "%a seq %d payload %d from %a (%d receivers)" Ipv4.pp group seq
    payload Host_ref.pp host (List.length expected);
  let sent = Bgmp_fabric.send ?span t.fabric ~source:host ~group in
  assert (sent = payload);
  ignore
    (Engine.schedule_after ~label:"beacon.harvest" t.engine t.cfg.harvest_after (fun () ->
         harvest t sent))

let start t ~at =
  if at < Engine.now t.engine then invalid_arg "Beacon.start: start time in the past";
  let sources = List.rev t.sources in
  List.iteri
    (fun i (group, host) ->
      for k = 0 to t.cfg.probes_per_source - 1 do
        let when_ =
          at +. (float_of_int i *. t.cfg.stagger) +. (float_of_int k *. t.cfg.period)
        in
        let harvest_done = when_ +. t.cfg.harvest_after in
        if harvest_done > t.last_harvest then t.last_harvest <- harvest_done;
        ignore
          (Engine.schedule_at ~label:"beacon.probe" t.engine when_ (fun () ->
               fire_probe t ~group ~host ~seq:k))
      done)
    sources

let last_harvest_at t = t.last_harvest

let matrix t = t.matrix

let probes_sent t = t.n_sent

let deliveries t = t.n_delivered

let lost t = t.n_lost

let outstanding t = Hashtbl.length t.pending

let register_series t ts =
  Timeseries.register ts "beacon.probes_outstanding" (fun () ->
      float_of_int (Hashtbl.length t.pending));
  Timeseries.register ts "beacon.probes_sent" (fun () -> float_of_int t.n_sent);
  Timeseries.register ts "beacon.deliveries" (fun () -> float_of_int t.n_delivered);
  Timeseries.register ts "beacon.lost" (fun () -> float_of_int t.n_lost)
