(** The N×N delivery matrix an active-measurement campaign accumulates.

    One cell per (source beacon, receiver beacon) pair that a probe was
    ever addressed to: how many probes the pair expected ([expect], one
    per probe send per expected receiver), how many arrived ([deliver]),
    and running statistics over one-way latency, inter-domain hop count
    and path stretch — the delivered hop count divided by the unicast
    SPF hop distance between the two domains (1.0 when both sit in the
    same domain).  dbeacon renders exactly this matrix from its
    receiver reports; here the accounting is deterministic, so two
    seeded runs produce byte-identical snapshots.

    The accumulator is mergeable ({!merge_into}) so parallel trials can
    fold shard-local matrices back in task order, and exportable as
    JSONL for the [report --matrix] view. *)

type t

val create : unit -> t

val expect : t -> src:Host_ref.t -> dst:Host_ref.t -> unit
(** A probe from [src] was sent to a group [dst] listens on: the pair
    now expects one more delivery. *)

val deliver :
  t -> src:Host_ref.t -> dst:Host_ref.t -> latency:float -> hops:int -> spf_dist:int -> unit
(** A probe copy arrived.  [latency] is one-way sim-time seconds,
    [hops] the inter-domain hop count the copy travelled, [spf_dist]
    the unicast BFS hop distance from [src]'s to [dst]'s domain (0 for
    the same domain — the stretch observation is then 1.0, matching a
    zero-hop interior delivery). *)

val merge_into : into:t -> t -> unit
(** Fold another matrix's cells into [into] (counts add, statistics
    merge).  Merging shard matrices in task order is deterministic. *)

(** {1 Snapshots} *)

type cell = {
  c_src : Host_ref.t;
  c_dst : Host_ref.t;
  c_sent : int;
  c_got : int;
  c_loss : float;  (** lost fraction: [(sent - got) / sent] *)
  c_lat_mean : float;
  c_lat_max : float;  (** 0. when nothing arrived *)
  c_hops_mean : float;
  c_hops_max : float;
  c_stretch_mean : float;
  c_stretch_max : float;
}

val cells : t -> cell list
(** Deterministic snapshot: sorted by (src, dst). *)

type summary = {
  s_pairs : int;
  s_sent : int;
  s_got : int;
  s_lost : int;
  s_loss : float;  (** aggregate lost fraction *)
  s_unreachable : int;  (** pairs that expected probes and got none *)
  s_asymmetric : int;
      (** unordered host pairs measured in both directions whose loss
          fractions differ *)
  s_complete : bool;  (** every pair got every probe *)
  s_lat_mean : float;
  s_lat_max : float;
  s_stretch_mean : float;
  s_stretch_max : float;
}

val summary : cell list -> summary

val worst : cell list -> n:int -> cell list
(** The [n] worst pairs: highest loss fraction first, then highest mean
    latency, then (src, dst) order — the dbeacon "who can't hear whom"
    view. *)

val pp_summary : Format.formatter -> summary -> unit

val pp_cells : Format.formatter -> cell list -> unit
(** One aligned row per cell — intended for small matrices or the
    {!worst} selection. *)

(** {1 JSONL export}

    One meta line ([{"meta": ...}] with caller-supplied (key, value)
    floats, e.g. the convergence and measurement-window timestamps),
    then one line per cell. *)

val write_jsonl : ?meta:(string * float) list -> string -> cell list -> unit

val load_jsonl : string -> (string * float) list * cell list
(** Returns (meta, cells); unparseable lines are skipped. *)

val load_jsonl_counted : string -> (string * float) list * cell list * int
(** Like {!load_jsonl}, also returning the count of malformed
    non-blank cell lines skipped. *)
