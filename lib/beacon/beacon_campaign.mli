(** The canned dbeacon campaign: a transit-stub internet, a beacon
    fleet per domain probing its own group plus an interdomain session
    group rooted at a backbone, trial fan-out over the {!Par} pool.

    Each trial builds its own engine/net/fabric over a seeded
    transit-stub topology (static BFS routes to each group's root),
    joins every beacon losslessly, waits for the trees to settle, then
    turns on the seeded loss rate and runs the probe schedule — so the
    matrix measures {e data-plane} delivery over converged trees, the
    way dbeacon measures a converged multicast internet.  With [churn]
    set, the highest-numbered stub's uplink fails a third of the way
    through the measurement window and is restored at two thirds,
    losing in-flight and at-source probe copies in between.

    Determinism: per-trial seeds are pre-drawn from [seed] on the
    submitting domain, every trial runs under a {!Par.with_shard}, and
    shards/matrices fold back in trial order — results are identical at
    any [--jobs].  Telemetry (an [Obs.Timeseries] driven by the engine
    sampler) is only supported for single-trial runs, like
    [Allocation_sim]. *)

type params = {
  domains : int;  (** target domain count; rounded to the transit-stub shape *)
  per_domain : int;  (** beacons per domain *)
  probes : int;  (** probes per source *)
  period : Time.t;
  harvest_after : Time.t;
  trials : int;
  seed : int;
  loss : float;  (** seeded per-message loss during the probe phase *)
  churn : bool;
  telemetry : (Timeseries.t * Time.t) option;  (** (sink, sample cadence) *)
}

val default_params : params
(** 20 domains, 2 beacons/domain, 3 probes, period 1s, harvest 1s,
    1 trial, seed 1998, no loss, no churn. *)

type trial_result = {
  r_trial : int;
  r_seed : int;
  r_domains : int;
  r_sources : int;
  r_probes_sent : int;
  r_deliveries : int;
  r_lost : int;
  r_duplicates : int;
  r_data_msgs : int;  (** inter-domain data copies the fabric sent *)
  r_net_sent : int;  (** bgmp messages offered to the transport *)
  r_net_dropped : int;
  r_converged_s : float;  (** when the join phase went quiet *)
  r_first_probe_s : float;
  r_last_harvest_s : float;
  r_matrix : Beacon_matrix.t;
}

type result = {
  trials : trial_result list;  (** in trial order *)
  cells : Beacon_matrix.cell list;  (** aggregate matrix over all trials *)
  agg : Beacon_matrix.summary;
}

val run : ?jobs:int -> params -> result
(** @raise Invalid_argument on telemetry with [trials > 1]. *)
