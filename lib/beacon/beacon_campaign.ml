type params = {
  domains : int;
  per_domain : int;
  probes : int;
  period : Time.t;
  harvest_after : Time.t;
  trials : int;
  seed : int;
  loss : float;
  churn : bool;
  telemetry : (Timeseries.t * Time.t) option;
}

let default_params =
  {
    domains = 20;
    per_domain = 2;
    probes = 3;
    period = Time.seconds 1.0;
    harvest_after = Time.seconds 1.0;
    trials = 1;
    seed = 1998;
    loss = 0.0;
    churn = false;
    telemetry = None;
  }

type trial_result = {
  r_trial : int;
  r_seed : int;
  r_domains : int;
  r_sources : int;
  r_probes_sent : int;
  r_deliveries : int;
  r_lost : int;
  r_duplicates : int;
  r_data_msgs : int;
  r_net_sent : int;
  r_net_dropped : int;
  r_converged_s : float;
  r_first_probe_s : float;
  r_last_harvest_s : float;
  r_matrix : Beacon_matrix.t;
}

type result = {
  trials : trial_result list;
  cells : Beacon_matrix.cell list;
  agg : Beacon_matrix.summary;
}

(* Per-domain ASM groups live in 232/8 (the id is just added into the
   host part), the shared interdomain session on a fixed 239/8 admin
   address — dbeacon's own defaults use the same split. *)
let domain_group d = Ipv4.of_octets 232 0 0 0 + d

let session_group = Ipv4.of_octets 239 0 0 1

(* Round the requested size to the transit-stub shape: 2 backbones × 3
   regionals each × s stubs per regional = 8 + 6s domains. *)
let shape ~domains =
  let stubs = max 1 ((domains - 8) / 6) in
  (2, 3, stubs)

let run_trial p ~trial ~seed =
  let engine = Engine.create () in
  let backbones, regionals, stubs = shape ~domains:p.domains in
  let topo =
    Gen.transit_stub ~rng:(Rng.create seed) ~backbones ~regionals_per_backbone:regionals
      ~stubs_per_regional:stubs
  in
  let n = Topo.domain_count topo in
  let net =
    Net.create ~engine ~config:{ Net.default_config with loss_seed = seed } ()
  in
  (* Static G-RIB: the session group roots at backbone 0, each domain
     group at its own domain; next hops follow unicast shortest paths
     (the congruent-topology M-RIB), memoized per root. *)
  let roots = Hashtbl.create (n + 1) in
  Hashtbl.replace roots session_group 0;
  for d = 0 to n - 1 do
    Hashtbl.replace roots (domain_group d) d
  done;
  let cache = Spf.make_cache topo in
  (* Maintained routing: link churn repairs the cached trees in place
     instead of invalidating them, so routes served mid-outage follow
     the surviving topology. *)
  Net.on_link_change net (fun a b ~up -> Spf.cache_note_link cache ~a ~b ~up);
  let route_to_root dom group =
    match Hashtbl.find_opt roots group with
    | None -> Bgmp_fabric.Unroutable
    | Some root ->
        if dom = root then Bgmp_fabric.Root_here
        else begin
          match Spf.next_hop_toward topo (Spf.bfs_cached cache root) dom with
          | Some next -> Bgmp_fabric.Via next
          | None -> Bgmp_fabric.Unroutable
        end
  in
  let fabric =
    Bgmp_fabric.create ~engine ~topo ~net ~migp_style:(fun _ -> Migp.Pim_sm)
      ~route_to_root ()
  in
  let plan = Membership.beacon_plan topo ~per_domain:p.per_domain in
  let nsources = (n * p.per_domain) + n in
  let cfg =
    {
      Beacon.period = p.period;
      probes_per_source = p.probes;
      harvest_after = p.harvest_after;
      (* Spread all first probes across one period so send bursts do
         not synchronise. *)
      stagger = p.period /. float_of_int nsources;
    }
  in
  let beacon = Beacon.create ~engine ~topo ~fabric ~config:cfg () in
  List.iter
    (fun (d, fleet) ->
      let group = domain_group d in
      List.iter (fun host -> Beacon.add_listener beacon ~group ~host) fleet;
      List.iter (fun host -> Beacon.add_source beacon ~group ~host) fleet)
    plan.Membership.local_fleets;
  List.iter
    (fun host -> Beacon.add_listener beacon ~group:session_group ~host)
    plan.Membership.session_beacons;
  List.iter
    (fun host -> Beacon.add_source beacon ~group:session_group ~host)
    plan.Membership.session_beacons;
  (* Phase 1: let every join propagate losslessly, so the matrix
     measures the data plane over converged trees. *)
  Engine.run_until_idle engine;
  let converged =
    match Engine.converged_at engine with Some t -> t | None -> Engine.now engine
  in
  (match p.telemetry with
  | Some (ts, every) ->
      Beacon.register_series beacon ts;
      Engine.set_sampler engine ~every (fun time -> Timeseries.sample ts ~time)
  | None -> ());
  (* Phase 2: seeded loss applies to the measurement window only. *)
  if p.loss > 0.0 then Net.set_loss_rate net p.loss;
  let first_probe = Engine.now engine in
  Beacon.start beacon ~at:first_probe;
  let last_harvest = Beacon.last_harvest_at beacon in
  if p.churn then begin
    (* The highest-numbered stub loses its uplink a third of the way
       through the window and gets it back at two thirds. *)
    match Topo.providers_of topo (n - 1) with
    | provider :: _ ->
        let window = last_harvest -. first_probe in
        ignore
          (Engine.schedule_at ~label:"beacon.churn" engine
             (first_probe +. (0.35 *. window))
             (fun () -> Bgmp_fabric.fail_link fabric (n - 1) provider));
        ignore
          (Engine.schedule_at ~label:"beacon.churn" engine
             (first_probe +. (0.70 *. window))
             (fun () -> Bgmp_fabric.restore_link fabric (n - 1) provider))
    | [] -> ()
  end;
  Engine.run_until_idle engine;
  {
    r_trial = trial;
    r_seed = seed;
    r_domains = n;
    r_sources = nsources;
    r_probes_sent = Beacon.probes_sent beacon;
    r_deliveries = Beacon.deliveries beacon;
    r_lost = Beacon.lost beacon;
    r_duplicates = Bgmp_fabric.duplicate_deliveries fabric;
    r_data_msgs = Bgmp_fabric.data_messages fabric;
    r_net_sent = Net.sent net ~protocol:"bgmp";
    r_net_dropped = Net.dropped net ~protocol:"bgmp";
    r_converged_s = converged;
    r_first_probe_s = first_probe;
    r_last_harvest_s = last_harvest;
    r_matrix = Beacon.matrix beacon;
  }

let run ?jobs (p : params) =
  if p.trials < 1 then invalid_arg "Beacon_campaign.run: need at least one trial";
  (match p.telemetry with
  | Some _ when p.trials > 1 ->
      invalid_arg "Beacon_campaign.run: telemetry requires trials = 1"
  | _ -> ());
  let seed_rng = Rng.create p.seed in
  let tasks = List.init p.trials (fun i -> (i, Rng.int seed_rng 0x3FFFFFFF)) in
  let trials =
    match p.telemetry with
    | Some _ ->
        (* Single trial, inline: the timeseries sink belongs to the
           caller's domain and must not be written from a worker. *)
        List.map (fun (i, seed) -> run_trial p ~trial:i ~seed) tasks
    | None ->
        Par.map ?jobs
          (fun (i, seed) -> Par.with_shard (fun () -> run_trial p ~trial:i ~seed))
          tasks
        |> List.map (fun (r, shard) ->
               Par.merge_shard shard;
               r)
  in
  let agg_matrix = Beacon_matrix.create () in
  List.iter (fun r -> Beacon_matrix.merge_into ~into:agg_matrix r.r_matrix) trials;
  let cells = Beacon_matrix.cells agg_matrix in
  { trials; cells; agg = Beacon_matrix.summary cells }
