(** A dbeacon-style beacon fleet over a {!Bgmp_fabric}.

    Beacons are hosts that {e listen} on groups (joining through the
    fabric, so real BGMP trees carry the traffic) and {e source}
    seq-numbered probes to groups on a fixed period.  Every probe send
    records, per receiver the group had at send time, one expected
    delivery in the fleet's {!Beacon_matrix.t}; the fabric's delivery
    hook folds arriving copies back in (one-way latency in sim time,
    inter-domain hop count, stretch vs the unicast BFS distance), and a
    harvest event [harvest_after] after each send writes off the copies
    that never arrived and releases the fabric's per-payload
    bookkeeping, so long soaks run in bounded memory.

    Scheduling is deterministic: sources probe in registration order,
    staggered by [stagger], each sending [probes_per_source] probes
    [period] apart.  With a trace attached, each probe send records a
    ["probe"] entry and travels under a span descending from the
    group's covering join/G-RIB span ({!Bgmp_fabric.group_span}), so a
    lost probe's [net-drop] entry — and the ["probe-lost"] harvest
    entry — are attributable to the tree that should have carried it. *)

type config = {
  period : Time.t;  (** inter-probe interval per source *)
  probes_per_source : int;
  harvest_after : Time.t;
      (** accounting delay per probe; must exceed the maximum one-way
          path delay or stragglers count as lost *)
  stagger : Time.t;  (** offset between successive sources' first probes *)
}

val default_config : config
(** period 1s, 5 probes per source, harvest after 1s, stagger 10ms. *)

type t

val create :
  engine:Engine.t ->
  topo:Topo.t ->
  fabric:Bgmp_fabric.t ->
  ?config:config ->
  ?trace:Trace.t ->
  unit ->
  t
(** Installs the fleet as the fabric's delivery hook (replacing any
    previous hook). *)

val add_listener : t -> group:Ipv4.t -> host:Host_ref.t -> unit
(** Join the host to the group (through the fabric) and expect probe
    deliveries for it from now on. *)

val add_source : t -> group:Ipv4.t -> host:Host_ref.t -> unit
(** The host will source probes to the group.  Sources need not be
    listeners (IP service model). *)

val start : t -> at:Time.t -> unit
(** Schedule every probe send and harvest.  Call once, after
    registering sources and listeners and (typically) after letting
    the trees converge. *)

val last_harvest_at : t -> Time.t
(** When the final probe's accounting closes (meaningful after
    {!start}); run the engine at least this far. *)

val matrix : t -> Beacon_matrix.t

val probes_sent : t -> int

val deliveries : t -> int

val lost : t -> int
(** Expected deliveries written off by harvests so far. *)

val outstanding : t -> int
(** Probes sent but not yet harvested. *)

val register_series : t -> Timeseries.t -> unit
(** Register [beacon.probes_outstanding], [beacon.probes_sent],
    [beacon.deliveries] and [beacon.lost] sources — drive them with the
    engine sampler for the in-flight / cumulative-loss telemetry
    series. *)
