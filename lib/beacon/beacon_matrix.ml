type acc = {
  mutable sent : int;
  mutable got : int;
  lat : Stats.t;
  hops : Stats.t;
  stretch : Stats.t;
}

type t = (Host_ref.t * Host_ref.t, acc) Hashtbl.t

let create () : t = Hashtbl.create 64

let acc_for t key =
  match Hashtbl.find_opt t key with
  | Some a -> a
  | None ->
      let a = { sent = 0; got = 0; lat = Stats.create (); hops = Stats.create (); stretch = Stats.create () } in
      Hashtbl.replace t key a;
      a

let expect t ~src ~dst =
  let a = acc_for t (src, dst) in
  a.sent <- a.sent + 1

let deliver t ~src ~dst ~latency ~hops ~spf_dist =
  let a = acc_for t (src, dst) in
  a.got <- a.got + 1;
  Stats.add a.lat latency;
  Stats.add a.hops (float_of_int hops);
  let stretch = if spf_dist <= 0 then 1.0 else float_of_int hops /. float_of_int spf_dist in
  Stats.add a.stretch stretch

let merge_into ~into src =
  Hashtbl.iter
    (fun key (a : acc) ->
      match Hashtbl.find_opt into key with
      | None ->
          Hashtbl.replace into key
            {
              sent = a.sent;
              got = a.got;
              lat = Stats.merge (Stats.create ()) a.lat;
              hops = Stats.merge (Stats.create ()) a.hops;
              stretch = Stats.merge (Stats.create ()) a.stretch;
            }
      | Some b ->
          Hashtbl.replace into key
            {
              sent = b.sent + a.sent;
              got = b.got + a.got;
              lat = Stats.merge b.lat a.lat;
              hops = Stats.merge b.hops a.hops;
              stretch = Stats.merge b.stretch a.stretch;
            })
    src

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type cell = {
  c_src : Host_ref.t;
  c_dst : Host_ref.t;
  c_sent : int;
  c_got : int;
  c_loss : float;
  c_lat_mean : float;
  c_lat_max : float;
  c_hops_mean : float;
  c_hops_max : float;
  c_stretch_mean : float;
  c_stretch_max : float;
}

let cell_of (src, dst) (a : acc) =
  let smax s = if Stats.count s = 0 then 0.0 else Stats.max s in
  {
    c_src = src;
    c_dst = dst;
    c_sent = a.sent;
    c_got = a.got;
    c_loss =
      (if a.sent = 0 then 0.0 else float_of_int (a.sent - a.got) /. float_of_int a.sent);
    c_lat_mean = Stats.mean a.lat;
    c_lat_max = smax a.lat;
    c_hops_mean = Stats.mean a.hops;
    c_hops_max = smax a.hops;
    c_stretch_mean = Stats.mean a.stretch;
    c_stretch_max = smax a.stretch;
  }

let cells t =
  Hashtbl.fold (fun key a l -> cell_of key a :: l) t []
  |> List.sort (fun a b ->
         match Host_ref.compare a.c_src b.c_src with
         | 0 -> Host_ref.compare a.c_dst b.c_dst
         | c -> c)

type summary = {
  s_pairs : int;
  s_sent : int;
  s_got : int;
  s_lost : int;
  s_loss : float;
  s_unreachable : int;
  s_asymmetric : int;
  s_complete : bool;
  s_lat_mean : float;
  s_lat_max : float;
  s_stretch_mean : float;
  s_stretch_max : float;
}

let summary cs =
  let sent = List.fold_left (fun a c -> a + c.c_sent) 0 cs in
  let got = List.fold_left (fun a c -> a + c.c_got) 0 cs in
  let unreachable = List.length (List.filter (fun c -> c.c_sent > 0 && c.c_got = 0) cs) in
  (* Loss asymmetry between the two directions of a host pair: dbeacon's
     tell-tale for one-way filtering.  Only pairs measured both ways
     count. *)
  let by_pair = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace by_pair (c.c_src, c.c_dst) c.c_loss) cs;
  let asym =
    List.fold_left
      (fun n c ->
        if Host_ref.compare c.c_src c.c_dst < 0 then
          match Hashtbl.find_opt by_pair (c.c_dst, c.c_src) with
          | Some back when Float.abs (back -. c.c_loss) > 1e-9 -> n + 1
          | Some _ | None -> n
        else n)
      0 cs
  in
  (* Delivery-weighted aggregate latency/stretch over all cells. *)
  let wsum f = List.fold_left (fun a c -> a +. (f c *. float_of_int c.c_got)) 0.0 cs in
  let fmax f = List.fold_left (fun a c -> Float.max a (f c)) 0.0 cs in
  {
    s_pairs = List.length cs;
    s_sent = sent;
    s_got = got;
    s_lost = sent - got;
    s_loss = (if sent = 0 then 0.0 else float_of_int (sent - got) /. float_of_int sent);
    s_unreachable = unreachable;
    s_asymmetric = asym;
    s_complete = sent > 0 && got = sent;
    s_lat_mean = (if got = 0 then 0.0 else wsum (fun c -> c.c_lat_mean) /. float_of_int got);
    s_lat_max = fmax (fun c -> c.c_lat_max);
    s_stretch_mean =
      (if got = 0 then 0.0 else wsum (fun c -> c.c_stretch_mean) /. float_of_int got);
    s_stretch_max = fmax (fun c -> c.c_stretch_max);
  }

let worst cs ~n =
  let cmp a b =
    match compare b.c_loss a.c_loss with
    | 0 -> (
        match compare b.c_lat_mean a.c_lat_mean with
        | 0 -> (
            match Host_ref.compare a.c_src b.c_src with
            | 0 -> Host_ref.compare a.c_dst b.c_dst
            | c -> c)
        | c -> c)
    | c -> c
  in
  List.filteri (fun i _ -> i < n) (List.sort cmp cs)

let pp_summary ppf s =
  Format.fprintf ppf
    "pairs %d  probes %d  delivered %d  lost %d (%.4f)  unreachable %d  asymmetric %d  %s@\n\
     latency mean %.6fs max %.6fs  stretch mean %.4f max %.4f"
    s.s_pairs s.s_sent s.s_got s.s_lost s.s_loss s.s_unreachable s.s_asymmetric
    (if s.s_complete then "COMPLETE" else "INCOMPLETE")
    s.s_lat_mean s.s_lat_max s.s_stretch_mean s.s_stretch_max

let pp_cells ppf cs =
  Format.fprintf ppf "%-10s %-10s %5s %5s %7s %10s %6s %8s@\n" "src" "dst" "sent" "got"
    "loss" "lat-mean" "hops" "stretch";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-10s %-10s %5d %5d %7.4f %10.6f %6.2f %8.4f@\n"
        (Format.asprintf "%a" Host_ref.pp c.c_src)
        (Format.asprintf "%a" Host_ref.pp c.c_dst)
        c.c_sent c.c_got c.c_loss c.c_lat_mean c.c_hops_mean c.c_stretch_mean)
    cs

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let jf f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let cell_to_json c =
  Printf.sprintf
    "{\"src\": [%d, %d], \"dst\": [%d, %d], \"sent\": %d, \"got\": %d, \"loss\": %s, \
     \"lat_mean\": %s, \"lat_max\": %s, \"hops_mean\": %s, \"hops_max\": %s, \
     \"stretch_mean\": %s, \"stretch_max\": %s}"
    c.c_src.Host_ref.host_domain c.c_src.Host_ref.host_index c.c_dst.Host_ref.host_domain
    c.c_dst.Host_ref.host_index c.c_sent c.c_got (jf c.c_loss) (jf c.c_lat_mean)
    (jf c.c_lat_max) (jf c.c_hops_mean) (jf c.c_hops_max) (jf c.c_stretch_mean)
    (jf c.c_stretch_max)

let write_jsonl ?(meta = []) file cs =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (Printf.sprintf "{\"meta\": {%s}}\n"
           (String.concat ", "
              (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k (jf v)) meta)));
      List.iter
        (fun c ->
          output_string oc (cell_to_json c);
          output_char oc '\n')
        cs)

(* Hand-rolled field scanning, like the rest of the repo: no JSON dep. *)
let scan_float line key =
  let re = Str.regexp ("\"" ^ Str.quote key ^ "\": \\(-?[0-9.eE+-]+\\)") in
  try
    ignore (Str.search_forward re line 0);
    Some (float_of_string (Str.matched_group 1 line))
  with Not_found | Failure _ -> None

let scan_host line key =
  let re = Str.regexp ("\"" ^ Str.quote key ^ "\": \\[\\([0-9]+\\), \\([0-9]+\\)\\]") in
  try
    ignore (Str.search_forward re line 0);
    Some (Host_ref.make (int_of_string (Str.matched_group 1 line))
            (int_of_string (Str.matched_group 2 line)))
  with Not_found | Failure _ -> None

let cell_of_json line =
  match (scan_host line "src", scan_host line "dst") with
  | Some src, Some dst ->
      let f key d = match scan_float line key with Some v -> v | None -> d in
      Some
        {
          c_src = src;
          c_dst = dst;
          c_sent = int_of_float (f "sent" 0.0);
          c_got = int_of_float (f "got" 0.0);
          c_loss = f "loss" 0.0;
          c_lat_mean = f "lat_mean" 0.0;
          c_lat_max = f "lat_max" 0.0;
          c_hops_mean = f "hops_mean" 0.0;
          c_hops_max = f "hops_max" 0.0;
          c_stretch_mean = f "stretch_mean" 0.0;
          c_stretch_max = f "stretch_max" 0.0;
        }
  | _ -> None

let meta_of_json line =
  let pairs = ref [] in
  let re = Str.regexp "\"\\([a-zA-Z0-9_.]+\\)\": \\(-?[0-9.eE+-]+\\)" in
  let pos = ref 0 in
  (try
     while true do
       pos := 1 + Str.search_forward re line !pos;
       pairs :=
         (Str.matched_group 1 line, float_of_string (Str.matched_group 2 line)) :: !pairs
     done
   with Not_found | Failure _ -> ());
  List.rev !pairs

let load_jsonl_counted file =
  let ic = open_in file in
  let meta = ref [] and cells = ref [] and bad = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             if
               try
                 ignore (Str.search_forward (Str.regexp_string "\"meta\"") line 0);
                 true
               with Not_found -> false
             then meta := meta_of_json line
             else
               match cell_of_json line with
               | Some c -> cells := c :: !cells
               | None -> incr bad
         done
       with End_of_file -> ());
      (!meta, List.rev !cells, !bad))

let load_jsonl file =
  let meta, cells, _ = load_jsonl_counted file in
  (meta, cells)
