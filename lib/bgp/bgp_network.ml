type t = {
  engine : Engine.t;
  topo : Topo.t;
  speakers : Speaker.t array;
  mutable delivered : int;
  down : (Domain.id * Domain.id, unit) Hashtbl.t;
}

let relation_from_link ~self ~(link : Topo.link) =
  match link.Topo.rel with
  | Topo.Peer -> Speaker.To_peer
  | Topo.Provider_customer ->
      if link.Topo.a = self then Speaker.To_customer else Speaker.To_provider

let create ~engine ~topo =
  let n = Topo.domain_count topo in
  let speakers = Array.init n (fun id -> Speaker.create ~id) in
  let t = { engine; topo; speakers; delivered = 0; down = Hashtbl.create 4 } in
  List.iter
    (fun (link : Topo.link) ->
      let sa = speakers.(link.Topo.a) and sb = speakers.(link.Topo.b) in
      Speaker.add_peer sa link.Topo.b (relation_from_link ~self:link.Topo.a ~link);
      Speaker.add_peer sb link.Topo.a (relation_from_link ~self:link.Topo.b ~link))
    (Topo.links topo);
  Array.iteri
    (fun src speaker ->
      (* Convergence watermark: a G-RIB change is the BGP layer's
         durable state change.  [Internet] replaces this hook and keeps
         the same watermark. *)
      Speaker.set_on_grib_change speaker (fun _ -> Engine.note_activity engine "bgp");
      Speaker.set_send speaker (fun ~dst update ->
          let link =
            match Topo.link_between topo src dst with
            | Some l -> l
            | None -> invalid_arg "Bgp_network: send to non-adjacent domain"
          in
          let pair = if src < dst then (src, dst) else (dst, src) in
          if not (Hashtbl.mem t.down pair) then
            ignore
              (Engine.schedule_after engine link.Topo.delay (fun () ->
                   (* Messages in flight when the link died are lost. *)
                   if not (Hashtbl.mem t.down pair) then begin
                     t.delivered <- t.delivered + 1;
                     Speaker.receive speakers.(dst) ~from_:src update
                   end))))
    speakers;
  t

let speaker t id = t.speakers.(id)

let engine t = t.engine

let topo t = t.topo

let originate ?lifetime_end ?span t id prefix =
  Speaker.originate ?lifetime_end ?span t.speakers.(id) prefix

let withdraw t id prefix = Speaker.withdraw_origin t.speakers.(id) prefix

let fail_link t a b =
  if Topo.link_between t.topo a b = None then invalid_arg "Bgp_network.fail_link: no such link";
  Hashtbl.replace t.down (min a b, max a b) ();
  Speaker.peer_down t.speakers.(a) b;
  Speaker.peer_down t.speakers.(b) a

let restore_link t a b =
  Hashtbl.remove t.down (min a b, max a b);
  Speaker.peer_up t.speakers.(a) b;
  Speaker.peer_up t.speakers.(b) a

let converge t = Engine.run_until_idle t.engine

let update_count t = t.delivered

let grib_sizes t = Array.map Speaker.grib_size t.speakers
