type t = {
  engine : Engine.t;
  topo : Topo.t;
  net : Net.t;
  speakers : Speaker.t array;
  channels : (Domain.id * Domain.id, Update.t Net.channel) Hashtbl.t;
}

let relation_from_link ~self ~(link : Topo.link) =
  match link.Topo.rel with
  | Topo.Peer -> Speaker.To_peer
  | Topo.Provider_customer ->
      if link.Topo.a = self then Speaker.To_customer else Speaker.To_provider

let update_span = function
  | Update.Advertise r -> r.Route.span
  | Update.Withdraw _ -> None

let create ~engine ?net ~topo () =
  let net = match net with Some n -> n | None -> Net.create ~engine () in
  let n = Topo.domain_count topo in
  let speakers = Array.init n (fun id -> Speaker.create ~id) in
  let t = { engine; topo; net; speakers; channels = Hashtbl.create (2 * n) } in
  let add_channel src dst delay =
    Hashtbl.add t.channels (src, dst)
      (Net.channel net ~protocol:"bgp" ~src ~dst ~delay ~recv:(fun update ->
           Speaker.receive speakers.(dst) ~from_:src update))
  in
  List.iter
    (fun (link : Topo.link) ->
      let sa = speakers.(link.Topo.a) and sb = speakers.(link.Topo.b) in
      Speaker.add_peer sa link.Topo.b (relation_from_link ~self:link.Topo.a ~link);
      Speaker.add_peer sb link.Topo.a (relation_from_link ~self:link.Topo.b ~link);
      add_channel link.Topo.a link.Topo.b link.Topo.delay;
      add_channel link.Topo.b link.Topo.a link.Topo.delay)
    (Topo.links topo);
  (* Peering sessions follow the transport's link state: when a link
     with a topology peering fails, both sessions drop (routes learned
     over it flush and withdrawals ripple out); on restore they re-form
     and exchange full tables.  Overlay pairs (MASC's) have no session
     to drop. *)
  Net.on_link_change net (fun a b ~up ->
      if a < n && b < n && Topo.link_between topo a b <> None then
        if up then begin
          Speaker.peer_up t.speakers.(a) b;
          Speaker.peer_up t.speakers.(b) a
        end
        else begin
          Speaker.peer_down t.speakers.(a) b;
          Speaker.peer_down t.speakers.(b) a
        end);
  Array.iteri
    (fun src speaker ->
      (* Convergence watermark: a G-RIB change is the BGP layer's
         durable state change.  [Internet] replaces this hook and keeps
         the same watermark. *)
      Speaker.set_on_grib_change speaker (fun _ -> Engine.note_activity engine "bgp");
      Speaker.set_send speaker (fun ~dst update ->
          match Hashtbl.find_opt t.channels (src, dst) with
          | Some ch -> Net.send ch ?span:(update_span update) update
          | None -> invalid_arg "Bgp_network: send to non-adjacent domain"))
    speakers;
  t

let speaker t id = t.speakers.(id)

let engine t = t.engine

let topo t = t.topo

let net t = t.net

let originate ?lifetime_end ?span t id prefix =
  Speaker.originate ?lifetime_end ?span t.speakers.(id) prefix

let withdraw t id prefix = Speaker.withdraw_origin t.speakers.(id) prefix

let fail_link t a b =
  if Topo.link_between t.topo a b = None then invalid_arg "Bgp_network.fail_link: no such link";
  Net.fail_link t.net a b

let restore_link t a b =
  if Topo.link_between t.topo a b = None then
    invalid_arg "Bgp_network.restore_link: no such link";
  Net.restore_link t.net a b

let converge t = Engine.run_until_idle t.engine

let update_count t = Net.delivered t.net ~protocol:"bgp"

let grib_sizes t = Array.map Speaker.grib_size t.speakers
