(** A network of BGP speakers, one per topology domain, exchanging
    updates over the simulation engine.

    Peerings mirror the topology's links; relationships are derived from
    the link's provider/customer/peer annotation.  Updates travel over
    {!Net} channels (two per link, one per direction) with the link's
    delay; channels are FIFO, which stands in for the TCP peering
    sessions of real BGP, and session state follows the transport's link
    state. *)

type t

val create : engine:Engine.t -> ?net:Net.t -> topo:Topo.t -> unit -> t
(** Build one speaker per domain and peer them along every link.  [net]
    is the transport to send over — pass the internet-wide one to share
    link state with MASC and BGMP; by default the network gets a private
    [Net.t] on the same engine. *)

val speaker : t -> Domain.id -> Speaker.t

val engine : t -> Engine.t

val topo : t -> Topo.t

val net : t -> Net.t
(** The transport updates travel over. *)

val originate : ?lifetime_end:Time.t -> ?span:Span.t -> t -> Domain.id -> Prefix.t -> unit
(** Inject a group route at its root domain (what a MASC node does after
    winning a claim) and let it propagate. *)

val withdraw : t -> Domain.id -> Prefix.t -> unit

val fail_link : t -> Domain.id -> Domain.id -> unit
(** [Net.fail_link] on the transport: both BGP sessions drop (routes
    learned over it are flushed and withdrawals ripple out) and any
    in-flight updates on the link are lost.
    @raise Invalid_argument if no such topology link exists. *)

val restore_link : t -> Domain.id -> Domain.id -> unit
(** [Net.restore_link] on the transport: the sessions re-form and both
    sides exchange full tables.
    @raise Invalid_argument if no such topology link exists. *)

val converge : t -> unit
(** Run the engine until no BGP activity remains. *)

val update_count : t -> int
(** Total update messages delivered so far (control-traffic metric). *)

val grib_sizes : t -> int array
(** Per-domain G-RIB sizes, indexed by domain id. *)
