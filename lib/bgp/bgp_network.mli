(** A network of BGP speakers, one per topology domain, exchanging
    updates over the simulation engine.

    Peerings mirror the topology's links; relationships are derived from
    the link's provider/customer/peer annotation.  Updates are delivered
    with the link's delay; sessions are FIFO (the engine breaks
    equal-time ties in scheduling order), which stands in for the TCP
    peering sessions of real BGP. *)

type t

val create : engine:Engine.t -> topo:Topo.t -> t
(** Build one speaker per domain and peer them along every link. *)

val speaker : t -> Domain.id -> Speaker.t

val engine : t -> Engine.t

val topo : t -> Topo.t

val originate : ?lifetime_end:Time.t -> ?span:Span.t -> t -> Domain.id -> Prefix.t -> unit
(** Inject a group route at its root domain (what a MASC node does after
    winning a claim) and let it propagate. *)

val withdraw : t -> Domain.id -> Prefix.t -> unit

val fail_link : t -> Domain.id -> Domain.id -> unit
(** Take the inter-domain link down: both BGP sessions drop (routes
    learned over it are flushed and withdrawals ripple out) and any
    in-flight updates on the link are lost. *)

val restore_link : t -> Domain.id -> Domain.id -> unit
(** Bring the link back: the sessions re-form and both sides exchange
    full tables. *)

val converge : t -> unit
(** Run the engine until no BGP activity remains. *)

val update_count : t -> int
(** Total update messages delivered so far (control-traffic metric). *)

val grib_sizes : t -> int array
(** Per-domain G-RIB sizes, indexed by domain id. *)
