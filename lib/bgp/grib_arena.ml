type t = {
  n : int;
  map : Packed_map.t;  (* (group * n + node) -> next_hop + 1 *)
  counts : int array;  (* per-router entry count *)
}

let create ?(initial = 16) ~domains () =
  if domains < 1 then invalid_arg "Grib_arena.create: need at least one domain";
  { n = domains; map = Packed_map.create ~initial (); counts = Array.make domains 0 }

let domains t = t.n

let key t ~group ~node =
  if group < 0 then invalid_arg "Grib_arena: negative group id";
  if node < 0 || node >= t.n then invalid_arg "Grib_arena: unknown node id";
  (group * t.n) + node

let no_entry = -2

let find t ~group ~node =
  match Packed_map.find t.map (key t ~group ~node) with
  | -1 -> no_entry
  | v -> v - 1

let mem t ~group ~node = Packed_map.mem t.map (key t ~group ~node)

let set t ~group ~node hop =
  if hop < -1 || hop >= t.n then invalid_arg "Grib_arena.set: bad next hop";
  let k = key t ~group ~node in
  if not (Packed_map.mem t.map k) then t.counts.(node) <- t.counts.(node) + 1;
  Packed_map.set t.map k (hop + 1)

let remove t ~group ~node =
  let k = key t ~group ~node in
  if Packed_map.mem t.map k then begin
    Packed_map.remove t.map k;
    t.counts.(node) <- t.counts.(node) - 1
  end

let entries t = Packed_map.length t.map

let node_entries t node =
  if node < 0 || node >= t.n then invalid_arg "Grib_arena: unknown node id";
  t.counts.(node)

let storage_words t = (2 * Packed_map.capacity t.map) + t.n
