type peer_relation = To_customer | To_provider | To_peer

let m_advertises = Metrics.counter "bgp.advertises_sent"
let m_withdraws = Metrics.counter "bgp.withdraws_sent"
let m_grib_max = Metrics.gauge "bgp.grib_size_max"

type t = {
  self : Domain.id;
  peers : (Domain.id, peer_relation) Hashtbl.t;
  mutable peer_order : Domain.id list;  (** insertion order, for determinism *)
  adj_in : (Domain.id, (Prefix.t, Route.t) Hashtbl.t) Hashtbl.t;
  originated_tbl : (Prefix.t, Route.t) Hashtbl.t;
  grib : Route.t Prefix_trie.t;
  exported : (Domain.id * Prefix.t, Route.t) Hashtbl.t;
      (** what each peer last heard from us, keyed (peer, prefix) *)
  down_peers : (Domain.id, unit) Hashtbl.t;
      (** peers whose session is down: nothing is exported (or recorded
          as exported) to them until {!peer_up} *)
  mutable send : dst:Domain.id -> Update.t -> unit;
  mutable extra_filter : dst:Domain.id -> Route.t -> bool;
  mutable on_grib_change : Prefix.t -> unit;
}

let create ~id =
  {
    self = id;
    peers = Hashtbl.create 8;
    peer_order = [];
    adj_in = Hashtbl.create 8;
    originated_tbl = Hashtbl.create 4;
    grib = Prefix_trie.create ();
    exported = Hashtbl.create 16;
    down_peers = Hashtbl.create 2;
    send = (fun ~dst:_ _ -> ());
    extra_filter = (fun ~dst:_ _ -> true);
    on_grib_change = (fun _ -> ());
  }

let id t = t.self

let add_peer t peer rel =
  if Hashtbl.mem t.peers peer then invalid_arg "Speaker.add_peer: duplicate peer";
  Hashtbl.replace t.peers peer rel;
  t.peer_order <- t.peer_order @ [ peer ];
  Hashtbl.replace t.adj_in peer (Hashtbl.create 8)

let peers t = List.map (fun p -> (p, Hashtbl.find t.peers p)) t.peer_order

let set_send t f = t.send <- f

let set_export_filter t f = t.extra_filter <- f

let set_on_grib_change t f = t.on_grib_change <- f

let originated t = List.sort Prefix.compare (Hashtbl.fold (fun p _ acc -> p :: acc) t.originated_tbl [])

(* The default export rule (Gao–Rexford, §2 "Routing policies"): a route
   is exported to a peer iff we originated it or learned it from a
   customer; routes learned from providers or peers are only exported to
   customers.  Aggregation: learned routes covered by one of our own
   originated prefixes stay local (§4.3.2).  Never echo a route to the
   peer it came from. *)
let exportable t ~dst route =
  let rel_to_dst = Hashtbl.find t.peers dst in
  let learned_from = Route.next_hop route in
  let self_originated = learned_from = None in
  if learned_from = Some dst then false
  else if Route.contains_loop route dst then false
  else begin
    let aggregated =
      (not self_originated)
      && Hashtbl.fold
           (fun own _ acc -> acc || Prefix.subsumes own route.Route.prefix)
           t.originated_tbl false
    in
    if aggregated then false
    else begin
      let policy_ok =
        if self_originated then true
        else begin
          let from_rel =
            match learned_from with
            | Some peer -> Hashtbl.find t.peers peer
            | None -> To_customer
          in
          match from_rel with
          | To_customer -> true
          | To_provider | To_peer -> rel_to_dst = To_customer
        end
      in
      policy_ok && t.extra_filter ~dst route
    end
  end

(* Re-run the decision process for one prefix and push any change to the
   G-RIB and to peers.  [desired] per peer is what that peer should hear
   from us; diffing against [exported] yields the minimal update. *)
let reconsider_impl t prefix =
  let candidates =
    let own =
      match Hashtbl.find_opt t.originated_tbl prefix with
      | Some r -> [ r ]
      | None -> []
    in
    List.fold_left
      (fun acc peer ->
        match Hashtbl.find_opt (Hashtbl.find t.adj_in peer) prefix with
        | Some r -> r :: acc
        | None -> acc)
      own t.peer_order
  in
  let best =
    match candidates with
    | [] -> None
    | first :: rest -> Some (List.fold_left Route.prefer first rest)
  in
  let previous_best = Prefix_trie.find_exact t.grib prefix in
  (match best with
  | None -> Prefix_trie.remove t.grib prefix
  | Some r -> Prefix_trie.add t.grib prefix r);
  let changed =
    match (previous_best, best) with
    | None, None -> false
    | Some a, Some b -> not (Route.equal a b)
    | None, Some _ | Some _, None -> true
  in
  if changed then begin
    Metrics.set_max m_grib_max (float_of_int (Prefix_trie.cardinal t.grib));
    t.on_grib_change prefix
  end;
  let export () =
    List.iter
      (fun peer ->
        if Hashtbl.mem t.down_peers peer then ()
        else
        let desired =
          match best with
          | Some r when exportable t ~dst:peer r -> Some (Route.through r t.self)
          | Some _ | None -> None
        in
        let previous = Hashtbl.find_opt t.exported (peer, prefix) in
        match (previous, desired) with
        | None, None -> ()
        | Some old_r, Some new_r when Route.equal old_r new_r -> ()
        | _, Some new_r ->
            Hashtbl.replace t.exported (peer, prefix) new_r;
            Metrics.incr m_advertises;
            t.send ~dst:peer (Update.Advertise new_r)
        | Some _, None ->
            Hashtbl.remove t.exported (peer, prefix);
            Metrics.incr m_withdraws;
            t.send ~dst:peer (Update.Withdraw prefix))
      t.peer_order
  in
  if Prof.is_enabled () then Prof.span "bgp.export" export else export ()

let reconsider t prefix =
  if Prof.is_enabled () then Prof.span "bgp.decide" (fun () -> reconsider_impl t prefix)
  else reconsider_impl t prefix

let originate ?lifetime_end ?span t prefix =
  let r = Route.originate ?lifetime_end ?span t.self prefix in
  (match Hashtbl.find_opt t.originated_tbl prefix with
  | Some existing
    when Route.equal existing r
         && existing.Route.lifetime_end = lifetime_end
         && existing.Route.span = span -> ()
  | Some _ | None ->
      Hashtbl.replace t.originated_tbl prefix r;
      reconsider t prefix;
      (* A freshly covering aggregate makes previously exported more
         specific routes redundant; withdraw them. *)
      let covered =
        Hashtbl.fold
          (fun (peer, p) _ acc ->
            if Prefix.subsumes prefix p && not (Prefix.equal prefix p) then (peer, p) :: acc
            else acc)
          t.exported []
      in
      List.iter (fun (_, p) -> reconsider t p) (List.sort_uniq compare covered))

let withdraw_origin t prefix =
  if Hashtbl.mem t.originated_tbl prefix then begin
    Hashtbl.remove t.originated_tbl prefix;
    reconsider t prefix;
    (* Routes we were aggregating may now need to be exported. *)
    let uncovered =
      Hashtbl.fold
        (fun peer tbl acc ->
          ignore peer;
          Hashtbl.fold
            (fun p _ acc -> if Prefix.subsumes prefix p && not (Prefix.equal prefix p) then p :: acc else acc)
            tbl acc)
        t.adj_in []
    in
    List.iter (reconsider t) (List.sort_uniq Prefix.compare uncovered)
  end

let peer_down t peer =
  let tbl =
    match Hashtbl.find_opt t.adj_in peer with
    | Some tbl -> tbl
    | None -> invalid_arg "Speaker.peer_down: unknown peer"
  in
  Hashtbl.replace t.down_peers peer ();
  let prefixes = Hashtbl.fold (fun p _ acc -> p :: acc) tbl [] in
  Hashtbl.reset tbl;
  (* Also forget what we exported to the dead session; a fresh session
     starts from an empty view. *)
  let exported_here =
    Hashtbl.fold (fun (q, p) _ acc -> if q = peer then (q, p) :: acc else acc) t.exported []
  in
  List.iter (Hashtbl.remove t.exported) exported_here;
  List.iter (reconsider t) (List.sort_uniq Prefix.compare prefixes)

let peer_up t peer =
  if not (Hashtbl.mem t.peers peer) then invalid_arg "Speaker.peer_up: unknown peer";
  Hashtbl.remove t.down_peers peer;
  (* Re-run the decision for everything we know; the export diff against
     the (empty) session state re-sends the full table. *)
  let known =
    Hashtbl.fold (fun p _ acc -> p :: acc) t.originated_tbl []
    @ Prefix_trie.fold t.grib ~init:[] ~f:(fun p _ acc -> p :: acc)
  in
  List.iter (reconsider t) (List.sort_uniq Prefix.compare known)

let receive t ~from_ update =
  let tbl =
    match Hashtbl.find_opt t.adj_in from_ with
    | Some tbl -> tbl
    | None -> invalid_arg "Speaker.receive: unknown peer"
  in
  match update with
  | Update.Advertise r ->
      if Route.contains_loop r t.self then begin
        (* Loop-rejected advertisement acts as an implicit withdraw of any
           previous route for the prefix from this peer. *)
        if Hashtbl.mem tbl r.Route.prefix then begin
          Hashtbl.remove tbl r.Route.prefix;
          reconsider t r.Route.prefix
        end
      end
      else begin
        Hashtbl.replace tbl r.Route.prefix r;
        reconsider t r.Route.prefix
      end
  | Update.Withdraw p ->
      if Hashtbl.mem tbl p then begin
        Hashtbl.remove tbl p;
        reconsider t p
      end

let lookup t addr = Option.map snd (Prefix_trie.longest_match t.grib addr)

let next_hop_to_root t addr =
  match lookup t addr with
  | None -> None
  | Some r -> Route.next_hop r

let best_routes t = Prefix_trie.to_list t.grib

let grib_size t = Prefix_trie.cardinal t.grib
