(** A per-domain BGP speaker carrying {e group routes}.

    The paper models one logical routing decision per domain ("BGP's
    route selection algorithm ensures that one border router is chosen as
    the best exit router for each group route"), so we host one speaker
    per domain.  The speaker maintains per-peer Adj-RIB-In tables and a
    G-RIB of best routes; its decision process and export rules follow
    BGP, with two architecture-specific twists from §4.2/§4.3.2:

    - {b aggregation}: a speaker does not export a learned route whose
      prefix is subsumed by a prefix the speaker itself originates (the
      parent's covering group route makes the child's route redundant
      outside the parent), and
    - {b policy}: exports follow the provider/customer/peer
      (Gao–Rexford) rules by default — customer routes go to everyone,
      provider/peer routes only to customers — and can be further
      restricted per peer to express multicast policy. *)

type peer_relation =
  | To_customer  (** the peer is our customer *)
  | To_provider  (** the peer is our provider *)
  | To_peer

type t

val create : id:Domain.id -> t

val id : t -> Domain.id

val add_peer : t -> Domain.id -> peer_relation -> unit
(** Declare a peering.  @raise Invalid_argument on duplicates. *)

val peers : t -> (Domain.id * peer_relation) list

val set_send : t -> (dst:Domain.id -> Update.t -> unit) -> unit
(** Install the transport used to reach peers (the network layer
    schedules delivery on the simulation engine). *)

val set_export_filter : t -> (dst:Domain.id -> Route.t -> bool) -> unit
(** An additional policy predicate ANDed with the default export rules;
    use it to express "do not advertise this group range to that peer". *)

val originate : ?lifetime_end:Time.t -> ?span:Span.t -> t -> Prefix.t -> unit
(** Inject a group route for a MASC-claimed range and advertise it to
    peers per policy.  Re-originating the same prefix is idempotent. *)

val withdraw_origin : t -> Prefix.t -> unit
(** Remove a self-originated route (MASC lifetime expiry or collision
    loss) and send withdrawals. *)

val set_on_grib_change : t -> (Prefix.t -> unit) -> unit
(** Install a listener fired whenever the best route for a prefix
    changes (installed, replaced, or removed) — the signal a BGMP
    component needs to repair shared trees whose path to the root moved
    (route withdrawals, policy changes, MASC renumbering). *)

val peer_down : t -> Domain.id -> unit
(** The peering session dropped: flush every route learned from that
    peer and stop exporting to it — no updates are sent (or recorded as
    sent) to the peer until {!peer_up} — as real BGP does when the TCP
    session dies.  @raise Invalid_argument on an unknown peer. *)

val peer_up : t -> Domain.id -> unit
(** The session is back: re-advertise the full exportable table to the
    peer (BGP's initial table exchange). *)

val receive : t -> from_:Domain.id -> Update.t -> unit
(** Process an update from a peer: store in Adj-RIB-In, re-run the
    decision process, propagate any change.  Routes containing our own
    id in their path are rejected (loop prevention).
    @raise Invalid_argument if [from_] is not a declared peer. *)

val lookup : t -> Ipv4.t -> Route.t option
(** G-RIB longest-prefix match: the route toward the root domain of the
    given group address. *)

val next_hop_to_root : t -> Ipv4.t -> Domain.id option
(** The peer to forward joins/data toward for this group; [None] when we
    are the root domain ourselves or the address is unroutable. *)

val best_routes : t -> (Prefix.t * Route.t) list
(** The G-RIB contents, in prefix order. *)

val grib_size : t -> int

val originated : t -> Prefix.t list
