(** Arena-backed G-RIB state for dense group/root ids.

    The per-router G-RIB of the full protocol stack ({!Speaker}) keeps
    one record per route with AS paths and provenance — right for
    protocol dynamics, far too heavy for state-scaling studies where
    75k routers each hold entries for thousands of group ranges.  This
    arena keeps exactly what a G-RIB lookup answers — {e next hop
    toward the group's root domain} — as one packed int per (group,
    node) entry in a flat open-addressed table, plus a per-router entry
    count, so "G-RIB size vs members/groups" curves come from int
    arrays instead of record heaps. *)

type t

val create : ?initial:int -> domains:int -> unit -> t
(** An empty arena for routers [0 .. domains-1].  Group ids are dense
    nonnegative ints (their range is not fixed up front); [initial]
    hints the expected total entry count. *)

val domains : t -> int

val no_entry : int
(** [-2]: returned by {!find} when the router holds no entry. *)

val find : t -> group:int -> node:int -> int
(** The next hop toward the group's root: a domain id, [-1] when [node]
    is itself the root (an entry with no next hop), or {!no_entry}. *)

val mem : t -> group:int -> node:int -> bool

val set : t -> group:int -> node:int -> int -> unit
(** [set t ~group ~node hop] installs or overwrites the entry ([hop] is
    a domain id, or [-1] at the root itself). *)

val remove : t -> group:int -> node:int -> unit

val entries : t -> int
(** Total (group, node) entries across all routers. *)

val node_entries : t -> int -> int
(** This router's G-RIB entry count — the paper's per-router state
    axis. *)

val storage_words : t -> int
(** Words held by the arena's flat arrays (table slots + counts) —
    the [Obs.Prof]-comparable footprint of the representation. *)
