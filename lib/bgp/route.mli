(** BGP routes.

    The architecture uses a new type of BGP route, the {e group route}: a
    multicast address range claimed by a domain via MASC, injected into
    BGP, and propagated subject to policy.  A border router that performs
    a longest-match lookup of a group address in its G-RIB learns the
    next hop toward the group's {e root domain}.  We model routes at the
    domain level (one logical speaker per domain). *)

type t = {
  prefix : Prefix.t;  (** the advertised address range *)
  origin : Domain.id;  (** the root domain that injected the range *)
  as_path : Domain.id list;
      (** domains the advertisement traversed, nearest first; [\[\]] for a
          self-originated route.  Loop prevention rejects routes whose
          path already contains the receiving domain. *)
  lifetime_end : Time.t option;
      (** expiry of the underlying MASC claim, when known; carried so
          downstream RIBs can garbage-collect without a withdraw after
          partition. *)
  span : Span.t option;
      (** causal span of the MASC claim this route came from; ignored by
          {!compare}/{!equal} (it is provenance, not routing state) and
          preserved by {!through}. *)
}

val originate : ?lifetime_end:Time.t -> ?span:Span.t -> Domain.id -> Prefix.t -> t
(** A route as first injected by its root domain. *)

val through : t -> Domain.id -> t
(** [through r d] is [r] as re-advertised by [d]: [d] prepended to the
    AS path. *)

val path_length : t -> int

val contains_loop : t -> Domain.id -> bool
(** Would accepting this route at [d] create a loop? *)

val next_hop : t -> Domain.id option
(** The neighbor the route was learned from ([None] for self-originated
    routes). *)

val prefer : t -> t -> t
(** The BGP decision process restricted to the attributes we model:
    shortest AS path wins; ties break to the lower origin id, then the
    lower first-hop id — a deterministic stand-in for router-id
    tie-breaking. *)

val compare : t -> t -> int
(** Total order consistent with {!prefer} (smaller = preferred). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
