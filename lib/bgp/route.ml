type t = {
  prefix : Prefix.t;
  origin : Domain.id;
  as_path : Domain.id list;
  lifetime_end : Time.t option;
  span : Span.t option;
}

let originate ?lifetime_end ?span origin prefix =
  { prefix; origin; as_path = []; lifetime_end; span }

let through r d = { r with as_path = d :: r.as_path }

let path_length r = List.length r.as_path

let contains_loop r d = List.exists (Int.equal d) r.as_path || r.origin = d

let next_hop r =
  match r.as_path with
  | [] -> None
  | hop :: _ -> Some hop

let compare a b =
  let c = Int.compare (path_length a) (path_length b) in
  if c <> 0 then c
  else begin
    let c = Int.compare a.origin b.origin in
    if c <> 0 then c
    else
      match (a.as_path, b.as_path) with
      | [], [] -> Prefix.compare a.prefix b.prefix
      | [], _ :: _ -> -1
      | _ :: _, [] -> 1
      | ha :: _, hb :: _ ->
          let c = Int.compare ha hb in
          if c <> 0 then c else Prefix.compare a.prefix b.prefix
  end

let prefer a b = if compare a b <= 0 then a else b

let equal a b =
  Prefix.equal a.prefix b.prefix
  && a.origin = b.origin
  && List.equal Int.equal a.as_path b.as_path

let pp ppf r =
  Format.fprintf ppf "%a origin=%d path=[%s]" Prefix.pp r.prefix r.origin
    (String.concat ";" (List.map string_of_int r.as_path))
