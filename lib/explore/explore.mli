(** Campaign driver: generator -> oracle -> shrinker -> ledger -> triage.

    A campaign generates [budget] schedules ({!Fault_gen.generate}, all
    on the main domain), fans the trials out over the {!Par} pool (each
    trial runs the oracle and — on failure — the shrinker inside its
    own Obs shard with a fresh span minter, so its metrics and trace
    ids are a function of the trial alone), merges shards in trial
    order, re-runs the top counterexamples with the flight recorder
    enabled to produce replayable repro artifacts, and writes the
    ledger sequentially in trial order.  Ledger and stdout are
    byte-identical at any [--jobs]. *)

type config = {
  budget : int;
  max_faults : int;
  seed : int;
  jobs : int option;  (** [None]: the {!Par} default *)
  arena : Oracle.arena;
  horizon : Time.t;  (** fault-injection window bound (generator only) *)
  ledger : string;  (** ledger path, truncated then appended in trial order *)
  repro_dir : string option;  (** where repro artifacts land; [None]: skip repro *)
  repro_top : int;  (** how many counterexamples (smallest first) get repro runs *)
}

val default_config : config
(** budget 50, max_faults 6, seed 1998, default arena, horizon 4 h,
    ledger ["explore_ledger.jsonl"], no repro dir, repro_top 3. *)

type summary = {
  total : int;
  passed : int;
  violation : int;
  non_convergence : int;
  by_invariant : (string * int) list;  (** violated name -> failing trials, sorted by name *)
  shrink_steps : int;  (** oracle re-runs spent shrinking, all trials *)
  entries : Ledger.entry list;  (** what the ledger holds, trial order *)
}

val counterexamples : Ledger.entry list -> Ledger.entry list
(** Failing entries ranked by minimality: fewest [min_faults] first,
    then trial order. *)

val run_campaign : config -> summary
(** Runs the whole pipeline and writes the ledger (and repro artifacts,
    when configured). *)

val pp_summary : Format.formatter -> summary -> unit
(** The [explore] subcommand's stdout: verdict counts, invariant
    buckets, and the ranked counterexample list. *)

val pp_triage : ?top:int -> Format.formatter -> ledger:string -> unit
(** The [report --triage] view: loads the ledger, buckets outcomes by
    verdict and by violated invariant, ranks counterexamples by
    minimality, and — for the [top] (default 3) smallest — prints the
    blamed causal chain out of the repro trace when the ledger points
    at a readable one. *)
