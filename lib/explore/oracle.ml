type verdict = Pass | Violation | Non_convergence

let verdict_to_string = function
  | Pass -> "pass"
  | Violation -> "violation"
  | Non_convergence -> "non-convergence"

let verdict_of_string = function
  | "pass" -> Some Pass
  | "violation" -> Some Violation
  | "non-convergence" -> Some Non_convergence
  | _ -> None

type arena = { tops : int; children_per_top : int }

let default_arena = { tops = 2; children_per_top = 2 }

type outcome = {
  verdict : verdict;
  violations : Invariant.violation list;
  transient : int;
  converged_at : Time.t option;
  deadline : Time.t;
  horizon : Time.t;
}

let verdict_of ~converged_at ~deadline ~violations =
  if violations <> [] then Violation
  else
    match converged_at with
    | Some t when t > deadline -> Non_convergence
    | _ -> Pass

(* Shrink renewals from 30 days to 1 so the post-heal collision duel
   (§4.4: fought at the next renewal announce) fits inside one run. *)
let claim_lifetime = Time.days 1.0

let config ~seed =
  {
    Internet.quick_config with
    Internet.seed;
    masc =
      {
        Internet.quick_config.Internet.masc with
        Masc_node.claim_lifetime;
        renew_margin = Time.hours 2.0;
      };
  }

let apply inet fault =
  match fault with
  | Schedule.Link_down (a, b) -> Internet.fail_link inet a b
  | Schedule.Link_up (a, b) -> Internet.restore_link inet a b
  | Schedule.Partition (a, b) -> Masc_network.partition (Internet.masc_network inet) a b
  | Schedule.Heal (a, b) -> Masc_network.heal (Internet.masc_network inet) a b
  | Schedule.Set_loss r -> Net.set_loss_rate (Internet.net inet) r

let validate topo (s : Schedule.step) =
  let link a b =
    if Topo.link_between topo a b = None then
      invalid_arg (Printf.sprintf "Oracle.run: no link %d-%d in the arena" a b)
  in
  match s.Schedule.fault with
  | Schedule.Link_down (a, b) | Schedule.Link_up (a, b) -> link a b
  | Schedule.Partition (a, b) | Schedule.Heal (a, b) -> link a b
  | Schedule.Set_loss _ -> ()

let rec request_with_retry inet d tries =
  match Internet.request_address inet d with
  | Some a -> Some a
  | None ->
      if tries <= 0 then None
      else begin
        Internet.run_for inet (Time.minutes 30.0);
        request_with_retry inet d (tries - 1)
      end

let run ?(arena = default_arena) ?(conv_grace = Time.hours 2.0) ?(monitor = true) ~seed schedule =
  let topo = Gen.masc_hierarchy ~tops:arena.tops ~children_per_top:arena.children_per_top in
  List.iter (validate topo) schedule;
  let inet = Internet.create ~config:(config ~seed) topo in
  let eng = Internet.engine inet in
  List.iter
    (fun (s : Schedule.step) ->
      ignore
        (Engine.schedule_at ~label:"explore.fault" eng s.Schedule.at (fun () ->
             apply inet s.Schedule.fault)))
    schedule;
  (* Cadence oracle: the transient-tolerant invariants, all run long.
     This goes through the registry, not [Internet.check_invariants],
     so a violation that persists for days does not spam the trace
     with one entry per cadence tick — the end-state check below
     records the blamed chain exactly once.  The quiescent hook is
     deliberately ignored: quiescent-only predicates are unsound while
     the schedule holds links down. *)
  let transient = ref 0 in
  if monitor then
    Engine.set_monitor eng ~cadence:(Time.minutes 30.0) (fun ~quiescent ->
        if not quiescent then
          transient :=
            !transient + List.length (Invariant.check ~quiescent:false (Internet.invariants inet)));
  (* Fixed workload: demand-driven allocation at every top (this is
     what makes partitioned tops claim out of 224/4 blind to each
     other), then every stub joins every allocated group so BGMP trees
     cross the peer mesh. *)
  Internet.start inet;
  Internet.run_for inet (Time.hours 1.0);
  let tops = List.init arena.tops (fun i -> i) in
  let stubs =
    List.concat_map
      (fun i ->
        List.init arena.children_per_top (fun c -> arena.tops + (i * arena.children_per_top) + c))
      tops
  in
  let groups =
    List.filter_map
      (fun d ->
        match request_with_retry inet d 8 with
        | Some a -> Some a.Maas.address
        | None -> None)
      tops
    (* Partitioned tops can allocate the *same* address (that is the
       collision the oracle exists to catch) — join each group once. *)
    |> List.sort_uniq compare
  in
  List.iter
    (fun g ->
      List.iter (fun s -> Internet.join inet ~host:(Host_ref.make s 0) ~group:g) stubs)
    groups;
  Internet.run_for inet (Time.hours 1.0);
  let workload_end = Engine.now eng in
  (* Repair deadline: three full renewal cycles past the last fault
     (or the workload, whichever is later) plus grace.  Post-heal
     resolution is not one duel: the first renewal fights the
     collision, the loser's replacement claim can collide again, and
     the aftershock settles on the third cycle — measured 65.5 h after
     a heal with 24 h lifetimes.  The run itself is bounded (no
     run-until-quiescent): a flapping stack must not hang the oracle,
     it must be convicted by its watermark. *)
  let deadline =
    max workload_end (Schedule.last_at schedule) +. (3.0 *. claim_lifetime) +. conv_grace
  in
  let horizon = deadline +. conv_grace in
  Internet.run_for inet (horizon -. Engine.now eng);
  let violations = Internet.check_invariants ~quiescent:(Schedule.ends_all_up schedule) inet in
  Engine.clear_monitor eng;
  let converged_at = Engine.converged_at eng in
  let outcome =
    {
      verdict = verdict_of ~converged_at ~deadline ~violations;
      violations;
      transient = !transient;
      converged_at;
      deadline;
      horizon;
    }
  in
  (outcome, inet)
