(** Deterministic fault-schedule generation.

    The generator walks the search space in two phases, both pure
    functions of [(topo, budget, max_faults, seed, horizon)] — the
    whole batch is produced on the main domain before any trial runs,
    so a campaign's schedule list is independent of [--jobs]:

    {ol
    {- {b Enumeration}: for every topology link, the single-fault
       schedules — a permanent detected failure ([down]) and a
       permanent silent partition ([part]) at each of a few canonical
       injection times.  These are the classic §4.4-style scenarios
       (claim-time partitions) and guarantee small known-violation
       schedules appear in every campaign regardless of seed.}
    {- {b Sampling}: seeded random schedules of 1..[max_faults] steps
       mixing detected/silent faults, restores, and loss episodes at
       random times within the fault window.}}

    Enumeration is truncated (never padded) to [budget]; sampling fills
    whatever budget remains. *)

val fault_window : horizon:Time.t -> Time.t * Time.t
(** The [lo, hi) time range faults are injected into: after the stack
    starts claiming but before the settle phase. *)

val generate :
  topo:Topo.t -> budget:int -> max_faults:int -> seed:int -> horizon:Time.t -> Schedule.t list
(** [budget] schedules (fewer only if [budget <= 0]).  Position [i] in
    the result is the campaign's trial [i]. *)
