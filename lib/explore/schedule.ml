type fault =
  | Link_down of Domain.id * Domain.id
  | Link_up of Domain.id * Domain.id
  | Partition of Domain.id * Domain.id
  | Heal of Domain.id * Domain.id
  | Set_loss of float

type step = { at : Time.t; fault : fault }

type t = step list

let make steps = List.stable_sort (fun a b -> compare a.at b.at) steps

let faults = List.length

let last_at = function
  | [] -> Time.zero
  | steps -> List.fold_left (fun acc s -> max acc s.at) Time.zero steps

let ends_all_up t =
  (* Replay link state symbolically: both fault families act on the
     same transport link, so a down of either kind needs an up of
     either kind to count as repaired. *)
  let down = Hashtbl.create 8 in
  let key a b = if a <= b then (a, b) else (b, a) in
  let loss = ref 0.0 in
  List.iter
    (fun s ->
      match s.fault with
      | Link_down (a, b) | Partition (a, b) -> Hashtbl.replace down (key a b) true
      | Link_up (a, b) | Heal (a, b) -> Hashtbl.replace down (key a b) false
      | Set_loss r -> loss := r)
    t;
  !loss = 0.0 && not (Hashtbl.fold (fun _ d acc -> acc || d) down false)

(* Seconds without trailing zeros ("3600", "3600.5"); avoids %g's
   scientific notation on long horizons. *)
let float_to_string f =
  let s = Printf.sprintf "%.6f" f in
  let s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = '0' do
      decr n
    done;
    if !n > 0 && s.[!n - 1] = '.' then decr n;
    String.sub s 0 !n
  in
  if s = "" then "0" else s

let pair a b = if a <= b then (a, b) else (b, a)

let step_to_string s =
  let at = float_to_string (Time.to_seconds s.at) in
  match s.fault with
  | Link_down (a, b) ->
      let a, b = pair a b in
      Printf.sprintf "down:%d-%d@%s" a b at
  | Link_up (a, b) ->
      let a, b = pair a b in
      Printf.sprintf "up:%d-%d@%s" a b at
  | Partition (a, b) ->
      let a, b = pair a b in
      Printf.sprintf "part:%d-%d@%s" a b at
  | Heal (a, b) ->
      let a, b = pair a b in
      Printf.sprintf "heal:%d-%d@%s" a b at
  | Set_loss r -> Printf.sprintf "loss:%s@%s" (float_to_string r) at

let to_string t = String.concat "," (List.map step_to_string t)

let step_of_string str =
  match String.index_opt str ':' with
  | None -> Error (Printf.sprintf "malformed step %S: missing ':'" str)
  | Some i -> (
      let kind = String.sub str 0 i in
      let rest = String.sub str (i + 1) (String.length str - i - 1) in
      match String.index_opt rest '@' with
      | None -> Error (Printf.sprintf "malformed step %S: missing '@'" str)
      | Some j -> (
          let arg = String.sub rest 0 j in
          let at_s = String.sub rest (j + 1) (String.length rest - j - 1) in
          match float_of_string_opt at_s with
          | None -> Error (Printf.sprintf "malformed step %S: bad time %S" str at_s)
          | Some at -> (
              let at = Time.seconds at in
              let link mk =
                match String.index_opt arg '-' with
                | None -> Error (Printf.sprintf "malformed step %S: bad link %S" str arg)
                | Some k -> (
                    let a = String.sub arg 0 k
                    and b = String.sub arg (k + 1) (String.length arg - k - 1) in
                    match (int_of_string_opt a, int_of_string_opt b) with
                    | Some a, Some b -> Ok { at; fault = mk a b }
                    | _ -> Error (Printf.sprintf "malformed step %S: bad link %S" str arg))
              in
              match kind with
              | "down" -> link (fun a b -> Link_down (a, b))
              | "up" -> link (fun a b -> Link_up (a, b))
              | "part" -> link (fun a b -> Partition (a, b))
              | "heal" -> link (fun a b -> Heal (a, b))
              | "loss" -> (
                  match float_of_string_opt arg with
                  | Some r -> Ok { at; fault = Set_loss r }
                  | None -> Error (Printf.sprintf "malformed step %S: bad rate %S" str arg))
              | _ -> Error (Printf.sprintf "malformed step %S: unknown kind %S" str kind))))

let of_string str =
  if String.trim str = "" then Ok []
  else
    let parts = String.split_on_char ',' str in
    let rec go acc = function
      | [] -> Ok (make (List.rev acc))
      | p :: rest -> (
          match step_of_string (String.trim p) with
          | Ok s -> go (s :: acc) rest
          | Error _ as e -> e)
    in
    go [] parts

(* FNV-1a/64, the same construction the flight recorder uses for run
   fingerprints. *)
let fingerprint t =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    (to_string t);
  Printf.sprintf "%016Lx" !h

let pp ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "(no faults)"
  | _ -> Format.pp_print_string ppf (to_string t)
