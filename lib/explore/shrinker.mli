(** Greedy counterexample shrinking.

    Given a failing schedule and a [still_fails] predicate (the caller
    closes it over the oracle, the trial's seed, and "fails the same
    way": same verdict and, for violations, the original primary
    invariant still violated), shrink in two passes repeated to a
    fixpoint:

    {ol
    {- {b Fault removal}: try deleting each step, left to right; keep
       any deletion that still fails and restart the scan, so one pass
       over an n-step schedule costs at most O(n^2) oracle runs.}
    {- {b Time coarsening}: snap each surviving step's time down to the
       largest round quantum (1 d, 6 h, 1 h, 1 min) that preserves the
       failure, making the minimal counterexample's timing readable.}}

    Both passes are deterministic: no randomness, order fixed by the
    schedule itself, so the same failing schedule always shrinks to the
    same minimal counterexample regardless of seed order or [--jobs]. *)

type result = {
  shrunk : Schedule.t;  (** still fails; no single-step removal or coarsening does *)
  steps : int;  (** oracle re-runs spent shrinking *)
}

val shrink : still_fails:(Schedule.t -> bool) -> Schedule.t -> result
(** The input schedule is assumed failing (it is returned unchanged,
    with [steps = 0], if it is already a single uncoarsenable step). *)
