type entry = {
  trial : int;
  seed : int;
  schedule : string;
  fingerprint : string;
  verdict : string;
  invariants : string list;
  trace_ids : string list;
  transient : int;
  converged_at : float option;
  deadline : float;
  min_schedule : string option;
  min_faults : int option;
  shrink_steps : int option;
  repro_recording : string option;
  repro_trace : string option;
}

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json e =
  let b = Buffer.create 256 in
  let str_list l =
    "[" ^ String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) l) ^ "]"
  in
  let opt_str = function
    | Some s -> Printf.sprintf "\"%s\"" (json_escape s)
    | None -> "null"
  in
  let opt_int = function Some n -> string_of_int n | None -> "null" in
  let opt_float = function Some f -> Printf.sprintf "%.17g" f | None -> "null" in
  Printf.bprintf b
    "{\"trial\": %d, \"seed\": %d, \"schedule\": \"%s\", \"fingerprint\": \"%s\", \"verdict\": \
     \"%s\", \"invariants\": %s, \"trace_ids\": %s, \"transient\": %d, \"converged_at\": %s, \
     \"deadline\": %.17g, \"min_schedule\": %s, \"min_faults\": %s, \"shrink_steps\": %s, \
     \"repro_recording\": %s, \"repro_trace\": %s}"
    e.trial e.seed (json_escape e.schedule) (json_escape e.fingerprint) (json_escape e.verdict)
    (str_list e.invariants) (str_list e.trace_ids) e.transient (opt_float e.converged_at)
    e.deadline (opt_str e.min_schedule) (opt_int e.min_faults) (opt_int e.shrink_steps)
    (opt_str e.repro_recording) (opt_str e.repro_trace);
  Buffer.contents b

(* A minimal scanner for the exact shape [to_json] emits: known keys in
   a fixed order; values are ints, floats, strings, string arrays or
   null — the same convention as [Trace.entry_of_json]. *)
let of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let error = ref false in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then incr pos else error := true
  in
  let literal s =
    skip_ws ();
    let l = String.length s in
    if !pos + l <= n && String.sub line !pos l = s then begin
      pos := !pos + l;
      true
    end
    else false
  in
  let parse_string () =
    skip_ws ();
    if !pos >= n || line.[!pos] <> '"' then begin
      error := true;
      ""
    end
    else begin
      incr pos;
      let b = Buffer.create 16 in
      let fin = ref false in
      while (not !fin) && !pos < n do
        (match line.[!pos] with
        | '"' -> fin := true
        | '\\' when !pos + 1 < n ->
            incr pos;
            (match line.[!pos] with
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' when !pos + 4 < n ->
                (match int_of_string_opt ("0x" ^ String.sub line (!pos + 1) 4) with
                | Some code when code < 0x20 -> Buffer.add_char b (Char.chr code)
                | _ -> error := true);
                pos := !pos + 4
            | c -> Buffer.add_char b c)
        | c -> Buffer.add_char b c);
        incr pos
      done;
      if not !fin then error := true;
      Buffer.contents b
    end
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None ->
        error := true;
        0.0
  in
  let key name =
    expect (if name = "trial" then '{' else ',');
    skip_ws ();
    if not (literal (Printf.sprintf "\"%s\"" name)) then error := true;
    expect ':'
  in
  let int_field name =
    key name;
    int_of_float (parse_number ())
  in
  let string_field name =
    key name;
    parse_string ()
  in
  let list_field name =
    key name;
    expect '[';
    skip_ws ();
    if !pos < n && line.[!pos] = ']' then begin
      incr pos;
      []
    end
    else begin
      let acc = ref [] in
      let fin = ref false in
      while (not !fin) && not !error do
        acc := parse_string () :: !acc;
        skip_ws ();
        if !pos < n && line.[!pos] = ',' then incr pos
        else begin
          expect ']';
          fin := true
        end
      done;
      List.rev !acc
    end
  in
  let opt f name =
    key name;
    skip_ws ();
    if literal "null" then None else Some (f ())
  in
  let trial = int_field "trial" in
  let seed = int_field "seed" in
  let schedule = string_field "schedule" in
  let fingerprint = string_field "fingerprint" in
  let verdict = string_field "verdict" in
  let invariants = list_field "invariants" in
  let trace_ids = list_field "trace_ids" in
  let transient = int_field "transient" in
  let converged_at = opt parse_number "converged_at" in
  let deadline =
    key "deadline";
    parse_number ()
  in
  let min_schedule = opt parse_string "min_schedule" in
  let min_faults = Option.map int_of_float (opt parse_number "min_faults") in
  let shrink_steps = Option.map int_of_float (opt parse_number "shrink_steps") in
  let repro_recording = opt parse_string "repro_recording" in
  let repro_trace = opt parse_string "repro_trace" in
  expect '}';
  if !error then None
  else
    Some
      {
        trial;
        seed;
        schedule;
        fingerprint;
        verdict;
        invariants;
        trace_ids;
        transient;
        converged_at;
        deadline;
        min_schedule;
        min_faults;
        shrink_steps;
        repro_recording;
        repro_trace;
      }

let append oc e =
  output_string oc (to_json e);
  output_char oc '\n'

let load file =
  let ic = open_in file in
  let entries = ref [] and bad = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match of_json line with
         | Some e -> entries := e :: !entries
         | None -> incr bad
     done
   with End_of_file -> ());
  close_in ic;
  (List.rev !entries, !bad)
