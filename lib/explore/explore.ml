type config = {
  budget : int;
  max_faults : int;
  seed : int;
  jobs : int option;
  arena : Oracle.arena;
  horizon : Time.t;
  ledger : string;
  repro_dir : string option;
  repro_top : int;
}

let default_config =
  {
    budget = 50;
    max_faults = 6;
    seed = 1998;
    jobs = None;
    arena = Oracle.default_arena;
    horizon = Time.hours 4.0;
    ledger = "explore_ledger.jsonl";
    repro_dir = None;
    repro_top = 3;
  }

type summary = {
  total : int;
  passed : int;
  violation : int;
  non_convergence : int;
  by_invariant : (string * int) list;
  shrink_steps : int;
  entries : Ledger.entry list;
}

let is_failure (e : Ledger.entry) = e.Ledger.verdict <> Oracle.verdict_to_string Oracle.Pass

let counterexamples entries =
  let failures = List.filter is_failure entries in
  List.stable_sort
    (fun (a : Ledger.entry) (b : Ledger.entry) ->
      match
        compare
          (Option.value ~default:max_int a.Ledger.min_faults)
          (Option.value ~default:max_int b.Ledger.min_faults)
      with
      | 0 -> compare a.Ledger.trial b.Ledger.trial
      | c -> c)
    failures

(* One trial: oracle, plus the shrinker when the verdict is bad.  Runs
   inside a Par task; everything observable in the ledger must be a
   deterministic function of (arena, seed, schedule) alone. *)
let run_trial ~arena ~trial ~seed schedule =
  let outcome, _ = Oracle.run ~arena ~seed schedule in
  let base =
    {
      Ledger.trial;
      seed;
      schedule = Schedule.to_string schedule;
      fingerprint = Schedule.fingerprint schedule;
      verdict = Oracle.verdict_to_string outcome.Oracle.verdict;
      invariants = List.map (fun v -> v.Invariant.inv) outcome.Oracle.violations;
      trace_ids =
        List.map
          (fun v -> Option.value ~default:"" v.Invariant.trace_id)
          outcome.Oracle.violations;
      transient = outcome.Oracle.transient;
      converged_at = Option.map Time.to_seconds outcome.Oracle.converged_at;
      deadline = Time.to_seconds outcome.Oracle.deadline;
      min_schedule = None;
      min_faults = None;
      shrink_steps = None;
      repro_recording = None;
      repro_trace = None;
    }
  in
  match outcome.Oracle.verdict with
  | Oracle.Pass -> base
  | bad ->
      let primary =
        match outcome.Oracle.violations with
        | v :: _ -> Some v.Invariant.inv
        | [] -> None
      in
      let still_fails s =
        let o, _ = Oracle.run ~arena ~seed s in
        o.Oracle.verdict = bad
        &&
        match primary with
        | None -> true
        | Some p -> List.exists (fun v -> v.Invariant.inv = p) o.Oracle.violations
      in
      let r = Shrinker.shrink ~still_fails schedule in
      {
        base with
        Ledger.min_schedule = Some (Schedule.to_string r.Shrinker.shrunk);
        min_faults = Some (Schedule.faults r.Shrinker.shrunk);
        shrink_steps = Some r.Shrinker.steps;
      }

(* Re-run a minimal counterexample with the flight recorder on, and
   dump the stack's trace, so the violation is replayable ([report
   --diff]) and attributable ([report --triage] / [trace]).  A fresh
   span minter mirrors the Par shard the trial ran in, so the repro's
   trace ids match the ledger's. *)
let repro ~arena ~dir (e : Ledger.entry) =
  match e.Ledger.min_schedule with
  | None -> e
  | Some min_s -> (
      match Schedule.of_string min_s with
      | Error _ -> e
      | Ok schedule ->
          (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
          let rec_path = Filename.concat dir (Printf.sprintf "cex-%d.recording.jsonl" e.Ledger.trial)
          and trace_path = Filename.concat dir (Printf.sprintf "cex-%d.trace.jsonl" e.Ledger.trial) in
          Recorder.enable ~ring:4096 ~sink:rec_path ();
          let outcome, inet =
            Span.with_minter (Span.create_minter ()) (fun () ->
                Oracle.run ~arena ~seed:e.Ledger.seed schedule)
          in
          (* Close the recording with one synthetic record naming the
             violated invariant and its blamed chain, so the recording
             itself — not just the trace — carries the verdict. *)
          List.iter
            (fun v ->
              match v.Invariant.trace_id with
              | Some tid ->
                  Recorder.record
                    ~time:(Time.to_seconds outcome.Oracle.horizon)
                    ~label:"explore.violation" ~subject:v.Invariant.inv
                    ~span:{ Span.trace_id = tid; span = 0; parent = None }
                    ()
              | None ->
                  Recorder.record
                    ~time:(Time.to_seconds outcome.Oracle.horizon)
                    ~label:"explore.violation" ~subject:v.Invariant.inv ())
            outcome.Oracle.violations;
          Recorder.disable ();
          let oc = open_out trace_path in
          List.iter
            (fun entry ->
              output_string oc (Trace.entry_to_json entry);
              output_char oc '\n')
            (Trace.entries (Internet.trace inet));
          close_out oc;
          { e with Ledger.repro_recording = Some rec_path; repro_trace = Some trace_path })

let summarize entries =
  let count v =
    List.length (List.filter (fun (e : Ledger.entry) -> e.Ledger.verdict = v) entries)
  in
  let by_invariant =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (e : Ledger.entry) ->
        List.sort_uniq compare e.Ledger.invariants
        |> List.iter (fun inv ->
               Hashtbl.replace tbl inv (1 + Option.value ~default:0 (Hashtbl.find_opt tbl inv))))
      entries;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  {
    total = List.length entries;
    passed = count (Oracle.verdict_to_string Oracle.Pass);
    violation = count (Oracle.verdict_to_string Oracle.Violation);
    non_convergence = count (Oracle.verdict_to_string Oracle.Non_convergence);
    by_invariant;
    shrink_steps =
      List.fold_left
        (fun acc (e : Ledger.entry) -> acc + Option.value ~default:0 e.Ledger.shrink_steps)
        0 entries;
    entries;
  }

let run_campaign config =
  let topo =
    Gen.masc_hierarchy ~tops:config.arena.Oracle.tops
      ~children_per_top:config.arena.Oracle.children_per_top
  in
  let schedules =
    Fault_gen.generate ~topo ~budget:config.budget ~max_faults:config.max_faults ~seed:config.seed
      ~horizon:config.horizon
  in
  (* Pre-draw every trial's oracle seed on the main domain. *)
  let srng = Rng.create (config.seed lxor 0x9e3779b9) in
  let trials =
    List.mapi (fun trial schedule -> (trial, Rng.int srng 1_000_000_000, schedule)) schedules
  in
  let results =
    Par.map ?jobs:config.jobs
      (fun (trial, seed, schedule) ->
        Par.with_shard (fun () -> run_trial ~arena:config.arena ~trial ~seed schedule))
      trials
  in
  let entries =
    List.map
      (fun (entry, shard) ->
        Par.merge_shard shard;
        entry)
      results
  in
  (* Repro runs are sequential on the main domain: the flight
     recorder's enabled flag is process-global. *)
  let entries =
    match config.repro_dir with
    | None -> entries
    | Some dir ->
        let chosen =
          List.filteri (fun i _ -> i < config.repro_top) (counterexamples entries)
          |> List.map (fun (e : Ledger.entry) -> e.Ledger.trial)
        in
        List.map
          (fun (e : Ledger.entry) ->
            if List.mem e.Ledger.trial chosen then repro ~arena:config.arena ~dir e else e)
          entries
  in
  let oc = open_out config.ledger in
  List.iter (Ledger.append oc) entries;
  close_out oc;
  summarize entries

let pp_summary ppf s =
  Format.fprintf ppf "=== explore: %d schedules ===@." s.total;
  Format.fprintf ppf "verdicts: pass %d  violation %d  non-convergence %d@." s.passed s.violation
    s.non_convergence;
  if s.by_invariant <> [] then begin
    Format.fprintf ppf "violated invariants (failing trials):@.";
    List.iter (fun (inv, n) -> Format.fprintf ppf "  %-28s %d@." inv n) s.by_invariant
  end;
  let cexs = counterexamples s.entries in
  if cexs <> [] then begin
    Format.fprintf ppf "counterexamples (smallest first):@.";
    List.iter
      (fun (e : Ledger.entry) ->
        Format.fprintf ppf "  trial %d [%s]: %s" e.Ledger.trial e.Ledger.verdict
          (Option.value ~default:e.Ledger.schedule e.Ledger.min_schedule);
        (match e.Ledger.min_faults with
        | Some n ->
            Format.fprintf ppf " (%d fault%s, %d shrink runs)" n
              (if n = 1 then "" else "s")
              (Option.value ~default:0 e.Ledger.shrink_steps)
        | None -> ());
        (match e.Ledger.invariants with
        | inv :: _ -> Format.fprintf ppf " %s" inv
        | [] -> ());
        Format.fprintf ppf "@.")
      cexs;
    Format.fprintf ppf "shrink runs total: %d@." s.shrink_steps
  end

let pp_triage ?(top = 3) ppf ~ledger =
  let entries, malformed = Ledger.load ledger in
  Format.fprintf ppf "=== triage: %s ===@." ledger;
  Format.fprintf ppf "%d outcome%s%s@." (List.length entries)
    (if List.length entries = 1 then "" else "s")
    (if malformed = 0 then "" else Printf.sprintf " (%d malformed lines skipped)" malformed);
  let s = summarize entries in
  Format.fprintf ppf "by verdict: pass %d  violation %d  non-convergence %d@." s.passed
    s.violation s.non_convergence;
  if s.by_invariant <> [] then begin
    Format.fprintf ppf "by violated invariant:@.";
    List.iter (fun (inv, n) -> Format.fprintf ppf "  %-28s %d trial%s@." inv n (if n = 1 then "" else "s")) s.by_invariant
  end;
  let cexs = counterexamples entries in
  if cexs = [] then Format.fprintf ppf "no counterexamples.@."
  else begin
    let chosen = List.filteri (fun i _ -> i < top) cexs in
    Format.fprintf ppf "top counterexamples (smallest first, %d of %d):@." (List.length chosen)
      (List.length cexs);
    List.iteri
      (fun i (e : Ledger.entry) ->
        Format.fprintf ppf "#%d trial %d seed %d [%s]@." (i + 1) e.Ledger.trial e.Ledger.seed
          e.Ledger.verdict;
        Format.fprintf ppf "   schedule: %s@." e.Ledger.schedule;
        (match e.Ledger.min_schedule with
        | Some m ->
            Format.fprintf ppf "   minimal:  %s (%d fault%s, %d shrink runs)@." m
              (Option.value ~default:0 e.Ledger.min_faults)
              (if e.Ledger.min_faults = Some 1 then "" else "s")
              (Option.value ~default:0 e.Ledger.shrink_steps)
        | None -> ());
        let blamed =
          List.combine e.Ledger.invariants e.Ledger.trace_ids
          |> List.filter (fun (_, tid) -> tid <> "")
        in
        List.iter
          (fun (inv, tid) -> Format.fprintf ppf "   invariant %s blames %s@." inv tid)
          blamed;
        (match e.Ledger.repro_recording with
        | Some p -> Format.fprintf ppf "   recording: %s@." p
        | None -> ());
        match (e.Ledger.repro_trace, blamed) with
        | Some trace_file, (_, tid) :: _ when Sys.file_exists trace_file ->
            let trace_entries, _ = Trace.load_jsonl_counted trace_file in
            Format.fprintf ppf "   causal chain [%s]:@." tid;
            Trace_report.pp_chain_for ppf trace_entries ~id:tid
        | _ -> ())
      chosen
  end
