(** The violation ledger: one JSONL line per explored schedule.

    Every trial of a campaign appends one structured outcome record —
    pass or fail — so a ledger is a complete, replayable account of the
    search: the schedule (canonical string + fingerprint), the seed,
    the verdict, the violated invariants with their blamed trace ids,
    convergence timing, and (for failures) the shrunk minimal
    counterexample plus the paths of its repro artifacts.

    Writing is the campaign driver's job and happens sequentially in
    trial order on the main domain, so ledgers are byte-identical at
    any [--jobs].  Loading follows the repo's hardened-JSONL
    convention: malformed lines are counted, not fatal. *)

type entry = {
  trial : int;
  seed : int;  (** the trial's oracle seed *)
  schedule : string;  (** canonical {!Schedule.to_string} form *)
  fingerprint : string;  (** {!Schedule.fingerprint} of [schedule] *)
  verdict : string;  (** {!Oracle.verdict_to_string} *)
  invariants : string list;  (** violated invariant names, end-state check *)
  trace_ids : string list;  (** blamed causal chains, aligned with [invariants] *)
  transient : int;
  converged_at : float option;
  deadline : float;
  min_schedule : string option;  (** shrunk counterexample (failures only) *)
  min_faults : int option;
  shrink_steps : int option;  (** oracle re-runs the shrinker spent *)
  repro_recording : string option;  (** flight-recorder JSONL, when written *)
  repro_trace : string option;  (** trace JSONL, when written *)
}

val to_json : entry -> string
(** One line, no trailing newline, keys in fixed order. *)

val of_json : string -> entry option

val append : out_channel -> entry -> unit

val load : string -> entry list * int
(** [entries, malformed]: every parseable line in file order, plus the
    count of lines that failed to parse. *)
