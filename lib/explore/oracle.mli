(** The explorer's oracle: run one fault schedule deterministically and
    judge the outcome.

    Each run builds a fresh parameterized internet
    ({!Gen.masc_hierarchy}: [tops] backbone domains in a full peer mesh,
    [children_per_top] stub customers each) under quick protocol timers,
    injects the schedule's faults as engine events, drives a fixed
    workload (demand-driven allocation at every top, cross-top joins
    from every stub), and lets the stack settle three claim-renewal
    cycles past the last fault — long enough for the §4.4
    post-partition collision duel and its aftershock claims to resolve,
    so a healed partition that self-repairs is {e not} reported as a
    violation.

    The verdict combines two oracles:

    - the {b invariant registry}: a cadence monitor checks the live
      (transient-tolerant) invariants throughout, and a final end-state
      check runs every predicate — quiescent-only ones included exactly
      when the schedule leaves every link up and loss at zero
      ({!Schedule.ends_all_up}), since tree/G-RIB agreement is
      undefined while the topology is cut;
    - {b convergence watermarks}: if the engine's last durable state
      change ([Engine.converged_at]) lands past the schedule's repair
      deadline (last fault + one claim lifetime + grace), the stack
      never converged — [Non_convergence] even when every invariant
      holds. *)

type verdict = Pass | Violation | Non_convergence

val verdict_to_string : verdict -> string

val verdict_of_string : string -> verdict option

type arena = { tops : int; children_per_top : int }

val default_arena : arena
(** 2 tops x 2 children: the smallest internet where every fault family
    has something to break (peer mesh, provider-customer edges, sibling
    claims out of 224/4). *)

type outcome = {
  verdict : verdict;
  violations : Invariant.violation list;
      (** the final end-state check's violations (not the transient ones) *)
  transient : int;  (** violations seen by mid-run cadence checks *)
  converged_at : Time.t option;
  deadline : Time.t;  (** convergence deadline the verdict used *)
  horizon : Time.t;  (** virtual time the run ended at *)
}

val verdict_of :
  converged_at:Time.t option -> deadline:Time.t -> violations:Invariant.violation list -> verdict
(** The pure verdict rule: violations trump everything, then the
    watermark test.  Exposed for unit tests. *)

val run :
  ?arena:arena -> ?conv_grace:Time.t -> ?monitor:bool -> seed:int -> Schedule.t -> outcome * Internet.t
(** Deterministic in [(arena, conv_grace, seed, schedule)].  The
    returned stack is final-state: its trace carries the ["violation"]
    entries (with blamed trace ids) of every check, for repro dumps.
    [conv_grace] (default 2 h) pads the convergence deadline.
    [~monitor:false] skips the cadence invariant monitor ([transient]
    stays 0; the end-state check still runs) — the bench uses it to
    price the monitor; the explorer always runs monitored.
    @raise Invalid_argument if a schedule step names a link absent from
    the arena's topology. *)
