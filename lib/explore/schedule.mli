(** Fault schedules: the explorer's search space.

    A schedule is a time-sorted list of fault injections against one
    simulated internet.  Two fault families are distinguished on
    purpose: {e detected} topology faults ([Link_down]/[Link_up], which
    go through [Internet.fail_link] — BGP sessions drop, alternates are
    selected, trees rebuild) and {e silent} transport faults
    ([Partition]/[Heal], which cut the shared channel without any
    protocol reaction — the paper's §4.4 start-up partition), plus a
    seeded message-loss dial ([Set_loss]).

    Schedules have a canonical string form (["part:0-1@3600"]) used in
    the violation ledger, for CLI round-trips, and as the input of the
    schedule fingerprint. *)

type fault =
  | Link_down of Domain.id * Domain.id
  | Link_up of Domain.id * Domain.id
  | Partition of Domain.id * Domain.id
  | Heal of Domain.id * Domain.id
  | Set_loss of float

type step = { at : Time.t; fault : fault }

type t = step list
(** Sorted by time (stable: equal-time steps keep their order). *)

val make : step list -> t
(** Sort steps by time, stably. *)

val faults : t -> int

val last_at : t -> Time.t
(** Time of the latest step; [Time.zero] for the empty schedule. *)

val ends_all_up : t -> bool
(** Whether replaying the schedule leaves every link up and the loss
    rate at zero — i.e. whether end-state (quiescent-only) invariants
    are sound after the run.  A [Link_down]/[Partition] with no later
    matching [Link_up]/[Heal] makes this false. *)

val step_to_string : step -> string
(** Canonical form, e.g. ["down:0-1@3600"], ["loss:0.05@7200"].  Times
    are seconds with no trailing zeros; endpoint pairs are printed
    low-high. *)

val to_string : t -> string
(** Comma-joined steps; [""] for the empty schedule. *)

val of_string : string -> (t, string) result
(** Parse the canonical form (steps in any order; result is sorted). *)

val fingerprint : t -> string
(** FNV-1a/64 of the canonical string, as 16 hex digits.  Stable across
    runs and job counts: two schedules collide iff their canonical
    strings do. *)

val pp : Format.formatter -> t -> unit
