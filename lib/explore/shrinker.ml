type result = { shrunk : Schedule.t; steps : int }

let remove_nth n l = List.filteri (fun i _ -> i <> n) l

(* Largest-first, so a fault at 93784 s tries 86400, then 21600, ... *)
let quanta = [ Time.days 1.0; Time.hours 6.0; Time.hours 1.0; Time.minutes 1.0 ]

let snap_down at q =
  let s = Time.to_seconds at and q = Time.to_seconds q in
  Time.seconds (Float.of_int (int_of_float (s /. q)) *. q)

let shrink ~still_fails schedule =
  let steps = ref 0 in
  let fails s =
    incr steps;
    still_fails s
  in
  (* Pass 1: greedy removal, restarting after every success. *)
  let rec drop (sched : Schedule.t) n =
    if n >= List.length sched then sched
    else
      let candidate = remove_nth n sched in
      if fails candidate then drop candidate 0
      else drop sched (n + 1)
  in
  (* Pass 2: per-step time coarsening (the schedule stays sorted:
     snapping only moves times down, and [Schedule.make] re-sorts). *)
  let coarsen_step (sched : Schedule.t) n =
    let s = List.nth sched n in
    let try_quantum acc q =
      match acc with
      | Some _ -> acc
      | None ->
          let at = snap_down s.Schedule.at q in
          if at = s.Schedule.at then None
          else
            let candidate =
              Schedule.make
                (List.mapi (fun i x -> if i = n then { x with Schedule.at } else x) sched)
            in
            if fails candidate then Some candidate else None
    in
    List.fold_left try_quantum None quanta
  in
  let rec coarsen sched n =
    if n >= List.length sched then sched
    else
      match coarsen_step sched n with
      | Some sched' -> coarsen sched' n
      | None -> coarsen sched (n + 1)
  in
  let rec fixpoint sched =
    let sched' = coarsen (drop sched 0) 0 in
    if sched' = sched then sched else fixpoint sched'
  in
  let shrunk = fixpoint schedule in
  { shrunk; steps = !steps }
