let fault_window ~horizon =
  let lo = Time.minutes 5.0 in
  (lo, max (Time.minutes 10.0) horizon)

(* Whole-second injection times keep canonical schedule strings tidy
   and give the shrinker's time-coarsening quanta something to bite. *)
let rand_time rng ~lo ~hi =
  Time.seconds (float_of_int (Rng.int_in rng (int_of_float lo) (int_of_float hi)))

(* Injection times for the enumerated permanent faults: one while the
   first claims are still in flight (the §4.4 start-up partition — the
   known-violation canary when it cuts the top-level peering), one
   after allocation has settled. *)
let canonical_times = [ Time.minutes 30.0; Time.hours 2.0 ]

let enumerate ~topo =
  let links = Topo.links topo in
  List.concat_map
    (fun (l : Topo.link) ->
      List.concat_map
        (fun at ->
          [
            [ { Schedule.at; fault = Schedule.Partition (l.Topo.a, l.Topo.b) } ];
            [ { Schedule.at; fault = Schedule.Link_down (l.Topo.a, l.Topo.b) } ];
          ])
        canonical_times)
    links
  |> List.map Schedule.make

let sample rng ~topo ~max_faults ~horizon =
  let lo, hi = fault_window ~horizon in
  let lo = Time.to_seconds lo and hi = Time.to_seconds hi in
  let links = Array.of_list (Topo.links topo) in
  let episode () =
    let l = Rng.pick rng links in
    let a = l.Topo.a and b = l.Topo.b in
    let t1 = rand_time rng ~lo ~hi in
    match Rng.int rng 5 with
    | 0 -> [ { Schedule.at = t1; fault = Schedule.Link_down (a, b) } ]
    | 1 -> [ { Schedule.at = t1; fault = Schedule.Partition (a, b) } ]
    | 2 ->
        let t2 = rand_time rng ~lo:(Time.to_seconds t1) ~hi in
        [
          { Schedule.at = t1; fault = Schedule.Link_down (a, b) };
          { Schedule.at = t2; fault = Schedule.Link_up (a, b) };
        ]
    | 3 ->
        let t2 = rand_time rng ~lo:(Time.to_seconds t1) ~hi in
        [
          { Schedule.at = t1; fault = Schedule.Partition (a, b) };
          { Schedule.at = t2; fault = Schedule.Heal (a, b) };
        ]
    | _ ->
        let r = 0.01 +. Rng.float rng 0.24 in
        let r = Float.of_int (int_of_float (r *. 100.0)) /. 100.0 in
        let t2 = rand_time rng ~lo:(Time.to_seconds t1) ~hi in
        [
          { Schedule.at = t1; fault = Schedule.Set_loss r };
          { Schedule.at = t2; fault = Schedule.Set_loss 0.0 };
        ]
  in
  let want = 1 + Rng.int rng (max 1 max_faults) in
  let rec fill acc n =
    if n >= want then acc
    else
      let steps = episode () in
      if n + List.length steps > max max_faults want then if n = 0 then steps else acc
      else fill (acc @ steps) (n + List.length steps)
  in
  Schedule.make (fill [] 0)

let generate ~topo ~budget ~max_faults ~seed ~horizon =
  let enumerated = enumerate ~topo in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let head = take budget enumerated in
  let remaining = budget - List.length head in
  let rng = Rng.create seed in
  let sampled = List.init (max 0 remaining) (fun _ -> sample rng ~topo ~max_faults ~horizon) in
  head @ sampled
