(** Open-addressed int-to-int hash map with flat array storage.

    The compact-state backbone: keys and values are nonnegative ints
    packed into two parallel arrays, so a map of N entries costs ~2N
    words at 70% load — no per-entry blocks, no boxing, no GC pressure
    beyond the occasional table doubling.  Arena layers (per-router
    G-RIB and BGMP tree state) pack their (group, node) coordinates
    into one key and build on this.

    Linear probing with multiply-shift hashing; deletion is
    backward-shift (no tombstones), so lookup cost stays bounded by
    load factor regardless of churn history. *)

type t

val create : ?initial:int -> unit -> t
(** [initial] is a capacity hint (entries, not slots); the table grows
    as needed regardless. *)

val length : t -> int
(** Live entries. *)

val capacity : t -> int
(** Current slot count — [2 * capacity] words of storage. *)

val find : t -> int -> int
(** The value bound to the key, or [-1] when absent.  Keys and values
    must be nonnegative ([-1] is the absence sentinel). *)

val mem : t -> int -> bool

val set : t -> int -> int -> unit
(** Insert or overwrite.  @raise Invalid_argument on a negative key or
    value. *)

val remove : t -> int -> unit
(** No-op when absent. *)

val iter : (int -> int -> unit) -> t -> unit
(** Iteration order is the internal slot order — deterministic for a
    given insertion/removal history, but otherwise unspecified. *)

val clear : t -> unit
(** Drop every entry, keeping the allocated table. *)
