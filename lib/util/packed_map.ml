type t = {
  mutable keys : int array;  (* -1 = empty slot *)
  mutable vals : int array;
  mutable len : int;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable shift : int;  (* 62 - log2 capacity, for multiply-shift *)
}

(* Fixed odd multiplier (splitmix64's golden-gamma); the home slot is
   the high bits of [k * mult], which mixes far better than the low
   bits for the near-sequential packed keys the arenas produce. *)
let mult = 0x2545F4914F6CDD1D

let home t k = (k * mult) lsr t.shift land t.mask

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1)

let make_table cap = (Array.make cap (-1), Array.make cap 0)

let create ?(initial = 16) () =
  let cap = ref 16 in
  while !cap * 7 / 10 < initial do
    cap := !cap * 2
  done;
  let keys, vals = make_table !cap in
  { keys; vals; len = 0; mask = !cap - 1; shift = 62 - log2 !cap }

let length t = t.len

let capacity t = t.mask + 1

let find t k =
  let i = ref (home t k) in
  let r = ref (-1) in
  let continue = ref true in
  while !continue do
    let kk = t.keys.(!i) in
    if kk = k then begin
      r := t.vals.(!i);
      continue := false
    end
    else if kk = -1 then continue := false
    else i := (!i + 1) land t.mask
  done;
  !r

let mem t k = find t k >= 0

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * (t.mask + 1) in
  let keys, vals = make_table cap in
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- cap - 1;
  t.shift <- 62 - log2 cap;
  Array.iteri
    (fun s k ->
      if k >= 0 then begin
        let i = ref (home t k) in
        while t.keys.(!i) >= 0 do
          i := (!i + 1) land t.mask
        done;
        t.keys.(!i) <- k;
        t.vals.(!i) <- old_vals.(s)
      end)
    old_keys

let set t k v =
  if k < 0 || v < 0 then invalid_arg "Packed_map.set: negative key or value";
  if (t.len + 1) * 10 > (t.mask + 1) * 7 then grow t;
  let i = ref (home t k) in
  let continue = ref true in
  while !continue do
    let kk = t.keys.(!i) in
    if kk = k then begin
      t.vals.(!i) <- v;
      continue := false
    end
    else if kk = -1 then begin
      t.keys.(!i) <- k;
      t.vals.(!i) <- v;
      t.len <- t.len + 1;
      continue := false
    end
    else i := (!i + 1) land t.mask
  done

let remove t k =
  let i = ref (home t k) in
  let found = ref false in
  let continue = ref true in
  while !continue do
    let kk = t.keys.(!i) in
    if kk = k then begin
      found := true;
      continue := false
    end
    else if kk = -1 then continue := false
    else i := (!i + 1) land t.mask
  done;
  if !found then begin
    t.len <- t.len - 1;
    (* Backward-shift: walk the probe cluster after the hole; any entry
       whose home position lies at or before the hole (cyclically) is
       moved into it, re-opening the hole further down. *)
    let hole = ref !i in
    let s = ref ((!i + 1) land t.mask) in
    let scanning = ref true in
    while !scanning do
      let kk = t.keys.(!s) in
      if kk = -1 then scanning := false
      else begin
        let h = home t kk in
        if (!s - h) land t.mask >= (!s - !hole) land t.mask then begin
          t.keys.(!hole) <- kk;
          t.vals.(!hole) <- t.vals.(!s);
          hole := !s
        end;
        s := (!s + 1) land t.mask
      end
    done;
    t.keys.(!hole) <- -1
  end

let iter f t =
  Array.iteri (fun s k -> if k >= 0 then f k t.vals.(s)) t.keys

let clear t =
  Array.fill t.keys 0 (t.mask + 1) (-1);
  t.len <- 0
