(** The integrated MASC/BGMP architecture: the paper's full system.

    An {!t} wires together, over one simulation engine and topology:

    - a {b MASC} hierarchy (from the provider structure) that claims
      multicast address ranges per domain;
    - per-domain {b BGP} speakers: every acquired MASC range is injected
      as a group route and propagated subject to policy, building each
      domain's G-RIB;
    - a {b BGMP} fabric of border routers that resolves every group
      address through the local G-RIB to the root domain and builds the
      bidirectional shared tree, with MIGP components inside each
      domain;
    - one {b MAAS} per domain handing individual group addresses to
      initiators out of the domain's MASC ranges.

    The result is the paper's end-to-end flow: an initiator asks its
    MAAS for an address, the address falls in its domain's claimed
    range, the range's group route makes that domain the root, members
    anywhere join toward it, and senders anywhere reach all members. *)

type config = {
  masc : Masc_node.config;
  bgmp : Bgmp_fabric.config;
  maas_block : int;  (** space requested from MASC when a MAAS runs dry *)
  seed : int;
  loss : float;
      (** per-message loss probability on every inter-domain channel, for
          all three protocols (deterministic: drawn from a seeded RNG
          private to the transport); 0 by default *)
}

val default_config : config

val quick_config : config
(** Protocol timers scaled down (minutes instead of the deployment-scale
    48-hour collision wait) so examples and tests converge quickly. *)

type t

val create : ?config:config -> ?migp_style:(Domain.id -> Migp.style) -> Topo.t -> t
(** Build the stack; [migp_style] defaults to DVMRP everywhere. *)

val start : t -> unit
(** Start MASC (top-level domains advertise and children begin
    claiming).  Run the engine afterwards to let allocation settle. *)

val engine : t -> Engine.t

val topo : t -> Topo.t

val trace : t -> Trace.t

val net : t -> Net.t
(** The one transport all three protocols send over: MASC claims, BGP
    updates and BGMP joins/prunes/data share its link state, loss
    process, and [net.*] accounting. *)

val run_for : t -> Time.t -> unit
(** Advance the simulation by the given duration. *)

val settle : ?quiet_for:Time.t -> t -> unit
(** Run until the stack has been quiescent for [quiet_for] of virtual
    time (default 7 days): periodic MASC housekeeping used to make
    "run until the queue drains" spin forever, so this stops once every
    remaining event lies beyond the protocol-activity watermark plus the
    grace period.  The default sits above the 48 h collision wait and
    below the 30 d renewal cycle. *)

val fail_link : t -> Domain.id -> Domain.id -> unit
(** [Net.fail_link] on the shared transport — one call takes the link
    down across the whole stack: the BGP sessions drop (withdrawals
    ripple, alternates get selected), in-flight messages of all three
    protocols are lost, and every active group's tree is rebuilt under
    the surviving routes.
    @raise Invalid_argument if no such topology link exists. *)

val restore_link : t -> Domain.id -> Domain.id -> unit
(** [Net.restore_link] on the shared transport: sessions re-form with
    full table exchange and the trees are rebuilt onto the (possibly
    shorter) restored paths.
    @raise Invalid_argument if no such topology link exists. *)

(** {1 Addresses and groups} *)

val request_address : t -> Domain.id -> Maas.allocation option
(** Ask the domain's MAAS for a group address.  [None] when the domain
    has no usable MASC range yet — run the simulation and retry. *)

val request_address_in : t -> initiator:Domain.id -> root:Domain.id -> Maas.allocation option
(** The §7 "address allocation interface" extension: a group initiator
    obtains an address from {e another} domain's MAAS so the resulting
    tree is rooted there — e.g. when the dominant sources are known to
    live elsewhere.  Equivalent to [request_address t root]; the
    initiator argument is for tracing. *)

val request_address_with_fallback : t -> Domain.id -> (Maas.allocation * Domain.id) option
(** The §4.1 burst path: try the domain's own MAAS; if its space is
    exhausted (a claim is pending), fall back to the provider's MAAS so
    the session can start immediately — "addresses could be obtained
    from the parent's address space.  If this is done, the root of the
    shared tree for these groups would simply be the parent's domain,
    which might be sub-optimal".  Returns the allocation and the domain
    it came from (the tree's root). *)

val release_address : t -> Domain.id -> Maas.allocation -> unit

val root_domain_of : t -> Ipv4.t -> Domain.id option
(** Where the shared tree for this address is rooted, per the G-RIB of
    the address's covering group route (from any vantage: the origin of
    the route). *)

(** {1 Invariants and convergence}

    Four named predicates over the live stack (registered at {!create}
    into an {!Invariant.t}, counted in {!Metrics.default}):

    - ["masc-sibling-overlap"] — no two sibling domains hold
      overlapping {e acquired} MASC ranges (§4's collision resolution
      guarantees this once claims graduate);
    - ["bgmp-acyclic"] — every group's parent-pointer chain is
      cycle-free;
    - ["bgmp-tree-settled"] (quiescent only) — parent/child symmetry
      across peer links and member domains actually on the tree;
    - ["grib-nexthop"] (quiescent only) — each domain's upstream tree
      edge agrees with its G-RIB next hop toward the root.

    Violations are appended to the {!trace} as ["violation"] entries
    carrying the trace id of the causal chain they implicate. *)

val check_invariants : ?quiescent:bool -> t -> Invariant.violation list
(** Run the predicates now ([quiescent] defaults to [true]: include the
    quiescent-only ones — only sound when the engine has drained). *)

val enable_invariant_checks : ?cadence:Time.t -> t -> unit
(** Install an engine monitor that re-checks every [cadence] of
    simulated time (default 1 h; transient-tolerant predicates are
    skipped) and fully on quiescence. *)

val invariant_violations : t -> Invariant.violation list
(** Every violation seen so far, oldest first. *)

val invariants : t -> Invariant.t

val enable_sampling : ?every:Time.t -> t -> Timeseries.t -> unit
(** Register the stack's convergence-curve sources on the sink —
    ["engine.pending"], ["net.inflight.masc/bgp/bgmp"],
    ["grib.routes"] (G-RIB entries summed over domains),
    ["masc.claims_outstanding"], ["bgmp.tree_entries"] — and install an
    engine sampler that snapshots them every [every] of simulated time
    (default 1 min) plus once when the run stops.  Like the invariant
    monitor, the sampler piggybacks on event execution: it schedules
    nothing, so the run's event order and stdout are untouched. *)

val join : t -> host:Host_ref.t -> group:Ipv4.t -> unit

val leave : t -> host:Host_ref.t -> group:Ipv4.t -> unit

val send : t -> source:Host_ref.t -> group:Ipv4.t -> int
(** Returns the payload id; run the engine, then inspect
    {!deliveries}. *)

val deliveries : t -> payload:int -> (Host_ref.t * int) list

(** {1 Component access (for tests, examples, and experiments)} *)

val masc_node : t -> Domain.id -> Masc_node.t

val maas : t -> Domain.id -> Maas.t

val speaker : t -> Domain.id -> Speaker.t

val fabric : t -> Bgmp_fabric.t

val bgp : t -> Bgp_network.t

val masc_network : t -> Masc_network.t
