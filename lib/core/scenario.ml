type session = {
  inet : Internet.t;
  group : Ipv4.t;
  root : Domain.id;
  members : Domain.id list;
}

let figure1 ?(seed = 1998) ?(loss = 0.0) ?(check_invariants = true) () =
  let topo = Gen.figure1 () in
  let config = { Internet.quick_config with Internet.seed; Internet.loss } in
  let inet = Internet.create ~config topo in
  if check_invariants then Internet.enable_invariant_checks inet;
  Internet.start inet;
  Internet.run_for inet (Time.hours 2.0);
  let dom name = Option.get (Topo.find_by_name topo name) in
  let b = dom "B" in
  let rec get tries =
    match Internet.request_address inet b with
    | Some a -> a
    | None ->
        if tries > 50 then failwith "Scenario.figure1: allocation did not settle"
        else begin
          Internet.run_for inet (Time.hours 1.0);
          get (tries + 1)
        end
  in
  let alloc = get 0 in
  let group = alloc.Maas.address in
  let members = List.map dom [ "C"; "D"; "F"; "G" ] in
  List.iter (fun d -> Internet.join inet ~host:(Host_ref.make d 0) ~group) members;
  Internet.run_for inet (Time.minutes 30.0);
  let root =
    match Internet.root_domain_of inet group with
    | Some r -> r
    | None -> failwith "Scenario.figure1: group not routable"
  in
  { inet; group; root; members }

let send session ~source =
  let payload = Internet.send session.inet ~source ~group:session.group in
  Internet.run_for session.inet (Time.minutes 10.0);
  Internet.deliveries session.inet ~payload

type walkthrough = {
  engine : Engine.t;
  walkthrough_topo : Topo.t;
  fabric : Bgmp_fabric.t;
  walkthrough_group : Ipv4.t;
  walkthrough_trace : Trace.t;
}

let figure3 ?migp_style ?(loss = 0.0) () =
  let topo = Gen.figure3 () in
  let engine = Engine.create () in
  let walkthrough_trace = Trace.create () in
  let net =
    Net.create ~engine
      ~config:{ Net.loss_rate = loss; loss_seed = 1998; delay_override = None }
      ~trace:walkthrough_trace ()
  in
  let b = Option.get (Topo.find_by_name topo "B") in
  let paths = Spf.bfs topo b in
  let route_to_root d _g =
    if d = b then Bgmp_fabric.Root_here
    else
      match Spf.next_hop_toward topo paths d with
      | Some nh -> Bgmp_fabric.Via nh
      | None -> Bgmp_fabric.Unroutable
  in
  let fabric =
    Bgmp_fabric.create ~engine ~topo ~net ?migp_style ~trace:walkthrough_trace ~route_to_root ()
  in
  let group = Ipv4.of_string "224.0.128.1" in
  List.iter
    (fun name ->
      let d = Option.get (Topo.find_by_name topo name) in
      Bgmp_fabric.host_join fabric ~host:(Host_ref.make d 0) ~group)
    [ "B"; "C"; "D"; "F"; "H" ];
  Engine.run_until_idle engine;
  { engine; walkthrough_topo = topo; fabric; walkthrough_group = group; walkthrough_trace }

let deliveries_by_domain w ~payload =
  List.sort compare
    (List.map
       (fun (h, hops) ->
         ((Topo.domain w.walkthrough_topo h.Host_ref.host_domain).Domain.name, hops))
       (Bgmp_fabric.deliveries w.fabric ~payload))

let figure3_branch_demo w ~before ~after =
  let d = Option.get (Topo.find_by_name w.walkthrough_topo "D") in
  let f = Option.get (Topo.find_by_name w.walkthrough_topo "F") in
  let source = Host_ref.make d 3 in
  let f_hops payload =
    List.filter_map
      (fun (h, hops) -> if h.Host_ref.host_domain = f then Some hops else None)
      (Bgmp_fabric.deliveries w.fabric ~payload)
  in
  let p1 = Bgmp_fabric.send w.fabric ~source ~group:w.walkthrough_group in
  Engine.run_until_idle w.engine;
  let p2 = Bgmp_fabric.send w.fabric ~source ~group:w.walkthrough_group in
  Engine.run_until_idle w.engine;
  f_hops p1 = before && f_hops p2 = after
