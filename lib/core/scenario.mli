(** The paper's worked examples as library functions.

    The examples directory prints these interactively; tests and
    downstream users get them here as plain values. *)

type session = {
  inet : Internet.t;
  group : Ipv4.t;
  root : Domain.id;  (** the group's root domain per the G-RIB *)
  members : Domain.id list;
}

val figure1 : ?seed:int -> ?loss:float -> ?check_invariants:bool -> unit -> session
(** The Figure-1 flow end-to-end on the integrated stack: build the
    seven-domain topology, run MASC until domain B holds a range,
    allocate the group address at B (so B is the root), and join
    members in C, D, F and G.  Runs the engine until ready.
    [check_invariants] (default [true]) installs the live invariant
    monitor ({!Internet.enable_invariant_checks}).  [loss] is the
    transport's per-message drop probability (default 0). *)

val send : session -> source:Host_ref.t -> (Host_ref.t * int) list
(** Send one packet and return the deliveries (host, inter-domain
    hops), after letting the simulation settle. *)

type walkthrough = {
  engine : Engine.t;
  walkthrough_topo : Topo.t;
  fabric : Bgmp_fabric.t;
  walkthrough_group : Ipv4.t;
  walkthrough_trace : Trace.t;  (** join-chain entries from the fabric *)
}

val figure3 : ?migp_style:(Domain.id -> Migp.style) -> ?loss:float -> unit -> walkthrough
(** Figure 3(a): the eight-domain topology with group 224.0.128.1
    statically rooted at B and members joined in B, C, D, F and H
    (DVMRP inside every domain unless overridden).  [loss] sets the
    fabric transport's per-message drop probability (default 0) —
    dropped joins show up as missing tree branches. *)

val figure3_branch_demo : walkthrough -> before:int list -> after:int list -> bool
(** Figure 3(b): send twice from a source in D and compare F's delivery
    hop count against the expected [before] (shared tree) and [after]
    (source-specific branch) values; returns whether both matched.
    With the default DVMRP style, [before = \[3\]] and [after = \[2\]]. *)

val deliveries_by_domain : walkthrough -> payload:int -> (string * int) list
(** (domain name, hops) per delivery, sorted by name. *)
